// Package repro reproduces "The Optimal Logic Depth Per Pipeline Stage is
// 6 to 8 FO4 Inverter Delays" (Hrishikesh, Burger, Jouppi, Keckler,
// Farkas, Shivakumar; ISCA 2002) as a Go library.
//
// The package is a facade over the internal implementation:
//
//   - fan-out-of-four clocking arithmetic and the Table 1 overhead model
//     (internal/fo4, internal/circuit, internal/latch);
//   - a Cacti-style analytical timing model for on-chip structures
//     (internal/cacti) and machine configurations resolved into cycle
//     latencies at any clock — the Table 3 methodology (internal/config);
//   - synthetic SPEC 2000 workload profiles (internal/trace), a tournament
//     branch predictor (internal/branch) and a cache hierarchy
//     (internal/mem);
//   - cycle-level in-order and out-of-order pipeline simulators with the
//     segmented instruction window of Section 5 (internal/pipeline);
//   - the depth-sweep methodology and every evaluation experiment
//     (internal/core, internal/experiments).
//
// Quick start:
//
//	sweep := repro.DepthSweep(repro.SweepConfig{
//		Machine:  repro.Alpha21264(),
//		Overhead: repro.PaperOverhead,
//	})
//	fmt.Println(sweep.OptimalUseful(repro.Integer)) // ≈ 6 FO4
package repro

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fo4"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Clocking and technology model.
type (
	// Tech is a fabrication technology identified by drawn gate length.
	Tech = fo4.Tech
	// Clock is a clock design point: useful FO4 per stage plus overhead.
	Clock = fo4.Clock
	// Overhead is the per-stage clocking overhead decomposition (Table 1).
	Overhead = fo4.Overhead
)

// Technology nodes and the paper's overhead values.
var (
	Tech100nm     = fo4.Tech100nm
	Tech180nm     = fo4.Tech180nm
	Tech130nm     = fo4.Tech130nm
	PaperOverhead = fo4.PaperOverhead
)

// Machine configuration.
type (
	// Machine is a full machine configuration (widths, queues, structures).
	Machine = config.Machine
	// Timing is a machine resolved at a clock: all latencies in cycles.
	Timing = config.Timing
)

// Alpha21264 returns the paper's baseline out-of-order machine.
func Alpha21264() Machine { return config.Alpha21264() }

// InOrder7Stage returns the Section 4.1 in-order machine.
func InOrder7Stage() Machine { return config.InOrder7Stage() }

// Cray1SMemorySystem returns the Section 4.2 what-if machine.
func Cray1SMemorySystem() Machine { return config.Cray1SMemorySystem() }

// Workloads.
type (
	// Profile is a synthetic benchmark description.
	Profile = trace.Profile
	// Trace is a generated dynamic instruction stream.
	Trace = trace.Trace
	// Group classifies benchmarks like the paper's figures.
	Group = trace.Group
)

// Benchmark groups.
const (
	Integer     = trace.Integer
	VectorFP    = trace.VectorFP
	NonVectorFP = trace.NonVectorFP
)

// SPEC2000 returns the 18 calibrated benchmark profiles of Table 2.
func SPEC2000() []Profile { return trace.SPEC2000() }

// BenchmarksByGroup returns the profiles in one group.
func BenchmarksByGroup(g Group) []Profile { return trace.ByGroup(g) }

// BenchmarkByName looks a profile up by name (e.g. "176.gcc").
func BenchmarkByName(name string) (Profile, bool) { return trace.ByName(name) }

// Simulation.
type (
	// SimParams configures one pipeline simulation.
	SimParams = pipeline.Params
	// SimStats is a simulation outcome.
	SimStats = pipeline.Stats
)

// Simulate runs one trace through the configured pipeline.
func Simulate(p SimParams, tr *Trace) SimStats { return pipeline.Run(p, tr) }

// The depth-sweep methodology (the paper's primary contribution).
type (
	// SweepConfig configures a pipeline-depth sweep.
	SweepConfig = core.SweepConfig
	// SweepResult is a completed sweep with per-group aggregates.
	SweepResult = core.SweepResult
	// SweepPoint is one clock design point of a sweep.
	SweepPoint = core.SweepPoint
)

// NoWarmup requests an explicitly empty warmup window in a SweepConfig
// (the zero value keeps its default-20% meaning).
const NoWarmup = core.NoWarmup

// DepthSweep runs the Section 4 experiment. Set SweepConfig.Workers to
// control the simulation worker pool (0 uses every core; 1 forces the
// serial path); results are identical at any worker count.
func DepthSweep(cfg SweepConfig) SweepResult { return core.DepthSweep(cfg) }

// OverheadSensitivity runs Figure 6's family of sweeps.
func OverheadSensitivity(cfg SweepConfig, overheadsFO4 []float64) []SweepResult {
	return core.OverheadSensitivity(cfg, overheadsFO4)
}

// CriticalLoopSensitivity runs Figure 8.
func CriticalLoopSensitivity(cfg SweepConfig, maxExtra int) []core.LoopSweep {
	return core.CriticalLoopSensitivity(cfg, maxExtra)
}

// SegmentedWindowSweep runs Figure 11.
func SegmentedWindowSweep(cfg SweepConfig, maxStages int, naive bool) []core.WindowPoint {
	return core.SegmentedWindowSweep(cfg, maxStages, naive)
}

// SegmentedSelect runs the Section 5.2 partitioned-selection comparison.
func SegmentedSelect(cfg SweepConfig) core.SelectResult { return core.SegmentedSelect(cfg) }

// StructureOptimization runs Figure 7.
func StructureOptimization(cfg SweepConfig) []core.StructOptPoint {
	return core.StructureOptimization(cfg, nil)
}

// Cray1SComparison runs the Section 4.2 sweep.
func Cray1SComparison(cfg SweepConfig) SweepResult { return core.Cray1SComparison(cfg) }

// Experiments gives access to the per-table/figure drivers used by the
// cmd/ binaries and the benchmark harness.
type ExperimentOptions = experiments.Options

// PaperUsefulGrid returns the paper's 2..16 FO4 grid.
func PaperUsefulGrid() []float64 { return core.PaperGrid() }
