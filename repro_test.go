package repro_test

import (
	"testing"

	"repro"
)

// These tests exercise the public facade end to end, the way the README's
// quick start does.

func TestQuickstartFlow(t *testing.T) {
	prof, ok := repro.BenchmarkByName("176.gcc")
	if !ok {
		t.Fatal("176.gcc missing from the suite")
	}
	tr := prof.Generate(20000, 1)

	machine := repro.Alpha21264()
	clock := repro.Clock{Useful: 6, Overhead: repro.PaperOverhead}
	stats := repro.Simulate(repro.SimParams{
		Machine: machine,
		Timing:  machine.Resolve(clock),
		Warmup:  4000,
	}, tr)

	if stats.IPC <= 0 || stats.IPC > 6 {
		t.Errorf("IPC = %v out of range", stats.IPC)
	}
	if got := clock.PeriodFO4(); got != 7.8 {
		t.Errorf("period = %v FO4, want 7.8", got)
	}
}

func TestSuiteAccessors(t *testing.T) {
	if n := len(repro.SPEC2000()); n != 18 {
		t.Errorf("suite size = %d, want 18", n)
	}
	if n := len(repro.BenchmarksByGroup(repro.Integer)); n != 9 {
		t.Errorf("integer group = %d, want 9", n)
	}
	if _, ok := repro.BenchmarkByName("no-such-benchmark"); ok {
		t.Error("lookup of a fake benchmark succeeded")
	}
	if g := repro.PaperUsefulGrid(); len(g) != 15 {
		t.Errorf("grid size = %d", len(g))
	}
}

func TestFacadeDepthSweep(t *testing.T) {
	sweep := repro.DepthSweep(repro.SweepConfig{
		Machine:      repro.Alpha21264(),
		Overhead:     repro.PaperOverhead,
		Benchmarks:   repro.BenchmarksByGroup(repro.Integer)[:3],
		UsefulGrid:   []float64{4, 6, 8},
		Instructions: 15000,
	})
	if len(sweep.Points) != 3 {
		t.Fatalf("points = %d", len(sweep.Points))
	}
	for _, p := range sweep.Points {
		if p.GroupBIPS[repro.Integer] <= 0 {
			t.Errorf("t=%v: no BIPS", p.Useful)
		}
		if len(p.PerBench) != 3 {
			t.Errorf("t=%v: %d benchmark rows", p.Useful, len(p.PerBench))
		}
	}
}

func TestFacadeMachines(t *testing.T) {
	if m := repro.Alpha21264(); m.InOrder || m.Cray1SMemory {
		t.Error("baseline machine flags wrong")
	}
	if m := repro.InOrder7Stage(); !m.InOrder {
		t.Error("in-order machine not in-order")
	}
	if m := repro.Cray1SMemorySystem(); !m.Cray1SMemory || !m.InOrder {
		t.Error("Cray machine flags wrong")
	}
}
