GO ?= go

.PHONY: build test race vet bench-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# A fast pass over the benchmark harness: one iteration each, so every
# experiment driver executes end to end without the full -bench cost.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

check: build vet test race
