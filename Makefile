GO ?= go

.PHONY: build test race vet lint lint-stats fuzz-smoke bench-smoke bench-compare bench-record telemetry-smoke serve-smoke store-smoke metrics-smoke chaos-smoke run-regression-seeds cover profile check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis: the repo's invariant-enforcing rule suite
# (cmd/reprolint -list names the rules), including the interprocedural
# reachability rules and the serving-path concurrency rules. Exits
# nonzero on any finding, so a determinism or telemetry-inertness
# violation fails the build instead of waiting for a regression test to
# sample it. -stats prints per-rule wall time to stderr.
lint:
	$(GO) run ./cmd/reprolint -stats ./...

# Per-rule wall time and finding counts as JSON on stdout, for the CI
# timing artifact and local profiling of the rule suite.
lint-stats:
	$(GO) run ./cmd/reprolint -stats-json ./...

# A short fuzz pass over the external input surfaces: the shared CLI
# flag parser, the run-manifest validator, the linter's suppression
# directive parser, and the /sweep grid parser (where client-controlled
# floats meet index arithmetic). 10s per target keeps it CI-sized; drop
# -fuzztime for a real hunt.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSimFlags -fuzztime 10s ./internal/cliflags
	$(GO) test -run '^$$' -fuzz FuzzManifestCheck -fuzztime 10s ./cmd/manifestcheck
	$(GO) test -run '^$$' -fuzz FuzzAllowDirective -fuzztime 10s ./internal/analysis
	$(GO) test -run '^$$' -fuzz FuzzSweepRequest -fuzztime 10s ./internal/serve

# A fast pass over the benchmark harness: one iteration each, so every
# experiment driver executes end to end without the full -bench cost.
# The run emits a manifest (environment, wall time, telemetry) next to
# the numbers, so recorded perf-trajectory runs are self-describing.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x . -args -manifest bench-smoke-manifest.json
	$(GO) run ./cmd/manifestcheck bench-smoke-manifest.json

# Perf-regression gate: rerun the root suite and diff it against the
# recorded baseline. Two iterations per benchmark (vs bench-smoke's one)
# smooth the worst single-iteration jitter on shared runners while
# keeping the gate CI-sized; the threshold stays generous for the same
# reason. CI fails on a regression beyond BENCH_THRESHOLD — tighten it
# for a real measurement run, and re-record the baseline after any
# intentional perf change (see EXPERIMENTS.md for the capture workflow).
BENCH_THRESHOLD ?= 50
BENCH_TIME ?= 2x

bench-compare:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCH_TIME) . > /tmp/bench_current.txt
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_THRESHOLD) BENCH_baseline.json /tmp/bench_current.txt

# Re-record the perf baseline from a fresh run at the same -benchtime
# the gate uses. Run this after an intentional perf change, on a quiet
# machine, and commit the resulting BENCH_baseline.json.
bench-record:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCH_TIME) . > /tmp/bench_record.txt
	$(GO) run ./cmd/benchdiff -record BENCH_baseline.json /tmp/bench_record.txt

# End-to-end telemetry check: run a small sweep with profiling and a
# manifest, then assert the manifest parses and carries the required keys.
telemetry-smoke:
	$(GO) run ./cmd/pipesweep -n 2000 -cpuprofile /tmp/cpu.pprof -manifest /tmp/manifest.json > /dev/null
	$(GO) run ./cmd/manifestcheck /tmp/manifest.json

# Serving smoke: boot the sweep daemon, drive one point end to end over
# HTTP (healthz, one sweep, stats), then verify a clean SIGTERM drain.
# The in-process equivalents run in internal/serve and internal/clitest;
# this is the out-of-process check CI runs against the real binary.
SERVE_PORT ?= 18734

serve-smoke:
	$(GO) build -o /tmp/sweepd ./cmd/sweepd
	@set -e; \
	/tmp/sweepd -addr 127.0.0.1:$(SERVE_PORT) -workers 1 2>/tmp/sweepd.log & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	ok=; for i in $$(seq 1 100); do \
		if curl -fsS http://127.0.0.1:$(SERVE_PORT)/healthz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	test -n "$$ok" || { echo "serve-smoke: daemon never became healthy"; cat /tmp/sweepd.log; exit 1; }; \
	curl -fsS http://127.0.0.1:$(SERVE_PORT)/healthz; \
	curl -fsS -X POST --data '{"useful":[8],"benchmarks":["gcc"],"instructions":5000}' \
		http://127.0.0.1:$(SERVE_PORT)/sweep | tee /tmp/sweep_point.ndjson; \
	grep -q '"done":true' /tmp/sweep_point.ndjson; \
	curl -fsS http://127.0.0.1:$(SERVE_PORT)/stats | grep -q '"points_done": 1'; \
	kill -TERM $$pid; wait $$pid; \
	echo "serve-smoke: one point served, clean shutdown"

# Persistence smoke: boot the daemon with a durable -store, sweep one
# grid, SIGKILL it (no drain, no final sync), reboot over the same
# directory, and assert the restarted daemon serves byte-identical
# results with zero simulations (warm hits only). The in-process and
# test-binary equivalents live in internal/store, internal/serve and
# internal/clitest; this drives the real binary the way an operator
# restart would.
STORE_PORT ?= 18735

store-smoke:
	$(GO) build -o /tmp/sweepd ./cmd/sweepd
	@set -e; \
	store=$$(mktemp -d /tmp/sweepd-store.XXXXXX); \
	/tmp/sweepd -addr 127.0.0.1:$(STORE_PORT) -workers 1 -store $$store 2>/tmp/sweepd-store.log & pid=$$!; \
	trap 'kill -9 $$pid 2>/dev/null || true; rm -rf $$store' EXIT; \
	ok=; for i in $$(seq 1 100); do \
		if curl -fsS http://127.0.0.1:$(STORE_PORT)/healthz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	test -n "$$ok" || { echo "store-smoke: daemon never became healthy"; cat /tmp/sweepd-store.log; exit 1; }; \
	curl -fsS -X POST --data '{"useful":[6,8],"benchmarks":["gcc"],"instructions":5000}' \
		http://127.0.0.1:$(STORE_PORT)/sweep > /tmp/sweep_before.ndjson; \
	grep -q '"done":true' /tmp/sweep_before.ndjson; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	/tmp/sweepd -addr 127.0.0.1:$(STORE_PORT) -workers 1 -store $$store 2>>/tmp/sweepd-store.log & pid=$$!; \
	ok=; for i in $$(seq 1 100); do \
		if curl -fsS http://127.0.0.1:$(STORE_PORT)/healthz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	test -n "$$ok" || { echo "store-smoke: daemon never came back"; cat /tmp/sweepd-store.log; exit 1; }; \
	curl -fsS -X POST --data '{"useful":[6,8],"benchmarks":["gcc"],"instructions":5000}' \
		http://127.0.0.1:$(STORE_PORT)/sweep > /tmp/sweep_after.ndjson; \
	diff /tmp/sweep_before.ndjson /tmp/sweep_after.ndjson; \
	curl -fsS http://127.0.0.1:$(STORE_PORT)/stats > /tmp/store_stats.json; \
	grep -q '"points_done": 0' /tmp/store_stats.json; \
	grep -q '"warm_hits": 2' /tmp/store_stats.json; \
	kill -TERM $$pid; wait $$pid; \
	echo "store-smoke: warm restart served identical bytes, zero re-simulations"

# Observability smoke: boot the daemon, sweep one grid with a pinned
# X-Request-Id, then scrape /metrics and assert the exposition is
# Prometheus text format 0.0.4 (HELP/TYPE present, the request counter
# moved, latency histogram populated) and the request ID round-tripped.
# The format linter and counters-agree-with-/stats checks run in
# internal/serve and internal/clitest; this drives the real binary the
# way a scraper would.
METRICS_PORT ?= 18736

metrics-smoke:
	$(GO) build -o /tmp/sweepd ./cmd/sweepd
	@set -e; \
	/tmp/sweepd -addr 127.0.0.1:$(METRICS_PORT) -workers 1 2>/tmp/sweepd-metrics.log & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	ok=; for i in $$(seq 1 100); do \
		if curl -fsS http://127.0.0.1:$(METRICS_PORT)/healthz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	test -n "$$ok" || { echo "metrics-smoke: daemon never became healthy"; cat /tmp/sweepd-metrics.log; exit 1; }; \
	curl -fsS -D /tmp/sweep_headers.txt -X POST -H 'X-Request-Id: metrics-smoke-1' \
		--data '{"useful":[8],"benchmarks":["gcc"],"instructions":5000}' \
		http://127.0.0.1:$(METRICS_PORT)/sweep > /dev/null; \
	grep -qi '^x-request-id: metrics-smoke-1' /tmp/sweep_headers.txt; \
	curl -fsS http://127.0.0.1:$(METRICS_PORT)/metrics > /tmp/metrics.txt; \
	grep -q '^# HELP sweep_requests_total ' /tmp/metrics.txt; \
	grep -q '^# TYPE sweep_request_seconds histogram$$' /tmp/metrics.txt; \
	grep -q '^sweep_requests_total 1$$' /tmp/metrics.txt; \
	grep -q '^sweep_request_seconds_count 1$$' /tmp/metrics.txt; \
	grep -q '^sweep_request_seconds_bucket{le="+Inf"} 1$$' /tmp/metrics.txt; \
	grep -q '^build_info{' /tmp/metrics.txt; \
	kill -TERM $$pid; wait $$pid; \
	echo "metrics-smoke: exposition well-formed, request ID echoed, clean shutdown"

# Chaos smoke: two bounded runs of the seeded fault-injection harness
# (internal/chaos) against the real sweepd binary — one pinned seed so
# every CI run replays a known mix, one rotating seed (default: today's
# date) so the fleet keeps exploring new action sequences. A failure
# prints the seed and the exact replay command; daemon logs and action
# traces land in CHAOS_LOGDIR for CI to upload. Override CHAOS_SEED to
# replay a specific failure.
CHAOS_ACTIONS ?= 40
CHAOS_SEED ?= $(shell date +%Y%m%d)
CHAOS_LOGDIR ?= /tmp/chaos-logs

chaos-smoke:
	$(GO) test ./internal/chaos -run 'TestChaos$$' -chaos.actions=$(CHAOS_ACTIONS) -chaos.seed=42 -chaos.logdir=$(CHAOS_LOGDIR)
	$(GO) test ./internal/chaos -run 'TestChaos$$' -chaos.actions=$(CHAOS_ACTIONS) -chaos.seed=$(CHAOS_SEED) -chaos.logdir=$(CHAOS_LOGDIR)

# Replay every seed that ever exposed a serving-path bug
# (internal/chaos/regression_seeds.json). Deterministic per seed: a pass
# means the exact action sequences that once found bugs still pass.
run-regression-seeds:
	$(GO) test ./internal/chaos -run TestRegressionSeeds -chaos.logdir=$(CHAOS_LOGDIR) -v

# Coverage with a ratchet floor: the gate trips when total statement
# coverage falls below COVER_MIN (set just under the current baseline;
# raise it as coverage grows, never lower it). CI runs this as a soft
# signal; treat a trip as "add tests with your change".
COVER_MIN ?= 80.0

cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); \
		if ($$3 + 0 < $(COVER_MIN)) { printf "coverage %.1f%% is below the %.1f%% floor\n", $$3, $(COVER_MIN); exit 1 } \
		else { printf "coverage %.1f%% (floor %.1f%%)\n", $$3, $(COVER_MIN) } }'

# CPU + heap profiles (and a manifest) for the depth sweep; inspect with
#   $(GO) tool pprof -top cpu.pprof
profile:
	$(GO) run ./cmd/pipesweep -fig 5 -n 20000 \
		-cpuprofile cpu.pprof -memprofile mem.pprof -manifest profile-manifest.json > /dev/null
	@echo "wrote cpu.pprof, mem.pprof, profile-manifest.json"
	@echo "inspect with: $(GO) tool pprof -top cpu.pprof"

# The documented pre-push command.
check: build vet test race lint
