GO ?= go

.PHONY: build test race vet lint fuzz-smoke bench-smoke bench-compare telemetry-smoke profile check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis: the repo's invariant-enforcing rule suite
# (cmd/reprolint -list names the rules). Exits nonzero on any finding,
# so a determinism or telemetry-inertness violation fails the build
# instead of waiting for a regression test to sample it.
lint:
	$(GO) run ./cmd/reprolint ./...

# A short fuzz pass over the two external input surfaces: the shared
# CLI flag parser and the run-manifest validator. 10s per target keeps
# it CI-sized; drop -fuzztime for a real hunt.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSimFlags -fuzztime 10s ./internal/cliflags
	$(GO) test -run '^$$' -fuzz FuzzManifestCheck -fuzztime 10s ./cmd/manifestcheck

# A fast pass over the benchmark harness: one iteration each, so every
# experiment driver executes end to end without the full -bench cost.
# The run emits a manifest (environment, wall time, telemetry) next to
# the numbers, so recorded perf-trajectory runs are self-describing.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x . -args -manifest bench-smoke-manifest.json
	$(GO) run ./cmd/manifestcheck bench-smoke-manifest.json

# Perf-regression check: rerun the root suite (one iteration, like
# bench-smoke) and diff it against the recorded baseline. One-iteration
# timings are noisy, so the default threshold is generous and CI treats
# a failure as a soft signal; tighten BENCH_THRESHOLD for a real
# measurement run (see EXPERIMENTS.md for the capture workflow).
BENCH_THRESHOLD ?= 50

bench-compare:
	$(GO) test -run '^$$' -bench . -benchtime 1x . > /tmp/bench_current.txt
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_THRESHOLD) BENCH_baseline.json /tmp/bench_current.txt

# End-to-end telemetry check: run a small sweep with profiling and a
# manifest, then assert the manifest parses and carries the required keys.
telemetry-smoke:
	$(GO) run ./cmd/pipesweep -n 2000 -cpuprofile /tmp/cpu.pprof -manifest /tmp/manifest.json > /dev/null
	$(GO) run ./cmd/manifestcheck /tmp/manifest.json

# CPU + heap profiles (and a manifest) for the depth sweep; inspect with
#   $(GO) tool pprof -top cpu.pprof
profile:
	$(GO) run ./cmd/pipesweep -fig 5 -n 20000 \
		-cpuprofile cpu.pprof -memprofile mem.pprof -manifest profile-manifest.json > /dev/null
	@echo "wrote cpu.pprof, mem.pprof, profile-manifest.json"
	@echo "inspect with: $(GO) tool pprof -top cpu.pprof"

# The documented pre-push command.
check: build vet test race lint
