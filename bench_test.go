package repro_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its table or figure
// through the same experiment driver the cmd/ binaries use and reports the
// headline quantity of that experiment as a custom metric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation and prints
// the numbers next to the timings. EXPERIMENTS.md records a full run.

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/trace"
)

// benchOpts keeps each benchmark iteration affordable; the cmd/ binaries
// run the same drivers at full size.
var benchOpts = experiments.Options{Instructions: 20000}

func BenchmarkFigure1ClockHistory(b *testing.B) {
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		f := experiments.RunFigure1()
		last = f.Rows[len(f.Rows)-1].PeriodFO4
	}
	b.ReportMetric(last, "FO4-period-2002")
}

func BenchmarkTable1LatchOverhead(b *testing.B) {
	b.ReportAllocs()
	var ovh float64
	for i := 0; i < b.N; i++ {
		t := experiments.RunTable1(4.0)
		ovh = t.Latch.OverheadFO4
	}
	b.ReportMetric(ovh, "latch-FO4")
}

func BenchmarkTable3AccessLatencies(b *testing.B) {
	b.ReportAllocs()
	var dl1 int
	for i := 0; i < b.N; i++ {
		t := experiments.RunTable3()
		dl1 = t.Rows[4].DL1 // t_useful = 6
	}
	b.ReportMetric(float64(dl1), "DL1-cycles-at-6FO4")
}

func BenchmarkFigure4aInOrderNoOverhead(b *testing.B) {
	b.ReportAllocs()
	var imp float64
	for i := 0; i < b.N; i++ {
		s := experiments.RunFigure4a(benchOpts).Sweep
		ser := s.GroupSeries(trace.Integer)
		imp = ser[2] / ser[6] // BIPS(4) / BIPS(8)
	}
	b.ReportMetric(imp, "int-8to4-speedup")
}

func BenchmarkFigure4bInOrderWithOverhead(b *testing.B) {
	b.ReportAllocs()
	var opt float64
	for i := 0; i < b.N; i++ {
		opt = experiments.RunFigure4b(benchOpts).Sweep.NearOptimalUseful(trace.Integer, 0.02)
	}
	b.ReportMetric(opt, "int-optimal-FO4")
}

func BenchmarkFigure5OutOfOrder(b *testing.B) {
	b.ReportAllocs()
	var opt float64
	for i := 0; i < b.N; i++ {
		opt = experiments.RunFigure5(benchOpts).Sweep.NearOptimalUseful(trace.Integer, 0.02)
	}
	b.ReportMetric(opt, "int-optimal-FO4")
}

func BenchmarkFigure6OverheadSensitivity(b *testing.B) {
	b.ReportAllocs()
	var spread float64
	for i := 0; i < b.N; i++ {
		f := experiments.RunFigure6(benchOpts)
		lo, hi := 99.0, 0.0
		for _, s := range f.Sweeps[1:6] { // overheads 1..5 FO4
			o := s.NearOptimalUseful(trace.Integer, 0.02)
			if o < lo {
				lo = o
			}
			if o > hi {
				hi = o
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "optimum-spread-FO4")
}

func BenchmarkFigure7StructureOptimization(b *testing.B) {
	b.ReportAllocs()
	var gain float64
	for i := 0; i < b.N; i++ {
		f := experiments.RunFigure7(benchOpts)
		sum := 0.0
		for _, p := range f.Points {
			sum += p.BestBIPS / p.BaselineBIPS
		}
		gain = sum/float64(len(f.Points)) - 1
	}
	b.ReportMetric(gain*100, "mean-gain-%")
}

func BenchmarkFigure8CriticalLoops(b *testing.B) {
	b.ReportAllocs()
	var wakeup float64
	for i := 0; i < b.N; i++ {
		f := experiments.RunFigure8(benchOpts)
		wakeup = f.Sweeps[0].Points[8].RelativeIPC[trace.Integer]
	}
	b.ReportMetric(wakeup, "relIPC-wakeup+8")
}

func BenchmarkFigure11SegmentedWakeup(b *testing.B) {
	b.ReportAllocs()
	var loss float64
	for i := 0; i < b.N; i++ {
		f := experiments.RunFigure11(benchOpts)
		loss = 1 - f.Points[9].RelativeIPC[trace.Integer]
	}
	b.ReportMetric(loss*100, "int-10stage-loss-%")
}

func BenchmarkSegmentedSelect(b *testing.B) {
	b.ReportAllocs()
	var loss float64
	for i := 0; i < b.N; i++ {
		s := experiments.RunSegmentedSelect(benchOpts)
		loss = 1 - s.Res.RelativeIPC[trace.Integer]
	}
	b.ReportMetric(loss*100, "int-loss-%")
}

func BenchmarkCray1SComparison(b *testing.B) {
	b.ReportAllocs()
	var opt float64
	for i := 0; i < b.N; i++ {
		opt = experiments.RunCray1S(benchOpts).Sweep.OptimalUseful(trace.Integer)
	}
	b.ReportMetric(opt, "optimal-FO4")
}

func BenchmarkHeadlineOptimalClock(b *testing.B) {
	b.ReportAllocs()
	var ghz float64
	for i := 0; i < b.N; i++ {
		ghz = experiments.RunHeadline(benchOpts).IntFreqGHz
	}
	b.ReportMetric(ghz, "int-optimal-GHz")
}

func BenchmarkWireStudy(b *testing.B) {
	b.ReportAllocs()
	var cost float64
	for i := 0; i < b.N; i++ {
		w := experiments.RunWireStudy(benchOpts)
		base := w.Without.Points[4].GroupBIPS[trace.Integer]
		wired := w.With.Points[4].GroupBIPS[trace.Integer]
		cost = (1 - wired/base) * 100
	}
	b.ReportMetric(cost, "wire-cost-%-at-6FO4")
}

// BenchmarkParallelSweepSpeedup times the Figure 5 sweep on the serial
// path (Workers 1) and on every core (Workers 0) within each iteration
// and reports their ratio. On a single-core host the ratio is ~1.0 by
// construction; the engine's speedup shows from 2+ cores up.
func BenchmarkParallelSweepSpeedup(b *testing.B) {
	b.ReportAllocs()
	var speedup float64
	for i := 0; i < b.N; i++ {
		serial := benchOpts
		serial.Workers = 1
		start := time.Now()
		experiments.RunFigure5(serial)
		serialDur := time.Since(start)

		start = time.Now()
		experiments.RunFigure5(benchOpts)
		parallelDur := time.Since(start)
		speedup = float64(serialDur) / float64(parallelDur)
	}
	b.ReportMetric(speedup, "speedup-x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

func BenchmarkAblation(b *testing.B) {
	b.ReportAllocs()
	var memGain float64
	for i := 0; i < b.N; i++ {
		a := experiments.RunAblation(benchOpts)
		for _, p := range a.Points {
			if p.Name == "perfect memory (all L1 hits)" {
				memGain = p.Relative
			}
		}
	}
	b.ReportMetric(memGain, "perfect-memory-gain")
}
