// Command wirestudy runs the paper's Section 7 future work: the pipeline
// depth sweep with floorplan wire delays added to every critical loop
// (bypass, load-use, fetch, wakeup), quantifying how much performance
// wires cost and whether they move the optimal pipeline depth. The
// paper's conjecture — that wire delay does not change the conclusions
// for a fixed microarchitecture — holds in this model: wires cost several
// percent of performance but leave the optimum within the same plateau.
package main

import (
	"flag"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	sim := cliflags.Register(experiments.Full.Instructions)
	tel := cliflags.RegisterTel()
	flag.Parse()
	o, run := cliflags.MustRun("wirestudy", sim, tel)
	cliflags.Emit(*sim.JSON, experiments.RunWireStudy(o))
	cliflags.MustClose(run)
}
