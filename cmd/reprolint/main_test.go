package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// chdir moves the process into dir for one test; the driver resolves
// the module from the working directory like the real binary does.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// writeModule lays out a throwaway module on disk: files maps
// module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const cleanCircuit = `// Package circuit is a deterministic stand-in.
package circuit

// Delay is a pure function.
func Delay(fo4 float64) float64 { return 6.5 * fo4 }
`

// injectedCircuit carries the nondet/bad fixture's violation shape,
// injected into a simulation package path where the default scopes
// must catch it.
const injectedCircuit = `// Package circuit sneaks in a clock read.
package circuit

import "time"

// Delay depends on when it runs.
func Delay(fo4 float64) float64 {
	return 6.5 * fo4 * float64(time.Now().Unix()%2+1)
}
`

// TestInjectedViolation is the acceptance check: a fixture-shaped
// violation injected into a simulation package must make the driver
// exit nonzero with a correct file:line finding, and the clean variant
// of the same module must exit zero.
func TestInjectedViolation(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                      "module faux\n\ngo 1.22\n",
		"internal/circuit/circuit.go": injectedCircuit,
	})
	chdir(t, root)

	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	const want = "internal/circuit/circuit.go:8: nondeterminism:"
	if !strings.Contains(out.String(), want) {
		t.Errorf("output missing %q:\n%s", want, out.String())
	}
}

func TestCleanModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                      "module faux\n\ngo 1.22\n",
		"internal/circuit/circuit.go": cleanCircuit,
	})
	chdir(t, root)

	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if out.Len() > 0 {
		t.Errorf("clean module produced output: %s", out.String())
	}
}

// TestJSONAndFilters: -json must emit a parseable array, and package
// patterns must narrow what is analyzed.
func TestJSONAndFilters(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                      "module faux\n\ngo 1.22\n",
		"internal/circuit/circuit.go": injectedCircuit,
		"internal/fo4/fo4.go":         "// Package fo4 is clean.\npackage fo4\n\n// X is a constant.\nconst X = 1\n",
	})
	chdir(t, root)

	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./internal/..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) != 1 || findings[0].Rule != "nondeterminism" || findings[0].Line != 8 {
		t.Errorf("unexpected findings: %+v", findings)
	}

	// Filtering to the clean subtree must exit 0.
	out.Reset()
	errb.Reset()
	if code := run([]string{"./internal/fo4"}, &out, &errb); code != 0 {
		t.Fatalf("filtered run exit = %d, want 0; stdout: %s stderr: %s", code, out.String(), errb.String())
	}

	// A pattern matching nothing is a usage error.
	if code := run([]string{"./nosuch/..."}, &out, &errb); code != 2 {
		t.Errorf("no-match pattern exit = %d, want 2", code)
	}
}

// TestListAndRules: -list names every rule; -rules filters and rejects
// unknown names.
func TestListAndRules(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing rule %s", a.Name)
		}
	}
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errb); code != 2 {
		t.Errorf("unknown -rules exit = %d, want 2", code)
	}
}

// The transitive-violation module: the sim entry point is clean, but it
// calls a helper package that no per-package scope covers; only the
// interprocedural reachability pass can catch the clock read, and the
// finding must carry the call chain.
var transitiveModule = map[string]string{
	"go.mod": "module faux\n\ngo 1.22\n",
	"internal/core/core.go": `// Package core drives points.
package core

import "faux/internal/util"

// SimulatePoint is the entry point the reachability rules root at.
func SimulatePoint(x float64) float64 { return util.Jitter(x) }
`,
	"internal/util/util.go": `// Package util sits outside every per-package scope.
package util

import "time"

// Jitter perturbs its input by the clock.
func Jitter(x float64) float64 { return x * float64(time.Now().Unix()%2+1) }
`,
}

// TestTransitiveViolation is the interprocedural acceptance check: a
// banned callee two packages away from the entry point, in a package
// the per-package scopes ignore, must be reported with the full call
// chain from the entry point.
func TestTransitiveViolation(t *testing.T) {
	root := writeModule(t, transitiveModule)
	chdir(t, root)

	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"internal/util/util.go:7: nondeterminism:",
		"[via internal/core.SimulatePoint -> internal/util.Jitter]",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// The same pass must stay quiet when the helper is clean.
	clean := map[string]string{}
	for k, v := range transitiveModule {
		clean[k] = v
	}
	clean["internal/util/util.go"] = "// Package util is pure.\npackage util\n\n// Jitter is the identity.\nfunc Jitter(x float64) float64 { return x }\n"
	root2 := writeModule(t, clean)
	chdir(t, root2)
	out.Reset()
	errb.Reset()
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("clean transitive module exit = %d; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
}

// TestJSONSchema pins the -json output shape: exactly these keys, with
// chain present only on reachability findings. Downstream tooling
// (baselines, dashboards) parses this; changing it is a contract break.
func TestJSONSchema(t *testing.T) {
	root := writeModule(t, transitiveModule)
	chdir(t, root)

	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var raw []map[string]any
	if err := json.Unmarshal(out.Bytes(), &raw); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(raw) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %s", len(raw), out.String())
	}
	keys := make([]string, 0, len(raw[0]))
	for k := range raw[0] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := []string{"chain", "col", "file", "line", "message", "rule"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Errorf("-json finding keys = %v, want %v", keys, want)
	}
	chain, ok := raw[0]["chain"].([]any)
	if !ok || len(chain) != 2 {
		t.Errorf("chain should be a 2-element array, got %v", raw[0]["chain"])
	}

	// A per-package finding carries no chain key at all (omitempty).
	root2 := writeModule(t, map[string]string{
		"go.mod":                      "module faux\n\ngo 1.22\n",
		"internal/circuit/circuit.go": injectedCircuit,
	})
	chdir(t, root2)
	out.Reset()
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	raw = nil
	if err := json.Unmarshal(out.Bytes(), &raw); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(raw) != 1 {
		t.Fatalf("want exactly 1 finding, got %d", len(raw))
	}
	if _, has := raw[0]["chain"]; has {
		t.Errorf("per-package finding should omit the chain key, got %v", raw[0])
	}
}

// TestBaseline: -write-baseline records the current findings; -baseline
// forgives exactly those and fails only on regressions.
func TestBaseline(t *testing.T) {
	root := writeModule(t, transitiveModule)
	chdir(t, root)

	var out, errb bytes.Buffer
	if code := run([]string{"-write-baseline", "findings.json", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline exit = %d; stderr: %s", code, errb.String())
	}

	// Same findings, baselined: no regressions, exit 0.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", "findings.json", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "no regressions") {
		t.Errorf("stderr should note the baselined findings: %s", errb.String())
	}

	// Inject a second, different violation: only it is a regression.
	if err := os.WriteFile(filepath.Join(root, "internal", "core", "extra.go"), []byte(`// Package core grows a clock read.
package core

import "time"

// Drift reads the wall clock.
func Drift() int64 { return time.Now().Unix() }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", "findings.json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("regression run exit = %d, want 1; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "internal/core/extra.go:7: nondeterminism:") {
		t.Errorf("regression finding missing from output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "internal/util/util.go") {
		t.Errorf("baselined finding should not be re-reported:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "new finding(s) beyond") {
		t.Errorf("stderr should separate regressions from baselined findings: %s", errb.String())
	}

	// A missing baseline file is a usage error, not a silent pass.
	if code := run([]string{"-baseline", "nosuch.json", "./..."}, &out, &errb); code != 2 {
		t.Errorf("missing baseline exit = %d, want 2", code)
	}
}

// TestStatsJSON: -stats-json emits one row per rule (plus the shared
// callgraph construction row) with non-negative wall times.
func TestStatsJSON(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                      "module faux\n\ngo 1.22\n",
		"internal/circuit/circuit.go": cleanCircuit,
	})
	chdir(t, root)

	var out, errb bytes.Buffer
	if code := run([]string{"-stats-json", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, errb.String())
	}
	var stats []analysis.RuleStat
	if err := json.Unmarshal(out.Bytes(), &stats); err != nil {
		t.Fatalf("-stats-json output does not parse: %v\n%s", err, out.String())
	}
	seen := map[string]bool{}
	for _, s := range stats {
		if s.Seconds < 0 {
			t.Errorf("rule %s has negative wall time %v", s.Rule, s.Seconds)
		}
		seen[s.Rule] = true
	}
	for _, a := range analysis.Analyzers() {
		if !seen[a.Name] {
			t.Errorf("-stats-json missing a row for rule %s", a.Name)
		}
	}
	if !seen["callgraph"] {
		t.Errorf("-stats-json missing the callgraph construction row")
	}
}
