package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// chdir moves the process into dir for one test; the driver resolves
// the module from the working directory like the real binary does.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// writeModule lays out a throwaway module on disk: files maps
// module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const cleanCircuit = `// Package circuit is a deterministic stand-in.
package circuit

// Delay is a pure function.
func Delay(fo4 float64) float64 { return 6.5 * fo4 }
`

// injectedCircuit carries the nondet/bad fixture's violation shape,
// injected into a simulation package path where the default scopes
// must catch it.
const injectedCircuit = `// Package circuit sneaks in a clock read.
package circuit

import "time"

// Delay depends on when it runs.
func Delay(fo4 float64) float64 {
	return 6.5 * fo4 * float64(time.Now().Unix()%2+1)
}
`

// TestInjectedViolation is the acceptance check: a fixture-shaped
// violation injected into a simulation package must make the driver
// exit nonzero with a correct file:line finding, and the clean variant
// of the same module must exit zero.
func TestInjectedViolation(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                      "module faux\n\ngo 1.22\n",
		"internal/circuit/circuit.go": injectedCircuit,
	})
	chdir(t, root)

	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	const want = "internal/circuit/circuit.go:8: nondeterminism:"
	if !strings.Contains(out.String(), want) {
		t.Errorf("output missing %q:\n%s", want, out.String())
	}
}

func TestCleanModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                      "module faux\n\ngo 1.22\n",
		"internal/circuit/circuit.go": cleanCircuit,
	})
	chdir(t, root)

	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if out.Len() > 0 {
		t.Errorf("clean module produced output: %s", out.String())
	}
}

// TestJSONAndFilters: -json must emit a parseable array, and package
// patterns must narrow what is analyzed.
func TestJSONAndFilters(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                      "module faux\n\ngo 1.22\n",
		"internal/circuit/circuit.go": injectedCircuit,
		"internal/fo4/fo4.go":         "// Package fo4 is clean.\npackage fo4\n\n// X is a constant.\nconst X = 1\n",
	})
	chdir(t, root)

	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./internal/..."}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) != 1 || findings[0].Rule != "nondeterminism" || findings[0].Line != 8 {
		t.Errorf("unexpected findings: %+v", findings)
	}

	// Filtering to the clean subtree must exit 0.
	out.Reset()
	errb.Reset()
	if code := run([]string{"./internal/fo4"}, &out, &errb); code != 0 {
		t.Fatalf("filtered run exit = %d, want 0; stdout: %s stderr: %s", code, out.String(), errb.String())
	}

	// A pattern matching nothing is a usage error.
	if code := run([]string{"./nosuch/..."}, &out, &errb); code != 2 {
		t.Errorf("no-match pattern exit = %d, want 2", code)
	}
}

// TestListAndRules: -list names every rule; -rules filters and rejects
// unknown names.
func TestListAndRules(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing rule %s", a.Name)
		}
	}
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errb); code != 2 {
		t.Errorf("unknown -rules exit = %d, want 2", code)
	}
}
