// Command reprolint runs the repo's invariant-enforcing static
// analyzers (internal/analysis) over the module: the per-package
// determinism rules (nondeterminism, mapiter, traceimmutable, obsinert,
// goroutinescope), their interprocedural reachability extensions, and
// the serving-path concurrency rules (lockorder, ctxcancel, gojoin)
// built on the same call graph. It loads and type-checks every package
// with the standard library only — no build artifacts or third-party
// tooling — so it runs anywhere the Go toolchain does.
//
// Usage:
//
//	reprolint [-json] [-rules a,b] [-baseline f] [-write-baseline f]
//	          [-stats] [-stats-json] [package patterns]
//
// Patterns are module-relative: "./..." (the default) means the whole
// module, "./internal/..." a subtree, "./internal/core" or
// "repro/internal/core" one package. Findings print as
// "file:line: rule: message", with the call chain appended for
// reachability findings (or as a JSON array with -json); any finding
// makes the exit status 1; load or usage errors exit 2.
//
// -write-baseline records the current findings; a later run with
// -baseline fails only on findings not in the recording (matched by
// rule, file and message — line numbers may drift), so a new rule can
// land strict while its pre-existing findings are burned down.
// -stats prints per-rule wall time and finding counts to stderr;
// -stats-json emits the same as JSON on stdout for tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list the rules and the invariants they encode, then exit")
	baseline := fs.String("baseline", "", "fail only on findings not present in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "record current findings to this file and exit 0")
	stats := fs.Bool("stats", false, "print per-rule wall time and finding counts to stderr")
	statsJSON := fs.Bool("stats-json", false, "emit per-rule wall time and finding counts as JSON on stdout")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: reprolint [-json] [-rules a,b] [-baseline f] [-write-baseline f] [-stats] [-stats-json] [package patterns]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		var unknown string
		analyzers, unknown = analysis.ByName(strings.Split(*rules, ","))
		if analyzers == nil {
			fmt.Fprintf(stderr, "reprolint: unknown rule %q (see reprolint -list)\n", unknown)
			return 2
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	l, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := filter(l, pkgs, patterns)
	if len(selected) == 0 {
		fmt.Fprintf(stderr, "reprolint: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	// The clock is injected here, not read inside internal/analysis:
	// the analyzer package sits in its own nondeterminism scope.
	findings, ruleStats := analysis.RunStats(l, selected, analyzers, analysis.Options{Now: time.Now})

	if *writeBaseline != "" {
		if err := writeJSONFile(*writeBaseline, findingsOrEmpty(findings)); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "reprolint: baseline of %d finding(s) written to %s\n", len(findings), *writeBaseline)
		return 0
	}

	baselined := 0
	if *baseline != "" {
		var err error
		findings, baselined, err = applyBaseline(*baseline, findings)
		if err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	}

	if *stats {
		for _, s := range ruleStats {
			fmt.Fprintf(stderr, "reprolint: %-16s %8.1fms  %d finding(s)\n", s.Rule, s.Seconds*1000, s.Findings)
		}
	}
	if *statsJSON {
		if err := encodeJSON(stdout, ruleStats); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	}

	if *asJSON {
		if err := encodeJSON(stdout, findingsOrEmpty(findings)); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	} else if !*statsJSON {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			switch {
			case baselined > 0:
				fmt.Fprintf(stderr, "reprolint: %d new finding(s) beyond the %d baselined\n", len(findings), baselined)
			default:
				fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", len(findings))
			}
		}
		return 1
	}
	if baselined > 0 && !*asJSON {
		fmt.Fprintf(stderr, "reprolint: no regressions (%d baselined finding(s) remain)\n", baselined)
	}
	return 0
}

func findingsOrEmpty(fs []analysis.Finding) []analysis.Finding {
	if fs == nil {
		return []analysis.Finding{}
	}
	return fs
}

func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := encodeJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// baselineKey identifies a finding across line drift: the rule, the
// file, and the exact message. Two identical violations in one file
// count twice — the baseline is a multiset.
func baselineKey(f analysis.Finding) string {
	return f.Rule + "\x00" + f.File + "\x00" + f.Message
}

// applyBaseline filters findings down to regressions: each baseline
// entry forgives one matching finding. It returns the surviving
// findings and how many were forgiven.
func applyBaseline(path string, findings []analysis.Finding) ([]analysis.Finding, int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("reading baseline: %w", err)
	}
	var base []analysis.Finding
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, 0, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	budget := map[string]int{}
	for _, f := range base {
		budget[baselineKey(f)]++
	}
	var kept []analysis.Finding
	forgiven := 0
	for _, f := range findings {
		k := baselineKey(f)
		if budget[k] > 0 {
			budget[k]--
			forgiven++
			continue
		}
		kept = append(kept, f)
	}
	return kept, forgiven, nil
}

// filter selects the loaded packages matching any pattern. A pattern is
// matched against both the import path and the module-relative
// directory, with a trailing "/..." matching the whole subtree; "." and
// "./..." are relative to the module root.
func filter(l *analysis.Loader, pkgs []*analysis.Package, patterns []string) []*analysis.Package {
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matches(l.ModulePath, p, pat) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func matches(mod string, p *analysis.Package, pat string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "" || pat == "." {
		return p.Rel == ""
	}
	if pat == "..." {
		return true
	}
	names := []string{p.Path, p.Rel}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		if prefix == "" || prefix == "." || prefix == mod {
			return true // "./..." or "mod/...": the whole module
		}
		for _, n := range names {
			if n == prefix || strings.HasPrefix(n, prefix+"/") {
				return true
			}
		}
		return false
	}
	for _, n := range names {
		if n == pat {
			return true
		}
	}
	return false
}
