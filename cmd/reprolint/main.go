// Command reprolint runs the repo's invariant-enforcing static
// analyzers (internal/analysis) over the module: nondeterminism,
// mapiter, traceimmutable, obsinert and goroutinescope. It loads and
// type-checks every package with the standard library only — no build
// artifacts or third-party tooling — so it runs anywhere the Go
// toolchain does.
//
// Usage:
//
//	reprolint [-json] [-rules a,b] [package patterns]
//
// Patterns are module-relative: "./..." (the default) means the whole
// module, "./internal/..." a subtree, "./internal/core" or
// "repro/internal/core" one package. Findings print as
// "file:line: rule: message" (or a JSON array with -json) and any
// finding makes the exit status 1; load or usage errors exit 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list the rules and the invariants they encode, then exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: reprolint [-json] [-rules a,b] [package patterns]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		var unknown string
		analyzers, unknown = analysis.ByName(strings.Split(*rules, ","))
		if analyzers == nil {
			fmt.Fprintf(stderr, "reprolint: unknown rule %q (see reprolint -list)\n", unknown)
			return 2
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	l, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := filter(l, pkgs, patterns)
	if len(selected) == 0 {
		fmt.Fprintf(stderr, "reprolint: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	findings := analysis.Run(l, selected, analyzers, analysis.Options{})
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// filter selects the loaded packages matching any pattern. A pattern is
// matched against both the import path and the module-relative
// directory, with a trailing "/..." matching the whole subtree; "." and
// "./..." are relative to the module root.
func filter(l *analysis.Loader, pkgs []*analysis.Package, patterns []string) []*analysis.Package {
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matches(l.ModulePath, p, pat) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

func matches(mod string, p *analysis.Package, pat string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "" || pat == "." {
		return p.Rel == ""
	}
	if pat == "..." {
		return true
	}
	names := []string{p.Path, p.Rel}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		if prefix == "" || prefix == "." || prefix == mod {
			return true // "./..." or "mod/...": the whole module
		}
		for _, n := range names {
			if n == prefix || strings.HasPrefix(n, prefix+"/") {
				return true
			}
		}
		return false
	}
	for _, n := range names {
		if n == pat {
			return true
		}
	}
	return false
}
