// Command pipesweep runs the pipeline-depth sweeps of Section 4:
// Figure 4a (in-order, no overhead), Figure 4b (in-order, 1.8 FO4
// overhead), Figure 5 (out-of-order) and Figure 6 (overhead sensitivity).
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", experiments.Full.Instructions, "instructions per benchmark")
	which := flag.String("fig", "all", "figure to run: 4a, 4b, 5, 6 or all")
	flag.Parse()
	o := experiments.Options{Instructions: *n}

	run := map[string]func(){
		"4a": func() { fmt.Print(experiments.RunFigure4a(o).Render()) },
		"4b": func() { fmt.Print(experiments.RunFigure4b(o).Render()) },
		"5":  func() { fmt.Print(experiments.RunFigure5(o).Render()) },
		"6":  func() { fmt.Print(experiments.RunFigure6(o).Render()) },
	}
	if *which == "all" {
		for _, k := range []string{"4a", "4b", "5", "6"} {
			run[k]()
			fmt.Println()
		}
		return
	}
	f, ok := run[*which]
	if !ok {
		fmt.Println("unknown figure; use 4a, 4b, 5, 6 or all")
		return
	}
	f()
}
