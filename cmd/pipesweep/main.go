// Command pipesweep runs the pipeline-depth sweeps of Section 4:
// Figure 4a (in-order, no overhead), Figure 4b (in-order, 1.8 FO4
// overhead), Figure 5 (out-of-order) and Figure 6 (overhead sensitivity).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	sim := cliflags.Register(experiments.Full.Instructions)
	which := flag.String("fig", "all", "figure to run: 4a, 4b, 5, 6 or all")
	flag.Parse()
	o := sim.MustOptions()

	run := map[string]func() cliflags.Result{
		"4a": func() cliflags.Result { return experiments.RunFigure4a(o) },
		"4b": func() cliflags.Result { return experiments.RunFigure4b(o) },
		"5":  func() cliflags.Result { return experiments.RunFigure5(o) },
		"6":  func() cliflags.Result { return experiments.RunFigure6(o) },
	}
	if *which == "all" {
		var results []cliflags.Result
		for _, k := range []string{"4a", "4b", "5", "6"} {
			results = append(results, run[k]())
		}
		cliflags.Emit(*sim.JSON, results...)
		return
	}
	f, ok := run[*which]
	if !ok {
		fmt.Fprintln(os.Stderr, "unknown figure; use 4a, 4b, 5, 6 or all")
		os.Exit(2)
	}
	cliflags.Emit(*sim.JSON, f())
}
