// Command pipesweep runs the pipeline-depth sweeps of Section 4:
// Figure 4a (in-order, no overhead), Figure 4b (in-order, 1.8 FO4
// overhead), Figure 5 (out-of-order) and Figure 6 (overhead sensitivity).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	sim := cliflags.Register(experiments.Full.Instructions)
	tel := cliflags.RegisterTel()
	which := flag.String("fig", "all", "figure to run: 4a, 4b, 5, 6 or all")
	flag.Parse()

	run := map[string]func(experiments.Options) cliflags.Result{
		"4a": func(o experiments.Options) cliflags.Result { return experiments.RunFigure4a(o) },
		"4b": func(o experiments.Options) cliflags.Result { return experiments.RunFigure4b(o) },
		"5":  func(o experiments.Options) cliflags.Result { return experiments.RunFigure5(o) },
		"6":  func(o experiments.Options) cliflags.Result { return experiments.RunFigure6(o) },
	}
	if _, ok := run[*which]; !ok && *which != "all" {
		fmt.Fprintln(os.Stderr, "unknown figure; use 4a, 4b, 5, 6 or all")
		os.Exit(2)
	}
	o, tr := cliflags.MustRun("pipesweep", sim, tel)
	tr.SetConfig("fig", *which)

	var results []cliflags.Result
	if *which == "all" {
		for _, k := range []string{"4a", "4b", "5", "6"} {
			results = append(results, run[k](o))
		}
	} else {
		results = append(results, run[*which](o))
	}
	cliflags.Emit(*sim.JSON, results...)
	cliflags.MustClose(tr)
}
