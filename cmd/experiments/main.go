// Command experiments runs the complete evaluation — every table and
// figure — and prints the paper-vs-measured report that EXPERIMENTS.md
// records.
package main

import (
	"flag"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	sim := cliflags.Register(experiments.Full.Instructions)
	tel := cliflags.RegisterTel()
	latchStep := flag.Float64("latchstep", 2.0, "latch sweep granularity, ps")
	skipCircuit := flag.Bool("nocircuit", false, "skip the (slow) circuit-level experiments")
	flag.Parse()
	o, run := cliflags.MustRun("experiments", sim, tel)
	rec := run.Recorder()

	results := []cliflags.Result{experiments.RunFigure1()}
	if !*skipCircuit {
		end := rec.Study("table1")
		results = append(results, experiments.RunTable1(*latchStep))
		end()
	}
	endT3 := rec.Study("table3")
	results = append(results, experiments.RunTable3())
	endT3()
	results = append(results,
		experiments.RunFigure4a(o),
		experiments.RunFigure4b(o),
		experiments.RunFigure5(o),
		experiments.RunFigure6(o),
		experiments.RunFigure7(o),
		experiments.RunFigure8(o),
		experiments.RunFigure11(o),
		experiments.RunSegmentedSelect(o),
		experiments.RunCray1S(o),
		experiments.RunWireStudy(o),
		experiments.RunAblation(o),
		experiments.RunHeadline(o),
	)
	cliflags.Emit(*sim.JSON, results...)
	cliflags.MustClose(run)
}
