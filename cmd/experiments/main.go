// Command experiments runs the complete evaluation — every table and
// figure — and prints the paper-vs-measured report that EXPERIMENTS.md
// records.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", experiments.Full.Instructions, "instructions per benchmark")
	latchStep := flag.Float64("latchstep", 2.0, "latch sweep granularity, ps")
	skipCircuit := flag.Bool("nocircuit", false, "skip the (slow) circuit-level experiments")
	flag.Parse()
	o := experiments.Options{Instructions: *n}

	fmt.Print(experiments.RunFigure1().Render())
	fmt.Println()
	if !*skipCircuit {
		fmt.Print(experiments.RunTable1(*latchStep).Render())
		fmt.Println()
	}
	fmt.Print(experiments.RunTable3().Render())
	fmt.Println()
	fmt.Print(experiments.RunFigure4a(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunFigure4b(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunFigure5(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunFigure6(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunFigure7(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunFigure8(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunFigure11(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunSegmentedSelect(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunCray1S(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunWireStudy(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunAblation(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunHeadline(o).Render())
}
