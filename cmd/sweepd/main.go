// Command sweepd is the sweep-serving daemon: a long-running HTTP front
// end over the simulation library (internal/serve). Clients POST grid
// requests to /sweep and stream per-point results back as NDJSON;
// overlapping grids from concurrent clients share simulation work
// through a content-addressed result cache and singleflight dedup.
//
//	sweepd -addr 127.0.0.1:8080 -workers 0 -queue 4096
//
// Endpoints:
//
//	POST /sweep    {"useful":[4,8],"benchmarks":["gcc"],"instructions":20000}
//	GET  /healthz  liveness + queue depth; 503 while draining
//	GET  /stats    cache hit ratio, queue gauges, telemetry snapshot
//
// SIGINT/SIGTERM drain gracefully: admission stops (new sweeps get 503),
// in-flight streams run to completion within -drain-timeout, then the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliflags"
	"repro/internal/serve"
)

func main() {
	sv := cliflags.RegisterServe()
	tel := cliflags.RegisterTel()
	flag.Parse()
	sv.MustValidate()
	run := tel.MustStart("sweepd")
	run.SetConfig("addr", *sv.Addr)
	run.SetConfig("workers", *sv.Workers)
	run.SetConfig("queue", *sv.Queue)
	run.SetConfig("max_points", *sv.MaxPoints)
	run.SetConfig("max_instructions", *sv.MaxInstructions)
	run.SetConfig("cache", *sv.Cache)

	srv := serve.New(serve.Config{
		Workers:             *sv.Workers,
		QueueLimit:          *sv.Queue,
		MaxPointsPerRequest: *sv.MaxPoints,
		MaxInstructions:     *sv.MaxInstructions,
		CacheLimit:          *sv.Cache,
		Rec:                 run.Recorder(),
		Log:                 run.Log,
	})
	hs := &http.Server{Addr: *sv.Addr, Handler: srv}

	ln, err := net.Listen("tcp", *sv.Addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	// The readiness line goes to stderr (stdout stays free for tooling
	// that pipes sweep output) and reports the resolved port for -addr :0.
	fmt.Fprintf(os.Stderr, "sweepd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	// The listener needs its own goroutine so main can watch for
	// signals; all simulation work stays behind the deterministic
	// executor inside internal/serve.
	go func() { errc <- hs.Serve(ln) }() //reprolint:allow goroutinescope: the HTTP accept loop must run beside the signal watcher; simulation parallelism stays behind exec.MapWithState

	exit := 0
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "error:", err)
			exit = 1
		}
	case <-ctx.Done():
		stop()
		run.Log.Info("draining", "timeout", *sv.DrainTimeout)
		srv.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), *sv.DrainTimeout)
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "error: drain incomplete:", err)
			exit = 1
		}
		cancel()
	}
	srv.Close()
	cliflags.MustClose(run)
	os.Exit(exit)
}
