// Command sweepd is the sweep-serving daemon: a long-running HTTP front
// end over the simulation library (internal/serve). Clients POST grid
// requests to /sweep and stream per-point results back as NDJSON;
// overlapping grids from concurrent clients share simulation work
// through a content-addressed result cache and singleflight dedup.
//
//	sweepd -addr 127.0.0.1:8080 -workers 0 -queue 4096 -store /var/lib/sweepd
//
// Endpoints:
//
//	POST /sweep    {"useful":[4,8],"benchmarks":["gcc"],"instructions":20000}
//	GET  /healthz  liveness + queue depth; 503 {"status":"draining"} while draining
//	GET  /stats    cache hit ratio, uptime, store economy, telemetry snapshot
//	GET  /metrics  Prometheus text exposition (latency histograms, queue
//	               gauges, store economy, rejects by reason; -metrics=false
//	               disables)
//	GET  /results  ?since=<cursor>: cursor-ordered delta sync (needs -store)
//
// Every request carries an X-Request-Id (an inbound one is honored) that
// is echoed in the response, threaded through scheduler admission and
// simulation, and stamped on each structured access-log line; requests
// slower than -slow-request additionally log at Warn. With -debug-addr
// a second, private listener serves /debug/pprof so a live daemon can be
// profiled without restarting.
//
// With -store DIR every simulated point is appended, write-through, to a
// durable content-addressed segment log; a restarted daemon warm-starts
// from it and serves its whole history byte-identically with zero
// re-simulation. Without -store the daemon is memory-only, exactly as
// before.
//
// SIGINT/SIGTERM drain gracefully: admission stops (new sweeps get 503
// with the -retry-after backoff), in-flight streams run to completion
// within -drain-timeout, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliflags"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	sv := cliflags.RegisterServe()
	tel := cliflags.RegisterTel()
	flag.Parse()
	sv.MustValidate()
	run := tel.MustStart("sweepd")
	run.SetConfig("addr", *sv.Addr)
	run.SetConfig("workers", *sv.Workers)
	run.SetConfig("queue", *sv.Queue)
	run.SetConfig("max_points", *sv.MaxPoints)
	run.SetConfig("max_instructions", *sv.MaxInstructions)
	run.SetConfig("cache", *sv.Cache)
	run.SetConfig("store", *sv.Store)
	run.SetConfig("segment_bytes", *sv.SegmentBytes)
	run.SetConfig("compact_interval", sv.CompactInterval.String())
	run.SetConfig("retry_after", *sv.RetryAfter)
	run.SetConfig("batch", *sv.Batch)
	run.SetConfig("metrics", *sv.Metrics)
	run.SetConfig("slow_request", sv.SlowRequest.String())
	run.SetConfig("debug_addr", *sv.DebugAddr)

	// The durable store and the server must agree on the code version:
	// it is folded into every content address, so a mismatch would
	// version-skip the entire log on replay.
	codeVersion := serve.DefaultCodeVersion()
	var durable *store.Durable
	var resultStore store.ResultStore // nil = serve's in-memory default
	if *sv.Store != "" {
		d, err := store.Open(store.Options{
			Dir:             *sv.Store,
			CacheLimit:      *sv.Cache,
			SegmentBytes:    *sv.SegmentBytes,
			CompactInterval: *sv.CompactInterval,
			CodeVersion:     codeVersion,
			Rec:             run.Recorder(),
			Log:             run.Log,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		durable = d
		resultStore = d
	}

	srv := serve.New(serve.Config{
		Workers:             *sv.Workers,
		QueueLimit:          *sv.Queue,
		MaxPointsPerRequest: *sv.MaxPoints,
		MaxInstructions:     *sv.MaxInstructions,
		CacheLimit:          *sv.Cache,
		CodeVersion:         codeVersion,
		Store:               resultStore,
		RetryAfter:          *sv.RetryAfter,
		Rec:                 run.Recorder(),
		Log:                 run.Log,
		DisableMetrics:      !*sv.Metrics,
		SlowRequest:         *sv.SlowRequest,
		DisableBatch:        !*sv.Batch,
	})
	hs := &http.Server{Addr: *sv.Addr, Handler: srv}

	if *sv.DebugAddr != "" {
		// The pprof surface binds its own listener, never the serving
		// one: profiles are an operator tool and must not be reachable
		// through whatever exposes the sweep port. DefaultServeMux is
		// deliberately avoided — a private mux carries only pprof.
		dln, err := net.Listen("tcp", *sv.DebugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(os.Stderr, "sweepd: debug listening on %s\n", dln.Addr())
		dbg := &http.Server{Handler: dmux}
		// No shutdown plumbing: the debug listener is an operator tap
		// that lives and dies with the process.
		//reprolint:allow gojoin: operator tap with process lifetime; no shutdown plumbing by design
		go dbg.Serve(dln) //reprolint:allow goroutinescope: the debug listener serves pprof beside the main accept loop; it runs no simulation and dies with the process
	}

	ln, err := net.Listen("tcp", *sv.Addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	// The readiness line goes to stderr (stdout stays free for tooling
	// that pipes sweep output) and reports the resolved port for -addr :0.
	fmt.Fprintf(os.Stderr, "sweepd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	// The listener needs its own goroutine so main can watch for
	// signals; all simulation work stays behind the deterministic
	// executor inside internal/serve.
	//reprolint:allow gojoin: the accept loop joins through the buffered errc receive in the select below and dies with the process
	go func() { errc <- hs.Serve(ln) }() //reprolint:allow goroutinescope: the HTTP accept loop must run beside the signal watcher; simulation parallelism stays behind exec.MapWithState

	exit := 0
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "error:", err)
			exit = 1
		}
	case <-ctx.Done():
		stop()
		run.Log.Info("draining", "timeout", *sv.DrainTimeout)
		srv.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), *sv.DrainTimeout)
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "error: drain incomplete:", err)
			exit = 1
		}
		cancel()
	}
	srv.Close()
	if durable != nil {
		// After the scheduler drains there are no more Puts; the store
		// stops its coordinators, syncs the tail and closes its files.
		if err := durable.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "error: store close:", err)
			exit = 1
		}
	}
	cliflags.MustClose(run)
	os.Exit(exit)
}
