package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOld = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunOutOfOrder/176.gcc         	       2	  23148238 ns/op	         0.6731 IPC	 4126292 B/op	  128518 allocs/op
BenchmarkRunOutOfOrder/171.swim        	       2	  16899718 ns/op	         1.277 IPC	 2212872 B/op	   63052 allocs/op
BenchmarkFigure5-8                     	       1	2669842027 ns/op	16111891 allocs/op
PASS
`

const sampleNew = `BenchmarkRunOutOfOrder/176.gcc         	      10	   7413791 ns/op	         0.6731 IPC	      13 B/op	       0 allocs/op
BenchmarkRunOutOfOrder/171.swim        	      10	   7535064 ns/op	         1.277 IPC	      13 B/op	       0 allocs/op
BenchmarkExtra 	 5 	 100 ns/op 	 0 allocs/op
`

func TestParseBenchText(t *testing.T) {
	got, err := parseInput([]byte(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3", len(got))
	}
	gcc := got[0]
	if gcc.Name != "BenchmarkRunOutOfOrder/176.gcc" ||
		gcc.NsPerOp != 23148238 || gcc.AllocsPerOp != 128518 || gcc.BytesPerOp != 4126292 {
		t.Fatalf("gcc parsed as %+v", gcc)
	}
	if got[2].Name != "BenchmarkFigure5" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", got[2].Name)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	parsed, err := parseInput([]byte(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := record(parsed)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parseInput(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(parsed) {
		t.Fatalf("round trip lost results: %d != %d", len(back), len(parsed))
	}
	byName := map[string]Result{}
	for _, r := range back {
		byName[r.Name] = r
	}
	for _, want := range parsed {
		if byName[want.Name] != want {
			t.Fatalf("round trip changed %q: %+v != %+v", want.Name, byName[want.Name], want)
		}
	}
}

func TestCompareAndThreshold(t *testing.T) {
	old, err := parseInput([]byte(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	new, err := parseInput([]byte(sampleNew))
	if err != nil {
		t.Fatal(err)
	}
	deltas, onlyOld, onlyNew := compare(old, new)
	if len(deltas) != 2 {
		t.Fatalf("matched %d benchmarks, want 2", len(deltas))
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkFigure5" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkExtra" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
	// Everything improved: no regression at any threshold.
	var w strings.Builder
	if report(&w, deltas, onlyOld, onlyNew, 0) {
		t.Fatalf("improvement flagged as regression:\n%s", w.String())
	}

	// Reverse direction: the ~3x slowdown must trip a 10%% threshold.
	rev, _, _ := compare(new, old)
	w.Reset()
	if !report(&w, rev, nil, nil, 10) {
		t.Fatalf("3x slowdown not flagged:\n%s", w.String())
	}
	if !strings.Contains(w.String(), "!") {
		t.Fatalf("regression marker missing:\n%s", w.String())
	}
}

func TestPctEdgeCases(t *testing.T) {
	if p := pct(0, 0); p != 0 {
		t.Errorf("pct(0,0) = %v, want 0", p)
	}
	if p := pct(0, 5); !math.IsInf(p, 1) {
		t.Errorf("pct(0,5) = %v, want +Inf", p)
	}
	if p := pct(100, 90); p != -10 {
		t.Errorf("pct(100,90) = %v, want -10", p)
	}
	d := delta{oldAlloc: 0, newAlloc: 1}
	if !d.regressed(50) {
		t.Error("zero-baseline alloc regression not flagged")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parseInput([]byte("no benchmarks here\n")); err == nil {
		t.Fatal("want error for input without benchmark lines")
	}
	if _, err := parseInput([]byte("{not json")); err == nil {
		t.Fatal("want error for malformed JSON")
	}
}
