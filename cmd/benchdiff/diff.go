package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded performance. Only the two metrics
// the perf-regression gate cares about are kept: wall time and steady-
// state allocation count per operation (BytesPerOp rides along for
// context in recorded baselines).
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// File is the recorded-baseline JSON document (see -record).
type File struct {
	Benchmarks []Result `json:"benchmarks"`
}

// parseInput reads benchmark results from either a recorded JSON
// baseline (first non-space byte '{') or raw `go test -bench` text.
func parseInput(raw []byte) ([]Result, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var f File
		if err := json.Unmarshal(trimmed, &f); err != nil {
			return nil, fmt.Errorf("parsing recorded baseline: %w", err)
		}
		return f.Benchmarks, nil
	}
	return parseBenchText(raw)
}

// parseBenchText extracts benchmark lines from `go test -bench` output.
// A benchmark line is `BenchmarkName[-P] <iterations> {<value> <unit>}...`;
// the -P GOMAXPROCS suffix is stripped so runs from different hosts
// compare by name.
func parseBenchText(raw []byte) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed line
		}
		r := Result{Name: stripCPUSuffix(fields[0])}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
				seen = true
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		if seen {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

// stripCPUSuffix removes the trailing -<GOMAXPROCS> that `go test`
// appends to benchmark names on multi-proc runs.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.ParseInt(name[i+1:], 10, 64); err != nil {
		return name
	}
	return name[:i]
}

// record serializes results as the baseline JSON document, sorted by
// name so recorded files diff cleanly.
func record(results []Result) ([]byte, error) {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	out, err := json.MarshalIndent(File{Benchmarks: sorted}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// delta is one benchmark's old→new comparison.
type delta struct {
	name               string
	oldNs, newNs       float64
	oldAlloc, newAlloc float64
}

// pct returns the relative change new vs old in percent; +Inf when a
// zero baseline regresses (and 0 for zero→zero).
func pct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / old * 100
}

func (d delta) nsPct() float64    { return pct(d.oldNs, d.newNs) }
func (d delta) allocPct() float64 { return pct(d.oldAlloc, d.newAlloc) }

// regressed reports whether either metric got worse by more than
// threshold percent.
func (d delta) regressed(threshold float64) bool {
	return d.nsPct() > threshold || d.allocPct() > threshold
}

// compare pairs old and new results by name, in old's order. Benchmarks
// present on only one side are returned separately: they cannot regress,
// but the report names them so a silently shrinking benchmark suite is
// visible.
func compare(old, new []Result) (deltas []delta, onlyOld, onlyNew []string) {
	newByName := make(map[string]Result, len(new))
	for _, r := range new {
		newByName[r.Name] = r
	}
	matched := make(map[string]bool, len(old))
	for _, o := range old {
		n, ok := newByName[o.Name]
		if !ok {
			onlyOld = append(onlyOld, o.Name)
			continue
		}
		matched[o.Name] = true
		deltas = append(deltas, delta{
			name:  o.Name,
			oldNs: o.NsPerOp, newNs: n.NsPerOp,
			oldAlloc: o.AllocsPerOp, newAlloc: n.AllocsPerOp,
		})
	}
	for _, r := range new {
		if !matched[r.Name] {
			onlyNew = append(onlyNew, r.Name)
		}
	}
	return deltas, onlyOld, onlyNew
}

// fmtPct renders a relative change, marking regressions past threshold.
func fmtPct(p, threshold float64) string {
	s := fmt.Sprintf("%+.1f%%", p)
	if math.IsInf(p, 1) {
		s = "+inf"
	}
	if p > threshold {
		s += " !"
	}
	return s
}

// report writes the comparison table and returns whether any benchmark
// regressed past threshold.
func report(w *strings.Builder, deltas []delta, onlyOld, onlyNew []string, threshold float64) bool {
	bad := false
	nameW := len("benchmark")
	for _, d := range deltas {
		if len(d.name) > nameW {
			nameW = len(d.name)
		}
	}
	fmt.Fprintf(w, "%-*s  %14s  %14s  %9s  %12s  %12s  %9s\n", nameW, "benchmark",
		"old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, d := range deltas {
		if d.regressed(threshold) {
			bad = true
		}
		fmt.Fprintf(w, "%-*s  %14.0f  %14.0f  %9s  %12.0f  %12.0f  %9s\n", nameW, d.name,
			d.oldNs, d.newNs, fmtPct(d.nsPct(), threshold),
			d.oldAlloc, d.newAlloc, fmtPct(d.allocPct(), threshold))
	}
	for _, n := range onlyOld {
		fmt.Fprintf(w, "%s: only in old run\n", n)
	}
	for _, n := range onlyNew {
		fmt.Fprintf(w, "%s: only in new run\n", n)
	}
	return bad
}
