// Command benchdiff compares two `go test -bench` runs and flags
// performance regressions. Each input is either raw benchmark output or
// a baseline recorded with -record; the comparison reports ns/op and
// allocs/op per benchmark and exits nonzero when either metric got worse
// by more than -threshold percent (the perf-regression gate CI runs
// against BENCH_baseline.json — see EXPERIMENTS.md for the workflow).
//
// Usage:
//
//	benchdiff [-threshold 10] old new   compare two runs (text or JSON)
//	benchdiff -record out.json run.txt  record a baseline from raw output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent on ns/op and allocs/op")
	recordPath := flag.String("record", "", "record the single input as a baseline JSON at this `path` instead of comparing")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] <old> <new>")
		fmt.Fprintln(os.Stderr, "       benchdiff -record <out.json> <run>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(*threshold, *recordPath, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(2)
	}
}

func run(threshold float64, recordPath string, args []string) error {
	if recordPath != "" {
		if len(args) != 1 {
			return fmt.Errorf("-record takes exactly one input run, got %d", len(args))
		}
		results, err := load(args[0])
		if err != nil {
			return err
		}
		out, err := record(results)
		if err != nil {
			return err
		}
		if err := os.WriteFile(recordPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("recorded %d benchmarks to %s\n", len(results), recordPath)
		return nil
	}

	if len(args) != 2 {
		return fmt.Errorf("need exactly two runs to compare, got %d", len(args))
	}
	old, err := load(args[0])
	if err != nil {
		return err
	}
	new, err := load(args[1])
	if err != nil {
		return err
	}
	deltas, onlyOld, onlyNew := compare(old, new)
	var w strings.Builder
	bad := report(&w, deltas, onlyOld, onlyNew, threshold)
	fmt.Print(w.String())
	if bad {
		fmt.Printf("FAIL: regression beyond %.1f%% (marked !)\n", threshold)
		os.Exit(1)
	}
	fmt.Printf("ok: no regression beyond %.1f%%\n", threshold)
	return nil
}

func load(path string) ([]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	results, err := parseInput(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}
