// Command cactigen regenerates Table 3: the access latencies, in cycles,
// of every on-chip structure and functional-unit class at each clock
// design point, derived from the analytical cacti timing model and the
// Alpha 21264's operation latencies.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Print(experiments.RunTable3().Render())
	fmt.Println()
	fmt.Print(experiments.RunStructureSummary().Render())
}
