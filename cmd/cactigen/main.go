// Command cactigen regenerates Table 3: the access latencies, in cycles,
// of every on-chip structure and functional-unit class at each clock
// design point, derived from the analytical cacti timing model and the
// Alpha 21264's operation latencies.
package main

import (
	"flag"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	asJSON := cliflags.JSONFlag()
	flag.Parse()
	cliflags.Emit(*asJSON, experiments.RunTable3(), experiments.RunStructureSummary())
}
