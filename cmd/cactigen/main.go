// Command cactigen regenerates Table 3: the access latencies, in cycles,
// of every on-chip structure and functional-unit class at each clock
// design point, derived from the analytical cacti timing model and the
// Alpha 21264's operation latencies.
package main

import (
	"flag"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	asJSON := cliflags.JSONFlag()
	tel := cliflags.RegisterTel()
	flag.Parse()
	run := tel.MustStart("cactigen")
	rec := run.Recorder()

	endT3 := rec.Study("table3")
	t3 := experiments.RunTable3()
	endT3()
	endSum := rec.Study("structure-summary")
	sum := experiments.RunStructureSummary()
	endSum()

	cliflags.Emit(*asJSON, t3, sum)
	cliflags.MustClose(run)
}
