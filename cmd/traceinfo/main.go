// Command traceinfo prints the measured characteristics of the synthetic
// SPEC 2000 workloads: instruction mix, dependency distances, branch
// misprediction rate under the tournament predictor, and cache miss rates
// under the 21264 hierarchy. It makes the workload substitution
// transparent — these are the properties the calibration in
// internal/trace/spec2000.go targets, and the bands the test suite pins.
package main

import (
	"flag"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	sim := cliflags.Register(100000)
	tel := cliflags.RegisterTel()
	flag.Parse()
	o, run := cliflags.MustRun("traceinfo", sim, tel)
	cliflags.Emit(*sim.JSON, experiments.RunWorkloadTable(o))
	cliflags.MustClose(run)
}
