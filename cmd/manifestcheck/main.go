// Command manifestcheck validates a run-manifest JSON produced by any
// study binary's -manifest flag: it must parse, carry the required
// environment and telemetry keys, and round-trip through encoding/json.
// CI's telemetry smoke step runs it against a fresh cmd/pipesweep
// manifest; use it locally to sanity-check recorded perf runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: manifestcheck <manifest.json> [more.json ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "error: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

func check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	summary, err := checkBytes(raw)
	if err != nil {
		return err
	}
	fmt.Printf("%s %s\n", path, summary)
	return nil
}

// checkBytes validates one manifest document: it must parse, pass
// obs.Manifest.Validate, and survive a marshal/unmarshal round trip
// that re-validates. It returns the one-line summary for a valid
// manifest. Split from check so the fuzz target can drive it on raw
// bytes.
func checkBytes(raw []byte) (string, error) {
	var m obs.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return "", err
	}
	if err := m.Validate(); err != nil {
		return "", err
	}
	// Round-trip: what we re-marshal must parse back to a manifest that
	// still validates.
	again, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	var m2 obs.Manifest
	if err := json.Unmarshal(again, &m2); err != nil {
		return "", err
	}
	if err := m2.Validate(); err != nil {
		return "", fmt.Errorf("round-tripped manifest no longer validates: %w", err)
	}
	return fmt.Sprintf("ok: command=%s go=%s gomaxprocs=%d studies=%d tasks=%d wall=%.0fms",
		m.Command, m.GoVersion, m.GOMAXPROCS,
		len(m.Telemetry.Studies), m.Telemetry.Tasks.Count, m.WallMS), nil
}
