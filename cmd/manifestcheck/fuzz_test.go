package main

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

// FuzzManifestCheck drives manifest validation — the external input
// surface of cmd/manifestcheck and the CI telemetry smoke step — with
// arbitrary documents. Invalid input must be rejected with an error,
// never a panic, and anything accepted must keep validating across a
// JSON round trip (checkBytes asserts that internally).
func FuzzManifestCheck(f *testing.F) {
	valid, err := json.Marshal(obs.NewManifest("fuzz", map[string]any{"n": 1}, time.Second, obs.New(nil).Snapshot()))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"command":"x","go_version":"go1.22","gomaxprocs":1,"num_cpu":1,` +
		`"config":{},"wall_ms":1,"telemetry":{"counters":{},"worker_tasks":{}}}`))
	f.Add([]byte(`{"command":"x","gomaxprocs":-1}`))
	f.Add([]byte(`{"command":"x","wall_ms":-0.5}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		summary, err := checkBytes(raw)
		if err == nil && summary == "" {
			t.Errorf("accepted manifest produced an empty summary (input %q)", raw)
		}
	})
}

// TestCheckBytesSeeds pins the intended verdicts of the seed corpus so
// the fuzz target keeps distinguishing valid from invalid documents.
func TestCheckBytesSeeds(t *testing.T) {
	valid, err := json.Marshal(obs.NewManifest("seed", nil, time.Second, obs.New(nil).Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkBytes(valid); err != nil {
		t.Errorf("freshly built manifest rejected: %v", err)
	}
	for _, bad := range []string{`{}`, `not json`, `null`, `{"command":"x","gomaxprocs":-1}`} {
		if _, err := checkBytes([]byte(bad)); err == nil {
			t.Errorf("invalid manifest %q accepted", bad)
		}
	}
}
