// Command segwin runs the instruction-window studies: Figure 8 (critical
// loop sensitivity), Figure 11 (segmented wakeup pipelined 1..10 stages),
// the Section 5.2 partitioned-selection design, and the Section 4.2
// Cray-1S memory-system comparison.
package main

import (
	"flag"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	sim := cliflags.Register(experiments.Full.Instructions)
	tel := cliflags.RegisterTel()
	flag.Parse()
	o, run := cliflags.MustRun("segwin", sim, tel)

	cliflags.Emit(*sim.JSON,
		experiments.RunFigure8(o),
		experiments.RunFigure11(o),
		experiments.RunSegmentedSelect(o),
		experiments.RunCray1S(o),
	)
	cliflags.MustClose(run)
}
