// Command segwin runs the instruction-window studies: Figure 8 (critical
// loop sensitivity), Figure 11 (segmented wakeup pipelined 1..10 stages),
// the Section 5.2 partitioned-selection design, and the Section 4.2
// Cray-1S memory-system comparison.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", experiments.Full.Instructions, "instructions per benchmark")
	flag.Parse()
	o := experiments.Options{Instructions: *n}

	fmt.Print(experiments.RunFigure8(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunFigure11(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunSegmentedSelect(o).Render())
	fmt.Println()
	fmt.Print(experiments.RunCray1S(o).Render())
}
