// Command latchsim runs the circuit-level experiments of Section 2 and
// Appendix A: it measures the FO4 reference delay, the pulse-latch
// overhead (Table 1's latch component) by sweeping the data edge toward
// the falling clock edge until the latch fails, and the delay of the CMOS
// equivalent of one Cray ECL gate.
package main

import (
	"flag"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	step := flag.Float64("step", 1.0, "data-edge sweep granularity in ps")
	asJSON := cliflags.JSONFlag()
	tel := cliflags.RegisterTel()
	flag.Parse()
	run := tel.MustStart("latchsim")
	run.SetConfig("step_ps", *step)

	end := run.Recorder().Study("table1")
	res := experiments.RunTable1(*step)
	end()

	cliflags.Emit(*asJSON, res)
	cliflags.MustClose(run)
}
