// Command structopt runs the Figure 7 experiment: at each clock design
// point, search for the structure capacities (DL1, L2, issue queues) that
// maximize performance — bigger structures are slower through the cacti
// timing model — and compare against the fixed Alpha 21264 capacities.
package main

import (
	"flag"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	sim := cliflags.Register(experiments.Full.Instructions)
	tel := cliflags.RegisterTel()
	flag.Parse()
	o, run := cliflags.MustRun("structopt", sim, tel)
	cliflags.Emit(*sim.JSON, experiments.RunFigure7(o))
	cliflags.MustClose(run)
}
