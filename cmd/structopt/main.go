// Command structopt runs the Figure 7 experiment: at each clock design
// point, search for the structure capacities (DL1, L2, issue queues) that
// maximize performance — bigger structures are slower through the cacti
// timing model — and compare against the fixed Alpha 21264 capacities.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", experiments.Full.Instructions, "instructions per benchmark")
	flag.Parse()
	fmt.Print(experiments.RunFigure7(experiments.Options{Instructions: *n}).Render())
}
