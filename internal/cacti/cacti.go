// Package cacti is an analytical access-time model for on-chip
// microarchitectural structures in the style of Cacti 3.0 (Shivakumar and
// Jouppi), the tool the paper uses to derive Table 3. It models three
// structure families:
//
//   - RAM arrays (register files, rename tables, predictor tables) as
//     decode → wordline → bitline → sense → output stages over an
//     optimally sub-banked array;
//   - caches as a RAM data array plus a tag array, comparators and output
//     mux, plus a routing-wire term that grows with the square root of
//     capacity (big SRAMs are wire-dominated);
//   - CAM arrays (the instruction issue window) as tag broadcast across
//     the entries, per-entry comparison, and the OR reduction producing the
//     ready signal, following Palacharla, Jouppi and Smith's decomposition.
//
// All delays are returned in FO4 at the paper's 100nm design point, so they
// combine directly with fo4.Clock.CyclesForWork. The model constants are
// calibrated against the access times the paper quotes (register file
// 0.39 ns, level-1 data cache ≈1.15 ns, and the Table 3 cycle grid); see
// the package tests.
package cacti

import "math"

// Model holds the calibration constants of the analytical timing model.
// All k-constants are in FO4 units.
type Model struct {
	KDecode  float64 // per decoded address bit
	KWordSeg float64 // per 64 cell-widths of wordline, per port factor
	KBitSeg  float64 // per 64 cells of bitline, per port factor
	KSense   float64 // sense amplifier
	KOutput  float64 // output driver, per log2(subarrays)
	KFixed   float64 // fixed front-end (input drivers, predecode)

	KWire float64 // routing wire, per sqrt(byte) of total capacity

	KCompare float64 // tag comparator
	KMuxSel  float64 // way-select mux per log2(assoc)

	KCamFixed  float64 // CAM front-end: payload RAM read and drivers
	KBroadcast float64 // CAM tag broadcast per entry per port factor
	KMatch     float64 // CAM per-entry match (compare) delay
	KOrTree    float64 // CAM OR-reduce per log2(tag bits)

	MaxSplit int // maximum subarray split factor explored per dimension
}

// Default100nm is the calibrated model at 100nm. Constants were fitted so
// the structures of the Alpha 21264 land on the paper's quoted access times
// (see the anchors in internal/config).
var Default100nm = Model{
	KDecode:  0.75,
	KWordSeg: 0.42,
	KBitSeg:  0.42,
	KSense:   1.5,
	KOutput:  0.45,
	KFixed:   1.5,
	KWire:    0.075,
	KCompare: 2.0,
	KMuxSel:  0.8,

	KCamFixed:  10.2,
	KBroadcast: 0.11,
	KMatch:     2.0,
	KOrTree:    0.80,

	MaxSplit: 64,
}

// portFactor converts a port count into the wire-length multiplier of the
// cell array: each extra port adds roughly half a cell pitch in both
// dimensions.
func portFactor(ports int) float64 {
	if ports < 1 {
		ports = 1
	}
	return 0.5 + 0.5*float64(ports)
}

func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// RAMConfig describes a RAM-style structure.
type RAMConfig struct {
	Entries int // addressable rows
	Bits    int // bits per entry
	Ports   int // total read+write ports
}

// RAMAccessFO4 returns the access time of a RAM structure in FO4,
// choosing the sub-banking (power-of-two splits in both dimensions) that
// minimizes delay, as Cacti does.
func (m Model) RAMAccessFO4(c RAMConfig) float64 {
	if c.Entries < 1 || c.Bits < 1 {
		panic("cacti: RAM needs at least one entry and one bit")
	}
	pf := portFactor(c.Ports)
	best := math.Inf(1)
	for dbl := 1; dbl <= m.MaxSplit; dbl *= 2 { // bitline (row) splits
		for dwl := 1; dwl <= m.MaxSplit; dwl *= 2 { // wordline (col) splits
			rows := float64(c.Entries) / float64(dbl)
			cols := float64(c.Bits) / float64(dwl)
			if rows < 1 || cols < 1 {
				continue
			}
			nsub := float64(dbl * dwl)
			d := m.KFixed +
				m.KDecode*log2(rows) +
				m.KWordSeg*(cols/64)*pf +
				m.KBitSeg*(rows/64)*pf +
				m.KSense +
				m.KOutput*(1+log2(nsub))
			if d < best {
				best = d
			}
		}
	}
	return best
}

// CacheConfig describes a set-associative cache.
type CacheConfig struct {
	CapacityBytes int
	BlockBytes    int
	Assoc         int
	Ports         int
}

// Sets returns the number of cache sets.
func (c CacheConfig) Sets() int {
	s := c.CapacityBytes / (c.BlockBytes * c.Assoc)
	if s < 1 {
		s = 1
	}
	return s
}

// CacheAccessFO4 returns the cache access time in FO4: the slower of the
// data and tag paths, plus way select, plus a routing term that grows with
// the square root of capacity (floorplan wire length).
func (m Model) CacheAccessFO4(c CacheConfig) float64 {
	if c.CapacityBytes < c.BlockBytes*c.Assoc {
		panic("cacti: cache smaller than one set")
	}
	sets := c.Sets()
	data := m.RAMAccessFO4(RAMConfig{
		Entries: sets,
		Bits:    c.BlockBytes * 8 * c.Assoc,
		Ports:   c.Ports,
	})
	// Tag path: ~28 tag bits per way, then comparison.
	tag := m.RAMAccessFO4(RAMConfig{
		Entries: sets,
		Bits:    28 * c.Assoc,
		Ports:   c.Ports,
	}) + m.KCompare
	path := math.Max(data, tag)
	wire := m.KWire * math.Sqrt(float64(c.CapacityBytes))
	sel := m.KMuxSel * (1 + log2(float64(c.Assoc)))
	return path + wire + sel
}

// CAMConfig describes a CAM-style structure such as the issue window's
// wakeup array.
type CAMConfig struct {
	Entries        int // instructions held
	TagBits        int // width of each broadcast tag
	BroadcastPorts int // results broadcast per cycle (issue width)
}

// CAMAccessFO4 returns the wakeup delay of a CAM in FO4: broadcasting the
// destination tags across all entries, comparing at each entry, and ORing
// the match lines into a ready signal. Broadcast wire delay grows linearly
// with the number of entries and the port factor, which is exactly why the
// paper segments the window (Section 5).
func (m Model) CAMAccessFO4(c CAMConfig) float64 {
	if c.Entries < 1 || c.TagBits < 1 {
		panic("cacti: CAM needs entries and tag bits")
	}
	pf := portFactor(c.BroadcastPorts)
	return m.KCamFixed +
		m.KBroadcast*float64(c.Entries)*pf/8 +
		m.KMatch +
		m.KOrTree*(1+log2(float64(c.TagBits)))
}

// SegmentedCAMStageFO4 returns the per-stage wakeup delay of a segmented
// issue window: the broadcast only spans Entries/stages entries per cycle,
// so the per-cycle critical path shrinks accordingly (plus the inter-stage
// tag latch, accounted as overhead by the clocking model, not here).
func (m Model) SegmentedCAMStageFO4(c CAMConfig, stages int) float64 {
	if stages < 1 {
		panic("cacti: need at least one stage")
	}
	per := c
	per.Entries = (c.Entries + stages - 1) / stages
	return m.CAMAccessFO4(per)
}

// SelectFO4 returns the delay of selection logic choosing among fanIn
// ready instructions: a tree of arbiters, logarithmic in the fan-in
// (Palacharla's selection model).
func (m Model) SelectFO4(fanIn int) float64 {
	if fanIn < 1 {
		panic("cacti: select fan-in must be positive")
	}
	return m.KFixed + m.KOrTree*(1+log2(float64(fanIn)))
}
