package cacti

import "math"

// Cacti 3.0 is an integrated timing, power and area model; the paper uses
// only the timing side, but the area and energy estimates matter for the
// Figure 7 capacity study's plausibility (a 64-entry issue window must not
// be absurdly large) and for the wire-delay extension in internal/wire,
// whose wire lengths derive from structure areas. The model below is a
// standard technology-scaled estimate: cell areas in square microns at
// 100nm, port-scaled, plus array efficiency overheads for decoders, sense
// amplifiers and routing.

// AreaModel holds the area/energy calibration constants at 100nm.
type AreaModel struct {
	// SRAMCellUm2 is the 6T SRAM cell area in µm² for a single-ported
	// cell; each extra port roughly doubles cell area (word and bit wires
	// in both dimensions).
	SRAMCellUm2 float64
	// CAMCellUm2 is the match-capable CAM cell area in µm².
	CAMCellUm2 float64
	// Efficiency is the fraction of array area occupied by cells (the
	// rest is decoders, sense amps, drivers and routing).
	Efficiency float64

	// EnergyPerBitPJ is the dynamic read energy per accessed bit in pJ at
	// 100nm/1.2V; wires and sense amps dominate, scaling with the square
	// root of capacity.
	EnergyPerBitPJ float64
}

// DefaultArea100nm is the calibrated area/energy model at 100nm. A 6T
// cell at 100nm is ~1.2 µm²; a 64KB cache lands near 1.5 mm², matching
// contemporary die photos.
var DefaultArea100nm = AreaModel{
	SRAMCellUm2:    1.2,
	CAMCellUm2:     2.6,
	Efficiency:     0.55,
	EnergyPerBitPJ: 0.035,
}

// portAreaFactor scales cell area with port count: each additional port
// adds a wordline and a bitline pair, growing the cell in both dimensions.
func portAreaFactor(ports int) float64 {
	if ports < 1 {
		ports = 1
	}
	f := 0.5 + 0.5*float64(ports)
	return f * f
}

// RAMAreaMm2 returns the estimated area of a RAM structure in mm².
func (a AreaModel) RAMAreaMm2(c RAMConfig) float64 {
	if c.Entries < 1 || c.Bits < 1 {
		panic("cacti: RAM needs at least one entry and one bit")
	}
	bits := float64(c.Entries) * float64(c.Bits)
	cell := a.SRAMCellUm2 * portAreaFactor(c.Ports)
	return bits * cell / a.Efficiency / 1e6
}

// CacheAreaMm2 returns the estimated area of a cache (data + tag arrays).
func (a AreaModel) CacheAreaMm2(c CacheConfig) float64 {
	sets := c.Sets()
	data := a.RAMAreaMm2(RAMConfig{Entries: sets, Bits: c.BlockBytes * 8 * c.Assoc, Ports: c.Ports})
	tag := a.RAMAreaMm2(RAMConfig{Entries: sets, Bits: 28 * c.Assoc, Ports: c.Ports})
	return data + tag
}

// CAMAreaMm2 returns the estimated area of a CAM structure (the issue
// window): match-capable tag cells plus a payload RAM per entry.
func (a AreaModel) CAMAreaMm2(c CAMConfig, payloadBits int) float64 {
	if c.Entries < 1 || c.TagBits < 1 {
		panic("cacti: CAM needs entries and tag bits")
	}
	pf := portAreaFactor(c.BroadcastPorts)
	tag := float64(c.Entries) * float64(2*c.TagBits) * a.CAMCellUm2 * pf
	payload := float64(c.Entries) * float64(payloadBits) * a.SRAMCellUm2 * pf
	return (tag + payload) / a.Efficiency / 1e6
}

// SideMm returns the side length in mm of a square block with the given
// area — the wire-length scale used by the wire-delay model.
func SideMm(areaMm2 float64) float64 { return math.Sqrt(areaMm2) }

// RAMReadEnergyPJ estimates the dynamic energy of one read access in pJ.
func (a AreaModel) RAMReadEnergyPJ(c RAMConfig) float64 {
	// One row of bits is read; wire energy grows with array size.
	rowBits := float64(c.Bits)
	sizeFactor := math.Sqrt(float64(c.Entries*c.Bits) / (1 << 10))
	return a.EnergyPerBitPJ * rowBits * (1 + 0.15*sizeFactor)
}

// CacheReadEnergyPJ estimates the dynamic energy of one cache read in pJ:
// all ways of one set plus the tag match.
func (a AreaModel) CacheReadEnergyPJ(c CacheConfig) float64 {
	data := a.RAMReadEnergyPJ(RAMConfig{Entries: c.Sets(), Bits: c.BlockBytes * 8 * c.Assoc, Ports: c.Ports})
	tag := a.RAMReadEnergyPJ(RAMConfig{Entries: c.Sets(), Bits: 28 * c.Assoc, Ports: c.Ports})
	return data + tag
}

// CAMSearchEnergyPJ estimates the energy of one wakeup broadcast in pJ:
// every entry's comparators switch on every search — the reason a large
// single-segment window is a power problem as well as a latency one
// (Section 5's motivation from the energy side).
func (a AreaModel) CAMSearchEnergyPJ(c CAMConfig) float64 {
	return a.EnergyPerBitPJ * 2 * float64(c.Entries) * float64(c.TagBits) *
		float64(c.BroadcastPorts)
}
