package cacti

import (
	"math"
	"testing"
	"testing/quick"
)

// The calibration anchors: access times the paper quotes or implies for the
// Alpha 21264's structures at 100nm (see DESIGN.md §5). Each test pins the
// model to the band that reproduces the corresponding Table 3 row.
func TestRegisterFileAnchor(t *testing.T) {
	// Paper: 512-entry register file accesses in 0.39 ns at 100nm
	// (10.8 FO4); Table 3's row is consistent with any value in (10, 11].
	got := Default100nm.RAMAccessFO4(RAMConfig{Entries: 512, Bits: 64, Ports: 12})
	if got <= 10 || got > 11 {
		t.Errorf("register file = %.2f FO4, want in (10, 11]", got)
	}
}

func TestIssueWindowAnchor(t *testing.T) {
	// Table 3's issue window row implies an access time in (16, 18] FO4 for
	// the 21264's 20-entry, 4-wide window.
	got := Default100nm.CAMAccessFO4(CAMConfig{Entries: 20, TagBits: 9, BroadcastPorts: 4})
	if got <= 16 || got > 18 {
		t.Errorf("issue window = %.2f FO4, want in (16, 18]", got)
	}
}

func TestLargerWindowStillThreeCyclesAtOptimum(t *testing.T) {
	// Figure 7: the capacity-optimized configuration at 6 FO4 uses a
	// 64-entry window with a 3-cycle access latency, i.e. at most 18 FO4.
	got := Default100nm.CAMAccessFO4(CAMConfig{Entries: 64, TagBits: 9, BroadcastPorts: 4})
	if got > 18 {
		t.Errorf("64-entry window = %.2f FO4; exceeds 3 cycles at 6 FO4 per stage", got)
	}
	if small := Default100nm.CAMAccessFO4(CAMConfig{Entries: 20, TagBits: 9, BroadcastPorts: 4}); got <= small {
		t.Errorf("64-entry window (%.2f) not slower than 20-entry (%.2f)", got, small)
	}
}

func TestDL1Anchor(t *testing.T) {
	// The 64KB 2-way DL1's access lands in (30, 32] FO4, consistent with
	// Table 3's 16 cycles at t_useful = 2 FO4 and 6 cycles at 6 FO4.
	got := Default100nm.CacheAccessFO4(CacheConfig{CapacityBytes: 64 << 10, BlockBytes: 64, Assoc: 2, Ports: 2})
	if got <= 30 || got > 32 {
		t.Errorf("DL1 = %.2f FO4, want in (30, 32]", got)
	}
}

func TestL2Anchor(t *testing.T) {
	// Figure 7's optimized 512KB L2 has a 12-cycle latency at 6 FO4, i.e.
	// an access time in (66, 72] FO4.
	got := Default100nm.CacheAccessFO4(CacheConfig{CapacityBytes: 512 << 10, BlockBytes: 64, Assoc: 2, Ports: 1})
	if got <= 66 || got > 72 {
		t.Errorf("512KB L2 = %.2f FO4, want in (66, 72]", got)
	}
}

func TestCacheMonotonicInCapacity(t *testing.T) {
	m := Default100nm
	prev := 0.0
	for _, kb := range []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		got := m.CacheAccessFO4(CacheConfig{CapacityBytes: kb << 10, BlockBytes: 64, Assoc: 2, Ports: 2})
		if got <= prev {
			t.Errorf("%dKB cache (%.2f FO4) not slower than previous (%.2f)", kb, got, prev)
		}
		prev = got
	}
}

func TestRAMMonotonicProperties(t *testing.T) {
	m := Default100nm
	// Property: more entries, more bits, or more ports never makes a RAM
	// faster.
	f := func(eRaw, bRaw, pRaw uint8) bool {
		e := 8 + int(eRaw)%512
		b := 4 + int(bRaw)%128
		p := 1 + int(pRaw)%16
		base := m.RAMAccessFO4(RAMConfig{Entries: e, Bits: b, Ports: p})
		return m.RAMAccessFO4(RAMConfig{Entries: e * 2, Bits: b, Ports: p}) >= base &&
			m.RAMAccessFO4(RAMConfig{Entries: e, Bits: b * 2, Ports: p}) >= base &&
			m.RAMAccessFO4(RAMConfig{Entries: e, Bits: b, Ports: p + 1}) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCAMGrowsWithEntriesAndPorts(t *testing.T) {
	m := Default100nm
	f := func(eRaw, pRaw uint8) bool {
		e := 8 + int(eRaw)%128
		p := 1 + int(pRaw)%8
		base := m.CAMAccessFO4(CAMConfig{Entries: e, TagBits: 9, BroadcastPorts: p})
		return m.CAMAccessFO4(CAMConfig{Entries: e + 8, TagBits: 9, BroadcastPorts: p}) > base &&
			m.CAMAccessFO4(CAMConfig{Entries: e, TagBits: 9, BroadcastPorts: p + 1}) > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentationShrinksPerStageDelay(t *testing.T) {
	m := Default100nm
	cfg := CAMConfig{Entries: 32, TagBits: 9, BroadcastPorts: 4}
	full := m.CAMAccessFO4(cfg)
	prev := full
	for stages := 2; stages <= 8; stages *= 2 {
		seg := m.SegmentedCAMStageFO4(cfg, stages)
		if seg >= prev {
			t.Errorf("%d-stage per-stage delay %.2f not below %d-stage %.2f",
				stages, seg, stages/2, prev)
		}
		prev = seg
	}
	if one := m.SegmentedCAMStageFO4(cfg, 1); math.Abs(one-full) > 1e-9 {
		t.Errorf("1-stage segmented (%.2f) differs from unsegmented (%.2f)", one, full)
	}
}

func TestSelectFanInScaling(t *testing.T) {
	m := Default100nm
	// Partitioned selection's point: fan-in 16 select is meaningfully
	// faster than fan-in 32, and fits within ~1 cycle at the 6 FO4 optimum.
	s16, s32 := m.SelectFO4(16), m.SelectFO4(32)
	if s16 >= s32 {
		t.Errorf("select16 (%.2f) not faster than select32 (%.2f)", s16, s32)
	}
	if s16 > 6.0 {
		t.Errorf("select16 = %.2f FO4; does not fit one 6 FO4 stage", s16)
	}
}

func TestSetsComputation(t *testing.T) {
	c := CacheConfig{CapacityBytes: 64 << 10, BlockBytes: 64, Assoc: 2}
	if got := c.Sets(); got != 512 {
		t.Errorf("Sets = %d, want 512", got)
	}
}

func TestPanicsOnInvalidConfigs(t *testing.T) {
	m := Default100nm
	for name, fn := range map[string]func(){
		"ram zero entries": func() { m.RAMAccessFO4(RAMConfig{Entries: 0, Bits: 8}) },
		"cam zero tag":     func() { m.CAMAccessFO4(CAMConfig{Entries: 8, TagBits: 0}) },
		"tiny cache":       func() { m.CacheAccessFO4(CacheConfig{CapacityBytes: 16, BlockBytes: 64, Assoc: 2}) },
		"zero stages":      func() { m.SegmentedCAMStageFO4(CAMConfig{Entries: 8, TagBits: 9}, 0) },
		"zero fanin":       func() { m.SelectFO4(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
