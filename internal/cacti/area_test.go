package cacti

import (
	"testing"
	"testing/quick"
)

func TestCacheAreaPlausible(t *testing.T) {
	a := DefaultArea100nm
	// A 64KB 2-way cache at 100nm is on the order of 1-3 mm².
	got := a.CacheAreaMm2(CacheConfig{CapacityBytes: 64 << 10, BlockBytes: 64, Assoc: 2, Ports: 2})
	if got < 0.5 || got > 6 {
		t.Errorf("64KB cache area = %.2f mm², implausible", got)
	}
	// A 2MB L2 is tens of mm² — a large fraction of a 100nm die.
	l2 := a.CacheAreaMm2(CacheConfig{CapacityBytes: 2 << 20, BlockBytes: 64, Assoc: 2, Ports: 1})
	if l2 < 10 || l2 > 80 {
		t.Errorf("2MB cache area = %.2f mm², implausible", l2)
	}
}

func TestRegisterFileAreaDominatedByPorts(t *testing.T) {
	a := DefaultArea100nm
	few := a.RAMAreaMm2(RAMConfig{Entries: 512, Bits: 64, Ports: 2})
	many := a.RAMAreaMm2(RAMConfig{Entries: 512, Bits: 64, Ports: 12})
	// Port factor is quadratic: 12 ports vs 2 ports is (6.5/1.5)² ≈ 19x.
	if ratio := many / few; ratio < 10 || ratio > 30 {
		t.Errorf("12-port/2-port area ratio = %.1f, want ~19", ratio)
	}
}

func TestAreaMonotonicProperties(t *testing.T) {
	a := DefaultArea100nm
	f := func(eRaw, bRaw, pRaw uint8) bool {
		e := 8 + int(eRaw)%512
		bits := 4 + int(bRaw)%128
		p := 1 + int(pRaw)%12
		base := a.RAMAreaMm2(RAMConfig{Entries: e, Bits: bits, Ports: p})
		return base > 0 &&
			a.RAMAreaMm2(RAMConfig{Entries: 2 * e, Bits: bits, Ports: p}) > base &&
			a.RAMAreaMm2(RAMConfig{Entries: e, Bits: 2 * bits, Ports: p}) > base &&
			a.RAMAreaMm2(RAMConfig{Entries: e, Bits: bits, Ports: p + 1}) > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCAMAreaAndEnergyGrowWithEntries(t *testing.T) {
	a := DefaultArea100nm
	small := CAMConfig{Entries: 20, TagBits: 9, BroadcastPorts: 4}
	big := CAMConfig{Entries: 64, TagBits: 9, BroadcastPorts: 4}
	if a.CAMAreaMm2(big, 40) <= a.CAMAreaMm2(small, 40) {
		t.Error("bigger CAM not larger")
	}
	if a.CAMSearchEnergyPJ(big) <= a.CAMSearchEnergyPJ(small) {
		t.Error("bigger CAM search not more energetic")
	}
	// The energy motivation for segmentation: search energy is linear in
	// entries, so a 64-entry window burns 3.2x a 20-entry one per cycle.
	ratio := a.CAMSearchEnergyPJ(big) / a.CAMSearchEnergyPJ(small)
	if ratio < 3.1 || ratio > 3.3 {
		t.Errorf("CAM energy ratio = %.2f, want 64/20 = 3.2", ratio)
	}
}

func TestCacheEnergyScalesSublinearly(t *testing.T) {
	a := DefaultArea100nm
	e64 := a.CacheReadEnergyPJ(CacheConfig{CapacityBytes: 64 << 10, BlockBytes: 64, Assoc: 2, Ports: 1})
	e256 := a.CacheReadEnergyPJ(CacheConfig{CapacityBytes: 256 << 10, BlockBytes: 64, Assoc: 2, Ports: 1})
	if e256 <= e64 {
		t.Error("bigger cache not more energetic per read")
	}
	if e256 > 4*e64 {
		t.Errorf("4x capacity quadrupled read energy (%.1f → %.1f pJ); should be sublinear", e64, e256)
	}
}

func TestSideMm(t *testing.T) {
	if got := SideMm(4.0); got != 2.0 {
		t.Errorf("SideMm(4) = %v, want 2", got)
	}
}

func TestAreaPanicsOnInvalid(t *testing.T) {
	a := DefaultArea100nm
	for name, fn := range map[string]func(){
		"ram": func() { a.RAMAreaMm2(RAMConfig{}) },
		"cam": func() { a.CAMAreaMm2(CAMConfig{}, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
