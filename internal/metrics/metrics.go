// Package metrics holds the small numeric utilities the experiments share:
// harmonic means (the paper aggregates benchmark performance harmonically),
// BIPS computation, series normalization and argmax helpers.
package metrics

import (
	"fmt"
	"math"
)

// HarmonicMean returns the harmonic mean of xs. It panics if any value is
// non-positive (a benchmark with zero performance would make the mean
// meaningless) and returns NaN for an empty slice.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	inv := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("metrics: harmonic mean of non-positive value")
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// ArgMax returns the index of the maximum value (first occurrence).
// NaN entries are skipped — a NaN compares false against everything, so
// a naive scan with a NaN at index 0 would return a bogus optimum. An
// all-NaN series panics; an empty series returns 0, as it always has.
func ArgMax(xs []float64) int {
	best := -1
	for i, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if best < 0 || x > xs[best] {
			best = i
		}
	}
	if best < 0 {
		if len(xs) == 0 {
			return 0
		}
		panic("metrics: ArgMax of all-NaN series")
	}
	return best
}

// Normalize returns xs scaled so that xs[ref] becomes 1.0. It panics if
// the base value is zero, negative or NaN — dividing by such a base
// would silently yield an ±Inf/NaN series.
func Normalize(xs []float64, ref int) []float64 {
	base := xs[ref]
	if math.IsNaN(base) || base <= 0 {
		panic(fmt.Sprintf("metrics: Normalize base xs[%d] = %v is not positive", ref, base))
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// WithinFrac reports whether a is within frac (relative) of b.
func WithinFrac(a, b, frac float64) bool {
	if b == 0 {
		return a == 0
	}
	return math.Abs(a-b) <= math.Abs(b)*frac
}

// BIPS converts an IPC at a clock frequency (Hz) into billions of
// instructions per second.
func BIPS(ipc, freqHz float64) float64 { return ipc * freqHz / 1e9 }
