// Package metrics holds the small numeric utilities the experiments share:
// harmonic means (the paper aggregates benchmark performance harmonically),
// BIPS computation, series normalization and argmax helpers.
package metrics

import "math"

// HarmonicMean returns the harmonic mean of xs. It panics if any value is
// non-positive (a benchmark with zero performance would make the mean
// meaningless) and returns NaN for an empty slice.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	inv := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("metrics: harmonic mean of non-positive value")
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// ArgMax returns the index of the maximum value (first occurrence).
func ArgMax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Normalize returns xs scaled so that xs[ref] becomes 1.0.
func Normalize(xs []float64, ref int) []float64 {
	out := make([]float64, len(xs))
	base := xs[ref]
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// WithinFrac reports whether a is within frac (relative) of b.
func WithinFrac(a, b, frac float64) bool {
	if b == 0 {
		return a == 0
	}
	return math.Abs(a-b) <= math.Abs(b)*frac
}

// BIPS converts an IPC at a clock frequency (Hz) into billions of
// instructions per second.
func BIPS(ipc, freqHz float64) float64 { return ipc * freqHz / 1e9 }
