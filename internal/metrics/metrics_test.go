package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHarmonicMeanKnownValues(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 2}, 2},
		{[]float64{1, 3}, 1.5},
		{[]float64{4}, 4},
	}
	for _, c := range cases {
		if got := HarmonicMean(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("HarmonicMean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHarmonicMeanProperties(t *testing.T) {
	// The harmonic mean is at most the arithmetic mean and at least the
	// minimum — why the paper uses it: one slow benchmark dominates.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, sum := math.Inf(1), 0.0
		for i, r := range raw {
			xs[i] = 0.5 + float64(r%1000)
			if xs[i] < lo {
				lo = xs[i]
			}
			sum += xs[i]
		}
		h := HarmonicMean(xs)
		return h >= lo-1e-9 && h <= sum/float64(len(xs))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHarmonicMeanEdgeCases(t *testing.T) {
	if !math.IsNaN(HarmonicMean(nil)) {
		t.Error("empty mean not NaN")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive value")
		}
	}()
	HarmonicMean([]float64{1, 0})
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 3, 2, 3}); got != 1 {
		t.Errorf("ArgMax = %d, want first maximum (1)", got)
	}
	if got := ArgMax([]float64{5}); got != 0 {
		t.Errorf("ArgMax single = %d", got)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 1}, 0)
	want := []float64{1, 2, 0.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("Normalize[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestWithinFrac(t *testing.T) {
	if !WithinFrac(102, 100, 0.02) {
		t.Error("102 should be within 2% of 100")
	}
	if WithinFrac(103, 100, 0.02) {
		t.Error("103 should not be within 2% of 100")
	}
	if !WithinFrac(0, 0, 0.1) {
		t.Error("0 within anything of 0")
	}
}

func TestBIPS(t *testing.T) {
	if got := BIPS(2.0, 3e9); math.Abs(got-6.0) > 1e-12 {
		t.Errorf("BIPS(2, 3GHz) = %v, want 6", got)
	}
}

func TestArgMaxSkipsNaN(t *testing.T) {
	// A NaN at index 0 loses every comparison; the scan must not let it
	// win by default.
	if got := ArgMax([]float64{math.NaN(), 1, 2}); got != 2 {
		t.Errorf("ArgMax(NaN,1,2) = %d, want 2", got)
	}
	if got := ArgMax([]float64{math.NaN(), 5, math.NaN(), 3}); got != 1 {
		t.Errorf("ArgMax(NaN,5,NaN,3) = %d, want 1", got)
	}
	if got := ArgMax([]float64{2, math.NaN(), 1}); got != 0 {
		t.Errorf("ArgMax(2,NaN,1) = %d, want 0", got)
	}
}

func TestArgMaxAllNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for all-NaN series")
		}
	}()
	ArgMax([]float64{math.NaN(), math.NaN()})
}

func TestNormalizePanicsOnBadBase(t *testing.T) {
	for _, base := range []float64{0, -2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for base %v", base)
				}
			}()
			Normalize([]float64{1, base, 3}, 1)
		}()
	}
}
