package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// mutexAcquireFuncs and mutexReleaseFuncs are the sync mutex methods
// the lock-order analysis tracks, keyed by go/types full name. RLock
// counts as an acquisition: reader/writer inversions deadlock just as
// hard as writer/writer ones.
var mutexAcquireFuncs = map[string]bool{
	"(*sync.Mutex).Lock":       true,
	"(*sync.Mutex).TryLock":    true,
	"(*sync.RWMutex).Lock":     true,
	"(*sync.RWMutex).TryLock":  true,
	"(*sync.RWMutex).RLock":    true,
	"(*sync.RWMutex).TryRLock": true,
}

var mutexReleaseFuncs = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

// LockOrderAnalyzer builds a mutex-acquisition-order graph across the
// serving path (internal/serve + internal/store) and fails on cycles:
// if one code path locks A then B and another locks B then A, two
// goroutines can hold one each and wait forever. Locks are identified
// by their declaration — the `mu` field of a struct type is one lock
// class regardless of instance — and acquisitions made by callees count
// against locks held at the call site, transitively through the
// in-scope call graph.
//
// The per-function walk is linear over source order: an Unlock inside a
// branch is treated as releasing unconditionally, a deferred Unlock
// holds the lock to function end, and a goroutine body starts with
// nothing held. That approximation can miss an edge behind complex
// branch-dependent unlock patterns; the serving path's lock discipline
// (acquire, short critical section, defer/explicit release in the same
// block) is exactly what it models faithfully.
func LockOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "lockorder",
		Doc:       "mutex acquisition order across internal/serve and internal/store must be acyclic: an A->B / B->A inversion is a potential deadlock",
		Appl:      inServing,
		RunModule: runLockOrder,
	}
}

// lockEdge is one observed "acquired v while holding u" ordering, with
// the first site that induced it.
type lockEdge struct {
	pos token.Pos
	fn  *Node
}

// lockCall is a call site recorded for the transitive phase: callee's
// acquisitions happen while held is held.
type lockCall struct {
	held    []types.Object
	callee  *Node
	pos     token.Pos
	fn      *Node
	spawned bool // inside a go body: excluded from the caller's transitive set
}

type lockOrder struct {
	mp      *ModulePass
	inScope map[*Node]bool
	direct  map[*Node][]types.Object // locks each node may acquire directly
	calls   []lockCall
	edges   map[[2]types.Object]lockEdge
	names   map[types.Object]string
	order   []types.Object // registration order, for determinism
}

func runLockOrder(mp *ModulePass) {
	lo := &lockOrder{
		mp:      mp,
		inScope: map[*Node]bool{},
		direct:  map[*Node][]types.Object{},
		edges:   map[[2]types.Object]lockEdge{},
		names:   map[types.Object]string{},
	}
	for _, n := range mp.Graph.Nodes() {
		if mp.InScope(inServing, n.Rel) {
			lo.inScope[n] = true
		}
	}
	for _, n := range mp.Graph.Nodes() {
		if lo.inScope[n] && n.Decl.Body != nil {
			lo.stream(n, n.Decl.Body, false)
		}
	}
	lo.transitive()
	lo.reportCycles()
}

// stream walks one function body (or go-statement body) in source
// order, maintaining the held-lock set and recording order edges and
// call sites.
func (lo *lockOrder) stream(n *Node, body ast.Node, spawned bool) {
	var held []types.Object
	acquire := func(v types.Object, pos token.Pos) {
		for _, h := range held {
			if h == v {
				return // recursive re-acquire would self-deadlock; not an order edge
			}
			key := [2]types.Object{h, v}
			if _, ok := lo.edges[key]; !ok {
				lo.edges[key] = lockEdge{pos: pos, fn: n}
			}
		}
		held = append(held, v)
		if !spawned {
			lo.direct[n] = append(lo.direct[n], v)
		}
	}
	release := func(v types.Object) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == v {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			// The spawned goroutine runs with nothing held; its own
			// ordering is analyzed as a fresh stream.
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				lo.stream(n, lit.Body, true)
			} else {
				for _, c := range lo.mp.Graph.CalleesOf(n.Pkg.Info, x.Call) {
					if lo.inScope[c] {
						lo.calls = append(lo.calls, lockCall{callee: c, pos: x.Pos(), fn: n, spawned: true})
					}
				}
			}
			return false
		case *ast.DeferStmt:
			// A deferred release keeps the lock held to function end; a
			// deferred call runs last, approximated with the current set.
			if v, acq := lo.mutexOp(n, x.Call); v != nil {
				if acq {
					acquire(v, x.Pos())
				}
				return false
			}
			for _, c := range lo.mp.Graph.CalleesOf(n.Pkg.Info, x.Call) {
				if lo.inScope[c] {
					lo.calls = append(lo.calls, lockCall{held: append([]types.Object(nil), held...), callee: c, pos: x.Pos(), fn: n, spawned: spawned})
				}
			}
			return false
		case *ast.CallExpr:
			if v, acq := lo.mutexOp(n, x); v != nil {
				if acq {
					acquire(v, x.Pos())
				} else {
					release(v)
				}
				return false
			}
			for _, c := range lo.mp.Graph.CalleesOf(n.Pkg.Info, x) {
				if lo.inScope[c] {
					lo.calls = append(lo.calls, lockCall{held: append([]types.Object(nil), held...), callee: c, pos: x.Pos(), fn: n, spawned: spawned})
				}
			}
			return true
		}
		return true
	})
}

// mutexOp recognizes a mutex acquire/release call and resolves the lock
// identity: the declared field or variable for `s.mu.Lock()` forms, or
// the receiver's type name for an embedded mutex (`s.Lock()`).
func (lo *lockOrder) mutexOp(n *Node, call *ast.CallExpr) (types.Object, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := n.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	full := fn.FullName()
	isAcq := mutexAcquireFuncs[full]
	if !isAcq && !mutexReleaseFuncs[full] {
		return nil, false
	}
	return lo.lockID(n, sel.X), isAcq
}

// lockID maps the receiver expression of a mutex method call to a
// stable lock identity and registers its display name.
func (lo *lockOrder) lockID(n *Node, recv ast.Expr) types.Object {
	info := n.Pkg.Info
	register := func(obj types.Object, name string) types.Object {
		if _, ok := lo.names[obj]; !ok {
			lo.names[obj] = name
			lo.order = append(lo.order, obj)
		}
		return obj
	}
	switch x := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		// s.mu — identity is the field declaration, shared by every
		// instance of the owning type.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && isMutexType(v.Type()) {
			owner := "?"
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				owner = namedTypeName(tv.Type)
			}
			return register(v, owner+"."+v.Name())
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if v, ok := obj.(*types.Var); ok && isMutexType(v.Type()) {
			// Package-level or local mutex variable.
			return register(v, v.Name())
		}
		if obj != nil {
			// Embedded mutex: s.Lock() — identify by the receiver's type.
			if tv, ok := info.Types[x]; ok && tv.Type != nil {
				if tn := namedTypeObj(tv.Type); tn != nil {
					return register(tn, tn.Name()+".Mutex")
				}
			}
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func namedTypeObj(t types.Type) *types.TypeName {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

func namedTypeName(t types.Type) string {
	if tn := namedTypeObj(t); tn != nil {
		return tn.Name()
	}
	return types.TypeString(t, nil)
}

// transitive closes the acquisition sets over the in-scope call graph
// and converts recorded call sites into order edges: everything the
// callee may acquire is ordered after everything held at the call.
func (lo *lockOrder) transitive() {
	trans := map[*Node]map[types.Object]bool{}
	for n, vs := range lo.direct { //reprolint:allow mapiter: set initialization; the fixpoint result is iteration-order independent
		set := map[types.Object]bool{}
		for _, v := range vs {
			set[v] = true
		}
		trans[n] = set
	}
	for changed := true; changed; {
		changed = false
		for _, c := range lo.calls {
			if c.spawned {
				continue
			}
			src := trans[c.fn]
			if src == nil {
				src = map[types.Object]bool{}
				trans[c.fn] = src
			}
			for v := range trans[c.callee] { //reprolint:allow mapiter: set-union fixpoint; the final set is iteration-order independent
				if !src[v] {
					src[v] = true
					changed = true
				}
			}
		}
	}
	for _, c := range lo.calls {
		for _, h := range c.held {
			for _, v := range lo.order { // deterministic sweep of known locks
				if !trans[c.callee][v] || h == v {
					continue
				}
				key := [2]types.Object{h, v}
				if _, ok := lo.edges[key]; !ok {
					lo.edges[key] = lockEdge{pos: c.pos, fn: c.fn}
				}
			}
		}
	}
}

// reportCycles finds strongly connected components of the lock-order
// graph and reports each component that contains a cycle, naming the
// locks involved and the site of each offending edge.
func (lo *lockOrder) reportCycles() {
	// Deterministic adjacency from the edge map, ordered by lock
	// registration then by name.
	succ := map[types.Object][]types.Object{}
	for key := range lo.edges { //reprolint:allow mapiter: adjacency construction; successor lists are sorted below
		succ[key[0]] = append(succ[key[0]], key[1])
	}
	for _, vs := range succ { //reprolint:allow mapiter: in-place sort of each successor list; no ordered output is produced here
		sort.Slice(vs, func(i, j int) bool { return lo.names[vs[i]] < lo.names[vs[j]] })
	}

	// Tarjan's SCC over locks in registration order.
	index := map[types.Object]int{}
	low := map[types.Object]int{}
	onStack := map[types.Object]bool{}
	var stack []types.Object
	next := 0
	var sccs [][]types.Object
	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, v := range lo.order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	for _, comp := range sccs {
		if len(comp) < 2 {
			continue // a single lock can't invert against itself (re-acquire is filtered out upstream)
		}
		sort.Slice(comp, func(i, j int) bool { return lo.names[comp[i]] < lo.names[comp[j]] })
		names := make([]string, len(comp))
		inComp := map[types.Object]bool{}
		for i, v := range comp {
			names[i] = lo.names[v]
			inComp[v] = true
		}
		var sites []string
		first := token.NoPos
		for _, u := range comp {
			for _, w := range succ[u] {
				if !inComp[w] {
					continue
				}
				e := lo.edges[[2]types.Object{u, w}]
				if !first.IsValid() {
					first = e.pos
				}
				sites = append(sites, fmt.Sprintf("%s->%s in %s at %s",
					lo.names[u], lo.names[w], e.fn.Name, lo.mp.Fset.Position(e.pos)))
			}
		}
		lo.mp.ReportChain(first, names,
			"lock acquisition order cycle between %s: two goroutines taking opposite orders can deadlock; pick one order (edges: %s)",
			strings.Join(names, ", "), strings.Join(sites, "; "))
	}
}
