package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// recorderWrites are the observation-only obs.Recorder methods the PR 2
// hook contract lets simulation code call: they feed telemetry in,
// return nothing a caller could branch on, and are no-ops on a nil
// receiver. Everything else on the Recorder reads recorded state back
// out, which only the telemetry layer itself may do.
var recorderWrites = map[string]bool{
	"Add":       true,
	"Study":     true,
	"TaskStart": true,
	"TaskDone":  true,
}

// ObsInertAnalyzer enforces telemetry inertness: simulation packages
// may only write to an obs.Recorder. Reading counters or spans back
// (Recorder.Snapshot and any future accessor) from simulation code
// could steer control flow by what was observed, breaking the
// byte-for-byte telemetry-invariance guarantee. The same contract bans
// importing the scrape-surface metrics registry (internal/obs/promtext)
// outright: its instruments are readable (Counter.Value, Gauge.Value,
// histogram snapshots), so simulation code holding one could branch on
// observed state — values flow into the registry only through the
// serving layer or scrape-time bridges.
func ObsInertAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "obsinert",
		Doc:  "simulation packages may only write to obs.Recorder: reading telemetry back (or importing the metrics registry) could steer simulation control flow",
		Appl: inSim,
		Run:  runObsInert,
	}
}

func runObsInert(p *Pass) {
	inspectFiles(p, func(n ast.Node) bool {
		if imp, ok := n.(*ast.ImportSpec); ok {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == p.Mod+"/internal/obs/promtext" {
				p.Reportf(imp.Pos(), "simulation package imports the metrics registry %s; simulation code observes only through the write-only obs.Recorder hooks", path)
			}
			return true
		}
		x, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel, ok := p.Pkg.Info.Selections[x]
		if !ok || sel.Kind() != types.MethodVal {
			return true
		}
		if !p.isModType(sel.Recv(), "internal/obs", "Recorder") {
			return true
		}
		if !recorderWrites[x.Sel.Name] {
			p.Reportf(x.Pos(), "(*obs.Recorder).%s reads recorded telemetry in a simulation package; simulation code may only write (allowed: %s)", x.Sel.Name, strings.Join(sortedNames(recorderWrites), ", "))
		}
		return true
	})
}

func sortedNames(m map[string]bool) []string {
	ns := make([]string, 0, len(m))
	for n := range m {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}
