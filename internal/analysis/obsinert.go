package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// recorderWrites are the observation-only obs.Recorder methods the PR 2
// hook contract lets simulation code call: they feed telemetry in,
// return nothing a caller could branch on, and are no-ops on a nil
// receiver. Everything else on the Recorder reads recorded state back
// out, which only the telemetry layer itself may do.
var recorderWrites = map[string]bool{
	"Add":       true,
	"Study":     true,
	"TaskStart": true,
	"TaskDone":  true,
}

// ObsInertAnalyzer enforces telemetry inertness: simulation packages
// may only write to an obs.Recorder. Reading counters or spans back
// (Recorder.Snapshot and any future accessor) from simulation code
// could steer control flow by what was observed, breaking the
// byte-for-byte telemetry-invariance guarantee. The same contract bans
// importing the scrape-surface metrics registry (internal/obs/promtext)
// outright: its instruments are readable (Counter.Value, Gauge.Value,
// histogram snapshots), so simulation code holding one could branch on
// observed state — values flow into the registry only through the
// serving layer or scrape-time bridges. The reachability pass extends
// the contract to every function a simulation entry point can reach,
// excepting the telemetry layer itself.
func ObsInertAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "obsinert",
		Doc:       "simulation packages (and everything they transitively call) may only write to obs.Recorder: reading telemetry back could steer simulation control flow",
		Appl:      inSim,
		Run:       runObsInert,
		RunModule: runObsInertModule,
	}
}

func runObsInert(p *Pass) {
	inspectFiles(p, func(n ast.Node) bool {
		if imp, ok := n.(*ast.ImportSpec); ok {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == p.Mod+"/internal/obs/promtext" {
				p.Reportf(imp.Pos(), "simulation package imports the metrics registry %s; simulation code observes only through the write-only obs.Recorder hooks", path)
			}
			return true
		}
		return scanObsRead(p.Pkg.Info, p.Mod, n, p.Reportf)
	})
}

// scanObsRead checks one AST node for a read of recorded telemetry (a
// non-write obs.Recorder method call, or any use of a promtext
// instrument), reporting through the given sink.
func scanObsRead(info *types.Info, mod string, n ast.Node, report func(pos token.Pos, format string, args ...any)) bool {
	x, ok := n.(*ast.SelectorExpr)
	if !ok {
		return true
	}
	if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == mod+"/internal/obs/promtext" {
			report(x.Pos(), "%s touches the metrics registry; simulation-reachable code observes only through the write-only obs.Recorder hooks", fn.FullName())
			return true
		}
	}
	sel, ok := info.Selections[x]
	if !ok || sel.Kind() != types.MethodVal {
		return true
	}
	if !isModType(mod, sel.Recv(), "internal/obs", "Recorder") {
		return true
	}
	if !recorderWrites[x.Sel.Name] {
		report(x.Pos(), "(*obs.Recorder).%s reads recorded telemetry on a simulation path; simulation code may only write (allowed: %s)", x.Sel.Name, strings.Join(sortedNames(recorderWrites), ", "))
	}
	return true
}

// runObsInertModule extends inertness transitively: any function
// reachable from a simulation entry point may not read telemetry back,
// wherever it lives. The telemetry layer itself (internal/obs and its
// subpackages) legitimately reads its own state and is exempt.
func runObsInertModule(mp *ModulePass) {
	skip := func(rel string) bool {
		return inSim(rel) || rel == "internal/obs" || strings.HasPrefix(rel, "internal/obs/")
	}
	forReachableOutside(mp, skip, func(n *Node, chain []string) {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			return scanObsRead(n.Pkg.Info, mp.Mod, node, func(pos token.Pos, format string, args ...any) {
				mp.ReportChain(pos, chain, format, args...)
			})
		})
	})
}

func sortedNames(m map[string]bool) []string {
	ns := make([]string, 0, len(m))
	for n := range m { //reprolint:allow mapiter: allowlist rendering for an error message; sorted on the next line
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}
