package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module (or an
// explicitly loaded fixture directory under testdata).
type Package struct {
	// Path is the full import path, e.g. "repro/internal/core".
	Path string
	// Rel is the module-root-relative directory with forward slashes,
	// e.g. "internal/core"; "" for the module root package. Analyzer
	// scopes match on Rel so they stay independent of the module path.
	Rel string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks the module's packages using only the
// standard library: go/parser for syntax, go/types for checking, and
// go/importer for dependencies outside the module. Module-internal
// imports are resolved by mapping import paths onto directories under
// the module root, so no export data or build step is required for the
// code under analysis.
type Loader struct {
	Root       string // directory containing go.mod
	ModulePath string // module path declared in go.mod

	fset    *token.FileSet
	pkgs    map[string]*Package // by import path, fully type-checked
	loading map[string]bool     // import-cycle guard
	std     types.Importer      // compiled export data (fast path)
	stdSrc  types.Importer      // from-source fallback
}

// NewLoader finds the enclosing module of dir (walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:       root,
		ModulePath: modPath,
		fset:       fset,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		std:        importer.Default(),
		stdSrc:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// Fset returns the loader's file set; every loaded file's positions
// resolve through it.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks up from dir until it sees a go.mod, and parses the
// module path out of it.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		raw, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(raw), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// LoadModule loads every package of the module: each directory under
// the root that contains non-test .go files, skipping testdata, hidden
// and underscore-prefixed directories. Results are sorted by import
// path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test, non-ignored .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// LoadDir loads and type-checks the single package in dir, which must
// be under the module root. Unlike LoadModule it accepts directories
// below testdata, so tests can load analyzer fixtures through the same
// pipeline as real code.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s is outside module root %s", dir, l.Root)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// load resolves an import path within the module to its directory and
// type-checks it, memoized per path.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s:\n\t%s", path, strings.Join(typeErrs, "\n\t"))
	}

	p := &Package{
		Path:  path,
		Rel:   relPath(rel),
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

func relPath(rel string) string {
	if rel == "." {
		return ""
	}
	return filepath.ToSlash(rel)
}

// Import implements types.Importer: module-internal paths load from
// source through the loader itself; everything else (the standard
// library) goes through compiled export data, falling back to
// type-checking the dependency from source when no export data is
// installed.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	return l.stdSrc.Import(path)
}
