package analysis

import "strings"

// simPackages are the simulation packages: everything whose output
// feeds study results and therefore must be deterministic and
// telemetry-inert. The executor (internal/exec) and telemetry
// (internal/obs) layers are deliberately outside this set — they own
// the allowlisted clock reads and goroutines.
var simPackages = map[string]bool{
	"internal/branch":      true,
	"internal/cacti":       true,
	"internal/circuit":     true,
	"internal/config":      true,
	"internal/core":        true,
	"internal/experiments": true,
	"internal/fo4":         true,
	"internal/isa":         true,
	"internal/latch":       true,
	"internal/mem":         true,
	"internal/metrics":     true,
	"internal/pipeline":    true,
	"internal/trace":       true,
	"internal/wire":        true,
}

// IsSimPackage reports whether the module-root-relative directory rel
// is one of the simulation packages the determinism rules protect.
func IsSimPackage(rel string) bool { return simPackages[rel] }

func inSim(rel string) bool { return simPackages[rel] }

// inSimOrRuntime adds the executor, telemetry and result-store layers,
// whose clock reads are real but allowlisted in place with directives
// (worker timing, span wall times, coordinator pacing).
func inSimOrRuntime(rel string) bool {
	return simPackages[rel] || rel == "internal/exec" || rel == "internal/obs" || rel == "internal/store"
}

// Analyzers returns the full rule suite, freshly allocated so callers
// may filter it.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer(),
		MapIterAnalyzer(),
		TraceImmutableAnalyzer(),
		ObsInertAnalyzer(),
		GoroutineScopeAnalyzer(),
	}
}

// ByName returns the analyzers whose names are listed, in listing
// order, or an error string naming the first unknown rule.
func ByName(names []string) ([]*Analyzer, string) {
	all := Analyzers()
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, n
		}
		out = append(out, a)
	}
	return out, ""
}
