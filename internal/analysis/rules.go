package analysis

import "strings"

// simPackages are the simulation packages: everything whose output
// feeds study results and therefore must be deterministic and
// telemetry-inert. The executor (internal/exec) and telemetry
// (internal/obs) layers are deliberately outside this set — they own
// the allowlisted clock reads and goroutines.
var simPackages = map[string]bool{
	"internal/branch":      true,
	"internal/cacti":       true,
	"internal/circuit":     true,
	"internal/config":      true,
	"internal/core":        true,
	"internal/experiments": true,
	"internal/fo4":         true,
	"internal/isa":         true,
	"internal/latch":       true,
	"internal/mem":         true,
	"internal/metrics":     true,
	"internal/pipeline":    true,
	"internal/trace":       true,
	"internal/wire":        true,
}

// IsSimPackage reports whether the module-root-relative directory rel
// is one of the simulation packages the determinism rules protect.
func IsSimPackage(rel string) bool { return simPackages[rel] }

func inSim(rel string) bool { return simPackages[rel] }

// inSimOrRuntime adds the executor, telemetry and result-store layers,
// whose clock reads are real but allowlisted in place with directives
// (worker timing, span wall times, coordinator pacing).
func inSimOrRuntime(rel string) bool {
	return simPackages[rel] || rel == "internal/exec" || rel == "internal/obs" || rel == "internal/store"
}

// toolingPackages are the layers that prove the invariants rather than
// compute under them — the analyzer itself and the metrics-text
// renderer. They are held to the determinism hygiene rules too: the
// linter's own output must be stable run to run, and a scrape body must
// render identically for identical instrument state.
var toolingPackages = map[string]bool{
	"internal/analysis":     true,
	"internal/obs/promtext": true,
}

func inSimRuntimeOrTooling(rel string) bool {
	return inSimOrRuntime(rel) || toolingPackages[rel]
}

func inSimOrTooling(rel string) bool {
	return simPackages[rel] || toolingPackages[rel]
}

// inServing is the serving-path scope the concurrency rules police: the
// HTTP layer and the durable store behind it.
func inServing(rel string) bool {
	return rel == "internal/serve" || rel == "internal/store"
}

// Analyzers returns the full rule suite, freshly allocated so callers
// may filter it.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer(),
		MapIterAnalyzer(),
		TraceImmutableAnalyzer(),
		ObsInertAnalyzer(),
		GoroutineScopeAnalyzer(),
		LockOrderAnalyzer(),
		CtxCancelAnalyzer(),
		GoJoinAnalyzer(),
	}
}

// ByName returns the analyzers whose names are listed, in listing
// order, or an error string naming the first unknown rule.
func ByName(names []string) ([]*Analyzer, string) {
	all := Analyzers()
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, n
		}
		out = append(out, a)
	}
	return out, ""
}
