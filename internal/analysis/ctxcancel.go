package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxCancelAnalyzer enforces that every blocking operation reachable
// from an HTTP handler sits on a context-cancellable path. A bare
// channel send, bare receive, select without a ctx.Done (or default)
// case, time.Sleep, or WaitGroup.Wait on a request path means a client
// disconnect cannot unwind the request: the goroutine parks forever and
// the admission slot leaks. Handlers are found by signature —
// func(http.ResponseWriter, *http.Request), declared or as a closure —
// and the rule walks everything they can reach through the call graph.
func CtxCancelAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "ctxcancel",
		Doc:       "blocking operations reachable from an HTTP handler must be context-cancellable: a client disconnect has to unwind the request path",
		Appl:      inServing,
		RunModule: runCtxCancel,
	}
}

func runCtxCancel(mp *ModulePass) {
	g := mp.Graph
	var roots []*Node
	for _, n := range g.Nodes() {
		if isHandlerNode(n) {
			roots = append(roots, n)
		}
	}
	reach := g.ReachableFrom(roots)
	for _, n := range g.Nodes() {
		if !mp.InScope(inServing, n.Rel) || !reach.Contains(n) || n.Decl.Body == nil {
			continue
		}
		scanBlocking(mp, n, reach.Chain(n))
	}
}

// isHandlerNode reports whether the node is an HTTP handler: its own
// signature is func(http.ResponseWriter, *http.Request), or its body
// builds a closure with that signature (middleware constructors — the
// closure's blocking sites are attributed to the enclosing function).
func isHandlerNode(n *Node) bool {
	if sig, ok := n.Fn.Type().(*types.Signature); ok && isHandlerSig(sig) {
		return true
	}
	if n.Decl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			if tv, ok := n.Pkg.Info.Types[lit]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok && isHandlerSig(sig) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

func isHandlerSig(sig *types.Signature) bool {
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return isNetHTTPType(sig.Params().At(0).Type(), "ResponseWriter") &&
		isNetHTTPType(sig.Params().At(1).Type(), "Request")
}

func isNetHTTPType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}

// scanBlocking flags the handler-reachable blocking operations in one
// function body. Channel operations lexically inside a cancellable
// select (one with a ctx.Done receive or a default case) are fine;
// receiving directly from ctx.Done is the cancellation wait itself.
// Goroutine bodies are skipped — a spawned goroutine does not block the
// request; whether it can be stopped is the gojoin rule's question.
func scanBlocking(mp *ModulePass, n *Node, chain []string) {
	info := n.Pkg.Info

	// First pass: intervals covered by a cancellable select, and go
	// statements to skip.
	type span struct{ lo, hi token.Pos }
	var prot, skip []span
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.SelectStmt:
			if selectCancellable(info, x) {
				prot = append(prot, span{x.Pos(), x.End()})
			}
		case *ast.GoStmt:
			skip = append(skip, span{x.Pos(), x.End()})
		}
		return true
	})
	in := func(spans []span, pos token.Pos) bool {
		for _, s := range spans {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		pos := token.NoPos
		if node != nil {
			pos = node.Pos()
		}
		if node == nil || in(skip, pos) {
			return node == nil
		}
		switch x := node.(type) {
		case *ast.SendStmt:
			if !in(prot, pos) {
				mp.ReportChain(pos, chain, "blocking channel send on a handler-reachable path with no ctx.Done escape; a disconnected client cannot unwind it — select on the send with ctx.Done()")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !in(prot, pos) && !isDoneRecv(info, x.X) {
				mp.ReportChain(pos, chain, "blocking channel receive on a handler-reachable path with no ctx.Done escape; a disconnected client cannot unwind it — select on the receive with ctx.Done()")
			}
		case *ast.SelectStmt:
			if !in(prot, pos) {
				mp.ReportChain(pos, chain, "select on a handler-reachable path has neither a ctx.Done case nor a default; add one so client disconnects unwind the request")
				// Cover the comm clauses so each op is not re-flagged.
				prot = append(prot, span{x.Pos(), x.End()})
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil {
				switch fn.FullName() {
				case "time.Sleep":
					mp.ReportChain(pos, chain, "time.Sleep on a handler-reachable path cannot be cancelled; use a timer in a select with ctx.Done()")
				case "(*sync.WaitGroup).Wait":
					mp.ReportChain(pos, chain, "WaitGroup.Wait on a handler-reachable path cannot be cancelled by a client disconnect; wait in a goroutine and select on completion vs ctx.Done()")
				}
			}
		}
		return true
	})
}

// selectCancellable reports whether the select has an escape hatch: a
// default case, or a case receiving from a context's Done channel.
func selectCancellable(info *types.Info, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		comm, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			return true // default case: the select cannot park
		}
		var recv ast.Expr
		switch s := comm.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recv = u.X
				}
			}
		}
		if recv != nil && isDoneChan(info, recv) {
			return true
		}
	}
	return false
}

// isDoneRecv reports whether a receive operand is a context Done
// channel — waiting on cancellation is itself cancellable.
func isDoneRecv(info *types.Info, operand ast.Expr) bool {
	return isDoneChan(info, operand)
}

func isDoneChan(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.FullName() == "(context.Context).Done"
}

// calleeFunc resolves a call's static callee object, nil for dynamic
// calls and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}
