package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// runSuppress runs the full rule suite over one suppression fixture.
// The full suite matters: directive validation needs the complete set
// of known rule names.
func runSuppress(t *testing.T, rel string) []analysis.Finding {
	t.Helper()
	l := loader(t)
	p := fixture(t, l, "suppress/"+rel)
	return analysis.Run(l, []*analysis.Package{p}, analysis.Analyzers(), analysis.Options{IgnoreScope: true})
}

// TestSuppressionClean: a justified directive on the flagged line or
// the line directly above suppresses exactly that finding.
func TestSuppressionClean(t *testing.T) {
	if got := runSuppress(t, "clean"); len(got) > 0 {
		t.Errorf("justified directives should suppress everything, got: %v", got)
	}
}

// The malformed-directive cases must all fail closed: the directive
// problem is reported AND the original finding survives.
func TestSuppressionFailsClosed(t *testing.T) {
	for _, tc := range []struct {
		fixture string
		wantMsg string // substring of the directive finding
	}{
		{"missingwhy", "missing its justification"},
		{"unknownrule", `unknown rule "nondet"`},
		{"wrongline", "matches no finding"},
	} {
		t.Run(tc.fixture, func(t *testing.T) {
			got := runSuppress(t, tc.fixture)
			var directive, original bool
			for _, f := range got {
				switch f.Rule {
				case analysis.DirectiveRule:
					if !strings.Contains(f.Message, tc.wantMsg) {
						t.Errorf("directive finding %q does not explain the problem (want substring %q)", f.Message, tc.wantMsg)
					}
					directive = true
				case "nondeterminism":
					original = true
				default:
					t.Errorf("unexpected finding: %s", f)
				}
			}
			if !directive {
				t.Errorf("broken directive was not reported; findings: %v", got)
			}
			if !original {
				t.Errorf("original finding was silently suppressed by a broken directive; findings: %v", got)
			}
		})
	}
}

// TestDirectiveCannotSuppressItself: directive problems report under a
// pseudo-rule that is not a real analyzer, so they can never be
// suppressed in turn.
func TestDirectiveCannotSuppressItself(t *testing.T) {
	for _, a := range analysis.Analyzers() {
		if a.Name == analysis.DirectiveRule {
			t.Fatalf("%q must not be a real analyzer name", analysis.DirectiveRule)
		}
	}
}
