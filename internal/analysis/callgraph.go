package analysis

// The interprocedural layer: a conservative static call graph over the
// analyzed packages, built from go/types resolution alone. The graph is
// what turns the per-package syntactic rules into reachability
// properties — "no function transitively reachable from a sim entry
// point may read a clock" — and what the serving-path concurrency rules
// (lockorder, ctxcancel, gojoin) walk.
//
// Conservatism model (over-approximation is deliberate — a reported
// edge that cannot execute costs a justified directive; a missed edge
// costs the invariant):
//
//   - Direct calls and method calls resolve through types.Info to their
//     static callee.
//   - A call through an interface method fans out to every method of
//     every named type in the analyzed packages whose method set
//     satisfies the interface ("method sets for interface dispatch").
//   - A function name referenced as a value (passed as a callback,
//     stored in a field, launched by go/defer) adds an edge from the
//     enclosing function — the graph assumes a captured function may be
//     called by whoever holds it.
//   - A function literal's body is attributed to the function that
//     lexically encloses it, so calls made inside closures are edges
//     from the declaring function.
//
// Known approximation: package-level variable initializers (a function
// literal bound at init time) have no enclosing declaration and are not
// graphed; none of the repo's invariant surfaces live there.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Node is one declared function or method of the analyzed packages.
type Node struct {
	// Fn is the canonical go/types object (Origin for generics).
	Fn *types.Func
	// Pkg is the package the function is declared in.
	Pkg *Package
	// Decl is the declaration, including the body the rules walk.
	Decl *ast.FuncDecl
	// Name is the module-trimmed display name used in call chains:
	// "internal/core.SimulatePoint", "internal/serve.(*scheduler).admit".
	Name string
	// Rel is Pkg.Rel, denormalized for scope predicates.
	Rel string

	edges []Edge
	seen  map[*Node]bool
}

// Edge is one call (or captured-reference) edge to another node.
type Edge struct {
	To *Node
	// Pos is the first site inducing the edge, for diagnostics.
	Pos token.Pos
}

// CallGraph is the conservative static call graph over a package set.
type CallGraph struct {
	fset  *token.FileSet
	mod   string
	nodes map[*types.Func]*Node
	list  []*Node // deterministic order: package, file, position

	named []*types.Named // named types of the analyzed packages, sorted
}

// NewCallGraph builds the graph over pkgs. The package list should be
// the whole module for real runs (reachability is only as complete as
// the graph); fixture tests pass single packages.
func NewCallGraph(fset *token.FileSet, mod string, pkgs []*Package) *CallGraph {
	g := &CallGraph{fset: fset, mod: mod, nodes: map[*types.Func]*Node{}}
	for _, pkg := range pkgs {
		g.collectNamed(pkg)
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: obj, Pkg: pkg, Decl: fd, Rel: pkg.Rel,
					Name: g.trimName(obj), seen: map[*Node]bool{}}
				g.nodes[obj] = n
				g.list = append(g.list, n)
			}
		}
	}
	sort.Slice(g.named, func(i, j int) bool {
		a, b := g.named[i].Obj(), g.named[j].Obj()
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})
	for _, n := range g.list {
		g.addEdges(n)
	}
	return g
}

// Nodes returns every node in deterministic (package, position) order.
func (g *CallGraph) Nodes() []*Node { return g.list }

// NodeOf returns the node for a declared function object, nil if the
// object is not part of the analyzed packages.
func (g *CallGraph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Edges returns n's outgoing edges in discovery (source) order.
func (n *Node) Edges() []Edge { return n.edges }

// collectNamed records the package's named types for interface-dispatch
// fan-out.
func (g *CallGraph) collectNamed(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			g.named = append(g.named, named)
		}
	}
}

// trimName renders fn's full name with the module path stripped, so
// chains read "internal/core.SimulatePoint" regardless of module name.
func (g *CallGraph) trimName(fn *types.Func) string {
	name := fn.FullName()
	name = strings.ReplaceAll(name, g.mod+"/", "")
	// The root package's functions carry the bare module path.
	name = strings.TrimPrefix(name, g.mod+".")
	return name
}

// addEdges walks n's declaration and records an edge for every function
// the body could invoke.
func (n *Node) addEdge(to *Node, pos token.Pos) {
	if to == nil || to == n || n.seen[to] {
		return
	}
	n.seen[to] = true
	n.edges = append(n.edges, Edge{To: to, Pos: pos})
}

func (g *CallGraph) addEdges(n *Node) {
	if n.Decl.Body == nil {
		return
	}
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		for _, target := range g.resolve(obj) {
			n.addEdge(target, id.Pos())
		}
		return true
	})
}

// resolve maps a used function object to the graph nodes it may invoke:
// the declared function itself, or — for an interface method — every
// satisfying method of the analyzed named types.
func (g *CallGraph) resolve(obj *types.Func) []*Node {
	obj = obj.Origin()
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	recv := sig.Recv()
	if recv == nil || !types.IsInterface(recv.Type()) {
		if n := g.nodes[obj]; n != nil {
			return []*Node{n}
		}
		return nil
	}
	// Interface dispatch: fan out to every analyzed type whose method
	// set satisfies the interface the method belongs to.
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Node
	for _, named := range g.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		m, _, _ := types.LookupFieldOrMethod(ptr, true, obj.Pkg(), obj.Name())
		impl, ok := m.(*types.Func)
		if !ok {
			continue
		}
		if n := g.nodes[impl.Origin()]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// CalleesOf resolves the static targets of one call expression against
// the graph: the declared callee, or the dispatch fan-out for a call
// through an interface method. Conversions and calls through dynamic
// function values resolve to nothing.
func (g *CallGraph) CalleesOf(info *types.Info, call *ast.CallExpr) []*Node {
	fn := ast.Unparen(call.Fun)
	var obj types.Object
	switch x := fn.(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	default:
		return nil
	}
	f, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return g.resolve(f)
}

// EnclosingNode returns the node whose declaration lexically contains
// pos, nil when pos sits outside every declared function (package-level
// declarations).
func (g *CallGraph) EnclosingNode(pkg *Package, pos token.Pos) *Node {
	for _, n := range g.list {
		if n.Pkg == pkg && n.Decl.Pos() <= pos && pos <= n.Decl.End() {
			return n
		}
	}
	return nil
}
