// Package leaky is the reach fixtures' out-of-scope helper: it is not a
// simulation package, so its clock reads are only violations when a sim
// entry point can reach them. StampPipe/StampCore are reached from the
// batched roots (pipeline.RunBatch, core.SimulateBatch) and must be
// flagged with those chains; Unreached hangs off a non-root and must
// stay silent.
package leaky

import "time"

// StampPipe is reachable from the fixture pipeline.RunBatch root.
func StampPipe() int {
	return time.Now().Nanosecond() // flagged through RunBatch's chain
}

// StampCore is reachable from the fixture core.SimulateBatch root.
func StampCore() int {
	return time.Now().Nanosecond() // flagged through SimulateBatch's chain
}

// Unreached is called only by non-root functions; if this line is ever
// flagged, the root set grew past the declared entry points.
func Unreached() int {
	return time.Now().Nanosecond()
}
