// Package clean shows both legitimate directive placements: trailing
// on the flagged line, and alone on the line directly above it. Both
// carry the required justification, so the package lints clean.
package clean

import "time"

// Stamp reads the clock twice, both sites justified in place.
func Stamp() time.Duration {
	start := time.Now() //reprolint:allow nondeterminism: fixture exercising the trailing placement
	//reprolint:allow nondeterminism: fixture exercising the line-above placement
	return time.Since(start)
}
