// Package unknownrule typos the rule name; the directive must fail
// closed and the original finding must survive.
package unknownrule

import "time"

// Stamp misnames the rule it wants to suppress.
func Stamp() time.Time {
	return time.Now() //reprolint:allow nondet: the rule name has a typo
}
