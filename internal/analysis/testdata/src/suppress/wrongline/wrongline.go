// Package wrongline places a well-formed directive too far from the
// violation; it must be reported as matching nothing and the original
// finding must survive.
package wrongline

import "time"

// Stamp is documented here, breaking directive adjacency.
//
//reprolint:allow nondeterminism: fixture directive stranded two lines above the violation
func Stamp() time.Time {
	return time.Now()
}
