// Package missingwhy suppresses without a justification; the directive
// must fail closed and the original finding must survive.
package missingwhy

import "time"

// Stamp hides its clock read behind a why-less directive.
func Stamp() time.Time {
	return time.Now() //reprolint:allow nondeterminism
}
