// Package bad branches on recorded telemetry — the feedback loop the
// inertness contract forbids in simulation code.
package bad

import "repro/internal/obs"

// Steer changes its result by what the recorder has observed.
func Steer(r *obs.Recorder) int {
	snap := r.Snapshot() // want obsinert
	if snap.Counters["simulations"] > 100 {
		return 1
	}
	return 0
}
