package bad

// Even a blank import of the scrape-surface registry is forbidden in
// simulation code: promtext instruments are readable, so holding one is
// a telemetry feedback loop waiting to happen.

import _ "repro/internal/obs/promtext" // want obsinert
