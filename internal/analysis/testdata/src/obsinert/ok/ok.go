// Package ok only writes telemetry in, through the four
// observation-only Recorder methods the hook contract allows.
package ok

import "repro/internal/obs"

// Record feeds the recorder without ever reading it back.
func Record(r *obs.Recorder) {
	defer r.Study("fixture")()
	r.Add("simulations", 1)
	r.TaskStart(0, 0, 0)
	r.TaskDone(0, 0, 0)
}
