// Package ok spawns only goroutines with a provable join or stop edge.
package ok

import (
	"context"
	"sync"
)

// Waited joins through a WaitGroup.
func Waited(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Drained ranges a channel the owner closes.
func Drained(ch chan int) {
	go func() {
		for range ch {
		}
	}()
	close(ch)
}

// Stopped polls a struct{} stop channel.
func Stopped(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
}

// CtxStopped watches context cancellation.
func CtxStopped(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func worker(ch chan int) {
	for range ch {
	}
}

// NamedDrain spawns a named function whose body drains a channel.
func NamedDrain(ch chan int) {
	go worker(ch)
}

// LitCallsHelper finds the evidence one call away from the literal.
func LitCallsHelper(ch chan int) {
	go func() {
		worker(ch)
	}()
}
