// Package bad leaks goroutines: nothing can join or stop them.
package bad

// Leak spawns a sender with no join or stop edge.
func Leak(ch chan int) {
	go func() { // want gojoin
		for {
			ch <- 1
		}
	}()
}

// Dynamic launches a function value; its discipline cannot be proven.
func Dynamic(fn func()) {
	go fn() // want gojoin
}

func spin() {
	for {
	}
}

// Named spawns a named function that spins forever with no stop edge.
func Named() {
	go spin() // want gojoin
}
