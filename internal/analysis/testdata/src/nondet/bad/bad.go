// Package bad exercises every trigger of the nondeterminism rule.
package bad

import (
	"math/rand" // want nondeterminism
	"os"
	"time"
)

// Stamp leaks wall-clock, environment and global-RNG state into its
// result — everything a simulation package must never do.
func Stamp() (time.Duration, string, int) {
	start := time.Now()        // want nondeterminism
	d := time.Since(start)     // want nondeterminism
	home := os.Getenv("HOME")  // want nondeterminism
	return d, home, rand.Int() // want nondeterminism
}
