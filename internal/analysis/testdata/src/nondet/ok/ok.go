// Package ok uses the time package without ever reading a clock:
// duration arithmetic on caller-supplied values is deterministic.
package ok

import "time"

// Double scales a caller-supplied duration.
func Double(d time.Duration) time.Duration { return 2 * d }
