// Package bad spawns a goroutine outside the deterministic executor.
package bad

// Race runs work on an unmanaged goroutine.
func Race(ch chan int) int {
	go func() { ch <- 1 }() // want goroutinescope
	return <-ch
}
