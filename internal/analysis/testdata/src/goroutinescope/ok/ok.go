// Package ok stays on the caller's goroutine: plain and deferred calls
// are not `go` statements.
package ok

// Call runs fn twice, inline.
func Call(fn func()) {
	defer fn()
	fn()
}
