// Package iface pins the call graph's dispatch model: interface calls
// fan out to every satisfying implementation, and a function referenced
// as a value gets an edge from the referencing function.
package iface

type Doer interface{ Do() int }

type Fast struct{}

func (Fast) Do() int { return 1 }

type Slow struct{}

func (*Slow) Do() int { return 2 }

// Drive calls through the interface.
func Drive(d Doer) int { return d.Do() }

// Value hands out helper without calling it.
func Value() func() int { return helper }

func helper() int { return 3 }
