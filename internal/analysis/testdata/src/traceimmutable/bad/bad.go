// Package bad writes a shared trace.Trace every way the rule catches.
package bad

import "repro/internal/trace"

// Mutate violates the immutability contract five distinct ways.
func Mutate(t *trace.Trace, more []trace.Inst) {
	t.Name = "mutant"                  // want traceimmutable
	t.Insts[0].Taken = true            // want traceimmutable
	t.Insts = append(t.Insts, more...) // want traceimmutable
	t.HotBytes++                       // want traceimmutable
	copy(t.Insts, more)                // want traceimmutable
}
