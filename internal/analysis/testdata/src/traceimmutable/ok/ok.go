// Package ok treats shared traces as read-only: reads, clones and
// construction of fresh Trace values are all fine.
package ok

import "repro/internal/trace"

// Variant derives a new trace the sanctioned way — cloning — and reads
// whatever it likes from the original.
func Variant(t *trace.Trace) (*trace.Trace, int) {
	c := t.WithPrefetchCoverage(0.5)
	fresh := &trace.Trace{Name: t.Name, Group: t.Group}
	if len(fresh.Insts) == 0 {
		return c, len(t.Insts)
	}
	return fresh, len(t.Insts)
}
