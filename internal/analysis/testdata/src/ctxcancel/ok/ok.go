// Package ok keeps every handler-reachable blocking operation on a
// context-cancellable path.
package ok

import "net/http"

var ch = make(chan int)

// Select waits with a ctx.Done escape.
func Select(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

// NonBlocking uses a default case, so the select cannot park.
func NonBlocking(w http.ResponseWriter, r *http.Request) {
	select {
	case ch <- 1:
	default:
	}
}

// DoneWait waits directly on cancellation, which is the escape itself.
func DoneWait(w http.ResponseWriter, r *http.Request) {
	<-r.Context().Done()
}

// Spawn moves the blocking receive onto a goroutine: it no longer
// blocks the request path (whether it can be stopped is gojoin's
// question, not this rule's).
func Spawn(w http.ResponseWriter, r *http.Request) {
	go func() {
		<-ch
	}()
}

// Middleware returns a handler closure; the closure's select is
// cancellable, so the enclosing constructor stays clean too.
func Middleware() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-ch:
		case <-r.Context().Done():
		}
	}
}

// Unreached blocks, but no handler can reach it, so the rule has
// nothing to say about it.
func Unreached() {
	<-ch
}
