// Package bad parks HTTP requests on blocking operations no client
// disconnect can unwind.
package bad

import (
	"net/http"
	"sync"
	"time"
)

var ch = make(chan int)

var wg sync.WaitGroup

// Send parks the request on a bare channel send.
func Send(w http.ResponseWriter, r *http.Request) {
	ch <- 1 // want ctxcancel
}

// Recv parks on a bare receive.
func Recv(w http.ResponseWriter, r *http.Request) {
	<-ch // want ctxcancel
}

// Stuck selects with neither a ctx.Done case nor a default.
func Stuck(w http.ResponseWriter, r *http.Request) {
	select { // want ctxcancel
	case <-ch:
	case ch <- 2:
	}
}

// Sleep cannot be cancelled.
func Sleep(w http.ResponseWriter, r *http.Request) {
	time.Sleep(time.Second) // want ctxcancel
}

// Wait joins a WaitGroup on the request path.
func Wait(w http.ResponseWriter, r *http.Request) {
	wg.Wait() // want ctxcancel
}

// helper is not a handler, but Indirect makes it handler-reachable; the
// finding carries the Indirect -> helper chain.
func helper() {
	<-ch // want ctxcancel
}

// Indirect blocks one call away from the handler.
func Indirect(w http.ResponseWriter, r *http.Request) {
	helper()
}
