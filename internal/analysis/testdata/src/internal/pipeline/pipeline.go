// Package pipeline is the analyzer-fixture stand-in for the real
// internal/pipeline: reach.go's fixtureRel maps this directory onto the
// sim-package root set, so the reach tests can pin exactly which
// functions root the transitive determinism rules.
package pipeline

import "repro/internal/analysis/testdata/src/simroots/leaky"

// RunBatch is a declared sim root: everything it reaches — here the
// out-of-scope leaky helper — is held to the determinism rules.
func RunBatch() int { return leaky.StampPipe() }

// RunWith is the pre-batching root; it stays in the set.
func RunWith() int { return 0 }

// NewBatchScratch is deliberately NOT a root: the helper behind it must
// stay unflagged, proving findings flow through the root set and not
// through package membership.
func NewBatchScratch() int { return leaky.Unreached() }
