// Package core is the analyzer-fixture stand-in for the real
// internal/core (see the pipeline fixture's doc comment).
package core

import "repro/internal/analysis/testdata/src/simroots/leaky"

// SimulateBatch is the batched serving entry, a declared sim root.
func SimulateBatch() int { return leaky.StampCore() }
