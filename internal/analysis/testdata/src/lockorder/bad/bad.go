// Package bad acquires two locks in opposite orders on two paths — the
// classic AB/BA deadlock — with one side of the inversion hidden behind
// a call.
package bad

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// AB locks A then B directly.
func AB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want lockorder
	b.mu.Unlock()
}

// BA locks B, then reaches A's lock transitively through lockA.
func BA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA(a)
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}
