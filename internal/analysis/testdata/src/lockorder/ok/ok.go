// Package ok takes its two locks in one consistent order everywhere;
// sequential (non-nested) use and goroutine-local acquisition do not
// create ordering edges.
package ok

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// One nests A then B.
func One(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
}

// Two reaches B's lock through a call, still under A.
func Two(a *A, b *B) {
	a.mu.Lock()
	lockB(b)
	a.mu.Unlock()
}

func lockB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// Three uses B then A sequentially: the first is released before the
// second is taken, so no edge forms.
func Three(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// Spawn holds B while starting a goroutine that takes A: the goroutine
// runs with nothing held, so no B->A edge forms.
func Spawn(a *A, b *B, wg *sync.WaitGroup) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		defer wg.Done()
		a.mu.Lock()
		a.mu.Unlock()
	}()
}
