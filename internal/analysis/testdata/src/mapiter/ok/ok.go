// Package ok walks maps through an explicitly ordered key list, the
// pattern the mapiter rule demands (trace.Groups() in the real tree).
package ok

// Sum accumulates in the caller's key order; absent keys contribute
// zero, so the result is a pure function of the arguments.
func Sum(keys []string, m map[string]float64) float64 {
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}
