// Package bad iterates maps directly, in Go's randomized order.
package bad

// Sum accumulates in whatever order the runtime hands out.
func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want mapiter
		s += v
	}
	return s
}

// Keys collects map keys; even a keys-only walk is order-randomized.
func Keys(m map[int]struct{}) []int {
	var ks []int
	for k := range m { // want mapiter
		ks = append(ks, k)
	}
	return ks
}
