package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoJoinAnalyzer generalizes the goroutinescope whitelist into a
// checked property: every `go` statement, anywhere in the module, must
// have a provable join or stop edge — the spawned code signals a
// sync.WaitGroup, drains a channel by ranging over it (joined by
// close), or waits on a stop/context channel. A goroutine with none of
// these outlives its owner: it leaks across requests, holds references
// past shutdown, and turns clean SIGTERM drains into hangs. A `go`
// launching a dynamic function value is unprovable and flagged.
func GoJoinAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "gojoin",
		Doc:       "every go statement needs a provable join/stop edge: WaitGroup.Done, range-over-channel drain, or a stop/context channel receive",
		RunModule: runGoJoin,
	}
}

func runGoJoin(mp *ModulePass) {
	g := mp.Graph
	for _, n := range g.Nodes() {
		if !mp.InScope(nil, n.Rel) || n.Decl.Body == nil {
			continue
		}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(mp, n, gs)
			return true
		})
	}
}

// checkGoStmt looks for join evidence in the spawned code: the
// goroutine body itself (for a literal) plus everything statically
// reachable from it through the call graph.
func checkGoStmt(mp *ModulePass, n *Node, gs *ast.GoStmt) {
	g := mp.Graph
	info := n.Pkg.Info

	var roots []*Node
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if hasJoinEvidence(info, lit.Body) {
			return
		}
		// No evidence in the literal itself; follow its static callees.
		ast.Inspect(lit.Body, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok {
				roots = append(roots, g.CalleesOf(info, call)...)
			}
			return true
		})
		if len(roots) == 0 {
			mp.ReportChain(gs.Pos(), []string{n.Name},
				"goroutine has no provable join/stop edge: signal a WaitGroup, range over a close-drained channel, or select on a stop/context channel so the owner can join or stop it")
			return
		}
	} else {
		roots = g.CalleesOf(info, gs.Call)
		if len(roots) == 0 {
			if fn := calleeFunc(info, gs.Call); fn != nil {
				mp.ReportChain(gs.Pos(), []string{n.Name},
					"goroutine runs %s, outside the analyzed module; its join/stop discipline cannot be proven — wrap it with a WaitGroup, drain channel, or stop channel", fn.FullName())
			} else {
				mp.ReportChain(gs.Pos(), []string{n.Name},
					"go statement launches a dynamic function value; its join/stop discipline cannot be proven — launch a named function with a WaitGroup, drain channel, or stop channel")
			}
			return
		}
	}

	reach := g.ReachableFrom(roots)
	for _, m := range g.Nodes() {
		if reach.Contains(m) && m.Decl.Body != nil && hasJoinEvidence(m.Pkg.Info, m.Decl.Body) {
			return
		}
	}
	mp.ReportChain(gs.Pos(), []string{n.Name},
		"goroutine has no provable join/stop edge: signal a WaitGroup, range over a close-drained channel, or select on a stop/context channel so the owner can join or stop it")
}

// hasJoinEvidence scans a body for any of the accepted join/stop
// disciplines: a (deferred) WaitGroup.Done, a range over a channel
// (terminates when the sender closes it), or a receive from a
// struct{}-typed stop channel or a context Done channel.
func hasJoinEvidence(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		if found {
			return false
		}
		switch x := node.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil && fn.FullName() == "(*sync.WaitGroup).Done" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && (isStopChan(info, x.X) || isDoneChan(info, x.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isStopChan reports whether the expression is a struct{}-element
// channel — the conventional zero-width stop/quit signal.
func isStopChan(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
