package analysis_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// The loader is shared across tests: type-checking the standard
// library's export data once is what makes the suite fast.
var (
	loaderOnce sync.Once
	loaderVal  *analysis.Loader
	loaderErr  error
)

func loader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = analysis.NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

func fixture(t *testing.T, l *analysis.Loader, rel string) *analysis.Package {
	t.Helper()
	p, err := l.LoadDir(filepath.Join("testdata", "src", rel))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return p
}

// wants parses the fixture's "// want <rule>" comments into the set of
// expected "file:line:rule" keys, with file paths module-root-relative
// to match Finding.File.
func wants(t *testing.T, l *analysis.Loader, p *analysis.Package) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	ents, err := os.ReadDir(p.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(p.Dir, e.Name())
		rel, err := filepath.Rel(l.Root, path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, after, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			rule := strings.Fields(after)[0]
			out[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), line, rule)] = true
		}
		f.Close()
	}
	return out
}

func keysOf(fs []analysis.Finding) map[string]bool {
	out := map[string]bool{}
	for _, f := range fs {
		out[fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Rule)] = true
	}
	return out
}

func diffSets(t *testing.T, want, got map[string]bool) {
	t.Helper()
	var missing, extra []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		t.Errorf("expected findings not reported:\n\t%s", strings.Join(missing, "\n\t"))
	}
	if len(extra) > 0 {
		t.Errorf("unexpected findings:\n\t%s", strings.Join(extra, "\n\t"))
	}
}

// TestAnalyzerFixtures runs each rule over its bad fixture (every
// "// want" line must be reported, nothing else) and its ok fixture
// (nothing at all may be reported).
func TestAnalyzerFixtures(t *testing.T) {
	l := loader(t)
	for _, tc := range []struct {
		rule    string
		fixture string
	}{
		{"nondeterminism", "nondet"},
		{"mapiter", "mapiter"},
		{"traceimmutable", "traceimmutable"},
		{"obsinert", "obsinert"},
		{"goroutinescope", "goroutinescope"},
		{"lockorder", "lockorder"},
		{"ctxcancel", "ctxcancel"},
		{"gojoin", "gojoin"},
	} {
		t.Run(tc.rule, func(t *testing.T) {
			az, unknown := analysis.ByName([]string{tc.rule})
			if az == nil {
				t.Fatalf("unknown analyzer %q", unknown)
			}

			bad := fixture(t, l, tc.fixture+"/bad")
			got := analysis.Run(l, []*analysis.Package{bad}, az, analysis.Options{IgnoreScope: true})
			want := wants(t, l, bad)
			if len(want) == 0 {
				t.Fatalf("fixture %s/bad has no // want comments", tc.fixture)
			}
			diffSets(t, want, keysOf(got))

			ok := fixture(t, l, tc.fixture+"/ok")
			if got := analysis.Run(l, []*analysis.Package{ok}, az, analysis.Options{IgnoreScope: true}); len(got) > 0 {
				t.Errorf("ok fixture produced findings: %v", got)
			}
		})
	}
}

// TestScopes pins each rule's package scope to the invariant it
// encodes: where simulation determinism is enforced, where the
// runtime layers are exempt, and where a rule applies module-wide.
func TestScopes(t *testing.T) {
	appl := map[string]func(string) bool{}
	for _, a := range analysis.Analyzers() {
		if a.Appl == nil {
			// A nil Appl applies everywhere (gojoin).
			appl[a.Name] = func(string) bool { return true }
			continue
		}
		appl[a.Name] = a.Appl
	}
	for _, tc := range []struct {
		rule, rel string
		want      bool
	}{
		{"nondeterminism", "internal/core", true},
		{"nondeterminism", "internal/exec", true},
		{"nondeterminism", "internal/obs", true},
		{"nondeterminism", "internal/analysis", true},
		{"nondeterminism", "internal/obs/promtext", true},
		{"nondeterminism", "cmd/pipesweep", false},
		{"mapiter", "internal/core", true},
		{"mapiter", "internal/obs", false},
		{"mapiter", "internal/analysis", true},
		{"mapiter", "internal/obs/promtext", true},
		{"traceimmutable", "internal/trace", false},
		{"traceimmutable", "internal/pipeline", true},
		{"traceimmutable", "cmd/pipesweep", true},
		{"obsinert", "internal/experiments", true},
		{"obsinert", "internal/obs", false},
		{"obsinert", "internal/obs/promtext", false},
		{"obsinert", "internal/serve", false},
		{"goroutinescope", "internal/exec", false},
		{"goroutinescope", "internal/obs", false},
		{"goroutinescope", "internal/obs/promtext", true},
		{"goroutinescope", "internal/core", true},
		{"goroutinescope", "cmd/pipesweep", true},
		{"lockorder", "internal/serve", true},
		{"lockorder", "internal/store", true},
		{"lockorder", "internal/core", false},
		{"ctxcancel", "internal/serve", true},
		{"ctxcancel", "internal/store", true},
		{"ctxcancel", "internal/exec", false},
		{"gojoin", "internal/serve", true},
		{"gojoin", "cmd/sweepd", true},
		{"gojoin", "internal/core", true},
	} {
		if got := appl[tc.rule](tc.rel); got != tc.want {
			t.Errorf("%s.Appl(%q) = %v, want %v", tc.rule, tc.rel, got, tc.want)
		}
	}
}

// TestModuleClean is the compile-time form of the flagship guarantees:
// the full rule suite over the whole module must report nothing. If
// this fails, either a real invariant violation landed or a new
// intentional site is missing its justified directive.
func TestModuleClean(t *testing.T) {
	l := loader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadModule found only %d packages; the walk is broken", len(pkgs))
	}
	findings := analysis.Run(l, pkgs, analysis.Analyzers(), analysis.Options{})
	for _, f := range findings {
		t.Errorf("module not lint-clean: %s", f)
	}
}

func TestFindingString(t *testing.T) {
	f := analysis.Finding{File: "internal/core/engine.go", Line: 42, Col: 7, Rule: "mapiter", Message: "range over map"}
	const want = "internal/core/engine.go:42: mapiter: range over map"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
