package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestSimRootsPinBatchedEntryPoints pins the reachability root set
// through the ok/bad fixture pair under testdata/src/internal/{pipeline,
// core}: the batched entries (pipeline.RunBatch, core.SimulateBatch)
// must root the transitive nondeterminism rule — a clock read in an
// out-of-scope helper is flagged with the chain that makes it
// sim-relevant — while a helper reachable only from a non-root
// (NewBatchScratch) stays silent.
func TestSimRootsPinBatchedEntryPoints(t *testing.T) {
	l := loader(t)
	pkgs := []*analysis.Package{
		fixture(t, l, "internal/pipeline"),
		fixture(t, l, "internal/core"),
		fixture(t, l, "simroots/leaky"),
	}
	nondet, bad := analysis.ByName([]string{"nondeterminism"})
	if bad != "" {
		t.Fatalf("unknown analyzer %q", bad)
	}
	findings := analysis.Run(l, pkgs, nondet, analysis.Options{})

	var viaRunBatch, viaSimulateBatch bool
	for _, f := range findings {
		if f.Rule != "nondeterminism" || !strings.Contains(f.File, "simroots/leaky") {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		chain := strings.Join(f.Chain, " -> ")
		switch {
		case strings.Contains(chain, "pipeline.RunBatch"):
			viaRunBatch = true
		case strings.Contains(chain, "core.SimulateBatch"):
			viaSimulateBatch = true
		case strings.Contains(chain, "NewBatchScratch"):
			t.Errorf("non-root NewBatchScratch produced a chain: %s", f)
		default:
			t.Errorf("finding with unexpected chain %q: %s", chain, f)
		}
	}
	if !viaRunBatch {
		t.Error("pipeline.RunBatch is not rooting reachability: leaky.StampPipe was not flagged")
	}
	if !viaSimulateBatch {
		t.Error("core.SimulateBatch is not rooting reachability: leaky.StampCore was not flagged")
	}
	if len(findings) != 2 {
		t.Errorf("got %d findings, want exactly 2 (StampPipe and StampCore; Unreached must stay silent)", len(findings))
	}
}
