package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIterAnalyzer flags `range` over a map in the simulation packages,
// and — through the call graph — in any function transitively reachable
// from a simulation entry point. Go randomizes map iteration order, so
// any map walk on a result path is a latent run-to-run diff; simulation
// code must iterate an explicitly ordered key list (for trace.Group
// maps, trace.Groups()) instead.
func MapIterAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "mapiter",
		Doc:       "no range over a map in simulation packages or anything they transitively call: iteration order must be explicit",
		Appl:      inSimOrTooling,
		Run:       runMapIter,
		RunModule: runMapIterModule,
	}
}

func runMapIter(p *Pass) {
	inspectFiles(p, func(n ast.Node) bool {
		return scanMapRange(p.Pkg.Info, n, p.Reportf)
	})
}

// scanMapRange checks one AST node for a range over a map, reporting
// through the given sink. Shared by the per-package and reachability
// passes.
func scanMapRange(info *types.Info, n ast.Node, report func(pos token.Pos, format string, args ...any)) bool {
	rs, ok := n.(*ast.RangeStmt)
	if !ok {
		return true
	}
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return true
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
		report(rs.Pos(), "range over map %s iterates in randomized order; walk an explicitly ordered key list instead", types.TypeString(tv.Type, nil))
	}
	return true
}

// runMapIterModule holds every function reachable from a simulation
// entry point to the same ban, attaching the entry chain; packages the
// per-package pass already covers are skipped.
func runMapIterModule(mp *ModulePass) {
	forReachableOutside(mp, inSimOrTooling, func(n *Node, chain []string) {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			return scanMapRange(n.Pkg.Info, node, func(pos token.Pos, format string, args ...any) {
				mp.ReportChain(pos, chain, format, args...)
			})
		})
	})
}
