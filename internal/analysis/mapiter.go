package analysis

import (
	"go/ast"
	"go/types"
)

// MapIterAnalyzer flags `range` over a map in the simulation packages.
// Go randomizes map iteration order, so any map walk on a result path
// is a latent run-to-run diff; simulation code must iterate an
// explicitly ordered key list (for trace.Group maps, trace.Groups())
// instead.
func MapIterAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "mapiter",
		Doc:  "no range over a map in simulation packages: iteration order must be explicit",
		Appl: inSim,
		Run:  runMapIter,
	}
}

func runMapIter(p *Pass) {
	inspectFiles(p, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Pkg.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			p.Reportf(rs.Pos(), "range over map %s iterates in randomized order; walk an explicitly ordered key list instead", types.TypeString(tv.Type, nil))
		}
		return true
	})
}
