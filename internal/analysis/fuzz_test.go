package analysis

import (
	"strings"
	"testing"
)

// FuzzAllowDirective hammers the suppression-directive parser, the one
// piece of the linter that consumes arbitrary text from source
// comments. The properties under test are the fail-closed contract:
// a malformed directive must never yield a usable (rule, why) pair, a
// well-formed one must name a known rule and carry a justification, and
// unrelated comments must be ignored entirely.
func FuzzAllowDirective(f *testing.F) {
	known := map[string]bool{"nondeterminism": true, "mapiter": true}
	for _, seed := range []string{
		"//reprolint:allow nondeterminism: wall time feeds the manifest only",
		"//reprolint:allow mapiter: sorted on the next line",
		"//reprolint:allow nondeterminism:",
		"//reprolint:allow nondeterminism",
		"//reprolint:allow nosuchrule: why",
		"//reprolint:allow two rules: why",
		"//reprolint:allow : why",
		"//reprolint:allow",
		"//reprolint:allow\t mapiter \t:  padded  ",
		"//reprolint:allowlist mapiter: longer token is not ours",
		"//reprolint:allower",
		"// an ordinary comment",
		"//reprolint:deny mapiter: wrong verb",
		"//reprolint:allow mapiter: why: with: extra: colons",
		"//reprolint:allow mapiter: nbsp why",
		"//reprolint:allow \x00rule: why",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		rule, why, errMsg, isDirective := parseAllowDirective(text, known)

		if !isDirective {
			if rule != "" || why != "" || errMsg != "" {
				t.Fatalf("non-directive %q produced output: rule=%q why=%q err=%q", text, rule, why, errMsg)
			}
			// Only a genuine prefix mismatch (or a longer token) may be
			// ignored; a real directive must never fall through.
			if strings.HasPrefix(text, directivePrefix) {
				rest := strings.TrimPrefix(text, directivePrefix)
				if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
					t.Fatalf("directive-shaped comment %q was ignored", text)
				}
			}
			return
		}
		if !strings.HasPrefix(text, directivePrefix) {
			t.Fatalf("input %q without the directive prefix was treated as a directive", text)
		}
		if errMsg != "" {
			// Fail closed: a malformed directive yields no suppression.
			if rule != "" || why != "" {
				t.Fatalf("malformed directive %q still returned rule=%q why=%q", text, rule, why)
			}
			return
		}
		// Well-formed: the rule must be known, single-token, justified.
		if !known[rule] {
			t.Fatalf("parsed unknown rule %q from %q", rule, text)
		}
		if strings.ContainsAny(rule, " \t") {
			t.Fatalf("parsed multi-token rule %q from %q", rule, text)
		}
		if why == "" {
			t.Fatalf("parsed directive %q with empty justification", text)
		}

		// Parsing is a pure function of its input.
		r2, w2, e2, d2 := parseAllowDirective(text, known)
		if r2 != rule || w2 != why || e2 != errMsg || d2 != isDirective {
			t.Fatalf("parse of %q is not deterministic", text)
		}
	})
}
