package analysis

// Reachability over the call graph. The determinism rules use it to
// extend their guarantees transitively — a helper package is held to
// the sim invariants the moment sim code can reach it — and every
// reachability finding carries the shortest call chain from an entry
// point, so a violation three packages away is still debuggable from
// the finding alone.

import (
	"sort"
	"strings"
)

// Reach is the result of a breadth-first traversal from a root set:
// membership plus a shortest-path tree for chain reconstruction.
type Reach struct {
	parent map[*Node]*Node // BFS tree; roots map to nil
	member map[*Node]bool
}

// ReachableFrom traverses the graph breadth-first from roots. The
// traversal order is deterministic: roots in the given order, edges in
// source order, so the chain attached to a finding is stable run to
// run.
func (g *CallGraph) ReachableFrom(roots []*Node) *Reach {
	r := &Reach{parent: map[*Node]*Node{}, member: map[*Node]bool{}}
	queue := make([]*Node, 0, len(roots))
	for _, n := range roots {
		if n == nil || r.member[n] {
			continue
		}
		r.member[n] = true
		r.parent[n] = nil
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.edges {
			if r.member[e.To] {
				continue
			}
			r.member[e.To] = true
			r.parent[e.To] = n
			queue = append(queue, e.To)
		}
	}
	return r
}

// Contains reports whether n is reachable from the root set.
func (r *Reach) Contains(n *Node) bool { return n != nil && r.member[n] }

// Chain returns the shortest call chain from a root to n as display
// names, root first, n last; nil when n is unreachable.
func (r *Reach) Chain(n *Node) []string {
	if !r.Contains(n) {
		return nil
	}
	var rev []*Node
	for at := n; at != nil; at = r.parent[at] {
		rev = append(rev, at)
	}
	out := make([]string, len(rev))
	for i, node := range rev {
		out[len(rev)-1-i] = node.Name
	}
	return out
}

// simEntryPoint reports whether a node is one of the simulation entry
// points the determinism rules root reachability at: the point-level
// and batched serving entries, the pipeline core (single-lane and
// batched), and the study drivers. Matching happens on the
// fixture-normalized directory (see fixtureRel) so the root set itself
// is pinned by analyzer fixtures.
func simEntryPoint(n *Node) bool {
	name := n.Fn.Name()
	switch fixtureRel(n.Rel) {
	case "internal/core":
		return name == "SimulatePoint" || name == "SimulatePointWith" ||
			name == "SimulateBatch" || name == "DepthSweep"
	case "internal/pipeline":
		return name == "Run" || name == "RunWith" || name == "RunBatch"
	case "internal/experiments":
		// The study drivers: RunFigure1..11, RunAblation, RunHeadline,
		// RunSegmentedSelect, RunCray1S — every exported Run* driver.
		return strings.HasPrefix(name, "Run")
	}
	return false
}

// fixtureRel maps an analyzer-fixture directory onto the module
// directory it stands in for: everything up to and including
// "testdata/src/" is stripped, so a fixture at
// internal/analysis/testdata/src/internal/pipeline plays the real
// internal/pipeline in root-set tests. Real module packages never
// carry the prefix — the module loader skips testdata entirely.
func fixtureRel(rel string) string {
	const marker = "testdata/src/"
	if i := strings.Index(rel, marker); i >= 0 {
		return rel[i+len(marker):]
	}
	return rel
}

// SimEntryNodes returns the graph's simulation entry points in
// deterministic order.
func (g *CallGraph) SimEntryNodes() []*Node {
	var out []*Node
	for _, n := range g.list {
		if simEntryPoint(n) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
