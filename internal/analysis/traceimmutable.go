package analysis

import (
	"go/ast"
	"go/types"
)

// TraceImmutableAnalyzer enforces the PR 1 immutability contract: a
// trace.Trace is frozen once Generate returns, because the sweep engine
// shares one instance across concurrent pipeline runs and caches traces
// process-wide. Outside internal/trace, no code may assign to, append
// into, increment, or copy into a Trace field — variants must clone
// (trace.Trace.WithPrefetchCoverage is the model).
func TraceImmutableAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "traceimmutable",
		Doc:  "no writes to trace.Trace fields outside internal/trace: shared traces are immutable by contract",
		Appl: func(rel string) bool { return rel != "internal/trace" },
		Run:  runTraceImmutable,
	}
}

func runTraceImmutable(p *Pass) {
	report := func(sel *ast.SelectorExpr, how string) {
		p.Reportf(sel.Pos(), "%s trace.Trace field %s outside internal/trace; traces are shared and immutable — clone the trace instead (see Trace.WithPrefetchCoverage)", how, sel.Sel.Name)
	}
	inspectFiles(p, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if sel := traceFieldRoot(p, lhs); sel != nil {
					report(sel, "assignment to")
				}
			}
		case *ast.IncDecStmt:
			if sel := traceFieldRoot(p, st.X); sel != nil {
				report(sel, "increment of")
			}
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && len(st.Args) > 0 {
				if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
					if sel := traceFieldRoot(p, st.Args[0]); sel != nil {
						report(sel, "copy into")
					}
				}
			}
		}
		return true
	})
}

// traceFieldRoot peels index, slice, deref and paren wrappers off an
// lvalue and returns the innermost selector that reads a field of
// trace.Trace, if the lvalue writes through one.
func traceFieldRoot(p *Pass, e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := p.Pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal && p.isModType(sel.Recv(), "internal/trace", "Trace") {
				return x
			}
			e = x.X
		default:
			return nil
		}
	}
}

// isModType reports whether t (possibly behind a pointer) is the named
// type relDir.name of module mod.
func isModType(mod string, t types.Type, relDir, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == mod+"/"+relDir && obj.Name() == name
}

func (p *Pass) isModType(t types.Type, relDir, name string) bool {
	return isModType(p.Mod, t, relDir, name)
}
