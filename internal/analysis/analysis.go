// Package analysis is a stdlib-only static-analysis framework that
// proves the repo's cross-cutting invariants per commit instead of
// sampling them at runtime. The two flagship regression guarantees —
// bit-for-bit worker-count-invariant sweeps and byte-for-byte telemetry
// inertness — are structural properties of the code: simulation
// packages must not read clocks, iterate maps, mutate shared traces,
// read telemetry, or spawn goroutines. Each rule is an Analyzer run
// over every package of the module, loaded and type-checked with
// go/parser + go/types (no go/analysis, no x/tools).
//
// Violations that are intentional (the telemetry layer's own clock
// reads, for instance) are suppressed in place with a directive that
// must name the rule and justify itself:
//
//	start := time.Now() //reprolint:allow nondeterminism: wall time feeds the manifest only
//
// Directives fail closed: an unknown rule name, a missing
// justification, or a directive that matches no finding is itself
// reported, so a stale or typoed suppression can never silently widen.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer is one named rule. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// Name is the rule name, as printed in findings and matched by
	// //reprolint:allow directives.
	Name string
	// Doc is a one-line description of the invariant the rule encodes.
	Doc string
	// Appl reports whether the rule applies to a package, identified by
	// its module-root-relative directory ("" is the module root,
	// "internal/core", "cmd/pipesweep", ...). A nil Appl applies
	// everywhere.
	Appl func(rel string) bool
	// Run inspects one package and reports findings.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// Mod is the module path; analyzers use it to identify module types
	// (trace.Trace, obs.Recorder) without hardcoding the module name.
	Mod string

	root     string
	rule     string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	*p.findings = append(*p.findings, Finding{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Finding is one reported violation.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the canonical "file:line: rule: message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Message)
}

// DirectiveRule is the pseudo-rule name under which malformed or
// unmatched suppression directives are reported. It is not a real
// analyzer, so directive errors can never themselves be suppressed.
const DirectiveRule = "directive"

// directivePrefix introduces a suppression comment. The full syntax is
//
//	//reprolint:allow <rule>: <why>
//
// placed either at the end of the flagged line or on its own line
// immediately above it.
const directivePrefix = "//reprolint:allow"

// directive is one parsed //reprolint:allow comment.
type directive struct {
	file string // root-relative, matching Finding.File
	line int
	rule string
	why  string
}

// Options configures a Run.
type Options struct {
	// IgnoreScope applies every analyzer to every package regardless of
	// its Appl predicate. Fixture tests use it, since fixture packages
	// live under testdata and no real scope matches them.
	IgnoreScope bool
}

// Run applies the analyzers to the packages, resolves suppression
// directives, and returns the surviving findings sorted by position.
// Directive problems — unknown rule, missing justification, or a
// directive that suppresses nothing — come back as findings under the
// "directive" pseudo-rule, so the suite fails closed.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer, opts Options) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var raw []Finding
	var dirs []directive
	var dirErrs []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !opts.IgnoreScope && a.Appl != nil && !a.Appl(pkg.Rel) {
				continue
			}
			pass := &Pass{Fset: l.Fset(), Pkg: pkg, Mod: l.ModulePath, root: l.Root, rule: a.Name, findings: &raw}
			a.Run(pass)
		}
		d, errs := collectDirectives(l, pkg, known)
		dirs = append(dirs, d...)
		dirErrs = append(dirErrs, errs...)
	}

	kept, unused := suppress(raw, dirs)
	for _, d := range unused {
		dirErrs = append(dirErrs, Finding{
			File: d.file, Line: d.line, Rule: DirectiveRule,
			Message: fmt.Sprintf("suppression for %q matches no finding; the directive must sit on the flagged line or the line directly above it", d.rule),
		})
	}
	kept = append(kept, dirErrs...)
	sortFindings(kept)
	return kept
}

// collectDirectives parses every //reprolint:allow comment in the
// package. Malformed directives (no rule, unknown rule, missing why)
// are returned as fail-closed findings and do not suppress anything.
func collectDirectives(l *Loader, pkg *Package, known map[string]bool) ([]directive, []Finding) {
	var out []directive
	var errs []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := l.Fset().Position(c.Pos())
				file := pos.Filename
				if rel, err := filepath.Rel(l.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = filepath.ToSlash(rel)
				}
				bad := func(format string, args ...any) {
					errs = append(errs, Finding{
						File: file, Line: pos.Line, Rule: DirectiveRule,
						Message: fmt.Sprintf(format, args...),
					})
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //reprolint:allowfoo token, not ours
				}
				rule, why, hasWhy := strings.Cut(strings.TrimSpace(rest), ":")
				rule = strings.TrimSpace(rule)
				why = strings.TrimSpace(why)
				switch {
				case rule == "":
					bad("malformed directive: want //reprolint:allow <rule>: <why>")
				case strings.ContainsAny(rule, " \t"):
					bad("malformed directive %q: suppress one rule per directive, as //reprolint:allow <rule>: <why>", rule)
				case !known[rule]:
					bad("unknown rule %q in suppression directive (known rules: %s)", rule, strings.Join(sortedKeys(known), ", "))
				case !hasWhy || why == "":
					bad("suppression of %q is missing its justification: use //reprolint:allow %s: <why>", rule, rule)
				default:
					out = append(out, directive{file: file, line: pos.Line, rule: rule, why: why})
				}
			}
		}
	}
	return out, errs
}

// suppress drops findings covered by a directive. A directive covers
// findings of its rule in its file on its own line (trailing comment)
// or the line directly below (comment above the flagged line). It
// returns surviving findings and directives that covered nothing.
func suppress(findings []Finding, dirs []directive) (kept []Finding, unused []directive) {
	used := make([]bool, len(dirs))
	for _, f := range findings {
		covered := false
		for i, d := range dirs {
			if d.rule == f.Rule && d.file == f.File && (d.line == f.Line || d.line+1 == f.Line) {
				used[i] = true
				covered = true
			}
		}
		if !covered {
			kept = append(kept, f)
		}
	}
	for i, d := range dirs {
		if !used[i] {
			unused = append(unused, d)
		}
	}
	return kept, unused
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// inspectFiles runs fn over every node of every file in the pass's
// package; the usual entry point for analyzers.
func inspectFiles(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
