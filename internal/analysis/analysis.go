// Package analysis is a stdlib-only static-analysis framework that
// proves the repo's cross-cutting invariants per commit instead of
// sampling them at runtime. The two flagship regression guarantees —
// bit-for-bit worker-count-invariant sweeps and byte-for-byte telemetry
// inertness — are structural properties of the code: simulation
// packages must not read clocks, iterate maps, mutate shared traces,
// read telemetry, or spawn goroutines. Each rule is an Analyzer run
// over every package of the module, loaded and type-checked with
// go/parser + go/types (no go/analysis, no x/tools).
//
// Violations that are intentional (the telemetry layer's own clock
// reads, for instance) are suppressed in place with a directive that
// must name the rule and justify itself:
//
//	start := time.Now() //reprolint:allow nondeterminism: wall time feeds the manifest only
//
// Directives fail closed: an unknown rule name, a missing
// justification, or a directive that matches no finding is itself
// reported, so a stale or typoed suppression can never silently widen.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// An Analyzer is one named rule. Per-package rules implement Run, which
// inspects a single type-checked package; whole-program rules implement
// RunModule, which sees every selected package at once plus the
// interprocedural call graph. A rule may implement either or both.
type Analyzer struct {
	// Name is the rule name, as printed in findings and matched by
	// //reprolint:allow directives.
	Name string
	// Doc is a one-line description of the invariant the rule encodes.
	Doc string
	// Appl reports whether the rule applies to a package, identified by
	// its module-root-relative directory ("" is the module root,
	// "internal/core", "cmd/pipesweep", ...). A nil Appl applies
	// everywhere. Per-package Run passes skip packages outside the
	// scope; module rules consult it through ModulePass.InScope.
	Appl func(rel string) bool
	// Run inspects one package and reports findings. May be nil for
	// module-only rules.
	Run func(*Pass)
	// RunModule inspects the whole selected package set with the call
	// graph available. May be nil for per-package rules.
	RunModule func(*ModulePass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// Mod is the module path; analyzers use it to identify module types
	// (trace.Trace, obs.Recorder) without hardcoding the module name.
	Mod string

	root     string
	rule     string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, makeFinding(p.Fset, p.root, p.rule, pos, nil, format, args...))
}

// ModulePass carries one whole-program rule's view: every selected
// package, the call graph over them, and the reporting sink.
type ModulePass struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Graph *CallGraph
	// Mod is the module path; rules use it to identify module types
	// without hardcoding the module name.
	Mod string

	root        string
	rule        string
	ignoreScope bool
	findings    *[]Finding
}

// InScope applies the analyzer's package predicate, honoring the
// fixture tests' IgnoreScope option.
func (mp *ModulePass) InScope(appl func(string) bool, rel string) bool {
	return mp.ignoreScope || appl == nil || appl(rel)
}

// Reportf records a finding at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	mp.ReportChain(pos, nil, format, args...)
}

// ReportChain records a finding at pos carrying the call chain that
// makes the violation reachable (entry point first, violating function
// last).
func (mp *ModulePass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	*mp.findings = append(*mp.findings, makeFinding(mp.Fset, mp.root, mp.rule, pos, chain, format, args...))
}

func makeFinding(fset *token.FileSet, root, rule string, pos token.Pos, chain []string, format string, args ...any) Finding {
	position := fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return Finding{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
		Chain:   chain,
	}
}

// Finding is one reported violation. Chain, when present, is the call
// chain that makes a reachability violation concrete: entry point
// first, the function containing the flagged site last.
type Finding struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Rule    string   `json:"rule"`
	Message string   `json:"message"`
	Chain   []string `json:"chain,omitempty"`
}

// String renders the canonical "file:line: rule: message" form, with
// the call chain appended when the finding carries one.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Message)
	if len(f.Chain) > 0 {
		s += " [via " + strings.Join(f.Chain, " -> ") + "]"
	}
	return s
}

// DirectiveRule is the pseudo-rule name under which malformed or
// unmatched suppression directives are reported. It is not a real
// analyzer, so directive errors can never themselves be suppressed.
const DirectiveRule = "directive"

// directivePrefix introduces a suppression comment. The full syntax is
//
//	//reprolint:allow <rule>: <why>
//
// placed either at the end of the flagged line or on its own line
// immediately above it.
const directivePrefix = "//reprolint:allow"

// directive is one parsed //reprolint:allow comment.
type directive struct {
	file string // root-relative, matching Finding.File
	line int
	rule string
	why  string
}

// Options configures a Run.
type Options struct {
	// IgnoreScope applies every analyzer to every package regardless of
	// its Appl predicate. Fixture tests use it, since fixture packages
	// live under testdata and no real scope matches them.
	IgnoreScope bool

	// Now, when non-nil, is the clock RunStats times each rule with.
	// The clock is injected by the driver (cmd/reprolint) rather than
	// read here so this package stays inside its own nondeterminism
	// scope; a nil Now leaves every duration zero.
	Now func() time.Time
}

// RuleStat is one rule's runtime accounting from a RunStats call. The
// pseudo-rule "callgraph" carries the one-time graph construction cost
// shared by every module rule.
type RuleStat struct {
	Rule     string  `json:"rule"`
	Seconds  float64 `json:"seconds"`
	Findings int     `json:"findings"`
}

// Run applies the analyzers to the packages, resolves suppression
// directives, and returns the surviving findings sorted by position.
// Directive problems — unknown rule, missing justification, or a
// directive that suppresses nothing — come back as findings under the
// "directive" pseudo-rule, so the suite fails closed.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer, opts Options) []Finding {
	findings, _ := RunStats(l, pkgs, analyzers, opts)
	return findings
}

// RunStats is Run plus per-rule timing and post-suppression finding
// counts, for the lint-stats surface. Durations are zero unless
// opts.Now is set.
func RunStats(l *Loader, pkgs []*Package, analyzers []*Analyzer, opts Options) ([]Finding, []RuleStat) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	now := opts.Now
	if now == nil {
		now = func() time.Time { return time.Time{} }
	}

	var stats []RuleStat
	var raw []Finding

	// The call graph is built once, lazily, the first time a module
	// rule asks for it; its cost is reported as its own stat row.
	var graph *CallGraph
	graphOf := func() *CallGraph {
		if graph == nil {
			t0 := now()
			graph = NewCallGraph(l.Fset(), l.ModulePath, pkgs)
			stats = append(stats, RuleStat{Rule: "callgraph", Seconds: now().Sub(t0).Seconds()})
		}
		return graph
	}

	for _, a := range analyzers {
		t0 := now()
		if a.Run != nil {
			for _, pkg := range pkgs {
				if !opts.IgnoreScope && a.Appl != nil && !a.Appl(pkg.Rel) {
					continue
				}
				pass := &Pass{Fset: l.Fset(), Pkg: pkg, Mod: l.ModulePath, root: l.Root, rule: a.Name, findings: &raw}
				a.Run(pass)
			}
		}
		if a.RunModule != nil {
			g := graphOf()
			t0 = now() // charge graph construction to its own row, not the first user
			mp := &ModulePass{Fset: l.Fset(), Pkgs: pkgs, Graph: g, Mod: l.ModulePath,
				root: l.Root, rule: a.Name, ignoreScope: opts.IgnoreScope, findings: &raw}
			a.RunModule(mp)
		}
		stats = append(stats, RuleStat{Rule: a.Name, Seconds: now().Sub(t0).Seconds()})
	}

	var dirs []directive
	var dirErrs []Finding
	for _, pkg := range pkgs {
		d, errs := collectDirectives(l, pkg, known)
		dirs = append(dirs, d...)
		dirErrs = append(dirErrs, errs...)
	}

	kept, unused := suppress(raw, dirs)
	for _, d := range unused {
		dirErrs = append(dirErrs, Finding{
			File: d.file, Line: d.line, Rule: DirectiveRule,
			Message: fmt.Sprintf("suppression for %q matches no finding; the directive must sit on the flagged line or the line directly above it", d.rule),
		})
	}
	kept = append(kept, dirErrs...)
	sortFindings(kept)

	byRule := map[string]int{}
	for _, f := range kept {
		byRule[f.Rule]++
	}
	for i := range stats {
		stats[i].Findings = byRule[stats[i].Rule]
	}
	return kept, stats
}

// parseAllowDirective parses a single comment's text as a
// //reprolint:allow directive. isDirective is false when the comment is
// not a reprolint directive at all (no prefix, or a longer token such
// as //reprolint:allowlist). For a recognized directive, either rule
// and why carry the parsed parts (errMsg empty), or errMsg carries the
// fail-closed finding message and rule/why are empty. This is the pure
// core of the directive system; the fuzz target drives it directly.
func parseAllowDirective(text string, known map[string]bool) (rule, why, errMsg string, isDirective bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return "", "", "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", "", false // some other //reprolint:allowfoo token, not ours
	}
	rule, why, hasWhy := strings.Cut(strings.TrimSpace(rest), ":")
	rule = strings.TrimSpace(rule)
	why = strings.TrimSpace(why)
	switch {
	case rule == "":
		return "", "", "malformed directive: want //reprolint:allow <rule>: <why>", true
	case strings.ContainsAny(rule, " \t"):
		return "", "", fmt.Sprintf("malformed directive %q: suppress one rule per directive, as //reprolint:allow <rule>: <why>", rule), true
	case !known[rule]:
		return "", "", fmt.Sprintf("unknown rule %q in suppression directive (known rules: %s)", rule, strings.Join(sortedKeys(known), ", ")), true
	case !hasWhy || why == "":
		return "", "", fmt.Sprintf("suppression of %q is missing its justification: use //reprolint:allow %s: <why>", rule, rule), true
	}
	return rule, why, "", true
}

// collectDirectives parses every //reprolint:allow comment in the
// package. Malformed directives (no rule, unknown rule, missing why)
// are returned as fail-closed findings and do not suppress anything.
func collectDirectives(l *Loader, pkg *Package, known map[string]bool) ([]directive, []Finding) {
	var out []directive
	var errs []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, why, errMsg, isDirective := parseAllowDirective(c.Text, known)
				if !isDirective {
					continue
				}
				pos := l.Fset().Position(c.Pos())
				file := pos.Filename
				if rel, err := filepath.Rel(l.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = filepath.ToSlash(rel)
				}
				if errMsg != "" {
					errs = append(errs, Finding{
						File: file, Line: pos.Line, Rule: DirectiveRule, Message: errMsg,
					})
					continue
				}
				out = append(out, directive{file: file, line: pos.Line, rule: rule, why: why})
			}
		}
	}
	return out, errs
}

// suppress drops findings covered by a directive. A directive covers
// findings of its rule in its file on its own line (trailing comment)
// or the line directly below (comment above the flagged line). It
// returns surviving findings and directives that covered nothing.
func suppress(findings []Finding, dirs []directive) (kept []Finding, unused []directive) {
	used := make([]bool, len(dirs))
	for _, f := range findings {
		covered := false
		for i, d := range dirs {
			if d.rule == f.Rule && d.file == f.File && (d.line == f.Line || d.line+1 == f.Line) {
				used[i] = true
				covered = true
			}
		}
		if !covered {
			kept = append(kept, f)
		}
	}
	for i, d := range dirs {
		if !used[i] {
			unused = append(unused, d)
		}
	}
	return kept, unused
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m { //reprolint:allow mapiter: rule-name list for an error message; sorted on the next line
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// inspectFiles runs fn over every node of every file in the pass's
// package; the usual entry point for analyzers.
func inspectFiles(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
