package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// graphOver builds the call graph over one fixture package.
func graphOver(t *testing.T, rel string) (*analysis.CallGraph, func(suffix string) *analysis.Node) {
	t.Helper()
	l := loader(t)
	p := fixture(t, l, rel)
	g := analysis.NewCallGraph(l.Fset(), l.ModulePath, []*analysis.Package{p})
	find := func(suffix string) *analysis.Node {
		t.Helper()
		for _, n := range g.Nodes() {
			if strings.HasSuffix(n.Name, suffix) {
				return n
			}
		}
		t.Fatalf("no node with name suffix %q; have %v", suffix, nodeNames(g))
		return nil
	}
	return g, find
}

func nodeNames(g *analysis.CallGraph) []string {
	var out []string
	for _, n := range g.Nodes() {
		out = append(out, n.Name)
	}
	return out
}

// TestCallGraphDispatch pins the conservatism model: an interface call
// fans out to every satisfying implementation (value and pointer
// receivers), and a function referenced as a value — never called —
// still gets an edge.
func TestCallGraphDispatch(t *testing.T) {
	_, find := graphOver(t, "callgraph/iface")
	drive := find("iface.Drive")
	fastDo := find("Fast).Do")
	slowDo := find("Slow).Do")
	value := find("iface.Value")
	helper := find("iface.helper")

	targets := map[*analysis.Node]bool{}
	for _, e := range drive.Edges() {
		targets[e.To] = true
	}
	if !targets[fastDo] || !targets[slowDo] {
		t.Errorf("Drive's interface call should fan out to both Do implementations; edges hit %v", targets)
	}

	var valueHitsHelper bool
	for _, e := range value.Edges() {
		if e.To == helper {
			valueHitsHelper = true
		}
	}
	if !valueHitsHelper {
		t.Errorf("Value references helper as a function value; the graph must assume it may be called")
	}
}

// TestReachChains pins BFS reachability and shortest-chain rendering.
func TestReachChains(t *testing.T) {
	g, find := graphOver(t, "callgraph/iface")
	drive := find("iface.Drive")
	fastDo := find("Fast).Do")
	helper := find("iface.helper")

	reach := g.ReachableFrom([]*analysis.Node{drive})
	if !reach.Contains(fastDo) {
		t.Fatalf("Fast.Do should be reachable from Drive")
	}
	if reach.Contains(helper) {
		t.Errorf("helper is not reachable from Drive, yet Contains reports it")
	}
	chain := reach.Chain(fastDo)
	if len(chain) != 2 || !strings.HasSuffix(chain[0], "Drive") || !strings.HasSuffix(chain[1], "Do") {
		t.Errorf("Chain(Fast.Do) = %v, want [..Drive ..Do]", chain)
	}
	if got := reach.Chain(helper); got != nil {
		t.Errorf("Chain of an unreachable node should be nil, got %v", got)
	}
}
