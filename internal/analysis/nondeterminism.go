package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// nondetFuncs are the stdlib entry points through which wall-clock or
// environment state could leak into simulation results. Keys are
// go/types full names.
var nondetFuncs = map[string]string{
	"time.Now":     "reads the wall clock",
	"time.Since":   "reads the wall clock",
	"os.Getenv":    "reads the process environment",
	"os.LookupEnv": "reads the process environment",
}

// NondeterminismAnalyzer flags wall-clock, environment and math/rand
// use in the simulation packages (plus internal/exec and internal/obs,
// whose intentional timing sites carry //reprolint:allow directives).
// Simulation randomness must come from the seeded trace.RNG so results
// are a pure function of flags.
func NondeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nondeterminism",
		Doc:  "no time.Now/time.Since/os.Getenv/math/rand in simulation packages: results must be a pure function of configuration",
		Appl: inSimOrRuntime,
		Run:  runNondeterminism,
	}
}

func runNondeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s: simulation randomness must come from the seeded trace.RNG", path)
			}
		}
	}
	inspectFiles(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		full := fn.FullName()
		if why, bad := nondetFuncs[full]; bad {
			p.Reportf(sel.Pos(), "%s %s; simulation output must not depend on when or where it runs", full, why)
		} else if pkg := fn.Pkg(); pkg != nil && strings.HasPrefix(pkg.Path(), "math/rand") {
			p.Reportf(sel.Pos(), "%s uses math/rand; simulation randomness must come from the seeded trace.RNG", full)
		}
		return true
	})
}
