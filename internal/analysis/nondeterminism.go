package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// nondetFuncs are the stdlib entry points through which wall-clock or
// environment state could leak into simulation results. Keys are
// go/types full names.
var nondetFuncs = map[string]string{
	"time.Now":     "reads the wall clock",
	"time.Since":   "reads the wall clock",
	"os.Getenv":    "reads the process environment",
	"os.LookupEnv": "reads the process environment",
}

// NondeterminismAnalyzer flags wall-clock, environment and math/rand
// use in the simulation packages (plus internal/exec, internal/obs and
// internal/store, whose intentional timing sites carry
// //reprolint:allow directives), and — through the call graph — in any
// function transitively reachable from a simulation entry point,
// wherever it lives. Simulation randomness must come from the seeded
// trace.RNG so results are a pure function of flags.
func NondeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "nondeterminism",
		Doc:       "no time.Now/time.Since/os.Getenv/math/rand in simulation packages or anything they transitively call: results must be a pure function of configuration",
		Appl:      inSimRuntimeOrTooling,
		Run:       runNondeterminism,
		RunModule: runNondeterminismModule,
	}
}

func runNondeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s: simulation randomness must come from the seeded trace.RNG", path)
			}
		}
	}
	inspectFiles(p, func(n ast.Node) bool {
		return scanNondetSite(p.Pkg.Info, n, p.Reportf)
	})
}

// scanNondetSite checks one AST node for a banned nondeterminism
// source, reporting through the given sink. Shared by the per-package
// pass (no chain) and the reachability pass (chain attached by the
// caller's sink).
func scanNondetSite(info *types.Info, n ast.Node, report func(pos token.Pos, format string, args ...any)) bool {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return true
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return true
	}
	full := fn.FullName()
	if why, bad := nondetFuncs[full]; bad {
		report(sel.Pos(), "%s %s; simulation output must not depend on when or where it runs", full, why)
	} else if pkg := fn.Pkg(); pkg != nil && strings.HasPrefix(pkg.Path(), "math/rand") {
		report(sel.Pos(), "%s uses math/rand; simulation randomness must come from the seeded trace.RNG", full)
	}
	return true
}

// runNondeterminismModule extends the ban transitively: every function
// reachable from a simulation entry point is held to it, wherever it
// lives. Packages inside the per-package scope are skipped here — the
// per-package pass owns them, so each violation is reported exactly
// once — and out-of-scope helpers get the call chain that makes them
// sim-relevant attached to the finding.
func runNondeterminismModule(mp *ModulePass) {
	forReachableOutside(mp, inSimRuntimeOrTooling, func(n *Node, chain []string) {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			return scanNondetSite(n.Pkg.Info, node, func(pos token.Pos, format string, args ...any) {
				mp.ReportChain(pos, chain, format, args...)
			})
		})
	})
}

// forReachableOutside walks every function reachable from a simulation
// entry point whose package lies outside the given per-package scope,
// handing each to fn along with its shortest entry chain. The common
// driver for the reachability halves of the determinism rules.
func forReachableOutside(mp *ModulePass, scope func(string) bool, fn func(n *Node, chain []string)) {
	g := mp.Graph
	reach := g.ReachableFrom(g.SimEntryNodes())
	for _, n := range g.Nodes() {
		if scope(n.Rel) || !reach.Contains(n) || n.Decl.Body == nil {
			continue
		}
		fn(n, reach.Chain(n))
	}
}
