package analysis

import "go/ast"

// GoroutineScopeAnalyzer keeps concurrency behind the deterministic
// executor: `go` statements may appear only in internal/exec (the
// worker pool whose index-slotted results make parallelism
// order-invariant) and internal/obs (the telemetry layer). A goroutine
// anywhere else bypasses the pool's determinism guarantee and its
// observation hooks.
func GoroutineScopeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutinescope",
		Doc:  "go statements only in internal/exec and internal/obs: concurrency stays behind the deterministic pool",
		Appl: func(rel string) bool { return rel != "internal/exec" && rel != "internal/obs" },
		Run:  runGoroutineScope,
	}
}

func runGoroutineScope(p *Pass) {
	inspectFiles(p, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			p.Reportf(g.Pos(), "go statement outside internal/exec and internal/obs; run grid work through exec.Map so parallelism stays deterministic")
		}
		return true
	})
}
