package trace

import (
	"testing"

	"repro/internal/isa"
)

func TestConsumerIndexMatchesSources(t *testing.T) {
	p, _ := ByName("176.gcc")
	tr := p.Generate(20000, 1)
	ci := tr.ConsumerIndexOf()

	if got, want := len(ci.Offsets), len(tr.Insts)+1; got != want {
		t.Fatalf("offsets length %d, want %d", got, want)
	}

	// Forward check: every edge corresponds to a real source operand.
	deps := 0
	for i, in := range tr.Insts {
		for _, s := range []int32{in.Src1, in.Src2} {
			if s < 0 {
				continue
			}
			deps++
			found := false
			for _, c := range ci.Consumers(s) {
				if c == int32(i) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("inst %d depends on %d but is not in its consumer list", i, s)
			}
		}
	}
	if deps != len(ci.Edges) {
		t.Fatalf("index has %d edges, trace has %d register-source dependences", len(ci.Edges), deps)
	}

	// Reverse check: edge lists are sorted and every edge points forward
	// to an instruction that really names the producer.
	for p := int32(0); p < int32(len(tr.Insts)); p++ {
		prev := int32(-1)
		for _, c := range ci.Consumers(p) {
			if c <= p {
				t.Fatalf("producer %d has consumer %d not strictly after it", p, c)
			}
			if c < prev {
				t.Fatalf("producer %d consumer list not sorted: %d after %d", p, c, prev)
			}
			prev = c
			in := tr.Insts[c]
			if in.Src1 != p && in.Src2 != p {
				t.Fatalf("edge %d→%d has no matching source operand", p, c)
			}
		}
	}
}

func TestConsumerIndexDoubleEdgeForSharedProducer(t *testing.T) {
	tr := &Trace{Name: "dup", Insts: []Inst{
		{Class: isa.IntAlu, Src1: -1, Src2: -1},
		{Class: isa.IntAlu, Src1: 0, Src2: 0},
	}}
	ci := tr.ConsumerIndexOf()
	got := ci.Consumers(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Fatalf("consumers of 0 = %v, want [1 1] (one edge per operand)", got)
	}
}

func TestConsumerIndexCachedAcrossClones(t *testing.T) {
	p, _ := ByName("171.swim")
	tr := p.Generate(5000, 7)
	clone := tr.WithPrefetchCoverage(0.5)
	a, b := tr.ConsumerIndexOf(), clone.ConsumerIndexOf()
	if a != b {
		t.Fatalf("clone sharing Insts got a distinct consumer index")
	}
	if c := tr.ConsumerIndexOf(); c != a {
		t.Fatalf("second lookup rebuilt the index")
	}
}

func TestConsumerIndexEmptyTrace(t *testing.T) {
	tr := &Trace{Name: "empty"}
	ci := tr.ConsumerIndexOf()
	if len(ci.Offsets) != 1 || len(ci.Edges) != 0 {
		t.Fatalf("empty trace index = %+v, want one offset and no edges", ci)
	}
}
