// Package trace generates deterministic synthetic dynamic instruction
// streams that stand in for the paper's SPEC 2000 benchmarks (Table 2).
//
// We cannot ship SPEC binaries or an Alpha ISA functional simulator, so
// each benchmark is replaced by a calibrated profile controlling the three
// workload properties the paper's conclusions rest on:
//
//   - available ILP, via the register-dependency distance distribution
//     (vector codes have long distances, integer codes short chains);
//   - branch behaviour, via a population of branch sites with loop,
//     pattern, and biased-random dynamics whose predictability under a real
//     tournament predictor matches the benchmark's character;
//   - memory behaviour, via streaming and random accesses over a
//     configurable footprint driving a real cache hierarchy.
//
// Traces are microarchitecture-independent: the same trace is replayed at
// every clock frequency, as the paper replays the same benchmark.
package trace

import (
	"fmt"

	"repro/internal/isa"
)

// Group classifies benchmarks the way the paper's figures do.
type Group uint8

const (
	Integer Group = iota
	VectorFP
	NonVectorFP
)

func (g Group) String() string {
	switch g {
	case Integer:
		return "integer"
	case VectorFP:
		return "vector-fp"
	case NonVectorFP:
		return "non-vector-fp"
	default:
		return "invalid"
	}
}

// Groups lists the benchmark groups in canonical report order.
// Simulation code iterates this slice instead of ranging over a
// map[Group]..., so aggregate ordering never depends on Go's
// randomized map iteration (the mapiter lint rule enforces that).
func Groups() []Group { return []Group{Integer, VectorFP, NonVectorFP} }

// Inst is one dynamic instruction.
type Inst struct {
	Class isa.Class
	// Src1 and Src2 are the trace indices of the producing instructions,
	// or -1 when the operand is ready from the start (an old value or an
	// immediate). Dependencies always point backwards.
	Src1, Src2 int32
	// Addr is the effective address for loads and stores.
	Addr uint64
	// PC identifies the branch site for the predictor; meaningful only for
	// branches.
	PC uint32
	// Taken is the branch outcome.
	Taken bool
}

// Trace is a generated dynamic instruction stream.
//
// A Trace is immutable once Generate returns: simulators only read it, and
// the sweep engine (internal/core) relies on that to share one instance
// across concurrent pipeline.Run calls and to cache generated traces
// process-wide. Code that needs a variant of a trace must clone it (see
// WithPrefetchCoverage) instead of mutating a shared instance.
type Trace struct {
	Name  string
	Group Group
	Insts []Inst

	// HotBytes and WarmBytes describe the benchmark's working-set tiers so
	// simulators can pre-warm their caches, standing in for the 500
	// million instructions the paper skips before measuring (which arrive
	// with warm caches). Without this, short traces would be dominated by
	// compulsory misses the paper's methodology never sees.
	HotBytes  uint64
	WarmBytes uint64

	// PrefetchCoverage is the fraction of stream prefetch opportunities
	// the benchmark's (software-prefetched) code covers; see
	// mem.Hierarchy.Coverage.
	PrefetchCoverage float64
}

// WithPrefetchCoverage returns a copy of the trace with the given prefetch
// coverage. The instruction stream is shared with the receiver (it is
// read-only by contract), so the clone is cheap regardless of trace length.
func (t *Trace) WithPrefetchCoverage(cov float64) *Trace {
	c := *t
	c.PrefetchCoverage = cov
	return &c
}

// RNG is a small xorshift64* generator; deterministic and fast.
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded by seed (0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn needs n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Geometric returns a geometric variate with the given mean (≥ 1).
func (r *RNG) Geometric(mean float64) int {
	if mean < 1 {
		mean = 1
	}
	p := 1 / mean
	n := 1
	for r.Float64() > p && n < 4096 {
		n++
	}
	return n
}

// branchKind describes the dynamics of one branch site.
type branchKind uint8

const (
	loopBranch    branchKind = iota // taken n-1 times out of n
	patternBranch                   // repeating bit pattern, learnable
	biasedBranch                    // independent coin flips
)

type branchSite struct {
	kind    branchKind
	pc      uint32
	period  int     // loop trip count or pattern length
	pattern uint64  // pattern bits
	bias    float64 // probability taken for biasedBranch
	state   int     // position in loop/pattern
}

func (b *branchSite) next(r *RNG) bool {
	switch b.kind {
	case loopBranch:
		b.state++
		if b.state >= b.period {
			b.state = 0
			return false // loop exit
		}
		return true
	case patternBranch:
		taken := b.pattern>>(uint(b.state)%64)&1 == 1
		b.state = (b.state + 1) % b.period
		return taken
	default:
		return r.Float64() < b.bias
	}
}

// Profile is the calibrated description of one synthetic benchmark.
type Profile struct {
	Name  string
	Group Group

	// Mix holds relative weights over instruction classes; it need not be
	// normalized.
	Mix [isa.NumClasses]float64

	// DepDistMean is the mean register-dependency distance, in
	// instructions: the knob that sets available ILP. TwoSrcFrac is the
	// fraction of instructions with a second register source. IndepFrac is
	// the probability an operand carries no dependency at all — vector
	// codes are chains of short intra-iteration dependences between
	// *independent* loop iterations, which is what makes them latency
	// tolerant, so their profiles use a high IndepFrac rather than long
	// dependency distances.
	DepDistMean float64
	TwoSrcFrac  float64
	IndepFrac   float64

	// LoadDepFrac is the fraction of instruction sources that depend on a
	// recent load (pointer-chasing codes have high values).
	LoadDepFrac float64

	// Branch-site population.
	LoopFrac    float64 // fraction of sites that are loop back-edges
	PatternFrac float64 // fraction of sites with learnable patterns
	RandomBias  float64 // taken-probability of the remaining biased sites
	LoopTrip    int     // mean loop trip count
	Sites       int     // number of static branch sites

	// Memory behaviour.
	FootprintBytes uint64  // total data working set
	StreamFrac     float64 // fraction of accesses that walk streams
	Streams        int     // concurrent sequential streams
	StrideBytes    uint64  // stream stride
	HotFrac        float64 // fraction of random accesses to a hot 16KB region
	PrefetchCov    float64 // software-prefetch coverage (0 means full)
}

// Generate produces a deterministic trace of n instructions.
func (p Profile) Generate(n int, seed uint64) *Trace {
	if n <= 0 {
		panic("trace: need n > 0")
	}
	r := NewRNG(seed ^ hashString(p.Name))
	warm := p.FootprintBytes / 8
	if warm < 32<<10 {
		warm = 32 << 10
	}
	cov := p.PrefetchCov
	if cov == 0 {
		cov = 1.0
	}
	tr := &Trace{
		Name: p.Name, Group: p.Group, Insts: make([]Inst, 0, n),
		HotBytes: 16 << 10, WarmBytes: warm, PrefetchCoverage: cov,
	}

	// Build the cumulative mix.
	var cum [isa.NumClasses]float64
	total := 0.0
	for i, w := range p.Mix {
		if w < 0 {
			panic(fmt.Sprintf("trace: negative mix weight for %v", isa.Class(i)))
		}
		total += w
		cum[i] = total
	}
	if total == 0 {
		panic("trace: profile has an empty instruction mix")
	}

	// Branch sites.
	sites := make([]branchSite, p.Sites)
	for i := range sites {
		f := float64(i) / float64(max(1, p.Sites))
		s := &sites[i]
		// Spaced so up to 256 sites map to distinct local-history entries
		// (the predictor indexes with pc>>2); beyond that they alias, as
		// large real codes do.
		s.pc = uint32(i*16 + 64)
		switch {
		case f < p.LoopFrac:
			s.kind = loopBranch
			s.period = 2 + r.Intn(2*max(1, p.LoopTrip))
			// Short loops cap at what ten bits of local history can learn;
			// longer trip counts stay long (they mispredict only at exit).
			if s.period > 9 && s.period < 24 {
				s.period = 9
			}
		case f < p.LoopFrac+p.PatternFrac:
			s.kind = patternBranch
			s.period = 3 + r.Intn(12)
			s.pattern = r.Uint64()
		default:
			s.kind = biasedBranch
			// Spread the per-site bias around the profile's value so the
			// population has easy and hard members, like real code.
			s.bias = p.RandomBias + (r.Float64()-0.5)*0.3
			if s.bias < 0.05 {
				s.bias = 0.05
			}
			if s.bias > 0.98 {
				s.bias = 0.98
			}
		}
	}

	// Stream walkers.
	streams := make([]uint64, max(1, p.Streams))
	for i := range streams {
		streams[i] = (r.Uint64() % max64(1, p.FootprintBytes)) &^ 7
	}

	recentLoads := make([]int32, 0, 8)
	stride := p.StrideBytes
	if stride == 0 {
		stride = 8
	}

	for i := 0; i < n; i++ {
		var in Inst
		// Pick a class from the mix.
		x := r.Float64() * total
		cl := isa.IntAlu
		for c := 0; c < isa.NumClasses; c++ {
			if x <= cum[c] {
				cl = isa.Class(c)
				break
			}
		}
		in.Class = cl

		// Dependencies: walk back a geometric distance to the nearest
		// value producer. Stores consume a value; branches consume flags.
		pick := func() int32 {
			if r.Float64() < p.IndepFrac {
				return -1 // fresh value: new loop iteration or constant
			}
			if p.LoadDepFrac > 0 && len(recentLoads) > 0 && r.Float64() < p.LoadDepFrac {
				return recentLoads[r.Intn(len(recentLoads))]
			}
			d := r.Geometric(p.DepDistMean)
			j := i - d
			for j >= 0 {
				c := tr.Insts[j].Class
				if c != isa.Store && c != isa.Branch {
					return int32(j)
				}
				j--
			}
			return -1
		}
		in.Src1 = pick()
		in.Src2 = -1
		// Branches compare one recent value (typically against zero), so
		// they carry a single register source; everything else may have two.
		if cl != isa.Branch && r.Float64() < p.TwoSrcFrac {
			in.Src2 = pick()
		}

		switch {
		case cl == isa.Load || cl == isa.Store:
			// Three-tier locality: sequential streams (spatial locality —
			// consecutive 8-byte elements share cache lines), a hot region
			// (stack and hot globals, L1-resident), a warm region (~1/8 of
			// the footprint, typically L2-resident), and rare cold accesses
			// over the whole footprint.
			switch {
			case r.Float64() < p.StreamFrac:
				s := r.Intn(len(streams))
				streams[s] += stride
				if streams[s] >= p.FootprintBytes {
					streams[s] = 0
				}
				in.Addr = streams[s]
			case r.Float64() < p.HotFrac:
				in.Addr = r.Uint64() % (16 << 10)
			case r.Float64() < 0.85:
				in.Addr = r.Uint64() % warm
			default:
				in.Addr = r.Uint64() % max64(64, p.FootprintBytes)
			}
			in.Addr &^= 7
			if cl == isa.Load {
				recentLoads = append(recentLoads, int32(i))
				if len(recentLoads) > 8 {
					recentLoads = recentLoads[1:]
				}
			}
		case cl == isa.Branch:
			s := &sites[r.Intn(len(sites))]
			in.PC = s.pc
			in.Taken = s.next(r)
		}
		tr.Insts = append(tr.Insts, in)
	}
	return tr
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
