package trace

import "repro/internal/isa"

// This file holds the calibrated profiles for the 18 SPEC 2000 benchmarks
// of Table 2. The parameters are not measurements of the real binaries —
// we cannot run those — but were tuned so that the group-level behaviour
// the paper's results depend on holds: vector FP has abundant ILP and
// near-perfectly-predictable loop branches; integer codes have short
// dependence chains, hard branches and mixed memory locality; non-vector
// FP sits between, with less ILP than vector codes (Section 4.1 explains
// the resulting BIPS ordering).

// mix builds a class-weight table from the common knobs.
func mix(alu, mult, fadd, fmul, fdiv, fsqrt, ld, st, br float64) [isa.NumClasses]float64 {
	var m [isa.NumClasses]float64
	m[isa.IntAlu] = alu
	m[isa.IntMult] = mult
	m[isa.FPAdd] = fadd
	m[isa.FPMult] = fmul
	m[isa.FPDiv] = fdiv
	m[isa.FPSqrt] = fsqrt
	m[isa.Load] = ld
	m[isa.Store] = st
	m[isa.Branch] = br
	return m
}

// SPEC2000 returns the full benchmark suite of Table 2: nine integer, four
// vector floating-point and five non-vector floating-point profiles.
func SPEC2000() []Profile {
	return []Profile{
		// ---- Integer ----
		{
			Name: "164.gzip", Group: Integer,
			Mix:         mix(0.50, 0.00, 0, 0, 0, 0, 0.22, 0.12, 0.14),
			DepDistMean: 3.5, TwoSrcFrac: 0.45, IndepFrac: 0.12, LoadDepFrac: 0.50,
			LoopFrac: 0.55, PatternFrac: 0.30, RandomBias: 0.82, LoopTrip: 12, Sites: 64,
			FootprintBytes: 1 << 20, StreamFrac: 0.55, Streams: 4, HotFrac: 0.92,
		},
		{
			Name: "175.vpr", Group: Integer,
			Mix:         mix(0.48, 0.01, 0.02, 0.02, 0, 0, 0.24, 0.10, 0.13),
			DepDistMean: 3.2, TwoSrcFrac: 0.45, IndepFrac: 0.12, LoadDepFrac: 0.50,
			LoopFrac: 0.52, PatternFrac: 0.30, RandomBias: 0.80, LoopTrip: 8, Sites: 96,
			FootprintBytes: 1 << 20, StreamFrac: 0.35, Streams: 2, HotFrac: 0.92,
		},
		{
			Name: "176.gcc", Group: Integer,
			Mix:         mix(0.47, 0.00, 0, 0, 0, 0, 0.25, 0.11, 0.17),
			DepDistMean: 3, TwoSrcFrac: 0.40, IndepFrac: 0.12, LoadDepFrac: 0.50,
			LoopFrac: 0.50, PatternFrac: 0.32, RandomBias: 0.78, LoopTrip: 6, Sites: 128,
			FootprintBytes: 2 << 20, StreamFrac: 0.30, Streams: 2, HotFrac: 0.92,
		},
		{
			Name: "181.mcf", Group: Integer,
			Mix:         mix(0.42, 0.00, 0, 0, 0, 0, 0.32, 0.08, 0.18),
			DepDistMean: 2.8, TwoSrcFrac: 0.35, IndepFrac: 0.08, LoadDepFrac: 0.50,
			LoopFrac: 0.50, PatternFrac: 0.28, RandomBias: 0.78, LoopTrip: 10, Sites: 64,
			FootprintBytes: 16 << 20, StreamFrac: 0.20, Streams: 1, HotFrac: 0.70,
		},
		{
			Name: "197.parser", Group: Integer,
			Mix:         mix(0.47, 0.00, 0, 0, 0, 0, 0.26, 0.10, 0.17),
			DepDistMean: 3, TwoSrcFrac: 0.40, IndepFrac: 0.11, LoadDepFrac: 0.50,
			LoopFrac: 0.50, PatternFrac: 0.32, RandomBias: 0.78, LoopTrip: 7, Sites: 128,
			FootprintBytes: 2 << 20, StreamFrac: 0.25, Streams: 2, HotFrac: 0.90,
		},
		{
			Name: "252.eon", Group: Integer,
			Mix:         mix(0.44, 0.01, 0.05, 0.05, 0.005, 0, 0.25, 0.09, 0.11),
			DepDistMean: 4, TwoSrcFrac: 0.45, IndepFrac: 0.18, LoadDepFrac: 0.50,
			LoopFrac: 0.60, PatternFrac: 0.28, RandomBias: 0.86, LoopTrip: 10, Sites: 64,
			FootprintBytes: 512 << 10, StreamFrac: 0.45, Streams: 3, HotFrac: 0.95,
		},
		{
			Name: "253.perlbmk", Group: Integer,
			Mix:         mix(0.48, 0.00, 0, 0, 0, 0, 0.25, 0.11, 0.16),
			DepDistMean: 3.2, TwoSrcFrac: 0.40, IndepFrac: 0.13, LoadDepFrac: 0.50,
			LoopFrac: 0.55, PatternFrac: 0.30, RandomBias: 0.84, LoopTrip: 9, Sites: 192,
			FootprintBytes: 768 << 10, StreamFrac: 0.40, Streams: 2, HotFrac: 0.93,
		},
		{
			Name: "256.bzip2", Group: Integer,
			Mix:         mix(0.50, 0.00, 0, 0, 0, 0, 0.23, 0.12, 0.13),
			DepDistMean: 3.6, TwoSrcFrac: 0.45, IndepFrac: 0.14, LoadDepFrac: 0.50,
			LoopFrac: 0.56, PatternFrac: 0.28, RandomBias: 0.82, LoopTrip: 14, Sites: 48,
			FootprintBytes: 1 << 20, StreamFrac: 0.55, Streams: 3, HotFrac: 0.92,
		},
		{
			Name: "300.twolf", Group: Integer,
			Mix:         mix(0.46, 0.01, 0.02, 0.02, 0.002, 0, 0.25, 0.10, 0.14),
			DepDistMean: 3.1, TwoSrcFrac: 0.42, IndepFrac: 0.12, LoadDepFrac: 0.50,
			LoopFrac: 0.52, PatternFrac: 0.30, RandomBias: 0.78, LoopTrip: 8, Sites: 96,
			FootprintBytes: 768 << 10, StreamFrac: 0.30, Streams: 2, HotFrac: 0.92,
		},

		// ---- Vector floating-point ----
		{
			Name: "171.swim", Group: VectorFP,
			Mix:         mix(0.22, 0.00, 0.26, 0.22, 0.004, 0, 0.20, 0.08, 0.022),
			DepDistMean: 28, TwoSrcFrac: 0.50, IndepFrac: 0.40, LoadDepFrac: 0.05,
			LoopFrac: 0.92, PatternFrac: 0.05, RandomBias: 0.90, LoopTrip: 256, Sites: 24,
			FootprintBytes: 32 << 20, StreamFrac: 0.97, Streams: 6, HotFrac: 0.93, PrefetchCov: 0.94,
		},
		{
			Name: "172.mgrid", Group: VectorFP,
			Mix:         mix(0.24, 0.00, 0.28, 0.22, 0.002, 0, 0.19, 0.05, 0.018),
			DepDistMean: 30, TwoSrcFrac: 0.50, IndepFrac: 0.42, LoadDepFrac: 0.05,
			LoopFrac: 0.94, PatternFrac: 0.04, RandomBias: 0.90, LoopTrip: 192, Sites: 16,
			FootprintBytes: 24 << 20, StreamFrac: 0.97, Streams: 8, HotFrac: 0.93, PrefetchCov: 0.94,
		},
		{
			Name: "173.applu", Group: VectorFP,
			Mix:         mix(0.24, 0.00, 0.25, 0.21, 0.01, 0, 0.20, 0.07, 0.03),
			DepDistMean: 24, TwoSrcFrac: 0.50, IndepFrac: 0.36, LoadDepFrac: 0.06,
			LoopFrac: 0.90, PatternFrac: 0.06, RandomBias: 0.85, LoopTrip: 128, Sites: 32,
			FootprintBytes: 24 << 20, StreamFrac: 0.95, Streams: 6, HotFrac: 0.92, PrefetchCov: 0.92,
		},
		{
			Name: "183.equake", Group: VectorFP,
			Mix:         mix(0.26, 0.00, 0.24, 0.20, 0.006, 0, 0.21, 0.05, 0.035),
			DepDistMean: 20, TwoSrcFrac: 0.55, IndepFrac: 0.32, LoadDepFrac: 0.10,
			LoopFrac: 0.86, PatternFrac: 0.08, RandomBias: 0.85, LoopTrip: 96, Sites: 32,
			FootprintBytes: 16 << 20, StreamFrac: 0.93, Streams: 4, HotFrac: 0.90, PrefetchCov: 0.90,
		},

		// ---- Non-vector floating-point ----
		{
			Name: "177.mesa", Group: NonVectorFP,
			Mix:         mix(0.36, 0.01, 0.14, 0.12, 0.01, 0.002, 0.22, 0.08, 0.078),
			DepDistMean: 9, TwoSrcFrac: 0.50, IndepFrac: 0.26, LoadDepFrac: 0.15,
			LoopFrac: 0.55, PatternFrac: 0.20, RandomBias: 0.85, LoopTrip: 24, Sites: 64,
			FootprintBytes: 1 << 20, StreamFrac: 0.60, Streams: 3, HotFrac: 0.92, PrefetchCov: 0.88,
		},
		{
			Name: "178.galgel", Group: NonVectorFP,
			Mix:         mix(0.30, 0.00, 0.18, 0.15, 0.01, 0, 0.22, 0.07, 0.07),
			DepDistMean: 11, TwoSrcFrac: 0.52, IndepFrac: 0.22, LoadDepFrac: 0.12,
			LoopFrac: 0.62, PatternFrac: 0.15, RandomBias: 0.82, LoopTrip: 32, Sites: 48,
			FootprintBytes: 8 << 20, StreamFrac: 0.65, Streams: 4, HotFrac: 0.86, PrefetchCov: 0.82,
		},
		{
			Name: "179.art", Group: NonVectorFP,
			Mix:         mix(0.30, 0.00, 0.17, 0.15, 0.006, 0, 0.25, 0.05, 0.074),
			DepDistMean: 9, TwoSrcFrac: 0.52, IndepFrac: 0.20, LoadDepFrac: 0.20,
			LoopFrac: 0.60, PatternFrac: 0.15, RandomBias: 0.80, LoopTrip: 48, Sites: 32,
			FootprintBytes: 4 << 20, StreamFrac: 0.45, Streams: 2, HotFrac: 0.60, PrefetchCov: 0.60,
		},
		{
			Name: "188.ammp", Group: NonVectorFP,
			Mix:         mix(0.32, 0.00, 0.16, 0.14, 0.015, 0.004, 0.23, 0.06, 0.071),
			DepDistMean: 8, TwoSrcFrac: 0.50, IndepFrac: 0.16, LoadDepFrac: 0.22,
			LoopFrac: 0.55, PatternFrac: 0.18, RandomBias: 0.78, LoopTrip: 28, Sites: 48,
			FootprintBytes: 16 << 20, StreamFrac: 0.40, Streams: 2, HotFrac: 0.80, PrefetchCov: 0.72,
		},
		{
			Name: "189.lucas", Group: NonVectorFP,
			Mix:         mix(0.28, 0.00, 0.19, 0.17, 0.004, 0, 0.21, 0.08, 0.066),
			DepDistMean: 11, TwoSrcFrac: 0.52, IndepFrac: 0.22, LoadDepFrac: 0.10,
			LoopFrac: 0.66, PatternFrac: 0.14, RandomBias: 0.80, LoopTrip: 40, Sites: 32,
			FootprintBytes: 16 << 20, StreamFrac: 0.70, Streams: 4, HotFrac: 0.85, PrefetchCov: 0.82,
		},
	}
}

// ByGroup returns the subset of profiles in group g.
func ByGroup(g Group) []Profile {
	var out []Profile
	for _, p := range SPEC2000() {
		if p.Group == g {
			out = append(out, p)
		}
	}
	return out
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, bool) {
	for _, p := range SPEC2000() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
