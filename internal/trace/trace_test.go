package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestGenerateDeterministic(t *testing.T) {
	p, ok := ByName("164.gzip")
	if !ok {
		t.Fatal("missing gzip profile")
	}
	a := p.Generate(5000, 42)
	b := p.Generate(5000, 42)
	if len(a.Insts) != len(b.Insts) {
		t.Fatal("lengths differ")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("instruction %d differs between identical generations", i)
		}
	}
	c := p.Generate(5000, 43)
	same := 0
	for i := range a.Insts {
		if a.Insts[i] == c.Insts[i] {
			same++
		}
	}
	if same == len(a.Insts) {
		t.Error("different seeds produced identical traces")
	}
}

func TestDependenciesPointBackwardToProducers(t *testing.T) {
	for _, p := range SPEC2000() {
		tr := p.Generate(20000, 7)
		for i, in := range tr.Insts {
			for _, s := range []int32{in.Src1, in.Src2} {
				if s < -1 || s >= int32(i) {
					t.Fatalf("%s inst %d: source %d out of range", p.Name, i, s)
				}
				if s >= 0 {
					c := tr.Insts[s].Class
					if c == isa.Store || c == isa.Branch {
						t.Fatalf("%s inst %d depends on non-producer %v", p.Name, i, c)
					}
				}
			}
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	all := SPEC2000()
	if len(all) != 18 {
		t.Fatalf("suite has %d benchmarks, want 18 (Table 2)", len(all))
	}
	if n := len(ByGroup(Integer)); n != 9 {
		t.Errorf("integer count = %d, want 9", n)
	}
	if n := len(ByGroup(VectorFP)); n != 4 {
		t.Errorf("vector FP count = %d, want 4", n)
	}
	if n := len(ByGroup(NonVectorFP)); n != 5 {
		t.Errorf("non-vector FP count = %d, want 5", n)
	}
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestMixRealized(t *testing.T) {
	// The generated class frequencies track the profile weights.
	for _, name := range []string{"176.gcc", "171.swim"} {
		p, _ := ByName(name)
		tr := p.Generate(60000, 11)
		var counts [isa.NumClasses]int
		for _, in := range tr.Insts {
			counts[in.Class]++
		}
		total := 0.0
		for _, w := range p.Mix {
			total += w
		}
		for c := 0; c < isa.NumClasses; c++ {
			want := p.Mix[c] / total
			got := float64(counts[c]) / float64(len(tr.Insts))
			if want > 0.02 && (got < want*0.8 || got > want*1.2) {
				t.Errorf("%s class %v: frequency %.3f, want ~%.3f", name, isa.Class(c), got, want)
			}
		}
	}
}

func TestVectorCodesHaveMoreILP(t *testing.T) {
	// Mean dependency distance must be much larger for vector FP than for
	// integer benchmarks — the property behind Figure 4a/5's ordering.
	meanDist := func(tr *Trace) float64 {
		var sum, n float64
		for i, in := range tr.Insts {
			if in.Src1 >= 0 {
				sum += float64(int32(i) - in.Src1)
				n++
			}
		}
		return sum / n
	}
	gcc, _ := ByName("176.gcc")
	swim, _ := ByName("171.swim")
	dInt := meanDist(gcc.Generate(40000, 3))
	dVec := meanDist(swim.Generate(40000, 3))
	if dVec < 2*dInt {
		t.Errorf("vector dep distance (%.1f) not ≫ integer (%.1f)", dVec, dInt)
	}
}

func TestBranchOutcomesVaryBySite(t *testing.T) {
	p, _ := ByName("171.swim")
	tr := p.Generate(50000, 5)
	taken, branches := 0, 0
	for _, in := range tr.Insts {
		if in.Class == isa.Branch {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	if branches == 0 {
		t.Fatal("no branches generated")
	}
	// Vector code: loop branches are overwhelmingly taken.
	frac := float64(taken) / float64(branches)
	if frac < 0.75 {
		t.Errorf("vector loop branches taken fraction = %.2f, want > 0.75", frac)
	}
}

func TestRNGProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
			if n := r.Intn(17); n < 0 || n >= 17 {
				return false
			}
			if g := r.Geometric(4); g < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometricMeanApproximatesTarget(t *testing.T) {
	r := NewRNG(99)
	const mean, n = 8.0, 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(mean)
	}
	got := float64(sum) / n
	if got < mean*0.9 || got > mean*1.1 {
		t.Errorf("geometric mean = %.2f, want ~%.1f", got, mean)
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, p := range SPEC2000() {
		tr := p.Generate(10000, 21)
		for i, in := range tr.Insts {
			if in.Class.IsMem() && in.Addr >= p.FootprintBytes+64 {
				t.Fatalf("%s inst %d: address %d beyond footprint %d",
					p.Name, i, in.Addr, p.FootprintBytes)
			}
		}
	}
}

func TestGeneratePanicsOnBadInput(t *testing.T) {
	p, _ := ByName("164.gzip")
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	p.Generate(0, 1)
}
