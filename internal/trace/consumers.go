package trace

import "sync"

// ConsumerIndex is the reverse dependence adjacency of a trace in
// compressed-sparse-row form: the consumers of instruction i are
// Edges[Offsets[i]:Offsets[i+1]], in program order. An instruction with
// both source operands fed by the same producer appears twice in that
// producer's edge list (once per operand), so edge count equals the
// number of register-source dependences in the trace.
//
// The simulators use the index to wake exactly a completing producer's
// consumers instead of broadcasting a tag comparison across every issue
// window entry — the same O(window) scan per issued instruction whose
// circuit cost the paper's Section 5 segmented window attacks.
type ConsumerIndex struct {
	Offsets []int32 // len(Insts)+1 row starts into Edges
	Edges   []int32 // consumer trace indices, grouped by producer
}

// Consumers returns the edge list of producer i.
func (ci *ConsumerIndex) Consumers(i int32) []int32 {
	return ci.Edges[ci.Offsets[i]:ci.Offsets[i+1]]
}

// consumerCacheKey identifies an instruction stream by identity rather
// than by Trace pointer: WithPrefetchCoverage clones share Insts with
// their parent, and one index serves every clone.
type consumerCacheKey struct {
	first *Inst
	n     int
}

// consumerCache holds every consumer index built so far, process-wide,
// exactly like internal/core's trace cache: traces are immutable once
// generated, so the index is immutable too and one build serves every
// study, worker and clock point.
var consumerCache sync.Map // consumerCacheKey → *ConsumerIndex

// ConsumerIndexOf returns the trace's consumer index, building and
// caching it on first use. The returned index is shared and must be
// treated as read-only; concurrent callers may race to build it, but the
// construction is a pure function of the trace so either result is
// identical and LoadOrStore picks a canonical one.
func (t *Trace) ConsumerIndexOf() *ConsumerIndex {
	if len(t.Insts) == 0 {
		return &ConsumerIndex{Offsets: make([]int32, 1)}
	}
	key := consumerCacheKey{first: &t.Insts[0], n: len(t.Insts)}
	if v, ok := consumerCache.Load(key); ok {
		return v.(*ConsumerIndex)
	}
	v, _ := consumerCache.LoadOrStore(key, buildConsumerIndex(t.Insts))
	return v.(*ConsumerIndex)
}

// buildConsumerIndex builds the CSR adjacency in two passes: count the
// out-degree of every producer, prefix-sum into row offsets, then fill.
// Dependencies always point backwards (see Inst), so the result is a DAG
// adjacency whose edge lists are sorted by consumer index.
func buildConsumerIndex(insts []Inst) *ConsumerIndex {
	n := len(insts)
	offsets := make([]int32, n+1)
	for i := range insts {
		if s := insts[i].Src1; s >= 0 {
			offsets[s+1]++
		}
		if s := insts[i].Src2; s >= 0 {
			offsets[s+1]++
		}
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	edges := make([]int32, offsets[n])
	next := make([]int32, n)
	copy(next, offsets[:n])
	for i := range insts {
		if s := insts[i].Src1; s >= 0 {
			edges[next[s]] = int32(i)
			next[s]++
		}
		if s := insts[i].Src2; s >= 0 {
			edges[next[s]] = int32(i)
			next[s]++
		}
	}
	return &ConsumerIndex{Offsets: offsets, Edges: edges}
}
