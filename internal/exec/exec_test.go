package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func items(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestMapSlotsResultsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(Pool{Workers: workers}, items(100), func(i, v int) int {
			return i * v
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapSerialMatchesParallel(t *testing.T) {
	fn := func(i, v int) uint64 {
		// A little deterministic arithmetic per job.
		x := uint64(v)*2654435761 + 1
		for k := 0; k < 100; k++ {
			x ^= x >> 13
			x *= 0x9E3779B97F4A7C15
		}
		return x
	}
	serial, err := Map(Pool{Workers: 1}, items(257), fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(Pool{Workers: 8}, items(257), fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(Pool{}, nil, func(i, v int) int { return v })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		_, err := Map(Pool{Workers: workers, Ctx: ctx}, items(50), func(i, v int) int {
			ran.Add(1)
			return v
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d jobs ran on a cancelled context", n)
	}
}

func TestMapCancellationStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	const n = 10000
	_, err := Map(Pool{Workers: 4, Ctx: ctx}, items(n), func(i, v int) int {
		if ran.Add(1) == 10 {
			cancel()
		}
		return v
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d jobs ran despite cancellation", got)
	}
}

func TestPoolSize(t *testing.T) {
	if got := (Pool{Workers: 8}).size(3); got != 3 {
		t.Errorf("workers capped at items: got %d, want 3", got)
	}
	if got := (Pool{Workers: 2}).size(100); got != 2 {
		t.Errorf("explicit workers: got %d, want 2", got)
	}
	if got := (Pool{}).size(100); got < 1 {
		t.Errorf("default workers: got %d, want >= 1", got)
	}
}
