package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func items(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestMapSlotsResultsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(Pool{Workers: workers}, items(100), func(i, v int) int {
			return i * v
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapSerialMatchesParallel(t *testing.T) {
	fn := func(i, v int) uint64 {
		// A little deterministic arithmetic per job.
		x := uint64(v)*2654435761 + 1
		for k := 0; k < 100; k++ {
			x ^= x >> 13
			x *= 0x9E3779B97F4A7C15
		}
		return x
	}
	serial, err := Map(Pool{Workers: 1}, items(257), fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(Pool{Workers: 8}, items(257), fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(Pool{}, nil, func(i, v int) int { return v })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		_, err := Map(Pool{Workers: workers, Ctx: ctx}, items(50), func(i, v int) int {
			ran.Add(1)
			return v
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d jobs ran on a cancelled context", n)
	}
}

func TestMapCancellationStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	const n = 10000
	_, err := Map(Pool{Workers: 4, Ctx: ctx}, items(n), func(i, v int) int {
		if ran.Add(1) == 10 {
			cancel()
		}
		return v
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d jobs ran despite cancellation", got)
	}
}

func TestMapWithStateOneStatePerWorker(t *testing.T) {
	type state struct{ jobs int }
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var states []*state
		newState := func() *state {
			mu.Lock()
			defer mu.Unlock()
			s := &state{}
			states = append(states, s)
			return s
		}
		got, err := MapWithState(Pool{Workers: workers}, items(100), newState,
			func(s *state, i, v int) int {
				s.jobs++
				return i + v
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != 2*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, 2*i)
			}
		}
		if len(states) > workers {
			t.Fatalf("workers=%d: %d states built, want at most %d", workers, len(states), workers)
		}
		total := 0
		for _, s := range states {
			total += s.jobs
		}
		if total != 100 {
			t.Fatalf("workers=%d: states saw %d jobs, want 100", workers, total)
		}
	}
}

func TestMapWithStateSerialMatchesParallel(t *testing.T) {
	// State as an allocation amortizer: a scratch buffer reused across
	// jobs, with every job fully re-initializing what it reads.
	fn := func(buf []uint64, i, v int) uint64 {
		for k := range buf {
			buf[k] = uint64(v+k) * 2654435761
		}
		var x uint64
		for _, b := range buf {
			x ^= b + x<<7
		}
		return x
	}
	newBuf := func() []uint64 { return make([]uint64, 32) }
	serial, err := MapWithState(Pool{Workers: 1}, items(257), newBuf, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MapWithState(Pool{Workers: 8}, items(257), newBuf, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestPoolSize(t *testing.T) {
	if got := (Pool{Workers: 8}).size(3); got != 3 {
		t.Errorf("workers capped at items: got %d, want 3", got)
	}
	if got := (Pool{Workers: 2}).size(100); got != 2 {
		t.Errorf("explicit workers: got %d, want 2", got)
	}
	if got := (Pool{}).size(100); got < 1 {
		t.Errorf("default workers: got %d, want >= 1", got)
	}
}

func TestHooksObserveEveryTask(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		started := map[int]int{}
		done := map[int]int{}
		maxWorker := 0
		p := Pool{
			Workers: workers,
			OnTaskStart: func(w, i int, queueWait time.Duration) {
				mu.Lock()
				started[i]++
				if w > maxWorker {
					maxWorker = w
				}
				if queueWait < 0 {
					t.Errorf("negative queue wait %v", queueWait)
				}
				mu.Unlock()
			},
			OnTaskDone: func(w, i int, d time.Duration) {
				mu.Lock()
				done[i]++
				if d < 0 {
					t.Errorf("negative duration %v", d)
				}
				mu.Unlock()
			},
		}
		got, err := Map(p, items(57), func(i, v int) int { return v * 2 })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*2 {
				t.Fatalf("workers=%d: hooks disturbed results: slot %d = %d", workers, i, v)
			}
		}
		if len(started) != 57 || len(done) != 57 {
			t.Fatalf("workers=%d: started %d / done %d indexes, want 57", workers, len(started), len(done))
		}
		for i := 0; i < 57; i++ {
			if started[i] != 1 || done[i] != 1 {
				t.Fatalf("workers=%d: index %d started %d / done %d times", workers, i, started[i], done[i])
			}
		}
		if maxWorker >= (p.size(57)) {
			t.Errorf("workers=%d: worker id %d out of range", workers, maxWorker)
		}
		if workers == 1 && maxWorker != 0 {
			t.Errorf("serial path must report worker 0, saw %d", maxWorker)
		}
	}
}

func TestHooksDoNotChangeOutput(t *testing.T) {
	fn := func(i, v int) uint64 {
		x := uint64(v)*2654435761 + 1
		for k := 0; k < 50; k++ {
			x ^= x >> 13
			x *= 0x9E3779B97F4A7C15
		}
		return x
	}
	plain, err := Map(Pool{Workers: 4}, items(123), fn)
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := Map(Pool{
		Workers:     4,
		OnTaskStart: func(w, i int, q time.Duration) {},
		OnTaskDone:  func(w, i int, d time.Duration) {},
	}, items(123), fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Fatalf("slot %d: plain %d != hooked %d", i, plain[i], hooked[i])
		}
	}
}

func TestSkipDropsJobsAndKeepsSlots(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var started, done atomic.Int64
		p := Pool{
			Workers:     workers,
			Skip:        func(i int) bool { return i%3 == 0 },
			OnTaskStart: func(w, i int, q time.Duration) { started.Add(1) },
			OnTaskDone:  func(w, i int, d time.Duration) { done.Add(1) },
		}
		got, err := Map(p, items(30), func(i, v int) int { return v + 1 })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		ran := 0
		for i, v := range got {
			if i%3 == 0 {
				if v != 0 {
					t.Fatalf("workers=%d: skipped slot %d = %d, want zero value", workers, i, v)
				}
				continue
			}
			ran++
			if v != i+1 {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i+1)
			}
		}
		if started.Load() != int64(ran) || done.Load() != int64(ran) {
			t.Fatalf("workers=%d: hooks fired %d/%d times for %d run jobs (skips must not fire hooks)",
				workers, started.Load(), done.Load(), ran)
		}
	}
}

func TestSkipNilRunsEverything(t *testing.T) {
	got, err := Map(Pool{Workers: 2}, items(20), func(i, v int) int { return v + 1 })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("slot %d = %d, want %d", i, v, i+1)
		}
	}
}

func TestSkipConsultedOncePerJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls [50]atomic.Int64
		p := Pool{
			Workers: workers,
			Skip: func(i int) bool {
				calls[i].Add(1)
				return false
			},
		}
		if _, err := Map(p, items(50), func(i, v int) int { return v }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range calls {
			if n := calls[i].Load(); n != 1 {
				t.Fatalf("workers=%d: Skip(%d) consulted %d times, want 1", workers, i, n)
			}
		}
	}
}

func TestMapGroupsWithStateSlotsByGroup(t *testing.T) {
	groups := [][]int{{1, 2, 3}, {4}, {}, {5, 6}}
	want := [][]int{{2, 4, 6}, {8}, {}, {10, 12}}
	for _, workers := range []int{1, 3} {
		got, err := MapGroupsWithState(Pool{Workers: workers}, groups,
			func() int { return 2 },
			func(mul, _ int, items []int) []int {
				out := make([]int, len(items))
				for i, v := range items {
					out[i] = v * mul
				}
				return out
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d result slices, want %d", workers, len(got), len(want))
		}
		for g := range want {
			if len(got[g]) != len(want[g]) {
				t.Fatalf("workers=%d group %d: got %v, want %v", workers, g, got[g], want[g])
			}
			for i := range want[g] {
				if got[g][i] != want[g][i] {
					t.Errorf("workers=%d group %d slot %d: got %d, want %d", workers, g, i, got[g][i], want[g][i])
				}
			}
		}
	}
}

func TestMapGroupsWithStateSkipLeavesNilSlice(t *testing.T) {
	groups := [][]int{{1}, {2}, {3}}
	got, err := MapGroupsWithState(Pool{Workers: 1, Skip: func(g int) bool { return g == 1 }},
		groups,
		func() struct{} { return struct{}{} },
		func(_ struct{}, _ int, items []int) []int { return items })
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != nil {
		t.Errorf("skipped group's slot = %v, want nil", got[1])
	}
	if got[0] == nil || got[2] == nil {
		t.Errorf("unskipped groups missing: %v", got)
	}
}
