// Package exec provides the deterministic worker-pool executor every
// study driver in internal/core runs on. A study is a grid of independent
// simulations — the paper replays each (benchmark, clock-point) pair as a
// separate binary run — so the grid parallelizes freely as long as the
// aggregate output stays deterministic. The executor guarantees that by
// construction: results are slotted by item index, never by completion
// order, so the output of Map is byte-for-byte identical at any worker
// count, and Workers == 1 degenerates to a plain serial loop on the
// caller's goroutine.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool sizes one executor invocation.
type Pool struct {
	// Workers is the number of concurrent workers: 0 means GOMAXPROCS,
	// 1 runs every job serially on the caller's goroutine (reproducing an
	// ordinary loop bit-for-bit), and higher values cap the pool.
	Workers int

	// Ctx cancels a run early; nil means the run cannot be cancelled.
	Ctx context.Context
}

// size resolves the worker count for n items.
func (p Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ctx resolves the pool's context.
func (p Pool) ctx() context.Context {
	if p.Ctx == nil {
		return context.Background()
	}
	return p.Ctx
}

// Map applies fn to every item and returns the results slotted by item
// index. Jobs are handed out in index order; completion order never
// affects the output, so Map is deterministic at any worker count.
//
// When the pool's context is cancelled, Map stops handing out work and
// returns the context's error; slots whose jobs never ran hold zero
// values, so a caller that sees a non-nil error must discard the results.
func Map[T, R any](p Pool, items []T, fn func(int, T) R) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}
	ctx := p.ctx()
	workers := p.size(len(items))

	if workers == 1 {
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			results[i] = fn(i, it)
		}
		return results, ctx.Err()
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[i] = fn(i, items[i])
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}
