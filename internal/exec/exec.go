// Package exec provides the deterministic worker-pool executor every
// study driver in internal/core runs on. A study is a grid of independent
// simulations — the paper replays each (benchmark, clock-point) pair as a
// separate binary run — so the grid parallelizes freely as long as the
// aggregate output stays deterministic. The executor guarantees that by
// construction: results are slotted by item index, never by completion
// order, so the output of Map is byte-for-byte identical at any worker
// count, and Workers == 1 degenerates to a plain serial loop on the
// caller's goroutine.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool sizes one executor invocation.
type Pool struct {
	// Workers is the number of concurrent workers: 0 means GOMAXPROCS,
	// 1 runs every job serially on the caller's goroutine (reproducing an
	// ordinary loop bit-for-bit), and higher values cap the pool.
	Workers int

	// Ctx cancels a run early; nil means the run cannot be cancelled.
	Ctx context.Context

	// OnTaskStart, when non-nil, is called on the worker's goroutine just
	// before job index runs. worker identifies the worker (0..size-1; the
	// serial path is always worker 0) and queueWait is the time elapsed
	// between Map submitting the grid and this job being picked up.
	// OnTaskDone is called right after the job returns, with its duration.
	//
	// Hook contract: hooks are observation-only. Map never alters
	// scheduling, ordering or results based on them, so output stays
	// byte-for-byte identical whether they are set or nil; hooks must be
	// safe for concurrent calls (every worker invokes them) and must not
	// mutate items or results. internal/obs.Recorder satisfies both
	// signatures directly.
	OnTaskStart func(worker, index int, queueWait time.Duration)
	OnTaskDone  func(worker, index int, dur time.Duration)

	// Skip, when non-nil, is consulted once per job at the moment a
	// worker would otherwise run it: a true return abandons that job —
	// its result slot keeps the zero value and neither observation hook
	// fires. It exists so a long-lived caller (the sweep-serving daemon)
	// can cancel individual not-yet-started tasks whose requesters have
	// gone away without tearing down the whole run the way Ctx does.
	//
	// Contract: Skip selects which slots get filled; it must never
	// influence the value computed for a job that does run. fn stays a
	// pure function of (index, item), so every filled slot is
	// byte-for-byte identical at any worker count regardless of how Skip
	// answered for other jobs. Skip must be safe for concurrent calls
	// and should be monotonic (once true for an index, stay true): a
	// job observed as skipped never runs later.
	Skip func(index int) bool
}

// size resolves the worker count for n items.
func (p Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ctx resolves the pool's context.
func (p Pool) ctx() context.Context {
	if p.Ctx == nil {
		return context.Background()
	}
	return p.Ctx
}

// Map applies fn to every item and returns the results slotted by item
// index. Jobs are handed out in index order; completion order never
// affects the output, so Map is deterministic at any worker count.
//
// When the pool's context is cancelled, Map stops handing out work and
// returns the context's error; slots whose jobs never ran hold zero
// values, so a caller that sees a non-nil error must discard the results.
func Map[T, R any](p Pool, items []T, fn func(int, T) R) ([]R, error) {
	return MapWithState(p, items,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int, it T) R { return fn(i, it) })
}

// MapWithState is Map with per-worker scratch state: newState runs once
// per worker, on that worker's goroutine (the serial path is a single
// worker), and fn receives that worker's state on every job it runs.
// The sweep engine uses it to thread one pipeline.Scratch per worker
// through a whole study grid.
//
// Determinism contract: state is an allocation amortizer, never an
// input. fn's result must be a pure function of (index, item) alone —
// identical whether the state is fresh or has served any prior sequence
// of jobs — because which jobs share a state instance depends on
// scheduling, and any leakage through the state would break Map's
// worker-count invariance.
func MapWithState[T, R, S any](p Pool, items []T, newState func() S, fn func(state S, index int, item T) R) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}
	ctx := p.ctx()
	workers := p.size(len(items))

	// call wraps fn with the observation hooks; when no hook is set it is
	// fn itself modulo the worker id, so the hot path stays time.Now-free.
	call := func(w int, s S, i int, it T) R { return fn(s, i, it) }
	if p.OnTaskStart != nil || p.OnTaskDone != nil {
		submitted := time.Now() //reprolint:allow nondeterminism: queue-wait timing feeds the observation hooks only, never task results
		call = func(w int, s S, i int, it T) R {
			start := time.Now() //reprolint:allow nondeterminism: task timing feeds the observation hooks only, never task results
			if p.OnTaskStart != nil {
				p.OnTaskStart(w, i, start.Sub(submitted))
			}
			r := fn(s, i, it)
			if p.OnTaskDone != nil {
				//reprolint:allow nondeterminism: task timing feeds the observation hooks only, never task results
				p.OnTaskDone(w, i, time.Since(start))
			}
			return r
		}
	}

	if workers == 1 {
		state := newState()
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			if p.Skip != nil && p.Skip(i) {
				continue
			}
			results[i] = call(0, state, i, it)
		}
		return results, ctx.Err()
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			state := newState()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if p.Skip != nil && p.Skip(i) {
					continue
				}
				results[i] = call(w, state, i, items[i])
			}
		}(w)
	}
	wg.Wait()
	return results, ctx.Err()
}

// MapGroupsWithState is MapWithState over a pre-grouped grid: groups[i]
// is one indivisible unit of work handed whole to fn, which returns one
// result slice for the group. The sweep engine uses it to dispatch one
// batched simulation per benchmark trace — every depth of that benchmark
// in one call — while keeping the pool's contracts: results are slotted
// by group index, observation hooks and Skip fire once per group, and
// fn's output must be a pure function of (group index, items) so the
// flattened grid is byte-for-byte identical at any worker count. On
// cancellation, unrun groups hold nil slices.
func MapGroupsWithState[T, R, S any](p Pool, groups [][]T, newState func() S, fn func(state S, group int, items []T) []R) ([][]R, error) {
	return MapWithState(p, groups, newState, func(s S, gi int, items []T) []R {
		return fn(s, gi, items)
	})
}
