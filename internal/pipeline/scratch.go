package pipeline

import (
	"sync"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/mem"
)

// Scratch is the reusable simulation state of one Run: the
// per-instruction timestamp arenas, issue-queue storage, selection and
// pre-selection scratch, the frontend ring buffer, and the (resettable)
// branch predictor and cache hierarchy. A fresh Scratch is valid; reuse
// only amortizes allocations.
//
// Contract: a Scratch may serve any number of sequential RunWith calls —
// every run fully re-initializes the state it reads, so results are a
// pure function of (Params, Trace) regardless of what ran before — but
// it must never be shared by concurrent runs. The sweep engine threads
// one Scratch per worker through exec.MapWithState; plain Run borrows
// one from a package pool. Traces stay immutable throughout: a Scratch
// only ever holds simulator-private state, never trace data.
type Scratch struct {
	// Per-instruction arenas, sized to the trace on each run.
	dataAt     []int64 // cycle a consumer may issue (post-bypass)
	completeAt []int64 // cycle the instruction has executed
	commitAt   []int64 // cycle the instruction commits
	queuePos   []int32 // position in its issue queue, -1 while absent

	queueStore [2]issueQueue
	queueRefs  []*issueQueue // reused header for the active queue set

	selected []int32 // issueSelect output scratch
	quota    []int   // markPreSelections quota scratch

	frontQ fqRing

	pred *branch.Tournament

	hier    *mem.Hierarchy
	hierKey hierKey
}

// NewScratch returns an empty Scratch; arenas grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// arenas sizes the per-instruction arrays for an n-instruction trace and
// resets them to their start-of-run values.
func (s *Scratch) arenas(n int) {
	if cap(s.dataAt) < n {
		s.dataAt = make([]int64, n)
		s.completeAt = make([]int64, n)
		s.commitAt = make([]int64, n)
		s.queuePos = make([]int32, n)
	}
	s.dataAt = s.dataAt[:n]
	s.completeAt = s.completeAt[:n]
	s.commitAt = s.commitAt[:n]
	s.queuePos = s.queuePos[:n]
	for i := 0; i < n; i++ {
		s.dataAt[i] = pending
		s.completeAt[i] = pending
		s.commitAt[i] = pending
		s.queuePos[i] = -1
	}
}

// queues configures the run's issue-queue set out of the scratch storage:
// the 21264's split integer/FP queues, or one shared window when
// UnifiedWindow is set.
func (s *Scratch) queues(m config.Machine, stages int) []*issueQueue {
	if s.queueRefs == nil {
		s.queueRefs = make([]*issueQueue, 0, len(s.queueStore))
	}
	qs := s.queueRefs[:0]
	if m.UnifiedWindow > 0 {
		s.queueStore[0].reset(m.UnifiedWindow, stages)
		qs = append(qs, &s.queueStore[0])
	} else {
		if m.IntWindow <= 0 || m.FPWindow <= 0 {
			panic("pipeline: machine needs issue-queue capacities")
		}
		s.queueStore[0].reset(m.IntWindow, stages)
		s.queueStore[1].reset(m.FPWindow, stages)
		qs = append(qs, &s.queueStore[0], &s.queueStore[1])
	}
	s.queueRefs = qs
	return qs
}

// selScratch returns the per-cycle selection scratch, emptied, with
// capacity for a full-width issue cycle.
func (s *Scratch) selScratch(width int) []int32 {
	if cap(s.selected) < width {
		s.selected = make([]int32, 0, width)
	}
	return s.selected[:0]
}

// quotaScratch returns the pre-selection quota array, one slot per
// window stage.
func (s *Scratch) quotaScratch(stages int) []int {
	if cap(s.quota) < stages {
		s.quota = make([]int, stages)
	}
	return s.quota[:stages]
}

// predictor returns the scratch's branch predictor in boot state.
func (s *Scratch) predictor() *branch.Tournament {
	if s.pred == nil {
		s.pred = branch.New()
	} else {
		s.pred.Reset()
	}
	return s.pred
}

// hierKey is the cache-geometry identity of a memory hierarchy: two
// hierarchies with equal keys are interchangeable after a Reset.
type hierKey struct {
	flat                       bool
	dl1Cap, dl1Block, dl1Assoc int
	l2Cap, l2Block, l2Assoc    int
}

func hierKeyFor(m config.Machine) hierKey {
	if m.Cray1SMemory {
		return hierKey{flat: true}
	}
	st := m.Structures
	return hierKey{
		dl1Cap: st.DL1.CapacityBytes, dl1Block: st.DL1.BlockBytes, dl1Assoc: st.DL1.Assoc,
		l2Cap: st.L2.CapacityBytes, l2Block: st.L2.BlockBytes, l2Assoc: st.L2.Assoc,
	}
}

// hierarchy returns a memory hierarchy for machine m, reusing the cached
// one when the cache geometry matches (Reset restores the built state
// exactly) and rebuilding it otherwise.
func (s *Scratch) hierarchy(m config.Machine) *mem.Hierarchy {
	key := hierKeyFor(m)
	if s.hier != nil && key == s.hierKey {
		s.hier.Reset()
		return s.hier
	}
	s.hier = newHierarchy(m)
	s.hierKey = key
	return s.hier
}

// scratchPool serves direct Run callers that do not manage their own
// per-worker Scratch (examples, tests, one-off simulations).
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// fq is one frontend-queue slot: a fetched instruction and the cycle it
// reaches dispatch.
type fq struct {
	idx     int32
	readyAt int64
}

// fqRing is the frontend queue between fetch and dispatch: a growable
// power-of-two ring buffer, so steady-state push/pop is pointer
// arithmetic instead of the slice churn of frontQ = frontQ[1:].
type fqRing struct {
	buf  []fq // power-of-two length
	head int
	size int
}

func (r *fqRing) reset() { r.head, r.size = 0, 0 }

func (r *fqRing) len() int { return r.size }

func (r *fqRing) front() fq { return r.buf[r.head] }

func (r *fqRing) push(f fq) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = f
	r.size++
}

func (r *fqRing) pop() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
}

func (r *fqRing) grow() {
	n := 2 * len(r.buf)
	if n == 0 {
		n = 64
	}
	buf := make([]fq, n)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}
