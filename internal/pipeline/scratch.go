package pipeline

import (
	"sync"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Scratch is the reusable simulation state of one Run: the
// per-instruction timestamp arenas, issue-queue storage, selection and
// pre-selection scratch, the frontend ring buffer, and the (resettable)
// branch predictor and cache hierarchy. A fresh Scratch is valid; reuse
// only amortizes allocations.
//
// Contract: a Scratch may serve any number of sequential RunWith calls —
// every run fully re-initializes the state it reads, so results are a
// pure function of (Params, Trace) regardless of what ran before — but
// it must never be shared by concurrent runs. The sweep engine threads
// one Scratch per worker through exec.MapWithState; plain Run borrows
// one from a package pool. Traces stay immutable throughout: a Scratch
// only ever holds simulator-private state, never trace data.
type Scratch struct {
	// Per-instruction arenas, sized to the trace on each run. The data
	// (consumer-visible, post-bypass) and complete (executed) timestamps
	// are paired in one struct because dispatch resolves both for the same
	// producer back to back — one cache line per random producer lookup
	// instead of two.
	times    []instTimes
	queuePos []int32 // queue-tagged issue-queue position (see qposMask), -1 while absent

	queueStore [2]issueQueue
	queueRefs  []*issueQueue // reused header for the active queue set

	selected []int32 // issueSelect output scratch
	quota    []int   // markPreSelections quota scratch

	// fetchReady[i] is the cycle instruction i clears the frontend
	// pipeline and may dispatch, written once at fetch. Fetch and dispatch
	// both walk the trace in order, so the frontend queue between them is
	// just the index range [dispatch cursor, fetch cursor) over this
	// arena — no reset needed: a slot is always written (this run) before
	// it is read.
	fetchReady []int64

	hier    *mem.Hierarchy
	hierKey hierKey

	// warmTmpl is the batch prewarm template (see RunBatch): a hierarchy
	// prewarmed once per partition whose state later lanes copy.
	warmTmpl    *mem.Hierarchy
	warmTmplKey hierKey
}

// NewScratch returns an empty Scratch; arenas grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// instTimes is one instruction's dynamic timestamps: data is the cycle a
// consumer may issue (post-bypass), complete the cycle the instruction
// has executed.
type instTimes struct {
	data, complete int64
}

// arenas sizes the per-instruction arrays for an n-instruction trace and
// resets them to their start-of-run values.
func (s *Scratch) arenas(n int) {
	if cap(s.times) < n {
		s.times = make([]instTimes, n)
		s.queuePos = make([]int32, n)
		s.fetchReady = make([]int64, n)
		// queuePos self-restores: a completed run issues (and so clears
		// the slot of) every instruction, so only fresh storage needs the
		// -1 fill. fetchReady needs none at all — a slot is written at
		// fetch before dispatch can read it.
		for i := range s.queuePos {
			s.queuePos[i] = -1
		}
	}
	s.times = s.times[:n]
	s.queuePos = s.queuePos[:n]
	s.fetchReady = s.fetchReady[:n]
	for i := 0; i < n; i++ {
		s.times[i] = instTimes{data: pending, complete: pending}
	}
}

// queues configures the run's issue-queue set out of the scratch storage:
// the 21264's split integer/FP queues, or one shared window when
// UnifiedWindow is set.
func (s *Scratch) queues(m config.Machine, stages int) []*issueQueue {
	if s.queueRefs == nil {
		s.queueRefs = make([]*issueQueue, 0, len(s.queueStore))
	}
	qs := s.queueRefs[:0]
	if m.UnifiedWindow > 0 {
		s.queueStore[0].reset(m.UnifiedWindow, stages)
		qs = append(qs, &s.queueStore[0])
	} else {
		if m.IntWindow <= 0 || m.FPWindow <= 0 {
			panic("pipeline: machine needs issue-queue capacities")
		}
		s.queueStore[0].reset(m.IntWindow, stages)
		s.queueStore[1].reset(m.FPWindow, stages)
		qs = append(qs, &s.queueStore[0], &s.queueStore[1])
	}
	s.queueRefs = qs
	return qs
}

// selScratch returns the per-cycle selection scratch, emptied, with
// capacity for a full-width issue cycle.
func (s *Scratch) selScratch(width int) []int32 {
	if cap(s.selected) < width {
		s.selected = make([]int32, 0, width)
	}
	return s.selected[:0]
}

// quotaScratch returns the pre-selection quota array, one slot per
// window stage.
func (s *Scratch) quotaScratch(stages int) []int {
	if cap(s.quota) < stages {
		s.quota = make([]int, stages)
	}
	return s.quota[:stages]
}

// hierKey is the cache-geometry identity of a memory hierarchy: two
// hierarchies with equal keys are interchangeable after a Reset.
type hierKey struct {
	flat                       bool
	dl1Cap, dl1Block, dl1Assoc int
	l2Cap, l2Block, l2Assoc    int
}

func hierKeyFor(m config.Machine) hierKey {
	if m.Cray1SMemory {
		return hierKey{flat: true}
	}
	st := m.Structures
	return hierKey{
		dl1Cap: st.DL1.CapacityBytes, dl1Block: st.DL1.BlockBytes, dl1Assoc: st.DL1.Assoc,
		l2Cap: st.L2.CapacityBytes, l2Block: st.L2.BlockBytes, l2Assoc: st.L2.Assoc,
	}
}

// hierarchy returns a memory hierarchy for machine m, reusing the cached
// one when the cache geometry matches (Reset restores the built state
// exactly) and rebuilding it otherwise.
func (s *Scratch) hierarchy(m config.Machine) *mem.Hierarchy {
	key := hierKeyFor(m)
	if s.hier != nil && key == s.hierKey {
		s.hier.Reset()
		return s.hier
	}
	s.hier = newHierarchy(m)
	s.hierKey = key
	return s.hier
}

// hierarchyFor puts the scratch's hierarchy in start-of-run state for
// machine m: reset and prewarmed from the trace's working set, or — when
// a batch supplies a prewarmed template of the same geometry — copied
// from the template, skipping the per-lane reset and prewarm walks. The
// two paths produce bit-identical state (the template is itself reset
// and prewarmed from the same trace; see RunBatch).
func (s *Scratch) hierarchyFor(m config.Machine, tr *trace.Trace, warm *mem.Hierarchy) *mem.Hierarchy {
	if warm != nil {
		key := hierKeyFor(m)
		if s.hier == nil || key != s.hierKey {
			s.hier = newHierarchy(m)
			s.hierKey = key
		}
		s.hier.CopyStateFrom(warm)
		return s.hier
	}
	h := s.hierarchy(m)
	h.Coverage = tr.PrefetchCoverage
	h.Prewarm(tr.HotBytes, tr.WarmBytes)
	return h
}

// warmTemplate returns the scratch's batch prewarm template for machine
// m in reset state, rebuilding it when the geometry changed.
func (s *Scratch) warmTemplate(m config.Machine) *mem.Hierarchy {
	key := hierKeyFor(m)
	if s.warmTmpl == nil || key != s.warmTmplKey {
		s.warmTmpl = newHierarchy(m)
		s.warmTmplKey = key
		return s.warmTmpl
	}
	s.warmTmpl.Reset()
	return s.warmTmpl
}

// scratchPool serves direct Run callers that do not manage their own
// per-worker Scratch (examples, tests, one-off simulations).
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}
