package pipeline

import (
	"sync"
	"testing"
)

// TestConcurrentRunsShareTrace pins the concurrency contract the sweep
// engine depends on: multiple Run calls may execute simultaneously against
// the same *trace.Trace and must produce exactly the stats a serial run
// does. Run under -race this doubles as a regression test for any
// simulator state that leaks across goroutines or any write to the shared
// trace.
func TestConcurrentRunsShareTrace(t *testing.T) {
	tr := getTrace(t, "176.gcc", 40000)
	params := []Params{paramsAt(4), paramsAt(6), paramsAt(8), paramsAt(6)}

	want := make([]Stats, len(params))
	for i, p := range params {
		want[i] = Run(p, tr)
	}

	got := make([]Stats, len(params))
	var wg sync.WaitGroup
	for i, p := range params {
		wg.Add(1)
		go func(i int, p Params) {
			defer wg.Done()
			got[i] = Run(p, tr)
		}(i, p)
	}
	wg.Wait()

	for i := range params {
		if got[i] != want[i] {
			t.Errorf("concurrent run %d differs from serial: %+v vs %+v", i, got[i], want[i])
		}
	}
}
