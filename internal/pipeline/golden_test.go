package pipeline

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/fo4"
)

// The golden Stats grid pins the simulator's exact output across the
// parameter space the paper exercises: pipeline depth × window
// segmentation × partitioned selection × naive pipelining × in-order.
// The goldens in testdata/golden_stats.json were captured from the seed
// broadcast-scan simulator (before the event-driven wakeup and scratch
// reuse landed), so this test proves the optimized path reproduces the
// seed machine field-for-field. Run with -update to re-capture after an
// intentional model change.

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_stats.json from the current simulator")

// goldenStats mirrors the seed-era Stats fields. Diagnostics added after
// the seed (e.g. wakeup counters) are deliberately excluded: they did not
// exist when the goldens were captured and are pinned by their own tests.
type goldenStats struct {
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`

	BranchLookups    uint64 `json:"branch_lookups"`
	BranchMispredict uint64 `json:"branch_mispredict"`
	L1Hits           uint64 `json:"l1_hits"`
	L2Hits           uint64 `json:"l2_hits"`
	MemAccesses      uint64 `json:"mem_accesses"`
	WindowFullStalls uint64 `json:"window_full_stalls"`
	ROBFullStalls    uint64 `json:"rob_full_stalls"`

	SimCycles          uint64 `json:"sim_cycles"`
	SumWindowOcc       uint64 `json:"sum_window_occ"`
	SumIssued          uint64 `json:"sum_issued"`
	FetchBlockedCycles uint64 `json:"fetch_blocked_cycles"`
}

func toGolden(s Stats) goldenStats {
	return goldenStats{
		Instructions:       s.Instructions,
		Cycles:             s.Cycles,
		IPC:                s.IPC,
		BranchLookups:      s.BranchLookups,
		BranchMispredict:   s.BranchMispredict,
		L1Hits:             s.L1Hits,
		L2Hits:             s.L2Hits,
		MemAccesses:        s.MemAccesses,
		WindowFullStalls:   s.WindowFullStalls,
		ROBFullStalls:      s.ROBFullStalls,
		SimCycles:          s.SimCycles,
		SumWindowOcc:       s.SumWindowOcc,
		SumIssued:          s.SumIssued,
		FetchBlockedCycles: s.FetchBlockedCycles,
	}
}

// goldenCase is one cell of the equivalence grid.
type goldenCase struct {
	name string
	p    Params
}

// goldenGrid enumerates the grid at one benchmark: every machine variant
// at every depth. Names are stable — they key the golden file.
func goldenGrid() []goldenCase {
	type variant struct {
		name string
		mod  func(*Params)
	}
	variants := []variant{
		{"base", nil},
		{"ws4", func(p *Params) {
			p.Machine.UnifiedWindow = 32
			p.WindowStages = 4
		}},
		{"ws4-preselect", func(p *Params) {
			p.Machine.UnifiedWindow = 32
			p.WindowStages = 4
			p.PreSelect = []int{5, 2, 1}
		}},
		{"ws4-naive", func(p *Params) {
			p.Machine.UnifiedWindow = 32
			p.WindowStages = 4
			p.NaivePipelining = true
		}},
		{"inorder", func(p *Params) {
			p.Machine.InOrder = true
		}},
	}

	var cases []goldenCase
	for _, useful := range []float64{4, 6, 8} {
		for _, v := range variants {
			m := config.Alpha21264()
			clk := fo4.Clock{Useful: useful, Overhead: fo4.PaperOverhead}
			p := Params{Machine: m, Timing: m.Resolve(clk), Warmup: 8000}
			if v.mod != nil {
				v.mod(&p)
				// Machine edits (unified window, in-order) change the
				// resolved timing inputs only through the clock, which is
				// fixed here, so re-resolving is unnecessary; the seed
				// studies apply mods to Params the same way.
			}
			cases = append(cases, goldenCase{
				name: fmt.Sprintf("u%g/%s", useful, v.name),
				p:    p,
			})
		}
	}
	return cases
}

func TestGoldenStatsGrid(t *testing.T) {
	path := filepath.Join("testdata", "golden_stats.json")
	got := map[string]goldenStats{}
	for _, bench := range []string{"176.gcc", "171.swim", "177.mesa"} {
		tr := getTrace(t, bench, 40000)
		grid := goldenGrid()
		params := make([]Params, len(grid))
		for i, c := range grid {
			got[bench+"/"+c.name] = toGolden(Run(c.p, tr))
			params[i] = c.p
		}
		// The batched dispatch must reproduce the same goldens: every
		// variant of this benchmark through one RunBatch walk, compared
		// cell by cell against the per-cell path captured above.
		bs := NewBatchScratch()
		for i, s := range RunBatch(params, tr, bs.Lanes(len(params))) {
			if g := toGolden(s); g != got[bench+"/"+grid[i].name] {
				t.Errorf("%s/%s: batched stats diverge from per-cell run:\n got %+v\nwant %+v",
					bench, grid[i].name, g, got[bench+"/"+grid[i].name])
			}
		}
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatalf("marshal goldens: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatalf("write goldens: %v", err)
		}
		t.Logf("rewrote %s with %d cases", path, len(got))
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read goldens (run with -update to capture): %v", err)
	}
	want := map[string]goldenStats{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cases, grid has %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: in golden file but not in grid", name)
			continue
		}
		if g != w {
			t.Errorf("%s: stats diverge from seed simulator:\n got %+v\nwant %+v", name, g, w)
		}
	}
}
