package pipeline

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// RunBatch simulates one benchmark trace under every lane of params in a
// single batched pass: the depth-invariant per-benchmark work — the
// instruction decode and class flags, the tournament predictor's training
// walk, the consumer CSR (trace.ConsumerIndexOf), and the cache-prewarm
// walk — is done once and shared, while each lane keeps its own timing
// state in its Scratch. Lanes are partitioned by memory-system geometry
// in first-seen order; lanes in a partition of two or more share one
// prewarmed hierarchy template (its post-prewarm state is a pure function
// of geometry and trace, so copying it is bit-identical to rebuilding
// it), and a lane whose geometry no other lane shares falls back to the
// plain RunWith path with zero BatchLanes. Structural divergence between lanes — different
// WindowStages, PreSelect shapes, in-order vs out-of-order — is always
// allowed: each lane runs its own core loop over the shared decode.
//
// out[i] equals RunWith(params[i], tr, scratches[i]) field for field,
// except for the BatchLanes/BatchSharedDecode accounting that only
// RunBatch sets; the batch property test pins that equivalence.
// scratches must have one (possibly nil) slot per lane and, like every
// Scratch, must not be shared with concurrent calls.
func RunBatch(params []Params, tr *trace.Trace, scratches []*Scratch) []Stats {
	if len(scratches) != len(params) {
		panic("pipeline: RunBatch needs one scratch slot per lane")
	}
	out := make([]Stats, len(params))
	if len(params) == 0 {
		return out
	}

	// Fast path: every lane has the same memory-system geometry — the
	// depth-sweep shape, where lanes differ only in clock-derived timing —
	// so there is exactly one partition and no index bookkeeping.
	uniform := true
	key0 := hierKeyFor(params[0].Machine)
	for i := 1; i < len(params); i++ {
		if hierKeyFor(params[i].Machine) != key0 {
			uniform = false
			break
		}
	}
	if uniform {
		runBatchPartition(params, tr, scratches, out, nil)
	} else {
		// Mixed-machine grids (ablations, capacity studies) are rare and
		// small, so the partition bookkeeping may allocate.
		keys := make([]hierKey, len(params))
		for i := range params {
			keys[i] = hierKeyFor(params[i].Machine)
		}
		assigned := make([]bool, len(params))
		var lanes []int
		for i := range params {
			if assigned[i] {
				continue
			}
			lanes = lanes[:0]
			for j := i; j < len(params); j++ {
				if !assigned[j] && keys[j] == keys[i] {
					assigned[j] = true
					lanes = append(lanes, j)
				}
			}
			runBatchPartition(params, tr, scratches, out, lanes)
		}
	}

	// Every lane after the first consumed the decode (and predictor walk)
	// the batch's first lane built or found.
	shared := uint64(len(tr.Insts))
	for i := 1; i < len(out); i++ {
		out[i].BatchSharedDecode = shared
	}
	return out
}

// runBatchPartition runs the lanes of one geometry partition. lanes
// lists the partition's lane indices; nil means all of params (the
// uniform fast path). Single-lane partitions are the RunWith fallback;
// larger ones build the shared prewarm template once and copy it into
// every lane.
func runBatchPartition(params []Params, tr *trace.Trace, scratches []*Scratch, out []Stats, lanes []int) {
	count := len(params)
	if lanes != nil {
		count = len(lanes)
	}
	laneAt := func(k int) int {
		if lanes == nil {
			return k
		}
		return lanes[k]
	}

	if count == 1 {
		// A lane with no geometry partner shares nothing but the decode;
		// it runs the plain RunWith path and keeps BatchLanes zero, so its
		// Stats are indistinguishable from an unbatched run's.
		i := laneAt(0)
		out[i] = runWith(params[i], tr, scratches[i], nil)
		return
	}

	// Prewarm once per partition. The template lives on the partition's
	// first scratch so its allocation amortizes across batches; a nil
	// scratch (one-off callers) builds a throwaway.
	i0 := laneAt(0)
	var tmpl *mem.Hierarchy
	if s0 := scratches[i0]; s0 != nil {
		tmpl = s0.warmTemplate(params[i0].Machine)
	} else {
		tmpl = newHierarchy(params[i0].Machine)
	}
	tmpl.Coverage = tr.PrefetchCoverage
	tmpl.Prewarm(tr.HotBytes, tr.WarmBytes)

	for k := 0; k < count; k++ {
		i := laneAt(k)
		out[i] = runWith(params[i], tr, scratches[i], tmpl)
		out[i].BatchLanes = uint64(count)
	}
}

// BatchScratch owns the per-lane Scratches a RunBatch caller threads
// through successive batches, the way a single Scratch is reused across
// RunWith calls: a fresh value is valid, reuse only amortizes
// allocations, and a BatchScratch must never be shared by concurrent
// batches. The sweep engine keeps one per worker.
type BatchScratch struct {
	lanes []*Scratch
}

// NewBatchScratch returns an empty BatchScratch; lanes grow on first use.
func NewBatchScratch() *BatchScratch { return &BatchScratch{} }

// Lanes returns n scratch slots, creating any the set is still missing.
func (b *BatchScratch) Lanes(n int) []*Scratch {
	for len(b.lanes) < n {
		b.lanes = append(b.lanes, NewScratch())
	}
	return b.lanes[:n]
}
