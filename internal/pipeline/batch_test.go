package pipeline

import (
	"strconv"
	"testing"
)

// batchGrid builds a deliberately heterogeneous lane set: a depth sweep,
// the Section 5 window variants, an in-order lane, and one lane with a
// doubled L1 (a second geometry partition), so the property test covers
// the uniform fast path, structural divergence and the partition
// bookkeeping in one grid.
func batchGrid() []Params {
	var ps []Params
	for _, useful := range []float64{2, 4, 6, 8, 12, 16} {
		ps = append(ps, paramsAt(useful))
	}
	ws := paramsAt(6)
	ws.Machine.UnifiedWindow = 32
	ws.WindowStages = 4
	ps = append(ps, ws)

	pre := ws
	pre.PreSelect = []int{5, 2, 1}
	ps = append(ps, pre)

	naive := ws
	naive.NaivePipelining = true
	ps = append(ps, naive)

	ino := paramsAt(8)
	ino.Machine.InOrder = true
	ps = append(ps, ino)

	bigL1 := paramsAt(6)
	bigL1.Machine.Structures.DL1.CapacityBytes *= 2
	ps = append(ps, bigL1)
	return ps
}

// TestRunBatchMatchesRunWith is the batch equivalence property: for
// every lane of a mixed grid, RunBatch(params, tr, ...)[i] equals
// RunWith(params[i], tr, ...) field for field once the batch accounting
// counters are cleared — N batched lanes are indistinguishable from N
// independent runs. CI runs the package under -race, so the shared
// decode and template state also get the data-race treatment here.
func TestRunBatchMatchesRunWith(t *testing.T) {
	params := batchGrid()
	for _, bench := range []string{"176.gcc", "171.swim"} {
		tr := getTrace(t, bench, 20000)

		bs := NewBatchScratch()
		got := RunBatch(params, tr, bs.Lanes(len(params)))

		s := NewScratch()
		for i, p := range params {
			want := RunWith(p, tr, s)
			g := got[i]
			g.BatchLanes, g.BatchSharedDecode = 0, 0
			if g != want {
				t.Errorf("%s lane %d: batched stats diverge:\n got %+v\nwant %+v", bench, i, g, want)
			}
		}

		// Second pass on the same BatchScratch: reuse must not leak state.
		again := RunBatch(params, tr, bs.Lanes(len(params)))
		for i := range got {
			if got[i] != again[i] {
				t.Errorf("%s lane %d: batch reuse diverges", bench, i)
			}
		}
	}
}

// TestRunBatchAccounting pins the batch counters: a uniform-geometry
// batch reports its lane count on every lane, every lane after the
// first reports the shared decode length, and a single-lane batch is
// indistinguishable from an unbatched run (zero counters).
func TestRunBatchAccounting(t *testing.T) {
	tr := getTrace(t, "176.gcc", 20000)
	params := []Params{paramsAt(4), paramsAt(6), paramsAt(8)}
	bs := NewBatchScratch()
	out := RunBatch(params, tr, bs.Lanes(len(params)))
	for i, s := range out {
		if s.BatchLanes != 3 {
			t.Errorf("lane %d: BatchLanes = %d, want 3", i, s.BatchLanes)
		}
		wantShared := uint64(0)
		if i > 0 {
			wantShared = uint64(len(tr.Insts))
		}
		if s.BatchSharedDecode != wantShared {
			t.Errorf("lane %d: BatchSharedDecode = %d, want %d", i, s.BatchSharedDecode, wantShared)
		}
	}

	single := RunBatch(params[:1], tr, bs.Lanes(1))
	if single[0].BatchLanes != 0 || single[0].BatchSharedDecode != 0 {
		t.Errorf("single-lane batch carries batch counters: %+v", single[0])
	}
	if want := RunWith(params[0], tr, NewScratch()); single[0] != want {
		t.Errorf("single-lane batch diverges from RunWith:\n got %+v\nwant %+v", single[0], want)
	}
}

// TestRunBatchSteadyStateAllocs pins the batch dispatch's allocation
// economy: once a BatchScratch has served one batch, later batches of
// the same shape allocate only the result slice, independent of lane
// count.
func TestRunBatchSteadyStateAllocs(t *testing.T) {
	tr := getTrace(t, "176.gcc", 20000)
	params := make([]Params, 0, 15)
	for u := 2; u <= 16; u++ {
		params = append(params, paramsAt(float64(u)))
	}
	bs := NewBatchScratch()
	RunBatch(params, tr, bs.Lanes(len(params))) // warm the scratch set

	allocs := testing.AllocsPerRun(3, func() {
		RunBatch(params, tr, bs.Lanes(len(params)))
	})
	// One allocation for the out []Stats; anything more means per-lane
	// state stopped being reused.
	if allocs > 2 {
		t.Errorf("steady-state RunBatch allocates %.1f objects per 15-lane batch, want <= 2", allocs)
	}
}

// benchBatch measures one RunBatch call per iteration at the given lane
// count. The 1-lane case prices the fallback against BenchmarkRunOutOfOrder;
// the 15-lane case is the depth-sweep shape (useful 2..16) whose
// per-benchmark sharing the batched engine dispatch rides on.
func benchBatch(b *testing.B, bench string, lanes int) {
	tr := getTrace(b, bench, 40000)
	params := make([]Params, 0, lanes)
	for i := 0; i < lanes; i++ {
		params = append(params, paramsAt(float64(2+i)))
	}
	bs := NewBatchScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunBatch(params, tr, bs.Lanes(len(params)))
	}
}

func BenchmarkRunBatch(b *testing.B) {
	for _, bench := range []string{"176.gcc", "171.swim"} {
		for _, lanes := range []int{1, 15} {
			b.Run(bench+"/lanes="+strconv.Itoa(lanes), func(b *testing.B) {
				benchBatch(b, bench, lanes)
			})
		}
	}
}
