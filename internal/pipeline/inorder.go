package pipeline

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// runInOrder simulates the Section 4.1 machine: a seven-stage in-order
// pipeline (fetch, decode, issue, register read, execute, write back,
// commit) with the Alpha 21264's widths, scaled in depth exactly like the
// out-of-order core. Because issue is in program order, the simulation is
// a timestamp recurrence: each instruction issues at the earliest cycle
// that satisfies program order, issue bandwidth, operand readiness (with
// full bypass), and fetch delivery — no issue window exists.
func runInOrder(p Params, tr *trace.Trace, scr *Scratch, warm *mem.Hierarchy) Stats {
	m := p.Machine
	tmg := p.Timing
	n := len(tr.Insts)
	if n == 0 {
		panic("pipeline: empty trace")
	}

	// Shared depth-invariant decode; see runOutOfOrder.
	dec := decodeOf(tr)
	flags, class := dec.flags, dec.class
	src1s, src2s, addrs := dec.src1, dec.src2, dec.addr

	hier := scr.hierarchyFor(m, tr, warm)
	var lat latEnv
	lat.init(&p, hier)
	perfectBranches := m.PerfectBranches
	stats := Stats{}

	frontDepth := int64(maxInt(tmg.IL1, tmg.BPred) + 1) // fetch + decode
	commitDepth := int64(tmg.RegRead + 1 + 1)           // regread + wb + commit

	// Result availability for consumers. Zeroed (not pending) to match
	// the recurrence's contract: slot i is written at step i, and sources
	// always point backwards, so a zero is only ever read for a
	// malformed forward dependence — where it deterministically means
	// "ready", exactly as a freshly allocated array would.
	scr.arenas(n)
	times := scr.times
	for i := range times {
		times[i].data = 0
	}

	var (
		fetchCycle   int64 // cycle the current fetch group started
		fetchInGroup int   // instructions fetched this cycle
		issueCycle   int64 // last issue cycle assigned
		issueInCycle int   // instructions issued in issueCycle
		fpInCycle    int
		lastCommit   int64
		prevCommit   int64
		warmCycle    int64 = -1
		warmIdx            = p.Warmup
	)
	if warmIdx >= n {
		warmIdx = 0
	}

	for i := 0; i < n; i++ {
		f := flags[i]

		// ---- Fetch: bandwidth FetchWidth per cycle; a taken branch ends
		// the group; a mispredicted branch stalls fetch until it resolves
		// and the front end refills.
		if fetchInGroup >= m.FetchWidth {
			fetchCycle++
			fetchInGroup = 0
		}
		myFetch := fetchCycle
		fetchInGroup++

		// ---- Issue: in order, at most IntIssue+FPIssue per cycle with at
		// most FPIssue floating-point operations among them; operands must
		// be ready (full bypass from any producer).
		earliest := myFetch + frontDepth + 1 // decode → issue stage
		if earliest < issueCycle {
			earliest = issueCycle
		}
		ready := earliest
		if s1 := src1s[i]; s1 >= 0 && times[s1].data > ready {
			ready = times[s1].data
		}
		if s2 := src2s[i]; s2 >= 0 && times[s2].data > ready {
			ready = times[s2].data
		}

		// Find a cycle with issue bandwidth left.
		isFP := f&dFP != 0
		for {
			if ready > issueCycle {
				issueCycle = ready
				issueInCycle = 0
				fpInCycle = 0
			}
			if issueInCycle < m.IntIssue+m.FPIssue && (!isFP || fpInCycle < m.FPIssue) {
				break
			}
			ready = issueCycle + 1
		}
		issueInCycle++
		if isFP {
			fpInCycle++
		}
		issued := issueCycle

		// ---- Execute.
		execLat := lat.latency(f, class[i], addrs[i], &stats)
		times[i].data = issued + execLat

		// ---- Branches: resolve at execute; a misprediction stalls fetch
		// until resolution plus the redirect.
		if f&dBranch != 0 {
			stats.BranchLookups++
			if f&dMispredict != 0 && !perfectBranches {
				stats.BranchMispredict++
				restart := issued + execLat + 1 + int64(p.ExtraMispredict)
				if restart > fetchCycle {
					fetchCycle = restart
					fetchInGroup = 0
				}
			} else if f&dTaken != 0 {
				// Correctly predicted taken branch: fetch group ends.
				fetchCycle++
				fetchInGroup = 0
			}
		}

		// ---- Commit: in order.
		c := times[i].data + commitDepth
		if c < prevCommit {
			c = prevCommit
		}
		prevCommit = c
		lastCommit = c
		if i == warmIdx {
			warmCycle = c
		}
	}

	total := uint64(n - warmIdx)
	if warmCycle < 0 {
		warmCycle = 0
		total = uint64(n)
	}
	cycles := uint64(lastCommit - warmCycle + 1)
	stats.Instructions = total
	stats.Cycles = cycles
	stats.IPC = float64(total) / float64(cycles)
	return stats
}
