package pipeline

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// runInOrder simulates the Section 4.1 machine: a seven-stage in-order
// pipeline (fetch, decode, issue, register read, execute, write back,
// commit) with the Alpha 21264's widths, scaled in depth exactly like the
// out-of-order core. Because issue is in program order, the simulation is
// a timestamp recurrence: each instruction issues at the earliest cycle
// that satisfies program order, issue bandwidth, operand readiness (with
// full bypass), and fetch delivery — no issue window exists.
func runInOrder(p Params, tr *trace.Trace, scr *Scratch) Stats {
	m := p.Machine
	tmg := p.Timing
	insts := tr.Insts
	n := len(insts)
	if n == 0 {
		panic("pipeline: empty trace")
	}

	pred := scr.predictor()
	hier := scr.hierarchy(m)
	hier.Coverage = tr.PrefetchCoverage
	hier.Prewarm(tr.HotBytes, tr.WarmBytes)
	stats := Stats{}

	frontDepth := int64(maxInt(tmg.IL1, tmg.BPred) + 1) // fetch + decode
	commitDepth := int64(tmg.RegRead + 1 + 1)           // regread + wb + commit

	// Result availability for consumers. Zeroed (not pending) to match
	// the recurrence's contract: slot i is written at step i, and sources
	// always point backwards, so a zero is only ever read for a
	// malformed forward dependence — where it deterministically means
	// "ready", exactly as a freshly allocated array would.
	scr.arenas(n)
	dataAt := scr.dataAt
	for i := range dataAt {
		dataAt[i] = 0
	}

	var (
		fetchCycle   int64 // cycle the current fetch group started
		fetchInGroup int   // instructions fetched this cycle
		issueCycle   int64 // last issue cycle assigned
		issueInCycle int   // instructions issued in issueCycle
		fpInCycle    int
		lastCommit   int64
		prevCommit   int64
		warmCycle    int64 = -1
		warmIdx            = p.Warmup
	)
	if warmIdx >= n {
		warmIdx = 0
	}

	for i := 0; i < n; i++ {
		in := insts[i]

		// ---- Fetch: bandwidth FetchWidth per cycle; a taken branch ends
		// the group; a mispredicted branch stalls fetch until it resolves
		// and the front end refills.
		if fetchInGroup >= m.FetchWidth {
			fetchCycle++
			fetchInGroup = 0
		}
		myFetch := fetchCycle
		fetchInGroup++

		// ---- Issue: in order, at most IntIssue+FPIssue per cycle with at
		// most FPIssue floating-point operations among them; operands must
		// be ready (full bypass from any producer).
		earliest := myFetch + frontDepth + 1 // decode → issue stage
		if earliest < issueCycle {
			earliest = issueCycle
		}
		ready := earliest
		if in.Src1 >= 0 && dataAt[in.Src1] > ready {
			ready = dataAt[in.Src1]
		}
		if in.Src2 >= 0 && dataAt[in.Src2] > ready {
			ready = dataAt[in.Src2]
		}

		// Find a cycle with issue bandwidth left.
		isFP := in.Class.IsFP()
		for {
			if ready > issueCycle {
				issueCycle = ready
				issueInCycle = 0
				fpInCycle = 0
			}
			if issueInCycle < m.IntIssue+m.FPIssue && (!isFP || fpInCycle < m.FPIssue) {
				break
			}
			ready = issueCycle + 1
		}
		issueInCycle++
		if isFP {
			fpInCycle++
		}
		issued := issueCycle

		// ---- Execute.
		lat := execLatency(p, in, hier, &stats)
		dataAt[i] = issued + lat

		// ---- Branches: resolve at execute; a misprediction stalls fetch
		// until resolution plus the redirect.
		if in.Class == isa.Branch {
			guess := pred.Predict(in.PC)
			pred.Update(in.PC, in.Taken, guess)
			if m.PerfectBranches {
				guess = in.Taken
			}
			stats.BranchLookups++
			if guess != in.Taken {
				stats.BranchMispredict++
				restart := issued + lat + 1 + int64(p.ExtraMispredict)
				if restart > fetchCycle {
					fetchCycle = restart
					fetchInGroup = 0
				}
			} else if in.Taken {
				// Correctly predicted taken branch: fetch group ends.
				fetchCycle++
				fetchInGroup = 0
			}
		}

		// ---- Commit: in order.
		c := dataAt[i] + commitDepth
		if c < prevCommit {
			c = prevCommit
		}
		prevCommit = c
		lastCommit = c
		if i == warmIdx {
			warmCycle = c
		}
	}

	total := uint64(n - warmIdx)
	if warmCycle < 0 {
		warmCycle = 0
		total = uint64(n)
	}
	cycles := uint64(lastCommit - warmCycle + 1)
	stats.Instructions = total
	stats.Cycles = cycles
	stats.IPC = float64(total) / float64(cycles)
	return stats
}
