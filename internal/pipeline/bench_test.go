package pipeline

import (
	"testing"
)

// Microbenchmarks for the simulator hot loop: one Run per iteration, one
// sub-benchmark per workload class mix (the three groups the paper's
// figures split on) and per window variant. ReportAllocs makes the
// steady-state allocation behaviour a first-class benchmark output, so a
// regression shows up per-package instead of hiding inside the end-to-end
// figure benchmarks; cmd/benchdiff compares runs.

// benchMixes names one benchmark per group: integer, vector FP, and
// non-vector FP exercise the branchy, latency-tolerant and mixed paths of
// the issue loop respectively.
var benchMixes = []string{"176.gcc", "171.swim", "177.mesa"}

func benchRun(b *testing.B, mod func(*Params)) {
	for _, name := range benchMixes {
		b.Run(name, func(b *testing.B) {
			tr := getTrace(b, name, 40000)
			p := paramsAt(6)
			if mod != nil {
				mod(&p)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var s Stats
			for i := 0; i < b.N; i++ {
				s = Run(p, tr)
			}
			b.ReportMetric(s.IPC, "IPC")
		})
	}
}

func BenchmarkRunOutOfOrder(b *testing.B) {
	benchRun(b, nil)
}

func BenchmarkRunSegmented(b *testing.B) {
	benchRun(b, func(p *Params) {
		p.Machine.UnifiedWindow = 32
		p.WindowStages = 4
	})
}

func BenchmarkRunPreSelect(b *testing.B) {
	benchRun(b, func(p *Params) {
		p.Machine.UnifiedWindow = 32
		p.WindowStages = 4
		p.PreSelect = []int{5, 2, 1}
	})
}

func BenchmarkRunInOrder(b *testing.B) {
	benchRun(b, func(p *Params) {
		p.Machine.InOrder = true
	})
}
