package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/fo4"
	"repro/internal/trace"
)

// benchTrace caches generated traces across tests.
var benchTraces = map[string]*trace.Trace{}

func getTrace(t testing.TB, name string, n int) *trace.Trace {
	t.Helper()
	key := name
	if tr, ok := benchTraces[key]; ok && len(tr.Insts) >= n {
		return tr
	}
	p, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	tr := p.Generate(n, 1)
	benchTraces[key] = tr
	return tr
}

func paramsAt(useful float64) Params {
	m := config.Alpha21264()
	clk := fo4.Clock{Useful: useful, Overhead: fo4.PaperOverhead}
	return Params{Machine: m, Timing: m.Resolve(clk), Warmup: 8000}
}

func TestRunDeterministic(t *testing.T) {
	tr := getTrace(t, "176.gcc", 40000)
	a := Run(paramsAt(6), tr)
	b := Run(paramsAt(6), tr)
	if a != b {
		t.Errorf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestIPCWithinPhysicalBounds(t *testing.T) {
	for _, name := range []string{"176.gcc", "171.swim", "177.mesa"} {
		tr := getTrace(t, name, 40000)
		s := Run(paramsAt(6), tr)
		if s.IPC <= 0 || s.IPC > 6 {
			t.Errorf("%s: IPC = %v outside (0, issue width]", name, s.IPC)
		}
		if s.Cycles == 0 || s.Instructions == 0 {
			t.Errorf("%s: empty stats", name)
		}
	}
}

func TestOutOfOrderBeatsInOrder(t *testing.T) {
	tr := getTrace(t, "176.gcc", 40000)
	ooo := Run(paramsAt(6), tr)

	p := paramsAt(6)
	p.Machine.InOrder = true
	ino := Run(p, tr)
	if ooo.IPC <= ino.IPC {
		t.Errorf("OoO IPC (%.3f) not above in-order IPC (%.3f)", ooo.IPC, ino.IPC)
	}
}

func TestDeeperClockLowersIPC(t *testing.T) {
	// IPC must fall monotonically as the pipeline deepens (latencies in
	// cycles grow): the effect behind every figure in the paper.
	for _, name := range []string{"176.gcc", "171.swim"} {
		tr := getTrace(t, name, 40000)
		prev := -1.0
		for _, u := range []float64{2, 4, 6, 8, 12, 16} {
			s := Run(paramsAt(u), tr)
			if prev > 0 && s.IPC <= prev {
				t.Errorf("%s: IPC did not increase from deeper to shallower at t=%v", name, u)
			}
			prev = s.IPC
		}
	}
}

func TestCriticalLoopExtensionsHurt(t *testing.T) {
	tr := getTrace(t, "176.gcc", 40000)
	base := Run(paramsAt(6), tr).IPC
	for name, mod := range map[string]func(*Params){
		"wakeup":    func(p *Params) { p.ExtraWakeup = 4 },
		"load-use":  func(p *Params) { p.ExtraLoadUse = 4 },
		"mispredct": func(p *Params) { p.ExtraMispredict = 4 },
	} {
		p := paramsAt(6)
		mod(&p)
		if got := Run(p, tr).IPC; got >= base {
			t.Errorf("extending %s loop did not lower IPC (%.3f vs %.3f)", name, got, base)
		}
	}
}

func TestIssueWakeupMostCritical(t *testing.T) {
	// Figure 8's ordering on a single benchmark: stretching issue-wakeup
	// costs more than load-use, which costs more than mispredict.
	tr := getTrace(t, "176.gcc", 40000)
	m := config.Alpha21264()
	base := Params{Machine: m, Timing: config.Alpha21264Timing(), Warmup: 8000}
	ipc := func(mod func(*Params)) float64 {
		p := base
		mod(&p)
		return Run(p, tr).IPC
	}
	w := ipc(func(p *Params) { p.ExtraWakeup = 8 })
	l := ipc(func(p *Params) { p.ExtraLoadUse = 8 })
	b := ipc(func(p *Params) { p.ExtraMispredict = 8 })
	if !(w < l && l < b) {
		t.Errorf("loop sensitivity ordering violated: wakeup %.3f, load-use %.3f, mispredict %.3f", w, l, b)
	}
}

func TestSegmentedWindowMonotone(t *testing.T) {
	tr := getTrace(t, "176.gcc", 40000)
	m := config.Alpha21264()
	m.UnifiedWindow = 32
	base := Params{Machine: m, Timing: config.Alpha21264Timing(), Warmup: 8000}
	prev := -1.0
	var first float64
	for stages := 1; stages <= 10; stages++ {
		p := base
		p.WindowStages = stages
		got := Run(p, tr).IPC
		if stages == 1 {
			first = got
		}
		if prev > 0 && got > prev*1.002 {
			t.Errorf("IPC rose when pipelining the window deeper (stages %d: %.4f > %.4f)", stages, got, prev)
		}
		prev = got
	}
	if loss := 1 - prev/first; loss < 0.03 || loss > 0.35 {
		t.Errorf("10-stage window loss = %.1f%%, want a moderate degradation", loss*100)
	}
}

func TestSegmentationBeatsNaivePipelining(t *testing.T) {
	// Section 5's claim: segmenting the window preserves back-to-back
	// issue for nearby dependents, so it loses far less IPC than naive
	// pipelining at the same depth.
	tr := getTrace(t, "176.gcc", 40000)
	m := config.Alpha21264()
	m.UnifiedWindow = 32
	base := Params{Machine: m, Timing: config.Alpha21264Timing(), Warmup: 8000}

	seg := base
	seg.WindowStages = 4
	naive := base
	naive.WindowStages = 4
	naive.NaivePipelining = true

	segIPC := Run(seg, tr).IPC
	naiveIPC := Run(naive, tr).IPC
	if segIPC <= naiveIPC {
		t.Errorf("segmented (%.3f) not better than naive pipelining (%.3f)", segIPC, naiveIPC)
	}
}

func TestPreSelectCostsLittle(t *testing.T) {
	// The Figure 12 partitioned selection restricts the upper stages'
	// visibility: IPC drops relative to full select, but only modestly.
	tr := getTrace(t, "176.gcc", 40000)
	m := config.Alpha21264()
	m.UnifiedWindow = 32
	base := Params{Machine: m, Timing: config.Alpha21264Timing(), Warmup: 8000}

	conv := Run(base, tr).IPC
	sel := base
	sel.WindowStages = 4
	sel.PreSelect = []int{5, 2, 1}
	got := Run(sel, tr).IPC
	rel := got / conv
	if rel >= 1.0 || rel < 0.80 {
		t.Errorf("partitioned select relative IPC = %.3f, want a small loss", rel)
	}
}

func TestPerfectMemoryHelps(t *testing.T) {
	tr := getTrace(t, "181.mcf", 40000)
	base := Run(paramsAt(6), tr).IPC
	p := paramsAt(6)
	p.Machine.PerfectMemory = true
	if got := Run(p, tr).IPC; got <= base {
		t.Errorf("perfect memory did not help mcf (%.3f vs %.3f)", got, base)
	}
}

func TestPerfectBranchesHelp(t *testing.T) {
	tr := getTrace(t, "176.gcc", 40000)
	base := Run(paramsAt(6), tr)
	p := paramsAt(6)
	p.Machine.PerfectBranches = true
	got := Run(p, tr)
	if got.IPC <= base.IPC {
		t.Errorf("perfect branches did not help gcc (%.3f vs %.3f)", got.IPC, base.IPC)
	}
	if got.BranchMispredict != 0 {
		t.Errorf("perfect branches still mispredicted %d times", got.BranchMispredict)
	}
}

func TestSmallerWindowLowersIPC(t *testing.T) {
	tr := getTrace(t, "171.swim", 40000)
	base := Run(paramsAt(6), tr).IPC
	p := paramsAt(6)
	p.Machine.IntWindow = 4
	p.Machine.FPWindow = 4
	if got := Run(p, tr).IPC; got >= base {
		t.Errorf("tiny window did not lower IPC (%.3f vs %.3f)", got, base)
	}
}

func TestLoadStatsAccountAllLoads(t *testing.T) {
	tr := getTrace(t, "176.gcc", 40000)
	s := Run(paramsAt(6), tr)
	var loads uint64
	for _, in := range tr.Insts {
		if in.Class.String() == "load" {
			loads++
		}
	}
	if got := s.L1Hits + s.L2Hits + s.MemAccesses; got != loads {
		t.Errorf("load accounting: %d classified vs %d loads in trace", got, loads)
	}
}

func TestInOrderDeterministicAndBounded(t *testing.T) {
	tr := getTrace(t, "252.eon", 40000)
	p := paramsAt(6)
	p.Machine.InOrder = true
	a := Run(p, tr)
	b := Run(p, tr)
	if a != b {
		t.Error("in-order runs differ")
	}
	if a.IPC <= 0 || a.IPC > float64(p.Machine.IntIssue+p.Machine.FPIssue) {
		t.Errorf("in-order IPC = %v out of bounds", a.IPC)
	}
}

func TestEmptyTracePanics(t *testing.T) {
	for _, inorder := range []bool{false, true} {
		p := paramsAt(6)
		p.Machine.InOrder = inorder
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("inorder=%v: expected panic on empty trace", inorder)
				}
			}()
			Run(p, &trace.Trace{Name: "empty"})
		}()
	}
}

func TestCrayMachineRunsFlat(t *testing.T) {
	tr := getTrace(t, "176.gcc", 40000)
	m := config.Cray1SMemorySystem()
	clk := fo4.Clock{Useful: 6, Overhead: fo4.PaperOverhead}
	s := Run(Params{Machine: m, Timing: m.Resolve(clk), Warmup: 8000}, tr)
	if s.L1Hits != 0 || s.L2Hits != 0 {
		t.Errorf("Cray mode recorded cache hits: L1=%d L2=%d", s.L1Hits, s.L2Hits)
	}
	if s.MemAccesses == 0 {
		t.Error("Cray mode recorded no memory accesses")
	}
}
