package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/fo4"
	"repro/internal/isa"
	"repro/internal/trace"
)

func inorderParams() Params {
	m := config.InOrder7Stage()
	return Params{Machine: m, Timing: config.Alpha21264Timing()}
}

func TestInOrderChainSerializes(t *testing.T) {
	// An in-order machine on a strict chain is bounded by the ALU latency
	// exactly like the out-of-order one (nothing to reorder).
	s := Run(inorderParams(), chainTrace(20000))
	if s.IPC > 1.001 {
		t.Errorf("in-order chain IPC = %.3f > 1", s.IPC)
	}
}

func TestInOrderIndependentBoundedByIssueWidth(t *testing.T) {
	// Independent ops run at the fetch/issue width.
	s := Run(inorderParams(), independentTrace(20000))
	if s.IPC < 3.0 || s.IPC > 4.001 {
		t.Errorf("in-order independent IPC = %.3f, want ~4", s.IPC)
	}
}

func TestInOrderStallsOnLoadUse(t *testing.T) {
	// In-order issue cannot slip past a load-use dependence: interleaving
	// loads with dependent consumers costs roughly the DL1 latency per
	// pair, where the out-of-order core overlaps independent pairs.
	tr := &trace.Trace{Name: "loaduse", Group: trace.Integer, HotBytes: 4096, WarmBytes: 32 << 10}
	tr.PrefetchCoverage = 1
	for i := 0; i < 20000; i += 2 {
		tr.Insts = append(tr.Insts,
			trace.Inst{Class: isa.Load, Src1: -1, Src2: -1, Addr: 64},
			trace.Inst{Class: isa.IntAlu, Src1: int32(i), Src2: -1})
	}
	ino := Run(inorderParams(), tr)

	m := config.Alpha21264()
	ooo := Run(Params{Machine: m, Timing: config.Alpha21264Timing()}, tr)
	if ooo.IPC <= ino.IPC*1.3 {
		t.Errorf("OoO (%.3f) should clearly beat in-order (%.3f) on load-use pairs",
			ooo.IPC, ino.IPC)
	}
	// In-order bound: 2 instructions per ~DL1(3)+1 cycles.
	if ino.IPC > 1.0 {
		t.Errorf("in-order load-use IPC = %.3f, above the stall bound", ino.IPC)
	}
}

func TestInOrderFPWidthRespected(t *testing.T) {
	// A pure FP-add stream is capped by the 2-wide FP issue.
	tr := &trace.Trace{Name: "fp", Group: trace.VectorFP}
	for i := 0; i < 20000; i++ {
		tr.Insts = append(tr.Insts, trace.Inst{Class: isa.FPAdd, Src1: -1, Src2: -1})
	}
	s := Run(inorderParams(), tr)
	if s.IPC > 2.001 {
		t.Errorf("FP stream IPC = %.3f, above the 2-wide FP issue", s.IPC)
	}
	if s.IPC < 1.6 {
		t.Errorf("FP stream IPC = %.3f; independent adds should near the width", s.IPC)
	}
}

func TestInOrderMispredictsCostMoreAtDepth(t *testing.T) {
	// The same benchmark at a deeper clock pays a longer refill per
	// mispredict: IPC must fall.
	prof, _ := trace.ByName("176.gcc")
	tr := prof.Generate(30000, 1)
	m := config.InOrder7Stage()
	shallow := Run(Params{Machine: m, Timing: m.Resolve(clockAtUseful(12)), Warmup: 6000}, tr)
	deep := Run(Params{Machine: m, Timing: m.Resolve(clockAtUseful(3)), Warmup: 6000}, tr)
	if deep.IPC >= shallow.IPC {
		t.Errorf("deep in-order IPC (%.3f) not below shallow (%.3f)", deep.IPC, shallow.IPC)
	}
}

func TestInOrderBelowOutOfOrderOnSuite(t *testing.T) {
	// Figure 5 vs Figure 4b: dynamic scheduling wins on every benchmark
	// group representative.
	for _, name := range []string{"176.gcc", "171.swim", "177.mesa"} {
		prof, _ := trace.ByName(name)
		tr := prof.Generate(30000, 1)
		mI := config.InOrder7Stage()
		mO := config.Alpha21264()
		clk := clockAtUseful(6)
		ino := Run(Params{Machine: mI, Timing: mI.Resolve(clk), Warmup: 6000}, tr)
		ooo := Run(Params{Machine: mO, Timing: mO.Resolve(clk), Warmup: 6000}, tr)
		if ooo.IPC <= ino.IPC {
			t.Errorf("%s: OoO (%.3f) not above in-order (%.3f)", name, ooo.IPC, ino.IPC)
		}
	}
}

func clockAtUseful(u float64) fo4.Clock {
	return fo4.Clock{Useful: u, Overhead: fo4.PaperOverhead}
}
