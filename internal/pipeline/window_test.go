package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
)

// chainTrace builds a tiny hand-crafted trace: a strict dependence chain
// of n single-cycle ALU operations, each depending on its predecessor.
func chainTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "chain", Group: trace.Integer}
	for i := 0; i < n; i++ {
		in := trace.Inst{Class: isa.IntAlu, Src1: int32(i - 1), Src2: -1}
		tr.Insts = append(tr.Insts, in)
	}
	return tr
}

// independentTrace builds n ALU operations with no dependences at all.
func independentTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "indep", Group: trace.Integer}
	for i := 0; i < n; i++ {
		tr.Insts = append(tr.Insts, trace.Inst{Class: isa.IntAlu, Src1: -1, Src2: -1})
	}
	return tr
}

func alphaParams() Params {
	m := config.Alpha21264()
	return Params{Machine: m, Timing: config.Alpha21264Timing()}
}

func TestChainIPCBoundedByLatency(t *testing.T) {
	// A strict single-cycle chain can never exceed IPC 1 and should get
	// close to it on the Alpha-latency machine (back-to-back issue).
	s := Run(alphaParams(), chainTrace(20000))
	if s.IPC > 1.001 {
		t.Errorf("chain IPC = %.3f, above the dataflow bound of 1", s.IPC)
	}
	if s.IPC < 0.9 {
		t.Errorf("chain IPC = %.3f; back-to-back issue should approach 1", s.IPC)
	}
}

func TestIndependentCodeReachesIssueWidth(t *testing.T) {
	// Fully independent ALU operations should saturate the 4-wide integer
	// issue (fetch is also 4-wide, so 4 is the machine bound).
	s := Run(alphaParams(), independentTrace(20000))
	if s.IPC < 3.5 || s.IPC > 4.001 {
		t.Errorf("independent IPC = %.3f, want ~4 (issue width)", s.IPC)
	}
}

func TestNaivePipeliningSlowsChainByDepth(t *testing.T) {
	// Under naive W-stage window pipelining a dependent pair issues every
	// W cycles: chain IPC ≈ 1/W. The segmented window must do far better
	// because the chain's head lives in stage 1.
	p := alphaParams()
	p.Machine.UnifiedWindow = 32
	p.WindowStages = 4
	p.NaivePipelining = true
	naive := Run(p, chainTrace(10000))
	if naive.IPC > 0.27 || naive.IPC < 0.2 {
		t.Errorf("naive 4-stage chain IPC = %.3f, want ~0.25", naive.IPC)
	}

	p.NaivePipelining = false
	seg := Run(p, chainTrace(10000))
	if seg.IPC < 0.9 {
		t.Errorf("segmented chain IPC = %.3f; stage-1 back-to-back issue lost", seg.IPC)
	}
}

func TestSegmentedWindowPenalizesDistantDependents(t *testing.T) {
	// Construct bursts: one producer followed by many independent fillers
	// and then a dependent far enough back in the window to sit in an
	// upper segment when the producer issues. Segmentation should cost
	// measurable IPC versus a single-segment window on this pattern,
	// because the filler pressure keeps the window full.
	tr := &trace.Trace{Name: "burst", Group: trace.Integer}
	const n = 30000
	for i := 0; i < n; i++ {
		in := trace.Inst{Class: isa.IntMult, Src1: -1, Src2: -1}
		if i%8 == 7 {
			in = trace.Inst{Class: isa.IntAlu, Src1: int32(i - 7), Src2: -1}
		}
		tr.Insts = append(tr.Insts, in)
	}
	p := alphaParams()
	p.Machine.UnifiedWindow = 32
	base := Run(p, tr)
	p.WindowStages = 8
	seg := Run(p, tr)
	if seg.IPC > base.IPC {
		t.Errorf("segmentation improved IPC (%.3f > %.3f)", seg.IPC, base.IPC)
	}
}

func TestPreSelectQuotasRespected(t *testing.T) {
	// Build a stream whose oldest window entries are blocked: a serial
	// multiply chain interleaved with independent ALU work. The ready ALU
	// operations then sit in the upper window stages, where they can only
	// issue through the pre-selection quotas — zero quotas must cost IPC
	// versus the paper's 5/2/1.
	// Groups of 31: an L2-hit load, ten consumers of it (they pile up in
	// stage 1, operand-blocked for the ~20-cycle L2 latency), then twenty
	// independent ALU operations that land in the upper stages.
	tr := &trace.Trace{Name: "blocked", Group: trace.Integer, HotBytes: 16 << 10, WarmBytes: 2 << 20}
	tr.PrefetchCoverage = 1e-9 // no prefetch: keep the loads missing L1
	const groups = 600
	addr := uint64(0)
	for g := 0; g < groups; g++ {
		base := int32(len(tr.Insts))
		addr = (addr + 4096) % (1 << 20) // stride past the L1, stay in the warm L2
		tr.Insts = append(tr.Insts, trace.Inst{Class: isa.Load, Src1: -1, Src2: -1, Addr: addr})
		for k := 0; k < 10; k++ {
			tr.Insts = append(tr.Insts, trace.Inst{Class: isa.IntAlu, Src1: base, Src2: -1})
		}
		for k := 0; k < 20; k++ {
			tr.Insts = append(tr.Insts, trace.Inst{Class: isa.IntAlu, Src1: -1, Src2: -1})
		}
	}
	p := alphaParams()
	p.Machine.UnifiedWindow = 32
	p.WindowStages = 4
	p.PreSelect = []int{0, 0, 0}
	zero := Run(p, tr)

	p.PreSelect = []int{5, 2, 1}
	some := Run(p, tr)
	if zero.IPC >= some.IPC {
		t.Errorf("pre-select quotas did not help (%.3f vs %.3f)", zero.IPC, some.IPC)
	}
}

func TestUnifiedWindowMatchesSplitOnIntOnlyCode(t *testing.T) {
	// Integer-only code never touches the FP queue: a unified window of
	// the same total size should perform at least as well as the split.
	tr := independentTrace(20000)
	split := Run(alphaParams(), tr)
	p := alphaParams()
	p.Machine.UnifiedWindow = 35
	unified := Run(p, tr)
	if unified.IPC < split.IPC*0.98 {
		t.Errorf("unified window slower (%.3f) than split (%.3f) on int-only code",
			unified.IPC, split.IPC)
	}
}

func TestLoadChainGatedByDL1Latency(t *testing.T) {
	// A pointer-chase (each load's address depends on the previous load)
	// is bounded by 1/DL1 IPC. All addresses hit the same line, so every
	// access is an L1 hit.
	tr := &trace.Trace{Name: "ptrchase", Group: trace.Integer, HotBytes: 4096, WarmBytes: 32 << 10}
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insts = append(tr.Insts, trace.Inst{Class: isa.Load, Src1: int32(i - 1), Src2: -1, Addr: 64})
	}
	tr.PrefetchCoverage = 1
	p := alphaParams() // DL1 = 3 cycles on the 21264
	s := Run(p, tr)
	want := 1.0 / 3
	if s.IPC > want*1.05 || s.IPC < want*0.85 {
		t.Errorf("pointer-chase IPC = %.3f, want ~%.3f (1/DL1)", s.IPC, want)
	}
}
