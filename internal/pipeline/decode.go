package pipeline

import (
	"sync"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Per-instruction decode flags. One byte per instruction carries
// everything the cycle loops branch on, so the hot paths test a bit
// instead of loading a 32-byte trace.Inst and re-deriving class
// predicates per lane.
const (
	dFP         uint8 = 1 << iota // executes on the floating-point cluster
	dBranch                       // conditional branch
	dLoad                         // data-cache read
	dStore                        // data-cache write
	dTaken                        // branch outcome: taken
	dMispredict                   // tournament predictor guessed wrong
)

// traceDecode is the depth-invariant decode of one instruction stream in
// structure-of-arrays form: class predicates folded into flags, operand
// producers, data addresses, and — crucially — the tournament predictor's
// per-branch verdicts. The predictor sees branches in trace order in both
// cores regardless of timing, and Params never alters its tables, so its
// guess stream is a pure function of the trace: one training walk here
// replaces one per simulated grid cell. (PerfectBranches machines override
// the guess after the tables update, so they consume the same decode and
// just ignore dMispredict.)
type traceDecode struct {
	flags []uint8
	class []isa.Class
	src1  []int32
	src2  []int32
	addr  []uint64
}

// decodeCacheKey identifies an instruction stream by identity, like
// trace.ConsumerIndexOf's key: WithPrefetchCoverage clones share Insts
// with their parent, and one decode serves every clone.
type decodeCacheKey struct {
	first *trace.Inst
	n     int
}

// decodeCache holds every trace decode built so far, process-wide. Traces
// are immutable once generated, so the decode is immutable too and one
// build serves every study, worker, lane and clock point.
var decodeCache sync.Map // decodeCacheKey → *traceDecode

// decodeOf returns the trace's decode, building and caching it on first
// use. The result is shared and read-only; concurrent callers may race to
// build it, but construction is a pure function of the trace so either
// result is identical and LoadOrStore picks a canonical one.
func decodeOf(tr *trace.Trace) *traceDecode {
	insts := tr.Insts
	if len(insts) == 0 {
		panic("pipeline: empty trace")
	}
	key := decodeCacheKey{first: &insts[0], n: len(insts)}
	if v, ok := decodeCache.Load(key); ok {
		return v.(*traceDecode)
	}
	v, _ := decodeCache.LoadOrStore(key, buildDecode(insts))
	return v.(*traceDecode)
}

func buildDecode(insts []trace.Inst) *traceDecode {
	n := len(insts)
	d := &traceDecode{
		flags: make([]uint8, n),
		class: make([]isa.Class, n),
		src1:  make([]int32, n),
		src2:  make([]int32, n),
		addr:  make([]uint64, n),
	}
	pred := branch.New()
	for i := range insts {
		in := &insts[i]
		d.class[i] = in.Class
		d.src1[i] = in.Src1
		d.src2[i] = in.Src2
		d.addr[i] = in.Addr
		var f uint8
		if in.Class.IsFP() {
			f |= dFP
		}
		switch in.Class {
		case isa.Load:
			f |= dLoad
		case isa.Store:
			f |= dStore
		case isa.Branch:
			f |= dBranch
			if in.Taken {
				f |= dTaken
			}
			guess := pred.Predict(in.PC)
			pred.Update(in.PC, in.Taken, guess)
			if guess != in.Taken {
				f |= dMispredict
			}
		}
		d.flags[i] = f
	}
	return d
}
