// Package pipeline contains the cycle-level processor simulators at the
// heart of the reproduction: a dynamically scheduled (out-of-order) core
// modeled on the Alpha 21264 and an in-order variant of the same machine
// (Section 4.1). Both take their structure and operation latencies from a
// clock-resolved config.Timing, so scaling the pipeline depth is exactly
// the paper's methodology: pick a useful-FO4-per-stage value, derive every
// latency in cycles, and measure the IPC that survives.
//
// The out-of-order core models the critical loops the paper studies:
//
//   - the issue-wakeup loop: a dependent instruction can issue no earlier
//     than its producer's issue plus max(execution latency, wakeup-loop
//     length), where the loop length is the issue window's access latency
//     plus any Figure 8 extension;
//   - the load-use loop: loads resolve through the simulated cache
//     hierarchy, and consumers wait on the level that actually served them;
//   - the branch-resolution loop: mispredictions (from the simulated
//     tournament predictor) stall fetch until the branch executes, then
//     refill the front end, whose depth grows with clock frequency.
//
// Section 5's segmented instruction window is modeled structurally: tags
// walk one window segment per cycle, the window compacts oldest-first each
// cycle, and the partitioned selection scheme (Figure 12) limits how many
// instructions the upper stages may pre-select, one cycle ahead of the
// final selection.
//
// The simulated machine broadcasts a completing tag to every window entry
// each issue; the simulator itself does not. It walks the trace's consumer
// index (see trace.ConsumerIndexOf) and wakes exactly the issuing
// instruction's resident consumers, at the same segment-resolved cycle the
// broadcast would have delivered — event-driven simulation of a
// broadcast-structured machine, with Stats counters (WakeupWakes vs.
// WakeupScanned) recording the work avoided. All steady-state bookkeeping
// lives in a reusable Scratch, so a run allocates nothing per cycle.
package pipeline

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Params configures one simulation run.
type Params struct {
	Machine config.Machine
	Timing  config.Timing

	// Critical-loop extensions in cycles over the resolved latencies
	// (Figure 8 scales these over the Alpha 21264 baseline).
	ExtraWakeup     int
	ExtraLoadUse    int
	ExtraMispredict int

	// WindowStages pipelines the issue window's wakeup into this many
	// segments (Figure 10/11). 0 or 1 means a conventional single-segment
	// window.
	WindowStages int

	// PreSelect, when non-nil, enables the Figure 12 partitioned selection
	// scheme: entry i is the maximum number of instructions stage i+2 may
	// pre-select per cycle (the paper uses {5, 2, 1} for a 4-stage window).
	// Pre-selected instructions reach the final selector one cycle later;
	// stage 1 is always fully visible to the selector.
	PreSelect []int

	// NaivePipelining, when true, models the pessimistic window pipelining
	// Stark et al. argue against: the wakeup loop simply grows to
	// WindowStages cycles for every dependence, preventing back-to-back
	// issue of dependent instructions.
	NaivePipelining bool

	// Warmup is the number of leading instructions excluded from the
	// reported IPC (caches and predictor still train on them).
	Warmup int
}

// Stats is the outcome of a run.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64

	BranchLookups    uint64
	BranchMispredict uint64
	L1Hits           uint64
	L2Hits           uint64
	MemAccesses      uint64
	WindowFullStalls uint64
	ROBFullStalls    uint64

	// Diagnostics (out-of-order core only).
	SimCycles          uint64 // total simulated cycles including warmup
	SumWindowOcc       uint64 // window occupancy summed per cycle
	SumIssued          uint64 // instructions issued summed per cycle
	FetchBlockedCycles uint64 // cycles fetch was stalled on a mispredict

	// Wakeup accounting (out-of-order core only): WakeupWakes counts
	// operand wakeups actually delivered through the consumer index;
	// WakeupScanned counts the window entries a per-issue broadcast scan
	// would have examined for the same schedule. Their ratio is the
	// algorithmic saving of event-driven wakeup — the simulated machine
	// still pays for the full broadcast (that is the paper's subject),
	// the simulator no longer does.
	WakeupWakes   uint64
	WakeupScanned uint64

	// Batch accounting, set only by RunBatch: BatchLanes is the size of the
	// geometry partition this lane shared a prewarmed memory template with
	// (zero for a lane that fell back to the plain RunWith path, whose
	// Stats are then indistinguishable from an unbatched run's), and
	// BatchSharedDecode
	// counts the instructions whose decode/predictor walk was reused from
	// the batch's first lane rather than recomputed. Excluded from JSON so
	// batched and per-cell results serialize byte-identically.
	BatchLanes        uint64 `json:"-"`
	BatchSharedDecode uint64 `json:"-"`
}

// AvgWindowOcc returns the mean issue-window occupancy per cycle.
func (s Stats) AvgWindowOcc() float64 {
	if s.SimCycles == 0 {
		return 0
	}
	return float64(s.SumWindowOcc) / float64(s.SimCycles)
}

// Run simulates tr on the configured machine and returns its statistics.
//
// Run is safe for concurrent use: all simulation state (predictor tables,
// cache hierarchy, window occupancy) lives in a Scratch borrowed from a
// package pool for the duration of the call, the trace is only read
// (immutable by contract, see internal/trace), and Params is passed by
// value. The sweep engine relies on this to run many simulations of the
// same trace in parallel; internal/core's race tests pin it. Callers with
// their own run loop can hold a Scratch and use RunWith to skip the pool.
func Run(p Params, tr *trace.Trace) Stats {
	s := scratchPool.Get().(*Scratch)
	stats := RunWith(p, tr, s)
	scratchPool.Put(s)
	return stats
}

// RunWith simulates like Run but on caller-owned scratch state, reusing
// its allocations. Results are identical to Run's for any scratch
// history — every run re-initializes the state it reads — but a Scratch
// must not be shared by concurrent calls. A nil scratch is allowed and
// simulates on fresh state.
func RunWith(p Params, tr *trace.Trace, s *Scratch) Stats {
	return runWith(p, tr, s, nil)
}

// runWith is RunWith with the batch runner's extra input: warm, when
// non-nil, is a prewarmed memory-hierarchy template of the machine's
// geometry whose state is copied instead of re-walking the working set.
// A nil warm reproduces RunWith exactly; a correct template makes the
// two paths bit-identical (the template state is a pure function of
// geometry and trace — see RunBatch).
func runWith(p Params, tr *trace.Trace, s *Scratch, warm *mem.Hierarchy) Stats {
	if s == nil {
		s = NewScratch()
	}
	if p.Machine.InOrder {
		return runInOrder(p, tr, s, warm)
	}
	return runOutOfOrder(p, tr, s, warm)
}

const pending = math.MaxInt64

// winEntry is one issue-window slot's cold state. Its readiness lives in
// the queue's parallel ready array (one timestamp per slot) so the
// selection scan touches eight bytes per entry and only selectable
// entries load the rest: acc accumulates the max wake time of the
// operands scheduled so far and becomes the ready timestamp when the
// last producer delivers.
type winEntry struct {
	acc         int64 // max wake time over the operands scheduled so far
	idx         int32 // trace index
	src1, src2  int32 // producer indices still awaited (-1 once resolved)
	preSelected bool  // latched by a pre-selection block (Figure 12)
}

func runOutOfOrder(p Params, tr *trace.Trace, scr *Scratch, warm *mem.Hierarchy) Stats {
	m := p.Machine
	tmg := p.Timing
	n := len(tr.Insts)
	if n == 0 {
		panic("pipeline: empty trace")
	}
	stages := p.WindowStages
	if stages < 1 {
		stages = 1
	}

	// The depth-invariant decode: class flags, operand producers, data
	// addresses and the predictor's per-branch verdicts, built once per
	// trace and cached process-wide (see traceDecode). The cycle loops
	// below never touch tr.Insts again.
	dec := decodeOf(tr)
	flags, class := dec.flags, dec.class
	src1s, src2s, addrs := dec.src1, dec.src2, dec.addr

	// Issue queues: the 21264's separate integer and floating-point queues
	// by default, or one shared window when UnifiedWindow is set (the
	// Section 5 experiments use a unified 32-entry window). Segmentation
	// divides each queue into equal stages.
	queues := scr.queues(m, stages)
	intQ := queues[0]
	fpQ := queues[len(queues)-1] // same queue as intQ when unified
	nq := len(queues)
	// qpair picks an instruction's queue branch-free: dFP is bit 0, so
	// flags[i]&dFP is directly the index (both slots alias the shared
	// window when unified).
	qpair := [2]*issueQueue{intQ, fpQ}

	// The reverse dependence adjacency: who consumes each instruction's
	// result. Built once per trace and cached process-wide, it lets issue
	// wake a producer's actual consumers directly instead of re-scanning
	// every window entry per issued instruction.
	consumers := tr.ConsumerIndexOf()

	hier := scr.hierarchyFor(m, tr, warm)
	var lat latEnv
	lat.init(&p, hier)
	perfectBranches := m.PerfectBranches

	// Per-instruction dynamic state, reset to pending/-1 for this run.
	scr.arenas(n)
	times := scr.times       // paired data/complete timestamps (see instTimes)
	queuePos := scr.queuePos // issue-queue position while resident

	// Front-end depth in cycles: fetch (instruction cache / predictor),
	// decode, rename, dispatch.
	frontDepth := maxInt(tmg.IL1, tmg.BPred) + 1 + tmg.Rename + 1
	// The frontend pipeline holds FetchWidth instructions per stage for
	// frontDepth stages (plus slack for dispatch backpressure).
	frontCap := m.FetchWidth * (frontDepth + 2)
	wakeLoop := int64(tmg.Window + p.ExtraWakeup)
	extraMisp := int64(p.ExtraMispredict)
	if p.NaivePipelining {
		wakeLoop = int64(stages) + int64(p.ExtraWakeup)
	}

	// Frontend queue between fetch and dispatch: fetch and dispatch both
	// walk the trace in order, so the queue is the index range
	// [dispIdx, fetchIdx) with per-instruction arrival cycles in the
	// fetchReady arena.
	fetchReady := scr.fetchReady
	dispIdx := 0
	stats := Stats{}

	selected := scr.selScratch(m.IntIssue + m.FPIssue)
	// Partitioned selection latches entries one cycle ahead of issue, so
	// its queues must be scanned every cycle; everywhere else the
	// next-ready bound lets stall cycles skip the selection scan.
	preSel := p.PreSelect != nil && stages > 1
	segmented := stages > 1 && !p.NaivePipelining
	// Lazy compaction defers the removal of issued entries until the queue
	// arrays' slack is exhausted (see issueQueue.compact). It is valid
	// exactly when entry positions carry no semantics: single-segment
	// windows and naive pipelining wake every consumer with segment 0, and
	// partitioned selection is position-addressed, so segmented
	// non-preselect machines compact eagerly every issuing cycle.
	lazy := !preSel && (stages == 1 || p.NaivePipelining)
	var quota []int
	if preSel {
		quota = scr.quotaScratch(stages)
	}

	var (
		cycle      int64
		fetchIdx   int        // next trace index to fetch
		head       int        // oldest in-flight (ROB head)
		fetchBlock int32 = -1 // mispredicted branch blocking fetch
		// fetchResume is the cycle the blocking branch's redirect lands
		// (pending until it issues), kept in a register by the issue loop
		// so the fetch gate doesn't chase times[fetchBlock] every cycle.
		fetchResume int64 = pending
		warmCycle   int64 = -1
		warmIdx           = p.Warmup
		lastCommit  int64 // cycle the most recent commit happened
		lastHead    = -1
		stuckCycles int64
	)
	if warmIdx >= n {
		warmIdx = 0
	}

	// issueBudget per class cluster, reset each cycle.
	for head < n {
		// ---- Commit: oldest first, up to CommitWidth, completed only.
		committed := 0
		// (pending is MaxInt64, so "complete < cycle" alone excludes
		// still-executing instructions.)
		for head < n && committed < m.CommitWidth && times[head].complete < cycle {
			head++
			committed++
		}
		if committed > 0 {
			lastCommit = cycle
			// head crosses warmIdx exactly once; the cycle it does is the
			// cycle instruction warmIdx commits.
			if warmCycle < 0 && head > warmIdx {
				warmCycle = cycle
			}
		}

		// ---- Selection and issue. Pre-selection latches (Figure 12) were
		// set at the end of the previous cycle via preSelected flags.
		// Queue occupancy is constant until issue removes entries, so the
		// per-cycle occupancy and the per-issue broadcast-scan size are
		// one sum up front.
		resident := intQ.live
		if nq == 2 {
			resident += fpQ.live
		}
		stats.SumWindowOcc += uint64(resident)
		intBudget, fpBudget := m.IntIssue, m.FPIssue
		mixed := nq == 1 // the unified window holds both classes
		var issuedFrom [2]bool
		for qi := 0; qi < nq; qi++ {
			q := qpair[qi&1]
			if !preSel && cycle < q.nextReady {
				continue // provably nothing selectable this cycle
			}
			var issued []int32
			if !preSel && !mixed {
				// Split-queue scan, inlined from issueSelect's uniform
				// path: this is the simulator's hottest edge (it runs for
				// every queue on every non-gated cycle), and keeping it in
				// the loop body spares the call and its argument traffic.
				// Semantics are identical — the batch golden and property
				// tests pin both paths against each other.
				sel := selected[:0]
				nextReady := int64(pending)
				budget := intBudget
				if qi == 1 {
					budget = fpBudget
				}
				ready := q.ready
			scan:
				for k, w := range q.sched[:uint(len(ready)+63)>>6] {
					for w != 0 {
						wi := k<<6 + bits.TrailingZeros64(w)
						w &= w - 1
						if r := ready[wi]; r > cycle {
							if r < nextReady {
								nextReady = r
							}
							continue
						}
						if budget == 0 {
							nextReady = cycle + 1
							break scan
						}
						budget--
						sel = append(sel, q.entries[wi].idx)
					}
				}
				if qi == 1 {
					fpBudget = budget
				} else {
					intBudget = budget
				}
				q.nextReady = nextReady
				issued = sel
			} else {
				var nextReady int64
				issued, nextReady, intBudget, fpBudget = issueSelect(flags, q, cycle, intBudget, fpBudget, preSel, mixed, qi == 1, selected[:0])
				q.nextReady = nextReady
			}
			stats.SumIssued += uint64(len(issued))
			if len(issued) > 0 {
				issuedFrom[qi] = true
			}
			for _, idx := range issued {
				// Non-memory instructions resolve to a fixed per-class
				// latency; only loads and stores pay the call into the
				// cache hierarchy.
				var completeLat int64
				if f := flags[idx]; f&(dLoad|dStore) == 0 {
					completeLat = lat.exec[class[idx]]
				} else {
					completeLat = lat.latency(f, class[idx], addrs[idx], &stats)
				}
				d := cycle + maxInt64(completeLat, wakeLoop)
				times[idx] = instTimes{data: d, complete: cycle + completeLat}
				if idx == fetchBlock {
					fetchResume = cycle + completeLat + extraMisp
				}
				// Tombstone the issued entry; compaction removes it either
				// this cycle (eager) or when the arrays fill (lazy). Its
				// ready slot goes to pending so the selection scan skips
				// it, its operands were already resolved (src fields are
				// -1), so no same-cycle consumer walk can match it.
				pos := queuePos[idx] & qposMask
				q.entries[pos].idx = -1
				q.ready[pos] = pending
				q.sched[pos>>6] &^= 1 << uint(pos&63)
				q.live--
				if int(pos) < q.firstGap {
					q.firstGap = int(pos)
				}
				queuePos[idx] = -1
				// Wakeup. The machine broadcasts the completing tag across
				// every window entry; the simulator walks the consumer
				// index and delivers to the dependents actually resident in
				// a queue. With a segmented window the tag reaches segment
				// s at d + s, so a consumer sitting in segment s when the
				// producer issues sees its operand s cycles later (stage 1
				// sees it immediately, preserving back-to-back issue for
				// the oldest instructions). d always lands beyond the
				// current cycle, so delivery order within a cycle cannot
				// change this cycle's selection — exactly like the
				// broadcast scan this replaces.
				stats.WakeupScanned += uint64(resident)
				for _, c := range consumers.Consumers(idx) {
					pq := queuePos[c]
					if pq < 0 {
						continue // not dispatched yet, or operand resolved at dispatch
					}
					// queuePos carries the consumer's queue in its high
					// bit, so delivery needs no second lookup into flags.
					dq := qpair[pq>>qposQueueShift]
					pos := pq & qposMask
					e := &dq.entries[pos]
					seg := int64(0)
					if segmented {
						seg = int64(int(pos) / dq.segSize)
					}
					if e.src1 == idx {
						if w := d + seg; w > e.acc {
							e.acc = w
						}
						e.src1 = -1
						stats.WakeupWakes++
					}
					if e.src2 == idx {
						if w := d + seg; w > e.acc {
							e.acc = w
						}
						e.src2 = -1
						stats.WakeupWakes++
					}
					if e.src1 == -1 && e.src2 == -1 {
						// Fully scheduled: the entry becomes selectable
						// once both operands are visible; lower the
						// queue's next-ready bound to match.
						dq.ready[pos] = e.acc
						dq.sched[pos>>6] |= 1 << uint(pos&63)
						if e.acc < dq.nextReady {
							dq.nextReady = e.acc
						}
					}
				}
			}
		}
		// Remove issued entries (the paper's collapsing window). Machines
		// whose entry positions carry semantics compact every issuing
		// cycle; everyone else defers to dispatch, which compacts only
		// when a queue's array slack runs out.
		if !lazy {
			for qi := 0; qi < nq; qi++ {
				if issuedFrom[qi] {
					qpair[qi&1].compact(queuePos, int32(qi&1)<<qposQueueShift)
				}
			}
		}

		// ---- Pre-selection for next cycle (Figure 12).
		if preSel {
			for _, q := range queues {
				markPreSelections(p.PreSelect, q, cycle, stages, quota)
			}
		}

		// ---- Dispatch from the frontend queue into the issue queues.
		dispatchedNow := 0
		for dispIdx < fetchIdx && dispatchedNow < m.FetchWidth {
			if fetchReady[dispIdx] > cycle {
				break
			}
			di := int32(dispIdx)
			qsel := flags[di] & dFP
			q := qpair[qsel]
			if q.live >= q.cap {
				stats.WindowFullStalls++
				break
			}
			if dispIdx-head >= m.ROB {
				stats.ROBFullStalls++
				break
			}
			if len(q.entries) == cap(q.entries) {
				// Lazy mode: the array's slack is spent on tombstones
				// (live < cap guarantees there are some); reclaim it.
				q.compact(queuePos, int32(qsel)<<qposQueueShift)
			}
			e := winEntry{idx: di, src1: -1, src2: -1}
			w1 := resolveOperand(src1s[di], times, cycle, &e.src1)
			w2 := resolveOperand(src2s[di], times, cycle, &e.src2)
			if e.src1 == -1 && e.acc < w1 {
				e.acc = w1
			}
			if e.src2 == -1 && e.acc < w2 {
				e.acc = w2
			}
			readyAt := int64(pending)
			scheduled := e.src1 == -1 && e.src2 == -1
			if scheduled {
				// Dispatched fully scheduled: it can issue once both
				// operands are visible, no earlier than the next cycle
				// (dispatch follows this cycle's selection).
				readyAt = e.acc
				c := maxInt64(e.acc, cycle+1)
				if c < q.nextReady {
					q.nextReady = c
				}
			}
			pos := len(q.entries)
			queuePos[di] = int32(pos) | int32(qsel)<<qposQueueShift
			q.entries = append(q.entries, e)
			q.ready = append(q.ready, readyAt)
			if scheduled {
				q.sched[pos>>6] |= 1 << uint(pos&63)
			}
			q.live++
			dispIdx++
			dispatchedNow++
		}

		// ---- Fetch. A mispredicted branch blocks fetch until it resolves
		// (plus any Figure 8 extension of the misprediction loop); a
		// correctly-predicted taken branch just ends the fetch group.
		resumed := false
		if fetchBlock >= 0 && fetchResume <= cycle {
			fetchBlock = -1 // redirect complete; resume fetch
			fetchResume = pending
			resumed = true
		}
		fetched := false
		if fetchBlock < 0 {
			slots := m.FetchWidth
			arrive := cycle + int64(frontDepth)
			for slots > 0 && fetchIdx < n && fetchIdx-dispIdx < frontCap {
				fetched = true
				ff := flags[fetchIdx]
				fetchReady[fetchIdx] = arrive
				slots--
				if ff&dBranch != 0 {
					stats.BranchLookups++
					if ff&dMispredict != 0 && !perfectBranches {
						stats.BranchMispredict++
						fetchBlock = int32(fetchIdx)
						fetchIdx++
						break
					}
					if ff&dTaken != 0 {
						fetchIdx++
						break
					}
				}
				fetchIdx++
			}
		}

		if fetchBlock >= 0 {
			stats.FetchBlockedCycles++
		}
		stats.SimCycles++

		// ---- Watchdog.
		if head == lastHead {
			stuckCycles++
			if stuckCycles > 1_000_000 {
				panic(fmt.Sprintf("pipeline: no commit progress at cycle %d (head=%d, frontQ=%d)",
					cycle, head, fetchIdx-dispIdx))
			}
		} else {
			lastHead = head
			stuckCycles = 0
		}
		cycle++

		// ---- Idle fast-forward. A cycle that committed, issued,
		// dispatched, fetched and resumed nothing leaves no state behind
		// but the cycle counter, and the next cycle anything *can* happen
		// is bounded below by known timestamps: the ROB head's completion
		// (commit), each queue's next-ready bound (issue — a true lower
		// bound, see issueSelect), the frontend queue's head arrival
		// (dispatch; a dispatch blocked on window or ROB space instead
		// waits on an issue or commit, which the first two bounds cover),
		// and the blocking branch's resolution (fetch). Jumping to the
		// earliest bound skips exactly the cycles the loop would have
		// walked through doing nothing — mispredict stalls and long memory
		// waits — after accounting their per-cycle statistics in bulk.
		// Partitioned selection couples consecutive cycles through its
		// latches, so it never skips.
		if committed == 0 && dispatchedNow == 0 && !fetched && !resumed &&
			!issuedFrom[0] && !issuedFrom[1] && !preSel {
			next := int64(pending)
			if c := times[head].complete; c != pending {
				next = c + 1
			}
			if intQ.nextReady < next {
				next = intQ.nextReady
			}
			if nq == 2 && fpQ.nextReady < next {
				next = fpQ.nextReady
			}
			if dispIdx < fetchIdx {
				if r := fetchReady[dispIdx]; r < next {
					next = r
				}
			}
			if fetchBlock >= 0 && fetchResume < next {
				next = fetchResume
			}
			if next > cycle && next != pending {
				skipped := uint64(next - cycle)
				stats.SimCycles += skipped
				stats.SumWindowOcc += uint64(resident) * skipped
				if fetchBlock >= 0 {
					stats.FetchBlockedCycles += skipped
				}
				cycle = next
			}
		}
	}

	total := uint64(n - warmIdx)
	if warmCycle < 0 {
		warmCycle = 0
		total = uint64(n)
	}
	cycles := uint64(lastCommit - warmCycle + 1)
	stats.Instructions = total
	stats.Cycles = cycles
	stats.IPC = float64(total) / float64(cycles)
	return stats
}

// resolveOperand computes the wake time of one operand at dispatch. If the
// producer has already issued, the scoreboard covers it and the operand is
// usable as soon as the value exists (completeAt — the wakeup loop taxes
// only in-window tag broadcasts, not register-file reads of older results).
// Otherwise the operand stays pending until the producer's issue delivers
// it through the consumer index.
func resolveOperand(src int32, times []instTimes, cycle int64, slot *int32) int64 {
	if src < 0 {
		return 0
	}
	t := &times[src]
	if t.data != pending {
		if c := t.complete; c > cycle {
			return c
		}
		return 0
	}
	*slot = src
	return pending
}

// issueQueue is one issue window (or one of the 21264's two queues),
// kept as parallel arrays: ready holds each slot's selection timestamp
// (the cycle both operands are visible, or pending while any operand
// still awaits its producer's wakeup) and entries the per-slot cold
// state, so the per-cycle selection scan walks a dense timestamp array.
type issueQueue struct {
	ready   []int64
	entries []winEntry
	cap     int
	segSize int // entries per wakeup segment

	// live counts the resident (non-tombstone) entries; it is the queue's
	// occupancy for capacity stalls and window-occupancy statistics. With
	// eager compaction live == len(entries) between cycles; with lazy
	// compaction issued entries linger as tombstones until the array's
	// slack runs out, so len(entries) overcounts.
	live int

	// firstGap is the oldest tombstoned slot, the position compaction can
	// start rewriting from (entries below it never move). intMax while the
	// queue has no tombstones.
	firstGap int

	// sched holds one bit per slot, set while the slot's entry is fully
	// scheduled (both operands resolved, ready[slot] != pending) — the
	// selection candidates. The per-cycle scan walks set bits instead of
	// every slot, so entries still awaiting a producer and tombstones cost
	// nothing. Maintained at dispatch, wakeup delivery, issue and
	// compaction; the partitioned-selection scan ignores it (its latches,
	// not readiness, gate eligibility beyond stage 1).
	sched []uint64

	// nextReady is a lower bound on the next cycle at which any resident
	// entry could issue; while cycle < nextReady the selection scan is
	// skipped entirely (see issueSelect for how the bound is maintained).
	// It is advisory-low only — a stale small value costs a wasted scan,
	// never a changed schedule — and is ignored under partitioned
	// selection, whose latches couple consecutive cycles.
	nextReady int64
}

const intMax = int(^uint(0) >> 1)

// queuePos slots pack the instruction's queue into one high bit next to
// its position, so wakeup delivery resolves a consumer's queue and slot
// with the single queuePos load (-1, the absent marker, stays negative).
const (
	qposQueueShift = 30
	qposMask       = 1<<qposQueueShift - 1
)

// reset configures the queue for a run, reusing the entry storage. The
// arrays carry a slack of one extra capacity so lazy compaction runs once
// per ~capacity dispatches instead of once per issuing cycle.
func (q *issueQueue) reset(capacity, stages int) {
	if cap(q.entries) < 2*capacity {
		q.entries = make([]winEntry, 0, 2*capacity)
		q.ready = make([]int64, 0, 2*capacity)
	}
	q.entries = q.entries[:0]
	q.ready = q.ready[:0]
	if words := (cap(q.entries) + 63) / 64; len(q.sched) < words {
		q.sched = make([]uint64, words)
	}
	for i := range q.sched {
		q.sched[i] = 0
	}
	q.cap = capacity
	q.segSize = (capacity + stages - 1) / stages
	q.live = 0
	q.firstGap = intMax
	q.nextReady = 0
}

// compact rewrites the queue's arrays without the tombstones of issued
// entries, restoring live == len(entries). Entries keep their relative
// (age) order; slots older than the first gap keep their positions, so
// the rewrite starts there. This is the paper's collapsing window: under
// eager compaction (segmented wakeup, whose visibility segments are
// position-dependent) it runs every issuing cycle; under lazy compaction
// it runs only when the array's slack is exhausted, amortizing the copies
// over ~capacity dispatches. qbit is the queue's qposQueueShift-encoded
// identity, re-stamped on every rewritten queuePos slot.
func (q *issueQueue) compact(queuePos []int32, qbit int32) {
	start := q.firstGap
	if start >= len(q.entries) {
		q.firstGap = intMax
		return
	}
	// The scheduled bitmap is position-indexed: bits below start stay (those
	// entries do not move), the rest are rebuilt in the same pass that
	// assigns the new positions.
	w0 := start >> 6
	q.sched[w0] &= 1<<uint(start&63) - 1
	for i := w0 + 1; i < len(q.sched); i++ {
		q.sched[i] = 0
	}
	keep := q.entries[:start]
	keepReady := q.ready[:start]
	for wi := start; wi < len(q.entries); wi++ {
		e := q.entries[wi]
		if e.idx >= 0 {
			pos := len(keep)
			queuePos[e.idx] = int32(pos) | qbit
			keep = append(keep, e)
			r := q.ready[wi]
			keepReady = append(keepReady, r)
			if r != pending {
				q.sched[pos>>6] |= 1 << uint(pos&63)
			}
		}
	}
	q.entries = keep
	q.ready = keepReady
	q.firstGap = intMax
}

// issueSelect picks the instructions to issue from one queue this cycle,
// honouring the shared issue widths, the segmented-wakeup visibility times,
// and (when enabled) the partitioned selection quotas. It appends the
// selected trace indices to sel, oldest first, returning the filled slice
// (caller-provided scratch; never allocates at steady state) and the
// remaining budgets (taken and returned by value so the scan loop keeps
// them in registers).
//
// The second result is the queue's next-ready bound: the earliest cycle
// at which this queue could select anything, given what this scan saw. An
// entry whose operands are both scheduled contributes their max wake
// time; an entry that was ready but lost to a budget (it stays resident)
// forces cycle+1; a scan cut short by budget exhaustion learns nothing
// beyond cycle+1. Entries still awaiting a producer contribute nothing —
// the wakeup delivery that schedules them lowers the queue's bound at
// delivery time. Wake deliveries always land beyond the current cycle
// (every resolved latency is at least one cycle), so the bound being a
// true lower bound means skipped scans select exactly what a real scan
// would have: nothing.
// mixed says the queue can hold both instruction classes (the unified
// window); a split queue holds exactly one class (fp says which), so its
// scan charges a single budget without consulting the per-instruction
// flags at all.
func issueSelect(flags []uint8, q *issueQueue, cycle int64,
	intBudget, fpBudget int, preSel, mixed, fp bool, sel []int32) ([]int32, int64, int, int) {

	nextReady := int64(pending)
	ready := q.ready
	if preSel {
		// Partitioned selection latches gate eligibility beyond stage 1,
		// so the scan walks every slot the old-fashioned way. These
		// queues compact eagerly: resident slots are always un-issued.
		for wi := range ready {
			if intBudget == 0 && fpBudget == 0 {
				nextReady = cycle + 1
				break
			}
			if r := ready[wi]; r > cycle {
				if r < nextReady {
					nextReady = r
				}
				continue
			}
			e := &q.entries[wi]
			// Instructions beyond stage 1 are only eligible if a
			// pre-selection block latched them last cycle.
			if wi >= q.segSize && !e.preSelected {
				nextReady = cycle + 1
				continue
			}
			if flags[e.idx]&dFP != 0 {
				if fpBudget == 0 {
					nextReady = cycle + 1
					continue
				}
				fpBudget--
			} else {
				if intBudget == 0 {
					nextReady = cycle + 1
					continue
				}
				intBudget--
			}
			sel = append(sel, e.idx)
		}
		return sel, nextReady, intBudget, fpBudget
	}

	// Sparse scan: only fully scheduled entries (sched bit set) can be
	// selectable, and the bitmap walks them oldest-first. Entries still
	// awaiting a producer contribute nothing to the next-ready bound (the
	// wakeup delivery that schedules them lowers it at delivery time), and
	// tombstones have no bit, so neither costs a slot visit.
	if !mixed {
		// Single-class queue: one budget, and no flags lookup per entry.
		// Once the budget is gone nothing further can be selected, so the
		// scan ends with the (always valid) cycle+1 bound instead of
		// walking the rest of the bitmap for a sharper one.
		budget := intBudget
		if fp {
			budget = fpBudget
		}
		for k, w := range q.sched[:uint(len(ready)+63)>>6] {
			for w != 0 {
				wi := k<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if r := ready[wi]; r > cycle {
					if r < nextReady {
						nextReady = r
					}
					continue
				}
				if budget == 0 {
					if fp {
						return sel, cycle + 1, intBudget, 0
					}
					return sel, cycle + 1, 0, fpBudget
				}
				budget--
				sel = append(sel, q.entries[wi].idx)
			}
		}
		if fp {
			return sel, nextReady, intBudget, budget
		}
		return sel, nextReady, budget, fpBudget
	}
	for k, w := range q.sched[:uint(len(ready)+63)>>6] {
		for w != 0 {
			if intBudget == 0 && fpBudget == 0 {
				return sel, cycle + 1, intBudget, fpBudget
			}
			wi := k<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if r := ready[wi]; r > cycle {
				if r < nextReady {
					nextReady = r
				}
				continue
			}
			e := &q.entries[wi]
			if flags[e.idx]&dFP != 0 {
				if fpBudget == 0 {
					nextReady = cycle + 1
					continue
				}
				fpBudget--
			} else {
				if intBudget == 0 {
					nextReady = cycle + 1
					continue
				}
				intBudget--
			}
			sel = append(sel, e.idx)
		}
	}
	return sel, nextReady, intBudget, fpBudget
}

// markPreSelections implements the Figure 12 pre-selection blocks: each
// stage beyond the first examines its ready instructions and latches up to
// its quota for the selector to consider next cycle. quota is caller
// scratch of at least stages slots, overwritten on every call.
func markPreSelections(preSelect []int, q *issueQueue, cycle int64, stages int, quota []int) {
	for s := 1; s < stages; s++ {
		n := 0
		if s-1 < len(preSelect) {
			n = preSelect[s-1]
		}
		quota[s] = n
	}
	ready := q.ready
	for wi := range q.entries {
		e := &q.entries[wi]
		s := wi / q.segSize
		if s == 0 {
			continue
		}
		e.preSelected = false
		if s < stages && quota[s] > 0 && ready[wi] <= cycle {
			e.preSelected = true
			quota[s]--
		}
	}
}

// latEnv is the per-run execution-latency context: the clock-resolved
// per-class latencies and the memory system flattened out of Params, so
// the per-issue hot path reads a few scalars instead of copying the
// whole Params struct per instruction.
type latEnv struct {
	exec          [isa.NumClasses]int64
	dl1, l2, mem  int64
	extraLoadUse  int64
	perfectMemory bool
	hier          *mem.Hierarchy
}

func (e *latEnv) init(p *Params, hier *mem.Hierarchy) {
	for c := 0; c < isa.NumClasses; c++ {
		e.exec[c] = int64(p.Timing.Exec[c])
	}
	e.dl1 = int64(p.Timing.DL1)
	e.l2 = int64(p.Timing.L2)
	e.mem = int64(p.Timing.Mem)
	e.extraLoadUse = int64(p.ExtraLoadUse)
	e.perfectMemory = p.Machine.PerfectMemory
	e.hier = hier
}

// latency returns the total execution latency of an instruction in
// cycles, resolving loads through the cache hierarchy.
func (e *latEnv) latency(f uint8, cls isa.Class, addr uint64, stats *Stats) int64 {
	switch {
	case f&dLoad != 0:
		lvl := mem.L1Hit
		if !e.perfectMemory {
			lvl = e.hier.Access(addr)
		}
		// Table 3's DL1 row is the full load-use latency (the 21264's row
		// reads 3 cycles, its real load-use delay); L2 and memory
		// latencies are likewise total hit latencies.
		var lat int64
		switch lvl {
		case mem.L1Hit:
			stats.L1Hits++
			lat = e.dl1
		case mem.L2Hit:
			stats.L2Hits++
			lat = e.l2
		default:
			stats.MemAccesses++
			lat = e.mem
		}
		return lat + e.extraLoadUse
	case f&dStore != 0:
		if !e.perfectMemory {
			e.hier.Access(addr)
		}
		return e.exec[isa.Store]
	default:
		return e.exec[cls]
	}
}

// newHierarchy builds the machine's data memory system.
func newHierarchy(m config.Machine) *mem.Hierarchy {
	if m.Cray1SMemory {
		return mem.NewFlat()
	}
	s := m.Structures
	return mem.NewHierarchy(
		mem.NewCache(s.DL1.CapacityBytes, s.DL1.BlockBytes, s.DL1.Assoc),
		mem.NewCache(s.L2.CapacityBytes, s.L2.BlockBytes, s.L2.Assoc),
	)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
