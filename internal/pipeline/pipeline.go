// Package pipeline contains the cycle-level processor simulators at the
// heart of the reproduction: a dynamically scheduled (out-of-order) core
// modeled on the Alpha 21264 and an in-order variant of the same machine
// (Section 4.1). Both take their structure and operation latencies from a
// clock-resolved config.Timing, so scaling the pipeline depth is exactly
// the paper's methodology: pick a useful-FO4-per-stage value, derive every
// latency in cycles, and measure the IPC that survives.
//
// The out-of-order core models the critical loops the paper studies:
//
//   - the issue-wakeup loop: a dependent instruction can issue no earlier
//     than its producer's issue plus max(execution latency, wakeup-loop
//     length), where the loop length is the issue window's access latency
//     plus any Figure 8 extension;
//   - the load-use loop: loads resolve through the simulated cache
//     hierarchy, and consumers wait on the level that actually served them;
//   - the branch-resolution loop: mispredictions (from the simulated
//     tournament predictor) stall fetch until the branch executes, then
//     refill the front end, whose depth grows with clock frequency.
//
// Section 5's segmented instruction window is modeled structurally: tags
// walk one window segment per cycle, the window compacts oldest-first each
// cycle, and the partitioned selection scheme (Figure 12) limits how many
// instructions the upper stages may pre-select, one cycle ahead of the
// final selection.
package pipeline

import (
	"fmt"
	"math"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Params configures one simulation run.
type Params struct {
	Machine config.Machine
	Timing  config.Timing

	// Critical-loop extensions in cycles over the resolved latencies
	// (Figure 8 scales these over the Alpha 21264 baseline).
	ExtraWakeup     int
	ExtraLoadUse    int
	ExtraMispredict int

	// WindowStages pipelines the issue window's wakeup into this many
	// segments (Figure 10/11). 0 or 1 means a conventional single-segment
	// window.
	WindowStages int

	// PreSelect, when non-nil, enables the Figure 12 partitioned selection
	// scheme: entry i is the maximum number of instructions stage i+2 may
	// pre-select per cycle (the paper uses {5, 2, 1} for a 4-stage window).
	// Pre-selected instructions reach the final selector one cycle later;
	// stage 1 is always fully visible to the selector.
	PreSelect []int

	// NaivePipelining, when true, models the pessimistic window pipelining
	// Stark et al. argue against: the wakeup loop simply grows to
	// WindowStages cycles for every dependence, preventing back-to-back
	// issue of dependent instructions.
	NaivePipelining bool

	// Warmup is the number of leading instructions excluded from the
	// reported IPC (caches and predictor still train on them).
	Warmup int
}

// Stats is the outcome of a run.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64

	BranchLookups    uint64
	BranchMispredict uint64
	L1Hits           uint64
	L2Hits           uint64
	MemAccesses      uint64
	WindowFullStalls uint64
	ROBFullStalls    uint64

	// Diagnostics (out-of-order core only).
	SimCycles          uint64 // total simulated cycles including warmup
	SumWindowOcc       uint64 // window occupancy summed per cycle
	SumIssued          uint64 // instructions issued summed per cycle
	FetchBlockedCycles uint64 // cycles fetch was stalled on a mispredict
}

// AvgWindowOcc returns the mean issue-window occupancy per cycle.
func (s Stats) AvgWindowOcc() float64 {
	if s.SimCycles == 0 {
		return 0
	}
	return float64(s.SumWindowOcc) / float64(s.SimCycles)
}

// Run simulates tr on the configured machine and returns its statistics.
//
// Run is safe for concurrent use: all simulation state (predictor tables,
// cache hierarchy, window occupancy) is allocated per call, the trace is
// only read (immutable by contract, see internal/trace), and Params is
// passed by value. The sweep engine relies on this to run many simulations
// of the same trace in parallel; internal/core's race tests pin it.
func Run(p Params, tr *trace.Trace) Stats {
	if p.Machine.InOrder {
		return runInOrder(p, tr)
	}
	return runOutOfOrder(p, tr)
}

const pending = math.MaxInt64

// winEntry is one issue-window slot.
type winEntry struct {
	idx          int32 // trace index
	wake1, wake2 int64 // cycle each operand becomes visible; pending if waiting on broadcast
	src1, src2   int32 // producer indices still awaited (-1 once resolved)
	preSelected  bool  // latched by a pre-selection block (Figure 12)
}

func runOutOfOrder(p Params, tr *trace.Trace) Stats {
	m := p.Machine
	tmg := p.Timing
	insts := tr.Insts
	n := len(insts)
	if n == 0 {
		panic("pipeline: empty trace")
	}
	stages := p.WindowStages
	if stages < 1 {
		stages = 1
	}

	// Issue queues: the 21264's separate integer and floating-point queues
	// by default, or one shared window when UnifiedWindow is set (the
	// Section 5 experiments use a unified 32-entry window). Segmentation
	// divides each queue into equal stages.
	var queues []*issueQueue
	if m.UnifiedWindow > 0 {
		queues = []*issueQueue{newIssueQueue(m.UnifiedWindow, stages)}
	} else {
		if m.IntWindow <= 0 || m.FPWindow <= 0 {
			panic("pipeline: machine needs issue-queue capacities")
		}
		queues = []*issueQueue{
			newIssueQueue(m.IntWindow, stages),
			newIssueQueue(m.FPWindow, stages),
		}
	}
	queueFor := func(cl isa.Class) *issueQueue {
		if len(queues) == 2 && cl.IsFP() {
			return queues[1]
		}
		return queues[0]
	}

	pred := branch.New()
	hier := newHierarchy(m)
	hier.Coverage = tr.PrefetchCoverage
	hier.Prewarm(tr.HotBytes, tr.WarmBytes)

	// Per-instruction dynamic state.
	dataAt := make([]int64, n)     // cycle a consumer may issue (post-bypass)
	completeAt := make([]int64, n) // cycle the instruction has executed
	for i := range dataAt {
		dataAt[i] = pending
		completeAt[i] = pending
	}

	// Front-end depth in cycles: fetch (instruction cache / predictor),
	// decode, rename, dispatch.
	frontDepth := maxInt(tmg.IL1, tmg.BPred) + 1 + tmg.Rename + 1
	wakeLoop := int64(tmg.Window + p.ExtraWakeup)
	if p.NaivePipelining {
		wakeLoop = int64(stages) + int64(p.ExtraWakeup)
	}

	// Frontend queue between fetch and dispatch.
	type fq struct {
		idx     int32
		readyAt int64
	}
	frontQ := make([]fq, 0, 64)
	stats := Stats{}

	var (
		cycle       int64
		fetchIdx    int   // next trace index to fetch
		head        int   // oldest in-flight (ROB head)
		commitAt          = make([]int64, n)
		fetchBlock  int32 = -1 // mispredicted branch blocking fetch
		warmCycle   int64 = -1
		warmIdx           = p.Warmup
		lastHead          = -1
		stuckCycles int64
	)
	if warmIdx >= n {
		warmIdx = 0
	}
	for i := range commitAt {
		commitAt[i] = pending
	}

	// issueBudget per class cluster, reset each cycle.
	for head < n {
		// ---- Commit: oldest first, up to CommitWidth, completed only.
		committed := 0
		for head < n && committed < m.CommitWidth &&
			completeAt[head] != pending && completeAt[head] < cycle {
			commitAt[head] = cycle
			if head == warmIdx && warmCycle < 0 {
				warmCycle = cycle
			}
			head++
			committed++
		}

		// ---- Selection and issue. Pre-selection latches (Figure 12) were
		// set at the end of the previous cycle via preSelected flags.
		intBudget, fpBudget := m.IntIssue, m.FPIssue
		issuedAny := false
		for _, q := range queues {
			stats.SumWindowOcc += uint64(len(q.entries))
			issued := issueSelect(p, insts, q, cycle, &intBudget, &fpBudget, stages, dataAt)
			stats.SumIssued += uint64(len(issued))
			for _, w := range issued {
				issuedAny = true
				in := insts[w.idx]
				lat := execLatency(p, in, hier, &stats)
				completeAt[w.idx] = cycle + lat
				d := cycle + maxInt64(lat, wakeLoop)
				dataAt[w.idx] = d
				// Broadcast: wake dependents still waiting in any queue.
				// With a segmented window the tag reaches segment s at
				// d + s, so a consumer sitting in segment s when the
				// producer issues sees its operand s cycles later (stage 1
				// sees it immediately, preserving back-to-back issue for
				// the oldest instructions).
				for _, dq := range queues {
					for wi := range dq.entries {
						e := &dq.entries[wi]
						seg := int64(0)
						if stages > 1 && !p.NaivePipelining {
							seg = int64(wi / dq.segSize)
						}
						if e.src1 == w.idx {
							e.wake1 = d + seg
							e.src1 = -1
						}
						if e.src2 == w.idx {
							e.wake2 = d + seg
							e.src2 = -1
						}
					}
				}
			}
		}
		// Remove issued entries; each queue compacts oldest-first at the
		// start of the next cycle (the paper's collapsing window).
		if issuedAny {
			for _, q := range queues {
				keep := q.entries[:0]
				for _, e := range q.entries {
					if dataAt[e.idx] == pending {
						keep = append(keep, e)
					}
				}
				q.entries = keep
			}
		}

		// ---- Pre-selection for next cycle (Figure 12).
		if p.PreSelect != nil && stages > 1 {
			for _, q := range queues {
				markPreSelections(p, q, cycle, stages)
			}
		}

		// ---- Dispatch from the frontend queue into the issue queues.
		dispatchedNow := 0
		for len(frontQ) > 0 && dispatchedNow < m.FetchWidth {
			f := frontQ[0]
			if f.readyAt > cycle {
				break
			}
			in := insts[f.idx]
			q := queueFor(in.Class)
			if len(q.entries) >= q.cap {
				stats.WindowFullStalls++
				break
			}
			if int(f.idx)-head >= m.ROB {
				stats.ROBFullStalls++
				break
			}
			e := winEntry{idx: f.idx, src1: -1, src2: -1}
			e.wake1 = resolveOperand(in.Src1, dataAt, completeAt, cycle, &e.src1)
			e.wake2 = resolveOperand(in.Src2, dataAt, completeAt, cycle, &e.src2)
			q.entries = append(q.entries, e)
			frontQ = frontQ[1:]
			dispatchedNow++
		}

		// ---- Fetch. A mispredicted branch blocks fetch until it resolves
		// (plus any Figure 8 extension of the misprediction loop); a
		// correctly-predicted taken branch just ends the fetch group.
		if fetchBlock >= 0 && completeAt[fetchBlock] != pending &&
			completeAt[fetchBlock]+int64(p.ExtraMispredict) <= cycle {
			fetchBlock = -1 // redirect complete; resume fetch
		}
		// The frontend pipeline holds FetchWidth instructions per stage for
		// frontDepth stages (plus slack for dispatch backpressure).
		frontCap := m.FetchWidth * (frontDepth + 2)
		if fetchBlock < 0 {
			slots := m.FetchWidth
			for slots > 0 && fetchIdx < n && len(frontQ) < frontCap {
				in := insts[fetchIdx]
				frontQ = append(frontQ, fq{idx: int32(fetchIdx), readyAt: cycle + int64(frontDepth)})
				slots--
				if in.Class == isa.Branch {
					guess := pred.Predict(in.PC)
					pred.Update(in.PC, in.Taken, guess)
					if m.PerfectBranches {
						guess = in.Taken
					}
					stats.BranchLookups++
					if guess != in.Taken {
						stats.BranchMispredict++
						fetchBlock = int32(fetchIdx)
						fetchIdx++
						break
					}
					if in.Taken {
						fetchIdx++
						break
					}
				}
				fetchIdx++
			}
		}

		if fetchBlock >= 0 {
			stats.FetchBlockedCycles++
		}
		stats.SimCycles++

		// ---- Watchdog.
		if head == lastHead {
			stuckCycles++
			if stuckCycles > 1_000_000 {
				panic(fmt.Sprintf("pipeline: no commit progress at cycle %d (head=%d, frontQ=%d)",
					cycle, head, len(frontQ)))
			}
		} else {
			lastHead = head
			stuckCycles = 0
		}
		cycle++
	}

	total := uint64(n - warmIdx)
	if warmCycle < 0 {
		warmCycle = 0
		total = uint64(n)
	}
	cycles := uint64(commitAt[n-1] - warmCycle + 1)
	stats.Instructions = total
	stats.Cycles = cycles
	stats.IPC = float64(total) / float64(cycles)
	return stats
}

// resolveOperand computes the wake time of one operand at dispatch. If the
// producer has already issued, the scoreboard covers it and the operand is
// usable as soon as the value exists (completeAt — the wakeup loop taxes
// only in-window tag broadcasts, not register-file reads of older results).
// Otherwise the operand stays pending until the producer's broadcast.
func resolveOperand(src int32, dataAt, completeAt []int64, cycle int64, slot *int32) int64 {
	if src < 0 {
		return 0
	}
	if dataAt[src] != pending {
		if c := completeAt[src]; c > cycle {
			return c
		}
		return 0
	}
	*slot = src
	return pending
}

// issueQueue is one issue window (or one of the 21264's two queues).
type issueQueue struct {
	entries []winEntry
	cap     int
	segSize int // entries per wakeup segment
}

func newIssueQueue(capacity, stages int) *issueQueue {
	return &issueQueue{
		entries: make([]winEntry, 0, capacity),
		cap:     capacity,
		segSize: (capacity + stages - 1) / stages,
	}
}

// issueSelect picks the instructions to issue from one queue this cycle,
// honouring the shared issue widths, the segmented-wakeup visibility times,
// and (when enabled) the partitioned selection quotas. It decrements the
// budgets in place and returns the selected entries, oldest first.
func issueSelect(p Params, insts []trace.Inst, q *issueQueue, cycle int64,
	intBudget, fpBudget *int, stages int, dataAt []int64) []winEntry {

	selected := make([]winEntry, 0, *intBudget+*fpBudget)
	for wi := range q.entries {
		if *intBudget == 0 && *fpBudget == 0 {
			break
		}
		e := &q.entries[wi]
		if dataAt[e.idx] != pending {
			continue // already issued
		}
		if e.wake1 == pending || e.wake2 == pending || e.wake1 > cycle || e.wake2 > cycle {
			continue
		}
		// Partitioned selection: instructions beyond stage 1 are only
		// eligible if a pre-selection block latched them last cycle.
		if p.PreSelect != nil && stages > 1 && wi >= q.segSize && !e.preSelected {
			continue
		}
		if insts[e.idx].Class.IsFP() {
			if *fpBudget == 0 {
				continue
			}
			*fpBudget--
		} else {
			if *intBudget == 0 {
				continue
			}
			*intBudget--
		}
		selected = append(selected, *e)
	}
	return selected
}

// markPreSelections implements the Figure 12 pre-selection blocks: each
// stage beyond the first examines its ready instructions and latches up to
// its quota for the selector to consider next cycle.
func markPreSelections(p Params, q *issueQueue, cycle int64, stages int) {
	quota := make([]int, stages)
	for s := 1; s < stages; s++ {
		n := 0
		if s-1 < len(p.PreSelect) {
			n = p.PreSelect[s-1]
		}
		quota[s] = n
	}
	for wi := range q.entries {
		e := &q.entries[wi]
		s := wi / q.segSize
		if s == 0 {
			continue
		}
		e.preSelected = false
		if s < stages && quota[s] > 0 &&
			e.wake1 != pending && e.wake2 != pending &&
			e.wake1 <= cycle && e.wake2 <= cycle {
			e.preSelected = true
			quota[s]--
		}
	}
}

// execLatency returns the total execution latency of an instruction in
// cycles, resolving loads through the cache hierarchy.
func execLatency(p Params, in trace.Inst, hier *mem.Hierarchy, stats *Stats) int64 {
	tmg := p.Timing
	switch in.Class {
	case isa.Load:
		lvl := mem.L1Hit
		if !p.Machine.PerfectMemory {
			lvl = hier.Access(in.Addr)
		}
		// Table 3's DL1 row is the full load-use latency (the 21264's row
		// reads 3 cycles, its real load-use delay); L2 and memory
		// latencies are likewise total hit latencies.
		var lat int64
		switch lvl {
		case mem.L1Hit:
			stats.L1Hits++
			lat = int64(tmg.DL1)
		case mem.L2Hit:
			stats.L2Hits++
			lat = int64(tmg.L2)
		default:
			stats.MemAccesses++
			lat = int64(tmg.Mem)
		}
		return lat + int64(p.ExtraLoadUse)
	case isa.Store:
		if !p.Machine.PerfectMemory {
			hier.Access(in.Addr)
		}
		return int64(tmg.Exec[isa.Store])
	case isa.Branch:
		return int64(tmg.Exec[isa.Branch])
	default:
		return int64(tmg.Exec[in.Class])
	}
}

// newHierarchy builds the machine's data memory system.
func newHierarchy(m config.Machine) *mem.Hierarchy {
	if m.Cray1SMemory {
		return mem.NewFlat()
	}
	s := m.Structures
	return mem.NewHierarchy(
		mem.NewCache(s.DL1.CapacityBytes, s.DL1.BlockBytes, s.DL1.Assoc),
		mem.NewCache(s.L2.CapacityBytes, s.L2.BlockBytes, s.L2.Assoc),
	)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
