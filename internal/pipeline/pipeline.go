// Package pipeline contains the cycle-level processor simulators at the
// heart of the reproduction: a dynamically scheduled (out-of-order) core
// modeled on the Alpha 21264 and an in-order variant of the same machine
// (Section 4.1). Both take their structure and operation latencies from a
// clock-resolved config.Timing, so scaling the pipeline depth is exactly
// the paper's methodology: pick a useful-FO4-per-stage value, derive every
// latency in cycles, and measure the IPC that survives.
//
// The out-of-order core models the critical loops the paper studies:
//
//   - the issue-wakeup loop: a dependent instruction can issue no earlier
//     than its producer's issue plus max(execution latency, wakeup-loop
//     length), where the loop length is the issue window's access latency
//     plus any Figure 8 extension;
//   - the load-use loop: loads resolve through the simulated cache
//     hierarchy, and consumers wait on the level that actually served them;
//   - the branch-resolution loop: mispredictions (from the simulated
//     tournament predictor) stall fetch until the branch executes, then
//     refill the front end, whose depth grows with clock frequency.
//
// Section 5's segmented instruction window is modeled structurally: tags
// walk one window segment per cycle, the window compacts oldest-first each
// cycle, and the partitioned selection scheme (Figure 12) limits how many
// instructions the upper stages may pre-select, one cycle ahead of the
// final selection.
//
// The simulated machine broadcasts a completing tag to every window entry
// each issue; the simulator itself does not. It walks the trace's consumer
// index (see trace.ConsumerIndexOf) and wakes exactly the issuing
// instruction's resident consumers, at the same segment-resolved cycle the
// broadcast would have delivered — event-driven simulation of a
// broadcast-structured machine, with Stats counters (WakeupWakes vs.
// WakeupScanned) recording the work avoided. All steady-state bookkeeping
// lives in a reusable Scratch, so a run allocates nothing per cycle.
package pipeline

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Params configures one simulation run.
type Params struct {
	Machine config.Machine
	Timing  config.Timing

	// Critical-loop extensions in cycles over the resolved latencies
	// (Figure 8 scales these over the Alpha 21264 baseline).
	ExtraWakeup     int
	ExtraLoadUse    int
	ExtraMispredict int

	// WindowStages pipelines the issue window's wakeup into this many
	// segments (Figure 10/11). 0 or 1 means a conventional single-segment
	// window.
	WindowStages int

	// PreSelect, when non-nil, enables the Figure 12 partitioned selection
	// scheme: entry i is the maximum number of instructions stage i+2 may
	// pre-select per cycle (the paper uses {5, 2, 1} for a 4-stage window).
	// Pre-selected instructions reach the final selector one cycle later;
	// stage 1 is always fully visible to the selector.
	PreSelect []int

	// NaivePipelining, when true, models the pessimistic window pipelining
	// Stark et al. argue against: the wakeup loop simply grows to
	// WindowStages cycles for every dependence, preventing back-to-back
	// issue of dependent instructions.
	NaivePipelining bool

	// Warmup is the number of leading instructions excluded from the
	// reported IPC (caches and predictor still train on them).
	Warmup int
}

// Stats is the outcome of a run.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64

	BranchLookups    uint64
	BranchMispredict uint64
	L1Hits           uint64
	L2Hits           uint64
	MemAccesses      uint64
	WindowFullStalls uint64
	ROBFullStalls    uint64

	// Diagnostics (out-of-order core only).
	SimCycles          uint64 // total simulated cycles including warmup
	SumWindowOcc       uint64 // window occupancy summed per cycle
	SumIssued          uint64 // instructions issued summed per cycle
	FetchBlockedCycles uint64 // cycles fetch was stalled on a mispredict

	// Wakeup accounting (out-of-order core only): WakeupWakes counts
	// operand wakeups actually delivered through the consumer index;
	// WakeupScanned counts the window entries a per-issue broadcast scan
	// would have examined for the same schedule. Their ratio is the
	// algorithmic saving of event-driven wakeup — the simulated machine
	// still pays for the full broadcast (that is the paper's subject),
	// the simulator no longer does.
	WakeupWakes   uint64
	WakeupScanned uint64
}

// AvgWindowOcc returns the mean issue-window occupancy per cycle.
func (s Stats) AvgWindowOcc() float64 {
	if s.SimCycles == 0 {
		return 0
	}
	return float64(s.SumWindowOcc) / float64(s.SimCycles)
}

// Run simulates tr on the configured machine and returns its statistics.
//
// Run is safe for concurrent use: all simulation state (predictor tables,
// cache hierarchy, window occupancy) lives in a Scratch borrowed from a
// package pool for the duration of the call, the trace is only read
// (immutable by contract, see internal/trace), and Params is passed by
// value. The sweep engine relies on this to run many simulations of the
// same trace in parallel; internal/core's race tests pin it. Callers with
// their own run loop can hold a Scratch and use RunWith to skip the pool.
func Run(p Params, tr *trace.Trace) Stats {
	s := scratchPool.Get().(*Scratch)
	stats := RunWith(p, tr, s)
	scratchPool.Put(s)
	return stats
}

// RunWith simulates like Run but on caller-owned scratch state, reusing
// its allocations. Results are identical to Run's for any scratch
// history — every run re-initializes the state it reads — but a Scratch
// must not be shared by concurrent calls. A nil scratch is allowed and
// simulates on fresh state.
func RunWith(p Params, tr *trace.Trace, s *Scratch) Stats {
	if s == nil {
		s = NewScratch()
	}
	if p.Machine.InOrder {
		return runInOrder(p, tr, s)
	}
	return runOutOfOrder(p, tr, s)
}

const pending = math.MaxInt64

// winEntry is one issue-window slot. Readiness is kept as a single
// timestamp so the selection scan is one comparison per entry: ready is
// the cycle both operands are visible, or pending while any operand
// still awaits its producer's wakeup; acc accumulates the max wake time
// of the operands scheduled so far and becomes ready when the last
// producer delivers.
type winEntry struct {
	ready       int64 // cycle the entry is selectable; pending until fully scheduled
	acc         int64 // max wake time over the operands scheduled so far
	idx         int32 // trace index
	src1, src2  int32 // producer indices still awaited (-1 once resolved)
	preSelected bool  // latched by a pre-selection block (Figure 12)
}

func runOutOfOrder(p Params, tr *trace.Trace, scr *Scratch) Stats {
	m := p.Machine
	tmg := p.Timing
	insts := tr.Insts
	n := len(insts)
	if n == 0 {
		panic("pipeline: empty trace")
	}
	stages := p.WindowStages
	if stages < 1 {
		stages = 1
	}

	// Issue queues: the 21264's separate integer and floating-point queues
	// by default, or one shared window when UnifiedWindow is set (the
	// Section 5 experiments use a unified 32-entry window). Segmentation
	// divides each queue into equal stages.
	queues := scr.queues(m, stages)
	intQ := queues[0]
	fpQ := queues[len(queues)-1] // same queue as intQ when unified

	// The reverse dependence adjacency: who consumes each instruction's
	// result. Built once per trace and cached process-wide, it lets issue
	// wake a producer's actual consumers directly instead of re-scanning
	// every window entry per issued instruction.
	consumers := tr.ConsumerIndexOf()

	pred := scr.predictor()
	hier := scr.hierarchy(m)
	hier.Coverage = tr.PrefetchCoverage
	hier.Prewarm(tr.HotBytes, tr.WarmBytes)

	// Per-instruction dynamic state, reset to pending/-1 for this run.
	scr.arenas(n)
	dataAt := scr.dataAt         // cycle a consumer may issue (post-bypass)
	completeAt := scr.completeAt // cycle the instruction has executed
	commitAt := scr.commitAt
	queuePos := scr.queuePos // issue-queue position while resident

	// Front-end depth in cycles: fetch (instruction cache / predictor),
	// decode, rename, dispatch.
	frontDepth := maxInt(tmg.IL1, tmg.BPred) + 1 + tmg.Rename + 1
	wakeLoop := int64(tmg.Window + p.ExtraWakeup)
	if p.NaivePipelining {
		wakeLoop = int64(stages) + int64(p.ExtraWakeup)
	}

	// Frontend queue between fetch and dispatch.
	frontQ := &scr.frontQ
	frontQ.reset()
	stats := Stats{}

	selected := scr.selScratch(m.IntIssue + m.FPIssue)
	// Partitioned selection latches entries one cycle ahead of issue, so
	// its queues must be scanned every cycle; everywhere else the
	// next-ready bound lets stall cycles skip the selection scan.
	preSel := p.PreSelect != nil && stages > 1
	var quota []int
	if preSel {
		quota = scr.quotaScratch(stages)
	}

	var (
		cycle       int64
		fetchIdx    int        // next trace index to fetch
		head        int        // oldest in-flight (ROB head)
		fetchBlock  int32 = -1 // mispredicted branch blocking fetch
		warmCycle   int64 = -1
		warmIdx           = p.Warmup
		lastHead          = -1
		stuckCycles int64
	)
	if warmIdx >= n {
		warmIdx = 0
	}

	// issueBudget per class cluster, reset each cycle.
	for head < n {
		// ---- Commit: oldest first, up to CommitWidth, completed only.
		committed := 0
		for head < n && committed < m.CommitWidth &&
			completeAt[head] != pending && completeAt[head] < cycle {
			commitAt[head] = cycle
			if head == warmIdx && warmCycle < 0 {
				warmCycle = cycle
			}
			head++
			committed++
		}

		// ---- Selection and issue. Pre-selection latches (Figure 12) were
		// set at the end of the previous cycle via preSelected flags.
		intBudget, fpBudget := m.IntIssue, m.FPIssue
		var issuedFrom [2]bool
		for qi, q := range queues {
			stats.SumWindowOcc += uint64(len(q.entries))
			if !preSel && cycle < q.nextReady {
				continue // provably nothing selectable this cycle
			}
			issued, nextReady := issueSelect(p, insts, q, cycle, &intBudget, &fpBudget, preSel, selected[:0])
			q.nextReady = nextReady
			stats.SumIssued += uint64(len(issued))
			for _, idx := range issued {
				issuedFrom[qi] = true
				in := insts[idx]
				lat := execLatency(p, in, hier, &stats)
				completeAt[idx] = cycle + lat
				d := cycle + maxInt64(lat, wakeLoop)
				dataAt[idx] = d
				// Tombstone the issued entry for this cycle's compaction.
				// Its operands were already resolved (src fields are -1),
				// so no same-cycle consumer walk can match it.
				q.entries[queuePos[idx]].idx = -1
				queuePos[idx] = -1
				// Wakeup. The machine broadcasts the completing tag across
				// every window entry; the simulator walks the consumer
				// index and delivers to the dependents actually resident in
				// a queue. With a segmented window the tag reaches segment
				// s at d + s, so a consumer sitting in segment s when the
				// producer issues sees its operand s cycles later (stage 1
				// sees it immediately, preserving back-to-back issue for
				// the oldest instructions). d always lands beyond the
				// current cycle, so delivery order within a cycle cannot
				// change this cycle's selection — exactly like the
				// broadcast scan this replaces.
				for _, dq := range queues {
					stats.WakeupScanned += uint64(len(dq.entries))
				}
				for _, c := range consumers.Consumers(idx) {
					pos := queuePos[c]
					if pos < 0 {
						continue // not dispatched yet, or operand resolved at dispatch
					}
					dq := intQ
					if insts[c].Class.IsFP() {
						dq = fpQ
					}
					e := &dq.entries[pos]
					seg := int64(0)
					if stages > 1 && !p.NaivePipelining {
						seg = int64(int(pos) / dq.segSize)
					}
					if e.src1 == idx {
						if w := d + seg; w > e.acc {
							e.acc = w
						}
						e.src1 = -1
						stats.WakeupWakes++
					}
					if e.src2 == idx {
						if w := d + seg; w > e.acc {
							e.acc = w
						}
						e.src2 = -1
						stats.WakeupWakes++
					}
					if e.src1 == -1 && e.src2 == -1 {
						// Fully scheduled: the entry becomes selectable
						// once both operands are visible; lower the
						// queue's next-ready bound to match.
						e.ready = e.acc
						if e.acc < dq.nextReady {
							dq.nextReady = e.acc
						}
					}
				}
			}
		}
		// Remove issued entries; each queue compacts oldest-first at the
		// start of the next cycle (the paper's collapsing window). Only a
		// queue that issued has anything to remove.
		for qi, q := range queues {
			if !issuedFrom[qi] {
				continue
			}
			keep := q.entries[:0]
			for _, e := range q.entries {
				if e.idx >= 0 {
					queuePos[e.idx] = int32(len(keep))
					keep = append(keep, e)
				}
			}
			q.entries = keep
		}

		// ---- Pre-selection for next cycle (Figure 12).
		if p.PreSelect != nil && stages > 1 {
			for _, q := range queues {
				markPreSelections(p, q, cycle, stages, quota)
			}
		}

		// ---- Dispatch from the frontend queue into the issue queues.
		dispatchedNow := 0
		for frontQ.len() > 0 && dispatchedNow < m.FetchWidth {
			f := frontQ.front()
			if f.readyAt > cycle {
				break
			}
			in := insts[f.idx]
			q := intQ
			if in.Class.IsFP() {
				q = fpQ
			}
			if len(q.entries) >= q.cap {
				stats.WindowFullStalls++
				break
			}
			if int(f.idx)-head >= m.ROB {
				stats.ROBFullStalls++
				break
			}
			e := winEntry{idx: f.idx, src1: -1, src2: -1, ready: pending}
			w1 := resolveOperand(in.Src1, dataAt, completeAt, cycle, &e.src1)
			w2 := resolveOperand(in.Src2, dataAt, completeAt, cycle, &e.src2)
			if e.src1 == -1 && e.acc < w1 {
				e.acc = w1
			}
			if e.src2 == -1 && e.acc < w2 {
				e.acc = w2
			}
			if e.src1 == -1 && e.src2 == -1 {
				// Dispatched fully scheduled: it can issue once both
				// operands are visible, no earlier than the next cycle
				// (dispatch follows this cycle's selection).
				e.ready = e.acc
				c := maxInt64(e.acc, cycle+1)
				if c < q.nextReady {
					q.nextReady = c
				}
			}
			queuePos[f.idx] = int32(len(q.entries))
			q.entries = append(q.entries, e)
			frontQ.pop()
			dispatchedNow++
		}

		// ---- Fetch. A mispredicted branch blocks fetch until it resolves
		// (plus any Figure 8 extension of the misprediction loop); a
		// correctly-predicted taken branch just ends the fetch group.
		if fetchBlock >= 0 && completeAt[fetchBlock] != pending &&
			completeAt[fetchBlock]+int64(p.ExtraMispredict) <= cycle {
			fetchBlock = -1 // redirect complete; resume fetch
		}
		// The frontend pipeline holds FetchWidth instructions per stage for
		// frontDepth stages (plus slack for dispatch backpressure).
		frontCap := m.FetchWidth * (frontDepth + 2)
		if fetchBlock < 0 {
			slots := m.FetchWidth
			for slots > 0 && fetchIdx < n && frontQ.len() < frontCap {
				in := insts[fetchIdx]
				frontQ.push(fq{idx: int32(fetchIdx), readyAt: cycle + int64(frontDepth)})
				slots--
				if in.Class == isa.Branch {
					guess := pred.Predict(in.PC)
					pred.Update(in.PC, in.Taken, guess)
					if m.PerfectBranches {
						guess = in.Taken
					}
					stats.BranchLookups++
					if guess != in.Taken {
						stats.BranchMispredict++
						fetchBlock = int32(fetchIdx)
						fetchIdx++
						break
					}
					if in.Taken {
						fetchIdx++
						break
					}
				}
				fetchIdx++
			}
		}

		if fetchBlock >= 0 {
			stats.FetchBlockedCycles++
		}
		stats.SimCycles++

		// ---- Watchdog.
		if head == lastHead {
			stuckCycles++
			if stuckCycles > 1_000_000 {
				panic(fmt.Sprintf("pipeline: no commit progress at cycle %d (head=%d, frontQ=%d)",
					cycle, head, frontQ.len()))
			}
		} else {
			lastHead = head
			stuckCycles = 0
		}
		cycle++
	}

	total := uint64(n - warmIdx)
	if warmCycle < 0 {
		warmCycle = 0
		total = uint64(n)
	}
	cycles := uint64(commitAt[n-1] - warmCycle + 1)
	stats.Instructions = total
	stats.Cycles = cycles
	stats.IPC = float64(total) / float64(cycles)
	return stats
}

// resolveOperand computes the wake time of one operand at dispatch. If the
// producer has already issued, the scoreboard covers it and the operand is
// usable as soon as the value exists (completeAt — the wakeup loop taxes
// only in-window tag broadcasts, not register-file reads of older results).
// Otherwise the operand stays pending until the producer's issue delivers
// it through the consumer index.
func resolveOperand(src int32, dataAt, completeAt []int64, cycle int64, slot *int32) int64 {
	if src < 0 {
		return 0
	}
	if dataAt[src] != pending {
		if c := completeAt[src]; c > cycle {
			return c
		}
		return 0
	}
	*slot = src
	return pending
}

// issueQueue is one issue window (or one of the 21264's two queues).
type issueQueue struct {
	entries []winEntry
	cap     int
	segSize int // entries per wakeup segment

	// nextReady is a lower bound on the next cycle at which any resident
	// entry could issue; while cycle < nextReady the selection scan is
	// skipped entirely (see issueSelect for how the bound is maintained).
	// It is advisory-low only — a stale small value costs a wasted scan,
	// never a changed schedule — and is ignored under partitioned
	// selection, whose latches couple consecutive cycles.
	nextReady int64
}

// reset configures the queue for a run, reusing the entry storage.
func (q *issueQueue) reset(capacity, stages int) {
	if cap(q.entries) < capacity {
		q.entries = make([]winEntry, 0, capacity)
	}
	q.entries = q.entries[:0]
	q.cap = capacity
	q.segSize = (capacity + stages - 1) / stages
	q.nextReady = 0
}

// issueSelect picks the instructions to issue from one queue this cycle,
// honouring the shared issue widths, the segmented-wakeup visibility times,
// and (when enabled) the partitioned selection quotas. It decrements the
// budgets in place and appends the selected trace indices to sel, oldest
// first, returning the filled slice (caller-provided scratch; never
// allocates at steady state).
//
// The second result is the queue's next-ready bound: the earliest cycle
// at which this queue could select anything, given what this scan saw. An
// entry whose operands are both scheduled contributes their max wake
// time; an entry that was ready but lost to a budget (it stays resident)
// forces cycle+1; a scan cut short by budget exhaustion learns nothing
// beyond cycle+1. Entries still awaiting a producer contribute nothing —
// the wakeup delivery that schedules them lowers the queue's bound at
// delivery time. Wake deliveries always land beyond the current cycle
// (every resolved latency is at least one cycle), so the bound being a
// true lower bound means skipped scans select exactly what a real scan
// would have: nothing.
func issueSelect(p Params, insts []trace.Inst, q *issueQueue, cycle int64,
	intBudget, fpBudget *int, preSel bool, sel []int32) ([]int32, int64) {

	nextReady := int64(pending)
	for wi := range q.entries {
		if *intBudget == 0 && *fpBudget == 0 {
			nextReady = cycle + 1
			break
		}
		e := &q.entries[wi]
		// Resident entries are always un-issued (issued ones are compacted
		// away the same cycle), so the single ready timestamp decides
		// selectability; it doubles as the entry's next-ready contribution
		// (pending, meaning "still awaiting a producer", never lowers the
		// bound since nextReady starts there).
		if e.ready > cycle {
			if e.ready < nextReady {
				nextReady = e.ready
			}
			continue
		}
		// Partitioned selection: instructions beyond stage 1 are only
		// eligible if a pre-selection block latched them last cycle.
		if preSel && wi >= q.segSize && !e.preSelected {
			nextReady = cycle + 1
			continue
		}
		if insts[e.idx].Class.IsFP() {
			if *fpBudget == 0 {
				nextReady = cycle + 1
				continue
			}
			*fpBudget--
		} else {
			if *intBudget == 0 {
				nextReady = cycle + 1
				continue
			}
			*intBudget--
		}
		sel = append(sel, e.idx)
	}
	return sel, nextReady
}

// markPreSelections implements the Figure 12 pre-selection blocks: each
// stage beyond the first examines its ready instructions and latches up to
// its quota for the selector to consider next cycle. quota is caller
// scratch of at least stages slots, overwritten on every call.
func markPreSelections(p Params, q *issueQueue, cycle int64, stages int, quota []int) {
	for s := 1; s < stages; s++ {
		n := 0
		if s-1 < len(p.PreSelect) {
			n = p.PreSelect[s-1]
		}
		quota[s] = n
	}
	for wi := range q.entries {
		e := &q.entries[wi]
		s := wi / q.segSize
		if s == 0 {
			continue
		}
		e.preSelected = false
		if s < stages && quota[s] > 0 && e.ready <= cycle {
			e.preSelected = true
			quota[s]--
		}
	}
}

// execLatency returns the total execution latency of an instruction in
// cycles, resolving loads through the cache hierarchy.
func execLatency(p Params, in trace.Inst, hier *mem.Hierarchy, stats *Stats) int64 {
	tmg := p.Timing
	switch in.Class {
	case isa.Load:
		lvl := mem.L1Hit
		if !p.Machine.PerfectMemory {
			lvl = hier.Access(in.Addr)
		}
		// Table 3's DL1 row is the full load-use latency (the 21264's row
		// reads 3 cycles, its real load-use delay); L2 and memory
		// latencies are likewise total hit latencies.
		var lat int64
		switch lvl {
		case mem.L1Hit:
			stats.L1Hits++
			lat = int64(tmg.DL1)
		case mem.L2Hit:
			stats.L2Hits++
			lat = int64(tmg.L2)
		default:
			stats.MemAccesses++
			lat = int64(tmg.Mem)
		}
		return lat + int64(p.ExtraLoadUse)
	case isa.Store:
		if !p.Machine.PerfectMemory {
			hier.Access(in.Addr)
		}
		return int64(tmg.Exec[isa.Store])
	case isa.Branch:
		return int64(tmg.Exec[isa.Branch])
	default:
		return int64(tmg.Exec[in.Class])
	}
}

// newHierarchy builds the machine's data memory system.
func newHierarchy(m config.Machine) *mem.Hierarchy {
	if m.Cray1SMemory {
		return mem.NewFlat()
	}
	s := m.Structures
	return mem.NewHierarchy(
		mem.NewCache(s.DL1.CapacityBytes, s.DL1.BlockBytes, s.DL1.Assoc),
		mem.NewCache(s.L2.CapacityBytes, s.L2.BlockBytes, s.L2.Assoc),
	)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
