package latch

import (
	"testing"

	"repro/internal/circuit"
)

func TestFlipFlopOverheadExceedsPulseLatch(t *testing.T) {
	// The comparison behind the paper's latch choice (Section 2, citing
	// Stojanović & Oklobdžija and Heo et al.): an edge-triggered
	// master-slave flip-flop pays substantially more D-Q overhead than a
	// level-sensitive pulse latch — two latch stages instead of one.
	cmp := MeasureFlipFlopOverhead(circuit.Params100nm, 4.0)
	if cmp.FlipFlopFO4 <= cmp.PulseLatch.OverheadFO4 {
		t.Errorf("flip-flop overhead (%.2f FO4) not above pulse latch (%.2f FO4)",
			cmp.FlipFlopFO4, cmp.PulseLatch.OverheadFO4)
	}
	if cmp.OverheadRatio < 1.5 || cmp.OverheadRatio > 5 {
		t.Errorf("flip-flop/latch overhead ratio = %.2f, want 1.5–5x", cmp.OverheadRatio)
	}
	// An edge-triggered element still needs data before its sampling edge.
	if cmp.FlipFlopSetup > 20 {
		t.Errorf("flip-flop setup = %.0f ps after the edge; implausible", cmp.FlipFlopSetup)
	}
}

func TestFlipFlopRejectsLateData(t *testing.T) {
	held, _ := ffTrial(circuit.Params100nm, 300, 340)
	if held {
		t.Error("flip-flop captured data arriving 40 ps after the sampling edge")
	}
}
