// Package latch contains the circuit-level experiments of Sections 2 and
// Appendix A of the paper, built on the transient simulator in
// internal/circuit:
//
//   - MeasureFO4 measures the reference fan-out-of-four inverter delay.
//   - MeasureLatchOverhead rebuilds the pulse-latch testbench of Figure 3
//     (clock and data buffered by six inverters, output driving a second
//     latch with its transmission gate on), sweeps the data edge toward the
//     falling clock edge, and reports the latch overhead: the smallest D-Q
//     delay before the latch fails to hold the sampled value, following
//     Stojanović and Oklobdžija's methodology.
//   - MeasureECLGate measures the delay of the CMOS equivalent of one Cray
//     ECL gate (a 4-input NAND driving a 5-input NAND, Figure 13).
//
// All results are reported both in picoseconds and relative to the measured
// FO4, because the paper's conclusions are stated in FO4.
package latch

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// simDt is the transient timestep in ps. Small enough that measured delays
// are stable to a fraction of a picosecond.
const simDt = 0.1

// MeasureFO4 measures the delay of an inverter driving four copies of
// itself: a five-stage unit-inverter chain in which every internal node
// carries three additional dummy inverter loads (one fan-out is the chain
// itself). The returned value is the average of the rising and falling
// propagation delays of a middle stage, in picoseconds. At the calibrated
// 100nm parameters this is ~36 ps.
func MeasureFO4(p circuit.Params) float64 {
	c := circuit.New(p)
	vdd := c.VDDNode()
	in := c.Node("in")
	c.V(in, circuit.Step(0, p.VDD, 100, 20))

	const stages = 5
	nodes := make([]circuit.Node, stages+1)
	nodes[0] = in
	for i := 1; i <= stages; i++ {
		nodes[i] = c.Node(fmt.Sprintf("n%d", i))
		c.Inverter(vdd, nodes[i-1], nodes[i], 1)
		c.FanoutLoad(vdd, nodes[i], 3, 1)
	}
	res := c.SimulateSettled(800, 600, simDt)

	half := p.VDD / 2
	// Stage 3: input nodes[2], output nodes[3]. The step is rising, so
	// nodes[2] rises (two inversions) and nodes[3] falls.
	tIn, ok1 := res.CrossTime(nodes[2], half, true, 0)
	tOut, ok2 := res.CrossTime(nodes[3], half, false, tIn)
	// Stage 4 gives the opposite edge: nodes[3] falls, nodes[4] rises.
	tOut2, ok3 := res.CrossTime(nodes[4], half, true, tOut)
	if !ok1 || !ok2 || !ok3 {
		panic("latch: FO4 chain did not switch; device model is broken")
	}
	fall := tOut - tIn
	rise := tOut2 - tOut
	return (fall + rise) / 2
}

// OverheadResult is the outcome of the pulse-latch experiment.
type OverheadResult struct {
	FO4Ps       float64 // measured FO4 reference delay, ps
	OverheadPs  float64 // latch overhead: min passing D-Q delay, ps
	OverheadFO4 float64 // OverheadPs / FO4Ps; the paper reports 1.0
	SetupPs     float64 // latest passing data-edge time relative to the
	// falling clock edge (negative = data must arrive before the edge)
	FailEdgePs float64 // first failing data-edge offset, ps
}

// latchBench holds the nodes of one constructed latch testbench.
type latchBench struct {
	c          *circuit.Circuit
	dIn, clkIn circuit.Node // raw sources, before the 6-inverter buffers
	dLatch     circuit.Node // data as seen at the latch input
	store, q   circuit.Node
}

// buildLatchBench constructs Figure 3: data and clock each buffered through
// six inverters, a pulse latch, and a second latch (transmission gate on)
// as the output load.
func buildLatchBench(p circuit.Params) *latchBench {
	c := circuit.New(p)
	vdd := c.VDDNode()

	dIn := c.Node("d_src")
	clkIn := c.Node("clk_src")

	// Six-inverter buffers on data and clock, with the final stages upsized
	// as a real driver would be (they drive the transmission gate and the
	// latch clock gates respectively).
	dMid, _ := c.InverterChain(vdd, dIn, 5, 1, "dbuf")
	dBuf := c.Node("dbuf_f")
	c.Inverter(vdd, dMid, dBuf, 4)

	clkMid, _ := c.InverterChain(vdd, clkIn, 4, 1, "cbuf")
	clkBar := c.Node("clkbar")
	c.Inverter(vdd, clkMid, clkBar, 2) // 5 inversions: inverted clock
	clkB := c.Node("clkb")
	c.Inverter(vdd, clkBar, clkB, 4) // 6 inversions: true clock
	store, q := c.PulseLatch(vdd, dBuf, clkB, clkBar, 0.7)

	// Output load: a second latch whose transmission gate is turned on.
	on := c.Node("tg_on")
	off := c.Node("tg_off")
	c.V(on, circuit.DC(p.VDD))
	c.V(off, circuit.DC(0))
	store2, _ := c.PulseLatch(vdd, q, on, off, 1)
	_ = store2

	return &latchBench{c: c, dIn: dIn, clkIn: clkIn, dLatch: dBuf, store: store, q: q}
}

// latchTrial runs one capture trial: the clock pulse is high during
// [clkRise, clkFall] and the data input steps 0→1 at dEdge (all in ps at
// the sources; the six-inverter buffers add their own delay downstream).
// It reports whether the latch held a high value well after the falling
// edge, and the D-Q delay measured at the latch terminals.
func latchTrial(p circuit.Params, clkRise, clkFall, dEdge float64) (held bool, dq float64) {
	b := buildLatchBench(p)
	const edge = 15 // source edge rate, ps
	stop := clkFall + 260
	b.c.V(b.clkIn, circuit.PWL{
		{T: 0, V: 0}, {T: clkRise, V: 0}, {T: clkRise + edge, V: p.VDD},
		{T: clkFall, V: p.VDD}, {T: clkFall + edge, V: 0},
	})
	b.c.V(b.dIn, circuit.Step(0, p.VDD, dEdge, edge))
	res := b.c.SimulateSettled(800, stop, simDt)

	// Held: the latch inverts (Q = NOT(store)), so after capturing a rising
	// D the output Q must be low at the end of the observation window, long
	// after the transmission gate has shut.
	held = res.FinalVoltage(b.q) < 0.2*p.VDD

	half := p.VDD / 2
	tD, okD := res.CrossTime(b.dLatch, half, true, 0)
	tQ, okQ := res.CrossTime(b.q, half, false, tD)
	if okD && okQ {
		dq = tQ - tD
	} else {
		dq = math.Inf(1)
	}
	return held, dq
}

// MeasureLatchOverhead runs the Section 2 experiment: move the data edge
// progressively closer to the falling clock edge until the latch fails to
// hold, and report the smallest passing D-Q delay. step is the sweep
// granularity in ps (1.0 reproduces the paper's precision; larger is
// faster).
func MeasureLatchOverhead(p circuit.Params, step float64) OverheadResult {
	if step <= 0 {
		step = 1.0
	}
	fo4 := MeasureFO4(p)

	const clkRise, clkFall = 100.0, 260.0
	// The data edge starts far before the falling edge (an easy capture)
	// and walks toward and past it until the capture fails.
	minDQ := math.Inf(1)
	lastPass := math.Inf(-1)
	failEdge := math.NaN()
	sawPass := false
	for off := -120.0; off <= 40.0; off += step {
		held, dq := latchTrial(p, clkRise, clkFall, clkFall+off)
		if held {
			if dq < minDQ {
				minDQ = dq
			}
			lastPass = off
			sawPass = true
		} else if sawPass && math.IsNaN(failEdge) {
			failEdge = off
			break
		}
	}
	if math.IsInf(minDQ, 1) {
		panic("latch: no passing capture found; testbench is broken")
	}
	return OverheadResult{
		FO4Ps:       fo4,
		OverheadPs:  minDQ,
		OverheadFO4: minDQ / fo4,
		SetupPs:     lastPass,
		FailEdgePs:  failEdge,
	}
}

// ECLResult is the outcome of the Appendix A experiment.
type ECLResult struct {
	FO4Ps      float64 // measured FO4 reference, ps
	GatePs     float64 // delay of the NAND4→NAND5 pair, ps
	GateFO4    float64 // GatePs / FO4Ps; the paper reports 1.36
	PerStageEq float64 // FO4 per Cray-1S pipeline stage (8 such gates)
}

// MeasureECLGate measures the CMOS equivalent of one Cray-1S ECL gate: a
// 4-input NAND (the gate delay) driving a 5-input NAND (standing in for the
// transmission-line wire delay), per Figure 13. Unused inputs are tied to
// VDD so each NAND acts as an inverter on the switching input.
func MeasureECLGate(p circuit.Params) ECLResult {
	fo4 := MeasureFO4(p)

	c := circuit.New(p)
	vdd := c.VDDNode()
	in := c.Node("in")
	c.V(in, circuit.Step(0, p.VDD, 100, 20))

	// Shape the input edge through two inverters so the measurement sees a
	// realistic slope, as in the FO4 measurement.
	shaped, _ := c.InverterChain(vdd, in, 2, 1, "shape")

	mid := c.Node("mid")
	out := c.Node("out")
	ins4 := []circuit.Node{shaped, vdd, vdd, vdd}
	c.NAND(vdd, mid, ins4, 1)
	ins5 := []circuit.Node{mid, vdd, vdd, vdd, vdd}
	c.NAND(vdd, out, ins5, 1)
	// Load: one more gate input, as the next ECL stage.
	dummy := c.Node("next")
	c.NAND(vdd, dummy, []circuit.Node{out, vdd, vdd, vdd}, 1)

	res := c.SimulateSettled(800, 700, simDt)
	half := p.VDD / 2
	// shaped rises (two inversions of a rising step), mid falls, out rises.
	tIn, ok1 := res.CrossTime(shaped, half, true, 0)
	tOut, ok2 := res.CrossTime(out, half, true, tIn)
	if !ok1 || !ok2 {
		panic("latch: ECL testbench did not switch")
	}
	gate := tOut - tIn
	return ECLResult{
		FO4Ps:      fo4,
		GatePs:     gate,
		GateFO4:    gate / fo4,
		PerStageEq: 8 * gate / fo4,
	}
}
