package latch

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func TestMeasureFO4Calibration(t *testing.T) {
	// The device model is calibrated so one FO4 is 36 ps at 100nm
	// (360 ps × 0.1 µm drawn gate length).
	got := MeasureFO4(circuit.Params100nm)
	if math.Abs(got-36) > 1.5 {
		t.Errorf("FO4 = %.2f ps, want 36 ± 1.5", got)
	}
}

func TestLatchOverheadNearOneFO4(t *testing.T) {
	// Table 1: the paper measures the pulse-latch overhead as 36 ps at
	// 100nm, i.e. 1 FO4. Our switch-level testbench lands in the same band.
	r := MeasureLatchOverhead(circuit.Params100nm, 2.0)
	if r.OverheadFO4 < 0.6 || r.OverheadFO4 > 1.3 {
		t.Errorf("latch overhead = %.3f FO4 (%.1f ps), want ~1 FO4", r.OverheadFO4, r.OverheadPs)
	}
	if r.OverheadPs < 20 || r.OverheadPs > 47 {
		t.Errorf("latch overhead = %.1f ps, want near the paper's 36 ps", r.OverheadPs)
	}
	// The failure edge must come after the last passing edge, separated by
	// exactly one sweep step.
	if math.IsNaN(r.FailEdgePs) {
		t.Fatal("no failure edge found: the latch never failed to capture")
	}
	if got := r.FailEdgePs - r.SetupPs; math.Abs(got-2.0) > 1e-9 {
		t.Errorf("fail edge - setup = %.2f ps, want one sweep step (2.0)", got)
	}
	// A real latch needs data before the clock shuts: setup must be
	// negative relative to the falling edge at the (buffer-skewed) sources.
	if r.SetupPs > 20 {
		t.Errorf("setup = %.1f ps after the falling edge; implausibly late", r.SetupPs)
	}
}

func TestLatchDQGrowsNearFailure(t *testing.T) {
	// Stojanović methodology: as the data edge approaches the failure
	// point, the D-Q delay rises (the latch takes longer to resolve).
	const clkRise, clkFall = 100.0, 260.0
	heldFar, dqFar := latchTrial(circuit.Params100nm, clkRise, clkFall, clkFall-110)
	if !heldFar {
		t.Fatal("capture with ample setup failed")
	}
	r := MeasureLatchOverhead(circuit.Params100nm, 2.0)
	heldNear, dqNear := latchTrial(circuit.Params100nm, clkRise, clkFall, clkFall+r.SetupPs)
	if !heldNear {
		t.Fatal("capture at the measured setup point failed")
	}
	if dqNear < dqFar-2 {
		t.Errorf("D-Q near failure (%.1f ps) below D-Q far from failure (%.1f ps)", dqNear, dqFar)
	}
}

func TestLatchHoldsLowWithoutDataEdge(t *testing.T) {
	// If D stays low through the pulse, the latch must keep Q high (the
	// latch inverts): no spurious capture.
	p := circuit.Params100nm
	b := buildLatchBench(p)
	const edge = 15
	b.c.V(b.clkIn, circuit.PWL{
		{T: 0, V: 0}, {T: 100, V: 0}, {T: 100 + edge, V: p.VDD},
		{T: 260, V: p.VDD}, {T: 260 + edge, V: 0},
	})
	b.c.V(b.dIn, circuit.DC(0))
	res := b.c.SimulateSettled(800, 520, 0.1)
	if q := res.FinalVoltage(b.q); q < 0.8*p.VDD {
		t.Errorf("Q = %.2f V after pulsing with D=0; want held high", q)
	}
	if s := res.FinalVoltage(b.store); s > 0.2*p.VDD {
		t.Errorf("store = %.2f V after pulsing with D=0; want held low", s)
	}
}

func TestLatchFailsWhenDataTooLate(t *testing.T) {
	// A data edge well after the falling clock edge must not be captured.
	const clkRise, clkFall = 100.0, 260.0
	held, _ := latchTrial(circuit.Params100nm, clkRise, clkFall, clkFall+120)
	if held {
		t.Error("latch captured data arriving 120 ps after the falling edge")
	}
}

func TestECLGateEquivalent(t *testing.T) {
	// Appendix A: the CMOS equivalent of one Cray ECL gate (NAND4 driving
	// NAND5) has a latency of order one-and-a-half FO4 (the paper's SPICE
	// gives 1.36; our switch-level RC model gives ~1.8 — same scale, see
	// EXPERIMENTS.md). Eight such gates per Cray-1S stage put the scalar
	// machine's stage at roughly 11-14 FO4, bracketing the paper's 10.9.
	e := MeasureECLGate(circuit.Params100nm)
	if e.GateFO4 < 1.1 || e.GateFO4 > 2.0 {
		t.Errorf("ECL gate = %.3f FO4, want in [1.1, 2.0] (paper: 1.36)", e.GateFO4)
	}
	if got := e.PerStageEq; math.Abs(got-8*e.GateFO4) > 1e-9 {
		t.Errorf("PerStageEq = %v, want 8×GateFO4", got)
	}
	if e.GatePs <= 0 || e.FO4Ps <= 0 {
		t.Error("non-positive measured delays")
	}
}

func TestOverheadScaleInvariance(t *testing.T) {
	// FO4-relative results barely move when the technology is uniformly
	// slowed (all resistances scaled): that is the point of the FO4 metric.
	slow := circuit.Params100nm
	slow.RonN *= 1.3
	slow.RonP *= 1.3
	base := MeasureLatchOverhead(circuit.Params100nm, 4.0)
	scaled := MeasureLatchOverhead(slow, 4.0)
	if math.Abs(base.OverheadFO4-scaled.OverheadFO4) > 0.35 {
		t.Errorf("overhead in FO4 moved from %.3f to %.3f under uniform R scaling",
			base.OverheadFO4, scaled.OverheadFO4)
	}
}
