package latch

import (
	"math"

	"repro/internal/circuit"
)

// This file extends the Section 2 experiments with the comparison the
// paper cites to justify its latch choice: Heo, Krashinsky and Asanović
// (and Stojanović & Oklobdžija) show that a level-sensitive pulse latch
// has lower overhead than an edge-triggered master-slave flip-flop. We
// build the flip-flop from two back-to-back pulse-latch stages clocked on
// opposite phases and measure its D-Q overhead with the same
// failure-point methodology, so the two numbers are directly comparable.

// MSFlipFlop adds a master-slave D flip-flop: a master latch transparent
// while the clock is low feeding a slave latch transparent while the clock
// is high. Returns the master storage node and the flip-flop output.
func msFlipFlop(c *circuit.Circuit, vdd, d, clk, clkBar circuit.Node, size float64) (master, q circuit.Node) {
	// Master: transparent when clk low.
	mStore, mQ := c.PulseLatch(vdd, d, clkBar, clk, size)
	// Slave: transparent when clk high, capturing the master's output.
	_, q = c.PulseLatch(vdd, mQ, clk, clkBar, size)
	return mStore, q
}

// ffBench is the flip-flop testbench mirroring the latch bench of
// Figure 3: buffered clock and data, output loaded by a turned-on latch.
type ffBench struct {
	c          *circuit.Circuit
	dIn, clkIn circuit.Node
	dFF        circuit.Node
	q          circuit.Node
}

func buildFFBench(p circuit.Params) *ffBench {
	c := circuit.New(p)
	vdd := c.VDDNode()

	dIn := c.Node("d_src")
	clkIn := c.Node("clk_src")

	dMid, _ := c.InverterChain(vdd, dIn, 5, 1, "dbuf")
	dBuf := c.Node("dbuf_f")
	c.Inverter(vdd, dMid, dBuf, 4)

	clkMid, _ := c.InverterChain(vdd, clkIn, 4, 1, "cbuf")
	clkBar := c.Node("clkbar")
	c.Inverter(vdd, clkMid, clkBar, 2)
	clkB := c.Node("clkb")
	c.Inverter(vdd, clkBar, clkB, 4)

	_, q := msFlipFlop(c, vdd, dBuf, clkB, clkBar, 0.7)

	on := c.Node("tg_on")
	off := c.Node("tg_off")
	c.V(on, circuit.DC(p.VDD))
	c.V(off, circuit.DC(0))
	c.PulseLatch(vdd, q, on, off, 1)

	return &ffBench{c: c, dIn: dIn, clkIn: clkIn, dFF: dBuf, q: q}
}

// ffTrial runs one capture trial for the flip-flop. The flip-flop samples
// on the rising clock edge at clkRise: the master is transparent before
// the edge (clock low) and the slave launches Q after it.
func ffTrial(p circuit.Params, clkRise, dEdge float64) (held bool, dq float64) {
	b := buildFFBench(p)
	const edge = 15
	stop := clkRise + 320
	// A single rising edge; the clock stays high long enough to observe Q.
	b.c.V(b.clkIn, circuit.PWL{
		{T: 0, V: 0}, {T: clkRise, V: 0}, {T: clkRise + edge, V: p.VDD},
		{T: stop, V: p.VDD},
	})
	b.c.V(b.dIn, circuit.Step(0, p.VDD, dEdge, edge))
	res := b.c.SimulateSettled(800, stop, simDt)

	// Two inverting latch stages: Q carries D's polarity after capture.
	held = res.FinalVoltage(b.q) > 0.8*p.VDD

	// Before the first capture the slave output idles at the metastable
	// midpoint (exactly VDD/2 by symmetry), so the output crossing is
	// detected at 0.75·VDD on the way to a full high.
	half := p.VDD / 2
	tD, okD := res.CrossTime(b.dFF, half, true, 0)
	tQ, okQ := res.CrossTime(b.q, 0.75*p.VDD, true, tD)
	if okD && okQ {
		dq = tQ - tD
	} else {
		dq = math.Inf(1)
	}
	return held, dq
}

// FlipFlopComparison is the latch-choice study: the same overhead metric
// for the pulse latch and the master-slave flip-flop.
type FlipFlopComparison struct {
	FO4Ps         float64
	PulseLatch    OverheadResult
	FlipFlopPs    float64 // min passing D-Q for the flip-flop
	FlipFlopFO4   float64
	FlipFlopSetup float64 // latest passing edge offset, ps
	OverheadRatio float64 // flip-flop overhead / pulse-latch overhead
}

// MeasureFlipFlopOverhead sweeps the data edge toward the flip-flop's
// sampling (rising) clock edge and reports the smallest passing D-Q delay,
// mirroring MeasureLatchOverhead's methodology.
func MeasureFlipFlopOverhead(p circuit.Params, step float64) FlipFlopComparison {
	if step <= 0 {
		step = 1.0
	}
	cmp := FlipFlopComparison{
		FO4Ps:      MeasureFO4(p),
		PulseLatch: MeasureLatchOverhead(p, step),
	}

	const clkRise = 300.0
	minDQ := math.Inf(1)
	lastPass := math.Inf(-1)
	sawPass := false
	for off := -160.0; off <= 40.0; off += step {
		held, dq := ffTrial(p, clkRise, clkRise+off)
		if held {
			if dq < minDQ {
				minDQ = dq
			}
			lastPass = off
			sawPass = true
		} else if sawPass {
			break
		}
	}
	if math.IsInf(minDQ, 1) {
		panic("latch: flip-flop never captured; testbench is broken")
	}
	cmp.FlipFlopPs = minDQ
	cmp.FlipFlopFO4 = minDQ / cmp.FO4Ps
	cmp.FlipFlopSetup = lastPass
	cmp.OverheadRatio = cmp.FlipFlopFO4 / cmp.PulseLatch.OverheadFO4
	return cmp
}
