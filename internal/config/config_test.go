package config

import (
	"testing"

	"repro/internal/fo4"
	"repro/internal/isa"
)

func clockAt(useful float64) fo4.Clock {
	return fo4.Clock{Useful: useful, Overhead: fo4.PaperOverhead}
}

func TestTable3FunctionalUnitGrid(t *testing.T) {
	// The functional-unit half of Table 3 must reproduce exactly: the
	// derivation is pure arithmetic from the 21264's latencies.
	m := Alpha21264()
	want := map[float64]map[isa.Class]int{
		2:  {isa.IntAlu: 9, isa.IntMult: 61, isa.FPAdd: 35, isa.FPMult: 35, isa.FPDiv: 105, isa.FPSqrt: 157},
		4:  {isa.IntAlu: 5, isa.IntMult: 31, isa.FPAdd: 18, isa.FPDiv: 53, isa.FPSqrt: 79},
		6:  {isa.IntAlu: 3, isa.IntMult: 21, isa.FPAdd: 12, isa.FPDiv: 35, isa.FPSqrt: 53},
		8:  {isa.IntAlu: 3, isa.IntMult: 16, isa.FPAdd: 9, isa.FPDiv: 27, isa.FPSqrt: 40},
		12: {isa.IntMult: 11, isa.FPAdd: 6, isa.FPDiv: 18, isa.FPSqrt: 27},
		16: {isa.IntMult: 8, isa.FPAdd: 5, isa.FPDiv: 14, isa.FPSqrt: 20},
	}
	for useful, row := range want {
		tm := m.Resolve(clockAt(useful))
		for cl, cycles := range row {
			if got := tm.Exec[cl]; got != cycles {
				t.Errorf("t_useful=%v %v: got %d cycles, want %d", useful, cl, got, cycles)
			}
		}
	}
}

func TestTable3StructureGrid(t *testing.T) {
	// Structure latencies at selected clocks. Register file, rename table,
	// issue window and branch predictor match the published row exactly;
	// the DL1 row matches within the ±1-cycle ambiguity discussed in
	// DESIGN.md (the published row is not consistent with any single
	// access time under the paper's own rounding rule).
	m := Alpha21264()
	type want struct {
		regRead, rename, window, bpred, dl1 int
	}
	grid := map[float64]want{
		2:  {6, 9, 9, 10, 16},
		4:  {3, 5, 5, 5, 8},
		6:  {2, 3, 3, 4, 6},
		8:  {2, 3, 3, 3, 4},
		10: {2, 2, 2, 2, 4},
		16: {1, 2, 2, 2, 2},
	}
	for useful, w := range grid {
		tm := m.Resolve(clockAt(useful))
		if tm.RegRead != w.regRead {
			t.Errorf("t=%v regfile: got %d want %d", useful, tm.RegRead, w.regRead)
		}
		if tm.Rename != w.rename {
			t.Errorf("t=%v rename: got %d want %d", useful, tm.Rename, w.rename)
		}
		if tm.Window != w.window {
			t.Errorf("t=%v window: got %d want %d", useful, tm.Window, w.window)
		}
		if tm.BPred != w.bpred {
			t.Errorf("t=%v bpred: got %d want %d", useful, tm.BPred, w.bpred)
		}
		if tm.DL1 != w.dl1 {
			t.Errorf("t=%v dl1: got %d want %d", useful, tm.DL1, w.dl1)
		}
	}
}

func TestLatenciesNonIncreasingInUseful(t *testing.T) {
	m := Alpha21264()
	prev := m.Resolve(clockAt(2))
	for u := 3.0; u <= 16; u++ {
		cur := m.Resolve(clockAt(u))
		if cur.DL1 > prev.DL1 || cur.Window > prev.Window || cur.RegRead > prev.RegRead ||
			cur.BPred > prev.BPred || cur.Rename > prev.Rename {
			t.Errorf("structure latency increased from t=%v to t=%v", u-1, u)
		}
		for cl := 0; cl < isa.NumClasses; cl++ {
			if cur.Exec[cl] > prev.Exec[cl] {
				t.Errorf("exec[%v] increased from t=%v to t=%v", isa.Class(cl), u-1, u)
			}
		}
		prev = cur
	}
}

func TestMemoryScalesWithFullPeriod(t *testing.T) {
	// DRAM latency is absolute: its cycle count is inversely proportional
	// to the full period (useful+overhead), not the useful time.
	m := Alpha21264()
	t6 := m.Resolve(clockAt(6))
	t12 := m.Resolve(clockAt(12))
	// 6+1.8=7.8 vs 12+1.8=13.8: ratio ~1.77.
	ratio := float64(t6.Mem) / float64(t12.Mem)
	if ratio < 1.6 || ratio > 1.95 {
		t.Errorf("memory cycle ratio (7.8 vs 13.8 FO4 clocks) = %.2f, want ~1.77", ratio)
	}
}

func TestCray1SMemoryMode(t *testing.T) {
	m := Cray1SMemorySystem()
	if !m.InOrder || !m.Cray1SMemory {
		t.Fatal("Cray1S machine must be in-order with Cray memory")
	}
	tm := m.Resolve(clockAt(6))
	if tm.DL1 != tm.Mem || tm.L2 != tm.Mem {
		t.Error("Cray mode must route every access to flat memory")
	}
	// 12 Cray cycles = 12 × 16 gates × 1.36 FO4 ≈ 261 FO4 of absolute
	// time; over a 7.8 FO4 period that is ~34 cycles.
	if tm.Mem < 30 || tm.Mem > 38 {
		t.Errorf("Cray memory at 6 FO4 = %d cycles, want ~34", tm.Mem)
	}
}

func TestAlpha21264TimingRow(t *testing.T) {
	tm := Alpha21264Timing()
	if tm.DL1 != 3 || tm.Exec[isa.IntAlu] != 1 || tm.Exec[isa.IntMult] != 7 ||
		tm.Exec[isa.FPDiv] != 12 || tm.Exec[isa.FPSqrt] != 18 || tm.Window != 1 {
		t.Errorf("Alpha 21264 hardware row mismatch: %+v", tm)
	}
}

func TestOverrides(t *testing.T) {
	m := Alpha21264()
	m.OverrideDL1FO4 = 12
	m.OverrideWinFO4 = 6
	tm := m.Resolve(clockAt(6))
	if tm.DL1 != 2 {
		t.Errorf("override DL1: got %d cycles, want 2", tm.DL1)
	}
	if tm.Window != 1 {
		t.Errorf("override window: got %d cycles, want 1", tm.Window)
	}
}

func TestValidateBuiltins(t *testing.T) {
	for _, m := range []Machine{Alpha21264(), InOrder7Stage(), Cray1SMemorySystem()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	break1 := Alpha21264()
	break1.FetchWidth = 0
	break2 := Alpha21264()
	break2.IntWindow = 0
	break3 := Alpha21264()
	break3.ROB = 4
	break4 := Alpha21264()
	break4.MemLatencyFO4 = 0
	for i, m := range []Machine{break1, break2, break3, break4} {
		if err := m.Validate(); err == nil {
			t.Errorf("broken config %d passed validation", i+1)
		}
	}
}
