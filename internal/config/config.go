// Package config assembles machine configurations — which structures a
// processor has and how big they are — and resolves them against a clock
// design point into whole-cycle latencies, reproducing the paper's Table 3
// methodology: structure access times (from the cacti model) and
// functional-unit work (from the Alpha 21264's latencies expressed in FO4)
// are divided by the useful time per stage and rounded up.
package config

import (
	"fmt"
	"math"

	"repro/internal/cacti"
	"repro/internal/fo4"
	"repro/internal/isa"
)

// Structures describes the sized on-chip structures of a machine.
type Structures struct {
	DL1 cacti.CacheConfig
	IL1 cacti.CacheConfig
	L2  cacti.CacheConfig

	RegFile cacti.RAMConfig

	// Rename is the map-table RAM; RenameCheckFO4 is the additional
	// dependency-check/bypass network the renamer needs per group of
	// concurrently renamed instructions.
	Rename         cacti.RAMConfig
	RenameCheckFO4 float64

	// Branch predictor tables (21264-style tournament predictor): the
	// local-history and local-counter arrays are accessed serially; the
	// global and choice arrays in parallel with them; ChoiceMuxFO4 is the
	// final selection mux.
	BPredLocalHist cacti.RAMConfig
	BPredLocalCnt  cacti.RAMConfig
	BPredGlobal    cacti.RAMConfig
	BPredChoice    cacti.RAMConfig
	ChoiceMuxFO4   float64

	Window cacti.CAMConfig // issue window wakeup CAM
}

// Machine is a full machine configuration.
type Machine struct {
	Name string

	FetchWidth  int
	IntIssue    int // integer instructions issued per cycle
	FPIssue     int // floating-point instructions issued per cycle
	CommitWidth int

	// The 21264 has separate issue queues: a 20-entry integer queue and a
	// 15-entry floating-point queue. The small FP queue limits how much
	// latency FP-heavy code can tolerate, so modeling the split matters
	// for the vector results. UnifiedWindow, when > 0, replaces both with
	// a single shared window of that size (used by the Section 5 32-entry
	// segmented-window experiments).
	IntWindow     int
	FPWindow      int
	UnifiedWindow int

	ROB     int // maximum instructions in flight
	IntRegs int
	FPRegs  int

	Structures Structures

	// MemLatencyFO4 is the main-memory access latency in FO4 (absolute
	// time, not logic depth): memory cycles are derived by dividing by the
	// full clock period, since DRAM does not speed up with the core clock.
	MemLatencyFO4 float64

	// Cray1SMemory selects the Section 4.2 what-if: no caches, and every
	// load/store pays the Cray-1S's flat 12-cycle memory. The Cray's cycle
	// was 16 ECL gate delays, and Appendix A equates one ECL gate to 1.36
	// FO4, so the memory's absolute latency is 12 × 16 × 1.36 ≈ 261 FO4 —
	// fixed in time, because a memory system does not speed up when the
	// core is pipelined more deeply. CrayMemFO4 holds that value.
	Cray1SMemory    bool
	CrayMemFO4      float64
	InOrder         bool // in-order issue (Section 4.1) vs dynamic (4.3)
	PerfectBranches bool // oracle branch prediction (for ablations)
	PerfectMemory   bool // every access hits in DL1 (for ablations)
	Model           cacti.Model
	OverrideDL1FO4  float64 // if > 0, replaces the cacti DL1 access time
	OverrideL2FO4   float64 // if > 0, replaces the cacti L2 access time
	OverrideWinFO4  float64 // if > 0, replaces the cacti window time
}

// Alpha21264 returns the paper's baseline machine: structure capacities
// matched to the Alpha 21264, a 2MB level-2 cache, and the register files
// raised to 512 entries each so deep pipelines are not starved of
// registers (Section 3.1).
func Alpha21264() Machine {
	return Machine{
		Name:        "alpha21264",
		FetchWidth:  4,
		IntIssue:    4,
		FPIssue:     2,
		CommitWidth: 8,
		IntWindow:   20,
		FPWindow:    15,
		ROB:         256,
		IntRegs:     512,
		FPRegs:      512,
		Structures: Structures{
			DL1:     cacti.CacheConfig{CapacityBytes: 64 << 10, BlockBytes: 64, Assoc: 2, Ports: 2},
			IL1:     cacti.CacheConfig{CapacityBytes: 64 << 10, BlockBytes: 64, Assoc: 2, Ports: 1},
			L2:      cacti.CacheConfig{CapacityBytes: 2 << 20, BlockBytes: 64, Assoc: 2, Ports: 1},
			RegFile: cacti.RAMConfig{Entries: 512, Bits: 64, Ports: 12},

			Rename:         cacti.RAMConfig{Entries: 80, Bits: 8, Ports: 12},
			RenameCheckFO4: 10.6,

			BPredLocalHist: cacti.RAMConfig{Entries: 1024, Bits: 10, Ports: 1},
			BPredLocalCnt:  cacti.RAMConfig{Entries: 1024, Bits: 3, Ports: 1},
			BPredGlobal:    cacti.RAMConfig{Entries: 4096, Bits: 2, Ports: 1},
			BPredChoice:    cacti.RAMConfig{Entries: 4096, Bits: 2, Ports: 1},
			ChoiceMuxFO4:   1.0,

			Window: cacti.CAMConfig{Entries: 20, TagBits: 9, BroadcastPorts: 4},
		},
		// ~100 ns of DRAM at 36 ps per FO4.
		MemLatencyFO4: 2778,
		CrayMemFO4:    12 * 16 * 1.36,
		Model:         cacti.Default100nm,
	}
}

// InOrder7Stage returns the Section 4.1 machine: the same resources as the
// Alpha 21264 but issuing in order through a seven-stage base pipeline.
func InOrder7Stage() Machine {
	m := Alpha21264()
	m.Name = "inorder7"
	m.InOrder = true
	return m
}

// Cray1SMemorySystem returns the Section 4.2 what-if: the in-order
// superscalar with a Cray-1S-like memory system — no caches, flat 12-cycle
// (in Cray terms) memory.
func Cray1SMemorySystem() Machine {
	m := InOrder7Stage()
	m.Name = "cray1s-mem"
	m.Cray1SMemory = true
	return m
}

// Timing is a machine resolved at one clock design point: every structure
// and operation latency in whole cycles.
type Timing struct {
	Clock fo4.Clock

	DL1     int // load-use data cache hit latency
	IL1     int // instruction cache access
	L2      int // L2 hit latency (total, from access start)
	Mem     int // main memory latency
	RegRead int
	Rename  int
	BPred   int
	Window  int // issue window wakeup (the issue-wakeup loop length)

	Exec [isa.NumClasses]int // execution latencies per class
}

// Resolve computes the cycle grid for machine m at clock c — the Table 3
// computation. Structure access times and functional-unit work (in FO4)
// are divided by the useful FO4 per stage and rounded up; main memory,
// whose absolute latency does not scale with core logic depth, is divided
// by the full clock period.
func (m Machine) Resolve(c fo4.Clock) Timing {
	t := Timing{Clock: c}
	md := m.Model

	dl1FO4 := md.CacheAccessFO4(m.Structures.DL1)
	if m.OverrideDL1FO4 > 0 {
		dl1FO4 = m.OverrideDL1FO4
	}
	l2FO4 := md.CacheAccessFO4(m.Structures.L2)
	if m.OverrideL2FO4 > 0 {
		l2FO4 = m.OverrideL2FO4
	}
	winFO4 := md.CAMAccessFO4(m.Structures.Window)
	if m.OverrideWinFO4 > 0 {
		winFO4 = m.OverrideWinFO4
	}

	t.DL1 = c.CyclesForWork(dl1FO4)
	t.IL1 = c.CyclesForWork(md.CacheAccessFO4(m.Structures.IL1))
	t.L2 = c.CyclesForWork(l2FO4)
	t.RegRead = c.CyclesForWork(md.RAMAccessFO4(m.Structures.RegFile))
	t.Rename = c.CyclesForWork(md.RAMAccessFO4(m.Structures.Rename) + m.Structures.RenameCheckFO4)
	t.BPred = c.CyclesForWork(m.BPredFO4())
	t.Window = c.CyclesForWork(winFO4)

	// Main memory: absolute latency over the full period.
	period := c.PeriodFO4()
	t.Mem = int(math.Ceil(m.MemLatencyFO4/period - 1e-9))
	if m.Cray1SMemory {
		t.Mem = int(math.Ceil(m.CrayMemFO4/period - 1e-9))
		t.DL1 = t.Mem // every access goes to memory
		t.L2 = t.Mem
	}
	if t.Mem < 1 {
		t.Mem = 1
	}

	alphaUseful := fo4.Alpha21264UsefulFO4()
	for cl := 0; cl < isa.NumClasses; cl++ {
		work := float64(isa.Class(cl).Alpha21264Cycles()) * alphaUseful
		t.Exec[cl] = c.CyclesForWork(work)
	}
	return t
}

// BPredFO4 returns the branch predictor's access time in FO4: the serial
// local-history → local-counter path in parallel with the global and
// choice arrays, plus the final chooser mux.
func (m Machine) BPredFO4() float64 {
	md := m.Model
	s := m.Structures
	local := md.RAMAccessFO4(s.BPredLocalHist) + md.RAMAccessFO4(s.BPredLocalCnt)
	global := math.Max(md.RAMAccessFO4(s.BPredGlobal), md.RAMAccessFO4(s.BPredChoice))
	return math.Max(local, global) + m.ChoiceMuxFO4()
}

// ChoiceMuxFO4 returns the chooser-mux delay (settable via Structures).
func (m Machine) ChoiceMuxFO4() float64 { return m.Structures.ChoiceMuxFO4 }

// Alpha21264Timing returns the last row of Table 3: the latencies the real
// 21264 has at its own 17.4 FO4 (useful) clock, taken from the hardware
// rather than the cacti model.
func Alpha21264Timing() Timing {
	var t Timing
	t.Clock = fo4.Clock{Useful: fo4.Alpha21264UsefulFO4(), Overhead: fo4.PaperOverhead}
	t.DL1 = 3
	t.IL1 = 1
	t.L2 = 16
	t.Mem = 80
	t.RegRead = 1
	t.Rename = 1
	t.BPred = 1
	t.Window = 1
	for cl := 0; cl < isa.NumClasses; cl++ {
		t.Exec[cl] = isa.Class(cl).Alpha21264Cycles()
	}
	return t
}

// Validate checks a machine configuration for the invariants the
// simulators assume, returning a descriptive error for the first
// violation. Library users building custom machines should call it before
// simulating; the built-in configurations always pass.
func (m Machine) Validate() error {
	switch {
	case m.FetchWidth < 1:
		return fmt.Errorf("config: %s: fetch width %d < 1", m.Name, m.FetchWidth)
	case m.IntIssue < 1 || m.FPIssue < 0:
		return fmt.Errorf("config: %s: issue widths %d/%d invalid", m.Name, m.IntIssue, m.FPIssue)
	case m.CommitWidth < 1:
		return fmt.Errorf("config: %s: commit width %d < 1", m.Name, m.CommitWidth)
	case m.UnifiedWindow == 0 && (m.IntWindow < 1 || m.FPWindow < 1):
		return fmt.Errorf("config: %s: issue queues %d/%d invalid", m.Name, m.IntWindow, m.FPWindow)
	case m.UnifiedWindow < 0:
		return fmt.Errorf("config: %s: unified window %d < 0", m.Name, m.UnifiedWindow)
	case m.ROB < maxOf(m.IntWindow, m.FPWindow, m.UnifiedWindow):
		return fmt.Errorf("config: %s: in-flight limit %d below window capacity", m.Name, m.ROB)
	case !m.Cray1SMemory && m.MemLatencyFO4 <= 0:
		return fmt.Errorf("config: %s: memory latency %.1f FO4 invalid", m.Name, m.MemLatencyFO4)
	case m.Cray1SMemory && m.CrayMemFO4 <= 0:
		return fmt.Errorf("config: %s: Cray memory latency %.1f FO4 invalid", m.Name, m.CrayMemFO4)
	}
	return nil
}

func maxOf(xs ...int) int {
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}
