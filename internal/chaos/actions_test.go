package chaos

// The action vocabulary: every way this harness abuses the daemon, as a
// weighted table the seeded rng draws from. Actions run sequentially —
// concurrency lives *inside* an action and is joined before it returns —
// so the run quiesces between actions and the oracle can demand exact
// counter deltas instead of inequalities.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// grid is one sweep request the harness knows the exact shape of: a
// single benchmark crossed with a set of depths, pinned to an explicit
// request seed so "fresh" grids get content addresses no earlier action
// (or earlier daemon incarnation) has ever produced.
type grid struct {
	bench        string
	useful       []float64
	instructions int
	seed         uint64
	asRange      bool // render as useful_min/max (requires a contiguous step-1 grid)
}

// points is how many distinct simulation points the grid expands to:
// one benchmark, distinct depths, no window stages.
func (g grid) points() int { return len(g.useful) }

func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// body renders the request JSON. The list and range forms of the same
// contiguous grid expand to identical points server-side (the range
// generator is index-based), which the byte-identity oracle leans on.
func (g grid) body() string {
	var b strings.Builder
	if g.asRange {
		fmt.Fprintf(&b, `{"useful_min":%s,"useful_max":%s`, ff(g.useful[0]), ff(g.useful[len(g.useful)-1]))
	} else {
		b.WriteString(`{"useful":[`)
		for i, u := range g.useful {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ff(u))
		}
		b.WriteString(`]`)
	}
	fmt.Fprintf(&b, `,"benchmarks":[%q],"instructions":%d,"seed":%d}`, g.bench, g.instructions, g.seed)
	return b.String()
}

func (g grid) desc() string {
	form := "list"
	if g.asRange {
		form = "range"
	}
	return fmt.Sprintf("%s u=%v n=%d seed=%d %s", g.bench, g.useful, g.instructions, g.seed, form)
}

var (
	chaosBenches = []string{"gcc", "swim", "mcf", "mesa"}
	// usefulUniverse keeps light grids at most 4 points — under the
	// tiny cache limit, so one overlap wave can never evict itself.
	usefulUniverse = []float64{4, 5, 6, 7, 8, 10, 12}
)

// nextNonce mints a request seed no grid in this run has used before;
// the offset keeps it clear of the server default (0 means 1).
func (w *world) nextNonce() uint64 {
	w.nonce++
	return 1000 + w.nonce
}

// pickDistinct draws n distinct values from universe, sorted.
func pickDistinct(rng *rand.Rand, universe []float64, n int) []float64 {
	perm := rng.Perm(len(universe))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = universe[perm[i]]
	}
	sort.Float64s(vals)
	return vals
}

// freshLight is a small, fast grid under a never-seen key: 1-4 points
// of a short trace. The workhorse for strict-accounting actions.
func (w *world) freshLight() grid {
	return grid{
		bench:        chaosBenches[w.rng.Intn(len(chaosBenches))],
		useful:       pickDistinct(w.rng, usefulUniverse, 1+w.rng.Intn(4)),
		instructions: 2000 + 1000*w.rng.Intn(2),
		seed:         w.nextNonce(),
	}
}

// freshHeavy is a grid slow enough to still be mid-stream when a signal
// or disconnect lands: full-length traces, 4-5 points.
func (w *world) freshHeavy() grid {
	n := 4 + w.rng.Intn(2)
	start := 3 + w.rng.Intn(3)
	useful := make([]float64, n)
	for i := range useful {
		useful[i] = float64(start + i)
	}
	return grid{
		bench:        chaosBenches[w.rng.Intn(len(chaosBenches))],
		useful:       useful,
		instructions: 60000,
		seed:         w.nextNonce(),
	}
}

// freshContiguous is a fresh integer step-1 grid, the shape both request
// forms can express.
func (w *world) freshContiguous() grid {
	g := w.freshHeavy()
	g.instructions = 2000 + 1000*w.rng.Intn(2)
	g.useful = g.useful[:2+w.rng.Intn(len(g.useful)-1)]
	return g
}

// someGrid picks the next plain sweep: usually fresh, sometimes a replay
// from history (which must then be served entirely from cache or disk).
func (w *world) someGrid() grid {
	if len(w.history) > 0 && w.rng.Intn(10) < 4 {
		return w.history[w.rng.Intn(len(w.history))]
	}
	return w.freshLight()
}

// action is one entry of the weighted vocabulary.
type action struct {
	name   string
	weight int
	run    func(*world)
}

var actionTable = []action{
	{"sweep", 4, actSweep},
	{"overlap", 3, actOverlap},
	{"mixed-forms", 2, actMixedForms},
	{"disconnect", 3, actDisconnect},
	{"slow-reader", 2, actSlowReader},
	{"cache-pressure", 2, actCachePressure},
	{"delta-sync", 2, actDeltaSync},
	{"scrape", 2, actScrape},
	{"bad-requests", 1, actBadRequests},
	{"kill-restart", 2, actKillRestart},
	{"kill-mid-stream", 2, actKillMidStream},
	{"term-mid-stream", 2, actTermMidStream},
}

// pickAction draws the next action by weight from the run's rng.
func pickAction(rng *rand.Rand) action {
	total := 0
	for _, a := range actionTable {
		total += a.weight
	}
	n := rng.Intn(total)
	for _, a := range actionTable {
		n -= a.weight
		if n < 0 {
			return a
		}
	}
	return actionTable[0] // unreachable
}

// sweepGrid runs one grid to completion against the current daemon and
// folds the stream into the model. Returns the settled point count.
func (w *world) sweepGrid(g grid, context string) int {
	w.t.Helper()
	resp, err := w.postSweep(g.body())
	if err != nil {
		w.failf("%s: POST /sweep: %v", context, err)
	}
	sr := readSweep(resp, nil)
	if sr.status == http.StatusOK {
		w.admitted += int64(g.points())
	}
	n := w.absorb(sr, context)
	if n != g.points() {
		w.failf("%s: stream carried %d points, grid expands to %d", context, n, g.points())
	}
	w.recordHistory(g)
	return n
}

// actSweep: one ordinary client, one grid (fresh or replayed).
func actSweep(w *world) {
	g := w.someGrid()
	w.trace("  grid: %s", g.desc())
	w.sweepGrid(g, "sweep "+g.desc())
}

// actOverlap: N clients race one fresh grid. The strict overlap oracle —
// the whole wave costs exactly points simulations; everything else must
// be a hit (cache or singleflight join, the accounting treats both as
// hits) and nothing may drop.
func actOverlap(w *world) {
	st0 := w.quiesce()
	g := w.freshLight()
	n := 2 + w.rng.Intn(3)
	w.trace("  grid: %s, %d clients", g.desc(), n)
	results := make(chan streamRead, n)
	body := g.body()
	for i := 0; i < n; i++ {
		go func() {
			resp, err := w.client.Post(w.d.URL+"/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				results <- streamRead{err: err}
				return
			}
			results <- readSweep(resp, nil)
		}()
	}
	for i := 0; i < n; i++ {
		sr := <-results
		if sr.status == http.StatusOK {
			w.admitted += int64(g.points())
		}
		if got := w.absorb(sr, fmt.Sprintf("overlap client of %s", g.desc())); got != g.points() {
			w.failf("overlap client streamed %d points, want %d", got, g.points())
		}
	}
	w.recordHistory(g)

	st1 := w.quiesce()
	p := int64(g.points())
	if miss := st1.CacheMisses - st0.CacheMisses; miss != p {
		w.failf("overlap: %d clients on a fresh %d-point grid cost %d simulations, want exactly %d", n, p, miss, p)
	}
	if hits := st1.CacheHits - st0.CacheHits; hits != int64(n-1)*p {
		w.failf("overlap: hit delta %d, want (clients-1)*points = %d", hits, int64(n-1)*p)
	}
	if done := st1.PointsDone - st0.PointsDone; done != p {
		w.failf("overlap: points_done delta %d, want %d", done, p)
	}
	if st1.PointsDropped != st0.PointsDropped {
		w.failf("overlap: %d points dropped with no disconnects in play", st1.PointsDropped-st0.PointsDropped)
	}
}

// actMixedForms: the same fresh contiguous grid raced as an explicit
// list by one client and as useful_min/max by another. The two forms
// must expand to identical keys and byte-identical lines; strictly one
// form's worth of simulations happens.
func actMixedForms(w *world) {
	st0 := w.quiesce()
	g := w.freshContiguous()
	w.trace("  grid: %s (list vs range)", g.desc())
	list, rng := g, g
	list.asRange, rng.asRange = false, true
	results := make(chan streamRead, 2)
	for _, body := range []string{list.body(), rng.body()} {
		body := body
		go func() {
			resp, err := w.client.Post(w.d.URL+"/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				results <- streamRead{err: err}
				return
			}
			results <- readSweep(resp, nil)
		}()
	}
	for i := 0; i < 2; i++ {
		sr := <-results
		if sr.status == http.StatusOK {
			w.admitted += int64(g.points())
		}
		if got := w.absorb(sr, "mixed-forms client of "+g.desc()); got != g.points() {
			w.failf("mixed-forms client streamed %d points, want %d (forms expanded differently?)", got, g.points())
		}
	}
	w.recordHistory(list)

	st1 := w.quiesce()
	p := int64(g.points())
	if miss := st1.CacheMisses - st0.CacheMisses; miss != p {
		w.failf("mixed-forms: list+range of one grid cost %d simulations, want %d — the forms expanded to different keys", miss, p)
	}
	if hits := st1.CacheHits - st0.CacheHits; hits != p {
		w.failf("mixed-forms: hit delta %d, want %d", hits, p)
	}
}

// actDisconnect: a client opens a heavy sweep, reads at most one line,
// and hangs up. The leaked-work oracle is the post-action quiesce: the
// queue and inflight gauges must return to zero and every admitted
// point must still be classified into exactly one outcome.
func actDisconnect(w *world) {
	g := w.freshHeavy()
	w.trace("  grid: %s", g.desc())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.d.URL+"/sweep", strings.NewReader(g.body()))
	if err != nil {
		w.failf("disconnect: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		w.failf("disconnect: POST /sweep: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		w.failf("disconnect: status %d, want 200", resp.StatusCode)
	}
	w.admitted += int64(g.points()) // admission precedes the 200 header; hanging up doesn't un-admit

	// Read until the first point line (so the stream is truly live),
	// fold it into the byte-identity model, then vanish.
	done := make(chan streamRead, 1)
	first := make(chan struct{}, 1)
	go func() { done <- readSweep(resp, func() { first <- struct{}{} }) }()
	<-first
	cancel()
	sr := <-done
	// The stream may have torn anywhere — or even completed, if the
	// daemon outran the cancel. Whatever arrived must match the model.
	w.learnLines(sr.lines, "disconnect partial stream of "+g.desc())
	// The run-loop quiesce after this action proves nothing leaked.
}

// slowBody throttles a response body: every read stalls, then takes at
// most a few dozen bytes, so the client drains a stream over hundreds of
// milliseconds that the daemon produced in a handful.
type slowBody struct {
	rc    io.ReadCloser
	delay time.Duration
}

func (s slowBody) Read(p []byte) (int, error) {
	time.Sleep(s.delay)
	if len(p) > 64 {
		p = p[:64]
	}
	return s.rc.Read(p)
}

func (s slowBody) Close() error { return s.rc.Close() }

// actSlowReader: one client consumes a light grid a few dozen bytes at a
// time with stalls between reads, holding the stream (and the daemon's
// write path) open far longer than the simulation takes.
func actSlowReader(w *world) {
	g := w.freshLight()
	stall := time.Duration(2+w.rng.Intn(8)) * time.Millisecond
	w.trace("  grid: %s, stall %v", g.desc(), stall)
	resp, err := w.postSweep(g.body())
	if err != nil {
		w.failf("slow-reader: POST /sweep: %v", err)
	}
	if resp.StatusCode == http.StatusOK {
		w.admitted += int64(g.points())
	}
	resp.Body = slowBody{rc: resp.Body, delay: stall}
	if got := w.absorb(readSweep(resp, nil), "slow-reader "+g.desc()); got != g.points() {
		w.failf("slow-reader streamed %d points, want %d", got, g.points())
	}
	w.recordHistory(g)
}

// actCachePressure: flood the tiny cache with more fresh points than it
// holds, forcing evictions, then replay the first wave. With a durable
// store an evicted point must come back from disk — zero re-simulation —
// and the LRU must have actually evicted.
func actCachePressure(w *world) {
	st0 := w.quiesce()
	waves := make([]grid, 3)
	for i := range waves {
		g := w.freshLight()
		// Pad every wave to 3+ points so three waves always overflow the
		// 8-entry cache.
		for g.points() < 3 {
			g = w.freshLight()
		}
		waves[i] = g
		w.trace("  wave %d: %s", i, g.desc())
		w.sweepGrid(g, fmt.Sprintf("cache-pressure wave %d (%s)", i, g.desc()))
	}
	st1 := w.quiesce()
	if st1.CacheEvictions == st0.CacheEvictions {
		var total int
		for _, g := range waves {
			total += g.points()
		}
		w.failf("cache-pressure: %d fresh points through a %d-entry cache evicted nothing", total, tinyCache)
	}

	// Replay the (likely evicted) first wave: the durable store must
	// serve every point without re-simulating.
	g := waves[0]
	w.sweepGrid(g, "cache-pressure replay of "+g.desc())
	st2 := w.quiesce()
	if miss := st2.CacheMisses - st1.CacheMisses; miss != 0 {
		w.failf("cache-pressure: replaying an evicted grid re-simulated %d points; the durable store should have served them", miss)
	}
	if hits := st2.CacheHits - st1.CacheHits; hits != int64(g.points()) {
		w.failf("cache-pressure: replay hit delta %d, want %d", hits, g.points())
	}
}

// deltaRecord is one parsed GET /results line.
type deltaRecord struct {
	Cursor  uint64          `json:"cursor"`
	Result  json.RawMessage `json:"result"`
	Done    bool            `json:"done"`
	Records int             `json:"records"`
}

// actDeltaSync: pull everything appended since our cursor, exactly the
// way a replica would, and resume from the trailer. Records must be
// cursor-ordered, byte-identical to any line we already hold, and the
// trailer cursor must land on the store's high-water mark.
func actDeltaSync(w *world) {
	st := w.quiesce()
	w.trace("  since=%d store_cursor=%d", w.cursor, st.StoreCursor)
	resp, err := w.client.Get(w.d.URL + "/results?since=" + strconv.FormatUint(w.cursor, 10))
	if err != nil {
		w.failf("delta-sync: GET /results: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.failf("delta-sync: status %d, want 200 (durable store is configured)", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	prev := w.cursor
	records := 0
	lines := map[string]string{}
	var trailer *deltaRecord
	for dec.More() {
		var d deltaRecord
		if err := dec.Decode(&d); err != nil {
			w.failf("delta-sync: bad line after cursor %d: %v", prev, err)
		}
		if d.Done {
			trailer = &d
			break
		}
		if d.Cursor <= prev {
			w.failf("delta-sync: cursor went %d -> %d; pulls must be strictly ordered", prev, d.Cursor)
		}
		prev = d.Cursor
		records++
		var probe struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(d.Result, &probe); err != nil || probe.Key == "" {
			w.failf("delta-sync: record %d carries an unparsable result %q", d.Cursor, d.Result)
		}
		lines[probe.Key] = string(d.Result)
	}
	if trailer == nil {
		w.failf("delta-sync: stream ended without the done trailer")
	}
	if trailer.Records != records {
		w.failf("delta-sync: trailer claims %d records, stream carried %d", trailer.Records, records)
	}
	if trailer.Cursor != prev {
		w.failf("delta-sync: trailer cursor %d, last record cursor %d", trailer.Cursor, prev)
	}
	if trailer.Cursor != st.StoreCursor {
		w.failf("delta-sync: pulled to cursor %d but the quiesced store high-water mark is %d", trailer.Cursor, st.StoreCursor)
	}
	// Delta lines may include results whose streams we tore mid-read —
	// keys the model has never seen. Known keys must match exactly.
	w.learnLines(lines, "delta-sync pull")
	w.cursor = trailer.Cursor
}

// actScrape: the observability surfaces under load — /metrics must lint
// clean and agree counter-for-counter with /stats, /healthz must be 200.
func actScrape(w *world) {
	st := w.quiesce()
	w.metricsAgree(st)
	resp, err := w.client.Get(w.d.URL + "/healthz")
	if err != nil {
		w.failf("scrape: GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.failf("scrape: /healthz status %d", resp.StatusCode)
	}
}

// actBadRequests: hostile inputs must bounce with 400, be counted as
// rejections, and admit nothing (the run-loop conservation check would
// catch a half-admitted grid).
func actBadRequests(w *world) {
	st0 := w.quiesce()
	badSweeps := []string{
		`{"useful":[6],`,         // truncated JSON
		`{"useful":[6],"wat":1}`, // unknown field
		`{}`,                     // empty grid
		`{"useful":[6],"benchmarks":["notabench"],"instructions":2000}`,              // unknown benchmark
		`{"useful":[-1],"benchmarks":["gcc"],"instructions":2000}`,                   // invalid depth
		`{"useful_min":2,"useful_max":16,"useful_step":5e-324,"benchmarks":["gcc"]}`, // range expands past any limit
	}
	for _, body := range badSweeps {
		resp, err := w.postSweep(body)
		if err != nil {
			w.failf("bad-requests: POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			w.failf("bad-requests: body %q got status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := w.client.Get(w.d.URL + "/results?since=banana")
	if err != nil {
		w.failf("bad-requests: GET /results: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		w.failf("bad-requests: /results?since=banana got status %d, want 400", resp.StatusCode)
	}
	st1 := w.quiesce()
	if delta := st1.Rejected - st0.Rejected; delta < int64(len(badSweeps)) {
		w.failf("bad-requests: %d hostile sweeps but requests_rejected only moved by %d", len(badSweeps), delta)
	}
}

// actKillRestart: SIGKILL a quiesced daemon, restart it over the same
// store, and replay history. The warm-start contract: every previously
// completed point is served with zero re-simulation.
func actKillRestart(w *world) {
	w.trace("  SIGKILL + warm restart, %d history grids", len(w.history))
	w.d.Kill()
	w.start()
	if len(w.history) == 0 {
		return
	}
	replay := 1 + w.rng.Intn(3)
	if replay > len(w.history) {
		replay = len(w.history)
	}
	var total int64
	for i := 0; i < replay; i++ {
		g := w.history[w.rng.Intn(len(w.history))]
		w.sweepGrid(g, "warm replay of "+g.desc())
		total += int64(g.points())
	}
	st := w.quiesce()
	if st.CacheMisses != 0 {
		w.failf("warm restart re-simulated %d points; the durable store held the whole history", st.CacheMisses)
	}
	if st.CacheHits != total {
		w.failf("warm restart: %d hits for %d replayed points", st.CacheHits, total)
	}
}

// actKillMidStream: SIGKILL the daemon while a heavy stream is live. The
// durability oracle: the store write happens before a line is streamed,
// so every line the client received must survive the crash — replaying
// the grid after restart may re-simulate at most the points we never saw.
func actKillMidStream(w *world) {
	g := w.freshHeavy()
	w.trace("  grid: %s", g.desc())
	resp, err := w.postSweep(g.body())
	if err != nil {
		w.failf("kill-mid-stream: POST /sweep: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		w.failf("kill-mid-stream: status %d, want 200", resp.StatusCode)
	}
	done := make(chan streamRead, 1)
	first := make(chan struct{}, 1)
	go func() { done <- readSweep(resp, func() { first <- struct{}{} }) }()
	<-first
	w.d.Kill()
	sr := <-done // torn stream expected; whatever arrived is model truth
	w.learnLines(sr.lines, "kill-mid-stream partial stream of "+g.desc())
	received := len(sr.lines)

	w.start()
	w.sweepGrid(g, "post-crash replay of "+g.desc())
	st := w.quiesce()
	if lost := st.CacheMisses - int64(g.points()-received); lost > 0 {
		w.failf("kill-mid-stream: client saw %d lines before SIGKILL but replay re-simulated %d of %d points — %d durable results lost",
			received, st.CacheMisses, g.points(), lost)
	}
}

// actTermMidStream: SIGTERM the daemon while a heavy stream is live. The
// drain contract: the in-flight stream runs to completion — trailer and
// all — and the process exits 0.
func actTermMidStream(w *world) {
	g := w.freshHeavy()
	w.trace("  grid: %s", g.desc())
	resp, err := w.postSweep(g.body())
	if err != nil {
		w.failf("term-mid-stream: POST /sweep: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		w.failf("term-mid-stream: status %d, want 200", resp.StatusCode)
	}
	done := make(chan streamRead, 1)
	first := make(chan struct{}, 1)
	go func() { done <- readSweep(resp, func() { first <- struct{}{} }) }()
	<-first
	code, err := w.d.Shutdown()
	if err != nil {
		w.failf("term-mid-stream: SIGTERM wait: %v", err)
	}
	if code != 0 {
		w.failf("term-mid-stream: exit code %d with a stream in flight, want 0", code)
	}
	sr := <-done
	if sr.err != nil || !sr.done {
		w.failf("term-mid-stream: the draining daemon tore the stream (err=%v done=%v) — SIGTERM must complete in-flight responses", sr.err, sr.done)
	}
	if len(sr.lines) != g.points() {
		w.failf("term-mid-stream: drained stream carried %d points, want %d", len(sr.lines), g.points())
	}
	w.learnLines(sr.lines, "term-mid-stream drained stream of "+g.desc())
	w.recordHistory(g)
	w.start()
}
