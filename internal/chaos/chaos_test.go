package chaos

// runChaos is the harness spine: boot a world, draw actions from the
// seeded table until the budget runs out, quiesce and check conservation
// after every one, then close with the epilogue — a surface-agreement
// scrape, a clean drain, and a batched-vs-flat replay of the whole
// history against a fresh -batch=false memory-only daemon.

import (
	"net/http"
	"testing"

	"repro/internal/clitest"
)

func runChaos(t *testing.T, seed uint64, actions int) {
	w := newWorld(t, seed, actions)
	defer w.teardown()

	for i := 1; i <= actions; i++ {
		w.actionN = i
		a := pickAction(w.rng)
		w.curName = a.name
		w.trace("action %d/%d: %s", i, actions, a.name)
		a.run(w)
		// The cheap oracle after every action: gauges at zero, admission
		// conservation, cache bound. Strict per-action deltas live in
		// the actions themselves.
		w.quiesce()
	}
	w.trace("action budget spent: %d grids in history, %d distinct points learned", len(w.history), len(w.expected))

	w.epilogue()
}

// epilogueReplayCap bounds the flat replay: a long run's history is
// replayed newest-first up to this many grids (the trace logs what was
// dropped) so the epilogue stays a bounded fraction of the run.
const epilogueReplayCap = 16

// epilogue ends the run: the full /metrics-vs-/stats agreement check on
// the long-lived daemon, a clean SIGTERM drain, then the batched-vs-flat
// oracle — a fresh memory-only -batch=false daemon re-simulates the
// history from scratch and every line must land byte-identical to what
// the batched daemon streamed, end to end through the real binary.
func (w *world) epilogue() {
	w.curName = "epilogue"
	st := w.quiesce()
	w.metricsAgree(st)
	w.shutdown()

	replay := w.history
	if len(replay) > epilogueReplayCap {
		w.trace("epilogue: replaying newest %d of %d history grids", epilogueReplayCap, len(replay))
		replay = replay[len(replay)-epilogueReplayCap:]
	}
	if len(replay) == 0 {
		return
	}
	w.trace("epilogue: flat replay of %d grids against -batch=false", len(replay))
	d, err := clitest.StartDaemon(sweepdBin(), w.logPath, clitest.DefaultWait,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-batch=false",
		"-cache", "4096",
		"-queue", "512",
	)
	if err != nil {
		w.failf("epilogue: flat daemon failed to start: %v", err)
	}
	w.d = d
	w.admitted = 0
	w.cacheLimit = 4096
	if err := clitest.WaitHealthy(d.URL, clitest.DefaultWait); err != nil {
		w.failf("epilogue: flat daemon never became healthy: %v", err)
	}
	for _, g := range replay {
		// sweepGrid's absorb runs every line through the byte-identity
		// model built from the batched daemon's streams: any divergence
		// between the grouped and flat dispatch paths fails here.
		resp, err := w.postSweep(g.body())
		if err != nil {
			w.failf("epilogue: POST /sweep: %v", err)
		}
		sr := readSweep(resp, nil)
		if sr.status == http.StatusOK {
			w.admitted += int64(g.points())
		}
		if got := w.absorb(sr, "flat replay of "+g.desc()); got != g.points() {
			w.failf("epilogue: flat replay streamed %d points, want %d", got, g.points())
		}
	}
	w.quiesce()
	w.shutdown()
}
