package chaos

// The world is one chaos run's entire universe: the live daemon (plus
// the durable store directory it restarts over), the seeded rng every
// random choice flows from, and the model the oracle checks the daemon
// against. The model is deliberately tiny — chaos oracles live or die
// by how cheap their invariants are:
//
//   - expected maps every point key ever streamed to its exact NDJSON
//     line; any later sighting of the key must match byte-for-byte.
//   - admitted counts the points accepted by 200-status responses in
//     the current daemon incarnation; together with /stats it closes
//     the conservation laws (hits+misses == admitted, misses ==
//     done+dropped).
//   - history records grids that were streamed to completion at least
//     once, so restarts and the -batch=false epilogue can replay them.
//
// All rng draws happen on the test goroutine: concurrent actors get
// their inputs pre-drawn, so a seed replays the same action sequence
// every time.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/clitest"
	"repro/internal/obs/promtext"
)

// tinyCache is the -cache the chaos daemon runs under: small enough
// that routine sweeps overflow it (forcing eviction and disk re-reads)
// while still holding one overlap wave's points, which keeps the
// strict hits==overlap accounting exact.
const tinyCache = 8

// chaosWait bounds every quiesce/readiness poll in the harness.
const chaosWait = 60 * time.Second

type world struct {
	t       *testing.T
	seed    uint64
	rng     *rand.Rand
	actions int
	actionN int
	curName string

	storeDir  string
	logPath   string
	tracePath string
	d         *clitest.Daemon
	client    *http.Client

	// Cross-incarnation model.
	expected   map[string]string // point key -> exact NDJSON line (no trailing \n)
	history    []grid            // grids streamed to completion at least once
	historySet map[string]bool
	nonce      uint64 // fresh-key generator (becomes the request seed)
	cursor     uint64 // delta-sync client position, survives restarts

	// Per-incarnation model, reset by start().
	admitted   int64 // points admitted by 200 responses since this boot
	cacheLimit int   // the -cache bound this incarnation runs under
}

func newWorld(t *testing.T, seed uint64, actions int) *world {
	dir := logDir(t)
	w := &world{
		t:          t,
		seed:       seed,
		rng:        rand.New(rand.NewSource(int64(seed))),
		actions:    actions,
		storeDir:   filepath.Join(t.TempDir(), "store"),
		logPath:    filepath.Join(dir, fmt.Sprintf("%s-seed%d.log", sanitize(t.Name()), seed)),
		tracePath:  filepath.Join(dir, fmt.Sprintf("%s-seed%d-trace.txt", sanitize(t.Name()), seed)),
		client:     &http.Client{}, // no global timeout: streams may legitimately outlive any fixed guess; contexts bound the risky reads
		expected:   map[string]string{},
		historySet: map[string]bool{},
	}
	if err := os.MkdirAll(w.storeDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Truncate artifacts from an earlier run against the same logdir.
	os.Remove(w.logPath)
	os.Remove(w.tracePath)
	w.trace("chaos run: seed=%d actions=%d", seed, actions)
	w.start()
	return w
}

// sanitize turns a test name into a file-name-safe slug.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, name)
}

// start boots a daemon incarnation over the shared store directory and
// resets the per-incarnation admission model.
func (w *world) start() {
	w.t.Helper()
	d, err := clitest.StartDaemon(sweepdBin(), w.logPath, clitest.DefaultWait,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-cache", strconv.Itoa(tinyCache),
		"-store", w.storeDir,
		"-queue", "512",
		"-slow-request", "250ms",
	)
	if err != nil {
		w.failf("daemon failed to start: %v", err)
	}
	w.d = d
	w.admitted = 0
	w.cacheLimit = tinyCache
	if err := clitest.WaitHealthy(d.URL, clitest.DefaultWait); err != nil {
		w.failf("daemon never became healthy: %v", err)
	}
}

// shutdown SIGTERMs the daemon and requires the clean-drain contract:
// exit code 0 no matter what was in flight.
func (w *world) shutdown() {
	w.t.Helper()
	code, err := w.d.Shutdown()
	if err != nil {
		w.failf("SIGTERM wait: %v", err)
	}
	if code != 0 {
		w.failf("daemon exit code %d after SIGTERM, want 0 (dirty drain)", code)
	}
}

// teardown ends the run: a final clean drain if the daemon is up.
func (w *world) teardown() {
	if w.d != nil && w.d.Running() {
		w.d.Kill()
	}
}

// trace appends one line to the action trace artifact (best-effort) so
// a CI failure shows the exact action history alongside the seed.
func (w *world) trace(format string, args ...any) {
	f, err := os.OpenFile(w.tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	fmt.Fprintf(f, format+"\n", args...)
	f.Close()
}

// failf fails the run with the replay banner every chaos failure must
// carry: the seed, the action count, the exact replay command, and the
// daemon log tail.
func (w *world) failf(format string, args ...any) {
	w.t.Helper()
	msg := fmt.Sprintf(format, args...)
	w.trace("FAIL at action %d (%s): %s", w.actionN, w.curName, msg)
	w.t.Fatalf("chaos: %s\n"+
		"  seed=%d action=%d/%d (%s)\n"+
		"  replay: go test ./internal/chaos -run 'TestChaos$' -chaos.seed=%d -chaos.actions=%d\n"+
		"  if this reproduces, pin it: add {\"seed\": %d, \"actions\": %d} to internal/chaos/regression_seeds.json\n"+
		"  action trace: %s\n"+
		"  daemon log tail:\n%s",
		msg, w.seed, w.actionN, w.actions, w.curName, w.seed, w.actions, w.seed, w.actions,
		w.tracePath, clitest.LogTail(w.logPath, 4096))
}

// daemonStats is the /stats slice the oracle reads.
type daemonStats struct {
	QueueDepth     int    `json:"queue_depth"`
	RunningPoints  int    `json:"running_points"`
	InflightPoints int    `json:"inflight_points"`
	CacheSize      int    `json:"cache_size"`
	CacheHits      int64  `json:"cache_hits"`
	CacheMisses    int64  `json:"cache_misses"`
	CacheEvictions int64  `json:"cache_evictions"`
	DedupJoins     int64  `json:"dedup_joins"`
	WarmHits       int64  `json:"warm_hits"`
	DiskHits       int64  `json:"disk_hits"`
	Segments       int    `json:"segments"`
	StoreCursor    uint64 `json:"store_cursor"`
	Requests       int64  `json:"requests"`
	Rejected       int64  `json:"requests_rejected"`
	Disconnects    int64  `json:"client_disconnects"`
	PointsDone     int64  `json:"points_done"`
	PointsDropped  int64  `json:"points_dropped"`
}

// stats scrapes /stats, failing the run if the daemon won't answer.
func (w *world) stats() daemonStats {
	w.t.Helper()
	st, err := w.tryStats()
	if err != nil {
		w.failf("GET /stats: %v", err)
	}
	return st
}

func (w *world) tryStats() (daemonStats, error) {
	var st daemonStats
	resp, err := w.client.Get(w.d.URL + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// streamRead is one fully-consumed /sweep response.
type streamRead struct {
	status int
	lines  map[string]string // key -> exact NDJSON line
	done   bool              // the {"done":true} trailer arrived
	err    error
}

// readSweep consumes a sweep response body. It carries no testing.T so
// concurrent actors can use it; errors surface in the result. first, when
// non-nil, runs once as soon as the first point line lands — the hook the
// signal actions use to know the stream is genuinely mid-flight.
func readSweep(resp *http.Response, first func()) streamRead {
	defer resp.Body.Close()
	notified := false
	notify := func() {
		if first != nil && !notified {
			notified = true
			first()
		}
	}
	defer notify() // a stream that dies before its first line still unblocks the waiter
	sr := streamRead{status: resp.StatusCode, lines: map[string]string{}}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var probe struct {
			Key   string `json:"key"`
			Error string `json:"error"`
			Done  bool   `json:"done"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			sr.err = fmt.Errorf("bad NDJSON line %q: %v", line, err)
			return sr
		}
		switch {
		case probe.Done:
			if sr.done {
				sr.err = fmt.Errorf("two done trailers in one stream")
				return sr
			}
			sr.done = true
		case probe.Error != "":
			sr.err = fmt.Errorf("error line: %s", line)
			return sr
		case probe.Key == "":
			sr.err = fmt.Errorf("point line without a key: %q", line)
			return sr
		default:
			if _, dup := sr.lines[probe.Key]; dup {
				sr.err = fmt.Errorf("key %s streamed twice", probe.Key)
				return sr
			}
			if sr.done {
				sr.err = fmt.Errorf("point line after the done trailer: %q", line)
				return sr
			}
			sr.lines[probe.Key] = line
			notify()
		}
	}
	if err := sc.Err(); err != nil && sr.err == nil {
		sr.err = err
	}
	return sr
}

// postSweep sends one sweep body (no context, fully read by caller).
func (w *world) postSweep(body string) (*http.Response, error) {
	return w.client.Post(w.d.URL+"/sweep", "application/json", strings.NewReader(body))
}

// absorb checks a completed stream against the byte-identity model and
// folds its lines in. Returns the number of point lines.
func (w *world) absorb(sr streamRead, context string) int {
	w.t.Helper()
	if sr.err != nil {
		w.failf("%s: %v", context, sr.err)
	}
	if sr.status != http.StatusOK {
		w.failf("%s: status %d, want 200", context, sr.status)
	}
	if !sr.done {
		w.failf("%s: stream ended without the done trailer (torn stream)", context)
	}
	w.learnLines(sr.lines, context)
	return len(sr.lines)
}

// learnLines is absorb's model half, shared with partial readers: every
// line either matches the model byte-for-byte or extends it.
func (w *world) learnLines(lines map[string]string, context string) {
	w.t.Helper()
	for key, line := range lines {
		if prev, ok := w.expected[key]; ok {
			if prev != line {
				w.failf("%s: byte-identity violated for point %s:\n  first: %s\n  now:   %s", context, key, prev, line)
			}
			continue
		}
		w.expected[key] = line
	}
}

// recordHistory remembers a grid whose stream completed, for replays.
func (w *world) recordHistory(g grid) {
	body := g.body()
	if w.historySet[body] {
		return
	}
	w.historySet[body] = true
	w.history = append(w.history, g)
}

// quiesce waits until the daemon's queue has fully drained and the
// admission conservation laws have settled, then returns the settled
// stats. This is the cheap half of the oracle, run after every action:
//
//	inflight == queue == 0          (nothing leaked, disconnects included)
//	hits + misses == admitted        (every admitted point classified once)
//	misses == points_done + dropped  (every miss became exactly one outcome)
func (w *world) quiesce() daemonStats {
	w.t.Helper()
	var st daemonStats
	ok := clitest.WaitUntil(chaosWait, func() bool {
		s, err := w.tryStats()
		if err != nil {
			return false
		}
		st = s
		return st.InflightPoints == 0 && st.QueueDepth == 0 && st.RunningPoints == 0 &&
			st.CacheHits+st.CacheMisses == w.admitted &&
			st.CacheMisses == st.PointsDone+st.PointsDropped
	})
	if !ok {
		w.failf("daemon never quiesced into a conserving state: stats=%+v admitted=%d\n"+
			"  want inflight=0 queue=0, hits+misses==admitted, misses==done+dropped", st, w.admitted)
	}
	if st.CacheSize > w.cacheLimit {
		w.failf("cache_size %d exceeds -cache %d: LRU bound broken", st.CacheSize, w.cacheLimit)
	}
	return st
}

// metricsAgree scrapes /metrics and requires each counter family to
// equal its /stats twin. Only called at quiesce, so the two snapshots
// cannot legitimately differ.
func (w *world) metricsAgree(st daemonStats) {
	w.t.Helper()
	resp, err := w.client.Get(w.d.URL + "/metrics")
	if err != nil {
		w.failf("GET /metrics: %v", err)
	}
	raw := make([]byte, 0, 1<<16)
	buf := bufio.NewScanner(resp.Body)
	buf.Buffer(make([]byte, 1<<20), 1<<20)
	for buf.Scan() {
		raw = append(raw, buf.Bytes()...)
		raw = append(raw, '\n')
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.failf("GET /metrics: status %d", resp.StatusCode)
	}
	if err := promtext.Lint(raw); err != nil {
		w.failf("/metrics exposition malformed: %v", err)
	}
	exposition := string(raw)
	for _, pair := range []struct {
		sample string
		want   int64
	}{
		{"sweep_requests_total", st.Requests},
		{"sweep_requests_rejected_total", st.Rejected},
		{"sweep_point_cache_hits_total", st.CacheHits},
		{"sweep_point_cache_misses_total", st.CacheMisses},
		{"sweep_points_done_total", st.PointsDone},
		{"sweep_points_dropped_total", st.PointsDropped},
		{"sweep_client_disconnects_total", st.Disconnects},
		{"sweep_dedup_joins_total", st.DedupJoins},
		{"sweep_queue_depth", int64(st.QueueDepth)},
		{"sweep_inflight_points", int64(st.InflightPoints)},
	} {
		got, ok := sampleValue(exposition, pair.sample)
		if !ok {
			w.failf("/metrics is missing sample %s", pair.sample)
		}
		if got != float64(pair.want) {
			w.failf("surface disagreement: /metrics %s = %v but /stats says %d", pair.sample, got, pair.want)
		}
	}
}

// sampleValue extracts one sample's value from a text exposition; the
// name must match the whole sample name, labels included.
func sampleValue(exposition, name string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 || line[:i] != name {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
