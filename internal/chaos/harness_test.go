// Package chaos is the serving path's fault-injection oracle: a seeded
// black-box harness that boots real sweepd binaries and drives them
// through a weighted random mix of the abuse a production daemon eats —
// overlapping grids from concurrent actors, clients hanging up
// mid-stream, slow readers, SIGKILL followed by a warm restart over the
// durable store, SIGTERM with streams in flight, cache pressure under a
// tiny -cache, delta-sync pulls that resume across restarts, and
// /metrics-vs-/stats scrapes — then checks, after every action, the
// invariants the paper's methodology makes strong and cheap:
//
//   - byte-identity: a grid point's NDJSON line never varies — across
//     clients, across restarts, across list-vs-range request forms,
//     and (in the run epilogue) across -batch=true vs -batch=false.
//   - admission conservation: cache_hits + cache_misses equals the
//     points admitted by 200-status responses, and every miss becomes
//     exactly one points_done or points_dropped.
//   - overlap accounting: N clients racing one fresh grid cost exactly
//     len(grid) simulations; the other (N-1)*len(grid) are hits.
//   - no leaked queue entries: the queue and inflight gauges return to
//     zero after every action, disconnects included.
//   - warm restart: a SIGKILLed daemon restarted over its -store serves
//     its whole history with zero re-simulations.
//   - surface agreement: /metrics counters equal their /stats twins.
//   - clean drain: SIGTERM completes in-flight streams (trailer and
//     all) and the process exits 0.
//
// Every random choice flows from one seed, so a failure replays:
//
//	go test ./internal/chaos -run 'TestChaos$' -chaos.seed=N -chaos.actions=M
//
// Known-bad seeds live in regression_seeds.json and replay forever via
// TestRegressionSeeds.
package chaos

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/clitest"
)

var (
	chaosActions = flag.Int("chaos.actions", 25, "actions per chaos run (TestChaos)")
	chaosSeed    = flag.Uint64("chaos.seed", 1, "seed driving the whole action mix (TestChaos)")
	chaosLogDir  = flag.String("chaos.logdir", "", "directory keeping daemon logs and action traces (default: a per-run temp dir; CI points this somewhere it can upload as an artifact)")
)

// binDir holds the sweepd binary built once for the whole test run.
var binDir string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "chaos-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	binDir = dir
	// The chaos oracle only drives the daemon; building just sweepd
	// keeps the package's fixed cost at one cached link.
	if err := clitest.BuildCmds("../..", binDir, "./cmd/sweepd"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.RemoveAll(binDir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

// sweepdBin is the daemon binary under test.
func sweepdBin() string { return binDir + string(os.PathSeparator) + "sweepd" }

// logDir resolves where this run's daemon logs and action traces live.
func logDir(t *testing.T) string {
	if *chaosLogDir != "" {
		if err := os.MkdirAll(*chaosLogDir, 0o755); err != nil {
			t.Fatalf("chaos: creating -chaos.logdir: %v", err)
		}
		return *chaosLogDir
	}
	return t.TempDir()
}

// TestChaos is the flag-driven chaos run: -chaos.seed picks the action
// sequence, -chaos.actions its length. The default is a CI-sized smoke;
// the acceptance configuration is -chaos.actions=200 -chaos.seed=42.
func TestChaos(t *testing.T) {
	runChaos(t, *chaosSeed, *chaosActions)
}
