package chaos

// Regression seeds: every seed that ever exposed a serving-path bug is
// pinned in regression_seeds.json and replayed forever. When a chaos
// failure reproduces, add its {seed, actions} pair here in the same PR
// as the fix — the harness is deterministic, so the entry is a permanent
// regression test that costs one JSON line.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// regressionSeed is one pinned replay configuration.
type regressionSeed struct {
	Seed    uint64 `json:"seed"`
	Actions int    `json:"actions"`
	// Note says what the seed originally caught, for the reader only.
	Note string `json:"note,omitempty"`
}

func loadRegressionSeeds(t *testing.T) []regressionSeed {
	t.Helper()
	raw, err := os.ReadFile("regression_seeds.json")
	if err != nil {
		t.Fatalf("chaos: reading regression seeds: %v", err)
	}
	var seeds []regressionSeed
	if err := json.Unmarshal(raw, &seeds); err != nil {
		t.Fatalf("chaos: regression_seeds.json is not a JSON list of {seed, actions}: %v", err)
	}
	for i, s := range seeds {
		if s.Actions <= 0 {
			t.Fatalf("chaos: regression seed %d has no action budget: %+v", i, s)
		}
	}
	return seeds
}

// TestRegressionSeeds replays every pinned seed. Runs are deterministic
// per seed, so a pass here means the exact action sequences that once
// found bugs still pass against the current daemon.
func TestRegressionSeeds(t *testing.T) {
	for _, s := range loadRegressionSeeds(t) {
		s := s
		t.Run(fmt.Sprintf("seed%d_actions%d", s.Seed, s.Actions), func(t *testing.T) {
			runChaos(t, s.Seed, s.Actions)
		})
	}
}
