package core

import (
	"testing"

	"repro/internal/trace"
)

func sensitivityConfig() SweepConfig {
	cfg := testConfig()
	cfg.Instructions = 25000
	// Integer benchmarks only: §4.5's curves and Figure 8 focus there.
	cfg.Benchmarks = trace.ByGroup(trace.Integer)[:4]
	return cfg
}

func TestLatencySensitivityMonotone(t *testing.T) {
	curves := LatencySensitivity(sensitivityConfig(), 6)
	if len(curves) != 5 {
		t.Fatalf("got %d curves, want 5 structures", len(curves))
	}
	for _, c := range curves {
		prev := 2.0
		for _, p := range c.Points {
			if p.AllIPC > prev*1.005 {
				t.Errorf("%v: IPC rose when latency grew to %d cycles", c.Structure, p.LatencyCycles)
			}
			prev = p.AllIPC
		}
		if c.Points[0].AllIPC <= 0 {
			t.Errorf("%v: empty curve", c.Structure)
		}
	}
}

func TestLatencySensitivityOrdering(t *testing.T) {
	// The issue window's latency (the wakeup loop) must be among the most
	// sensitive structures and the L2 among the least, consistent with
	// Figure 8's critical-loop analysis.
	curves := LatencySensitivity(sensitivityConfig(), 6)
	drop := map[Structure]float64{}
	for _, c := range curves {
		drop[c.Structure] = c.Points[0].AllIPC / c.Points[len(c.Points)-1].AllIPC
	}
	if drop[StructWindow] < drop[StructL2] {
		t.Errorf("window sensitivity (%.2f) below L2 sensitivity (%.2f)",
			drop[StructWindow], drop[StructL2])
	}
	if drop[StructDL1] < drop[StructL2] {
		t.Errorf("DL1 sensitivity (%.2f) below L2 sensitivity (%.2f)",
			drop[StructDL1], drop[StructL2])
	}
}

func TestSensitivityBaselineRelative(t *testing.T) {
	curves := LatencySensitivity(sensitivityConfig(), 6)
	for _, c := range curves {
		if c.Baseline < 1 {
			t.Errorf("%v: baseline latency %d", c.Structure, c.Baseline)
		}
		if c.Baseline <= len(c.Points) {
			rel := c.Points[c.Baseline-1].RelativeAll
			if rel < 0.999 || rel > 1.001 {
				t.Errorf("%v: relative IPC at baseline = %v, want 1", c.Structure, rel)
			}
		}
	}
}

func TestStructureStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range []Structure{StructDL1, StructL2, StructWindow, StructBPred, StructRegRead} {
		if seen[s.String()] {
			t.Errorf("duplicate structure name %q", s)
		}
		seen[s.String()] = true
	}
}
