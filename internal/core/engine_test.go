package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/trace"
)

// smallConfig keeps engine tests fast: few benchmarks, a short grid.
func smallConfig() SweepConfig {
	c := testConfig()
	c.Instructions = 8000
	c.UsefulGrid = []float64{4, 6, 8}
	c.Benchmarks = []trace.Profile{
		mustProfile("176.gcc"), mustProfile("171.swim"), mustProfile("177.mesa"),
	}
	return c
}

func mustProfile(name string) trace.Profile {
	p, ok := trace.ByName(name)
	if !ok {
		panic("no profile " + name)
	}
	return p
}

// TestDepthSweepWorkerCountInvariant is the determinism table test: the
// serial path and the parallel path must render bit-for-bit identical
// results, because results are slotted by index and aggregated serially.
func TestDepthSweepWorkerCountInvariant(t *testing.T) {
	base := smallConfig()
	var want string
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := base
			cfg.Workers = workers
			got := fmt.Sprintf("%#v", DepthSweep(cfg).Points)
			if workers == 1 {
				want = got
				return
			}
			if got != want {
				t.Errorf("Workers=%d sweep differs from Workers=1", workers)
			}
		})
	}
}

func TestWarmupSentinel(t *testing.T) {
	// The zero value keeps its historical meaning: default 20%.
	c := SweepConfig{Instructions: 1000}
	c.fill()
	if c.Warmup != 200 {
		t.Errorf("Warmup 0 resolved to %d, want the 20%% default (200)", c.Warmup)
	}
	// NoWarmup requests explicitly zero warmup, which the zero value
	// could never express.
	c = SweepConfig{Instructions: 1000, Warmup: NoWarmup}
	c.fill()
	if c.Warmup != 0 {
		t.Errorf("Warmup NoWarmup resolved to %d, want 0", c.Warmup)
	}
	// Explicit positive values pass through untouched.
	c = SweepConfig{Instructions: 1000, Warmup: 123}
	c.fill()
	if c.Warmup != 123 {
		t.Errorf("Warmup 123 resolved to %d, want 123", c.Warmup)
	}
}

func TestNoWarmupChangesResults(t *testing.T) {
	cfg := smallConfig()
	withWarmup := DepthSweep(cfg)
	cfg.Warmup = NoWarmup
	noWarmup := DepthSweep(cfg)
	if withWarmup.Points[0].AllBIPS == noWarmup.Points[0].AllBIPS {
		t.Error("NoWarmup produced the same aggregate as the 20% default; sentinel not honored")
	}
}

// TestTraceCacheReuse pins the trace cache contract: the same
// (profile, instructions, seed) always yields the same *trace.Trace
// pointer, and different seeds yield different instances.
func TestTraceCacheReuse(t *testing.T) {
	cfg := smallConfig()
	cfg.fill()
	a := cfg.traces()
	b := cfg.traces()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("trace %d regenerated instead of cached", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	c := cfg2.traces()
	for i := range a {
		if a[i] == c[i] {
			t.Errorf("trace %d shared across different seeds", i)
		}
	}
}

func TestDepthSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts
	cfg := smallConfig()
	cfg.Context = ctx
	res := DepthSweep(cfg)
	if err := ctx.Err(); err == nil {
		t.Fatal("context unexpectedly alive")
	}
	// A cancelled sweep returns promptly with empty aggregates rather
	// than panicking inside the harmonic means.
	for _, p := range res.Points {
		if p.AllBIPS != 0 || len(p.PerBench) != 0 {
			t.Errorf("cancelled sweep produced aggregates: %+v", p)
		}
	}
}
