package core

import (
	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// WindowPoint is one x-position of Figure 11: the wakeup logic pipelined
// into Stages segments, with IPC relative to the single-stage window.
type WindowPoint struct {
	Stages      int
	RelativeIPC map[trace.Group]float64
	RelativeAll float64
}

// SegmentedWindowSweep reproduces Figure 11: a 32-entry unified instruction
// window at the Alpha 21264's latencies, with wakeup pipelined from 1 to
// maxStages segments. All entries remain visible to selection (the
// selection experiment is separate — see SegmentedSelect). naive selects
// Stark et al.'s pessimistic pipelining instead, where dependent
// instructions can never issue in consecutive cycles. Every stage count
// runs as one batch on the worker pool; the single-stage variant is both
// the first point and the relative-IPC baseline.
func SegmentedWindowSweep(cfg SweepConfig, maxStages int, naive bool) []WindowPoint {
	cfg.fill()
	cfg.Machine.UnifiedWindow = 32
	traces := cfg.traces()
	base := pipeline.Params{Machine: cfg.Machine, Timing: config.Alpha21264Timing(), Warmup: cfg.Warmup}

	mods := make([]func(*pipeline.Params), maxStages)
	for s := 1; s <= maxStages; s++ {
		s := s
		mods[s-1] = func(p *pipeline.Params) {
			p.WindowStages = s
			p.NaivePipelining = naive && s > 1
		}
	}
	pts := runIPCVariants(cfg, traces, base, mods)
	baseline := pts[0] // one wakeup stage: the conventional window

	points := make([]WindowPoint, maxStages)
	for i, v := range pts {
		pt := WindowPoint{Stages: i + 1, RelativeIPC: map[trace.Group]float64{}}
		for _, grp := range trace.Groups() {
			if x, ok := v.groups[grp]; ok {
				pt.RelativeIPC[grp] = x / baseline.groups[grp]
			}
		}
		pt.RelativeAll = v.all / baseline.all
		points[i] = pt
	}
	return points
}

// SelectResult is the Section 5.2 experiment outcome: IPC of the
// partitioned-selection window relative to a single-cycle 32-entry window
// with full select fan-in.
type SelectResult struct {
	RelativeIPC map[trace.Group]float64
	RelativeAll float64
}

// SegmentedSelect reproduces the Figure 12 design evaluation: a 32-entry
// window in four stages with selection fan-in 16 — stage 1's eight entries
// fully visible plus pre-selection quotas of 5, 2 and 1 instructions from
// stages 2, 3 and 4 — compared against the conventional window. The paper
// reports integer IPC down 4% and floating-point down 1%.
func SegmentedSelect(cfg SweepConfig) SelectResult {
	cfg.fill()
	cfg.Machine.UnifiedWindow = 32
	traces := cfg.traces()
	base := pipeline.Params{Machine: cfg.Machine, Timing: config.Alpha21264Timing(), Warmup: cfg.Warmup}

	pts := runIPCVariants(cfg, traces, base, []func(*pipeline.Params){
		nil, // the conventional single-cycle window
		func(p *pipeline.Params) {
			p.WindowStages = 4
			p.PreSelect = []int{5, 2, 1}
		},
	})
	conv, seg := pts[0], pts[1]

	res := SelectResult{RelativeIPC: map[trace.Group]float64{}}
	for _, g := range trace.Groups() {
		if v, ok := seg.groups[g]; ok {
			res.RelativeIPC[g] = v / conv.groups[g]
		}
	}
	res.RelativeAll = seg.all / conv.all
	return res
}
