package core

import (
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// WindowPoint is one x-position of Figure 11: the wakeup logic pipelined
// into Stages segments, with IPC relative to the single-stage window.
type WindowPoint struct {
	Stages      int
	RelativeIPC map[trace.Group]float64
	RelativeAll float64
}

// SegmentedWindowSweep reproduces Figure 11: a 32-entry unified instruction
// window at the Alpha 21264's latencies, with wakeup pipelined from 1 to
// maxStages segments. All entries remain visible to selection (the
// selection experiment is separate — see SegmentedSelect). naive selects
// Stark et al.'s pessimistic pipelining instead, where dependent
// instructions can never issue in consecutive cycles.
func SegmentedWindowSweep(cfg SweepConfig, maxStages int, naive bool) []WindowPoint {
	cfg.fill()
	cfg.Machine.UnifiedWindow = 32
	traces := make([]*trace.Trace, len(cfg.Benchmarks))
	for i, b := range cfg.Benchmarks {
		traces[i] = b.Generate(cfg.Instructions, cfg.Seed)
	}
	timing := config.Alpha21264Timing()

	run := func(stages int) (map[trace.Group]float64, float64) {
		groups := map[trace.Group][]float64{}
		var all []float64
		for _, tr := range traces {
			p := pipeline.Params{
				Machine:         cfg.Machine,
				Timing:          timing,
				Warmup:          cfg.Warmup,
				WindowStages:    stages,
				NaivePipelining: naive && stages > 1,
			}
			s := pipeline.Run(p, tr)
			groups[tr.Group] = append(groups[tr.Group], s.IPC)
			all = append(all, s.IPC)
		}
		out := map[trace.Group]float64{}
		for g, xs := range groups {
			out[g] = metrics.HarmonicMean(xs)
		}
		return out, metrics.HarmonicMean(all)
	}

	baseGroups, baseAll := run(1)
	var points []WindowPoint
	for stages := 1; stages <= maxStages; stages++ {
		g, all := run(stages)
		pt := WindowPoint{Stages: stages, RelativeIPC: map[trace.Group]float64{}}
		for grp, v := range g {
			pt.RelativeIPC[grp] = v / baseGroups[grp]
		}
		pt.RelativeAll = all / baseAll
		points = append(points, pt)
	}
	return points
}

// SelectResult is the Section 5.2 experiment outcome: IPC of the
// partitioned-selection window relative to a single-cycle 32-entry window
// with full select fan-in.
type SelectResult struct {
	RelativeIPC map[trace.Group]float64
	RelativeAll float64
}

// SegmentedSelect reproduces the Figure 12 design evaluation: a 32-entry
// window in four stages with selection fan-in 16 — stage 1's eight entries
// fully visible plus pre-selection quotas of 5, 2 and 1 instructions from
// stages 2, 3 and 4 — compared against the conventional window. The paper
// reports integer IPC down 4% and floating-point down 1%.
func SegmentedSelect(cfg SweepConfig) SelectResult {
	cfg.fill()
	cfg.Machine.UnifiedWindow = 32
	traces := make([]*trace.Trace, len(cfg.Benchmarks))
	for i, b := range cfg.Benchmarks {
		traces[i] = b.Generate(cfg.Instructions, cfg.Seed)
	}
	timing := config.Alpha21264Timing()

	run := func(seg bool) (map[trace.Group]float64, float64) {
		groups := map[trace.Group][]float64{}
		var all []float64
		for _, tr := range traces {
			p := pipeline.Params{Machine: cfg.Machine, Timing: timing, Warmup: cfg.Warmup}
			if seg {
				p.WindowStages = 4
				p.PreSelect = []int{5, 2, 1}
			}
			s := pipeline.Run(p, tr)
			groups[tr.Group] = append(groups[tr.Group], s.IPC)
			all = append(all, s.IPC)
		}
		out := map[trace.Group]float64{}
		for g, xs := range groups {
			out[g] = metrics.HarmonicMean(xs)
		}
		return out, metrics.HarmonicMean(all)
	}

	baseG, baseAll := run(false)
	segG, segAll := run(true)
	res := SelectResult{RelativeIPC: map[trace.Group]float64{}}
	for g, v := range segG {
		res.RelativeIPC[g] = v / baseG[g]
	}
	res.RelativeAll = segAll / baseAll
	return res
}
