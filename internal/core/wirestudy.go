package core

import (
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// WireStudy runs the paper's stated future work (Section 7): the same
// depth sweep with and without the wire-delay model applied to the
// critical loops. The paper conjectures that wires do not move the
// optimum for a fixed microarchitecture; the study quantifies how much
// performance they cost and where the optimum lands once every critical
// loop pays its floorplan distance. Both sweeps run as one interleaved
// batch on the worker pool.
func WireStudy(cfg SweepConfig, wm wire.Model) (without, with SweepResult) {
	cfg.fill()
	traces := cfg.traces()

	specs := make([]pointSpec, 0, 2*len(cfg.UsefulGrid))
	for _, useful := range cfg.UsefulGrid {
		specs = append(specs,
			cfg.pointSpecFor(useful, nil),
			cfg.pointSpecFor(useful, func(p *pipeline.Params) {
				p.Timing = wm.ApplyToTiming(cfg.Machine, p.Timing)
			}))
	}
	points := runPoints(cfg, specs, traces)

	without = SweepResult{Config: cfg}
	with = SweepResult{Config: cfg}
	for i := 0; i < len(points); i += 2 {
		without.Points = append(without.Points, points[i])
		with.Points = append(with.Points, points[i+1])
	}
	return without, with
}
