package core

import (
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/wire"
)

// WireStudy runs the paper's stated future work (Section 7): the same
// depth sweep with and without the wire-delay model applied to the
// critical loops. The paper conjectures that wires do not move the
// optimum for a fixed microarchitecture; the study quantifies how much
// performance they cost and where the optimum lands once every critical
// loop pays its floorplan distance.
func WireStudy(cfg SweepConfig, wm wire.Model) (without, with SweepResult) {
	cfg.fill()
	traces := make([]*trace.Trace, len(cfg.Benchmarks))
	for i, b := range cfg.Benchmarks {
		traces[i] = b.Generate(cfg.Instructions, cfg.Seed)
	}
	without = SweepResult{Config: cfg}
	with = SweepResult{Config: cfg}
	for _, useful := range cfg.UsefulGrid {
		without.Points = append(without.Points, runPoint(cfg, useful, traces, nil))
		with.Points = append(with.Points, runPoint(cfg, useful, traces, func(p *pipeline.Params) {
			p.Timing = wm.ApplyToTiming(cfg.Machine, p.Timing)
		}))
	}
	return without, with
}
