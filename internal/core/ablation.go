package core

import (
	"fmt"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/trace"
)

// AblationPoint is one machine variant's performance at the optimal clock.
type AblationPoint struct {
	Name    string
	BIPS    map[trace.Group]float64
	AllBIPS float64
	// Relative is AllBIPS versus the baseline machine.
	Relative float64
}

// AblationStudy quantifies the contribution of each modeled mechanism by
// turning it off (or resizing it) on the baseline machine at the optimal
// 6 FO4 clock. It covers the modeling choices DESIGN.md calls out: the
// split issue queues, the register-file-unconstrained in-flight window,
// the branch predictor, the cache hierarchy, and the machine widths. All
// variants run as one batch on the worker pool.
func AblationStudy(cfg SweepConfig) []AblationPoint {
	cfg.fill()
	traces := cfg.traces()
	const useful = 6.0

	type variant struct {
		name string
		mod  func(*pipeline.Params)
	}
	variants := []variant{
		{"baseline (Alpha 21264 at 6 FO4)", nil},
		{"unified 35-entry window", func(p *pipeline.Params) {
			p.Machine.UnifiedWindow = p.Machine.IntWindow + p.Machine.FPWindow
		}},
		{"small in-flight window (ROB 80)", func(p *pipeline.Params) {
			p.Machine.ROB = 80
		}},
		{"perfect branch prediction", func(p *pipeline.Params) {
			p.Machine.PerfectBranches = true
		}},
		{"perfect memory (all L1 hits)", func(p *pipeline.Params) {
			p.Machine.PerfectMemory = true
		}},
		{"half fetch/commit width", func(p *pipeline.Params) {
			p.Machine.FetchWidth = 2
			p.Machine.CommitWidth = 4
		}},
		{"double issue width", func(p *pipeline.Params) {
			p.Machine.IntIssue = 8
			p.Machine.FPIssue = 4
		}},
	}

	specs := make([]pointSpec, len(variants))
	for i, v := range variants {
		specs[i] = cfg.pointSpecFor(useful, v.mod)
	}
	points := runPoints(cfg, specs, traces)

	var out []AblationPoint
	var baseline float64
	for i, v := range variants {
		pt := points[i]
		ap := AblationPoint{Name: v.name, BIPS: pt.GroupBIPS, AllBIPS: pt.AllBIPS}
		if baseline == 0 {
			baseline = pt.AllBIPS
		}
		ap.Relative = ap.AllBIPS / baseline
		out = append(out, ap)
	}
	return out
}

// PrefetchAblation measures the stream-prefetch substitution's effect: the
// suite's BIPS at 6 FO4 with the profiles' calibrated coverage versus no
// prefetching at all. It returns (with, without).
func PrefetchAblation(cfg SweepConfig) (with, without float64) {
	cfg.fill()
	const useful = 6.0
	withTr := cfg.traces()
	// Cached traces are shared read-only; derive the no-prefetch variants
	// as clones rather than mutating the shared instances.
	withoutTr := make([]*trace.Trace, len(withTr))
	for i, t := range withTr {
		withoutTr[i] = t.WithPrefetchCoverage(1e-9) // effectively off, deterministically
	}
	return runPoint(cfg, useful, withTr, nil).AllBIPS,
		runPoint(cfg, useful, withoutTr, nil).AllBIPS
}

// RenderAblation formats the study as rows of relative performance.
func RenderAblation(points []AblationPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation study at the 6 FO4 optimum (all-benchmark harmonic BIPS)")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-36s %7.3f  (%.3fx)\n", p.Name, p.AllBIPS, p.Relative)
	}
	return b.String()
}
