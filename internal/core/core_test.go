package core

import (
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/fo4"
	"repro/internal/trace"
)

// The full Figure 5 sweep is the most expensive fixture; share it.
var (
	fig5Once sync.Once
	fig5     SweepResult
)

func testConfig() SweepConfig {
	return SweepConfig{
		Machine:      config.Alpha21264(),
		Overhead:     fo4.PaperOverhead,
		Instructions: 40000,
	}
}

func figure5(t *testing.T) SweepResult {
	t.Helper()
	fig5Once.Do(func() {
		fig5 = DepthSweep(testConfig())
	})
	return fig5
}

func TestFigure5IntegerOptimumAtSixFO4(t *testing.T) {
	// The headline result: integer performance peaks at 6 FO4 of useful
	// logic per stage. The raw argmax can land on the t=9 cycle-count
	// quantization sawtooth (where the 17.4-FO4 structures all drop from
	// 3 to 2 cycles), so the optimum is read plateau-tolerantly, exactly
	// as the paper reads its own flat curves.
	s := figure5(t)
	opt := s.NearOptimalUseful(trace.Integer, 0.02)
	if opt < 5 || opt > 7 {
		t.Errorf("integer optimum = %v FO4, want 6 ± 1", opt)
	}
	series := s.GroupSeries(trace.Integer)
	best := series[0]
	for _, v := range series {
		if v > best {
			best = v
		}
	}
	// And the 6 FO4 point must effectively be the peak.
	at6 := s.Points[4].GroupBIPS[trace.Integer] // grid starts at 2
	if at6 < 0.97*best {
		t.Errorf("BIPS at 6 FO4 (%.3f) not within 3%% of the peak (%.3f)", at6, best)
	}
}

func TestFigure5VectorOptimumDeeper(t *testing.T) {
	// Vector FP codes prefer deeper pipelines: the paper finds 4 FO4; our
	// reproduction's plateau includes 4 and its argmax sits at 4-5 FO4,
	// at or below the integer optimum.
	s := figure5(t)
	vec := s.NearOptimalUseful(trace.VectorFP, 0.03)
	if vec < 3 || vec > 6 {
		t.Errorf("vector optimum = %v FO4, want in [3, 6] (paper: 4)", vec)
	}
	if intOpt := s.OptimalUseful(trace.Integer); vec > intOpt {
		t.Errorf("vector optimum (%v) shallower than integer (%v)", vec, intOpt)
	}
	// The 4 FO4 point is within a few percent of the vector peak.
	series := s.GroupSeries(trace.VectorFP)
	best := series[0]
	for _, v := range series {
		if v > best {
			best = v
		}
	}
	if at4 := s.Points[2].GroupBIPS[trace.VectorFP]; at4 < 0.95*best {
		t.Errorf("vector BIPS at 4 FO4 (%.3f) more than 5%% below peak (%.3f)", at4, best)
	}
}

func TestFigure5GroupOrdering(t *testing.T) {
	// Figure 5's levels: vector FP fastest, then integer, then non-vector
	// FP (each at its own optimum).
	s := figure5(t)
	max := func(g trace.Group) float64 {
		best := 0.0
		for _, v := range s.GroupSeries(g) {
			if v > best {
				best = v
			}
		}
		return best
	}
	vec, integer, nonvec := max(trace.VectorFP), max(trace.Integer), max(trace.NonVectorFP)
	if !(vec > integer && integer > nonvec) {
		t.Errorf("group ordering violated: vector %.2f, integer %.2f, non-vector %.2f",
			vec, integer, nonvec)
	}
}

func TestFigure5AllBenchmarkOptimum(t *testing.T) {
	// The dashed all-benchmark curve also peaks at ~6 FO4.
	s := figure5(t)
	opt := s.NearOptimalUseful2All()
	if opt < 4 || opt > 8 {
		t.Errorf("all-benchmark optimum = %v FO4, want ~6", opt)
	}
}

// NearOptimalUseful2All is a test helper giving the plateau-tolerant
// overall optimum.
func (r SweepResult) NearOptimalUseful2All() float64 {
	series := r.AllSeries()
	best := series[0]
	for _, v := range series {
		if v > best {
			best = v
		}
	}
	for i, p := range r.Points {
		if series[i] >= 0.98*best {
			return p.Useful
		}
	}
	return r.Points[0].Useful
}

func TestHeadlineFrequencies(t *testing.T) {
	// Section 7: the optimal integer clock period is ~7.8 FO4, i.e.
	// ~3.6 GHz at 100nm.
	s := figure5(t)
	intOpt := s.NearOptimalUseful(trace.Integer, 0.02)
	period := intOpt + fo4.PaperOverhead.Total()
	if period < 6.8 || period > 8.8 {
		t.Errorf("optimal integer period = %.1f FO4, want ~7.8", period)
	}
	freq := fo4.Clock{Useful: intOpt, Overhead: fo4.PaperOverhead}.FrequencyHz(fo4.Tech100nm)
	if freq < 3.1e9 || freq > 4.1e9 {
		t.Errorf("optimal integer frequency = %.2f GHz, want ~3.6", freq/1e9)
	}
}

func TestPipeliningLimit(t *testing.T) {
	// Section 7: pipelining deeper than today's designs buys at most
	// about another factor of two — i.e., a finite, modest gain.
	s := figure5(t)
	gain := PipeliningLimit(s)
	if gain <= 1.0 || gain > 2.5 {
		t.Errorf("remaining pipelining gain = %.2fx, want in (1, 2.5]", gain)
	}
}

func TestFigure4aNoOverheadMonotonicDeepening(t *testing.T) {
	// Figure 4a: without latch overhead, performance keeps improving as
	// the pipeline deepens — the deepest point beats the shallowest —
	// but sub-linearly: halving t_useful from 8 to 4 gains integer codes
	// only ~20%, not 100%.
	cfg := testConfig()
	cfg.Machine = config.InOrder7Stage()
	cfg.Overhead = fo4.Overhead{}
	s := DepthSweep(cfg)
	series := s.GroupSeries(trace.Integer)
	if series[0] <= series[len(series)-1] {
		t.Errorf("no-overhead BIPS at t=2 (%.3f) not above t=16 (%.3f)", series[0], series[len(series)-1])
	}
	imp := series[2] / series[6] // t=4 vs t=8
	if imp < 1.0 || imp > 1.35 {
		t.Errorf("8→4 FO4 improvement = %.2f, want modest (paper: 1.18)", imp)
	}
}

func TestFigure4bInOrderOptimumInterior(t *testing.T) {
	// Figure 4b: with 1.8 FO4 overhead the in-order optimum is interior —
	// neither the deepest nor the shallowest point. (The paper reads 6
	// FO4; our in-order reproduction's plateau sits at 6-10, see
	// EXPERIMENTS.md.)
	cfg := testConfig()
	cfg.Machine = config.InOrder7Stage()
	s := DepthSweep(cfg)
	opt := s.NearOptimalUseful(trace.Integer, 0.02)
	if opt <= 2 || opt >= 16 {
		t.Errorf("in-order optimum = %v FO4, want interior", opt)
	}
	if opt > 10 {
		t.Errorf("in-order optimum = %v FO4, want ≤ 10 (paper: 6)", opt)
	}
}

func TestFigure6OptimumInsensitiveToOverhead(t *testing.T) {
	// Figure 6: for overheads from 1 to 5 FO4, the integer optimum stays
	// at ~6 FO4 of useful logic.
	cfg := testConfig()
	cfg.Benchmarks = trace.ByGroup(trace.Integer)
	cfg.UsefulGrid = []float64{3, 4, 5, 6, 7, 8, 10, 12}
	sweeps := OverheadSensitivity(cfg, []float64{1, 2, 3, 4, 5})
	for i, s := range sweeps {
		// The argmax drifts a little along the flat plateau (4..8 FO4),
		// but 6 FO4 stays within 4% of each curve's maximum — the paper's
		// insensitivity claim in plateau form.
		opt := s.NearOptimalUseful(trace.Integer, 0.02)
		if opt < 3 || opt > 8 {
			t.Errorf("overhead %d FO4: optimum = %v, want within the 6±2 plateau", i+1, opt)
		}
		series := s.GroupSeries(trace.Integer)
		best := series[0]
		for _, v := range series {
			if v > best {
				best = v
			}
		}
		at6 := series[3] // grid index of t=6
		if at6 < 0.96*best {
			t.Errorf("overhead %d FO4: BIPS at 6 FO4 (%.3f) more than 4%% below max (%.3f)", i+1, at6, best)
		}
	}
	// More overhead always means less absolute performance at the optimum.
	prev := -1.0
	for i, s := range sweeps {
		series := s.GroupSeries(trace.Integer)
		best := series[0]
		for _, v := range series {
			if v > best {
				best = v
			}
		}
		if prev > 0 && best >= prev {
			t.Errorf("peak BIPS did not fall when overhead grew to %d FO4", i+1)
		}
		prev = best
	}
}

func TestFigure8LoopOrdering(t *testing.T) {
	// Figure 8: IPC is most sensitive to the issue-wakeup loop, then
	// load-use, then branch misprediction.
	sweeps := CriticalLoopSensitivity(testConfig(), 8)
	get := func(l Loop) float64 {
		for _, s := range sweeps {
			if s.Loop == l {
				return s.Points[8].RelativeIPC[trace.Integer]
			}
		}
		t.Fatalf("missing loop %v", l)
		return 0
	}
	w, lu, b := get(IssueWakeup), get(LoadUse), get(BranchMispredict)
	if !(w < lu && lu < b) {
		t.Errorf("sensitivity ordering violated at +8 cycles: wakeup %.3f, load-use %.3f, mispredict %.3f", w, lu, b)
	}
	// All relative IPCs start at 1 and decline.
	for _, s := range sweeps {
		if r := s.Points[0].RelativeIPC[trace.Integer]; r < 0.999 || r > 1.001 {
			t.Errorf("%v: relative IPC at +0 = %v, want 1", s.Loop, r)
		}
		prev := 2.0
		for _, p := range s.Points {
			if p.RelativeIPC[trace.Integer] > prev*1.005 {
				t.Errorf("%v: relative IPC rose when the loop was stretched", s.Loop)
			}
			prev = p.RelativeIPC[trace.Integer]
		}
	}
}

func TestFigure11SegmentedWindow(t *testing.T) {
	// Figure 11: pipelining the 32-entry window's wakeup to 10 stages
	// costs integer codes ~11% and FP codes ~5% in the paper; our
	// reproduction lands in the same bands, with FP losing less than
	// integer, and shallow segmentations nearly free.
	pts := SegmentedWindowSweep(testConfig(), 10, false)
	if r := pts[0].RelativeIPC[trace.Integer]; r < 0.999 || r > 1.001 {
		t.Fatalf("1-stage relative IPC = %v, want 1", r)
	}
	two := pts[1].RelativeIPC[trace.Integer]
	if two < 0.96 {
		t.Errorf("2-stage window already costs %.1f%%; should be nearly free", (1-two)*100)
	}
	last := pts[9]
	intLoss := 1 - last.RelativeIPC[trace.Integer]
	fpLoss := 1 - (last.RelativeIPC[trace.VectorFP]+last.RelativeIPC[trace.NonVectorFP])/2
	if intLoss < 0.06 || intLoss > 0.25 {
		t.Errorf("10-stage integer loss = %.1f%%, want near the paper's 11%%", intLoss*100)
	}
	if fpLoss >= intLoss {
		t.Errorf("FP loss (%.1f%%) not below integer loss (%.1f%%)", fpLoss*100, intLoss*100)
	}
}

func TestNaivePipeliningMuchWorse(t *testing.T) {
	// Stark et al.: pipelining that breaks back-to-back issue costs far
	// more than segmentation at the same depth.
	seg := SegmentedWindowSweep(testConfig(), 4, false)
	naive := SegmentedWindowSweep(testConfig(), 4, true)
	s4 := seg[3].RelativeIPC[trace.Integer]
	n4 := naive[3].RelativeIPC[trace.Integer]
	if n4 >= s4 {
		t.Errorf("naive pipelining (%.3f) not worse than segmentation (%.3f)", n4, s4)
	}
	if n4 > 0.85 {
		t.Errorf("naive 4-deep pipelining only cost %.1f%%; expected a heavy loss", (1-n4)*100)
	}
}

func TestSegmentedSelectSmallLoss(t *testing.T) {
	// Section 5.2: the 4-stage, fan-in-16, pre-select-5/2/1 design loses
	// only a little IPC (paper: 4% integer, 1% FP), with FP losing less.
	res := SegmentedSelect(testConfig())
	intRel := res.RelativeIPC[trace.Integer]
	vecRel := res.RelativeIPC[trace.VectorFP]
	if intRel < 0.86 || intRel >= 1.0 {
		t.Errorf("integer relative IPC = %.3f, want a small loss (paper: 0.96)", intRel)
	}
	if vecRel < intRel {
		t.Errorf("vector FP (%.3f) lost more than integer (%.3f)", vecRel, intRel)
	}
}

func TestCray1SMemoryPlateau(t *testing.T) {
	// Section 4.2: with the Cray-1S memory system, performance is far
	// lower and nearly flat in clock — deeper pipelining cannot help a
	// memory-bottlenecked machine, and shallow pipelines around 11 FO4
	// remain within a whisker of the best point.
	cray := Cray1SComparison(testConfig())
	series := cray.GroupSeries(trace.Integer)
	best, worst := series[0], series[0]
	for _, v := range series {
		if v > best {
			best = v
		}
		if v < worst {
			worst = v
		}
	}
	if best/worst > 1.15 {
		t.Errorf("Cray curve spans %.2fx; expected a memory-dominated plateau", best/worst)
	}
	at11 := series[9] // grid 2..16 → index 9 is t=11
	if at11 < 0.95*best {
		t.Errorf("BIPS at 11 FO4 (%.3f) not within 5%% of best (%.3f)", at11, best)
	}
	// Far below the cached machine.
	cached := figure5(t)
	cachedBest := cached.GroupSeries(trace.Integer)[4]
	if best > cachedBest/2 {
		t.Errorf("Cray machine (%.3f) not well below cached machine (%.3f)", best, cachedBest)
	}
}

func TestStructureOptimizationHelps(t *testing.T) {
	// Figure 7: choosing capacities per clock never hurts, yields a
	// measurable average gain, and leaves the optimum at ~6 FO4.
	cfg := testConfig()
	cfg.UsefulGrid = []float64{4, 6, 8}
	pts := StructureOptimization(cfg, nil)
	gain := 0.0
	for _, p := range pts {
		if p.BestBIPS < p.BaselineBIPS {
			t.Errorf("t=%v: optimized (%.3f) below baseline (%.3f)", p.Useful, p.BestBIPS, p.BaselineBIPS)
		}
		gain += p.BestBIPS / p.BaselineBIPS
	}
	gain /= float64(len(pts))
	if gain < 1.005 {
		t.Errorf("mean capacity-optimization gain = %.3f, want > 0.5%%", gain)
	}
}

func TestNearOptimalPrefersDeepPlateauEdge(t *testing.T) {
	r := SweepResult{Points: []SweepPoint{
		{Useful: 4, GroupBIPS: map[trace.Group]float64{trace.Integer: 0.99}},
		{Useful: 6, GroupBIPS: map[trace.Group]float64{trace.Integer: 1.00}},
		{Useful: 8, GroupBIPS: map[trace.Group]float64{trace.Integer: 0.90}},
	}}
	if got := r.NearOptimalUseful(trace.Integer, 0.02); got != 4 {
		t.Errorf("NearOptimalUseful = %v, want 4 (deepest within 2%%)", got)
	}
	if got := r.OptimalUseful(trace.Integer); got != 6 {
		t.Errorf("OptimalUseful = %v, want 6", got)
	}
}

func TestPaperGrid(t *testing.T) {
	g := PaperGrid()
	if len(g) != 15 || g[0] != 2 || g[14] != 16 {
		t.Errorf("PaperGrid = %v, want 2..16", g)
	}
}
