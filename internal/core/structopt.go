package core

import (
	"repro/internal/cacti"
	"repro/internal/config"
	"repro/internal/fo4"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// StructChoice names one candidate capacity configuration in the Figure 7
// search space.
type StructChoice struct {
	DL1KB  int
	L2KB   int
	IntWin int
	FPWin  int
}

// DefaultStructSpace is the Figure 7 search space: smaller/faster and
// larger/slower variants around the Alpha 21264 baseline for the three
// structures whose capacity-latency trade dominates — the level-1 data
// cache, the level-2 cache, and the issue window.
func DefaultStructSpace() []StructChoice {
	var out []StructChoice
	for _, dl1 := range []int{16, 32, 64, 128} {
		for _, l2 := range []int{512, 1024, 2048} {
			for _, win := range [][2]int{{20, 15}, {32, 24}, {64, 48}} {
				out = append(out, StructChoice{DL1KB: dl1, L2KB: l2, IntWin: win[0], FPWin: win[1]})
			}
		}
	}
	return out
}

// apply builds the machine variant for a candidate.
func (c StructChoice) apply(m config.Machine) config.Machine {
	m.Structures.DL1.CapacityBytes = c.DL1KB << 10
	m.Structures.L2.CapacityBytes = c.L2KB << 10
	m.IntWindow = c.IntWin
	m.FPWindow = c.FPWin
	m.Structures.Window = cacti.CAMConfig{
		Entries:        c.IntWin + c.FPWin,
		TagBits:        9,
		BroadcastPorts: m.IntIssue,
	}
	return m
}

// StructOptPoint is one clock point of Figure 7: the best capacity
// configuration found and its performance versus the fixed baseline.
type StructOptPoint struct {
	Useful       float64
	Best         StructChoice
	BestBIPS     float64 // all-benchmark harmonic mean with optimal capacities
	BaselineBIPS float64 // same clock, Alpha 21264 capacities
	Timing       config.Timing
}

// StructureOptimization reproduces Figure 7's methodology: at each clock
// point, search the capacity space structure by structure (each candidate
// re-derives its access latency through the cacti model, so bigger means
// slower), pick the configuration with the best harmonic-mean performance,
// and compare against the fixed Alpha 21264 capacities. The search is
// coordinate descent from the baseline — vary one structure at a time,
// keep the best, then verify the combination — which is how the paper
// describes its sensitivity-curve approach. The descent itself is
// inherently sequential (each step depends on the last winner), but every
// candidate evaluation fans its benchmark simulations out on the worker
// pool.
func StructureOptimization(cfg SweepConfig, space []StructChoice) []StructOptPoint {
	cfg.fill()
	if space == nil {
		space = DefaultStructSpace()
	}
	traces := cfg.traces()

	eval := func(m config.Machine, useful float64) float64 {
		c := cfg
		c.Machine = m
		pt := runPoint(c, useful, traces, nil)
		return pt.AllBIPS
	}

	base := cfg.Machine
	baseChoice := StructChoice{
		DL1KB:  base.Structures.DL1.CapacityBytes >> 10,
		L2KB:   base.Structures.L2.CapacityBytes >> 10,
		IntWin: base.IntWindow,
		FPWin:  base.FPWindow,
	}

	var out []StructOptPoint
	for _, useful := range cfg.UsefulGrid {
		baseline := eval(base, useful)

		// Coordinate descent: optimize each structure dimension
		// independently against the baseline, then combine.
		best := baseChoice
		bestBIPS := baseline

		tryDims := func(mut func(StructChoice, int) StructChoice, candidates []int) {
			cur := best
			curBest := bestBIPS
			for _, cand := range candidates {
				choice := mut(best, cand)
				b := eval(choice.apply(base), useful)
				if b > curBest {
					curBest = b
					cur = choice
				}
			}
			best = cur
			bestBIPS = curBest
		}
		dl1s := []int{16, 32, 64, 128}
		l2s := []int{512, 1024, 2048}
		wins := []int{0, 1, 2}
		winPairs := [][2]int{{20, 15}, {32, 24}, {64, 48}}

		tryDims(func(c StructChoice, v int) StructChoice { c.DL1KB = v; return c }, dl1s)
		tryDims(func(c StructChoice, v int) StructChoice { c.L2KB = v; return c }, l2s)
		tryDims(func(c StructChoice, v int) StructChoice {
			c.IntWin, c.FPWin = winPairs[v][0], winPairs[v][1]
			return c
		}, wins)

		// Verify the combined configuration (the paper's final check with
		// neighbors slightly larger and smaller is subsumed by the
		// coordinate evaluations above).
		combined := eval(best.apply(base), useful)
		if combined > bestBIPS {
			bestBIPS = combined
		}
		if bestBIPS < baseline {
			best, bestBIPS = baseChoice, baseline
		}

		clk := fo4.Clock{Useful: useful, Overhead: cfg.Overhead}
		out = append(out, StructOptPoint{
			Useful:       useful,
			Best:         best,
			BestBIPS:     bestBIPS,
			BaselineBIPS: baseline,
			Timing:       best.apply(base).Resolve(clk),
		})
	}
	return out
}

// Cray1SComparison runs the Section 4.2 what-if: the in-order superscalar
// with a Cray-1S-style memory system (no caches, flat memory), returning
// the integer-benchmark sweep. The paper finds the optimum moves to 11 FO4
// of useful logic per stage.
func Cray1SComparison(cfg SweepConfig) SweepResult {
	cfg.Machine = config.Cray1SMemorySystem()
	if cfg.Benchmarks == nil {
		cfg.Benchmarks = trace.ByGroup(trace.Integer)
	}
	return DepthSweep(cfg)
}

// PipeliningLimit quantifies Section 7's conclusion that deeper pipelining
// can contribute at most about another factor of two: the ratio of the
// optimal integer BIPS to the BIPS at a 21264-depth pipeline (t_useful
// 17.4 FO4 class, approximated by the shallowest grid point).
func PipeliningLimit(r SweepResult) float64 {
	series := r.GroupSeries(trace.Integer)
	best := series[metrics.ArgMax(series)]
	shallow := series[len(series)-1] // largest t_useful in the grid
	return best / shallow
}
