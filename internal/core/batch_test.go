package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/pipeline"
)

// TestSimulateBatchMatchesSimulatePointWith pins the serving layer's
// batch entry point against the single-point path it replaces: every
// lane of a mixed grid over one trace must match SimulatePointWith
// field for field once the batch accounting counters (which never reach
// the wire) are cleared.
func TestSimulateBatchMatchesSimulatePointWith(t *testing.T) {
	opts := []PointOptions{
		{Benchmark: "gcc", Useful: 4, Instructions: 5000},
		{Benchmark: "gcc", Useful: 6, Instructions: 5000},
		{Benchmark: "gcc", Useful: 8, Instructions: 5000},
		{Benchmark: "gcc", Useful: 8, Instructions: 5000, Window: 32, WindowStages: 4},
		{Benchmark: "gcc", Useful: 8, Instructions: 5000, Machine: "inorder"},
	}
	bs := pipeline.NewBatchScratch()
	got, err := SimulateBatch(opts, bs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(opts) {
		t.Fatalf("got %d results for %d lanes", len(got), len(opts))
	}
	sc := pipeline.NewScratch()
	for i, o := range opts {
		want, err := SimulatePointWith(o, sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := got[i]
		g.Stats.BatchLanes, g.Stats.BatchSharedDecode = 0, 0
		if g != want {
			t.Errorf("lane %d: batched point diverges:\n got %+v\nwant %+v", i, g, want)
		}
	}
}

// TestSimulateBatchRejectsMixedTraces: a batch shares one generated
// trace by contract; lanes naming another benchmark, instruction count
// or seed must be refused, not silently merged.
func TestSimulateBatchRejectsMixedTraces(t *testing.T) {
	base := PointOptions{Benchmark: "gcc", Useful: 6, Instructions: 5000}
	for _, bad := range []PointOptions{
		{Benchmark: "swim", Useful: 8, Instructions: 5000},
		{Benchmark: "gcc", Useful: 8, Instructions: 6000},
		{Benchmark: "gcc", Useful: 8, Instructions: 5000, Seed: 7},
	} {
		if _, err := SimulateBatch([]PointOptions{base, bad}, nil, nil); err == nil {
			t.Errorf("mixed batch %+v accepted, want error", bad)
		} else if !strings.Contains(err.Error(), "shares one trace") {
			t.Errorf("mixed batch error %q does not name the contract", err)
		}
	}
	// Invalid lanes are caught before any simulation, tagged by index.
	if _, err := SimulateBatch([]PointOptions{base, {Benchmark: "nope", Useful: 6}}, nil, nil); err == nil {
		t.Error("invalid lane accepted")
	}
	// An empty batch is a no-op, not an error.
	if out, err := SimulateBatch(nil, nil, nil); err != nil || out != nil {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
}

// TestDepthSweepBatchedMatchesUnbatched is the engine-level equivalence
// oracle: the batched grid dispatch (the default) and the per-cell path
// behind DisableBatch must produce identical sweep results modulo the
// batch accounting counters, at more than one worker count.
func TestDepthSweepBatchedMatchesUnbatched(t *testing.T) {
	for _, workers := range []int{1, 4} {
		base := smallConfig()
		base.Workers = workers

		flat := base
		flat.DisableBatch = true
		want := DepthSweep(flat)
		got := DepthSweep(base)

		sawBatch := false
		for pi := range got.Points {
			for bi := range got.Points[pi].PerBench {
				b := &got.Points[pi].PerBench[bi]
				if b.Stats.BatchLanes > 0 {
					sawBatch = true
				}
				b.Stats.BatchLanes, b.Stats.BatchSharedDecode = 0, 0
			}
		}
		if !sawBatch {
			t.Errorf("workers=%d: batched sweep set no batch counters — did the grid batch at all?", workers)
		}
		g, w := fmt.Sprintf("%#v", got.Points), fmt.Sprintf("%#v", want.Points)
		if g != w {
			t.Errorf("workers=%d: batched sweep diverges from per-cell sweep", workers)
		}
	}
}
