// Package core implements the paper's primary contribution as a library:
// the pipeline-depth optimization methodology. It sweeps the useful logic
// per pipeline stage across a grid of clock design points, resolves every
// structure and operation latency at each point (Table 3), simulates the
// SPEC 2000 workload suite on the in-order or out-of-order machine, and
// locates the performance-optimal clock. On top of the basic sweep it
// provides the paper's follow-on studies: overhead sensitivity (Figure 6),
// structure-capacity optimization (Figure 7), critical-loop sensitivity
// (Figure 8), and the segmented instruction window evaluation (Section 5).
package core

import (
	"context"
	"sort"

	"repro/internal/config"
	"repro/internal/fo4"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// NoWarmup requests an explicitly empty warmup window: every instruction
// counts toward the reported IPC. (Warmup 0 is the zero value and keeps
// its historical meaning of "default 20%".)
const NoWarmup = -1

// SweepConfig configures a depth sweep.
type SweepConfig struct {
	Machine  config.Machine
	Overhead fo4.Overhead // per-stage clocking overhead (Table 1)
	Tech     fo4.Tech     // technology for absolute frequencies

	// UsefulGrid lists the t_useful values (FO4) to evaluate; when nil the
	// paper's 2..16 grid is used.
	UsefulGrid []float64

	// Benchmarks to run; nil means the full SPEC 2000 suite of Table 2.
	Benchmarks []trace.Profile

	Instructions int // dynamic instructions per benchmark (default 60k)

	// Warmup is the number of leading instructions excluded from IPC:
	// 0 means the default 20% of Instructions, NoWarmup (-1) means none.
	Warmup int

	Seed uint64 // trace generation seed

	// Workers sizes the simulation worker pool: 0 means GOMAXPROCS,
	// 1 reproduces the historical serial path bit-for-bit.
	Workers int

	// DisableBatch turns off the batched grid dispatch (one
	// pipeline.RunBatch per benchmark trace, sharing the depth-invariant
	// decode and prewarm work across every point of that benchmark) and
	// runs one task per (point, benchmark) cell instead. Results are
	// bit-for-bit identical either way — the flag exists for equivalence
	// tests and for isolating regressions, not because the paths can
	// diverge.
	DisableBatch bool

	// Context, when non-nil, cancels a running study early. A cancelled
	// study returns promptly with incomplete results; callers that cancel
	// should discard the result and check Context.Err().
	Context context.Context

	// Obs, when non-nil, receives telemetry for this sweep: per-task
	// durations and queue wait through the executor's hooks, plus
	// trace-cache and simulation counters. Telemetry is observation-only —
	// results are byte-for-byte identical with Obs nil or set.
	Obs *obs.Recorder
}

func (c *SweepConfig) fill() {
	if c.UsefulGrid == nil {
		c.UsefulGrid = PaperGrid()
	}
	if c.Benchmarks == nil {
		c.Benchmarks = trace.SPEC2000()
	}
	if c.Instructions == 0 {
		c.Instructions = 60000
	}
	switch {
	case c.Warmup == 0:
		c.Warmup = c.Instructions / 5
	case c.Warmup < 0: // NoWarmup
		c.Warmup = 0
	}
	if c.Tech == (fo4.Tech{}) {
		c.Tech = fo4.Tech100nm
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// PaperGrid returns the paper's t_useful grid: 2 through 16 FO4.
func PaperGrid() []float64 {
	g := make([]float64, 0, 15)
	for u := 2.0; u <= 16; u++ {
		g = append(g, u)
	}
	return g
}

// BenchPoint is one benchmark's result at one clock point.
type BenchPoint struct {
	Name  string
	Group trace.Group
	IPC   float64
	BIPS  float64
	Stats pipeline.Stats
}

// SweepPoint is one clock design point of a sweep.
type SweepPoint struct {
	Useful float64
	Clock  fo4.Clock
	FreqHz float64

	PerBench []BenchPoint

	// Harmonic-mean BIPS per group and over every benchmark — the
	// aggregates the paper's figures plot.
	GroupBIPS map[trace.Group]float64
	AllBIPS   float64
}

// SweepResult is a completed depth sweep.
type SweepResult struct {
	Config SweepConfig
	Points []SweepPoint
}

// DepthSweep runs the Section 3/4 experiment: simulate every benchmark at
// every clock point and aggregate. Traces are generated once and replayed
// at every point, as the paper replays each benchmark binary; the whole
// (clock point × benchmark) grid runs on the worker pool.
func DepthSweep(cfg SweepConfig) SweepResult {
	cfg.fill()
	traces := cfg.traces()
	specs := make([]pointSpec, len(cfg.UsefulGrid))
	for i, useful := range cfg.UsefulGrid {
		specs[i] = cfg.pointSpecFor(useful, nil)
	}
	return SweepResult{Config: cfg, Points: runPoints(cfg, specs, traces)}
}

// GroupSeries extracts the BIPS series for one group across the sweep.
func (r SweepResult) GroupSeries(g trace.Group) []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.GroupBIPS[g]
	}
	return out
}

// AllSeries extracts the all-benchmark harmonic-mean BIPS series.
func (r SweepResult) AllSeries() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.AllBIPS
	}
	return out
}

// OptimalUseful returns the t_useful with the highest group BIPS.
func (r SweepResult) OptimalUseful(g trace.Group) float64 {
	return r.Points[metrics.ArgMax(r.GroupSeries(g))].Useful
}

// OptimalUsefulAll returns the t_useful with the highest overall BIPS.
func (r SweepResult) OptimalUsefulAll() float64 {
	return r.Points[metrics.ArgMax(r.AllSeries())].Useful
}

// NearOptimalUseful returns the deepest (smallest t_useful) point whose
// group BIPS is within frac of the maximum — a plateau-tolerant optimum
// that matches how the paper reads its fairly flat curves.
func (r SweepResult) NearOptimalUseful(g trace.Group, frac float64) float64 {
	series := r.GroupSeries(g)
	best := series[metrics.ArgMax(series)]
	type cand struct{ useful, bips float64 }
	var cands []cand
	for i, p := range r.Points {
		if series[i] >= best*(1-frac) {
			cands = append(cands, cand{p.Useful, series[i]})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].useful < cands[j].useful })
	return cands[0].useful
}

// OverheadSensitivity runs Figure 6: the same depth sweep under several
// total-overhead values, returning one SweepResult per overhead, in order.
func OverheadSensitivity(cfg SweepConfig, overheadsFO4 []float64) []SweepResult {
	out := make([]SweepResult, 0, len(overheadsFO4))
	for _, o := range overheadsFO4 {
		c := cfg
		// Scale the Table 1 decomposition to the requested total.
		t := fo4.PaperOverhead.Total()
		c.Overhead = fo4.Overhead{
			Latch:  fo4.PaperOverhead.Latch * o / t,
			Skew:   fo4.PaperOverhead.Skew * o / t,
			Jitter: fo4.PaperOverhead.Jitter * o / t,
		}
		out = append(out, DepthSweep(c))
	}
	return out
}
