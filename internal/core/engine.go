package core

// This file is the sweep engine: every study entry point in the package
// funnels its simulations through it. A study describes its grid —
// (clock point × benchmark) for the BIPS sweeps, (variant × benchmark)
// for the fixed-clock IPC studies — and the engine executes the whole
// grid on one deterministic worker pool (internal/exec), generating each
// benchmark trace at most once per process and sharing it read-only
// across workers. Aggregation always happens serially in benchmark
// order, so results are bit-for-bit identical at any worker count.

import (
	"sync"

	"repro/internal/config"
	"repro/internal/exec"
	"repro/internal/fo4"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// pool builds the executor configuration for this sweep, wiring the
// sweep's recorder (when present) onto the executor's observation hooks.
func (c SweepConfig) pool() exec.Pool {
	p := exec.Pool{Workers: c.Workers, Ctx: c.Context}
	if c.Obs != nil {
		p.OnTaskStart = c.Obs.TaskStart
		p.OnTaskDone = c.Obs.TaskDone
	}
	return p
}

// cancelled reports whether the sweep's context has been cancelled.
func (c SweepConfig) cancelled() bool {
	return c.Context != nil && c.Context.Err() != nil
}

// simTask is one fully specified pipeline simulation.
type simTask struct {
	params pipeline.Params
	tr     *trace.Trace
}

// runSims executes the tasks on the sweep's worker pool, threading one
// reusable pipeline.Scratch per worker so the steady state of a study
// grid allocates nothing per simulation. Stats are slotted by task
// index, so the output never depends on completion order. On
// cancellation the unfinished slots hold zero Stats; callers check
// cancelled() before aggregating (a zero IPC would poison the harmonic
// means).
func runSims(cfg SweepConfig, tasks []simTask) []pipeline.Stats {
	cfg.Obs.Add("simulations", int64(len(tasks)))
	stats, _ := exec.MapWithState(cfg.pool(), tasks, pipeline.NewScratch,
		func(s *pipeline.Scratch, _ int, t simTask) pipeline.Stats {
			return pipeline.RunWith(t.params, t.tr, s)
		})
	// Surface the event-driven wakeup economy in the run manifest: wakes
	// actually delivered through the consumer index versus the window
	// entries the per-issue broadcast scan it replaced would have touched.
	var wakes, scanned uint64
	for i := range stats {
		wakes += stats[i].WakeupWakes
		scanned += stats[i].WakeupScanned
	}
	cfg.Obs.Add("wakeup_wakes", int64(wakes))
	cfg.Obs.Add("wakeup_scanned", int64(scanned))
	return stats
}

// traceKey identifies one generated trace. Profile is a comparable value
// type, so two custom profiles that share a name but differ in any
// parameter still get distinct cache entries.
type traceKey struct {
	profile      trace.Profile
	instructions int
	seed         uint64
}

// traceCache holds every trace generated so far, process-wide. The
// simulators never mutate a trace (see the contract in internal/trace),
// so one generation serves every study, worker and clock point that asks
// for the same (profile, instructions, seed).
var traceCache sync.Map // traceKey → *trace.Trace

// cachedTrace returns the (profile, instructions, seed) trace, generating
// and caching it process-wide on a miss. rec counts hits and misses.
// Two callers may race to generate the same trace; Generate is
// deterministic, so either result is identical and LoadOrStore just
// picks a canonical pointer. Either racer counts a miss: the generation
// work really happened twice.
func cachedTrace(p trace.Profile, instructions int, seed uint64, rec *obs.Recorder) *trace.Trace {
	key := traceKey{profile: p, instructions: instructions, seed: seed}
	if v, ok := traceCache.Load(key); ok {
		rec.Add("trace_cache_hits", 1)
		return v.(*trace.Trace)
	}
	rec.Add("trace_cache_misses", 1)
	v, _ := traceCache.LoadOrStore(key, p.Generate(instructions, seed))
	return v.(*trace.Trace)
}

// traces returns the benchmark traces for this sweep, generating missing
// ones in parallel on the sweep's worker pool and caching them for any
// later study in the process.
func (c SweepConfig) traces() []*trace.Trace {
	out, _ := exec.Map(c.pool(), c.Benchmarks, func(_ int, p trace.Profile) *trace.Trace {
		return cachedTrace(p, c.Instructions, c.Seed, c.Obs)
	})
	return out
}

// pointSpec describes one aggregate point of a BIPS study: a clock with
// its resolved timing, plus an optional parameter modification applied to
// every simulation of the point.
type pointSpec struct {
	useful float64
	clock  fo4.Clock
	freqHz float64
	timing config.Timing
	mod    func(*pipeline.Params)
}

// pointSpecFor resolves one clock point of this sweep.
func (c SweepConfig) pointSpecFor(useful float64, mod func(*pipeline.Params)) pointSpec {
	clk := fo4.Clock{Useful: useful, Overhead: c.Overhead}
	return pointSpec{
		useful: useful,
		clock:  clk,
		freqHz: clk.FrequencyHz(c.Tech),
		timing: c.Machine.Resolve(clk),
		mod:    mod,
	}
}

// runPoints simulates every (spec, benchmark) pair on the worker pool and
// folds each spec's stats into a SweepPoint. One flattened grid keeps the
// pool busy across point boundaries; per-point aggregation stays serial
// and in benchmark order, matching the old serial loop exactly.
func runPoints(cfg SweepConfig, specs []pointSpec, traces []*trace.Trace) []SweepPoint {
	tasks := make([]simTask, 0, len(specs)*len(traces))
	for _, sp := range specs {
		p := pipeline.Params{Machine: cfg.Machine, Timing: sp.timing, Warmup: cfg.Warmup}
		if sp.mod != nil {
			sp.mod(&p)
		}
		for _, tr := range traces {
			tasks = append(tasks, simTask{params: p, tr: tr})
		}
	}
	stats := runSims(cfg, tasks)

	points := make([]SweepPoint, len(specs))
	for si, sp := range specs {
		pt := SweepPoint{
			Useful:    sp.useful,
			Clock:     sp.clock,
			FreqHz:    sp.freqHz,
			GroupBIPS: map[trace.Group]float64{},
		}
		if cfg.cancelled() {
			points[si] = pt
			continue
		}
		groups := map[trace.Group][]float64{}
		var all []float64
		for ti, tr := range traces {
			s := stats[si*len(traces)+ti]
			b := metrics.BIPS(s.IPC, pt.FreqHz)
			pt.PerBench = append(pt.PerBench, BenchPoint{
				Name: tr.Name, Group: tr.Group, IPC: s.IPC, BIPS: b, Stats: s,
			})
			groups[tr.Group] = append(groups[tr.Group], b)
			all = append(all, b)
		}
		for _, g := range trace.Groups() {
			if xs, ok := groups[g]; ok {
				pt.GroupBIPS[g] = metrics.HarmonicMean(xs)
			}
		}
		pt.AllBIPS = metrics.HarmonicMean(all)
		points[si] = pt
	}
	return points
}

// runPoint evaluates one clock point; mod, when non-nil, may adjust the
// pipeline parameters (used by the loop and window experiments).
func runPoint(cfg SweepConfig, useful float64, traces []*trace.Trace, mod func(*pipeline.Params)) SweepPoint {
	return runPoints(cfg, []pointSpec{cfg.pointSpecFor(useful, mod)}, traces)[0]
}

// ipcPoint is one variant's harmonic-mean IPC across the suite — the
// aggregate the fixed-clock studies (Figures 8, 11, §4.5, §5.2) report.
type ipcPoint struct {
	groups map[trace.Group]float64
	all    float64
}

// runIPCVariants simulates every (variant, benchmark) pair on the worker
// pool from a shared base parameter set; mods[i] (nil allowed) adjusts
// the parameters of variant i. Aggregation is serial and in benchmark
// order, so the result matches a serial per-variant loop bit-for-bit.
func runIPCVariants(cfg SweepConfig, traces []*trace.Trace, base pipeline.Params, mods []func(*pipeline.Params)) []ipcPoint {
	tasks := make([]simTask, 0, len(mods)*len(traces))
	for _, mod := range mods {
		p := base
		if mod != nil {
			mod(&p)
		}
		for _, tr := range traces {
			tasks = append(tasks, simTask{params: p, tr: tr})
		}
	}
	stats := runSims(cfg, tasks)

	out := make([]ipcPoint, len(mods))
	for mi := range mods {
		pt := ipcPoint{groups: map[trace.Group]float64{}}
		if cfg.cancelled() {
			out[mi] = pt
			continue
		}
		groups := map[trace.Group][]float64{}
		var all []float64
		for ti, tr := range traces {
			s := stats[mi*len(traces)+ti]
			groups[tr.Group] = append(groups[tr.Group], s.IPC)
			all = append(all, s.IPC)
		}
		for _, g := range trace.Groups() {
			if xs, ok := groups[g]; ok {
				pt.groups[g] = metrics.HarmonicMean(xs)
			}
		}
		pt.all = metrics.HarmonicMean(all)
		out[mi] = pt
	}
	return out
}
