package core

// This file is the sweep engine: every study entry point in the package
// funnels its simulations through it. A study describes its grid —
// (clock point × benchmark) for the BIPS sweeps, (variant × benchmark)
// for the fixed-clock IPC studies — and the engine executes the whole
// grid on one deterministic worker pool (internal/exec), generating each
// benchmark trace at most once per process and sharing it read-only
// across workers. Aggregation always happens serially in benchmark
// order, so results are bit-for-bit identical at any worker count.

import (
	"sync"

	"repro/internal/config"
	"repro/internal/exec"
	"repro/internal/fo4"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// pool builds the executor configuration for this sweep, wiring the
// sweep's recorder (when present) onto the executor's observation hooks.
func (c SweepConfig) pool() exec.Pool {
	p := exec.Pool{Workers: c.Workers, Ctx: c.Context}
	if c.Obs != nil {
		p.OnTaskStart = c.Obs.TaskStart
		p.OnTaskDone = c.Obs.TaskDone
	}
	return p
}

// cancelled reports whether the sweep's context has been cancelled.
func (c SweepConfig) cancelled() bool {
	return c.Context != nil && c.Context.Err() != nil
}

// simTask is one fully specified pipeline simulation.
type simTask struct {
	params pipeline.Params
	tr     *trace.Trace
}

// runSims executes the tasks on the sweep's worker pool, threading one
// reusable pipeline.Scratch per worker so the steady state of a study
// grid allocates nothing per simulation. Stats are slotted by task
// index, so the output never depends on completion order. On
// cancellation the unfinished slots hold zero Stats; callers check
// cancelled() before aggregating (a zero IPC would poison the harmonic
// means).
func runSims(cfg SweepConfig, tasks []simTask) []pipeline.Stats {
	cfg.Obs.Add("simulations", int64(len(tasks)))
	stats, _ := exec.MapWithState(cfg.pool(), tasks, pipeline.NewScratch,
		func(s *pipeline.Scratch, _ int, t simTask) pipeline.Stats {
			return pipeline.RunWith(t.params, t.tr, s)
		})
	recordEconomy(cfg, stats)
	return stats
}

// recordEconomy surfaces the simulator's work-sharing counters in the run
// manifest: wakes actually delivered through the consumer index versus
// the window entries the per-issue broadcast scan they replaced would
// have touched, and (on the batched path) the lanes that shared a
// prewarmed memory template and the instruction decodes reused from a
// batch's first lane.
func recordEconomy(cfg SweepConfig, stats []pipeline.Stats) {
	var wakes, scanned, lanes, shared uint64
	for i := range stats {
		wakes += stats[i].WakeupWakes
		scanned += stats[i].WakeupScanned
		lanes += stats[i].BatchLanes
		shared += stats[i].BatchSharedDecode
	}
	cfg.Obs.Add("wakeup_wakes", int64(wakes))
	cfg.Obs.Add("wakeup_scanned", int64(scanned))
	if lanes > 0 {
		cfg.Obs.Add("batch_lanes", int64(lanes))
		cfg.Obs.Add("batch_shared_decode", int64(shared))
	}
}

// batchState is one worker's scratch for the batched grid dispatch: the
// per-lane Scratch set plus a reusable params header, so a steady-state
// batch allocates only its result slice.
type batchState struct {
	bs     *pipeline.BatchScratch
	params []pipeline.Params
}

// runGrid simulates the full (params × traces) product and returns stats
// indexed [pi*len(traces)+ti], exactly like the flattened per-cell grid.
// On the batched path (the default) the grid is grouped by trace — one
// executor task per benchmark running every params lane through
// pipeline.RunBatch — so the depth-invariant per-benchmark work (decode,
// predictor walk, consumer index, cache prewarm) happens once per
// benchmark instead of once per cell, and consecutive lanes keep that
// benchmark's shared arrays hot. Cell values are bit-for-bit identical
// to the per-cell path at any worker count; only the batch accounting
// counters (excluded from JSON) differ from an unbatched run.
func runGrid(cfg SweepConfig, params []pipeline.Params, traces []*trace.Trace) []pipeline.Stats {
	if cfg.DisableBatch {
		tasks := make([]simTask, 0, len(params)*len(traces))
		for _, p := range params {
			for _, tr := range traces {
				tasks = append(tasks, simTask{params: p, tr: tr})
			}
		}
		return runSims(cfg, tasks)
	}

	cfg.Obs.Add("simulations", int64(len(params)*len(traces)))
	batches, _ := exec.MapGroupsWithState(cfg.pool(), traceGroups(params, traces),
		func() *batchState { return &batchState{bs: pipeline.NewBatchScratch()} },
		func(st *batchState, _ int, group []simTask) []pipeline.Stats {
			ps := st.params[:0]
			for _, t := range group {
				ps = append(ps, t.params)
			}
			st.params = ps
			return pipeline.RunBatch(ps, group[0].tr, st.bs.Lanes(len(ps)))
		})

	stats := make([]pipeline.Stats, len(params)*len(traces))
	for ti := range traces {
		if batches[ti] == nil {
			continue // cancelled before this trace's batch ran
		}
		for pi := range params {
			stats[pi*len(traces)+ti] = batches[ti][pi]
		}
	}
	recordEconomy(cfg, stats)
	return stats
}

// traceGroups shapes the (params × traces) grid into one task group per
// trace, each group listing that benchmark's lanes in params order.
func traceGroups(params []pipeline.Params, traces []*trace.Trace) [][]simTask {
	groups := make([][]simTask, len(traces))
	cells := make([]simTask, len(params)*len(traces))
	for ti, tr := range traces {
		g := cells[ti*len(params) : (ti+1)*len(params) : (ti+1)*len(params)]
		for pi, p := range params {
			g[pi] = simTask{params: p, tr: tr}
		}
		groups[ti] = g
	}
	return groups
}

// traceKey identifies one generated trace. Profile is a comparable value
// type, so two custom profiles that share a name but differ in any
// parameter still get distinct cache entries.
type traceKey struct {
	profile      trace.Profile
	instructions int
	seed         uint64
}

// traceCache holds every trace generated so far, process-wide. The
// simulators never mutate a trace (see the contract in internal/trace),
// so one generation serves every study, worker and clock point that asks
// for the same (profile, instructions, seed).
var traceCache sync.Map // traceKey → *trace.Trace

// cachedTrace returns the (profile, instructions, seed) trace, generating
// and caching it process-wide on a miss. rec counts hits and misses.
// Two callers may race to generate the same trace; Generate is
// deterministic, so either result is identical and LoadOrStore just
// picks a canonical pointer. Either racer counts a miss: the generation
// work really happened twice.
func cachedTrace(p trace.Profile, instructions int, seed uint64, rec *obs.Recorder) *trace.Trace {
	key := traceKey{profile: p, instructions: instructions, seed: seed}
	if v, ok := traceCache.Load(key); ok {
		rec.Add("trace_cache_hits", 1)
		return v.(*trace.Trace)
	}
	rec.Add("trace_cache_misses", 1)
	v, _ := traceCache.LoadOrStore(key, p.Generate(instructions, seed))
	return v.(*trace.Trace)
}

// traces returns the benchmark traces for this sweep, generating missing
// ones in parallel on the sweep's worker pool and caching them for any
// later study in the process.
func (c SweepConfig) traces() []*trace.Trace {
	out, _ := exec.Map(c.pool(), c.Benchmarks, func(_ int, p trace.Profile) *trace.Trace {
		return cachedTrace(p, c.Instructions, c.Seed, c.Obs)
	})
	return out
}

// pointSpec describes one aggregate point of a BIPS study: a clock with
// its resolved timing, plus an optional parameter modification applied to
// every simulation of the point.
type pointSpec struct {
	useful float64
	clock  fo4.Clock
	freqHz float64
	timing config.Timing
	mod    func(*pipeline.Params)
}

// pointSpecFor resolves one clock point of this sweep.
func (c SweepConfig) pointSpecFor(useful float64, mod func(*pipeline.Params)) pointSpec {
	clk := fo4.Clock{Useful: useful, Overhead: c.Overhead}
	return pointSpec{
		useful: useful,
		clock:  clk,
		freqHz: clk.FrequencyHz(c.Tech),
		timing: c.Machine.Resolve(clk),
		mod:    mod,
	}
}

// runPoints simulates every (spec, benchmark) pair on the worker pool and
// folds each spec's stats into a SweepPoint. One flattened grid keeps the
// pool busy across point boundaries; per-point aggregation stays serial
// and in benchmark order, matching the old serial loop exactly.
func runPoints(cfg SweepConfig, specs []pointSpec, traces []*trace.Trace) []SweepPoint {
	specParams := make([]pipeline.Params, len(specs))
	for si, sp := range specs {
		p := pipeline.Params{Machine: cfg.Machine, Timing: sp.timing, Warmup: cfg.Warmup}
		if sp.mod != nil {
			sp.mod(&p)
		}
		specParams[si] = p
	}
	stats := runGrid(cfg, specParams, traces)

	points := make([]SweepPoint, len(specs))
	// Aggregation scratch, reused across specs: group membership is a
	// property of the trace list alone, so the per-group series only need
	// truncation between specs (the group array is indexed by trace.Group;
	// reading it in trace.Groups() order below keeps the fold order of the
	// historical map-based aggregation).
	var groups [3][]float64
	for g := range groups {
		groups[g] = make([]float64, 0, len(traces))
	}
	all := make([]float64, 0, len(traces))
	for si, sp := range specs {
		pt := SweepPoint{
			Useful:    sp.useful,
			Clock:     sp.clock,
			FreqHz:    sp.freqHz,
			GroupBIPS: map[trace.Group]float64{},
		}
		if cfg.cancelled() {
			points[si] = pt
			continue
		}
		for g := range groups {
			groups[g] = groups[g][:0]
		}
		all = all[:0]
		pt.PerBench = make([]BenchPoint, 0, len(traces))
		for ti, tr := range traces {
			s := stats[si*len(traces)+ti]
			b := metrics.BIPS(s.IPC, pt.FreqHz)
			pt.PerBench = append(pt.PerBench, BenchPoint{
				Name: tr.Name, Group: tr.Group, IPC: s.IPC, BIPS: b, Stats: s,
			})
			groups[tr.Group] = append(groups[tr.Group], b)
			all = append(all, b)
		}
		for _, g := range trace.Groups() {
			if xs := groups[g]; len(xs) > 0 {
				pt.GroupBIPS[g] = metrics.HarmonicMean(xs)
			}
		}
		pt.AllBIPS = metrics.HarmonicMean(all)
		points[si] = pt
	}
	return points
}

// runPoint evaluates one clock point; mod, when non-nil, may adjust the
// pipeline parameters (used by the loop and window experiments).
func runPoint(cfg SweepConfig, useful float64, traces []*trace.Trace, mod func(*pipeline.Params)) SweepPoint {
	return runPoints(cfg, []pointSpec{cfg.pointSpecFor(useful, mod)}, traces)[0]
}

// ipcPoint is one variant's harmonic-mean IPC across the suite — the
// aggregate the fixed-clock studies (Figures 8, 11, §4.5, §5.2) report.
type ipcPoint struct {
	groups map[trace.Group]float64
	all    float64
}

// runIPCVariants simulates every (variant, benchmark) pair on the worker
// pool from a shared base parameter set; mods[i] (nil allowed) adjusts
// the parameters of variant i. Aggregation is serial and in benchmark
// order, so the result matches a serial per-variant loop bit-for-bit.
func runIPCVariants(cfg SweepConfig, traces []*trace.Trace, base pipeline.Params, mods []func(*pipeline.Params)) []ipcPoint {
	variantParams := make([]pipeline.Params, len(mods))
	for mi, mod := range mods {
		p := base
		if mod != nil {
			mod(&p)
		}
		variantParams[mi] = p
	}
	stats := runGrid(cfg, variantParams, traces)

	out := make([]ipcPoint, len(mods))
	// Aggregation scratch, reused across variants exactly as in runPoints.
	var groups [3][]float64
	for g := range groups {
		groups[g] = make([]float64, 0, len(traces))
	}
	all := make([]float64, 0, len(traces))
	for mi := range mods {
		pt := ipcPoint{groups: map[trace.Group]float64{}}
		if cfg.cancelled() {
			out[mi] = pt
			continue
		}
		for g := range groups {
			groups[g] = groups[g][:0]
		}
		all = all[:0]
		for ti, tr := range traces {
			s := stats[mi*len(traces)+ti]
			groups[tr.Group] = append(groups[tr.Group], s.IPC)
			all = append(all, s.IPC)
		}
		for _, g := range trace.Groups() {
			if xs := groups[g]; len(xs) > 0 {
				pt.groups[g] = metrics.HarmonicMean(xs)
			}
		}
		pt.all = metrics.HarmonicMean(all)
		out[mi] = pt
	}
	return out
}
