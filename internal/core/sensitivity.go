package core

import (
	"repro/internal/config"
	"repro/internal/fo4"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// This file implements the sensitivity-curve methodology of Section 4.5:
// "we determined the sensitivity of IPC to the size and delay of each
// individual structure. We performed experiments independent of technology
// and clock frequency by varying the latency of each structure
// individually, while keeping its capacity unchanged" — and likewise for
// capacity at fixed latency. Figure 7's capacity optimizer consumes the
// same trade these curves expose; this API makes the curves themselves
// available, as the paper's §4.5 describes building them.

// Structure identifies one latency-variable structure.
type Structure uint8

const (
	StructDL1 Structure = iota
	StructL2
	StructWindow
	StructBPred
	StructRegRead
)

func (s Structure) String() string {
	switch s {
	case StructDL1:
		return "dl1"
	case StructL2:
		return "l2"
	case StructWindow:
		return "window"
	case StructBPred:
		return "bpred"
	default:
		return "regread"
	}
}

// SensitivityPoint is one latency setting and the IPC it yields.
type SensitivityPoint struct {
	LatencyCycles int
	IPC           map[trace.Group]float64
	AllIPC        float64
	RelativeAll   float64 // vs the structure's baseline latency
}

// SensitivityCurve is one structure's IPC-vs-latency curve at a fixed
// machine and clock.
type SensitivityCurve struct {
	Structure Structure
	Baseline  int // the baseline latency in cycles
	Points    []SensitivityPoint
}

// LatencySensitivity builds the §4.5 curves: at the machine's Alpha 21264
// latencies, vary one structure's latency from 1 to maxCycles while
// holding everything else fixed, and record IPC. The full
// (structure × latency × benchmark) grid runs as one batch on the worker
// pool.
func LatencySensitivity(cfg SweepConfig, maxCycles int) []SensitivityCurve {
	cfg.fill()
	traces := cfg.traces()
	baseTiming := cfg.Machine.Resolve(fo4.Clock{Useful: 6, Overhead: cfg.Overhead})
	base := pipeline.Params{Machine: cfg.Machine, Timing: baseTiming, Warmup: cfg.Warmup}

	structs := []Structure{StructDL1, StructL2, StructWindow, StructBPred, StructRegRead}
	mods := make([]func(*pipeline.Params), 0, len(structs)*maxCycles)
	for _, st := range structs {
		for lat := 1; lat <= maxCycles; lat++ {
			st, lat := st, lat
			mods = append(mods, func(p *pipeline.Params) { setLatency(&p.Timing, st, lat) })
		}
	}
	pts := runIPCVariants(cfg, traces, base, mods)

	var curves []SensitivityCurve
	for si, st := range structs {
		cur := SensitivityCurve{Structure: st, Baseline: baselineOf(baseTiming, st)}
		var baseAll float64
		for lat := 1; lat <= maxCycles; lat++ {
			pt := pts[si*maxCycles+lat-1]
			if lat == cur.Baseline {
				baseAll = pt.all
			}
			cur.Points = append(cur.Points, SensitivityPoint{
				LatencyCycles: lat, IPC: pt.groups, AllIPC: pt.all,
			})
		}
		if baseAll == 0 {
			baseAll = cur.Points[0].AllIPC
		}
		for i := range cur.Points {
			cur.Points[i].RelativeAll = cur.Points[i].AllIPC / baseAll
		}
		curves = append(curves, cur)
	}
	return curves
}

func baselineOf(t config.Timing, s Structure) int {
	switch s {
	case StructDL1:
		return t.DL1
	case StructL2:
		return t.L2
	case StructWindow:
		return t.Window
	case StructBPred:
		return t.BPred
	default:
		return t.RegRead
	}
}

func setLatency(t *config.Timing, s Structure, cycles int) {
	switch s {
	case StructDL1:
		t.DL1 = cycles
	case StructL2:
		t.L2 = cycles
	case StructWindow:
		t.Window = cycles
	case StructBPred:
		t.BPred = cycles
	default:
		t.RegRead = cycles
	}
}
