package core

// This file is the point-level entry into the sweep methodology: one
// benchmark simulated at one fully specified clock design point. The
// studies in this package always run whole grids; the serving layer
// (internal/serve) decomposes client requests into these points so that
// overlapping grids from concurrent clients share simulation work
// through a content-addressed result cache. PointOptions therefore
// carries a canonical form (Normalize) and a collision-resistant cache
// key (Key) with the property that semantically equal option values —
// default-filled versus explicit fields, nil versus empty slices — hash
// identically, while every meaningful field change alters the hash.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/fo4"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// NoOverhead requests an explicitly overhead-free clock (Figure 4a's
// idealization). The zero value keeps the meaning "paper default":
// Table 1's 1.8 FO4 decomposition.
const NoOverhead = -1

// MachineOutOfOrder and MachineInOrder are the canonical machine names a
// point may select; Normalize folds aliases onto them.
const (
	MachineOutOfOrder = "ooo"
	MachineInOrder    = "inorder"
)

// machineAliases maps accepted spellings to canonical machine names.
var machineAliases = map[string]string{
	"":           MachineOutOfOrder,
	"ooo":        MachineOutOfOrder,
	"alpha21264": MachineOutOfOrder,
	"inorder":    MachineInOrder,
	"in-order":   MachineInOrder,
}

// PointOptions fully specifies one simulation point: one benchmark on one
// machine at one clock design point, with the optional Section 5 window
// modifications. The zero value of every field means "the paper default"
// (Normalize makes the defaults explicit), except Useful and Benchmark,
// which are required.
type PointOptions struct {
	// Machine selects the simulated core: "ooo" (default, the Alpha
	// 21264-like dynamically scheduled machine) or "inorder".
	Machine string

	// Benchmark names one SPEC 2000 profile from Table 2 (e.g. "gcc").
	Benchmark string

	// Useful is the useful logic per stage in FO4 — the paper's x-axis.
	Useful float64

	// OverheadFO4 is the total per-stage clocking overhead: 0 means the
	// Table 1 default (1.8 FO4, scaled over its latch/skew/jitter
	// decomposition), NoOverhead (-1) means none.
	OverheadFO4 float64

	// Window, when > 0, replaces the machine's split issue queues with a
	// unified window of that many entries (the Section 5 studies use 32).
	Window int

	// WindowStages pipelines the window's wakeup into this many segments;
	// 0 or 1 is the conventional single-segment window. Values above 1
	// require a unified Window.
	WindowStages int

	// PreSelect enables the Figure 12 partitioned selection quotas; nil
	// or empty means full selection visibility.
	PreSelect []int

	// NaivePipelining selects Stark-style pessimistic window pipelining.
	NaivePipelining bool

	// Instructions per benchmark trace; 0 means the 60000 default.
	Instructions int

	// Warmup instructions excluded from IPC: 0 means the default 20% of
	// Instructions, NoWarmup (-1) means none.
	Warmup int

	// Seed for trace generation; 0 means 1.
	Seed uint64
}

// Normalize returns the canonical form of o: aliases folded, defaults
// made explicit, and empty slices nil. It is idempotent —
// o.Normalize().Normalize() == o.Normalize() — so two option values that
// mean the same point always normalize to the same representation, which
// is what Key hashes.
func (o PointOptions) Normalize() PointOptions {
	if c, ok := machineAliases[strings.ToLower(strings.TrimSpace(o.Machine))]; ok {
		o.Machine = c
	} else {
		o.Machine = strings.ToLower(strings.TrimSpace(o.Machine))
	}
	o.Benchmark = strings.ToLower(strings.TrimSpace(o.Benchmark))
	if p, ok := ProfileByName(o.Benchmark); ok {
		o.Benchmark = p.Name
	}
	if o.Instructions == 0 {
		o.Instructions = 60000
	}
	switch {
	case o.Warmup == 0:
		o.Warmup = o.Instructions / 5
	case o.Warmup < 0:
		o.Warmup = NoWarmup
	}
	// A derived warmup can be non-positive (tiny or invalid Instructions
	// pass through to Validate); fold it onto the sentinel so Normalize
	// stays idempotent and "no warmup" has one canonical spelling.
	if o.Warmup <= 0 {
		o.Warmup = NoWarmup
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	switch {
	case o.OverheadFO4 == 0:
		o.OverheadFO4 = fo4.PaperOverhead.Total()
	case o.OverheadFO4 < 0:
		o.OverheadFO4 = NoOverhead
	}
	if o.WindowStages == 0 {
		o.WindowStages = 1
	}
	if len(o.PreSelect) == 0 {
		o.PreSelect = nil
	}
	return o
}

// MaxUseful is the deepest useful-logic-per-stage value a point may ask
// for, in FO4. The paper's grid tops out at 16; 64 leaves generous
// headroom for shallow-pipeline studies while keeping request expansion
// bounded.
const MaxUseful = 64

// Validate checks a normalized PointOptions; it reports the first
// problem in request-diagnostic form. Callers that accept external input
// should Normalize first (Key and the Simulate entry points do both).
func (o PointOptions) Validate() error {
	if o.Machine != MachineOutOfOrder && o.Machine != MachineInOrder {
		return fmt.Errorf("unknown machine %q (use %q or %q)", o.Machine, MachineOutOfOrder, MachineInOrder)
	}
	if _, ok := ProfileByName(o.Benchmark); !ok {
		return fmt.Errorf("unknown benchmark %q (run traceinfo for the Table 2 suite)", o.Benchmark)
	}
	if o.Useful <= 0 || o.Useful > MaxUseful {
		return fmt.Errorf("useful must be in (0, %d] FO4, got %g", MaxUseful, o.Useful)
	}
	if o.Instructions <= 0 {
		return fmt.Errorf("instructions must be positive, got %d", o.Instructions)
	}
	if o.Warmup != NoWarmup && o.Warmup >= o.Instructions {
		return fmt.Errorf("warmup %d leaves no measured instructions of %d", o.Warmup, o.Instructions)
	}
	if o.WindowStages < 1 || o.WindowStages > 32 {
		return fmt.Errorf("window_stages must be in [1, 32], got %d", o.WindowStages)
	}
	if o.WindowStages > 1 && o.Window <= 0 {
		return fmt.Errorf("window_stages %d requires a unified window size (set window, e.g. 32)", o.WindowStages)
	}
	if o.Window < 0 || o.Window > 1024 {
		return fmt.Errorf("window must be in [0, 1024], got %d", o.Window)
	}
	if len(o.PreSelect) >= o.WindowStages && len(o.PreSelect) > 0 {
		return fmt.Errorf("preselect has %d quotas for %d window stages (stage 1 is always fully visible)", len(o.PreSelect), o.WindowStages)
	}
	for _, q := range o.PreSelect {
		if q <= 0 {
			return fmt.Errorf("preselect quotas must be positive, got %d", q)
		}
	}
	return nil
}

// pointKeySchema versions the cache-key layout itself; bump it when the
// canonical encoding below changes shape.
const pointKeySchema = "repro/point/v1"

// Key returns the content address of this point's result: a SHA-256 over
// the canonical (normalized) option encoding plus the caller's code
// version. Two PointOptions that mean the same simulation — differing
// only in default-vs-explicit fields, alias spellings, or nil-vs-empty
// slices — produce the same key; any meaningful change (and any
// codeVersion change) produces a different one.
func (o PointOptions) Key(codeVersion string) string {
	o = o.Normalize()
	var b strings.Builder
	b.WriteString(pointKeySchema)
	b.WriteByte('\n')
	b.WriteString(codeVersion)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "machine=%s\n", o.Machine)
	fmt.Fprintf(&b, "bench=%s\n", o.Benchmark)
	fmt.Fprintf(&b, "useful=%s\n", strconv.FormatFloat(o.Useful, 'g', -1, 64))
	fmt.Fprintf(&b, "overhead=%s\n", strconv.FormatFloat(o.OverheadFO4, 'g', -1, 64))
	fmt.Fprintf(&b, "window=%d\n", o.Window)
	fmt.Fprintf(&b, "stages=%d\n", o.WindowStages)
	b.WriteString("preselect=")
	for i, q := range o.PreSelect {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", q)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "naive=%t\n", o.NaivePipelining)
	fmt.Fprintf(&b, "n=%d\n", o.Instructions)
	fmt.Fprintf(&b, "warmup=%d\n", o.Warmup)
	fmt.Fprintf(&b, "seed=%d\n", o.Seed)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// ProfileByName resolves a Table 2 benchmark by its full name
// ("176.gcc") or its bare name after the SPEC number ("gcc"),
// case-insensitively.
func ProfileByName(name string) (trace.Profile, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, p := range trace.SPEC2000() {
		if p.Name == name || strings.TrimPrefix(p.Name, numberPrefix(p.Name)) == name {
			return p, true
		}
	}
	return trace.Profile{}, false
}

// numberPrefix returns the "164." style SPEC number prefix of a suite
// name, or "" when there is none.
func numberPrefix(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i+1]
	}
	return ""
}

// BenchmarkNames returns the Table 2 benchmark names in suite order.
func BenchmarkNames() []string {
	all := trace.SPEC2000()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}

// machine resolves the normalized machine name; Validate has already
// rejected unknown names.
func (o PointOptions) machine() config.Machine {
	if o.Machine == MachineInOrder {
		return config.InOrder7Stage()
	}
	return config.Alpha21264()
}

// overhead resolves OverheadFO4 to the Table 1 decomposition scaled to
// the requested total, exactly like OverheadSensitivity.
func (o PointOptions) overhead() fo4.Overhead {
	if o.OverheadFO4 == NoOverhead {
		return fo4.Overhead{}
	}
	t := fo4.PaperOverhead.Total()
	return fo4.Overhead{
		Latch:  fo4.PaperOverhead.Latch * o.OverheadFO4 / t,
		Skew:   fo4.PaperOverhead.Skew * o.OverheadFO4 / t,
		Jitter: fo4.PaperOverhead.Jitter * o.OverheadFO4 / t,
	}
}

// Clock returns the fo4 clock this point resolves to: its useful logic
// depth plus the resolved overhead decomposition.
func (o PointOptions) Clock() fo4.Clock {
	o = o.Normalize()
	return fo4.Clock{Useful: o.Useful, Overhead: o.overhead()}
}

// params resolves the point to concrete simulation parameters and its
// clock.
func (o PointOptions) params() (pipeline.Params, fo4.Clock) {
	m := o.machine()
	if o.Window > 0 {
		m.UnifiedWindow = o.Window
	}
	clk := fo4.Clock{Useful: o.Useful, Overhead: o.overhead()}
	warmup := o.Warmup
	if warmup == NoWarmup {
		warmup = 0
	}
	p := pipeline.Params{
		Machine:         m,
		Timing:          m.Resolve(clk),
		Warmup:          warmup,
		NaivePipelining: o.NaivePipelining,
	}
	if o.WindowStages > 1 {
		p.WindowStages = o.WindowStages
	}
	if len(o.PreSelect) > 0 {
		p.PreSelect = append([]int(nil), o.PreSelect...)
	}
	return p, clk
}

// SimulatePoint runs one point and returns its per-benchmark result at
// the 100nm technology point the paper reports. rec, when non-nil,
// receives the trace-cache counters; it never influences the result.
func SimulatePoint(o PointOptions, rec *obs.Recorder) (BenchPoint, error) {
	o = o.Normalize()
	if err := o.Validate(); err != nil {
		return BenchPoint{}, err
	}
	prof, _ := ProfileByName(o.Benchmark)
	tr := cachedTrace(prof, o.Instructions, o.Seed, rec)
	p, clk := o.params()
	return pointResult(pipeline.Run(p, tr), tr, clk), nil
}

// SimulatePointWith is SimulatePoint on a caller-owned Scratch, for
// callers (like the serving layer's executor workers) that amortize
// allocations across many points.
func SimulatePointWith(o PointOptions, s *pipeline.Scratch, rec *obs.Recorder) (BenchPoint, error) {
	o = o.Normalize()
	if err := o.Validate(); err != nil {
		return BenchPoint{}, err
	}
	prof, _ := ProfileByName(o.Benchmark)
	tr := cachedTrace(prof, o.Instructions, o.Seed, rec)
	p, clk := o.params()
	return pointResult(pipeline.RunWith(p, tr, s), tr, clk), nil
}

// SimulateBatch simulates every point of opts — all of which must
// resolve to the same trace (benchmark, instructions, seed) — in one
// batched pass over that trace: the depth-invariant per-benchmark work
// is done once and shared through pipeline.RunBatch instead of once per
// point. out[i] equals what SimulatePointWith(opts[i], ...) returns,
// except for the batch accounting counters (excluded from JSON) that
// only the batched path sets; the serving layer's byte-identity test
// pins that equivalence on the wire. bs amortizes per-lane scratch
// state across successive batches (nil builds a throwaway) and, like
// every Scratch, must not be shared by concurrent calls.
func SimulateBatch(opts []PointOptions, bs *pipeline.BatchScratch, rec *obs.Recorder) ([]BenchPoint, error) {
	if len(opts) == 0 {
		return nil, nil
	}
	norm := make([]PointOptions, len(opts))
	for i, o := range opts {
		o = o.Normalize()
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("batch lane %d: %w", i, err)
		}
		norm[i] = o
	}
	first := norm[0]
	for i, o := range norm[1:] {
		if o.Benchmark != first.Benchmark || o.Instructions != first.Instructions || o.Seed != first.Seed {
			return nil, fmt.Errorf("batch lane %d simulates trace (%s, n=%d, seed=%d) but lane 0 simulates (%s, n=%d, seed=%d); a batch shares one trace",
				i+1, o.Benchmark, o.Instructions, o.Seed, first.Benchmark, first.Instructions, first.Seed)
		}
	}
	if bs == nil {
		bs = pipeline.NewBatchScratch()
	}
	prof, _ := ProfileByName(first.Benchmark)
	tr := cachedTrace(prof, first.Instructions, first.Seed, rec)
	params := make([]pipeline.Params, len(norm))
	clocks := make([]fo4.Clock, len(norm))
	for i, o := range norm {
		params[i], clocks[i] = o.params()
	}
	stats := pipeline.RunBatch(params, tr, bs.Lanes(len(params)))
	out := make([]BenchPoint, len(norm))
	for i := range stats {
		out[i] = pointResult(stats[i], tr, clocks[i])
	}
	return out, nil
}

func pointResult(st pipeline.Stats, tr *trace.Trace, clk fo4.Clock) BenchPoint {
	freq := clk.FrequencyHz(fo4.Tech100nm)
	return BenchPoint{
		Name:  tr.Name,
		Group: tr.Group,
		IPC:   st.IPC,
		BIPS:  metrics.BIPS(st.IPC, freq),
		Stats: st,
	}
}
