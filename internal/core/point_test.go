package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/fo4"
	"repro/internal/trace"
)

func TestNormalizeIdempotent(t *testing.T) {
	cases := []PointOptions{
		{},
		{Benchmark: "gcc", Useful: 8},
		{Machine: "Alpha21264", Benchmark: "176.GCC", Useful: 8},
		{Benchmark: "swim", Useful: 6, Warmup: -3, OverheadFO4: -2},
		{Benchmark: "mcf", Useful: 4, Window: 32, WindowStages: 4, PreSelect: []int{8, 8, 8}},
		{Machine: "in-order", Benchmark: "gzip", Useful: 10, Instructions: 1000, Seed: 42},
		{Benchmark: "art", Useful: 8, PreSelect: []int{}},
	}
	for i, o := range cases {
		once := o.Normalize()
		twice := once.Normalize()
		if once.Key("v") != twice.Key("v") {
			t.Errorf("case %d: Normalize is not idempotent:\nonce:  %+v\ntwice: %+v", i, once, twice)
		}
	}
}

func TestKeyEqualForSemanticallyEqualOptions(t *testing.T) {
	base := PointOptions{Benchmark: "gcc", Useful: 8}
	equal := []struct {
		name string
		o    PointOptions
	}{
		{"explicit machine alias", PointOptions{Machine: "alpha21264", Benchmark: "gcc", Useful: 8}},
		{"canonical machine", PointOptions{Machine: MachineOutOfOrder, Benchmark: "gcc", Useful: 8}},
		{"full benchmark name", PointOptions{Benchmark: "176.gcc", Useful: 8}},
		{"benchmark case and space", PointOptions{Benchmark: "  GCC ", Useful: 8}},
		{"explicit default instructions", PointOptions{Benchmark: "gcc", Useful: 8, Instructions: 60000}},
		{"explicit default warmup", PointOptions{Benchmark: "gcc", Useful: 8, Warmup: 12000}},
		{"explicit default seed", PointOptions{Benchmark: "gcc", Useful: 8, Seed: 1}},
		{"explicit default overhead", PointOptions{Benchmark: "gcc", Useful: 8, OverheadFO4: fo4.PaperOverhead.Total()}},
		{"explicit single window stage", PointOptions{Benchmark: "gcc", Useful: 8, WindowStages: 1}},
		{"empty preselect slice", PointOptions{Benchmark: "gcc", Useful: 8, PreSelect: []int{}}},
	}
	want := base.Key("v")
	for _, c := range equal {
		if got := c.o.Key("v"); got != want {
			t.Errorf("%s: key differs from the default spelling", c.name)
		}
	}

	// The two warmup sentinels must also collapse: any negative means none.
	a := PointOptions{Benchmark: "gcc", Useful: 8, Warmup: NoWarmup}
	b := PointOptions{Benchmark: "gcc", Useful: 8, Warmup: -7}
	if a.Key("v") != b.Key("v") {
		t.Error("NoWarmup and other negative warmups hash differently")
	}
	if a.Key("v") == want {
		t.Error("NoWarmup hashes like the default warmup")
	}
}

func TestKeyChangesWithEveryMeaningfulField(t *testing.T) {
	base := PointOptions{
		Benchmark: "gcc", Useful: 8, Window: 32, WindowStages: 2,
		PreSelect: []int{8}, Instructions: 10000, Seed: 3,
	}
	variants := []struct {
		name string
		o    PointOptions
	}{
		{"machine", func(o PointOptions) PointOptions { o.Machine = MachineInOrder; return o }(base)},
		{"benchmark", func(o PointOptions) PointOptions { o.Benchmark = "swim"; return o }(base)},
		{"useful", func(o PointOptions) PointOptions { o.Useful = 9; return o }(base)},
		{"overhead", func(o PointOptions) PointOptions { o.OverheadFO4 = 3; return o }(base)},
		{"no overhead", func(o PointOptions) PointOptions { o.OverheadFO4 = NoOverhead; return o }(base)},
		{"window", func(o PointOptions) PointOptions { o.Window = 64; return o }(base)},
		{"stages", func(o PointOptions) PointOptions { o.WindowStages = 4; return o }(base)},
		{"preselect", func(o PointOptions) PointOptions { o.PreSelect = []int{16}; return o }(base)},
		{"naive", func(o PointOptions) PointOptions { o.NaivePipelining = true; return o }(base)},
		{"instructions", func(o PointOptions) PointOptions { o.Instructions = 20000; return o }(base)},
		{"warmup", func(o PointOptions) PointOptions { o.Warmup = 100; return o }(base)},
		{"no warmup", func(o PointOptions) PointOptions { o.Warmup = NoWarmup; return o }(base)},
		{"seed", func(o PointOptions) PointOptions { o.Seed = 4; return o }(base)},
	}
	baseKey := base.Key("v")
	seen := map[string]string{baseKey: "base"}
	for _, v := range variants {
		k := v.o.Key("v")
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collides with %s", v.name, prev)
		}
		seen[k] = v.name
	}
	if base.Key("v2") == baseKey {
		t.Error("code version does not alter the key")
	}
}

func TestValidateRejectsBadPoints(t *testing.T) {
	bad := []struct {
		name string
		o    PointOptions
	}{
		{"unknown machine", PointOptions{Machine: "vax", Benchmark: "gcc", Useful: 8}},
		{"unknown benchmark", PointOptions{Benchmark: "doom", Useful: 8}},
		{"zero useful", PointOptions{Benchmark: "gcc"}},
		{"huge useful", PointOptions{Benchmark: "gcc", Useful: 100}},
		{"warmup eats everything", PointOptions{Benchmark: "gcc", Useful: 8, Instructions: 100, Warmup: 100}},
		{"stages without window", PointOptions{Benchmark: "gcc", Useful: 8, WindowStages: 2}},
		{"too many stages", PointOptions{Benchmark: "gcc", Useful: 8, Window: 32, WindowStages: 64}},
		{"huge window", PointOptions{Benchmark: "gcc", Useful: 8, Window: 4096}},
		{"preselect too long", PointOptions{Benchmark: "gcc", Useful: 8, Window: 32, WindowStages: 2, PreSelect: []int{4, 4}}},
		{"preselect nonpositive", PointOptions{Benchmark: "gcc", Useful: 8, Window: 32, WindowStages: 3, PreSelect: []int{4, 0}}},
	}
	for _, c := range bad {
		if err := c.o.Normalize().Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.o)
		}
	}
	good := PointOptions{Benchmark: "gcc", Useful: 8}.Normalize()
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected the default point: %v", err)
	}
}

// TestSimulatePointMatchesDepthSweep pins the serving layer's entry point
// to the study path: a single point must reproduce exactly the per-bench
// result DepthSweep computes for the same configuration.
func TestSimulatePointMatchesDepthSweep(t *testing.T) {
	prof, ok := ProfileByName("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	sweep := DepthSweep(SweepConfig{
		Machine:      config.Alpha21264(),
		Overhead:     fo4.PaperOverhead,
		UsefulGrid:   []float64{8},
		Benchmarks:   []trace.Profile{prof},
		Instructions: 5000,
		Workers:      1,
	})
	want := sweep.Points[0].PerBench[0]

	got, err := SimulatePoint(PointOptions{Benchmark: "gcc", Useful: 8, Instructions: 5000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.IPC != want.IPC || got.BIPS != want.BIPS || got.Stats != want.Stats {
		t.Errorf("SimulatePoint diverges from DepthSweep:\npoint: IPC %v BIPS %v\nsweep: IPC %v BIPS %v",
			got.IPC, got.BIPS, want.IPC, want.BIPS)
	}
}

// FuzzCacheKey drives Key with arbitrary field values and checks its two
// invariants: keys are deterministic under re-normalization (hashing the
// normalized form must be a fixed point) and well-formed (64 hex chars).
func FuzzCacheKey(f *testing.F) {
	f.Add("", "gcc", 8.0, 0.0, 0, 0, false, 0, 0, uint64(0))
	f.Add("ooo", "176.gcc", 8.0, 1.8, 32, 2, false, 60000, 12000, uint64(1))
	f.Add("inorder", "swim", 2.5, -1.0, 64, 4, true, 1000, -1, uint64(99))
	f.Add("Alpha21264", "  MCF ", 16.0, 3.6, 0, 1, false, 500, 0, uint64(7))
	f.Fuzz(func(t *testing.T, machine, bench string, useful, overhead float64,
		window, stages int, naive bool, instructions, warmup int, seed uint64) {
		o := PointOptions{
			Machine: machine, Benchmark: bench, Useful: useful,
			OverheadFO4: overhead, Window: window, WindowStages: stages,
			NaivePipelining: naive, Instructions: instructions,
			Warmup: warmup, Seed: seed,
		}
		k1 := o.Key("v")
		if len(k1) != 64 {
			t.Fatalf("key %q is not a sha256 hex digest", k1)
		}
		n := o.Normalize()
		if k2 := n.Key("v"); k2 != k1 {
			t.Fatalf("normalized form hashes differently:\nraw:        %+v -> %s\nnormalized: %+v -> %s", o, k1, n, k2)
		}
		if nn := n.Normalize(); nn.Key("v") != k1 {
			t.Fatal("Normalize is not idempotent under Key")
		}
	})
}
