package core

import (
	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Loop identifies one of the critical loops of Section 4.6 / Figure 8.
type Loop uint8

const (
	// IssueWakeup is the loop from issuing an instruction to waking its
	// dependents — the most performance-critical loop.
	IssueWakeup Loop = iota
	// LoadUse is the loop from issuing a load to delivering its value
	// (the DL1 access time).
	LoadUse
	// BranchMispredict is the loop from predicting a branch to resolving
	// the correct path.
	BranchMispredict
)

func (l Loop) String() string {
	switch l {
	case IssueWakeup:
		return "issue-wakeup"
	case LoadUse:
		return "load-use"
	default:
		return "branch-mispredict"
	}
}

// LoopPoint is one x-position of Figure 8: the loop extended by Extra
// cycles over its Alpha 21264 length, with the resulting IPC relative to
// the unmodified machine.
type LoopPoint struct {
	Extra       int
	RelativeIPC map[trace.Group]float64
	RelativeAll float64
}

// LoopSweep is the Figure 8 result for one critical loop.
type LoopSweep struct {
	Loop   Loop
	Points []LoopPoint
}

// CriticalLoopSensitivity reproduces Figure 8: run the out-of-order
// machine at the Alpha 21264's own latencies and stretch each critical
// loop independently by 0..maxExtra cycles, reporting IPC relative to the
// unstretched machine. Integer benchmarks are the paper's focus; per-group
// series are returned so the FP trends can be examined too. The baseline
// and every (loop, extra) variant run as one batch on the worker pool.
func CriticalLoopSensitivity(cfg SweepConfig, maxExtra int) []LoopSweep {
	cfg.fill()
	traces := cfg.traces()
	base := pipeline.Params{Machine: cfg.Machine, Timing: config.Alpha21264Timing(), Warmup: cfg.Warmup}

	loops := []Loop{IssueWakeup, LoadUse, BranchMispredict}
	mods := []func(*pipeline.Params){nil} // variant 0 is the unstretched baseline
	for _, loop := range loops {
		for extra := 0; extra <= maxExtra; extra++ {
			loop, e := loop, extra
			mods = append(mods, func(p *pipeline.Params) {
				switch loop {
				case IssueWakeup:
					p.ExtraWakeup = e
				case LoadUse:
					p.ExtraLoadUse = e
				case BranchMispredict:
					p.ExtraMispredict = e
				}
			})
		}
	}
	pts := runIPCVariants(cfg, traces, base, mods)
	baseline := pts[0]

	var sweeps []LoopSweep
	next := 1
	for _, loop := range loops {
		sw := LoopSweep{Loop: loop}
		for extra := 0; extra <= maxExtra; extra++ {
			v := pts[next]
			next++
			pt := LoopPoint{Extra: extra, RelativeIPC: map[trace.Group]float64{}}
			for _, grp := range trace.Groups() {
				if x, ok := v.groups[grp]; ok {
					pt.RelativeIPC[grp] = x / baseline.groups[grp]
				}
			}
			pt.RelativeAll = v.all / baseline.all
			sw.Points = append(sw.Points, pt)
		}
		sweeps = append(sweeps, sw)
	}
	return sweeps
}
