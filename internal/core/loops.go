package core

import (
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Loop identifies one of the critical loops of Section 4.6 / Figure 8.
type Loop uint8

const (
	// IssueWakeup is the loop from issuing an instruction to waking its
	// dependents — the most performance-critical loop.
	IssueWakeup Loop = iota
	// LoadUse is the loop from issuing a load to delivering its value
	// (the DL1 access time).
	LoadUse
	// BranchMispredict is the loop from predicting a branch to resolving
	// the correct path.
	BranchMispredict
)

func (l Loop) String() string {
	switch l {
	case IssueWakeup:
		return "issue-wakeup"
	case LoadUse:
		return "load-use"
	default:
		return "branch-mispredict"
	}
}

// LoopPoint is one x-position of Figure 8: the loop extended by Extra
// cycles over its Alpha 21264 length, with the resulting IPC relative to
// the unmodified machine.
type LoopPoint struct {
	Extra       int
	RelativeIPC map[trace.Group]float64
	RelativeAll float64
}

// LoopSweep is the Figure 8 result for one critical loop.
type LoopSweep struct {
	Loop   Loop
	Points []LoopPoint
}

// CriticalLoopSensitivity reproduces Figure 8: run the out-of-order
// machine at the Alpha 21264's own latencies and stretch each critical
// loop independently by 0..maxExtra cycles, reporting IPC relative to the
// unstretched machine. Integer benchmarks are the paper's focus; per-group
// series are returned so the FP trends can be examined too.
func CriticalLoopSensitivity(cfg SweepConfig, maxExtra int) []LoopSweep {
	cfg.fill()
	traces := make([]*trace.Trace, len(cfg.Benchmarks))
	for i, b := range cfg.Benchmarks {
		traces[i] = b.Generate(cfg.Instructions, cfg.Seed)
	}
	timing := config.Alpha21264Timing()

	run := func(mod func(*pipeline.Params)) (map[trace.Group]float64, float64) {
		groups := map[trace.Group][]float64{}
		var all []float64
		for _, tr := range traces {
			p := pipeline.Params{Machine: cfg.Machine, Timing: timing, Warmup: cfg.Warmup}
			if mod != nil {
				mod(&p)
			}
			s := pipeline.Run(p, tr)
			groups[tr.Group] = append(groups[tr.Group], s.IPC)
			all = append(all, s.IPC)
		}
		out := map[trace.Group]float64{}
		for g, xs := range groups {
			out[g] = metrics.HarmonicMean(xs)
		}
		return out, metrics.HarmonicMean(all)
	}

	baseGroups, baseAll := run(nil)

	var sweeps []LoopSweep
	for _, loop := range []Loop{IssueWakeup, LoadUse, BranchMispredict} {
		sw := LoopSweep{Loop: loop}
		for extra := 0; extra <= maxExtra; extra++ {
			e := extra
			g, all := run(func(p *pipeline.Params) {
				switch loop {
				case IssueWakeup:
					p.ExtraWakeup = e
				case LoadUse:
					p.ExtraLoadUse = e
				case BranchMispredict:
					p.ExtraMispredict = e
				}
			})
			pt := LoopPoint{Extra: extra, RelativeIPC: map[trace.Group]float64{}}
			for grp, v := range g {
				pt.RelativeIPC[grp] = v / baseGroups[grp]
			}
			pt.RelativeAll = all / baseAll
			sw.Points = append(sw.Points, pt)
		}
		sweeps = append(sweeps, sw)
	}
	return sweeps
}
