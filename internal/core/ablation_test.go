package core

import "testing"

func TestAblationStudy(t *testing.T) {
	pts := AblationStudy(testConfig())
	if len(pts) != 7 {
		t.Fatalf("got %d variants, want 7", len(pts))
	}
	byName := map[string]AblationPoint{}
	for _, p := range pts {
		byName[p.Name] = p
		if p.AllBIPS <= 0 {
			t.Errorf("%s: non-positive BIPS", p.Name)
		}
	}
	base := pts[0]
	if base.Relative != 1.0 {
		t.Errorf("baseline relative = %v, want 1", base.Relative)
	}
	// Idealizations must help; resource cuts must hurt.
	if byName["perfect branch prediction"].Relative <= 1.0 {
		t.Error("perfect branches did not help")
	}
	if byName["perfect memory (all L1 hits)"].Relative <= 1.0 {
		t.Error("perfect memory did not help")
	}
	if byName["small in-flight window (ROB 80)"].Relative >= 1.0 {
		t.Error("shrinking the in-flight window did not hurt")
	}
	if byName["half fetch/commit width"].Relative >= 1.0 {
		t.Error("halving the front end did not hurt")
	}
	// Perfect memory is the single biggest lever on this machine: the
	// memory system, not the clock, bounds 2002-era performance — the
	// paper's closing argument for concurrency over frequency.
	if byName["perfect memory (all L1 hits)"].Relative <
		byName["perfect branch prediction"].Relative {
		t.Error("memory idealization weaker than branch idealization; unexpected for this suite")
	}
}

func TestPrefetchAblation(t *testing.T) {
	with, without := PrefetchAblation(testConfig())
	if with <= without {
		t.Errorf("prefetching did not help: %.3f vs %.3f", with, without)
	}
	// The substitution is load-bearing: without software prefetch the
	// streaming codes collapse onto DRAM.
	if with/without < 1.1 {
		t.Errorf("prefetch gain only %.2fx; expected a substantial effect", with/without)
	}
}

func TestRenderAblation(t *testing.T) {
	out := RenderAblation([]AblationPoint{{Name: "x", AllBIPS: 1.5, Relative: 1.0}})
	if len(out) == 0 || out[0] != 'A' {
		t.Error("render broken")
	}
}
