// Package wire models on-chip wire delay, the paper's stated future work
// (Section 7: "We will examine the effects of wire delays on our pipeline
// models and optimal clock rate selection in future work"). The paper
// argues wires do not change its fixed-microarchitecture conclusions
// because scaled designs shrink their wires; this package lets that claim
// be tested: it estimates communication delays between the pipeline's
// structures from their modeled areas (internal/cacti's area model) and a
// repeated-wire delay-per-millimetre, and exposes them as extra FO4 of
// work on the paths the paper's critical loops traverse.
//
// The delay model follows Ho, Mai and Horowitz ("The future of wires"):
// optimally repeated global wires achieve a delay proportional to wire
// length, roughly constant in FO4 per millimetre at a given technology
// node and rising as technology shrinks (wires do not speed up with
// transistors).
package wire

import (
	"math"

	"repro/internal/cacti"
	"repro/internal/config"
	"repro/internal/fo4"
)

// Model holds the wire-delay calibration.
type Model struct {
	// FO4PerMm is the delay of an optimally repeated wire in FO4 per
	// millimetre. Ho et al. put repeated-wire delay at ~60-90 ps/mm at
	// 100nm, i.e. roughly 2 FO4/mm; it grows slowly as technology
	// shrinks because wire RC per unit length worsens.
	FO4PerMm float64

	// Area supplies structure footprints, from which distances derive.
	Area cacti.AreaModel
}

// Default100nm is the calibrated wire model at the paper's design point.
var Default100nm = Model{
	FO4PerMm: 2.0,
	Area:     cacti.DefaultArea100nm,
}

// ScaledTo returns the model at another technology node: wire delay per
// millimetre grows roughly inversely with feature size relative to 100nm
// (transistors speed up, repeated wires barely do), while a fixed
// microarchitecture's distances shrink linearly — the two effects cancel
// to first order, which is the paper's §7 argument.
func (m Model) ScaledTo(t fo4.Tech) Model {
	scale := 100.0 / t.Nanometers
	out := m
	out.FO4PerMm = m.FO4PerMm * scale
	return out
}

// Distances are the centre-to-centre communication distances (mm) between
// the structures on the paper's critical loops.
type Distances struct {
	BypassMm    float64 // functional units ↔ functional units (the bypass loop)
	LoadUseMm   float64 // functional units ↔ level-1 data cache
	FetchLoopMm float64 // branch predictor ↔ fetch (next-PC loop)
	WindowMm    float64 // issue window ↔ functional units (wakeup tag run)
}

// EstimateDistances derives distances from the machine's structure areas:
// each path spans roughly the sum of the two blocks' half-sides plus a
// routing allowance.
func (m Model) EstimateDistances(mc config.Machine) Distances {
	s := mc.Structures
	dl1Side := cacti.SideMm(m.Area.CacheAreaMm2(s.DL1))
	rfSide := cacti.SideMm(m.Area.RAMAreaMm2(s.RegFile))
	winSide := cacti.SideMm(m.Area.CAMAreaMm2(s.Window, 40))
	bpSide := cacti.SideMm(m.Area.RAMAreaMm2(s.BPredLocalHist) +
		m.Area.RAMAreaMm2(s.BPredGlobal) + m.Area.RAMAreaMm2(s.BPredChoice))
	il1Side := cacti.SideMm(m.Area.CacheAreaMm2(s.IL1))

	const route = 1.15 // Manhattan routing allowance
	return Distances{
		// The execution cluster's extent is set by the register file the
		// units surround.
		BypassMm:    route * rfSide,
		LoadUseMm:   route * (rfSide/2 + dl1Side/2 + 0.3),
		FetchLoopMm: route * (bpSide/2 + il1Side/2 + 0.2),
		WindowMm:    route * (winSide/2 + rfSide/2 + 0.2),
	}
}

// Penalties are the wire delays (FO4) added to each critical path.
type Penalties struct {
	BypassFO4  float64
	LoadUseFO4 float64
	FetchFO4   float64
	WakeupFO4  float64
	Distances  Distances
}

// Penalties converts distances into FO4 of wire flight time.
func (m Model) Penalties(mc config.Machine) Penalties {
	d := m.EstimateDistances(mc)
	return Penalties{
		BypassFO4:  m.FO4PerMm * d.BypassMm,
		LoadUseFO4: m.FO4PerMm * d.LoadUseMm,
		FetchFO4:   m.FO4PerMm * d.FetchLoopMm,
		WakeupFO4:  m.FO4PerMm * d.WindowMm,
		Distances:  d,
	}
}

// ApplyToTiming returns a Timing with the wire penalties folded in: each
// affected latency is re-derived from its work plus the wire flight time,
// at the timing's own clock. This models a floorplan where every critical
// loop pays its communication distance.
func (m Model) ApplyToTiming(mc config.Machine, t config.Timing) config.Timing {
	p := m.Penalties(mc)
	clk := t.Clock
	out := t

	addCycles := func(base int, extraFO4 float64) int {
		if extraFO4 <= 0 {
			return base
		}
		// The structure's own work already fills `base` cycles; the wire
		// adds flight time on top.
		extra := int(math.Ceil(extraFO4/clk.Useful - 1e-9))
		return base + extra
	}
	out.DL1 = addCycles(t.DL1, p.LoadUseFO4)
	out.BPred = addCycles(t.BPred, p.FetchFO4)
	out.Window = addCycles(t.Window, p.WakeupFO4)
	for i := range out.Exec {
		out.Exec[i] = addCycles(t.Exec[i], p.BypassFO4)
	}
	return out
}
