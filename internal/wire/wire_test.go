package wire

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/fo4"
)

func TestDistancesPlausible(t *testing.T) {
	// At 100nm the 21264-class structures are millimetre-scale: every
	// critical-loop distance should be a fraction of a millimetre to a
	// few millimetres.
	d := Default100nm.EstimateDistances(config.Alpha21264())
	for name, v := range map[string]float64{
		"bypass": d.BypassMm, "load-use": d.LoadUseMm,
		"fetch": d.FetchLoopMm, "window": d.WindowMm,
	} {
		if v < 0.05 || v > 8 {
			t.Errorf("%s distance = %.2f mm, implausible", name, v)
		}
	}
	// The load-use path crosses the (large) data cache: it should be the
	// longest or near-longest path.
	if d.LoadUseMm < d.WindowMm {
		t.Errorf("load-use path (%.2f mm) shorter than window path (%.2f mm)", d.LoadUseMm, d.WindowMm)
	}
}

func TestPenaltiesScaleWithWireModel(t *testing.T) {
	m := Default100nm
	p1 := m.Penalties(config.Alpha21264())
	m.FO4PerMm *= 2
	p2 := m.Penalties(config.Alpha21264())
	if math.Abs(p2.BypassFO4-2*p1.BypassFO4) > 1e-9 {
		t.Error("penalties not linear in FO4PerMm")
	}
}

func TestScaledToKeepsFixedDesignDelayRoughlyConstant(t *testing.T) {
	// The paper's §7 argument: in a fixed microarchitecture, wire lengths
	// shrink linearly with feature size while wire delay per mm grows
	// inversely, so absolute wire delay is constant — and in FO4 (which
	// also shrinks linearly in time), wire delay grows as 1/scale only
	// through the per-mm term, cancelling the shrinking distances.
	m100 := Default100nm
	m50 := Default100nm.ScaledTo(fo4.Tech{Nanometers: 50})
	if ratio := m50.FO4PerMm / m100.FO4PerMm; math.Abs(ratio-2) > 1e-9 {
		t.Errorf("wire FO4/mm scaling to 50nm = %.2f, want 2.0", ratio)
	}
}

func TestApplyToTimingAddsCycles(t *testing.T) {
	mc := config.Alpha21264()
	clk := fo4.Clock{Useful: 6, Overhead: fo4.PaperOverhead}
	base := mc.Resolve(clk)
	wired := Default100nm.ApplyToTiming(mc, base)

	if wired.DL1 <= base.DL1 {
		t.Errorf("wire model did not lengthen DL1 (%d vs %d)", wired.DL1, base.DL1)
	}
	if wired.BPred < base.BPred || wired.Window < base.Window {
		t.Error("wire model shortened a structure latency")
	}
	for i := range base.Exec {
		if wired.Exec[i] < base.Exec[i] {
			t.Errorf("wire model shortened exec class %d", i)
		}
	}
	// Memory latency is untouched — it is already absolute time.
	if wired.Mem != base.Mem {
		t.Error("wire model changed memory latency")
	}
}

func TestWirePenaltyGrowsAtDeepClocks(t *testing.T) {
	// The same wire flight time costs more cycles at a faster clock —
	// the Pentium 4's two drive stages, in model form.
	mc := config.Alpha21264()
	deep := Default100nm.ApplyToTiming(mc, mc.Resolve(fo4.Clock{Useful: 2, Overhead: fo4.PaperOverhead}))
	base2 := mc.Resolve(fo4.Clock{Useful: 2, Overhead: fo4.PaperOverhead})
	shallow := Default100nm.ApplyToTiming(mc, mc.Resolve(fo4.Clock{Useful: 12, Overhead: fo4.PaperOverhead}))
	base12 := mc.Resolve(fo4.Clock{Useful: 12, Overhead: fo4.PaperOverhead})

	deepExtra := deep.DL1 - base2.DL1
	shallowExtra := shallow.DL1 - base12.DL1
	if deepExtra < shallowExtra {
		t.Errorf("wire cycles at 2 FO4 (%d) below those at 12 FO4 (%d)", deepExtra, shallowExtra)
	}
	if deepExtra < 1 {
		t.Error("deep clock pays no wire cycles; model inert")
	}
}
