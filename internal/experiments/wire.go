package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/wire"
)

// WireStudyResult is the Section 7 future-work experiment: the depth
// sweep with and without floorplan wire delays on the critical loops.
type WireStudyResult struct {
	Without core.SweepResult
	With    core.SweepResult
	Model   wire.Model
}

// RunWireStudy runs the wire-delay extension on the out-of-order machine.
func RunWireStudy(o Options) WireStudyResult {
	o = o.fill()
	defer o.Obs.Study("wire-study")()
	cfg := o.sweepConfig(config.Alpha21264())
	wm := wire.Default100nm
	without, with := core.WireStudy(cfg, wm)
	return WireStudyResult{Without: without, With: with, Model: wm}
}

// Render prints the two integer curves and the optima.
func (w WireStudyResult) Render() string {
	var b strings.Builder
	p := w.Model.Penalties(config.Alpha21264())
	fmt.Fprintln(&b, "Wire-delay study (the paper's §7 future work)")
	fmt.Fprintf(&b, "critical-loop wire flight: bypass %.1f, load-use %.1f, fetch %.1f, wakeup %.1f FO4\n",
		p.BypassFO4, p.LoadUseFO4, p.FetchFO4, p.WakeupFO4)
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "t_useful", "no wires", "with wires")
	for i, pt := range w.Without.Points {
		fmt.Fprintf(&b, "%6.0f   %12.3f %12.3f\n", pt.Useful,
			pt.GroupBIPS[trace.Integer], w.With.Points[i].GroupBIPS[trace.Integer])
	}
	fmt.Fprintf(&b, "integer optimum: %.0f FO4 without wires, %.0f FO4 with wires\n",
		w.Without.NearOptimalUseful(trace.Integer, 0.02),
		w.With.NearOptimalUseful(trace.Integer, 0.02))
	return b.String()
}
