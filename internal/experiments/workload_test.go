package experiments

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// The calibration regression test: these bands pin the workload-level
// properties the reproduction's conclusions depend on. If profile tuning
// drifts outside them, the Figure 5 optima will likely move too.
func TestWorkloadCalibrationBands(t *testing.T) {
	tab := RunWorkloadTable(Options{Instructions: 50000})
	if len(tab.Rows) != 18 {
		t.Fatalf("got %d rows, want 18", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		// Universal sanity.
		if r.LoadFrac < 0.1 || r.LoadFrac > 0.45 {
			t.Errorf("%s: load fraction %.2f outside SPEC-like band", r.Name, r.LoadFrac)
		}
		if r.MeanDepDist < 5 || r.MeanDepDist > 60 {
			t.Errorf("%s: mean dep distance %.1f implausible", r.Name, r.MeanDepDist)
		}
		switch r.Group {
		case trace.Integer:
			if r.BranchFrac < 0.08 || r.BranchFrac > 0.22 {
				t.Errorf("%s: branch fraction %.2f outside integer band", r.Name, r.BranchFrac)
			}
			if r.MispredictRate < 0.05 || r.MispredictRate > 0.22 {
				t.Errorf("%s: mispredict rate %.3f outside integer band", r.Name, r.MispredictRate)
			}
		case trace.VectorFP:
			if r.BranchFrac > 0.05 {
				t.Errorf("%s: vector code with %.1f%% branches", r.Name, 100*r.BranchFrac)
			}
			if r.MispredictRate > 0.08 {
				t.Errorf("%s: vector mispredict rate %.3f too high", r.Name, r.MispredictRate)
			}
		case trace.NonVectorFP:
			if r.BranchFrac < 0.04 || r.BranchFrac > 0.12 {
				t.Errorf("%s: branch fraction %.2f outside non-vector band", r.Name, r.BranchFrac)
			}
		}
	}

	byName := map[string]WorkloadRow{}
	for _, r := range tab.Rows {
		byName[r.Name] = r
	}
	// The memory-character anchors: mcf and art are the cache busters.
	if byName["181.mcf"].L1MissRate < 0.15 {
		t.Errorf("mcf L1 miss rate %.3f; should be the worst integer benchmark",
			byName["181.mcf"].L1MissRate)
	}
	if byName["252.eon"].L1MissRate > 0.05 {
		t.Errorf("eon L1 miss rate %.3f; should be cache-resident", byName["252.eon"].L1MissRate)
	}
	if byName["179.art"].L1MissRate < 0.10 {
		t.Errorf("art L1 miss rate %.3f; art should thrash the L1", byName["179.art"].L1MissRate)
	}
	// DRAM exposure stays bounded for the cache-resident codes.
	for _, name := range []string{"164.gzip", "252.eon", "171.swim"} {
		if byName[name].DRAMRate > 0.02 {
			t.Errorf("%s: %.2f%% of accesses reach DRAM; should be rare", name, 100*byName[name].DRAMRate)
		}
	}
}

func TestWorkloadTableRender(t *testing.T) {
	tab := RunWorkloadTable(Options{Instructions: 5000})
	out := tab.Render()
	if !strings.Contains(out, "181.mcf") || !strings.Contains(out, "mispr%") {
		t.Error("render incomplete")
	}
}
