package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cacti"
	"repro/internal/circuit"
	"repro/internal/config"
	"repro/internal/fo4"
	"repro/internal/isa"
	"repro/internal/latch"
)

// Table1Result holds the clocking-overhead decomposition with the latch
// component measured by the circuit simulator.
type Table1Result struct {
	Latch  latch.OverheadResult
	Ecl    latch.ECLResult
	Skew   float64 // FO4, from Kurd et al. (paper input, not simulated)
	Jitter float64
}

// RunTable1 measures the latch overhead (and the Appendix A ECL gate) at
// the calibrated 100nm device model. step is the data-edge sweep
// granularity in ps; 2.0 is fast and accurate to ~0.05 FO4.
func RunTable1(step float64) Table1Result {
	return Table1Result{
		Latch:  latch.MeasureLatchOverhead(circuit.Params100nm, step),
		Ecl:    latch.MeasureECLGate(circuit.Params100nm),
		Skew:   fo4.PaperOverhead.Skew,
		Jitter: fo4.PaperOverhead.Jitter,
	}
}

// Render prints the Table 1 decomposition and the Appendix A result.
func (t Table1Result) Render() string {
	total := t.Latch.OverheadFO4 + t.Skew + t.Jitter
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: clocking overhead at 100nm")
	fmt.Fprintf(&b, "  measured FO4 reference   %6.2f ps\n", t.Latch.FO4Ps)
	fmt.Fprintf(&b, "  latch overhead (SPICE)   %6.2f ps = %.2f FO4 (paper: 1.0)\n",
		t.Latch.OverheadPs, t.Latch.OverheadFO4)
	fmt.Fprintf(&b, "  clock skew (Kurd et al.) %6.2f FO4\n", t.Skew)
	fmt.Fprintf(&b, "  clock jitter             %6.2f FO4\n", t.Jitter)
	fmt.Fprintf(&b, "  total                    %6.2f FO4 (paper: 1.8)\n", total)
	fmt.Fprintf(&b, "Appendix A: one Cray ECL gate (NAND4→NAND5) = %.2f FO4 (paper: 1.36);\n", t.Ecl.GateFO4)
	fmt.Fprintf(&b, "  a 16-gate Cray-1S stage = %.1f FO4\n", 2*t.Ecl.PerStageEq)
	return b.String()
}

// Table3Result is the access-latency grid.
type Table3Result struct {
	Useful []float64
	Rows   []config.Timing
	Alpha  config.Timing
}

// RunTable3 resolves the Alpha 21264's structures at every grid clock.
func RunTable3() Table3Result {
	m := config.Alpha21264()
	res := Table3Result{Alpha: config.Alpha21264Timing()}
	for u := 2.0; u <= 16; u++ {
		res.Useful = append(res.Useful, u)
		res.Rows = append(res.Rows, m.Resolve(fo4.Clock{Useful: u, Overhead: fo4.PaperOverhead}))
	}
	return res
}

// Render prints the table in the paper's layout: structures then
// functional units, one column per t_useful plus the 21264 hardware row.
func (t Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 3: access latencies (cycles) at 100nm")
	fmt.Fprintf(&b, "%-16s", "(FO4)")
	for _, u := range t.Useful {
		fmt.Fprintf(&b, "%4.0f", u)
	}
	fmt.Fprintf(&b, "  Alpha(17.4)\n")
	row := func(name string, get func(config.Timing) int) {
		fmt.Fprintf(&b, "%-16s", name)
		for _, r := range t.Rows {
			fmt.Fprintf(&b, "%4d", get(r))
		}
		fmt.Fprintf(&b, "  %d\n", get(t.Alpha))
	}
	row("DL1", func(r config.Timing) int { return r.DL1 })
	row("Branch pred", func(r config.Timing) int { return r.BPred })
	row("Rename", func(r config.Timing) int { return r.Rename })
	row("Issue window", func(r config.Timing) int { return r.Window })
	row("Register file", func(r config.Timing) int { return r.RegRead })
	row("Int add", func(r config.Timing) int { return r.Exec[isa.IntAlu] })
	row("Int mult", func(r config.Timing) int { return r.Exec[isa.IntMult] })
	row("FP add", func(r config.Timing) int { return r.Exec[isa.FPAdd] })
	row("FP mult", func(r config.Timing) int { return r.Exec[isa.FPMult] })
	row("FP div", func(r config.Timing) int { return r.Exec[isa.FPDiv] })
	row("FP sqrt", func(r config.Timing) int { return r.Exec[isa.FPSqrt] })
	return b.String()
}

// StructureSummary reports the physical characteristics of the baseline
// machine's structures — access time, area and read energy — from the
// cacti model. It extends Table 3 with Cacti 3.0's other two outputs.
type StructureSummary struct {
	Rows []StructureRow
}

// StructureRow is one structure's physical summary.
type StructureRow struct {
	Name     string
	FO4      float64
	Ps       float64
	AreaMm2  float64
	EnergyPJ float64
}

// RunStructureSummary builds the summary for the Alpha 21264 machine.
func RunStructureSummary() StructureSummary {
	m := config.Alpha21264()
	md := m.Model
	am := cacti.DefaultArea100nm
	s := m.Structures
	ps := func(f float64) float64 { return fo4.Tech100nm.FO4ToPs(f) }

	rows := []StructureRow{
		{
			Name: "DL1 64KB/2w", FO4: md.CacheAccessFO4(s.DL1),
			AreaMm2: am.CacheAreaMm2(s.DL1), EnergyPJ: am.CacheReadEnergyPJ(s.DL1),
		},
		{
			Name: "L2 2MB/2w", FO4: md.CacheAccessFO4(s.L2),
			AreaMm2: am.CacheAreaMm2(s.L2), EnergyPJ: am.CacheReadEnergyPJ(s.L2),
		},
		{
			Name: "regfile 512x64", FO4: md.RAMAccessFO4(s.RegFile),
			AreaMm2: am.RAMAreaMm2(s.RegFile), EnergyPJ: am.RAMReadEnergyPJ(s.RegFile),
		},
		{
			Name: "issue window 20", FO4: md.CAMAccessFO4(s.Window),
			AreaMm2: am.CAMAreaMm2(s.Window, 40), EnergyPJ: am.CAMSearchEnergyPJ(s.Window),
		},
		{
			Name: "branch predictor", FO4: m.BPredFO4(),
			AreaMm2: am.RAMAreaMm2(s.BPredLocalHist) + am.RAMAreaMm2(s.BPredLocalCnt) +
				am.RAMAreaMm2(s.BPredGlobal) + am.RAMAreaMm2(s.BPredChoice),
			EnergyPJ: am.RAMReadEnergyPJ(s.BPredLocalHist) + am.RAMReadEnergyPJ(s.BPredLocalCnt),
		},
	}
	for i := range rows {
		rows[i].Ps = ps(rows[i].FO4)
	}
	return StructureSummary{Rows: rows}
}

// Render prints the physical summary table.
func (s StructureSummary) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Structure physical summary at 100nm (timing + Cacti 3.0 area/energy extension)")
	fmt.Fprintf(&b, "%-18s %8s %8s %9s %9s\n", "structure", "FO4", "ps", "mm²", "pJ/read")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-18s %8.1f %8.0f %9.2f %9.1f\n", r.Name, r.FO4, r.Ps, r.AreaMm2, r.EnergyPJ)
	}
	return b.String()
}
