package experiments

import (
	"encoding/json"
	"testing"
)

func TestDepthSweepJSON(t *testing.T) {
	res := RunFigure5(opts)
	raw, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SeriesJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
	if len(back.X) != 15 {
		t.Errorf("x has %d points, want 15", len(back.X))
	}
	for _, key := range []string{"integer", "vector-fp", "non-vector-fp", "all"} {
		s, ok := back.Series[key]
		if !ok || len(s) != len(back.X) {
			t.Errorf("series %q missing or wrong length", key)
		}
		for _, v := range s {
			if v <= 0 {
				t.Errorf("series %q has non-positive BIPS", key)
			}
		}
	}
}

func TestFigure8JSON(t *testing.T) {
	raw, err := RunFigure8(opts).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SeriesJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Series) != 3 {
		t.Errorf("want 3 loop series, got %d", len(back.Series))
	}
	for name, s := range back.Series {
		if s[0] < 0.99 || s[0] > 1.01 {
			t.Errorf("%s: first point %v, want 1.0", name, s[0])
		}
	}
}

func TestFigure11JSON(t *testing.T) {
	raw, err := RunFigure11(opts).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SeriesJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.X) != 10 {
		t.Errorf("x has %d stages, want 10", len(back.X))
	}
	if _, ok := back.Series["naive-integer"]; !ok {
		t.Error("naive series missing")
	}
}

func TestHeadlineAndFigure1JSON(t *testing.T) {
	raw, err := RunHeadline(opts).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var h Headline
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	if h.IntUseful == 0 {
		t.Error("headline lost its optimum in round-trip")
	}

	raw1, err := RunFigure1().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var f Figure1
	if err := json.Unmarshal(raw1, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 7 {
		t.Error("Figure 1 lost rows in round-trip")
	}
}
