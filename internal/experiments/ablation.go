package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
)

// AblationResult is the mechanism-contribution study.
type AblationResult struct {
	Points          []core.AblationPoint
	PrefetchWith    float64
	PrefetchWithout float64
}

// RunAblation measures each modeled mechanism's contribution at the 6 FO4
// optimum, plus the stream-prefetch substitution's effect.
func RunAblation(o Options) AblationResult {
	o = o.fill()
	defer o.Obs.Study("ablation")()
	cfg := o.sweepConfig(config.Alpha21264())
	res := AblationResult{Points: core.AblationStudy(cfg)}
	res.PrefetchWith, res.PrefetchWithout = core.PrefetchAblation(cfg)
	return res
}

// Render prints the ablation rows.
func (a AblationResult) Render() string {
	out := core.RenderAblation(a.Points)
	out += fmt.Sprintf("  %-36s %7.3f → %7.3f (%.2fx)\n",
		"stream prefetch off", a.PrefetchWith, a.PrefetchWithout,
		a.PrefetchWithout/a.PrefetchWith)
	return out
}
