package experiments

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// Small options keep this suite quick; the core package asserts the
// science at larger sizes — here we check the drivers wire up correctly
// and render sensibly.
var opts = Options{Instructions: 15000}

func TestFigure1Driver(t *testing.T) {
	f := RunFigure1()
	if len(f.Rows) != 7 {
		t.Fatalf("Figure 1 has %d rows, want 7", len(f.Rows))
	}
	if f.Rows[0].PeriodFO4 < 80 || f.Rows[0].PeriodFO4 > 90 {
		t.Errorf("1990 period = %.1f FO4, want ~84", f.Rows[0].PeriodFO4)
	}
	out := f.Render()
	for _, want := range []string{"Figure 1", "i486DX", "Pentium 4", "7.8 FO4"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable3Driver(t *testing.T) {
	tab := RunTable3()
	if len(tab.Useful) != 15 {
		t.Fatalf("Table 3 has %d columns, want 15", len(tab.Useful))
	}
	// Spot-check published cells: int mult is 21 cycles at 6 FO4.
	if got := tab.Rows[4].Exec[1]; got != 21 {
		t.Errorf("int mult at 6 FO4 = %d, want 21", got)
	}
	if got := tab.Alpha.Exec[1]; got != 7 {
		t.Errorf("Alpha int mult = %d, want 7", got)
	}
	out := tab.Render()
	for _, want := range []string{"DL1", "Issue window", "FP sqrt", "Alpha(17.4)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestDepthSweepDrivers(t *testing.T) {
	for name, run := range map[string]func(Options) DepthSweepResult{
		"4a": RunFigure4a, "4b": RunFigure4b, "5": RunFigure5,
	} {
		res := run(opts)
		if len(res.Sweep.Points) != 15 {
			t.Errorf("%s: %d points, want 15", name, len(res.Sweep.Points))
		}
		out := res.Render()
		if !strings.Contains(out, "optima") {
			t.Errorf("%s: render missing optima line", name)
		}
	}
	// 4a must actually run without overhead: at equal useful FO4 its
	// frequency is higher than 4b's.
	a := RunFigure4a(opts).Sweep
	b := RunFigure4b(opts).Sweep
	if a.Points[0].FreqHz <= b.Points[0].FreqHz {
		t.Error("Figure 4a (no overhead) not faster-clocked than 4b at t=2")
	}
}

func TestHeadlineDriver(t *testing.T) {
	h := RunHeadline(opts)
	if h.IntPeriod != h.IntUseful+1.8 {
		t.Errorf("period arithmetic broken: %v vs %v+1.8", h.IntPeriod, h.IntUseful)
	}
	if h.IntFreqGHz < 2 || h.IntFreqGHz > 6 {
		t.Errorf("headline frequency = %.2f GHz, implausible", h.IntFreqGHz)
	}
	if !strings.Contains(h.Render(), "GHz") {
		t.Error("headline render missing frequency")
	}
}

func TestFigure8Driver(t *testing.T) {
	f := RunFigure8(opts)
	if len(f.Sweeps) != 3 {
		t.Fatalf("want 3 loop sweeps, got %d", len(f.Sweeps))
	}
	for _, s := range f.Sweeps {
		if len(s.Points) != 16 {
			t.Errorf("%v: %d points, want 16 (0..15)", s.Loop, len(s.Points))
		}
	}
	if !strings.Contains(f.Render(), "issue-wakeup") {
		t.Error("render missing loop name")
	}
}

func TestFigure11Driver(t *testing.T) {
	f := RunFigure11(opts)
	if len(f.Points) != 10 || len(f.Naive) != 10 {
		t.Fatalf("want 10 window points, got %d/%d", len(f.Points), len(f.Naive))
	}
	if f.Naive[9].RelativeIPC[trace.Integer] >= f.Points[9].RelativeIPC[trace.Integer] {
		t.Error("naive pipelining not worse than segmentation at 10 stages")
	}
	if !strings.Contains(f.Render(), "10-stage loss") {
		t.Error("render missing summary")
	}
}

func TestSelectAndCrayDrivers(t *testing.T) {
	sel := RunSegmentedSelect(opts)
	if r := sel.Res.RelativeIPC[trace.Integer]; r <= 0 || r >= 1.05 {
		t.Errorf("select relative IPC = %v, implausible", r)
	}
	cray := RunCray1S(opts)
	if len(cray.Sweep.Points) != 15 {
		t.Errorf("cray sweep has %d points", len(cray.Sweep.Points))
	}
	if !strings.Contains(cray.Render(), "Cray-1S") {
		t.Error("cray render missing title")
	}
}

func TestTable1Driver(t *testing.T) {
	// Coarse sweep keeps this quick; the latch package tests assert the
	// measured values tightly.
	tab := RunTable1(6.0)
	if tab.Latch.OverheadFO4 <= 0.3 || tab.Latch.OverheadFO4 > 2 {
		t.Errorf("latch overhead = %v FO4, implausible", tab.Latch.OverheadFO4)
	}
	out := tab.Render()
	for _, want := range []string{"Table 1", "latch overhead", "Appendix A"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure7DriverSmall(t *testing.T) {
	small := opts
	f := RunFigure7(small)
	if len(f.Points) == 0 {
		t.Fatal("no Figure 7 points")
	}
	for _, p := range f.Points {
		if p.BestBIPS < p.BaselineBIPS {
			t.Errorf("t=%v: optimization made things worse", p.Useful)
		}
	}
	if !strings.Contains(f.Render(), "mean gain") {
		t.Error("render missing mean gain")
	}
}

func TestFigure6DriverSmall(t *testing.T) {
	f := RunFigure6(opts)
	if len(f.Sweeps) != 7 {
		t.Fatalf("want 7 overhead sweeps, got %d", len(f.Sweeps))
	}
	// Zero-overhead BIPS must dominate every positive-overhead curve.
	for i := 1; i < len(f.Sweeps); i++ {
		for j := range f.Sweeps[0].Points {
			if f.Sweeps[i].Points[j].GroupBIPS[trace.Integer] >
				f.Sweeps[0].Points[j].GroupBIPS[trace.Integer] {
				t.Fatalf("overhead %v beat zero overhead at point %d",
					f.OverheadsFO4[i], j)
			}
		}
	}
}

func TestWireStudyDriver(t *testing.T) {
	w := RunWireStudy(opts)
	if len(w.Without.Points) != len(w.With.Points) {
		t.Fatal("mismatched sweep lengths")
	}
	// Wires only ever cost performance.
	for i := range w.Without.Points {
		base := w.Without.Points[i].GroupBIPS[trace.Integer]
		wired := w.With.Points[i].GroupBIPS[trace.Integer]
		if wired > base*1.001 {
			t.Errorf("t=%v: wires improved BIPS (%.3f > %.3f)",
				w.Without.Points[i].Useful, wired, base)
		}
	}
	// And the optimum stays in the same plateau (the paper's conjecture).
	a := w.Without.NearOptimalUseful(trace.Integer, 0.02)
	b := w.With.NearOptimalUseful(trace.Integer, 0.02)
	if b < a-2 || b > a+3 {
		t.Errorf("wires moved the optimum from %v to %v FO4", a, b)
	}
	if !strings.Contains(w.Render(), "with wires") {
		t.Error("render missing comparison")
	}
}

func TestStructureSummaryDriver(t *testing.T) {
	s := RunStructureSummary()
	if len(s.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(s.Rows))
	}
	byName := map[string]StructureRow{}
	for _, r := range s.Rows {
		byName[r.Name] = r
		if r.FO4 <= 0 || r.Ps <= 0 || r.AreaMm2 <= 0 || r.EnergyPJ <= 0 {
			t.Errorf("%s: non-positive physical quantity: %+v", r.Name, r)
		}
	}
	if byName["L2 2MB/2w"].AreaMm2 <= byName["DL1 64KB/2w"].AreaMm2 {
		t.Error("L2 not larger than DL1")
	}
	if !strings.Contains(s.Render(), "pJ/read") {
		t.Error("render missing energy column")
	}
}

// TestRenderWorkerInvariance pins the engine's determinism guarantee at
// the driver level: the rendered report — the exact bytes a user sees —
// must be identical on the serial path and on a many-worker pool.
func TestRenderWorkerInvariance(t *testing.T) {
	o := Options{Instructions: 8000, Bench: "m"} // several benchmarks across all groups
	o.Workers = 1
	serial := RunFigure5(o).Render()
	o.Workers = 8
	parallel := RunFigure5(o).Render()
	if serial != parallel {
		t.Errorf("Workers=8 render differs from Workers=1:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

func TestBenchFilter(t *testing.T) {
	if got := len(MatchBenchmarks("")); got != 18 {
		t.Errorf("empty filter matched %d profiles, want the whole suite (18)", got)
	}
	if got := len(MatchBenchmarks("176.gcc")); got != 1 {
		t.Errorf("exact name matched %d profiles, want 1", got)
	}
	if got := len(MatchBenchmarks("GCC")); got != 1 {
		t.Errorf("filter should be case-insensitive, matched %d", got)
	}
	if got := len(MatchBenchmarks("zzz-nothing")); got != 0 {
		t.Errorf("bogus filter matched %d profiles", got)
	}

	o := Options{Instructions: 5000, Bench: "176.gcc"}
	res := RunFigure5(o)
	for _, p := range res.Sweep.Points {
		if len(p.PerBench) != 1 || p.PerBench[0].Name != "176.gcc" {
			t.Fatalf("Bench filter leaked: point ran %d benchmarks", len(p.PerBench))
		}
	}
	// Group-restricted figures intersect the filter with their group.
	g := trace.Integer
	if got := len(Options{Bench: "171.swim"}.benchmarks(&g)); got != 0 {
		t.Errorf("vector benchmark matched the integer group, got %d", got)
	}
}
