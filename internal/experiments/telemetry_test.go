package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestTelemetryInvariance pins the observability layer's hard contract:
// telemetry is observation-only. For a fixed seed, a study's text and
// JSON output must be byte-for-byte identical with telemetry enabled or
// disabled, on the serial path and on the full worker pool. CI runs this
// under -race, so the recorder's concurrent hook calls are exercised too.
func TestTelemetryInvariance(t *testing.T) {
	mk := func(workers int, rec *obs.Recorder) Options {
		// Instruction count chosen to be unique to this test so the
		// process-wide trace cache cannot leak traces between tests.
		return Options{Instructions: 2501, Seed: 7, Workers: workers, Obs: rec}
	}
	variants := []struct {
		name string
		o    Options
	}{
		{"plain-serial", mk(1, nil)},
		{"plain-parallel", mk(0, nil)},
		{"telemetry-serial", mk(1, obs.New(nil))},
		{"telemetry-parallel", mk(0, obs.New(nil))},
	}

	var wantText string
	var wantJSON []byte
	for i, v := range variants {
		res := RunFigure4b(v.o)
		text := res.Render()
		raw, err := res.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", v.name, err)
		}
		if i == 0 {
			wantText, wantJSON = text, raw
			continue
		}
		if text != wantText {
			t.Errorf("%s: text output differs from %s", v.name, variants[0].name)
		}
		if !bytes.Equal(raw, wantJSON) {
			t.Errorf("%s: JSON output differs from %s", v.name, variants[0].name)
		}
	}

	// The telemetry variants must also have actually observed the run.
	snap := variants[3].o.Obs.Snapshot()
	if snap.Tasks.Count == 0 {
		t.Error("telemetry recorder saw no tasks")
	}
	if len(snap.Studies) != 1 || snap.Studies[0].Name != "figure4b" {
		t.Errorf("studies = %+v, want one figure4b span", snap.Studies)
	}
}

// TestTraceCacheTelemetry checks the acceptance criterion on the shared
// trace cache: a multi-study run at one (instructions, seed) generates
// each benchmark trace once (misses) and reuses it in the later study
// (hits > 0).
func TestTraceCacheTelemetry(t *testing.T) {
	rec := obs.New(nil)
	// Unique instruction count: this test must own its cache keys.
	o := Options{Instructions: 2503, Seed: 11, Obs: rec}
	RunFigure4b(o)
	RunFigure5(o)
	snap := rec.Snapshot()
	if snap.Counters["trace_cache_misses"] == 0 {
		t.Error("no trace-cache misses recorded; first study should generate traces")
	}
	if snap.Counters["trace_cache_hits"] == 0 {
		t.Error("no trace-cache hits recorded across two studies sharing the suite")
	}
	if snap.Counters["simulations"] == 0 {
		t.Error("no simulations counted")
	}
	if len(snap.Studies) != 2 {
		t.Errorf("studies = %d, want 2", len(snap.Studies))
	}
	for _, s := range snap.Studies {
		if s.Tasks.Count == 0 {
			t.Errorf("study %s recorded no tasks", s.Name)
		}
		if s.Tasks.MinMS > s.Tasks.P50MS || s.Tasks.P50MS > s.Tasks.MaxMS {
			t.Errorf("study %s has inconsistent task stats: %+v", s.Name, s.Tasks)
		}
	}
}
