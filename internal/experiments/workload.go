package experiments

import (
	"fmt"
	"strings"

	"repro/internal/branch"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// WorkloadRow is the measured character of one synthetic benchmark: the
// quantities the calibration in internal/trace/spec2000.go targets,
// measured through the same structural predictor and hierarchy the
// pipeline uses.
type WorkloadRow struct {
	Name  string
	Group trace.Group

	LoadFrac    float64
	StoreFrac   float64
	BranchFrac  float64
	MeanDepDist float64

	MispredictRate float64 // under the 21264 tournament predictor
	L1MissRate     float64 // under the 64KB/2MB hierarchy
	DRAMRate       float64 // fraction of memory accesses reaching DRAM
}

// WorkloadTable characterizes the whole suite.
type WorkloadTable struct {
	Rows []WorkloadRow
}

// RunWorkloadTable measures every selected benchmark profile. Each
// benchmark characterizes independently (predictor and hierarchy are
// per-call), so the rows run on the worker pool; row order always follows
// the suite's declaration order.
func RunWorkloadTable(o Options) WorkloadTable {
	if o.Instructions == 0 {
		// Characterization needs longer streams than the simulation
		// default to reach steady-state miss and mispredict rates.
		o.Instructions = 50000
	}
	o = o.fill()
	defer o.Obs.Study("workload-table")()
	profiles := MatchBenchmarks(o.Bench)
	pool := exec.Pool{Workers: o.Workers, Ctx: o.Context}
	if o.Obs != nil {
		pool.OnTaskStart = o.Obs.TaskStart
		pool.OnTaskDone = o.Obs.TaskDone
	}
	rows, _ := exec.Map(pool, profiles, func(_ int, p trace.Profile) WorkloadRow {
		return characterize(p, p.Generate(o.Instructions, o.Seed))
	})
	return WorkloadTable{Rows: rows}
}

func characterize(p trace.Profile, tr *trace.Trace) WorkloadRow {
	var counts [isa.NumClasses]int
	var depSum, depN float64
	pred := branch.New()
	h := mem.NewHierarchy(
		mem.NewCache(64<<10, 64, 2),
		mem.NewCache(2<<20, 64, 2),
	)
	h.Coverage = tr.PrefetchCoverage
	h.Prewarm(tr.HotBytes, tr.WarmBytes)

	var memAccesses, memToDRAM uint64
	for i, in := range tr.Insts {
		counts[in.Class]++
		if in.Src1 >= 0 {
			depSum += float64(int32(i) - in.Src1)
			depN++
		}
		switch {
		case in.Class == isa.Branch:
			g := pred.Predict(in.PC)
			pred.Update(in.PC, in.Taken, g)
		case in.Class.IsMem():
			memAccesses++
			if h.Access(in.Addr) == mem.Memory {
				memToDRAM++
			}
		}
	}
	total := float64(len(tr.Insts))
	row := WorkloadRow{
		Name:           p.Name,
		Group:          p.Group,
		LoadFrac:       float64(counts[isa.Load]) / total,
		StoreFrac:      float64(counts[isa.Store]) / total,
		BranchFrac:     float64(counts[isa.Branch]) / total,
		MispredictRate: pred.MispredictRate(),
		L1MissRate:     h.L1.MissRate(),
	}
	if depN > 0 {
		row.MeanDepDist = depSum / depN
	}
	if memAccesses > 0 {
		row.DRAMRate = float64(memToDRAM) / float64(memAccesses)
	}
	return row
}

// Render prints the characterization table.
func (w WorkloadTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %-13s %5s %5s %5s %6s %7s %7s %7s\n",
		"benchmark", "group", "load%", "stor%", "br%", "dep", "mispr%", "L1miss%", "mem%")
	for _, r := range w.Rows {
		fmt.Fprintf(&b, "%-13s %-13s %4.1f%% %4.1f%% %4.1f%% %6.1f %6.1f%% %6.1f%% %6.2f%%\n",
			r.Name, r.Group,
			100*r.LoadFrac, 100*r.StoreFrac, 100*r.BranchFrac, r.MeanDepDist,
			100*r.MispredictRate, 100*r.L1MissRate, 100*r.DRAMRate)
	}
	return b.String()
}
