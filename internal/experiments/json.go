package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/trace"
)

// Machine-readable export: every experiment result marshals to a stable
// JSON shape so downstream tooling (plotting scripts, regression trackers)
// can consume the reproduction without parsing the rendered text.

// SeriesJSON is a generic (x, series...) export for figure-shaped results.
type SeriesJSON struct {
	Title  string               `json:"title"`
	XLabel string               `json:"x_label"`
	X      []float64            `json:"x"`
	Series map[string][]float64 `json:"series"`
}

// JSON exports the depth sweep as one series per benchmark group.
func (d DepthSweepResult) JSON() ([]byte, error) {
	out := SeriesJSON{
		Title:  d.Title,
		XLabel: "useful FO4 per stage",
		Series: map[string][]float64{},
	}
	for _, p := range d.Sweep.Points {
		out.X = append(out.X, p.Useful)
		out.Series["integer"] = append(out.Series["integer"], p.GroupBIPS[trace.Integer])
		out.Series["vector-fp"] = append(out.Series["vector-fp"], p.GroupBIPS[trace.VectorFP])
		out.Series["non-vector-fp"] = append(out.Series["non-vector-fp"], p.GroupBIPS[trace.NonVectorFP])
		out.Series["all"] = append(out.Series["all"], p.AllBIPS)
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the loop-sensitivity family, one series per loop.
func (f Figure8Result) JSON() ([]byte, error) {
	out := SeriesJSON{
		Title:  "Figure 8: relative integer IPC vs loop extension",
		XLabel: "cycles added to the loop",
		Series: map[string][]float64{},
	}
	for _, p := range f.Sweeps[0].Points {
		out.X = append(out.X, float64(p.Extra))
	}
	for _, s := range f.Sweeps {
		key := s.Loop.String()
		for _, p := range s.Points {
			out.Series[key] = append(out.Series[key], p.RelativeIPC[trace.Integer])
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the segmented-window sweep.
func (f Figure11Result) JSON() ([]byte, error) {
	out := SeriesJSON{
		Title:  "Figure 11: relative IPC vs window pipeline depth",
		XLabel: "wakeup stages",
		Series: map[string][]float64{},
	}
	for i, p := range f.Points {
		out.X = append(out.X, float64(p.Stages))
		out.Series["integer"] = append(out.Series["integer"], p.RelativeIPC[trace.Integer])
		out.Series["fp"] = append(out.Series["fp"], FPRelative(p))
		out.Series["naive-integer"] = append(out.Series["naive-integer"],
			f.Naive[i].RelativeIPC[trace.Integer])
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the headline numbers.
func (h Headline) JSON() ([]byte, error) {
	return json.MarshalIndent(h, "", "  ")
}

// JSON exports Figure 1's rows.
func (f Figure1) JSON() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}

// JSON exports the overhead-sensitivity family, one integer-BIPS series
// per overhead value.
func (f Figure6Result) JSON() ([]byte, error) {
	out := SeriesJSON{
		Title:  "Figure 6: integer BIPS vs clock period per overhead",
		XLabel: "useful FO4 per stage",
		Series: map[string][]float64{},
	}
	for _, p := range f.Sweeps[0].Points {
		out.X = append(out.X, p.Useful)
	}
	for i, s := range f.Sweeps {
		key := fmt.Sprintf("overhead-%g-fo4", f.OverheadsFO4[i])
		for _, p := range s.Points {
			out.Series[key] = append(out.Series[key], p.GroupBIPS[trace.Integer])
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the capacity-optimization outcome per clock point.
func (f Figure7Result) JSON() ([]byte, error) {
	type point struct {
		Useful       float64 `json:"useful_fo4"`
		BaselineBIPS float64 `json:"baseline_bips"`
		BestBIPS     float64 `json:"optimized_bips"`
		DL1KB        int     `json:"dl1_kb"`
		L2KB         int     `json:"l2_kb"`
		IntWin       int     `json:"int_window"`
		FPWin        int     `json:"fp_window"`
	}
	out := struct {
		Title  string  `json:"title"`
		Points []point `json:"points"`
	}{Title: "Figure 7: structure capacities optimized per clock"}
	for _, p := range f.Points {
		out.Points = append(out.Points, point{
			Useful: p.Useful, BaselineBIPS: p.BaselineBIPS, BestBIPS: p.BestBIPS,
			DL1KB: p.Best.DL1KB, L2KB: p.Best.L2KB,
			IntWin: p.Best.IntWin, FPWin: p.Best.FPWin,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the partitioned-selection evaluation.
func (s SelectResult) JSON() ([]byte, error) {
	out := struct {
		Title       string             `json:"title"`
		RelativeIPC map[string]float64 `json:"relative_ipc"`
		RelativeAll float64            `json:"relative_all"`
	}{
		Title:       "Section 5.2: 4-stage window with partitioned selection",
		RelativeIPC: map[string]float64{},
		RelativeAll: s.Res.RelativeAll,
	}
	for _, g := range trace.Groups() {
		if v, ok := s.Res.RelativeIPC[g]; ok {
			out.RelativeIPC[g.String()] = v
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the Cray-1S comparison as the integer series.
func (c CrayResult) JSON() ([]byte, error) {
	out := SeriesJSON{
		Title:  "Section 4.2: in-order pipeline with Cray-1S memory",
		XLabel: "useful FO4 per stage",
		Series: map[string][]float64{},
	}
	for _, p := range c.Sweep.Points {
		out.X = append(out.X, p.Useful)
		out.Series["integer"] = append(out.Series["integer"], p.GroupBIPS[trace.Integer])
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the ablation rows plus the prefetch substitution.
func (a AblationResult) JSON() ([]byte, error) {
	type row struct {
		Name     string  `json:"name"`
		AllBIPS  float64 `json:"all_bips"`
		Relative float64 `json:"relative"`
	}
	out := struct {
		Title           string  `json:"title"`
		Rows            []row   `json:"rows"`
		PrefetchWith    float64 `json:"prefetch_with_bips"`
		PrefetchWithout float64 `json:"prefetch_without_bips"`
	}{
		Title:           "Ablation study at the 6 FO4 optimum",
		PrefetchWith:    a.PrefetchWith,
		PrefetchWithout: a.PrefetchWithout,
	}
	for _, p := range a.Points {
		out.Rows = append(out.Rows, row{Name: p.Name, AllBIPS: p.AllBIPS, Relative: p.Relative})
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the wire study as paired integer series.
func (w WireStudyResult) JSON() ([]byte, error) {
	out := SeriesJSON{
		Title:  "Wire-delay study: integer BIPS with and without wire delays",
		XLabel: "useful FO4 per stage",
		Series: map[string][]float64{},
	}
	for i, p := range w.Without.Points {
		out.X = append(out.X, p.Useful)
		out.Series["no-wires"] = append(out.Series["no-wires"], p.GroupBIPS[trace.Integer])
		out.Series["with-wires"] = append(out.Series["with-wires"],
			w.With.Points[i].GroupBIPS[trace.Integer])
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the workload characterization rows.
func (w WorkloadTable) JSON() ([]byte, error) {
	type row struct {
		Name           string  `json:"name"`
		Group          string  `json:"group"`
		LoadFrac       float64 `json:"load_frac"`
		StoreFrac      float64 `json:"store_frac"`
		BranchFrac     float64 `json:"branch_frac"`
		MeanDepDist    float64 `json:"mean_dep_dist"`
		MispredictRate float64 `json:"mispredict_rate"`
		L1MissRate     float64 `json:"l1_miss_rate"`
		DRAMRate       float64 `json:"dram_rate"`
	}
	rows := make([]row, 0, len(w.Rows))
	for _, r := range w.Rows {
		rows = append(rows, row{
			Name: r.Name, Group: r.Group.String(),
			LoadFrac: r.LoadFrac, StoreFrac: r.StoreFrac, BranchFrac: r.BranchFrac,
			MeanDepDist: r.MeanDepDist, MispredictRate: r.MispredictRate,
			L1MissRate: r.L1MissRate, DRAMRate: r.DRAMRate,
		})
	}
	return json.MarshalIndent(struct {
		Title string `json:"title"`
		Rows  []row  `json:"rows"`
	}{"Table 2: synthetic workload characterization", rows}, "", "  ")
}
