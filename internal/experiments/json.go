package experiments

import (
	"encoding/json"

	"repro/internal/trace"
)

// Machine-readable export: every experiment result marshals to a stable
// JSON shape so downstream tooling (plotting scripts, regression trackers)
// can consume the reproduction without parsing the rendered text.

// SeriesJSON is a generic (x, series...) export for figure-shaped results.
type SeriesJSON struct {
	Title  string               `json:"title"`
	XLabel string               `json:"x_label"`
	X      []float64            `json:"x"`
	Series map[string][]float64 `json:"series"`
}

// JSON exports the depth sweep as one series per benchmark group.
func (d DepthSweepResult) JSON() ([]byte, error) {
	out := SeriesJSON{
		Title:  d.Title,
		XLabel: "useful FO4 per stage",
		Series: map[string][]float64{},
	}
	for _, p := range d.Sweep.Points {
		out.X = append(out.X, p.Useful)
		out.Series["integer"] = append(out.Series["integer"], p.GroupBIPS[trace.Integer])
		out.Series["vector-fp"] = append(out.Series["vector-fp"], p.GroupBIPS[trace.VectorFP])
		out.Series["non-vector-fp"] = append(out.Series["non-vector-fp"], p.GroupBIPS[trace.NonVectorFP])
		out.Series["all"] = append(out.Series["all"], p.AllBIPS)
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the loop-sensitivity family, one series per loop.
func (f Figure8Result) JSON() ([]byte, error) {
	out := SeriesJSON{
		Title:  "Figure 8: relative integer IPC vs loop extension",
		XLabel: "cycles added to the loop",
		Series: map[string][]float64{},
	}
	for _, p := range f.Sweeps[0].Points {
		out.X = append(out.X, float64(p.Extra))
	}
	for _, s := range f.Sweeps {
		key := s.Loop.String()
		for _, p := range s.Points {
			out.Series[key] = append(out.Series[key], p.RelativeIPC[trace.Integer])
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the segmented-window sweep.
func (f Figure11Result) JSON() ([]byte, error) {
	out := SeriesJSON{
		Title:  "Figure 11: relative IPC vs window pipeline depth",
		XLabel: "wakeup stages",
		Series: map[string][]float64{},
	}
	for i, p := range f.Points {
		out.X = append(out.X, float64(p.Stages))
		out.Series["integer"] = append(out.Series["integer"], p.RelativeIPC[trace.Integer])
		out.Series["fp"] = append(out.Series["fp"], FPRelative(p))
		out.Series["naive-integer"] = append(out.Series["naive-integer"],
			f.Naive[i].RelativeIPC[trace.Integer])
	}
	return json.MarshalIndent(out, "", "  ")
}

// JSON exports the headline numbers.
func (h Headline) JSON() ([]byte, error) {
	return json.MarshalIndent(h, "", "  ")
}

// JSON exports Figure 1's rows.
func (f Figure1) JSON() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}
