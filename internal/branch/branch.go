// Package branch implements the Alpha 21264's tournament branch predictor:
// a local predictor (per-branch history indexing a table of 3-bit
// counters), a global predictor (12 bits of path history indexing 2-bit
// counters), and a choice predictor that learns which of the two to trust
// for each global history. The pipeline simulators drive it with the
// synthetic branch streams from internal/trace, so misprediction rates are
// an emergent property of branch dynamics versus predictor structure, not
// an input parameter.
package branch

// Table sizes of the 21264 predictor.
const (
	localHistEntries = 1024
	localHistBits    = 10
	localPredEntries = 1 << localHistBits
	globalEntries    = 4096
	globalHistBits   = 12
	choiceEntries    = 4096
)

// Tournament is a 21264-style hybrid predictor.
type Tournament struct {
	localHist  [localHistEntries]uint16 // 10-bit per-branch histories
	localPred  [localPredEntries]uint8  // 3-bit saturating counters
	globalPred [globalEntries]uint8     // 2-bit saturating counters
	choice     [choiceEntries]uint8     // 2-bit: high = trust global
	ghist      uint32                   // global path history

	// Statistics.
	Lookups       uint64
	Mispredicts   uint64
	globalCorrect uint64
	localCorrect  uint64
}

// New returns a predictor with weakly-initialized tables.
func New() *Tournament {
	t := &Tournament{}
	t.Reset()
	return t
}

// Reset restores the boot state New returns — weakly-initialized tables,
// cleared histories and statistics — so one allocation can be reused
// across simulation runs (the pipeline scratch state relies on Reset
// being indistinguishable from a fresh predictor).
func (t *Tournament) Reset() {
	for i := range t.localHist {
		t.localHist[i] = 0
	}
	for i := range t.localPred {
		t.localPred[i] = 3 // weakly not-taken in 3-bit space
	}
	for i := range t.globalPred {
		t.globalPred[i] = 1
	}
	for i := range t.choice {
		t.choice[i] = 1 // weakly prefer local, as the 21264 boots
	}
	t.ghist = 0
	t.Lookups = 0
	t.Mispredicts = 0
	t.globalCorrect = 0
	t.localCorrect = 0
}

func (t *Tournament) localIndex(pc uint32) int {
	return int(pc>>2) & (localHistEntries - 1)
}

// Predict returns the predicted direction for the branch at pc.
func (t *Tournament) Predict(pc uint32) bool {
	li := t.localIndex(pc)
	lp := t.localPred[t.localHist[li]&(localPredEntries-1)] >= 4
	gi := int(t.ghist) & (globalEntries - 1)
	gp := t.globalPred[gi] >= 2
	if t.choice[int(t.ghist)&(choiceEntries-1)] >= 2 {
		return gp
	}
	return lp
}

// Update trains the predictor with the branch's true outcome and returns
// whether the prediction it would have made was correct. Callers that
// already called Predict should pass its result via predicted to keep the
// accounting exact.
func (t *Tournament) Update(pc uint32, taken, predicted bool) {
	t.Lookups++
	if taken != predicted {
		t.Mispredicts++
	}

	li := t.localIndex(pc)
	lIdx := int(t.localHist[li]) & (localPredEntries - 1)
	lp := t.localPred[lIdx] >= 4
	gi := int(t.ghist) & (globalEntries - 1)
	gp := t.globalPred[gi] >= 2
	ci := int(t.ghist) & (choiceEntries - 1)

	// Train the choice predictor toward whichever component was right.
	if gp != lp {
		if gp == taken {
			if t.choice[ci] < 3 {
				t.choice[ci]++
			}
			t.globalCorrect++
		} else {
			if t.choice[ci] > 0 {
				t.choice[ci]--
			}
			t.localCorrect++
		}
	}

	// Train the component counters.
	if taken {
		if t.localPred[lIdx] < 7 {
			t.localPred[lIdx]++
		}
		if t.globalPred[gi] < 3 {
			t.globalPred[gi]++
		}
	} else {
		if t.localPred[lIdx] > 0 {
			t.localPred[lIdx]--
		}
		if t.globalPred[gi] > 0 {
			t.globalPred[gi]--
		}
	}

	// Update histories.
	t.localHist[li] = (t.localHist[li]<<1 | b2u16(taken)) & (localPredEntries - 1)
	t.ghist = (t.ghist<<1 | uint32(b2u16(taken))) & (1<<globalHistBits - 1)
}

// MispredictRate returns the fraction of mispredicted lookups so far.
func (t *Tournament) MispredictRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Mispredicts) / float64(t.Lookups)
}

func b2u16(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}
