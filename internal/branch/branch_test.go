package branch

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// run drives the predictor with every branch of a synthetic benchmark and
// returns the misprediction rate.
func run(t *testing.T, name string, n int) float64 {
	t.Helper()
	p, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	tr := p.Generate(n, 1234)
	pred := New()
	for _, in := range tr.Insts {
		if in.Class != isa.Branch {
			continue
		}
		guess := pred.Predict(in.PC)
		pred.Update(in.PC, in.Taken, guess)
	}
	return pred.MispredictRate()
}

func TestAlwaysTakenLearned(t *testing.T) {
	pred := New()
	miss := 0
	for i := 0; i < 1000; i++ {
		g := pred.Predict(0x400)
		if !g {
			miss++
		}
		pred.Update(0x400, true, g)
	}
	// The first few outcomes walk the local history through fresh counter
	// entries, so a short warmup tail of misses is expected.
	if miss > 20 {
		t.Errorf("always-taken branch mispredicted %d/1000 times", miss)
	}
}

func TestLoopBranchLearnedByLocalHistory(t *testing.T) {
	// A loop with trip count 5 (TTTTN repeating) is perfectly learnable by
	// 10 bits of local history once warm.
	pred := New()
	pattern := []bool{true, true, true, true, false}
	miss := 0
	for i := 0; i < 5000; i++ {
		taken := pattern[i%len(pattern)]
		g := pred.Predict(0x800)
		if i > 1000 && g != taken {
			miss++
		}
		pred.Update(0x800, taken, g)
	}
	rate := float64(miss) / 4000
	if rate > 0.05 {
		t.Errorf("trip-5 loop mispredict rate = %.3f after warmup, want < 0.05", rate)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	// A 50/50 random branch cannot be predicted: rate should be near 0.5,
	// and certainly above 0.3.
	pred := New()
	r := trace.NewRNG(77)
	for i := 0; i < 20000; i++ {
		taken := r.Float64() < 0.5
		g := pred.Predict(0xC00)
		pred.Update(0xC00, taken, g)
	}
	if rate := pred.MispredictRate(); rate < 0.3 || rate > 0.7 {
		t.Errorf("random branch mispredict rate = %.3f, want ~0.5", rate)
	}
}

func TestBiasedBranchBeatsChance(t *testing.T) {
	// An 80%-taken branch should be predicted taken most of the time:
	// rate near 20%, well below 35%.
	pred := New()
	r := trace.NewRNG(78)
	for i := 0; i < 20000; i++ {
		taken := r.Float64() < 0.8
		g := pred.Predict(0x1000)
		pred.Update(0x1000, taken, g)
	}
	if rate := pred.MispredictRate(); rate > 0.35 {
		t.Errorf("80%% biased branch mispredict rate = %.3f, want < 0.35", rate)
	}
}

func TestSuiteMispredictRatesByGroup(t *testing.T) {
	// The paper's premise: integer codes mispredict far more often than
	// vector FP codes (whose branches are long loops). Check the group
	// character on representative benchmarks.
	gcc := run(t, "176.gcc", 150000)
	swim := run(t, "171.swim", 150000)
	if gcc < 0.04 || gcc > 0.22 {
		t.Errorf("gcc mispredict rate = %.3f, want a SPECint-like 4-22%%", gcc)
	}
	if swim > 0.03 {
		t.Errorf("swim mispredict rate = %.3f, want < 3%% (loop-dominated)", swim)
	}
	if swim >= gcc {
		t.Errorf("vector code (%.3f) mispredicts as much as integer (%.3f)", swim, gcc)
	}
}

func TestChoicePredictorArbitrates(t *testing.T) {
	// Feed a branch that only global history can catch (direction equals
	// the previous different branch's outcome) and confirm the tournament
	// beats a pure local predictor's chance-level performance.
	pred := New()
	r := trace.NewRNG(99)
	last := false
	miss := 0
	const n = 30000
	for i := 0; i < n; i++ {
		// Branch A: random; Branch B: copies A's last outcome.
		a := r.Float64() < 0.5
		ga := pred.Predict(0x2000)
		pred.Update(0x2000, a, ga)
		b := a
		_ = last
		gb := pred.Predict(0x2400)
		if i > 5000 && gb != b {
			miss++
		}
		pred.Update(0x2400, b, gb)
		last = a
	}
	rate := float64(miss) / (n - 5000)
	if rate > 0.15 {
		t.Errorf("correlated branch mispredict rate = %.3f; global history not helping", rate)
	}
}

func TestStatisticsAccounting(t *testing.T) {
	pred := New()
	for i := 0; i < 100; i++ {
		g := pred.Predict(4)
		pred.Update(4, i%2 == 0, g)
	}
	if pred.Lookups != 100 {
		t.Errorf("Lookups = %d, want 100", pred.Lookups)
	}
	if pred.Mispredicts > pred.Lookups {
		t.Error("more mispredicts than lookups")
	}
}
