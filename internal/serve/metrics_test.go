package serve

// Tests for the /metrics surface and request tracing: exposition
// validity, agreement with /stats, the golden family shape, request-ID
// propagation, and — the invariant everything else rides on —
// telemetry inertness: sweep bodies are byte-identical with
// observability on or off.

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/promtext"
)

// scrapeMetrics GETs /metrics and returns the body.
func scrapeMetrics(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promtext.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, promtext.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	return body
}

// metricValue finds one sample line ("name 3" or `name{label="x"} 3`)
// and returns its value.
func metricValue(t *testing.T, exposition []byte, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(exposition), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 || line[:i] != sample {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample %s has bad value %q", sample, line[i+1:])
		}
		return v
	}
	t.Fatalf("sample %q not found in exposition:\n%s", sample, exposition)
	return 0
}

// TestMetricsAgreeWithStats is the acceptance criterion: after real
// traffic, /metrics is valid exposition whose counters agree with
// /stats — they read the same recorder and store, so any disagreement
// is a double-count.
func TestMetricsAgreeWithStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"useful":[4,8],"benchmarks":["gcc","swim"],"instructions":4000}`
	for i := 0; i < 2; i++ { // second pass hits the cache on all 4 points
		resp := postSweep(t, ts.URL, body)
		if _, done := readStream(t, resp); !done {
			t.Fatal("stream ended without the done trailer")
		}
	}

	exp := scrapeMetrics(t, ts.URL)
	if err := promtext.Lint(exp); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, exp)
	}
	st := getStats(t, ts.URL)

	checks := []struct {
		sample string
		want   float64
	}{
		{"sweep_requests_total", float64(st.Requests)},
		{"sweep_requests_rejected_total", float64(st.Rejected)},
		{"sweep_point_cache_hits_total", float64(st.CacheHits)},
		{"sweep_point_cache_misses_total", float64(st.CacheMisses)},
		{"sweep_points_done_total", float64(st.PointsDone)},
		{"sweep_points_dropped_total", float64(st.PointsDropped)},
		{"sweep_dedup_joins_total", float64(st.DedupJoins)},
		{"sweep_client_disconnects_total", float64(st.Disconnects)},
		{"store_mem_entries", float64(st.CacheSize)},
		{"store_mem_bytes", float64(st.CacheBytes)},
		{"store_evictions_total", float64(st.CacheEvictions)},
		{"sweep_queue_depth", float64(st.QueueDepth)},
		{"sweep_running_points", float64(st.RunningPoints)},
		{"sweep_draining", 0},
	}
	for _, c := range checks {
		if got := metricValue(t, exp, c.sample); got != c.want {
			t.Errorf("%s = %v, /stats says %v", c.sample, got, c.want)
		}
	}
	if st.Requests != 2 || st.CacheHits != 4 || st.CacheMisses != 4 {
		t.Errorf("unexpected traffic shape: requests=%d hits=%d misses=%d",
			st.Requests, st.CacheHits, st.CacheMisses)
	}
	if got := metricValue(t, exp, "sweep_request_seconds_count"); got != 2 {
		t.Errorf("sweep_request_seconds_count = %v, want 2 (one per sweep)", got)
	}
	if got := metricValue(t, exp, "sweep_stream_seconds_count"); got != 2 {
		t.Errorf("sweep_stream_seconds_count = %v, want 2", got)
	}
	if got := metricValue(t, exp, "sweep_queue_wait_seconds_count"); got != 4 {
		t.Errorf("sweep_queue_wait_seconds_count = %v, want 4 (one per simulation)", got)
	}
	if got := metricValue(t, exp, "sweep_http_requests_inflight"); got != 1 {
		t.Errorf("sweep_http_requests_inflight = %v, want 1 (the scrape itself)", got)
	}
	if !strings.Contains(string(exp), `build_info{code_version="`) {
		t.Error("build_info carries no code_version label")
	}
}

// TestMetricsGoldenShape pins the exposition's family shape — names,
// HELP text, TYPE — against a golden file. Values are traffic-dependent
// and excluded. Refresh with UPDATE_GOLDEN=1 go test ./internal/serve
// -run GoldenShape.
func TestMetricsGoldenShape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	exp := scrapeMetrics(t, ts.URL)

	var shape strings.Builder
	for _, line := range strings.Split(string(exp), "\n") {
		if strings.HasPrefix(line, "#") {
			shape.WriteString(line)
			shape.WriteByte('\n')
		}
	}
	golden := filepath.Join("testdata", "metrics_shape.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(shape.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if shape.String() != string(want) {
		t.Errorf("metrics shape drifted from %s:\n--- got ---\n%s--- want ---\n%s",
			golden, shape.String(), want)
	}
}

// TestMetricsDisabled: DisableMetrics serves 404 on /metrics and the
// daemon keeps working; tracing (request IDs) stays on.
func TestMetricsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, DisableMetrics: true})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with metrics disabled: status = %d, want 404", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("request ID missing with metrics disabled; tracing must stay on")
	}
	sweep := postSweep(t, ts.URL, `{"useful":[8],"benchmarks":["gcc"],"instructions":4000}`)
	if lines, done := readStream(t, sweep); !done || len(lines) != 1 {
		t.Fatalf("sweep with metrics disabled: done=%v points=%d", done, len(lines))
	}
}

// rawSweepBody POSTs one sweep and returns the raw response body bytes.
func rawSweepBody(t *testing.T, url, body, requestID string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d, want 200", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// syncWriter makes a bytes.Buffer safe for the slog handler, which is
// written from both the middleware and scheduler worker goroutines.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestTelemetryInertness is the regression test the tentpole demands:
// sweep NDJSON bodies are byte-identical whether observability is fully
// on (metrics, debug logging, slow-request threshold, inbound request
// ID) or fully off. Telemetry observes the serving path; it never
// shapes it.
func TestTelemetryInertness(t *testing.T) {
	body := `{"useful_min":4,"useful_max":8,"useful_step":2,"benchmarks":["gcc","mcf"],"instructions":4000}`
	version := DefaultCodeVersion()

	var logs syncWriter
	loud := slog.New(slog.NewTextHandler(&logs, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, tsOn := newTestServer(t, Config{
		Workers:     2,
		CodeVersion: version,
		SlowRequest: time.Nanosecond, // every request logs as slow
		Log:         loud,
	})
	_, tsOff := newTestServer(t, Config{
		Workers:        1,
		CodeVersion:    version,
		DisableMetrics: true,
	})

	on := rawSweepBody(t, tsOn.URL, body, "inertness-test-id")
	scrapeMetrics(t, tsOn.URL) // a scrape between sweeps must not perturb anything
	onAgain := rawSweepBody(t, tsOn.URL, body, "")
	off := rawSweepBody(t, tsOff.URL, body, "")

	if !bytes.Equal(on, off) {
		t.Errorf("sweep body differs with observability on vs off:\n--- on ---\n%s--- off ---\n%s", on, off)
	}
	if !bytes.Equal(on, onAgain) {
		t.Errorf("sweep body differs between cold and cached pass:\n--- first ---\n%s--- second ---\n%s", on, onAgain)
	}
	if !strings.Contains(logs.String(), "slow request") {
		t.Error("no slow-request log despite a 1ns threshold")
	}
	if !strings.Contains(logs.String(), "inertness-test-id") {
		t.Error("inbound request ID never reached the access log")
	}
	exp := scrapeMetrics(t, tsOn.URL)
	if got := metricValue(t, exp, "sweep_slow_requests_total"); got < 2 {
		t.Errorf("sweep_slow_requests_total = %v, want >= 2", got)
	}
}

// TestRequestIDLifecycle: generated when absent, echoed when valid,
// replaced when hostile.
func TestRequestIDLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	gen := resp.Header.Get("X-Request-Id")
	if len(gen) != 16 {
		t.Errorf("generated request ID %q, want 16 hex chars", gen)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-supplied.id:7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-supplied.id:7" {
		t.Errorf("valid inbound ID not echoed: got %q", got)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "evil=\"injection\" level")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); strings.Contains(got, "evil") || len(got) != 16 {
		t.Errorf("hostile inbound ID not replaced: got %q", got)
	}
}

// TestRejectReasonsCounted: each reject path lands in its labelled
// cell, and the total matches /stats.
func TestRejectReasonsCounted(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueLimit: 2})

	resp := postSweep(t, ts.URL, `{"useful":[2,3,4,5,6],"benchmarks":["gcc"],"instructions":4000}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	resp = postSweep(t, ts.URL, `{`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", resp.StatusCode)
	}
	srv.BeginDrain()
	resp = postSweep(t, ts.URL, `{"useful":[8],"benchmarks":["gcc"],"instructions":4000}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}

	exp := scrapeMetrics(t, ts.URL)
	if err := promtext.Lint(exp); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, reason := range []string{"queue_full", "bad_request", "draining"} {
		if got := metricValue(t, exp, `sweep_rejects_total{reason="`+reason+`"}`); got != 1 {
			t.Errorf(`sweep_rejects_total{reason=%q} = %v, want 1`, reason, got)
		}
	}
	st := getStats(t, ts.URL)
	if st.Rejected != 3 {
		t.Errorf("stats rejected = %d, want 3", st.Rejected)
	}
	if got := metricValue(t, exp, "sweep_requests_rejected_total"); got != 3 {
		t.Errorf("sweep_requests_rejected_total = %v, want 3", got)
	}
	if got := metricValue(t, exp, "sweep_draining"); got != 1 {
		t.Errorf("sweep_draining = %v, want 1 after BeginDrain", got)
	}
}
