package serve

// The /metrics surface. Everything here is derived observation: the
// counters a scrape renders are either read at scrape time from the same
// obs.Recorder and store.Stats() that back /stats (so the two endpoints
// can never disagree — one source of truth, two renderings), or are
// serving-layer instruments (latency histograms, reject reasons) that
// /stats never carried. Nothing in this file may influence a sweep body;
// the telemetry-inertness test pins that.

import (
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/promtext"
)

// serverMetrics bundles the daemon's direct instruments. It is always
// non-nil on a Server; with metrics disabled the registry and every
// instrument are nil and each call no-ops (promtext's nil-safety), so
// call sites never guard.
type serverMetrics struct {
	reg *promtext.Registry

	reqSeconds    *promtext.Histogram  // sweep_request_seconds
	streamSeconds *promtext.Histogram  // sweep_stream_seconds
	queueWait     *promtext.Histogram  // sweep_queue_wait_seconds
	rejects       *promtext.CounterVec // sweep_rejects_total{reason}
	streamBytes   *promtext.Counter    // sweep_stream_bytes_total
	slow          *promtext.Counter    // sweep_slow_requests_total
	httpInflight  *promtext.Gauge      // sweep_http_requests_inflight
}

// counterFromRec bridges one obs.Recorder counter into the registry,
// read at scrape time.
func counterFromRec(reg *promtext.Registry, rec *obs.Recorder, name, help, key string) {
	reg.NewCounterFunc(name, help, func() float64 { return float64(rec.Counter(key)) })
}

// newServerMetrics builds the registry for one Server. The collectors
// close over s and read s.sched / s.cfg.Store lazily at scrape time, so
// this runs before the scheduler exists; disabled metrics produce a nil
// registry whose Handler serves 404.
func newServerMetrics(enabled bool, s *Server) *serverMetrics {
	var reg *promtext.Registry
	if enabled {
		reg = promtext.NewRegistry()
	}
	m := &serverMetrics{reg: reg}

	// Serving-path instruments.
	m.reqSeconds = reg.NewHistogram("sweep_request_seconds",
		"End-to-end /sweep request latency in seconds, rejects included.", nil)
	m.streamSeconds = reg.NewHistogram("sweep_stream_seconds",
		"NDJSON stream duration in seconds, from admission to last byte.", nil)
	m.queueWait = reg.NewHistogram("sweep_queue_wait_seconds",
		"Seconds a point waited between admission and simulation start.", nil)
	m.rejects = reg.NewCounterVec("sweep_rejects_total",
		"Rejected /sweep requests by reason.", "reason")
	m.streamBytes = reg.NewCounter("sweep_stream_bytes_total",
		"Response-body bytes written by /sweep streams.")
	m.slow = reg.NewCounter("sweep_slow_requests_total",
		"Requests slower than the -slow-request threshold.")
	m.httpInflight = reg.NewGauge("sweep_http_requests_inflight",
		"HTTP requests currently being served, all endpoints.")

	if reg == nil {
		return m
	}

	// Request/point economy: the same recorder counters /stats renders.
	rec := s.rec
	counterFromRec(reg, rec, "sweep_requests_total",
		"Admitted /sweep requests.", "requests")
	counterFromRec(reg, rec, "sweep_requests_rejected_total",
		"Rejected /sweep requests, all reasons.", "requests_rejected")
	counterFromRec(reg, rec, "sweep_client_disconnects_total",
		"Streams dropped by the client before completion.", "client_disconnects")
	counterFromRec(reg, rec, "sweep_points_done_total",
		"Points simulated and published.", "points_done")
	counterFromRec(reg, rec, "sweep_points_dropped_total",
		"Admitted points abandoned by every requester before running.", "points_dropped")
	counterFromRec(reg, rec, "sweep_simulations_total",
		"Simulations actually executed (misses that ran).", "simulations")
	counterFromRec(reg, rec, "sweep_point_cache_hits_total",
		"Points served from the result store or joined in flight.", "point_cache_hits")
	counterFromRec(reg, rec, "sweep_point_cache_misses_total",
		"Points that required a fresh simulation.", "point_cache_misses")
	counterFromRec(reg, rec, "sweep_dedup_joins_total",
		"Singleflight joins onto an already in-flight point.", "dedup_joins")
	counterFromRec(reg, rec, "sweep_delta_pulls_total",
		"Completed GET /results delta-sync pulls.", "delta_pulls")

	// Live queue gauges, read from the scheduler at scrape time.
	reg.NewGaugeFunc("sweep_queue_depth",
		"Admitted points waiting for a batch.", func() float64 {
			q, _, _, _ := s.sched.gauges()
			return float64(q)
		})
	reg.NewGaugeFunc("sweep_running_points",
		"Points in the currently dispatched batch.", func() float64 {
			_, r, _, _ := s.sched.gauges()
			return float64(r)
		})
	reg.NewGaugeFunc("sweep_inflight_points",
		"Queued plus running points.", func() float64 {
			q, r, _, _ := s.sched.gauges()
			return float64(q + r)
		})
	reg.NewGaugeFunc("sweep_draining",
		"1 once BeginDrain has been called, else 0.", func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.NewGaugeFunc("sweep_uptime_seconds",
		"Seconds since the server was built.", func() float64 {
			return time.Since(s.start).Seconds()
		})

	// Store economy, one Stats() snapshot per family read. Counter-like
	// fields render as counters (they are monotone inside one process);
	// occupancy fields as gauges.
	reg.NewGaugeFunc("store_mem_entries",
		"Result lines resident in the warm layer.",
		func() float64 { return float64(s.cfg.Store.Stats().MemEntries) })
	reg.NewGaugeFunc("store_mem_bytes",
		"Bytes of result lines resident in the warm layer.",
		func() float64 { return float64(s.cfg.Store.Stats().MemBytes) })
	reg.NewCounterFunc("store_evictions_total",
		"Warm-layer LRU evictions.",
		func() float64 { return float64(s.cfg.Store.Stats().Evictions) })
	reg.NewCounterFunc("store_warm_hits_total",
		"Hits served from warm-start replayed lines.",
		func() float64 { return float64(s.cfg.Store.Stats().WarmHits) })
	reg.NewCounterFunc("store_disk_hits_total",
		"Hits re-read from a segment after a memory miss.",
		func() float64 { return float64(s.cfg.Store.Stats().DiskHits) })
	reg.NewGaugeFunc("store_disk_entries",
		"Distinct keys indexed in the segment log.",
		func() float64 { return float64(s.cfg.Store.Stats().DiskEntries) })
	reg.NewGaugeFunc("store_segments",
		"Live segment files.",
		func() float64 { return float64(s.cfg.Store.Stats().Segments) })
	reg.NewGaugeFunc("store_bytes",
		"Total bytes across live segment files.",
		func() float64 { return float64(s.cfg.Store.Stats().StoreBytes) })
	reg.NewCounterFunc("store_compactions_total",
		"Sealed segments retired by the compaction coordinator.",
		func() float64 { return float64(s.cfg.Store.Stats().Compactions) })
	reg.NewCounterFunc("store_append_errors_total",
		"Failed segment appends (result stayed memory-only).",
		func() float64 { return float64(s.cfg.Store.Stats().AppendErrors) })
	reg.NewCounterFunc("store_read_errors_total",
		"Indexed records that could not be re-read (served as a miss).",
		func() float64 { return float64(s.cfg.Store.Stats().ReadErrors) })
	reg.NewGaugeFunc("store_cursor",
		"Highest assigned delta-sync cursor.",
		func() float64 { return float64(s.cfg.Store.Stats().Cursor) })

	reg.NewInfo("build_info",
		"Build metadata; code_version is the cache-key version stamp.",
		map[string]string{
			"code_version": s.cfg.CodeVersion,
			"go":           runtime.Version(),
		})
	return m
}
