package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/clitest"
)

// newTestServer starts a Server over httptest and tears both down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postSweep sends one sweep request and returns the response.
func postSweep(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /sweep: %v", err)
	}
	return resp
}

// readStreamErr consumes an NDJSON sweep response: per-point lines keyed
// by their content address, plus whether the done trailer arrived. It is
// goroutine-safe (no testing.T), for use from concurrent clients.
func readStreamErr(resp *http.Response) (lines map[string]string, done bool, err error) {
	defer resp.Body.Close()
	lines = map[string]string{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var probe struct {
			Key   string `json:"key"`
			Error string `json:"error"`
			Done  bool   `json:"done"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			return nil, false, fmt.Errorf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Done {
			done = true
			continue
		}
		if probe.Error != "" {
			return nil, false, fmt.Errorf("stream error line: %s", line)
		}
		if _, dup := lines[probe.Key]; dup {
			return nil, false, fmt.Errorf("key %s streamed twice", probe.Key)
		}
		lines[probe.Key] = line
	}
	return lines, done, sc.Err()
}

// readStream is readStreamErr for direct (non-goroutine) test use.
func readStream(t *testing.T, resp *http.Response) (map[string]string, bool) {
	t.Helper()
	lines, done, err := readStreamErr(resp)
	if err != nil {
		t.Fatal(err)
	}
	return lines, done
}

func getStats(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	return st
}

func TestSweepStreamsEveryPoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postSweep(t, ts.URL, `{"useful":[4,8],"benchmarks":["gcc","swim"],"instructions":4000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	lines, done := readStream(t, resp)
	if !done {
		t.Fatal("stream ended without the done trailer")
	}
	if len(lines) != 4 {
		t.Fatalf("got %d points, want 4 (2 depths x 2 benchmarks)", len(lines))
	}
	for key, line := range lines {
		var pr PointResult
		if err := json.Unmarshal([]byte(line), &pr); err != nil {
			t.Fatalf("bad point line: %v", err)
		}
		if pr.Key != key || pr.IPC <= 0 || pr.BIPS <= 0 || pr.FreqMHz <= 0 {
			t.Fatalf("implausible point result: %s", line)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxPointsPerRequest: 8})
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty grid", `{}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown field", `{"useful":[8],"bogus":1}`, http.StatusBadRequest},
		{"unknown benchmark", `{"useful":[8],"benchmarks":["nope"]}`, http.StatusBadRequest},
		{"unknown machine", `{"useful":[8],"machine":"quantum"}`, http.StatusBadRequest},
		{"bad range", `{"useful_min":8,"useful_max":4}`, http.StatusBadRequest},
		{"range step below one ULP", `{"useful_min":1,"useful_max":64,"useful_step":5e-324}`, http.StatusBadRequest},
		{"range max beyond point bound", `{"useful_min":1,"useful_max":1e18}`, http.StatusBadRequest},
		{"range expands past limit", `{"useful_min":1,"useful_max":64,"useful_step":1e-9}`, http.StatusBadRequest},
		{"stages without window", `{"useful":[8],"window_stages":[4]}`, http.StatusBadRequest},
		{"too many points", `{"useful":[2,3,4,5,6],"benchmarks":["gcc","swim"]}`, http.StatusBadRequest},
		{"instructions over limit", `{"useful":[8],"instructions":2000000}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postSweep(t, ts.URL, c.body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}

	resp, err := http.Get(ts.URL + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sweep status = %d, want 405", resp.StatusCode)
	}
}

func TestAdmissionBoundsQueueDepth(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueLimit: 2})
	// Five fresh points cannot fit a two-point queue no matter how fast
	// the dispatcher drains: admission counts them atomically.
	resp := postSweep(t, ts.URL, `{"useful":[2,3,4,5,6],"benchmarks":["gcc"],"instructions":4000}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if st := getStats(t, ts.URL); st.Rejected != 1 || st.QueueDepth != 0 {
		t.Fatalf("stats after rejection: rejected=%d queue=%d, want 1, 0", st.Rejected, st.QueueDepth)
	}
}

// TestConcurrentClientsShareWork is the overlap-determinism contract: N
// concurrent clients asking the same grid must each get byte-identical
// per-point results, the grid must simulate exactly once, and every
// re-request of a distinct point must count as a cache hit.
func TestConcurrentClientsShareWork(t *testing.T) {
	const clients, points = 6, 3
	srv, ts := newTestServer(t, Config{Workers: 2})
	body := `{"useful":[4,6,8],"benchmarks":["gcc"],"instructions":5000}`

	results := make([]map[string]string, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				t.Errorf("client %d: status %d", c, resp.StatusCode)
				return
			}
			lines, done, err := readStreamErr(resp)
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			if !done {
				t.Errorf("client %d: no done trailer", c)
			}
			results[c] = lines
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for c := 1; c < clients; c++ {
		if len(results[c]) != points {
			t.Fatalf("client %d got %d points, want %d", c, len(results[c]), points)
		}
		for key, line := range results[0] {
			if other, ok := results[c][key]; !ok {
				t.Fatalf("client %d is missing point %s", c, key)
			} else if other != line {
				t.Fatalf("client %d got different bytes for %s:\n%s\nvs\n%s", c, key, line, other)
			}
		}
	}

	st := srv.StatsSnapshot()
	if st.CacheMisses != points {
		t.Errorf("cache misses = %d, want %d (each distinct point misses once)", st.CacheMisses, points)
	}
	if wantHits := int64((clients - 1) * points); st.CacheHits != wantHits {
		t.Errorf("cache hits = %d, want %d (every overlapping point re-request)", st.CacheHits, wantHits)
	}
	if st.PointsDone != points {
		t.Errorf("points done = %d, want %d (singleflight: one simulation per point)", st.PointsDone, points)
	}
	if st.CacheSize != points {
		t.Errorf("cache size = %d, want %d", st.CacheSize, points)
	}
}

// TestDisconnectDropsQueuedPoints pins the leak contract: a client that
// goes away mid-stream releases its queued points, which must never
// simulate or land in the cache.
func TestDisconnectDropsQueuedPoints(t *testing.T) {
	const heavyPoints, abandonedPoints = 2, 3
	srv, ts := newTestServer(t, Config{Workers: 1})

	// A heavy request keeps the single worker busy...
	type streamResult struct {
		lines map[string]string
		err   error
	}
	heavy := make(chan streamResult, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/sweep", "application/json",
			strings.NewReader(`{"useful":[6,8],"benchmarks":["gcc"],"instructions":400000,"seed":7}`))
		if err != nil {
			heavy <- streamResult{err: err}
			return
		}
		lines, _, err := readStreamErr(resp)
		heavy <- streamResult{lines: lines, err: err}
	}()

	// ...wait until its batch is actually running...
	if !clitest.WaitUntil(clitest.DefaultWait, func() bool {
		return srv.StatsSnapshot().RunningPoints > 0
	}) {
		t.Fatal("heavy batch never started")
	}

	// ...then queue a second grid behind it and hang up without reading a
	// single line. The response headers arrive immediately (admission
	// happened) but every point line is still pending, so the body stays
	// open until the context is cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep",
		strings.NewReader(`{"useful":[10,12,14],"benchmarks":["swim"],"instructions":400000,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	abandoned := make(chan *http.Response, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			resp = nil
		}
		abandoned <- resp
	}()
	if !clitest.WaitUntil(clitest.DefaultWait, func() bool {
		st := srv.StatsSnapshot()
		return st.QueueDepth+st.RunningPoints >= heavyPoints+abandonedPoints
	}) {
		t.Fatalf("abandoned points never admitted: %+v", srv.StatsSnapshot())
	}
	cancel()
	if resp := <-abandoned; resp != nil {
		resp.Body.Close()
	}

	if hr := <-heavy; hr.err != nil {
		t.Fatalf("heavy client: %v", hr.err)
	} else if len(hr.lines) != heavyPoints {
		t.Fatalf("heavy client got %d points, want %d", len(hr.lines), heavyPoints)
	}
	// The abandoned points must drain away without simulating.
	if !clitest.WaitUntil(clitest.DefaultWait, func() bool {
		return srv.StatsSnapshot().InflightPoints == 0
	}) {
		t.Fatalf("queued points leaked: %+v", srv.StatsSnapshot())
	}
	st := srv.StatsSnapshot()
	if st.PointsDropped != abandonedPoints {
		t.Fatalf("points dropped = %d, want %d", st.PointsDropped, abandonedPoints)
	}
	if st.PointsDone != heavyPoints || st.CacheSize != heavyPoints {
		t.Fatalf("abandoned points leaked into work or cache: %+v", st)
	}
	if st.Disconnects != 1 {
		t.Fatalf("client disconnects = %d, want 1", st.Disconnects)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v, want 200 ok", resp.StatusCode, h)
	}

	srv.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = Health{}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	// The body must say so too — a load balancer's health checker often
	// reads the status field, not just the code.
	if h.Status != "draining" {
		t.Fatalf("draining healthz body status = %q, want draining", h.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining healthz without Retry-After")
	}
	sweep := postSweep(t, ts.URL, `{"useful":[8],"benchmarks":["gcc"],"instructions":4000}`)
	sweep.Body.Close()
	if sweep.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep status = %d, want 503", sweep.StatusCode)
	}
}

// TestCacheEvictionBoundsMemory pins the LRU contract: the result cache
// never holds more than CacheLimit lines, evictions are counted, and an
// evicted point re-simulates on the next request instead of erroring.
func TestCacheEvictionBoundsMemory(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, CacheLimit: 2})

	resp := postSweep(t, ts.URL, `{"useful":[4,6,8],"benchmarks":["gcc"],"instructions":4000}`)
	lines, _ := readStream(t, resp)
	if len(lines) != 3 {
		t.Fatalf("got %d points, want 3", len(lines))
	}
	st := srv.StatsSnapshot()
	if st.CacheSize != 2 {
		t.Fatalf("cache size = %d, want 2 (CacheLimit)", st.CacheSize)
	}
	if st.CacheEvictions != 1 {
		t.Fatalf("cache evictions = %d, want 1 (3 results into a 2-entry cache)", st.CacheEvictions)
	}
	if st.CacheBytes <= 0 {
		t.Fatalf("cache bytes = %d, want > 0 while entries are resident", st.CacheBytes)
	}

	// Re-request the full grid: the evicted point must simulate again and
	// the response must be byte-identical to the first pass.
	resp = postSweep(t, ts.URL, `{"useful":[4,6,8],"benchmarks":["gcc"],"instructions":4000}`)
	again, _ := readStream(t, resp)
	if fmt.Sprint(lines) != fmt.Sprint(again) {
		t.Fatal("post-eviction re-request differs from the original")
	}
	after := srv.StatsSnapshot()
	if after.PointsDone != st.PointsDone+1 {
		t.Fatalf("points done %d -> %d, want exactly one re-simulation of the evicted point",
			st.PointsDone, after.PointsDone)
	}
	if after.CacheSize != 2 {
		t.Fatalf("cache size = %d after re-request, want 2", after.CacheSize)
	}
}

// TestAdmitAfterCloseFailsFast pins the shutdown race: an admit that
// loses the race against Close must be refused (ErrStopped), never
// enqueued behind a dispatcher that has already drained for the last
// time — that would strand the caller on a done channel forever.
func TestAdmitAfterCloseFailsFast(t *testing.T) {
	srv := New(Config{Workers: 1})
	req := SweepRequest{Useful: []float64{8}, Benchmarks: []string{"gcc"}, Instructions: 4000}
	pts, keys, err := req.Points(srv.cfg.CodeVersion, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, _, err := srv.sched.admit(pts, keys, "test-origin"); !errors.Is(err, ErrStopped) {
		t.Fatalf("admit after close: err = %v, want ErrStopped", err)
	}
}

// TestRepeatRequestIsFullyCached pins the content-addressed cache: a
// byte-identical re-request must serve entirely from cache with no new
// simulations, and the response body must match byte-for-byte.
func TestRepeatRequestIsFullyCached(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	body := `{"useful_min":4,"useful_max":8,"useful_step":2,"benchmarks":["mcf"],"instructions":4000}`

	first := postSweep(t, ts.URL, body)
	firstLines, _ := readStream(t, first)
	simsAfterFirst := srv.StatsSnapshot().PointsDone

	second := postSweep(t, ts.URL, body)
	secondLines, _ := readStream(t, second)

	if fmt.Sprint(firstLines) != fmt.Sprint(secondLines) {
		t.Fatal("cached response differs from the original")
	}
	st := srv.StatsSnapshot()
	if st.PointsDone != simsAfterFirst {
		t.Fatalf("re-request simulated: points done %d -> %d", simsAfterFirst, st.PointsDone)
	}
	if st.CacheHits != int64(len(firstLines)) {
		t.Fatalf("cache hits = %d, want %d", st.CacheHits, len(firstLines))
	}
}
