package serve

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestPointsExpansionOrderAndDedup(t *testing.T) {
	// The same depth twice and two spellings of one benchmark collapse
	// onto single points; order is useful x stages x benchmark.
	req := SweepRequest{
		Useful:     []float64{8, 8, 6},
		Benchmarks: []string{"gcc", "176.gcc", "swim"},
	}
	pts, keys, err := req.Points("v", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 || len(keys) != 4 {
		t.Fatalf("got %d points, want 4 (2 depths x 2 distinct benchmarks)", len(pts))
	}
	want := []struct {
		useful float64
		bench  string
	}{
		{8, "176.gcc"}, {8, "171.swim"}, {6, "176.gcc"}, {6, "171.swim"},
	}
	for i, w := range want {
		if pts[i].Useful != w.useful || pts[i].Benchmark != w.bench {
			t.Errorf("point %d = (%g, %s), want (%g, %s)",
				i, pts[i].Useful, pts[i].Benchmark, w.useful, w.bench)
		}
		if keys[i] != pts[i].Key("v") {
			t.Errorf("keys[%d] does not match pts[%d].Key", i, i)
		}
	}
}

func TestPointsNilAndEmptyBenchmarksMeanFullSuite(t *testing.T) {
	nilReq := SweepRequest{Useful: []float64{8}}
	emptyReq := SweepRequest{Useful: []float64{8}, Benchmarks: []string{}}
	nilPts, nilKeys, err := nilReq.Points("v", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	emptyPts, emptyKeys, err := emptyReq.Points("v", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nilPts) != len(core.BenchmarkNames()) {
		t.Fatalf("nil benchmarks expanded to %d points, want the full suite (%d)",
			len(nilPts), len(core.BenchmarkNames()))
	}
	if len(nilPts) != len(emptyPts) {
		t.Fatalf("nil (%d points) and empty (%d points) benchmark lists differ", len(nilPts), len(emptyPts))
	}
	for i := range nilKeys {
		if nilKeys[i] != emptyKeys[i] {
			t.Fatalf("key %d differs between nil and empty benchmark lists", i)
		}
	}
}

func TestPointsRangeForm(t *testing.T) {
	req := SweepRequest{UsefulMin: 2, UsefulMax: 8, UsefulStep: 2, Benchmarks: []string{"gcc"}}
	pts, _, err := req.Points("v", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for _, p := range pts {
		got = append(got, p.Useful)
	}
	want := []float64{2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("range expanded to %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range expanded to %v, want %v", got, want)
		}
	}
}

// TestPointsRangeEndpointIncluded pins index-based grid generation: a
// fractional step must not drift past (and silently drop) the inclusive
// endpoint, and the values must be reproducible run to run.
func TestPointsRangeEndpointIncluded(t *testing.T) {
	req := SweepRequest{UsefulMin: 2, UsefulMax: 16, UsefulStep: 0.1, Benchmarks: []string{"gcc"}}
	pts, _, err := req.Points("v", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 141 {
		t.Fatalf("2..16 by 0.1 expanded to %d points, want 141", len(pts))
	}
	if first, last := pts[0].Useful, pts[len(pts)-1].Useful; first != 2 || last != 16 {
		t.Fatalf("grid spans [%g, %g], want [2, 16] inclusive", first, last)
	}
	again, _, err := req.Points("v", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i].Useful != again[i].Useful {
			t.Fatalf("point %d not reproducible: %g vs %g", i, pts[i].Useful, again[i].Useful)
		}
	}
}

// TestPointsRangeBoundedBeforeExpansion is the admission-DoS contract:
// a hostile min/max/step combination must be rejected by arithmetic on
// the range itself — never by iterating it. Each case must return an
// error promptly without allocating the grid.
func TestPointsRangeBoundedBeforeExpansion(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		req  SweepRequest
	}{
		// A denormal step never advances min (1 + 5e-324 == 1): the old
		// accumulation loop span forever.
		{"step smaller than one ULP", SweepRequest{UsefulMin: 1, UsefulMax: 64, UsefulStep: 5e-324}},
		// A huge max used to iterate (and append) until OOM; now it must
		// fail the per-point Useful bound before any expansion.
		{"max beyond the point bound", SweepRequest{UsefulMin: 1, UsefulMax: 1e18}},
		// In-bounds endpoints whose count still exceeds the point limit.
		{"too many points", SweepRequest{UsefulMin: 1, UsefulMax: 64, UsefulStep: 1e-9}},
		{"NaN min", SweepRequest{UsefulMin: nan, UsefulMax: 8}},
		{"NaN max", SweepRequest{UsefulMin: 2, UsefulMax: nan}},
		{"NaN step", SweepRequest{UsefulMin: 2, UsefulMax: 8, UsefulStep: nan}},
		{"negative step", SweepRequest{UsefulMin: 2, UsefulMax: 8, UsefulStep: -1}},
	}
	for _, c := range cases {
		c.req.Benchmarks = []string{"gcc"}
		if _, _, err := c.req.Points("v", Limits{MaxPoints: 1024}); err == nil {
			t.Errorf("%s: expansion did not error", c.name)
		}
	}
}

func TestPointsSegmentedWindows(t *testing.T) {
	req := SweepRequest{
		Useful:       []float64{8},
		Benchmarks:   []string{"gcc"},
		Window:       32,
		WindowStages: []int{1, 2, 4},
	}
	pts, keys, err := req.Points("v", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3 window-stage configs", len(pts))
	}
	seen := map[string]bool{}
	for i, p := range pts {
		if p.Window != 32 {
			t.Errorf("point %d window = %d, want 32", i, p.Window)
		}
		if seen[keys[i]] {
			t.Errorf("window-stage configs collided on key %s", keys[i])
		}
		seen[keys[i]] = true
	}
}

func TestPointsLimits(t *testing.T) {
	req := SweepRequest{Useful: []float64{2, 4, 6}, Benchmarks: []string{"gcc"}}
	if _, _, err := req.Points("v", Limits{MaxPoints: 2}); err == nil {
		t.Error("expansion past MaxPoints did not error")
	}
	req = SweepRequest{Useful: []float64{8}, Benchmarks: []string{"gcc"}, Instructions: 50_000}
	if _, _, err := req.Points("v", Limits{MaxInstructions: 10_000}); err == nil {
		t.Error("instructions past MaxInstructions did not error")
	}
	if _, _, err := req.Points("v", Limits{MaxInstructions: 50_000}); err != nil {
		t.Errorf("instructions at the limit errored: %v", err)
	}
}

func TestPointsCodeVersionChangesKeys(t *testing.T) {
	req := SweepRequest{Useful: []float64{8}, Benchmarks: []string{"gcc"}}
	_, k1, err := req.Points("v1", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := req.Points("v2", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if k1[0] == k2[0] {
		t.Error("cache key ignores the code version")
	}
}
