package serve

// Shutdown- and disconnect-edge tests for the scheduler, white-box on
// purpose: the hard paths (a waiter vanishing in the window between
// release's prune and the dispatcher's claim, a batch skipping an
// abandoned group, a simulation error surfacing after admission) live in
// races the HTTP layer can only hit probabilistically. Here the
// dispatcher goroutine is left unstarted, so each test walks the queue
// machinery by hand and the interleaving is exact.

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

const edgeVersion = "edge-v"

// newEdgeScheduler builds a scheduler with no dispatcher goroutine: the
// test is the dispatcher, calling takeBatch/runBatch itself.
func newEdgeScheduler(batch bool, queueLimit int) *scheduler {
	return &scheduler{
		rec:         obs.New(nil),
		log:         slog.Default(),
		metrics:     &serverMetrics{},
		workers:     1,
		codeVersion: edgeVersion,
		queueLimit:  queueLimit,
		batch:       batch,
		cache:       store.NewMemory(64, nil),
		inflight:    map[string]*job{},
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		stopped:     make(chan struct{}),
	}
}

// edgePoints expands a tiny grid into admission-ready (pts, keys).
func edgePoints(t *testing.T, benches []string, useful []float64) ([]core.PointOptions, []string) {
	t.Helper()
	req := SweepRequest{Useful: useful, Benchmarks: benches, Instructions: 2000, Seed: 99}
	pts, keys, err := req.Points(edgeVersion, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return pts, keys
}

// closedWithErr reports whether j.done has closed and with what error.
func closedWithErr(j *job) (bool, error) {
	select {
	case <-j.done:
		return true, j.err
	default:
		return false, nil
	}
}

// TestNewSchedulerNilObservabilityDefaults: the real constructor
// (dispatcher and all) with every observability seam nil must still
// admit, simulate and drain — the nil recorder, logger and metrics all
// default to no-ops. Admit-after-close through the Server is pinned in
// serve_test.go; this is the bare-scheduler variant.
func TestNewSchedulerNilObservabilityDefaults(t *testing.T) {
	s := newScheduler(1, 8, store.NewMemory(8, nil), edgeVersion, true, nil, nil, nil)
	pts, keys := edgePoints(t, []string{"gcc"}, []float64{6})
	tickets, adm, err := s.admit(pts, keys, "t1")
	if err != nil || adm.misses != 1 {
		t.Fatalf("admit: %v %+v", err, adm)
	}
	<-tickets[0].job.done
	if tickets[0].job.err != nil || tickets[0].job.line == nil {
		t.Fatalf("job finished err=%v line=%q", tickets[0].job.err, tickets[0].job.line)
	}
	s.close()
	if _, _, err := s.admit(pts, keys, "t2"); !errors.Is(err, ErrStopped) {
		t.Fatalf("admit after close = %v, want ErrStopped", err)
	}
}

func TestAdmitQueueFullEnqueuesNothing(t *testing.T) {
	s := newEdgeScheduler(true, 1)
	pts, keys := edgePoints(t, []string{"gcc"}, []float64{6, 8})
	if _, _, err := s.admit(pts, keys, "t1"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("admit past queueLimit = %v, want ErrQueueFull", err)
	}
	if len(s.queue) != 0 || len(s.inflight) != 0 {
		t.Fatalf("rejected admission left state behind: queue %d, inflight %d", len(s.queue), len(s.inflight))
	}
	// A request that fits must still be admitted afterwards.
	pts, keys = edgePoints(t, []string{"gcc"}, []float64{6})
	if _, _, err := s.admit(pts, keys, "t2"); err != nil {
		t.Fatalf("fitting admit after rejection: %v", err)
	}
}

// TestReleasePrunesQueuedJobs is the disconnect-while-queued edge: every
// released point that nobody else wants leaves the queue immediately,
// finalized as cancelled, and is counted dropped.
func TestReleasePrunesQueuedJobs(t *testing.T) {
	s := newEdgeScheduler(true, 8)
	pts, keys := edgePoints(t, []string{"gcc"}, []float64{6, 8})
	tickets, adm, err := s.admit(pts, keys, "t1")
	if err != nil || adm.misses != 2 {
		t.Fatalf("admit: %v %+v", err, adm)
	}
	s.release(tickets)
	if len(s.queue) != 0 || len(s.inflight) != 0 {
		t.Fatalf("release left queue %d, inflight %d", len(s.queue), len(s.inflight))
	}
	for i, tk := range tickets {
		done, jerr := closedWithErr(tk.job)
		if !done || !errors.Is(jerr, errCancelled) {
			t.Fatalf("ticket %d: done=%v err=%v, want cancelled", i, done, jerr)
		}
	}
	if got := s.rec.Counter("points_dropped"); got != 2 {
		t.Fatalf("points_dropped = %d, want 2", got)
	}
}

// TestReleaseKeepsSharedJobs: a queued job survives one requester's
// disconnect as long as another stream still wants it.
func TestReleaseKeepsSharedJobs(t *testing.T) {
	s := newEdgeScheduler(true, 8)
	pts, keys := edgePoints(t, []string{"gcc"}, []float64{6})
	first, adm1, err := s.admit(pts, keys, "t1")
	if err != nil || adm1.misses != 1 {
		t.Fatalf("first admit: %v %+v", err, adm1)
	}
	second, adm2, err := s.admit(pts, keys, "t2")
	if err != nil || adm2.joins != 1 || adm2.hits != 1 {
		t.Fatalf("second admit should join in-flight work: %v %+v", err, adm2)
	}
	if first[0].job != second[0].job {
		t.Fatal("the two requests hold different jobs for one key")
	}

	s.release(first)
	if len(s.queue) != 1 || len(s.inflight) != 1 {
		t.Fatalf("job with a live waiter was pruned: queue %d, inflight %d", len(s.queue), len(s.inflight))
	}
	if done, _ := closedWithErr(second[0].job); done {
		t.Fatal("shared job finalized while a waiter remained")
	}
	s.release(second)
	if len(s.queue) != 0 || len(s.inflight) != 0 {
		t.Fatal("job lingered after its last waiter left")
	}
	if got := s.rec.Counter("points_dropped"); got != 1 {
		t.Fatalf("points_dropped = %d, want 1 (one point, however many requesters)", got)
	}
}

// TestReleaseSkipsResolvedTickets: tickets satisfied from the cache at
// admission carry no job; release must walk past them.
func TestReleaseSkipsResolvedTickets(t *testing.T) {
	s := newEdgeScheduler(true, 8)
	s.cache.Put("warm-key", []byte(`{"key":"warm-key"}`+"\n"))
	pts, keys := edgePoints(t, []string{"gcc"}, []float64{6})
	tickets, _, err := s.admit(pts, keys, "t1")
	if err != nil {
		t.Fatal(err)
	}
	line, ok := s.cache.Get("warm-key")
	if !ok {
		t.Fatal("cache lost the warm line")
	}
	mixed := append([]ticket{{line: line}}, tickets...)
	s.release(mixed) // must not panic on the job-less ticket
	if len(s.queue) != 0 {
		t.Fatalf("queue depth %d after full release", len(s.queue))
	}
}

// TestTakeBatchDropsAbandonedJobs covers the belt-and-braces window:
// a job's last waiter vanishes after release's prune decision but
// before the dispatcher claims the queue. takeBatch must drop it, not
// hand it to the executor.
func TestTakeBatchDropsAbandonedJobs(t *testing.T) {
	s := newEdgeScheduler(true, 8)
	pts, keys := edgePoints(t, []string{"gcc", "swim"}, []float64{6})
	tickets, _, err := s.admit(pts, keys, "t1")
	if err != nil {
		t.Fatal(err)
	}
	// The race window in miniature: one job loses its waiter without a
	// release call touching the queue.
	tickets[0].job.waiters.Add(-1)

	batch := s.takeBatch()
	if len(batch) != 1 || batch[0] != tickets[1].job {
		t.Fatalf("takeBatch claimed %d jobs, want just the live one", len(batch))
	}
	done, jerr := closedWithErr(tickets[0].job)
	if !done || !errors.Is(jerr, errCancelled) {
		t.Fatalf("abandoned job: done=%v err=%v, want cancelled", done, jerr)
	}
	if _, ok := s.inflight[keys[0]]; ok {
		t.Fatal("abandoned job still registered in-flight")
	}
	if got := s.rec.Counter("points_dropped"); got != 1 {
		t.Fatalf("points_dropped = %d, want 1", got)
	}
}

// TestRunBatchDropsJobsAbandonedMidBatch: the executor skips a job whose
// waiters vanished after the batch was claimed; the post-batch sweep
// finalizes it as dropped.
func TestRunBatchDropsJobsAbandonedMidBatch(t *testing.T) {
	for _, batched := range []bool{true, false} {
		t.Run(fmt.Sprintf("batch=%v", batched), func(t *testing.T) {
			s := newEdgeScheduler(batched, 8)
			pts, keys := edgePoints(t, []string{"gcc"}, []float64{6})
			tickets, _, err := s.admit(pts, keys, "t1")
			if err != nil {
				t.Fatal(err)
			}
			batch := s.takeBatch()
			if len(batch) != 1 {
				t.Fatalf("batch size %d, want 1", len(batch))
			}
			tickets[0].job.waiters.Add(-1) // client gone while the batch is in hand
			s.runBatch(batch)
			done, jerr := closedWithErr(tickets[0].job)
			if !done || !errors.Is(jerr, errCancelled) {
				t.Fatalf("abandoned mid-batch job: done=%v err=%v, want cancelled", done, jerr)
			}
			if got := s.rec.Counter("points_dropped"); got != 1 {
				t.Fatalf("points_dropped = %d, want 1", got)
			}
			if got := s.rec.Counter("simulations"); got != 0 {
				t.Fatalf("simulations = %d for a batch nobody wanted", got)
			}
			if len(s.queue) != 0 || len(s.inflight) != 0 || s.running != 0 {
				t.Fatalf("post-batch state leaked: queue %d inflight %d running %d",
					len(s.queue), len(s.inflight), s.running)
			}
		})
	}
}

// TestRunGroupedPartitionsByTrace: a mixed batch splits into per-trace
// groups, every live point simulates exactly once, and the grouped lines
// are byte-identical to the flat path's.
func TestRunGroupedPartitionsByTrace(t *testing.T) {
	// gcc×{6,8} share one trace; swim×6 is its own group.
	pts, keys := edgePoints(t, []string{"gcc", "swim"}, []float64{6, 8})
	if len(pts) != 4 {
		t.Fatalf("grid expanded to %d points, want 4", len(pts))
	}

	runAll := func(batched bool) map[string]string {
		s := newEdgeScheduler(batched, 8)
		tickets, _, err := s.admit(pts, keys, "t1")
		if err != nil {
			t.Fatal(err)
		}
		s.runBatch(s.takeBatch())
		lines := map[string]string{}
		for i, tk := range tickets {
			done, jerr := closedWithErr(tk.job)
			if !done || jerr != nil {
				t.Fatalf("point %s: done=%v err=%v", keys[i], done, jerr)
			}
			lines[keys[i]] = string(tk.job.line)
		}
		if got := s.rec.Counter("simulations"); got != int64(len(pts)) {
			t.Fatalf("simulations = %d, want %d", got, len(pts))
		}
		return lines
	}

	grouped := runAll(true)
	flat := runAll(false)
	for k, g := range grouped {
		if f := flat[k]; f != g {
			t.Fatalf("grouped and flat dispatch disagree for %s:\n  grouped: %s\n  flat:    %s", k, g, f)
		}
	}
}

// TestRunGroupedSkipsAbandonedGroup: when every lane of one trace group
// loses its waiters, the whole group is skipped — zero simulations for
// it — while the other group still runs.
func TestRunGroupedSkipsAbandonedGroup(t *testing.T) {
	pts, keys := edgePoints(t, []string{"gcc", "swim"}, []float64{6, 8})
	s := newEdgeScheduler(true, 8)
	tickets, _, err := s.admit(pts, keys, "t1")
	if err != nil {
		t.Fatal(err)
	}
	batch := s.takeBatch()
	if len(batch) != 4 {
		t.Fatalf("batch size %d, want 4", len(batch))
	}
	var abandoned, kept []*job
	for i, tk := range tickets {
		if pts[i].Benchmark == pts[0].Benchmark {
			tk.job.waiters.Add(-1)
			abandoned = append(abandoned, tk.job)
		} else {
			kept = append(kept, tk.job)
		}
	}
	s.runBatch(batch)
	for _, j := range abandoned {
		if done, jerr := closedWithErr(j); !done || !errors.Is(jerr, errCancelled) {
			t.Fatalf("abandoned group lane: done=%v err=%v, want cancelled", done, jerr)
		}
	}
	for _, j := range kept {
		if done, jerr := closedWithErr(j); !done || jerr != nil || j.line == nil {
			t.Fatalf("live group lane: done=%v err=%v line=%q", done, jerr, j.line)
		}
	}
	if got := s.rec.Counter("simulations"); got != int64(len(kept)) {
		t.Fatalf("simulations = %d, want %d (the abandoned group must not run)", got, len(kept))
	}
}

// TestFinishJobSimulationError: admission doesn't re-validate what it is
// handed (the HTTP layer does), so a direct caller can enqueue a point
// the simulator rejects. The error must surface on the job — uncached,
// stream-visible — on both dispatch paths.
func TestFinishJobSimulationError(t *testing.T) {
	for _, batched := range []bool{true, false} {
		t.Run(fmt.Sprintf("batch=%v", batched), func(t *testing.T) {
			s := newEdgeScheduler(batched, 8)
			bad := core.PointOptions{Benchmark: "doom", Useful: 8}.Normalize()
			key := bad.Key(edgeVersion)
			tickets, adm, err := s.admit([]core.PointOptions{bad}, []string{key}, "t1")
			if err != nil || adm.misses != 1 {
				t.Fatalf("admit: %v %+v", err, adm)
			}
			s.runBatch(s.takeBatch())
			done, jerr := closedWithErr(tickets[0].job)
			if !done || jerr == nil || !strings.Contains(jerr.Error(), "unknown benchmark") {
				t.Fatalf("bad point: done=%v err=%v, want an unknown-benchmark error", done, jerr)
			}
			if _, ok := s.cache.Get(key); ok {
				t.Fatal("a failed simulation landed in the cache")
			}
			if got := s.rec.Counter("points_done"); got != 0 {
				t.Fatalf("points_done = %d for a failed point", got)
			}
		})
	}
}

// TestStreamErrorLine pins the uncached error line's wire shape.
func TestStreamErrorLine(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	rec := httptest.NewRecorder()
	srv.streamError(rec, nil, "k123", errors.New("boom"))
	if got, want := rec.Body.String(), `{"error":"boom","key":"k123"}`+"\n"; got != want {
		t.Fatalf("streamError line = %q, want %q", got, want)
	}
}
