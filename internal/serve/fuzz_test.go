package serve

// FuzzSweepRequest hammers the /sweep grid parser — the one spot where
// client-controlled floats meet index arithmetic — with both request
// forms and hostile values. The properties are exactly what the serving
// path relies on downstream: a request either fails fast or expands to a
// bounded, validated, deduplicated point list whose keys are the points'
// own content addresses, deterministically.

import (
	"encoding/json"
	"strings"
	"testing"
)

func FuzzSweepRequest(f *testing.F) {
	seeds := []string{
		// The two request forms at paper-shaped values.
		`{"useful":[6,8],"benchmarks":["gcc"],"instructions":3000}`,
		`{"useful_min":2,"useful_max":16,"useful_step":0.5,"benchmarks":["swim"]}`,
		// Range endpoints that only land inclusively with index-based
		// generation: (16-2)/0.1 is 139.99999999999997.
		`{"useful_min":2,"useful_max":16,"useful_step":0.1,"benchmarks":["mcf"]}`,
		// Hostile floats: denormal step, overflow-adjacent range, a step
		// too small to advance the grid.
		`{"useful_min":2,"useful_max":16,"useful_step":5e-324,"benchmarks":["gcc"]}`,
		`{"useful_min":1e-310,"useful_max":1e308,"benchmarks":["gcc"]}`,
		`{"useful_min":4,"useful_max":1e17,"useful_step":0.001}`,
		// Duplicates in both spellings: the same depth twice, one
		// benchmark under its short and suite names.
		`{"useful":[8,8,8],"benchmarks":["176.gcc","gcc"],"instructions":2000}`,
		// Window variants and the full option surface.
		`{"useful":[4],"window":64,"window_stages":[1,2,4],"preselect":[2],"naive_pipelining":true}`,
		`{"machine":"inorder","useful":[8],"warmup":-1,"seed":18446744073709551615}`,
		// Degenerate grids.
		`{"useful":[]}`,
		`{"useful_min":16,"useful_max":2}`,
		`{"useful":[-1]}`,
		`{"useful_min":-5,"useful_max":-1}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	const version = "fuzz-v1"
	lim := Limits{MaxPoints: 64, MaxInstructions: 1 << 20}
	f.Fuzz(func(t *testing.T, body string) {
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		var req SweepRequest
		if err := dec.Decode(&req); err != nil {
			return // the HTTP layer rejects it before expansion
		}
		pts, keys, err := req.Points(version, lim)
		if err != nil {
			return // rejected: fine, as long as it neither spun nor panicked
		}
		if len(pts) != len(keys) {
			t.Fatalf("%d points but %d keys", len(pts), len(keys))
		}
		if len(pts) == 0 {
			t.Fatalf("Points returned success with an empty expansion for %q", body)
		}
		if len(pts) > lim.MaxPoints {
			t.Fatalf("expansion of %d points exceeds the %d limit", len(pts), lim.MaxPoints)
		}
		seen := make(map[string]bool, len(keys))
		for i, p := range pts {
			if k := p.Key(version); k != keys[i] {
				t.Fatalf("keys[%d] = %q but the point's own address is %q", i, keys[i], k)
			}
			if seen[keys[i]] {
				t.Fatalf("duplicate key %q survived dedup", keys[i])
			}
			seen[keys[i]] = true
			// Points are promised normalized+valid: the scheduler and the
			// cache key both depend on it.
			if nk := p.Normalize().Key(version); nk != keys[i] {
				t.Fatalf("point %d is not normalization-stable: %q vs %q", i, keys[i], nk)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("point %d invalid after successful expansion: %v", i, err)
			}
		}
		// Expansion is deterministic: the same request body yields the
		// same grid in the same order.
		_, again, err := req.Points(version, lim)
		if err != nil {
			t.Fatalf("second expansion failed: %v", err)
		}
		for i := range keys {
			if keys[i] != again[i] {
				t.Fatalf("expansion order unstable at %d: %q vs %q", i, keys[i], again[i])
			}
		}
	})
}
