package serve

// Request-scoped tracing. Every request gets an ID — an inbound
// X-Request-Id is honored (after sanitizing) so a caller or upstream
// proxy can correlate its own logs with the daemon's, otherwise one is
// generated — and the ID travels with the request: echoed in the
// response headers, attached to the context for handlers, carried into
// the scheduler as each admitted job's origin, and emitted on every
// access/slow log line. Tracing is observation-only: IDs never reach a
// sweep body or a cache key.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"
)

// traceKey is the context key for the request's *reqTrace.
type traceKey struct{}

// reqTrace is one request's tracing state. The middleware creates it;
// the handler running synchronously underneath fills the sweep-specific
// fields; the middleware reads them back for the access log after the
// handler returns.
type reqTrace struct {
	id string

	points int    // points in the admitted sweep
	hits   int    // points served from the store or joined in flight
	joins  int    // the subset of hits that were singleflight joins
	reason string // rejection reason, "" when the request was served
}

// traceFrom returns the request's trace, or nil outside the middleware
// (direct handler tests).
func traceFrom(ctx context.Context) *reqTrace {
	tr, _ := ctx.Value(traceKey{}).(*reqTrace)
	return tr
}

// requestID returns the trace's ID, "" outside the middleware.
func (tr *reqTrace) requestID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// newRequestID generates a 16-hex-char random ID. Random, not
// sequential: IDs must stay unique across daemon restarts and across
// the fabric's future N nodes without coordination.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; a fixed ID keeps
		// the request traceable rather than failing it.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts an inbound X-Request-Id only if it is short
// and shell/log-safe; anything else is discarded so a hostile header
// cannot inject log fields or unbounded bytes.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-', r == '_', r == '.', r == ':':
		default:
			return ""
		}
	}
	return id
}

// traceWriter wraps the ResponseWriter to record status and body bytes
// for the access log without touching the body itself. Flush forwards
// so NDJSON streaming keeps working through the wrapper.
type traceWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *traceWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *traceWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *traceWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withTrace is the access-log middleware around the whole mux: assign
// the request ID, echo it, time the request, observe the latency
// histogram, and emit one structured log line per request — Info for
// sweeps (the daemon's workload), Debug for the observation endpoints,
// plus a threshold-gated Warn for slow requests.
func (s *Server) withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = newRequestID()
		}
		tr := &reqTrace{id: id}
		w.Header().Set("X-Request-Id", id)
		tw := &traceWriter{ResponseWriter: w, status: http.StatusOK}

		s.metrics.httpInflight.Add(1)
		next.ServeHTTP(tw, r.WithContext(context.WithValue(r.Context(), traceKey{}, tr)))
		s.metrics.httpInflight.Add(-1)

		dur := time.Since(start)
		sweep := r.URL.Path == "/sweep"
		if sweep {
			s.metrics.reqSeconds.Observe(dur.Seconds())
			s.metrics.streamBytes.Add(tw.bytes)
		}

		attrs := []any{
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", tw.status,
			"bytes", tw.bytes,
			"duration", dur,
		}
		if sweep {
			attrs = append(attrs, "points", tr.points, "cache_hits", tr.hits, "dedup_joins", tr.joins)
			if tr.reason != "" {
				attrs = append(attrs, "reject_reason", tr.reason)
			}
			s.cfg.Log.Info("request", attrs...)
		} else {
			s.cfg.Log.Debug("request", attrs...)
		}
		if s.cfg.SlowRequest > 0 && dur >= s.cfg.SlowRequest {
			s.metrics.slow.Inc()
			s.cfg.Log.Warn("slow request", append(attrs, "threshold", s.cfg.SlowRequest)...)
		}
	})
}
