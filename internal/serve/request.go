package serve

// The wire schema: a SweepRequest describes a grid the way the study
// drivers do — a depth range, a benchmark subset, optional segmented-
// window configurations — and expands into the per-point tasks the
// scheduler dedupes and caches. Responses stream one PointResult per
// distinct point as NDJSON; per-point lines are built exactly once (by
// the worker that simulates the point) and reused byte-for-byte for
// every client that asks for the same point.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fo4"
	"repro/internal/pipeline"
)

// SweepRequest is the JSON body of POST /sweep. Every field is optional
// except a non-empty grid: omitted fields take the paper defaults, so
// `{}` would mean the full Figure 5 sweep — deliberately rejected in
// favour of an explicit `"useful": []` choice; use `"useful": [2,...,16]`
// or the range form for the full grid.
type SweepRequest struct {
	// Machine is "ooo" (default) or "inorder".
	Machine string `json:"machine,omitempty"`

	// Useful lists the t_useful grid points (FO4) explicitly. When empty
	// the UsefulMin/UsefulMax/UsefulStep range is used instead.
	Useful []float64 `json:"useful,omitempty"`

	// UsefulMin..UsefulMax by UsefulStep (default step 1) is the range
	// form of the grid; the paper's grid is min 2, max 16.
	UsefulMin  float64 `json:"useful_min,omitempty"`
	UsefulMax  float64 `json:"useful_max,omitempty"`
	UsefulStep float64 `json:"useful_step,omitempty"`

	// Benchmarks names the Table 2 subset to run ("gcc" or "176.gcc");
	// nil or empty means the full SPEC 2000 suite.
	Benchmarks []string `json:"benchmarks,omitempty"`

	// Instructions per trace (0 = 60000), Warmup (0 = 20%, -1 = none)
	// and Seed (0 = 1) follow core.SweepConfig's semantics exactly.
	Instructions int    `json:"instructions,omitempty"`
	Warmup       int    `json:"warmup,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`

	// OverheadFO4 is the total per-stage clocking overhead: 0 = the
	// Table 1 default (1.8), -1 = none (Figure 4a's idealization).
	OverheadFO4 float64 `json:"overhead_fo4,omitempty"`

	// Window, when > 0, runs a unified issue window of that many entries;
	// WindowStages lists the segmented-window configurations to evaluate
	// (empty = conventional single-segment only). PreSelect and
	// NaivePipelining select the Section 5 variants.
	Window          int   `json:"window,omitempty"`
	WindowStages    []int `json:"window_stages,omitempty"`
	PreSelect       []int `json:"preselect,omitempty"`
	NaivePipelining bool  `json:"naive_pipelining,omitempty"`
}

// Limits bounds what one request may ask for; the zero value means the
// server defaults (see Config).
type Limits struct {
	MaxPoints       int // distinct points per request
	MaxInstructions int // instructions per trace
}

// usefulGrid resolves the request's depth grid.
func (r SweepRequest) usefulGrid() ([]float64, error) {
	if len(r.Useful) > 0 {
		return r.Useful, nil
	}
	if r.UsefulMin == 0 && r.UsefulMax == 0 {
		return nil, fmt.Errorf("empty grid: set useful (e.g. [8]) or useful_min/useful_max")
	}
	step := r.UsefulStep
	if step == 0 {
		step = 1
	}
	if step < 0 || r.UsefulMax < r.UsefulMin || r.UsefulMin <= 0 {
		return nil, fmt.Errorf("bad useful range: min %g, max %g, step %g", r.UsefulMin, r.UsefulMax, step)
	}
	var grid []float64
	for u := r.UsefulMin; u <= r.UsefulMax; u += step {
		grid = append(grid, u)
	}
	return grid, nil
}

// benchmarks resolves the request's benchmark subset to suite names.
func (r SweepRequest) benchmarks() ([]string, error) {
	if len(r.Benchmarks) == 0 {
		return core.BenchmarkNames(), nil
	}
	out := make([]string, 0, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		p, ok := core.ProfileByName(b)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", b)
		}
		out = append(out, p.Name)
	}
	return out, nil
}

// Points expands the request into its distinct simulation points, in
// deterministic (useful × window-stages × benchmark) order, each
// normalized and validated. keys[i] is pts[i].Key(codeVersion).
// Duplicate points (an explicit grid listing the same depth twice, or
// two benchmark spellings of one profile) collapse onto one point.
func (r SweepRequest) Points(codeVersion string, lim Limits) (pts []core.PointOptions, keys []string, err error) {
	grid, err := r.usefulGrid()
	if err != nil {
		return nil, nil, err
	}
	benches, err := r.benchmarks()
	if err != nil {
		return nil, nil, err
	}
	stages := r.WindowStages
	if len(stages) == 0 {
		stages = []int{1}
	}
	if lim.MaxInstructions > 0 && r.Instructions > lim.MaxInstructions {
		return nil, nil, fmt.Errorf("instructions %d exceeds the server limit %d", r.Instructions, lim.MaxInstructions)
	}

	seen := map[string]bool{}
	for _, u := range grid {
		for _, st := range stages {
			for _, b := range benches {
				o := core.PointOptions{
					Machine:         r.Machine,
					Benchmark:       b,
					Useful:          u,
					OverheadFO4:     r.OverheadFO4,
					Window:          r.Window,
					WindowStages:    st,
					PreSelect:       r.PreSelect,
					NaivePipelining: r.NaivePipelining,
					Instructions:    r.Instructions,
					Warmup:          r.Warmup,
					Seed:            r.Seed,
				}.Normalize()
				if err := o.Validate(); err != nil {
					return nil, nil, err
				}
				k := o.Key(codeVersion)
				if seen[k] {
					continue
				}
				seen[k] = true
				pts = append(pts, o)
				keys = append(keys, k)
				if lim.MaxPoints > 0 && len(pts) > lim.MaxPoints {
					return nil, nil, fmt.Errorf("request expands to more than %d points (limit); narrow the grid", lim.MaxPoints)
				}
			}
		}
	}
	return pts, keys, nil
}

// PointResult is one NDJSON line of a sweep response. The line for a
// given key is marshaled exactly once, by the worker that simulated the
// point, so every client streaming that point receives byte-identical
// bytes.
type PointResult struct {
	Key       string  `json:"key"`
	Machine   string  `json:"machine"`
	Benchmark string  `json:"benchmark"`
	Group     string  `json:"group"`
	Useful    float64 `json:"useful"`
	PeriodFO4 float64 `json:"period_fo4"`
	FreqMHz   float64 `json:"freq_mhz"`
	Stages    int     `json:"window_stages,omitempty"`

	IPC   float64        `json:"ipc"`
	BIPS  float64        `json:"bips"`
	Stats pipeline.Stats `json:"stats"`
}

// newPointResult assembles the response line for one simulated point;
// opts must be normalized (the scheduler only holds normalized points).
func newPointResult(key string, opts core.PointOptions, res core.BenchPoint) PointResult {
	clk := opts.Clock()
	pr := PointResult{
		Key:       key,
		Machine:   opts.Machine,
		Benchmark: res.Name,
		Group:     res.Group.String(),
		Useful:    opts.Useful,
		PeriodFO4: clk.PeriodFO4(),
		FreqMHz:   clk.FrequencyHz(fo4.Tech100nm) / 1e6,
		IPC:       res.IPC,
		BIPS:      res.BIPS,
		Stats:     res.Stats,
	}
	if opts.WindowStages > 1 {
		pr.Stages = opts.WindowStages
	}
	return pr
}
