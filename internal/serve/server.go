// Package serve is the sweep-serving daemon behind cmd/sweepd: a
// long-running HTTP front end over the simulation library. Clients POST
// sweep grids to /sweep; the server decomposes them into per-point
// tasks, serves repeats from a content-addressed result cache keyed by
// the canonical point hash (core.PointOptions.Key), deduplicates
// concurrent identical points singleflight-style, and runs the rest
// through the deterministic executor with one reusable pipeline.Scratch
// per worker. Results stream back as NDJSON as points complete.
//
// Operational contract:
//
//   - Admission is bounded: a request whose new points would overflow
//     the queue-depth limit is rejected with 429 and a Retry-After
//     header, before anything is enqueued — and grid ranges are bounds-
//     checked before expansion, so no request body can make the server
//     materialize (or loop over) more points than the per-request limit.
//   - The result cache is bounded: cache keys span an unbounded input
//     space (any seed, any instruction count), so least-recently-used
//     lines are evicted past CacheLimit; /stats exposes cache_bytes and
//     cache_evictions so operators can watch the economy.
//   - A client that disconnects mid-stream releases its claim on every
//     unconsumed point; points nobody else wants are dropped from the
//     queue immediately (or skipped by the executor if a batch already
//     holds them) rather than simulated for nobody.
//   - Shutdown is graceful: BeginDrain stops admitting, in-flight
//     streams run to completion, Close waits for the dispatcher.
//   - /healthz and /stats expose the cache hit ratio, queue depth,
//     in-flight point count and the run's telemetry snapshot (including
//     the simulator's wakeup counters) via internal/obs.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/obs"
)

// Config sizes one Server. The zero value is a sensible daemon: all-CPU
// simulation workers, a 4096-point queue, 1024 points per request.
type Config struct {
	// Workers sizes the simulation pool per batch: 0 = GOMAXPROCS,
	// 1 = serial (exec.Pool semantics).
	Workers int

	// QueueLimit bounds admitted-but-unstarted points; 0 means 4096.
	// Admission past the limit fails with 429 + Retry-After.
	QueueLimit int

	// MaxPointsPerRequest bounds one request's expansion; 0 means 1024.
	MaxPointsPerRequest int

	// MaxInstructions bounds the per-trace instruction count a request
	// may ask for; 0 means 1_000_000.
	MaxInstructions int

	// CacheLimit bounds the result cache's entry count; least-recently-
	// used lines are evicted past it (counted as cache_evictions in
	// /stats). 0 means 16384 entries; negative means unbounded — cache
	// keys span an unbounded input space, so only use that when the
	// client population is known to be closed.
	CacheLimit int

	// CodeVersion is mixed into every cache key so results are content-
	// addressed across simulator versions; "" resolves the build's VCS
	// revision (falling back to "dev").
	CodeVersion string

	// Rec receives the server's telemetry; nil means a private recorder.
	Rec *obs.Recorder

	// Log receives request-level events; nil means slog.Default.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueLimit == 0 {
		c.QueueLimit = 4096
	}
	if c.MaxPointsPerRequest == 0 {
		c.MaxPointsPerRequest = 1024
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 1_000_000
	}
	if c.CacheLimit == 0 {
		c.CacheLimit = 16384
	}
	if c.CodeVersion == "" {
		c.CodeVersion = buildVersion()
	}
	if c.Rec == nil {
		c.Rec = obs.New(nil)
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c
}

// buildVersion resolves the binary's VCS revision for cache keying.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "dev"
}

// Server is the daemon: an http.Handler plus the scheduler behind it.
type Server struct {
	cfg      Config
	rec      *obs.Recorder
	sched    *scheduler
	mux      *http.ServeMux
	draining atomic.Bool
}

// New builds a Server and starts its dispatcher. Callers must Close it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		rec:   cfg.Rec,
		sched: newScheduler(cfg.Workers, cfg.QueueLimit, cfg.CacheLimit, cfg.CodeVersion, cfg.Rec),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP makes the Server mountable directly into http.Server and
// httptest.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// BeginDrain stops admitting new sweeps (503) while letting accepted
// streams finish; /healthz starts reporting "draining". Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// Close drains the scheduler (every already-admitted point completes or
// is dropped) and stops the dispatcher. Call after the HTTP listener has
// stopped accepting work — http.Server.Shutdown ordering in cmd/sweepd.
func (s *Server) Close() {
	s.BeginDrain()
	s.sched.close()
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSweep is POST /sweep: expand, admit, stream.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		errorJSON(w, http.StatusMethodNotAllowed, "POST a sweep request body to /sweep")
		return
	}
	if s.draining.Load() {
		errorJSON(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	pts, keys, err := req.Points(s.cfg.CodeVersion, Limits{
		MaxPoints:       s.cfg.MaxPointsPerRequest,
		MaxInstructions: s.cfg.MaxInstructions,
	})
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}

	tickets, err := s.sched.admit(pts, keys)
	if errors.Is(err, ErrQueueFull) {
		w.Header().Set("Retry-After", "1")
		errorJSON(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	if err != nil {
		// ErrStopped: Close won the race against this request's draining
		// check; the dispatcher is gone, so admit refused the points.
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.rec.Add("requests", 1)
	s.cfg.Log.Debug("sweep admitted", "points", len(pts))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()

	for i, t := range tickets {
		line := t.line
		if t.job != nil {
			select {
			case <-t.job.done:
				if t.job.err != nil {
					// Validated points only fail on should-never-happen
					// internal errors; surface them without caching.
					s.streamError(w, flusher, t.job.key, t.job.err)
					continue
				}
				line = t.job.line
			case <-ctx.Done():
				s.disconnect(tickets[i:])
				return
			}
		}
		// line is newline-terminated and shared across streams; it must be
		// written as-is, never appended to.
		if _, err := w.Write(line); err != nil {
			s.disconnect(tickets[i+1:])
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Trailer: lets clients distinguish a complete stream from a dropped
	// connection. Deliberately free of timing or cache provenance so the
	// whole response body is identical for identical requests.
	fmt.Fprintf(w, "{\"done\":true,\"points\":%d}\n", len(tickets))
}

// streamError emits a non-cached error line for one point.
func (s *Server) streamError(w http.ResponseWriter, flusher http.Flusher, key string, err error) {
	line, _ := json.Marshal(map[string]string{"key": key, "error": err.Error()})
	w.Write(append(line, '\n'))
	if flusher != nil {
		flusher.Flush()
	}
}

// disconnect releases every unconsumed ticket of a request whose client
// went away.
func (s *Server) disconnect(remaining []ticket) {
	s.sched.release(remaining)
	s.rec.Add("client_disconnects", 1)
	s.cfg.Log.Debug("client disconnected", "released", len(remaining))
}

// Health is the /healthz body.
type Health struct {
	Status     string `json:"status"` // "ok" or "draining"
	QueueDepth int    `json:"queue_depth"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, _, _, _ := s.sched.gauges()
	h := Health{Status: "ok", QueueDepth: queued}
	status := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(h)
}

// Stats is the /stats body: live queue gauges, the point cache's hit
// economy, and the full telemetry snapshot (which carries the
// simulator's wakeup_wakes/wakeup_scanned counters and per-task
// timings).
type Stats struct {
	QueueDepth     int `json:"queue_depth"`
	RunningPoints  int `json:"running_points"`
	InflightPoints int `json:"inflight_points"` // queued + running

	CacheSize      int     `json:"cache_size"`
	CacheBytes     int64   `json:"cache_bytes"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	CacheEvictions int64   `json:"cache_evictions"`
	DedupJoins     int64   `json:"dedup_joins"`

	Requests      int64 `json:"requests"`
	Rejected      int64 `json:"requests_rejected"`
	Disconnects   int64 `json:"client_disconnects"`
	PointsDone    int64 `json:"points_done"`
	PointsDropped int64 `json:"points_dropped"`

	Telemetry obs.Snapshot `json:"telemetry"`
}

// StatsSnapshot assembles the current Stats; exported so tests and
// embedding binaries can read it without HTTP.
func (s *Server) StatsSnapshot() Stats {
	queued, running, cacheSize, cacheBytes := s.sched.gauges()
	st := Stats{
		QueueDepth:     queued,
		RunningPoints:  running,
		InflightPoints: queued + running,
		CacheSize:      cacheSize,
		CacheBytes:     cacheBytes,
		CacheHits:      s.rec.Counter("point_cache_hits"),
		CacheMisses:    s.rec.Counter("point_cache_misses"),
		CacheEvictions: s.rec.Counter("cache_evictions"),
		DedupJoins:     s.rec.Counter("dedup_joins"),
		Requests:       s.rec.Counter("requests"),
		Rejected:       s.rec.Counter("requests_rejected"),
		Disconnects:    s.rec.Counter("client_disconnects"),
		PointsDone:     s.rec.Counter("points_done"),
		PointsDropped:  s.rec.Counter("points_dropped"),
		Telemetry:      s.rec.Snapshot(),
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.CacheHitRatio = float64(st.CacheHits) / float64(total)
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.StatsSnapshot())
}
