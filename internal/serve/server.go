// Package serve is the sweep-serving daemon behind cmd/sweepd: a
// long-running HTTP front end over the simulation library. Clients POST
// sweep grids to /sweep; the server decomposes them into per-point
// tasks, serves repeats from a content-addressed result cache keyed by
// the canonical point hash (core.PointOptions.Key), deduplicates
// concurrent identical points singleflight-style, and runs the rest
// through the deterministic executor with one reusable pipeline.Scratch
// per worker. Results stream back as NDJSON as points complete.
//
// Operational contract:
//
//   - Admission is bounded: a request whose new points would overflow
//     the queue-depth limit is rejected with 429 and a Retry-After
//     header, before anything is enqueued — and grid ranges are bounds-
//     checked before expansion, so no request body can make the server
//     materialize (or loop over) more points than the per-request limit.
//   - The result cache is a pluggable ResultStore (internal/store) and
//     bounded either way: cache keys span an unbounded input space (any
//     seed, any instruction count), so least-recently-used lines are
//     evicted past CacheLimit; /stats exposes cache_bytes and
//     cache_evictions so operators can watch the economy. A durable
//     store adds a write-through segment log, warm-start on boot (every
//     previously simulated point is served from disk, byte-identically,
//     with zero re-simulation) and cursor-based delta sync over
//     GET /results?since=<cursor>.
//   - A client that disconnects mid-stream releases its claim on every
//     unconsumed point; points nobody else wants are dropped from the
//     queue immediately (or skipped by the executor if a batch already
//     holds them) rather than simulated for nobody.
//   - Shutdown is graceful: BeginDrain stops admitting, in-flight
//     streams run to completion, Close waits for the dispatcher.
//   - /healthz and /stats expose the cache hit ratio, queue depth,
//     in-flight point count and the run's telemetry snapshot (including
//     the simulator's wakeup counters) via internal/obs.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Config sizes one Server. The zero value is a sensible daemon: all-CPU
// simulation workers, a 4096-point queue, 1024 points per request.
type Config struct {
	// Workers sizes the simulation pool per batch: 0 = GOMAXPROCS,
	// 1 = serial (exec.Pool semantics).
	Workers int

	// QueueLimit bounds admitted-but-unstarted points; 0 means 4096.
	// Admission past the limit fails with 429 + Retry-After.
	QueueLimit int

	// MaxPointsPerRequest bounds one request's expansion; 0 means 1024.
	MaxPointsPerRequest int

	// MaxInstructions bounds the per-trace instruction count a request
	// may ask for; 0 means 1_000_000.
	MaxInstructions int

	// CacheLimit bounds the result cache's entry count; least-recently-
	// used lines are evicted past it (counted as cache_evictions in
	// /stats). 0 means 16384 entries; negative means unbounded — cache
	// keys span an unbounded input space, so only use that when the
	// client population is known to be closed.
	CacheLimit int

	// CodeVersion is mixed into every cache key so results are content-
	// addressed across simulator versions; "" resolves the build's VCS
	// revision (falling back to "dev").
	CodeVersion string

	// Store overrides the result store. nil means a process-lifetime
	// bounded LRU sized by CacheLimit; a *store.Durable adds warm-start
	// persistence and enables the GET /results delta-sync endpoint.
	// A caller-supplied store must use the same CodeVersion and should
	// share Rec so its counters land in the run manifest.
	Store store.ResultStore

	// RetryAfter is the Retry-After value, in seconds, sent with 429
	// (queue full) and 503 (draining/stopped) responses; 0 means 1.
	RetryAfter int

	// Rec receives the server's telemetry; nil means a private recorder.
	Rec *obs.Recorder

	// Log receives request-level events; nil means slog.Default.
	Log *slog.Logger

	// DisableMetrics turns off the /metrics registry: the endpoint
	// serves 404 and every instrument becomes a no-op. Request IDs and
	// access logs stay on — they are part of the serving contract, not
	// the scrape surface.
	DisableMetrics bool

	// SlowRequest is the latency threshold past which a completed
	// request is logged at Warn and counted in
	// sweep_slow_requests_total; 0 disables the slow log.
	SlowRequest time.Duration

	// DisableBatch turns off the per-benchmark batch dispatch: every
	// point simulates on the flat per-point executor path instead of
	// grouping with the other queued points that share its trace.
	// Response bodies and the cache economy are identical either way
	// (the serve tests pin byte-identity); the flag exists as the A/B
	// reference for the batched path and as an operator escape hatch.
	DisableBatch bool
}

func (c Config) withDefaults() Config {
	if c.QueueLimit == 0 {
		c.QueueLimit = 4096
	}
	if c.MaxPointsPerRequest == 0 {
		c.MaxPointsPerRequest = 1024
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 1_000_000
	}
	if c.CacheLimit == 0 {
		c.CacheLimit = 16384
	}
	if c.CodeVersion == "" {
		c.CodeVersion = buildVersion()
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 1
	}
	if c.Rec == nil {
		c.Rec = obs.New(nil)
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	if c.Store == nil {
		c.Store = store.NewMemory(c.CacheLimit, c.Rec)
	}
	return c
}

// buildVersion resolves the binary's VCS revision for cache keying.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "dev"
}

// DefaultCodeVersion is the code version a zero-valued Config resolves
// to. A durable store opened alongside the server must be keyed with
// the same string, or every replayed record would be version-skipped.
func DefaultCodeVersion() string { return buildVersion() }

// DeltaSource is the optional store capability behind GET /results:
// cursor-ordered replication of every appended record. *store.Durable
// implements it; the in-memory store does not (501).
type DeltaSource interface {
	Since(since uint64, fn func(store.Delta) error) error
	Cursor() uint64
}

// Server is the daemon: an http.Handler plus the scheduler behind it.
type Server struct {
	cfg      Config
	rec      *obs.Recorder
	metrics  *serverMetrics // always non-nil; nil instruments when disabled
	sched    *scheduler
	delta    DeltaSource // nil when the result store is memory-only
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in the tracing middleware
	start    time.Time
	draining atomic.Bool
}

// New builds a Server and starts its dispatcher. Callers must Close it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		rec:   cfg.Rec,
		mux:   http.NewServeMux(),
		start: time.Now(), // uptime gauge only; /stats is off the deterministic result path
	}
	// Metrics before the scheduler: the registry's collectors close over
	// s and only dereference s.sched at scrape time, while the scheduler
	// needs the histogram handles at construction.
	s.metrics = newServerMetrics(!cfg.DisableMetrics, s)
	s.sched = newScheduler(cfg.Workers, cfg.QueueLimit, cfg.Store, cfg.CodeVersion, !cfg.DisableBatch, cfg.Rec, cfg.Log, s.metrics)
	s.delta, _ = cfg.Store.(DeltaSource)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/results", s.handleResults)
	s.mux.Handle("/metrics", s.metrics.reg.Handler())
	s.handler = s.withTrace(s.mux)
	return s
}

// ServeHTTP makes the Server mountable directly into http.Server and
// httptest.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// BeginDrain stops admitting new sweeps (503) while letting accepted
// streams finish; /healthz starts reporting "draining". Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// Close drains the scheduler (every already-admitted point completes or
// is dropped) and stops the dispatcher. Call after the HTTP listener has
// stopped accepting work — http.Server.Shutdown ordering in cmd/sweepd.
func (s *Server) Close() {
	s.BeginDrain()
	s.sched.close()
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// reject refuses one /sweep request: the reason lands in the reject
// counter vec and the access log, the total mirrors into the recorder
// (so /stats requests_rejected and /metrics agree), retryable statuses
// carry Retry-After, and the body is the usual JSON error.
func (s *Server) reject(w http.ResponseWriter, r *http.Request, status int, reason, format string, args ...any) {
	if tr := traceFrom(r.Context()); tr != nil {
		tr.reason = reason
	}
	s.rec.Add("requests_rejected", 1)
	s.metrics.rejects.With(reason).Inc()
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
	}
	errorJSON(w, status, format, args...)
}

// handleSweep is POST /sweep: expand, admit, stream.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		errorJSON(w, http.StatusMethodNotAllowed, "POST a sweep request body to /sweep")
		return
	}
	tr := traceFrom(r.Context())
	if s.draining.Load() {
		s.reject(w, r, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reject(w, r, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	pts, keys, err := req.Points(s.cfg.CodeVersion, Limits{
		MaxPoints:       s.cfg.MaxPointsPerRequest,
		MaxInstructions: s.cfg.MaxInstructions,
	})
	if err != nil {
		s.reject(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}

	tickets, adm, err := s.sched.admit(pts, keys, tr.requestID())
	if errors.Is(err, ErrQueueFull) {
		s.reject(w, r, http.StatusTooManyRequests, "queue_full", "%v", err)
		return
	}
	if err != nil {
		// ErrStopped: Close won the race against this request's draining
		// check; the dispatcher is gone, so admit refused the points.
		s.reject(w, r, http.StatusServiceUnavailable, "stopped", "%v", err)
		return
	}
	s.rec.Add("requests", 1)
	if tr != nil {
		tr.points, tr.hits, tr.joins = len(pts), adm.hits, adm.joins
	}
	s.cfg.Log.Debug("sweep admitted",
		"request_id", tr.requestID(),
		"points", len(pts),
		"cache_hits", adm.hits,
		"misses", adm.misses,
		"dedup_joins", adm.joins)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	streamStart := time.Now()
	defer func() {
		// Observed on every exit — completion and mid-stream disconnects
		// both shape the stream-duration distribution.
		s.metrics.streamSeconds.Observe(time.Since(streamStart).Seconds())
	}()
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()

	for i, t := range tickets {
		line := t.line
		if t.job != nil {
			select {
			case <-t.job.done:
				if t.job.err != nil {
					// Validated points only fail on should-never-happen
					// internal errors; surface them without caching.
					s.streamError(w, flusher, t.job.key, t.job.err)
					continue
				}
				line = t.job.line
			case <-ctx.Done():
				s.disconnect(tickets[i:])
				return
			}
		}
		// line is newline-terminated and shared across streams; it must be
		// written as-is, never appended to.
		if _, err := w.Write(line); err != nil {
			s.disconnect(tickets[i+1:])
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Trailer: lets clients distinguish a complete stream from a dropped
	// connection. Deliberately free of timing or cache provenance so the
	// whole response body is identical for identical requests.
	fmt.Fprintf(w, "{\"done\":true,\"points\":%d}\n", len(tickets))
}

// streamError emits a non-cached error line for one point.
func (s *Server) streamError(w http.ResponseWriter, flusher http.Flusher, key string, err error) {
	line, _ := json.Marshal(map[string]string{"key": key, "error": err.Error()})
	w.Write(append(line, '\n'))
	if flusher != nil {
		flusher.Flush()
	}
}

// disconnect releases every unconsumed ticket of a request whose client
// went away.
func (s *Server) disconnect(remaining []ticket) {
	s.sched.release(remaining)
	s.rec.Add("client_disconnects", 1)
	s.cfg.Log.Debug("client disconnected", "released", len(remaining))
}

// Health is the /healthz body.
type Health struct {
	Status     string `json:"status"` // "ok" or "draining"
	QueueDepth int    `json:"queue_depth"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, _, _, _ := s.sched.gauges()
	h := Health{Status: "ok", QueueDepth: queued}
	status := http.StatusOK
	if s.draining.Load() {
		// 503 + Retry-After: load balancers stop routing here while the
		// drain finishes; the body says why.
		h.Status = "draining"
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(h)
}

// Stats is the /stats body: live queue gauges, the point cache's hit
// economy, and the full telemetry snapshot (which carries the
// simulator's wakeup_wakes/wakeup_scanned counters and per-task
// timings).
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	QueueDepth     int `json:"queue_depth"`
	RunningPoints  int `json:"running_points"`
	InflightPoints int `json:"inflight_points"` // queued + running

	CacheSize      int     `json:"cache_size"`
	CacheBytes     int64   `json:"cache_bytes"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	CacheEvictions int64   `json:"cache_evictions"`
	DedupJoins     int64   `json:"dedup_joins"`

	// The durable-store economy: hits served warm from the replayed
	// memory layer, hits re-read from a segment, live segment files and
	// their bytes, coordinator compactions, and the delta-sync cursor
	// high-water mark. All zero in memory-only mode.
	WarmHits    int64  `json:"warm_hits"`
	DiskHits    int64  `json:"disk_hits"`
	Segments    int    `json:"segments"`
	StoreBytes  int64  `json:"store_bytes"`
	Compactions int64  `json:"compactions"`
	StoreCursor uint64 `json:"store_cursor"`

	// Degraded-store operations (see store.Stats): nonzero means the
	// daemon is serving but the segment log needs an operator.
	DiskEntries       int   `json:"disk_entries"`
	StoreAppendErrors int64 `json:"store_append_errors"`
	StoreReadErrors   int64 `json:"store_read_errors"`

	Requests      int64 `json:"requests"`
	Rejected      int64 `json:"requests_rejected"`
	Disconnects   int64 `json:"client_disconnects"`
	PointsDone    int64 `json:"points_done"`
	PointsDropped int64 `json:"points_dropped"`

	Telemetry obs.Snapshot `json:"telemetry"`
}

// StatsSnapshot assembles the current Stats; exported so tests and
// embedding binaries can read it without HTTP.
func (s *Server) StatsSnapshot() Stats {
	queued, running, cacheSize, cacheBytes := s.sched.gauges()
	ss := s.cfg.Store.Stats()
	st := Stats{
		UptimeSeconds:     time.Since(s.start).Seconds(), // observation-only: never feeds a result body
		QueueDepth:        queued,
		RunningPoints:     running,
		InflightPoints:    queued + running,
		CacheSize:         cacheSize,
		CacheBytes:        cacheBytes,
		CacheHits:         s.rec.Counter("point_cache_hits"),
		CacheMisses:       s.rec.Counter("point_cache_misses"),
		CacheEvictions:    ss.Evictions,
		WarmHits:          ss.WarmHits,
		DiskHits:          ss.DiskHits,
		Segments:          ss.Segments,
		StoreBytes:        ss.StoreBytes,
		Compactions:       ss.Compactions,
		StoreCursor:       ss.Cursor,
		DiskEntries:       ss.DiskEntries,
		StoreAppendErrors: ss.AppendErrors,
		StoreReadErrors:   ss.ReadErrors,
		DedupJoins:        s.rec.Counter("dedup_joins"),
		Requests:          s.rec.Counter("requests"),
		Rejected:          s.rec.Counter("requests_rejected"),
		Disconnects:       s.rec.Counter("client_disconnects"),
		PointsDone:        s.rec.Counter("points_done"),
		PointsDropped:     s.rec.Counter("points_dropped"),
		Telemetry:         s.rec.Snapshot(),
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.CacheHitRatio = float64(st.CacheHits) / float64(total)
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.StatsSnapshot())
}

// deltaLine is one NDJSON line of a GET /results response: the record's
// delta-sync cursor plus the stored result line verbatim (it is already
// compact JSON, so embedding it as a raw message preserves its bytes).
type deltaLine struct {
	Cursor uint64          `json:"cursor"`
	Result json.RawMessage `json:"result"`
}

// handleResults is GET /results?since=<cursor>: cursor-ordered delta
// sync over the durable store, the way an event-log pull works — a peer
// node or CLI client streams every record appended after its cursor and
// resumes next time from the trailer's cursor. A cursor at or past the
// end yields an empty stream (just the trailer), not an error. Memory-
// only daemons answer 501: there is no log to sync from.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		errorJSON(w, http.StatusMethodNotAllowed, "GET /results?since=<cursor>")
		return
	}
	if s.delta == nil {
		errorJSON(w, http.StatusNotImplemented, "delta sync requires a durable result store (run sweepd with -store)")
		return
	}
	var since uint64
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad since cursor %q: %v", raw, err)
			return
		}
		since = v
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	last, records := since, 0
	err := s.delta.Since(since, func(d store.Delta) error {
		if err := enc.Encode(deltaLine{Cursor: d.Cursor, Result: json.RawMessage(bytes.TrimSuffix(d.Line, []byte("\n")))}); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		last, records = d.Cursor, records+1
		return nil
	})
	if err != nil {
		// Mid-stream failure (client gone or a log read error): the
		// missing trailer tells the client the pull was incomplete.
		s.cfg.Log.Debug("results stream aborted", "err", err)
		return
	}
	s.rec.Add("delta_pulls", 1)
	// The trailer's cursor is the resume point: the highest cursor this
	// response actually carried (or the caller's own cursor when the
	// stream was empty).
	fmt.Fprintf(w, "{\"done\":true,\"cursor\":%d,\"records\":%d}\n", last, records)
}
