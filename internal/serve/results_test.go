package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
)

// resultsEnvelope mirrors deltaLine plus the trailer fields, so one
// decode loop handles a whole GET /results body.
type resultsEnvelope struct {
	Cursor  uint64          `json:"cursor"`
	Result  json.RawMessage `json:"result"`
	Done    bool            `json:"done"`
	Records int             `json:"records"`
}

// pullResults GETs /results?since=N and returns the record envelopes
// and the trailer (which must be present: a missing trailer means the
// pull was cut short).
func pullResults(t *testing.T, url string, since uint64) ([]resultsEnvelope, resultsEnvelope) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/results?since=%d", url, since))
	if err != nil {
		t.Fatalf("GET /results: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /results status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("GET /results content type = %q", ct)
	}
	var (
		records []resultsEnvelope
		trailer resultsEnvelope
		sawDone bool
	)
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var env resultsEnvelope
		if err := dec.Decode(&env); err != nil {
			t.Fatalf("bad /results line: %v", err)
		}
		if env.Done {
			sawDone = true
			trailer = env
			continue
		}
		records = append(records, env)
	}
	if !sawDone {
		t.Fatal("/results stream ended without the done trailer")
	}
	return records, trailer
}

// openTestStore opens a Durable store for a server test, with
// coordinators off and the given code version.
func openTestStore(t *testing.T, dir, version string) *store.Durable {
	t.Helper()
	d, err := store.Open(store.Options{Dir: dir, CodeVersion: version, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestResultsRequiresDurableStore(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("memory-only /results status = %d, want 501", resp.StatusCode)
	}
}

func TestResultsMethodAndCursorValidation(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, "v-test")
	t.Cleanup(func() { d.Close() })
	_, ts := newTestServer(t, Config{Workers: 1, CodeVersion: "v-test", Store: d})

	resp, err := http.Post(ts.URL+"/results", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /results status = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/results?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor status = %d, want 400", resp.StatusCode)
	}
}

// TestResultsDeltaSync is the replication contract: two clients at
// different cursors reconstruct the exact same result set, records
// stream in strictly increasing cursor order, and the payload bytes are
// the sweep lines themselves.
func TestResultsDeltaSync(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, "v-test")
	t.Cleanup(func() { d.Close() })
	srv, ts := newTestServer(t, Config{Workers: 2, CodeVersion: "v-test", Store: d})

	resp := postSweep(t, ts.URL, `{"useful":[4,6,8],"benchmarks":["gcc"],"instructions":4000}`)
	sweepLines, _ := readStream(t, resp)
	if len(sweepLines) != 3 {
		t.Fatalf("sweep returned %d points, want 3", len(sweepLines))
	}

	// Client A pulls everything from the beginning.
	full, trailer := pullResults(t, ts.URL, 0)
	if len(full) != 3 {
		t.Fatalf("Since(0) streamed %d records, want 3", len(full))
	}
	if trailer.Records != 3 || trailer.Cursor != full[2].Cursor {
		t.Fatalf("trailer = %+v, want records=3 cursor=%d", trailer, full[2].Cursor)
	}
	seen := map[string]bool{}
	for i, env := range full {
		if i > 0 && env.Cursor <= full[i-1].Cursor {
			t.Fatalf("cursors not strictly increasing: %d then %d", full[i-1].Cursor, env.Cursor)
		}
		var pr PointResult
		if err := json.Unmarshal(env.Result, &pr); err != nil {
			t.Fatalf("record %d result is not a point line: %v", i, err)
		}
		want, ok := sweepLines[pr.Key]
		if !ok {
			t.Fatalf("delta record for unknown key %s", pr.Key)
		}
		if string(env.Result) != want {
			t.Fatalf("delta payload differs from the sweep line:\n%s\nvs\n%s", env.Result, want)
		}
		seen[pr.Key] = true
	}
	if len(seen) != 3 {
		t.Fatalf("delta stream covered %d distinct keys, want 3", len(seen))
	}

	// Client B resumes from the middle: its pull plus A's prefix must be
	// exactly the full set.
	tail, tailTrailer := pullResults(t, ts.URL, full[1].Cursor)
	if len(tail) != 1 || tail[0].Cursor != full[2].Cursor || string(tail[0].Result) != string(full[2].Result) {
		t.Fatalf("Since(%d) = %+v, want just the last record", full[1].Cursor, tail)
	}
	if tailTrailer.Cursor != full[2].Cursor {
		t.Fatalf("resume trailer cursor = %d, want %d", tailTrailer.Cursor, full[2].Cursor)
	}

	// A cursor at or past the end is an empty stream with a trailer that
	// echoes the caller's cursor — not an error.
	empty, emptyTrailer := pullResults(t, ts.URL, 999)
	if len(empty) != 0 {
		t.Fatalf("past-end pull streamed %d records, want 0", len(empty))
	}
	if emptyTrailer.Records != 0 || emptyTrailer.Cursor != 999 {
		t.Fatalf("past-end trailer = %+v, want records=0 cursor=999", emptyTrailer)
	}

	if st := srv.StatsSnapshot(); st.StoreCursor != full[2].Cursor {
		t.Fatalf("stats store_cursor = %d, want %d", st.StoreCursor, full[2].Cursor)
	}
}

// TestRetryAfterConfigurable pins the -retry-after plumbing: the header
// value on 429 and draining 503 responses comes from Config.RetryAfter.
func TestRetryAfterConfigurable(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueLimit: 2, RetryAfter: 7})
	resp := postSweep(t, ts.URL, `{"useful":[2,3,4,5,6],"benchmarks":["gcc"],"instructions":4000}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("429 Retry-After = %q, want \"7\"", ra)
	}

	srv.BeginDrain()
	resp = postSweep(t, ts.URL, `{"useful":[8],"benchmarks":["gcc"],"instructions":4000}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("503 Retry-After = %q, want \"7\"", ra)
	}
}

// TestWarmRestartServesWithoutSimulating is the in-process half of the
// persistence contract (the out-of-process half lives in
// internal/clitest): a server rebuilt over the same store directory
// serves the previous server's sweep byte-identically with zero
// simulations.
func TestWarmRestartServesWithoutSimulating(t *testing.T) {
	dir := t.TempDir()
	body := `{"useful":[4,6,8],"benchmarks":["gcc"],"instructions":4000}`

	d1 := openTestStore(t, dir, "v-test")
	srv1 := New(Config{Workers: 2, CodeVersion: "v-test", Store: d1})
	ts1 := httptest.NewServer(srv1)
	resp := postSweep(t, ts1.URL, body)
	first, _ := readStream(t, resp)
	if len(first) != 3 {
		t.Fatalf("first pass returned %d points, want 3", len(first))
	}
	ts1.Close()
	srv1.Close()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestStore(t, dir, "v-test")
	t.Cleanup(func() { d2.Close() })
	srv2, ts2 := newTestServer(t, Config{Workers: 2, CodeVersion: "v-test", Store: d2})
	resp = postSweep(t, ts2.URL, body)
	second, _ := readStream(t, resp)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatal("warm-restart response differs from the original")
	}
	st := srv2.StatsSnapshot()
	if st.PointsDone != 0 {
		t.Fatalf("points done = %d after restart, want 0 (everything replays from disk)", st.PointsDone)
	}
	if st.WarmHits == 0 {
		t.Fatal("warm hits = 0 after a warm-started sweep")
	}
	if st.Segments < 1 || st.StoreBytes <= 0 {
		t.Fatalf("store gauges after restart: segments=%d bytes=%d", st.Segments, st.StoreBytes)
	}
	if st.UptimeSeconds < 0 {
		t.Fatalf("uptime = %f, want >= 0", st.UptimeSeconds)
	}
}
