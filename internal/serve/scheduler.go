package serve

// The scheduler is the daemon's heart: a content-addressed result cache
// over single-point simulations, a singleflight registry of in-flight
// points, and one dispatcher that feeds queued points through the
// deterministic executor (internal/exec) in batches — grouped by
// benchmark trace, so the depths of a multi-depth sweep share one trace
// walk (core.SimulateBatch) — with one reusable scratch per worker.
// Concurrent clients asking overlapping
// grids attach to the same job, so each distinct point simulates at most
// once per process; a point whose every requester has disconnected is
// pruned from the queue immediately (or skipped mid-batch through the
// executor's Skip hook) instead of burning simulation time for nobody.

import (
	"encoding/json"
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// ErrQueueFull is returned by admit when accepting a request's new
// points would push the queue past its depth limit; the HTTP layer maps
// it to 429 + Retry-After.
var ErrQueueFull = errors.New("point queue full")

// ErrStopped is returned by admit once close has begun: the dispatcher
// may already have drained for the last time, so enqueueing would strand
// the request forever. The HTTP layer maps it to 503.
var ErrStopped = errors.New("scheduler stopped")

// errCancelled finalizes a job whose every requester went away before it
// ran. No client ever observes it (a job with waiters never carries it);
// it exists so an abandoned job's done channel still closes.
var errCancelled = errors.New("point cancelled: all requesters disconnected")

// job is one distinct simulation point moving through the scheduler.
// Exactly one of line/err is set before done closes; both are immutable
// afterwards. waiters counts the request streams still wanting the
// result — it is atomic so the executor's Skip hook can read it without
// taking the scheduler lock mid-batch.
type job struct {
	key  string
	opts core.PointOptions

	done chan struct{}
	line []byte // the newline-terminated NDJSON result, set before done closes
	err  error

	waiters atomic.Int32
	ran     bool // set by the worker that simulated it, read after the batch

	// Tracing/metrics carry-alongs, observation-only by contract: the
	// request ID of the request that created the job (joiners share it —
	// singleflight means the origin's simulation serves them all) and
	// the admission time feeding the queue-wait histogram.
	origin   string
	enqueued time.Time
}

// ticket is one point of one request's stream: either already resolved
// from the cache at admission, or a job to wait on.
type ticket struct {
	line []byte
	job  *job
}

// scheduler owns the queue, the singleflight registry and the result
// store. The queue and registry are guarded by mu; the dispatcher
// goroutine is the only caller of runBatch.
//
// The result store is the pluggable ResultStore seam (internal/store):
// a bounded in-memory LRU by default, or a durable warm-start store
// when the daemon runs with -store. The store has its own internal
// locking; scheduler calls into it both under mu (admission
// classification must be atomic against the queue) and outside it
// (finalize) — the nesting is always scheduler.mu -> store, never the
// reverse.
type scheduler struct {
	rec         *obs.Recorder
	log         *slog.Logger
	metrics     *serverMetrics
	workers     int
	codeVersion string
	queueLimit  int
	batch       bool // group a batch's points by benchmark trace (see runGrouped)
	cache       store.ResultStore

	mu       sync.Mutex
	queue    []*job
	inflight map[string]*job // queued or running jobs by key
	running  int             // jobs in the currently dispatched batch
	closing  bool

	wake    chan struct{} // buffered(1): queued work is waiting
	stop    chan struct{}
	stopped chan struct{}
}

func newScheduler(workers, queueLimit int, cache store.ResultStore, codeVersion string, batch bool, rec *obs.Recorder, log *slog.Logger, metrics *serverMetrics) *scheduler {
	if log == nil {
		log = slog.Default()
	}
	if metrics == nil {
		metrics = &serverMetrics{} // nil instruments: every observation no-ops
	}
	s := &scheduler{
		rec:         rec,
		log:         log,
		metrics:     metrics,
		workers:     workers,
		codeVersion: codeVersion,
		queueLimit:  queueLimit,
		batch:       batch,
		cache:       cache,
		inflight:    map[string]*job{},
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		stopped:     make(chan struct{}),
	}
	// The dispatcher is the one goroutine the serving layer owns; every
	// simulation it dispatches still runs through exec.MapWithState, so
	// parallel work stays behind the deterministic pool.
	go s.run() //reprolint:allow goroutinescope: the dispatcher only moves queued jobs into exec.MapWithState batches; all simulation parallelism stays behind the deterministic executor
	return s
}

// admitStats is one request's admission classification, for the access
// log and the request trace: how many of its points were already
// resolved (hits, of which joins attached to in-flight work) versus
// genuinely new (misses). hits+misses == points admitted.
type admitStats struct {
	hits   int
	misses int
	joins  int
}

// admit classifies each point of one request against the cache and the
// in-flight registry, enqueues the genuinely new ones, and returns one
// ticket per point in request order. keys[i] must be pts[i].Key(version)
// and the (pts, keys) pair must already be deduplicated; origin is the
// requester's trace ID, carried by each newly created job. When
// admitting would push the queue past its depth limit nothing is
// enqueued and ErrQueueFull is returned.
func (s *scheduler) admit(pts []core.PointOptions, keys []string, origin string) ([]ticket, admitStats, error) {
	var adm admitStats
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.closing {
		// close() may already have run the dispatcher's final drain;
		// enqueueing now would block the caller on a job nobody will run.
		return nil, adm, ErrStopped
	}

	// One store probe per key: the line (if resident or on disk) is held
	// for the classification pass below, so a hit is fetched exactly once.
	// Store state cannot shift between the passes — every store mutation
	// on the serving path (finalize's Put) runs under this same mutex.
	lines := make([][]byte, len(keys))
	fresh := 0
	for i, k := range keys {
		if line, ok := s.cache.Get(k); ok {
			lines[i] = line
			continue
		}
		if _, ok := s.inflight[k]; ok {
			continue
		}
		fresh++
	}
	if s.queueLimit > 0 && len(s.queue)+fresh > s.queueLimit {
		// The HTTP layer accounts the rejection (by reason) so direct
		// scheduler callers and requests share one counting site.
		return nil, adm, ErrQueueFull
	}

	tickets := make([]ticket, 0, len(pts))
	for i, k := range keys {
		if lines[i] != nil {
			s.rec.Add("point_cache_hits", 1)
			adm.hits++
			tickets = append(tickets, ticket{line: lines[i]})
			continue
		}
		if j, ok := s.inflight[k]; ok {
			// Singleflight join: the simulation is queued or running for
			// someone else; share it. A join is a hit — the work exists.
			j.waiters.Add(1)
			s.rec.Add("point_cache_hits", 1)
			s.rec.Add("dedup_joins", 1)
			adm.hits++
			adm.joins++
			tickets = append(tickets, ticket{job: j})
			continue
		}
		j := &job{key: k, opts: pts[i], done: make(chan struct{}),
			origin: origin, enqueued: time.Now()}
		j.waiters.Add(1)
		s.inflight[k] = j
		s.queue = append(s.queue, j)
		s.rec.Add("point_cache_misses", 1)
		adm.misses++
		tickets = append(tickets, ticket{job: j})
	}

	select {
	case s.wake <- struct{}{}:
	default:
	}
	return tickets, adm, nil
}

// release detaches one request from the tickets it never consumed (the
// client disconnected mid-stream). Queued jobs nobody else wants are
// pruned immediately; running ones are left for the executor's Skip hook
// and the post-batch sweep.
func (s *scheduler) release(tickets []ticket) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range tickets {
		if t.job == nil {
			continue
		}
		t.job.waiters.Add(-1)
	}
	kept := s.queue[:0]
	for _, j := range s.queue {
		if j.waiters.Load() > 0 {
			kept = append(kept, j)
			continue
		}
		delete(s.inflight, j.key)
		j.err = errCancelled
		close(j.done)
		s.rec.Add("points_dropped", 1)
	}
	s.queue = kept
}

// takeBatch claims every queued job that still has a waiter. Called by
// the dispatcher only.
func (s *scheduler) takeBatch() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	batch := make([]*job, 0, len(s.queue))
	for _, j := range s.queue {
		if j.waiters.Load() <= 0 { // release prunes these; belt and braces
			delete(s.inflight, j.key)
			j.err = errCancelled
			close(j.done)
			s.rec.Add("points_dropped", 1)
			continue
		}
		batch = append(batch, j)
	}
	s.queue = s.queue[:0]
	s.running += len(batch)
	return batch
}

// runBatch simulates one batch on the deterministic executor. On the
// batched path (the default) the jobs are first grouped by benchmark
// trace, so a multi-depth sweep runs every depth of a benchmark through
// one pipeline.RunBatch walk; -batch=false keeps the per-point flat
// path. Either way each job finalizes (cache write + done close) the
// moment its point completes, so request streams advance while the
// batch is still running; jobs whose waiters all vanished are skipped
// by the executor and either requeued (a new waiter attached in the
// window before the skip) or dropped.
func (s *scheduler) runBatch(batch []*job) {
	if s.batch {
		s.runGrouped(batch)
	} else {
		s.runFlat(batch)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running -= len(batch)
	for _, j := range batch {
		if j.ran {
			continue
		}
		if j.waiters.Load() > 0 {
			// A new request attached while the batch was skipping it:
			// put it back in line rather than failing the newcomer (the
			// dispatcher's drain loop picks it up on its next pass).
			s.queue = append(s.queue, j)
			continue
		}
		delete(s.inflight, j.key)
		j.err = errCancelled
		close(j.done)
		s.rec.Add("points_dropped", 1)
	}
}

// runFlat simulates a batch point by point, one reusable Scratch per
// worker: the pre-batching dispatch, kept behind -batch=false as the
// A/B reference for the grouped path.
func (s *scheduler) runFlat(batch []*job) {
	pool := exec.Pool{
		Workers:     s.workers,
		OnTaskStart: s.rec.TaskStart,
		OnTaskDone:  s.rec.TaskDone,
		Skip:        func(i int) bool { return batch[i].waiters.Load() <= 0 },
	}
	exec.MapWithState(pool, batch, pipeline.NewScratch,
		func(sc *pipeline.Scratch, _ int, j *job) struct{} {
			j.ran = true
			s.metrics.queueWait.Observe(time.Since(j.enqueued).Seconds())
			res, err := core.SimulatePointWith(j.opts, sc, s.rec)
			s.finishJob(j, res, err)
			return struct{}{}
		})
}

// traceIdent is the normalized trace identity the grouped dispatch
// batches on: two points with equal idents walk the same generated
// trace, so their depth-invariant work can be shared.
type traceIdent struct {
	bench string
	n     int
	seed  uint64
}

func identOf(o core.PointOptions) traceIdent {
	o = o.Normalize()
	return traceIdent{bench: o.Benchmark, n: o.Instructions, seed: o.Seed}
}

// runGrouped simulates a batch grouped by benchmark trace: one executor
// task per group (groups form in first-seen queue order), every group
// running its lanes through core.SimulateBatch with one reusable
// BatchScratch per worker. The executor's Skip hook drops a group only
// when every lane lost its waiters; a group that runs re-filters its
// lanes, so a point abandoned after the group check simply isn't
// simulated and takes the usual requeue-or-drop path after the batch.
// Result lines are byte-identical to runFlat's — the batch accounting
// counters are excluded from the wire format — which the serve tests
// pin.
func (s *scheduler) runGrouped(batch []*job) {
	groups := make([][]*job, 0, len(batch))
	index := make(map[traceIdent]int, len(batch))
	for _, j := range batch {
		id := identOf(j.opts)
		gi, ok := index[id]
		if !ok {
			gi = len(groups)
			index[id] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], j)
	}
	pool := exec.Pool{
		Workers:     s.workers,
		OnTaskStart: s.rec.TaskStart,
		OnTaskDone:  s.rec.TaskDone,
		Skip: func(g int) bool {
			for _, j := range groups[g] {
				if j.waiters.Load() > 0 {
					return false
				}
			}
			return true
		},
	}
	exec.MapGroupsWithState(pool, groups, pipeline.NewBatchScratch,
		func(bs *pipeline.BatchScratch, _ int, jobs []*job) []struct{} {
			live := jobs[:0]
			for _, j := range jobs {
				if j.waiters.Load() > 0 {
					live = append(live, j)
				}
			}
			if len(live) == 0 {
				return nil
			}
			opts := make([]core.PointOptions, len(live))
			for i, j := range live {
				j.ran = true
				s.metrics.queueWait.Observe(time.Since(j.enqueued).Seconds())
				opts[i] = j.opts
			}
			results, err := core.SimulateBatch(opts, bs, s.rec)
			for i, j := range live {
				if err != nil {
					s.finishJob(j, core.BenchPoint{}, err)
					continue
				}
				s.finishJob(j, results[i], nil)
			}
			return nil
		})
}

// finishJob publishes one simulated job: marshal, count, finalize. err
// is the should-not-happen guard for points that were validated at
// admission; it surfaces on the stream without caching.
func (s *scheduler) finishJob(j *job, res core.BenchPoint, err error) {
	if err != nil {
		j.err = err
		s.finalize(j, nil)
		return
	}
	line, merr := json.Marshal(newPointResult(j.key, j.opts, res))
	if merr != nil {
		j.err = merr
		s.finalize(j, nil)
		return
	}
	// The newline is part of the cached line: the slice is shared
	// by every stream that hits this point, so it must never be
	// appended to after it leaves this worker.
	line = append(line, '\n')
	s.rec.Add("simulations", 1)
	s.rec.Add("wakeup_wakes", int64(res.Stats.WakeupWakes))
	s.rec.Add("wakeup_scanned", int64(res.Stats.WakeupScanned))
	s.finalize(j, line)
	// The trace's scheduler hop: ties the simulation and store
	// fill back to the request that caused them.
	s.log.Debug("point simulated",
		"request_id", j.origin,
		"key", j.key,
		"bytes", len(line))
}

// finalize publishes one completed job: result stored (on success — a
// durable store also appends it to the segment log here, write-through),
// registry entry retired, waiters woken. The store write happens under
// mu so admission's classify-then-enqueue stays atomic against it.
func (s *scheduler) finalize(j *job, line []byte) {
	s.mu.Lock()
	if line != nil {
		j.line = line
		s.cache.Put(j.key, line)
		s.rec.Add("points_done", 1)
	}
	delete(s.inflight, j.key)
	s.mu.Unlock()
	close(j.done)
}

// run is the dispatcher loop: drain the queue batch by batch whenever
// woken; on stop, finish whatever is already admitted (the HTTP layer
// has stopped admitting by then) so draining streams complete, then
// exit.
func (s *scheduler) run() {
	defer close(s.stopped)
	for {
		select {
		case <-s.stop:
			s.drainQueue()
			return
		case <-s.wake:
			s.drainQueue()
		}
	}
}

func (s *scheduler) drainQueue() {
	for {
		batch := s.takeBatch()
		if len(batch) == 0 {
			return
		}
		s.runBatch(batch)
	}
}

// close stops the dispatcher after it finishes every admitted job and
// waits for it to exit. Safe to call once. Setting closing under mu
// before closing stop orders every admit against the final drain: an
// admit that saw closing==false finished enqueueing before close(s.stop),
// so the dispatcher's last drainQueue still picks its jobs up; any later
// admit fails with ErrStopped instead of stranding its caller.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	close(s.stop)
	<-s.stopped
}

// gauges reports the live queue and cache state for /healthz and /stats.
func (s *scheduler) gauges() (queued, running, cacheSize int, cacheBytes int64) {
	s.mu.Lock()
	queued, running = len(s.queue), s.running
	s.mu.Unlock()
	return queued, running, s.cache.Len(), s.cache.Bytes()
}
