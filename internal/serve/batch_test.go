package serve

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

// postSweepBody sends one sweep request and returns the raw response
// body: the byte-identity oracle reads the stream verbatim, newlines,
// field order and trailer included.
func postSweepBody(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, err := http.Post(url+"/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return raw
}

// TestBatchedSweepBytesIdentical is the serving layer's batch oracle:
// the same multi-depth, multi-benchmark sweep against a batched and an
// unbatched daemon must produce byte-identical NDJSON bodies and the
// same cache economy. The grid shape (5 depths x 2 benchmarks, one
// repeated depth list entry collapsing in expansion) is exactly the
// case the grouped dispatch accelerates, so any accounting that leaked
// into the wire format would show up here.
func TestBatchedSweepBytesIdentical(t *testing.T) {
	const req = `{"useful":[2,4,6,8,16],"benchmarks":["gcc","swim"],"instructions":4000}`

	_, batched := newTestServer(t, Config{Workers: 2})
	srvFlat, flat := newTestServer(t, Config{Workers: 2, DisableBatch: true})
	if srvFlat.sched.batch {
		t.Fatal("DisableBatch did not reach the scheduler")
	}

	bodyBatched := postSweepBody(t, batched.URL, req)
	bodyFlat := postSweepBody(t, flat.URL, req)
	if !bytes.Equal(bodyBatched, bodyFlat) {
		t.Fatalf("batched and unbatched sweep bodies differ:\nbatched: %s\nflat:    %s", bodyBatched, bodyFlat)
	}

	// A repeat of the same request must be a pure cache replay on both
	// daemons — same bytes again, and an economy that agrees: every
	// point simulated exactly once, the second pass all hits.
	if again := postSweepBody(t, batched.URL, req); !bytes.Equal(again, bodyBatched) {
		t.Fatal("batched daemon's cached replay differs from its first stream")
	}
	if again := postSweepBody(t, flat.URL, req); !bytes.Equal(again, bodyFlat) {
		t.Fatal("unbatched daemon's cached replay differs from its first stream")
	}

	stB := getStats(t, batched.URL)
	stF := getStats(t, flat.URL)
	for _, c := range []struct {
		name          string
		batched, flat int64
	}{
		{"cache_hits", stB.CacheHits, stF.CacheHits},
		{"cache_misses", stB.CacheMisses, stF.CacheMisses},
		{"points_done", stB.PointsDone, stF.PointsDone},
		{"dedup_joins", stB.DedupJoins, stF.DedupJoins},
	} {
		if c.batched != c.flat {
			t.Errorf("%s: batched %d, unbatched %d — cache economy must not depend on batching", c.name, c.batched, c.flat)
		}
	}
	if stB.CacheMisses != 10 {
		t.Errorf("cache_misses = %d, want 10 (5 depths x 2 benchmarks, simulated once)", stB.CacheMisses)
	}
	if stB.CacheHits != 10 {
		t.Errorf("cache_hits = %d, want 10 (the full repeat request)", stB.CacheHits)
	}
}

// TestGroupedBatchHandlesMixedTraces drives the grouped dispatch with
// points that must NOT share a group — different instruction counts and
// different seeds over one benchmark — plus a depth pair that must. It
// guards the grouping key: a wrong key either panics SimulateBatch
// (mixed traces in one batch) or silently merges distinct traces.
func TestGroupedBatchHandlesMixedTraces(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, req := range []string{
		`{"useful":[6,8],"benchmarks":["gcc"],"instructions":4000}`,
		`{"useful":[6,8],"benchmarks":["gcc"],"instructions":6000}`,
		`{"useful":[6,8],"benchmarks":["gcc"],"instructions":4000,"seed":7}`,
	} {
		resp := postSweep(t, ts.URL, req)
		lines, done := readStream(t, resp)
		if !done || len(lines) != 2 {
			t.Fatalf("request %s: got %d lines (done=%v), want 2", req, len(lines), done)
		}
	}
}
