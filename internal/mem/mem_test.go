package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(1024, 64, 2) // 8 sets × 2 ways
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("repeat access missed")
	}
	if !c.Access(32) {
		t.Error("same-block access missed")
	}
	if c.Access(4096) {
		t.Error("distinct block hit cold")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	c := NewCache(2*64, 64, 2) // one set, two ways
	c.Access(0)                // block A
	c.Access(64)               // block B
	c.Access(0)                // touch A — B becomes LRU
	c.Access(128)              // block C evicts B
	if !c.Access(0) {
		t.Error("A evicted though it was MRU")
	}
	if c.Access(64) {
		t.Error("B survived though it was LRU")
	}
}

func TestCacheCapacityBehaviour(t *testing.T) {
	// Sequentially touching twice the capacity with direct re-walk gives
	// ~100% misses on the second pass (LRU, working set > capacity).
	c := NewCache(8<<10, 64, 2)
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 16<<10; a += 64 {
			c.Access(a)
		}
	}
	if mr := c.MissRate(); mr < 0.95 {
		t.Errorf("thrash miss rate = %.3f, want ~1", mr)
	}
	// A working set half the capacity gives ~0% misses after the first pass.
	c.Reset()
	for a := uint64(0); a < 4<<10; a += 64 {
		c.Access(a)
	}
	c.Accesses, c.Misses = 0, 0
	for pass := 0; pass < 5; pass++ {
		for a := uint64(0); a < 4<<10; a += 64 {
			c.Access(a)
		}
	}
	if mr := c.MissRate(); mr > 0.01 {
		t.Errorf("resident miss rate = %.3f, want ~0", mr)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(NewCache(1<<10, 64, 2), NewCache(8<<10, 64, 2))
	if lvl := h.Access(0); lvl != Memory {
		t.Errorf("cold access = %v, want memory", lvl)
	}
	if lvl := h.Access(0); lvl != L1Hit {
		t.Errorf("hot access = %v, want L1", lvl)
	}
	// Evict from L1 (1KB) but not L2 (8KB): walk 4KB, then re-touch 0.
	for a := uint64(64); a < 4<<10; a += 64 {
		h.Access(a)
	}
	if lvl := h.Access(0); lvl != L2Hit {
		t.Errorf("L1-evicted access = %v, want L2", lvl)
	}
}

func TestFlatHierarchy(t *testing.T) {
	h := NewFlat()
	for i := 0; i < 10; i++ {
		if lvl := h.Access(uint64(i * 8)); lvl != Memory {
			t.Errorf("flat access = %v, want memory", lvl)
		}
	}
}

func TestSPECWorkloadMissRates(t *testing.T) {
	// Group character under the 21264 hierarchy (64KB L1, 2MB L2):
	// mcf (64MB pointer chasing) misses much more than eon (512KB resident).
	missRate := func(name string) (l1, l2 float64) {
		p, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("no profile %s", name)
		}
		tr := p.Generate(200000, 5)
		h := NewHierarchy(NewCache(64<<10, 64, 2), NewCache(2<<20, 64, 2))
		for _, in := range tr.Insts {
			if in.Class.IsMem() {
				h.Access(in.Addr)
			}
		}
		return h.L1.MissRate(), h.L2.MissRate()
	}
	mcfL1, mcfL2 := missRate("181.mcf")
	eonL1, _ := missRate("252.eon")
	if mcfL1 < 3*eonL1 {
		t.Errorf("mcf L1 miss rate (%.3f) not ≫ eon (%.3f)", mcfL1, eonL1)
	}
	if mcfL2 < 0.3 {
		t.Errorf("mcf L2 miss rate = %.3f; its 64MB footprint should bust a 2MB L2", mcfL2)
	}
	swimL1, _ := missRate("171.swim")
	if swimL1 > 0.5 {
		t.Errorf("swim L1 miss rate = %.3f; streaming code should mostly hit lines", swimL1)
	}
	_ = isa.Load
}

func TestCacheProperties(t *testing.T) {
	// Property: immediately re-accessing any address hits; statistics stay
	// consistent.
	f := func(addrs []uint64) bool {
		c := NewCache(4<<10, 64, 4)
		for _, a := range addrs {
			c.Access(a)
			if !c.Access(a) {
				return false
			}
		}
		return c.Misses <= c.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewCachePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero capacity": func() { NewCache(0, 64, 2) },
		"non-multiple":  func() { NewCache(1000, 64, 2) },
		"non-pow2":      func() { NewCache(960, 48, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestCopyStateFromIsIndistinguishable is the batch prewarm template's
// contract: after CopyStateFrom, the copy and the source answer an
// identical access stream identically — contents, recency order,
// prefetcher phase and statistics all carried over.
func TestCopyStateFromIsIndistinguishable(t *testing.T) {
	build := func() *Hierarchy {
		return NewHierarchy(NewCache(8<<10, 64, 2), NewCache(64<<10, 64, 4))
	}
	src := build()
	src.Coverage = 0.7
	src.Prewarm(4<<10, 32<<10)
	for i := 0; i < 500; i++ {
		src.Access(uint64(i*192) % (96 << 10))
	}

	dst := build()
	dst.Access(123) // pre-existing state must be fully overwritten
	dst.CopyStateFrom(src)

	if dst.L1.Accesses != src.L1.Accesses || dst.L1.Misses != src.L1.Misses ||
		dst.L2.Accesses != src.L2.Accesses || dst.L2.Misses != src.L2.Misses ||
		dst.Prefetches != src.Prefetches {
		t.Fatalf("copied statistics diverge: dst L1 %d/%d L2 %d/%d pf %d, src L1 %d/%d L2 %d/%d pf %d",
			dst.L1.Accesses, dst.L1.Misses, dst.L2.Accesses, dst.L2.Misses, dst.Prefetches,
			src.L1.Accesses, src.L1.Misses, src.L2.Accesses, src.L2.Misses, src.Prefetches)
	}

	// Replay the same probe stream on both: every level answer and every
	// counter must stay in lockstep (this exercises tags, LRU recency and
	// the fractional prefetch accumulator, not just the counters above).
	for i := 0; i < 2000; i++ {
		addr := uint64(i*832+7) % (128 << 10)
		if a, b := src.Access(addr), dst.Access(addr); a != b {
			t.Fatalf("probe %d (addr %#x): src answered %v, copy answered %v", i, addr, a, b)
		}
	}
	if dst.L1.Misses != src.L1.Misses || dst.L2.Misses != src.L2.Misses || dst.Prefetches != src.Prefetches {
		t.Fatalf("post-replay statistics diverge: dst L1 %d L2 %d pf %d, src L1 %d L2 %d pf %d",
			dst.L1.Misses, dst.L2.Misses, dst.Prefetches, src.L1.Misses, src.L2.Misses, src.Prefetches)
	}
}

// TestCopyStateFromRejectsGeometryMismatch: the copy is a pair of
// memcpys, so shape mismatches must panic loudly instead of aliasing
// wrong sets.
func TestCopyStateFromRejectsGeometryMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CopyStateFrom across geometries did not panic")
		}
	}()
	dst := NewCache(8<<10, 64, 2)
	dst.CopyStateFrom(NewCache(16<<10, 64, 2))
}

// TestSetIndexMaskMatchesModulo pins the power-of-two fast path against
// the general modulo for both shapes.
func TestSetIndexMaskMatchesModulo(t *testing.T) {
	pow2 := NewCache(8<<10, 64, 2) // 64 sets: masked path
	odd := NewCache(12<<10, 64, 2) // 96 sets: modulo path
	if pow2.setMask == ^uint64(0) {
		t.Fatal("64-set cache did not take the mask path")
	}
	if odd.setMask != ^uint64(0) {
		t.Fatal("96-set cache took the mask path")
	}
	for _, c := range []*Cache{pow2, odd} {
		for _, block := range []uint64{0, 1, 63, 64, 95, 96, 1 << 20, ^uint64(0) >> 8} {
			if got, want := c.setIndex(block), int(block%uint64(c.sets)); got != want {
				t.Errorf("%d sets, block %d: setIndex %d, want %d", c.sets, block, got, want)
			}
		}
	}
}
