package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(1024, 64, 2) // 8 sets × 2 ways
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("repeat access missed")
	}
	if !c.Access(32) {
		t.Error("same-block access missed")
	}
	if c.Access(4096) {
		t.Error("distinct block hit cold")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	c := NewCache(2*64, 64, 2) // one set, two ways
	c.Access(0)                // block A
	c.Access(64)               // block B
	c.Access(0)                // touch A — B becomes LRU
	c.Access(128)              // block C evicts B
	if !c.Access(0) {
		t.Error("A evicted though it was MRU")
	}
	if c.Access(64) {
		t.Error("B survived though it was LRU")
	}
}

func TestCacheCapacityBehaviour(t *testing.T) {
	// Sequentially touching twice the capacity with direct re-walk gives
	// ~100% misses on the second pass (LRU, working set > capacity).
	c := NewCache(8<<10, 64, 2)
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 16<<10; a += 64 {
			c.Access(a)
		}
	}
	if mr := c.MissRate(); mr < 0.95 {
		t.Errorf("thrash miss rate = %.3f, want ~1", mr)
	}
	// A working set half the capacity gives ~0% misses after the first pass.
	c.Reset()
	for a := uint64(0); a < 4<<10; a += 64 {
		c.Access(a)
	}
	c.Accesses, c.Misses = 0, 0
	for pass := 0; pass < 5; pass++ {
		for a := uint64(0); a < 4<<10; a += 64 {
			c.Access(a)
		}
	}
	if mr := c.MissRate(); mr > 0.01 {
		t.Errorf("resident miss rate = %.3f, want ~0", mr)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(NewCache(1<<10, 64, 2), NewCache(8<<10, 64, 2))
	if lvl := h.Access(0); lvl != Memory {
		t.Errorf("cold access = %v, want memory", lvl)
	}
	if lvl := h.Access(0); lvl != L1Hit {
		t.Errorf("hot access = %v, want L1", lvl)
	}
	// Evict from L1 (1KB) but not L2 (8KB): walk 4KB, then re-touch 0.
	for a := uint64(64); a < 4<<10; a += 64 {
		h.Access(a)
	}
	if lvl := h.Access(0); lvl != L2Hit {
		t.Errorf("L1-evicted access = %v, want L2", lvl)
	}
}

func TestFlatHierarchy(t *testing.T) {
	h := NewFlat()
	for i := 0; i < 10; i++ {
		if lvl := h.Access(uint64(i * 8)); lvl != Memory {
			t.Errorf("flat access = %v, want memory", lvl)
		}
	}
}

func TestSPECWorkloadMissRates(t *testing.T) {
	// Group character under the 21264 hierarchy (64KB L1, 2MB L2):
	// mcf (64MB pointer chasing) misses much more than eon (512KB resident).
	missRate := func(name string) (l1, l2 float64) {
		p, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("no profile %s", name)
		}
		tr := p.Generate(200000, 5)
		h := NewHierarchy(NewCache(64<<10, 64, 2), NewCache(2<<20, 64, 2))
		for _, in := range tr.Insts {
			if in.Class.IsMem() {
				h.Access(in.Addr)
			}
		}
		return h.L1.MissRate(), h.L2.MissRate()
	}
	mcfL1, mcfL2 := missRate("181.mcf")
	eonL1, _ := missRate("252.eon")
	if mcfL1 < 3*eonL1 {
		t.Errorf("mcf L1 miss rate (%.3f) not ≫ eon (%.3f)", mcfL1, eonL1)
	}
	if mcfL2 < 0.3 {
		t.Errorf("mcf L2 miss rate = %.3f; its 64MB footprint should bust a 2MB L2", mcfL2)
	}
	swimL1, _ := missRate("171.swim")
	if swimL1 > 0.5 {
		t.Errorf("swim L1 miss rate = %.3f; streaming code should mostly hit lines", swimL1)
	}
	_ = isa.Load
}

func TestCacheProperties(t *testing.T) {
	// Property: immediately re-accessing any address hits; statistics stay
	// consistent.
	f := func(addrs []uint64) bool {
		c := NewCache(4<<10, 64, 4)
		for _, a := range addrs {
			c.Access(a)
			if !c.Access(a) {
				return false
			}
		}
		return c.Misses <= c.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewCachePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero capacity": func() { NewCache(0, 64, 2) },
		"non-multiple":  func() { NewCache(1000, 64, 2) },
		"non-pow2":      func() { NewCache(960, 48, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
