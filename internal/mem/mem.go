// Package mem simulates the data-side memory hierarchy: set-associative
// L1 and L2 caches with LRU replacement over a flat main memory, plus the
// Section 4.2 "Cray-1S" mode in which there are no caches at all and every
// access pays a flat memory latency. The hierarchy decides *where* an
// access hits; the pipeline simulators translate the level into cycles
// using the clock-resolved Timing.
package mem

// Level says where an access was satisfied.
type Level uint8

const (
	L1Hit Level = iota
	L2Hit
	Memory
)

func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	default:
		return "memory"
	}
}

// way is one cache way's tag and LRU timestamp, kept together so a set
// probe walks one contiguous run of memory (at the default 4-way
// associativity, one 64-byte host cache line per set) instead of two
// parallel arrays.
type way struct {
	tag  uint64 // 0 means empty (tag 0 is remapped)
	used uint64 // LRU timestamp
}

// Cache is one set-associative cache level with LRU replacement.
type Cache struct {
	sets      int
	assoc     int
	blockBits uint

	// setMask indexes sets with an AND instead of a modulo when the set
	// count is a power of two (every Table 3 geometry); ^0 marks the
	// general case. Pure function of sets, so Copy/Reset never touch it.
	setMask uint64

	ways  []way // sets × assoc
	clock uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given capacity, block size and
// associativity. Capacity must be a multiple of block×assoc.
func NewCache(capacityBytes, blockBytes, assoc int) *Cache {
	if capacityBytes <= 0 || blockBytes <= 0 || assoc <= 0 {
		panic("mem: cache dimensions must be positive")
	}
	if capacityBytes%(blockBytes*assoc) != 0 {
		panic("mem: capacity must be a multiple of block size × associativity")
	}
	sets := capacityBytes / (blockBytes * assoc)
	bits := uint(0)
	for 1<<bits < blockBytes {
		bits++
	}
	if 1<<bits != blockBytes {
		panic("mem: block size must be a power of two")
	}
	mask := ^uint64(0)
	if sets&(sets-1) == 0 {
		mask = uint64(sets - 1)
	}
	return &Cache{
		sets:      sets,
		assoc:     assoc,
		blockBits: bits,
		setMask:   mask,
		ways:      make([]way, sets*assoc),
	}
}

// Access looks addr up, filling the block on a miss, and reports whether
// it hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.clock++
	block := addr >> c.blockBits
	tag := block + 1 // avoid the zero (empty) tag
	set := c.setIndex(block)
	ways := c.ways[set*c.assoc : set*c.assoc+c.assoc]

	victim, oldest := 0, ways[0].used
	for w := range ways {
		if ways[w].tag == tag {
			ways[w].used = c.clock
			return true
		}
		if ways[w].used < oldest {
			victim, oldest = w, ways[w].used
		}
	}
	c.Misses++
	ways[victim] = way{tag: tag, used: c.clock}
	return false
}

// setIndex maps a block number to its set: a mask for power-of-two set
// counts (identical to the modulo, minus the 64-bit divide the hot access
// path would otherwise pay), a modulo otherwise.
func (c *Cache) setIndex(block uint64) int {
	if c.setMask != ^uint64(0) {
		return int(block & c.setMask)
	}
	return int(block % uint64(c.sets))
}

// install places addr's block in the cache without counting it as a demand
// access (used by the prefetcher).
func (c *Cache) install(addr uint64) {
	c.clock++
	block := addr >> c.blockBits
	tag := block + 1
	set := c.setIndex(block)
	ways := c.ways[set*c.assoc : set*c.assoc+c.assoc]
	victim, oldest := 0, ways[0].used
	for w := range ways {
		if ways[w].tag == tag {
			return // already present; leave recency alone
		}
		if ways[w].used < oldest {
			victim, oldest = w, ways[w].used
		}
	}
	ways[victim] = way{tag: tag, used: c.clock}
}

// CopyStateFrom overwrites c's contents, recency state and statistics
// with src's, leaving the two caches indistinguishable. Both must share
// geometry (capacity, block size, associativity).
func (c *Cache) CopyStateFrom(src *Cache) {
	if c.sets != src.sets || c.assoc != src.assoc || c.blockBits != src.blockBits {
		panic("mem: CopyStateFrom requires identical cache geometry")
	}
	copy(c.ways, src.ways)
	c.clock = src.clock
	c.Accesses = src.Accesses
	c.Misses = src.Misses
}

// MissRate returns the miss fraction so far.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	c.clock = 0
	c.Accesses = 0
	c.Misses = 0
}

// Hierarchy is the data-side cache stack.
type Hierarchy struct {
	L1, L2 *Cache
	Flat   bool // Cray-1S mode: no caches, everything goes to memory

	// Prefetch enables a next-line prefetcher: on an L1 miss (or on
	// entering a previously prefetched line) the following cache line is
	// installed in both levels. This stands in for the software prefetching
	// in the paper's compiled SPEC binaries. Coverage is the fraction of
	// prefetch opportunities actually taken (software prefetching is
	// imperfect — a property of the benchmark's code, carried on the
	// trace); opportunities are skipped deterministically.
	Prefetch bool
	Coverage float64

	Prefetches uint64
	pfAccum    float64
}

// NewHierarchy builds an L1+L2 stack with next-line prefetching enabled at
// full coverage.
func NewHierarchy(l1, l2 *Cache) *Hierarchy {
	return &Hierarchy{L1: l1, L2: l2, Prefetch: true, Coverage: 1.0}
}

// NewFlat builds the cacheless Cray-1S memory system.
func NewFlat() *Hierarchy { return &Hierarchy{Flat: true} }

// Access performs a data access (loads and stores are treated alike:
// write-allocate, and writeback traffic is not modeled) and returns the
// level that satisfied it.
func (h *Hierarchy) Access(addr uint64) Level {
	if h.Flat {
		return Memory
	}
	if h.L1.Access(addr) {
		// Tagged sequential prefetch: an access entering a new line (its
		// first word) keeps the prefetcher running ahead of a stream even
		// though the line itself hit (it was prefetched earlier).
		if h.Prefetch && addr&(uint64(1)<<h.L1.blockBits-1) < 8 {
			h.prefetchNext(addr)
		}
		return L1Hit
	}
	lvl := L2Hit
	if !h.L2.Access(addr) {
		lvl = Memory
	}
	if h.Prefetch {
		h.prefetchNext(addr)
	}
	return lvl
}

// prefetchNext installs the line after addr's into both levels, honouring
// the coverage fraction deterministically.
func (h *Hierarchy) prefetchNext(addr uint64) {
	h.pfAccum += h.Coverage
	if h.pfAccum < 1 {
		return
	}
	h.pfAccum -= 1
	next := addr + uint64(1)<<h.L1.blockBits
	h.L1.install(next)
	h.L2.install(next)
	h.Prefetches++
}

// Prewarm installs the hot and warm working-set tiers, modeling the cache
// state a benchmark reaches after the paper's 500M skipped instructions.
// The hot tier lands in both levels; the warm tier in the L2 (bounded by
// its capacity under LRU).
func (h *Hierarchy) Prewarm(hotBytes, warmBytes uint64) {
	if h.Flat {
		return
	}
	block := uint64(1) << h.L2.blockBits
	for a := uint64(0); a < warmBytes; a += block {
		h.L2.install(a)
	}
	for a := uint64(0); a < hotBytes; a += block {
		h.L1.install(a)
		h.L2.install(a)
	}
}

// CopyStateFrom overwrites h's entire mutable state — cache contents,
// recency, statistics, prefetcher configuration and accumulator — with
// src's, leaving the two hierarchies indistinguishable. Both must share
// geometry (same levels with identical cache dimensions). This is the
// batch runner's fast path: copying a prewarmed template is a pair of
// memcpys per level instead of re-walking the working set per lane.
func (h *Hierarchy) CopyStateFrom(src *Hierarchy) {
	if h.Flat != src.Flat {
		panic("mem: CopyStateFrom requires identical hierarchy shapes")
	}
	if !h.Flat {
		h.L1.CopyStateFrom(src.L1)
		h.L2.CopyStateFrom(src.L2)
	}
	h.Prefetch = src.Prefetch
	h.Coverage = src.Coverage
	h.Prefetches = src.Prefetches
	h.pfAccum = src.pfAccum
}

// Reset clears both levels and the prefetcher's accumulated state, so a
// reset hierarchy is indistinguishable from a freshly built one of the
// same geometry (the pipeline scratch state reuses hierarchies across
// runs on that guarantee). Prefetch and Coverage are configuration, not
// accumulated state, and are left as set.
func (h *Hierarchy) Reset() {
	if h.L1 != nil {
		h.L1.Reset()
	}
	if h.L2 != nil {
		h.L2.Reset()
	}
	h.Prefetches = 0
	h.pfAccum = 0
}
