// Package mem simulates the data-side memory hierarchy: set-associative
// L1 and L2 caches with LRU replacement over a flat main memory, plus the
// Section 4.2 "Cray-1S" mode in which there are no caches at all and every
// access pays a flat memory latency. The hierarchy decides *where* an
// access hits; the pipeline simulators translate the level into cycles
// using the clock-resolved Timing.
package mem

// Level says where an access was satisfied.
type Level uint8

const (
	L1Hit Level = iota
	L2Hit
	Memory
)

func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	default:
		return "memory"
	}
}

// Cache is one set-associative cache level with LRU replacement.
type Cache struct {
	sets      int
	assoc     int
	blockBits uint

	tags  []uint64 // sets × assoc; 0 means empty (tag 0 is remapped)
	used  []uint64 // LRU timestamps
	clock uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given capacity, block size and
// associativity. Capacity must be a multiple of block×assoc.
func NewCache(capacityBytes, blockBytes, assoc int) *Cache {
	if capacityBytes <= 0 || blockBytes <= 0 || assoc <= 0 {
		panic("mem: cache dimensions must be positive")
	}
	if capacityBytes%(blockBytes*assoc) != 0 {
		panic("mem: capacity must be a multiple of block size × associativity")
	}
	sets := capacityBytes / (blockBytes * assoc)
	bits := uint(0)
	for 1<<bits < blockBytes {
		bits++
	}
	if 1<<bits != blockBytes {
		panic("mem: block size must be a power of two")
	}
	return &Cache{
		sets:      sets,
		assoc:     assoc,
		blockBits: bits,
		tags:      make([]uint64, sets*assoc),
		used:      make([]uint64, sets*assoc),
	}
}

// Access looks addr up, filling the block on a miss, and reports whether
// it hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.clock++
	block := addr >> c.blockBits
	tag := block + 1 // avoid the zero (empty) tag
	set := int(block % uint64(c.sets))
	base := set * c.assoc

	victim, oldest := base, c.used[base]
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.used[i] = c.clock
			return true
		}
		if c.used[i] < oldest {
			victim, oldest = i, c.used[i]
		}
	}
	c.Misses++
	c.tags[victim] = tag
	c.used[victim] = c.clock
	return false
}

// install places addr's block in the cache without counting it as a demand
// access (used by the prefetcher).
func (c *Cache) install(addr uint64) {
	c.clock++
	block := addr >> c.blockBits
	tag := block + 1
	set := int(block % uint64(c.sets))
	base := set * c.assoc
	victim, oldest := base, c.used[base]
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.tags[i] == tag {
			return // already present; leave recency alone
		}
		if c.used[i] < oldest {
			victim, oldest = i, c.used[i]
		}
	}
	c.tags[victim] = tag
	c.used[victim] = c.clock
}

// MissRate returns the miss fraction so far.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.used[i] = 0
	}
	c.clock = 0
	c.Accesses = 0
	c.Misses = 0
}

// Hierarchy is the data-side cache stack.
type Hierarchy struct {
	L1, L2 *Cache
	Flat   bool // Cray-1S mode: no caches, everything goes to memory

	// Prefetch enables a next-line prefetcher: on an L1 miss (or on
	// entering a previously prefetched line) the following cache line is
	// installed in both levels. This stands in for the software prefetching
	// in the paper's compiled SPEC binaries. Coverage is the fraction of
	// prefetch opportunities actually taken (software prefetching is
	// imperfect — a property of the benchmark's code, carried on the
	// trace); opportunities are skipped deterministically.
	Prefetch bool
	Coverage float64

	Prefetches uint64
	pfAccum    float64
}

// NewHierarchy builds an L1+L2 stack with next-line prefetching enabled at
// full coverage.
func NewHierarchy(l1, l2 *Cache) *Hierarchy {
	return &Hierarchy{L1: l1, L2: l2, Prefetch: true, Coverage: 1.0}
}

// NewFlat builds the cacheless Cray-1S memory system.
func NewFlat() *Hierarchy { return &Hierarchy{Flat: true} }

// Access performs a data access (loads and stores are treated alike:
// write-allocate, and writeback traffic is not modeled) and returns the
// level that satisfied it.
func (h *Hierarchy) Access(addr uint64) Level {
	if h.Flat {
		return Memory
	}
	if h.L1.Access(addr) {
		// Tagged sequential prefetch: an access entering a new line (its
		// first word) keeps the prefetcher running ahead of a stream even
		// though the line itself hit (it was prefetched earlier).
		if h.Prefetch && addr&(uint64(1)<<h.L1.blockBits-1) < 8 {
			h.prefetchNext(addr)
		}
		return L1Hit
	}
	lvl := L2Hit
	if !h.L2.Access(addr) {
		lvl = Memory
	}
	if h.Prefetch {
		h.prefetchNext(addr)
	}
	return lvl
}

// prefetchNext installs the line after addr's into both levels, honouring
// the coverage fraction deterministically.
func (h *Hierarchy) prefetchNext(addr uint64) {
	h.pfAccum += h.Coverage
	if h.pfAccum < 1 {
		return
	}
	h.pfAccum -= 1
	next := addr + uint64(1)<<h.L1.blockBits
	h.L1.install(next)
	h.L2.install(next)
	h.Prefetches++
}

// Prewarm installs the hot and warm working-set tiers, modeling the cache
// state a benchmark reaches after the paper's 500M skipped instructions.
// The hot tier lands in both levels; the warm tier in the L2 (bounded by
// its capacity under LRU).
func (h *Hierarchy) Prewarm(hotBytes, warmBytes uint64) {
	if h.Flat {
		return
	}
	block := uint64(1) << h.L2.blockBits
	for a := uint64(0); a < warmBytes; a += block {
		h.L2.install(a)
	}
	for a := uint64(0); a < hotBytes; a += block {
		h.L1.install(a)
		h.L2.install(a)
	}
}

// Reset clears both levels and the prefetcher's accumulated state, so a
// reset hierarchy is indistinguishable from a freshly built one of the
// same geometry (the pipeline scratch state reuses hierarchies across
// runs on that guarantee). Prefetch and Coverage are configuration, not
// accumulated state, and are left as set.
func (h *Hierarchy) Reset() {
	if h.L1 != nil {
		h.L1.Reset()
	}
	if h.L2 != nil {
		h.L2.Reset()
	}
	h.Prefetches = 0
	h.pfAccum = 0
}
