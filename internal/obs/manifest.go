package obs

import (
	"encoding/json"
	"errors"
	"os"
	"runtime"
	"time"
)

// Manifest is the run-manifest JSON every cmd binary can emit alongside
// its study output (-manifest <path>): the environment, configuration and
// telemetry snapshot that make a recorded result self-describing, so perf
// trajectories compare like with like.
type Manifest struct {
	Command    string         `json:"command"`
	Args       []string       `json:"args"`
	GoVersion  string         `json:"go_version"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Config     map[string]any `json:"config"`
	WallMS     float64        `json:"wall_ms"`
	Telemetry  Snapshot       `json:"telemetry"`
}

// NewManifest fills the environment fields around the given run facts.
// Config may be nil; it is normalized to an empty map so the JSON always
// carries the key.
func NewManifest(command string, config map[string]any, wall time.Duration, snap Snapshot) Manifest {
	if config == nil {
		config = map[string]any{}
	}
	return Manifest{
		Command:    command,
		Args:       os.Args[1:],
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Config:     config,
		WallMS:     float64(wall) / float64(time.Millisecond),
		Telemetry:  snap,
	}
}

// WriteManifest marshals the manifest and writes it to path.
func WriteManifest(path string, m Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Validate checks the fields every emitted manifest must carry. It is the
// contract cmd/manifestcheck and the CI telemetry smoke step assert.
func (m Manifest) Validate() error {
	switch {
	case m.Command == "":
		return errors.New("manifest: missing command")
	case m.GoVersion == "":
		return errors.New("manifest: missing go_version")
	case m.GOMAXPROCS < 1:
		return errors.New("manifest: gomaxprocs must be >= 1")
	case m.NumCPU < 1:
		return errors.New("manifest: num_cpu must be >= 1")
	case m.Config == nil:
		return errors.New("manifest: missing config")
	case m.WallMS < 0:
		return errors.New("manifest: negative wall_ms")
	case m.Telemetry.Counters == nil:
		return errors.New("manifest: missing telemetry counters")
	case m.Telemetry.WorkerTasks == nil:
		return errors.New("manifest: missing telemetry worker_tasks")
	}
	return nil
}
