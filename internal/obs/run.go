package obs

import (
	"errors"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"time"
)

// StartOptions configures Start; the fields mirror the telemetry flags in
// internal/cliflags one for one.
type StartOptions struct {
	Command string // binary name, recorded in the manifest

	Verbose bool // -v: debug-level run log (per-study progress)
	Quiet   bool // -quiet: errors only

	Manifest   string // -manifest: write the run-manifest JSON here on Close
	CPUProfile string // -cpuprofile: runtime/pprof CPU profile path
	MemProfile string // -memprofile: heap profile path, written on Close
	Trace      string // -trace: runtime/trace execution trace path

	// LogWriter receives the structured run log; nil means os.Stderr, so
	// logging never mixes into the study output on stdout.
	LogWriter io.Writer
}

// Level maps the -v/-quiet pair to a slog level: -v shows run progress
// (debug and up), the default shows only warnings, -quiet only errors.
func Level(verbose, quiet bool) slog.Level {
	switch {
	case quiet:
		return slog.LevelError
	case verbose:
		return slog.LevelDebug
	default:
		return slog.LevelWarn
	}
}

// Run is one binary invocation's telemetry session: its logger and
// recorder, plus the profiling state that Close unwinds.
type Run struct {
	Command string
	Log     *slog.Logger

	rec    *Recorder
	opts   StartOptions
	start  time.Time
	config map[string]any
	cpu    *os.File
	trc    *os.File
}

// Start validates the options, builds the structured logger, and starts
// CPU profiling and execution tracing when requested. Every Start must be
// paired with exactly one Close, after the study output is emitted.
func Start(o StartOptions) (*Run, error) {
	if o.Verbose && o.Quiet {
		return nil, errors.New("-v and -quiet are mutually exclusive")
	}
	w := o.LogWriter
	if w == nil {
		w = os.Stderr
	}
	log := slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: Level(o.Verbose, o.Quiet)}))
	r := &Run{
		Command: o.Command,
		Log:     log,
		rec:     New(log),
		opts:    o,
		start:   time.Now(), //reprolint:allow nondeterminism: run wall time goes to the manifest only, never into study output
		config:  map[string]any{},
	}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		r.cpu = f
	}
	if o.Trace != "" {
		f, err := os.Create(o.Trace)
		if err != nil {
			r.stopProfiles()
			return nil, err
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			r.stopProfiles()
			return nil, err
		}
		r.trc = f
	}
	log.Debug("run start", "command", o.Command,
		"go", runtime.Version(), "gomaxprocs", runtime.GOMAXPROCS(0))
	return r, nil
}

// Recorder returns the run's recorder (nil on a nil run, which the
// recorder's nil-safety absorbs).
func (r *Run) Recorder() *Recorder {
	if r == nil {
		return nil
	}
	return r.rec
}

// SetConfig records one configuration key for the manifest.
func (r *Run) SetConfig(key string, v any) {
	if r == nil {
		return
	}
	r.config[key] = v
}

// stopProfiles unwinds whatever profiling Start began, keeping the first
// file-close error.
func (r *Run) stopProfiles() error {
	var first error
	if r.cpu != nil {
		pprof.StopCPUProfile()
		if err := r.cpu.Close(); err != nil && first == nil {
			first = err
		}
		r.cpu = nil
	}
	if r.trc != nil {
		rtrace.Stop()
		if err := r.trc.Close(); err != nil && first == nil {
			first = err
		}
		r.trc = nil
	}
	return first
}

// Close stops profiling, writes the heap profile and the run manifest,
// and logs the run summary. Call it once, after the study output has been
// emitted, so profiles and wall time cover the whole run.
func (r *Run) Close() error {
	wall := time.Since(r.start) //reprolint:allow nondeterminism: run wall time goes to the manifest and log only, never into study output
	first := r.stopProfiles()
	if r.opts.MemProfile != "" {
		if err := writeHeapProfile(r.opts.MemProfile); err != nil && first == nil {
			first = err
		}
	}
	snap := r.rec.Snapshot()
	r.Log.Info("run done", "command", r.Command, "wall", wall,
		"tasks", snap.Tasks.Count, "studies", len(snap.Studies),
		"trace_cache_hits", snap.Counters["trace_cache_hits"],
		"trace_cache_misses", snap.Counters["trace_cache_misses"])
	if r.opts.Manifest != "" {
		m := NewManifest(r.Command, r.config, wall, snap)
		if err := WriteManifest(r.opts.Manifest, m); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeHeapProfile forces a GC so the profile reflects live objects, then
// writes the heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
