// Package obs is the run-telemetry layer shared by every study binary:
// structured logging on log/slog, a Recorder of counters and spans fed by
// the executor's task hooks, a run-manifest JSON export, and CPU/heap/
// execution-trace profiling wiring.
//
// Telemetry is observation-only by contract: nothing in this package may
// influence simulation results. Recorders hang off configuration structs
// as optional pointers, every Recorder method is safe on a nil receiver,
// and the invariance test in internal/experiments pins study output
// byte-for-byte identical with telemetry on and off at any worker count.
package obs

import (
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Recorder accumulates counters and spans for one run. All methods are
// safe for concurrent use and no-ops on a nil receiver, so callers thread
// a *Recorder without guarding every call site.
type Recorder struct {
	log *slog.Logger

	mu          sync.Mutex
	counters    map[string]int64
	studies     []*study
	open        []*study // stack: the innermost study collects task durations
	tasks       []time.Duration
	queueWaits  []time.Duration
	workerTasks map[int]int64
}

// study is one span. Durations of tasks completed while the span is the
// innermost open one attribute to it.
type study struct {
	name  string
	start time.Time
	wall  time.Duration
	done  bool
	tasks []time.Duration
}

// New returns an empty recorder; log may be nil for silent recording.
func New(log *slog.Logger) *Recorder {
	return &Recorder{
		log:         log,
		counters:    map[string]int64{},
		workerTasks: map[int]int64{},
	}
}

// Add increments a named counter.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Study opens a named span and returns its closer. Studies nest (a
// driver that reuses another driver keeps both spans open); task
// durations attribute to the innermost open span. The conventional use is
//
//	defer o.Obs.Study("figure5")()
func (r *Recorder) Study(name string) func() {
	if r == nil {
		return func() {}
	}
	s := &study{name: name, start: time.Now()} //reprolint:allow nondeterminism: span wall time is telemetry output, observation-only by contract
	r.mu.Lock()
	r.studies = append(r.studies, s)
	r.open = append(r.open, s)
	r.mu.Unlock()
	if r.log != nil {
		r.log.Debug("study start", "study", name)
	}
	return func() {
		r.mu.Lock()
		if s.done { // double close: keep the first measurement
			r.mu.Unlock()
			return
		}
		s.wall = time.Since(s.start) //reprolint:allow nondeterminism: span wall time is telemetry output, observation-only by contract
		s.done = true
		for i := len(r.open) - 1; i >= 0; i-- {
			if r.open[i] == s {
				r.open = append(r.open[:i], r.open[i+1:]...)
				break
			}
		}
		wall, n := s.wall, len(s.tasks)
		r.mu.Unlock()
		if r.log != nil {
			r.log.Debug("study done", "study", name, "wall", wall, "tasks", n)
		}
	}
}

// Counter returns the current value of one named counter (0 when the
// counter has never been incremented, or on a nil recorder). The serving
// layer's /stats endpoint reads individual gauges through it without
// paying for a full Snapshot.
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// TaskStart records one executor task being picked up; queueWait is how
// long the task waited between its grid being submitted and this start.
// The signature matches exec.Pool's OnTaskStart hook.
func (r *Recorder) TaskStart(worker, index int, queueWait time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.queueWaits = append(r.queueWaits, queueWait)
	r.mu.Unlock()
}

// TaskDone records one completed executor task and its duration. The
// signature matches exec.Pool's OnTaskDone hook.
func (r *Recorder) TaskDone(worker, index int, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tasks = append(r.tasks, d)
	r.workerTasks[worker]++
	if n := len(r.open); n > 0 {
		s := r.open[n-1]
		s.tasks = append(s.tasks, d)
	}
	r.mu.Unlock()
}

// DurationStats summarizes a duration sample in milliseconds.
type DurationStats struct {
	Count   int     `json:"count"`
	MinMS   float64 `json:"min_ms"`
	P50MS   float64 `json:"p50_ms"`
	MaxMS   float64 `json:"max_ms"`
	TotalMS float64 `json:"total_ms"`
}

func summarize(ds []time.Duration) DurationStats {
	if len(ds) == 0 {
		return DurationStats{}
	}
	ms := make([]float64, len(ds))
	total := 0.0
	for i, d := range ds {
		ms[i] = float64(d) / float64(time.Millisecond)
		total += ms[i]
	}
	sort.Float64s(ms)
	return DurationStats{
		Count:   len(ms),
		MinMS:   ms[0],
		P50MS:   ms[len(ms)/2],
		MaxMS:   ms[len(ms)-1],
		TotalMS: total,
	}
}

// StudyStats is one study span in a snapshot.
type StudyStats struct {
	Name   string        `json:"name"`
	WallMS float64       `json:"wall_ms"`
	Tasks  DurationStats `json:"tasks"`
}

// Snapshot is a point-in-time copy of everything a Recorder holds.
// Worker-task keys are decimal worker ids (JSON object keys are strings).
type Snapshot struct {
	Counters    map[string]int64 `json:"counters"`
	Studies     []StudyStats     `json:"studies"`
	Tasks       DurationStats    `json:"tasks"`
	QueueWait   DurationStats    `json:"queue_wait"`
	WorkerTasks map[string]int64 `json:"worker_tasks"`
}

// Snapshot copies the recorder's current state; a nil recorder yields an
// empty (but non-nil-mapped) snapshot. Open studies report the wall time
// elapsed so far.
func (r *Recorder) Snapshot() Snapshot {
	snap := Snapshot{Counters: map[string]int64{}, WorkerTasks: map[string]int64{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		snap.Counters[k] = v
	}
	for w, n := range r.workerTasks {
		snap.WorkerTasks[strconv.Itoa(w)] = n
	}
	for _, s := range r.studies {
		wall := s.wall
		if !s.done {
			wall = time.Since(s.start) //reprolint:allow nondeterminism: open-span elapsed time is telemetry output, observation-only by contract
		}
		snap.Studies = append(snap.Studies, StudyStats{
			Name:   s.name,
			WallMS: float64(wall) / float64(time.Millisecond),
			Tasks:  summarize(s.tasks),
		})
	}
	snap.Tasks = summarize(r.tasks)
	snap.QueueWait = summarize(r.queueWaits)
	return snap
}
