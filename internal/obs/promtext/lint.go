package promtext

// Lint validates text exposition format 0.0.4 output — the shape checks
// the repo's metrics tests and smoke targets share instead of each
// growing its own ad-hoc parser. It is deliberately stricter than a
// Prometheus scraper: the renderer in this package always emits HELP
// before TYPE, one family block per name, monotone cumulative buckets
// and a _count that equals the +Inf bucket, so Lint treats any drift
// from that as a defect.

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// lintFamily accumulates one family's state while its block is being
// scanned.
type lintFamily struct {
	typ     string
	samples int

	// Histogram state: the last le bound and cumulative value seen, and
	// the +Inf / _count values for the final consistency check. A
	// histogram must carry at least one finite bucket — an +Inf-only
	// family observes nothing about the distribution — and exactly one
	// _count and _sum sample; duplicates would let a later line shadow
	// an inconsistent earlier one.
	lastLE     float64
	lastBucket float64
	finite     int
	infSeen    bool
	infValue   float64
	countSeen  bool
	countValue float64
	sumSeen    bool
}

// Lint checks exposition text and returns the first violation found:
// unknown or malformed lines, a sample without a preceding # TYPE,
// HELP/TYPE ordering, duplicate families, unparsable values,
// non-monotone or unordered histogram buckets, a histogram with no
// finite bucket or no +Inf bucket, duplicate _count or _sum samples,
// or a _count that disagrees with the +Inf bucket.
func Lint(exposition []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(exposition))
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	helped := map[string]bool{}
	families := map[string]*lintFamily{}
	var current string // family owning the samples being scanned

	finish := func(name string) error {
		f := families[name]
		if f == nil || f.typ != "histogram" {
			return nil
		}
		if !f.infSeen {
			return fmt.Errorf("promtext: histogram %s has no +Inf bucket", name)
		}
		if f.finite == 0 {
			return fmt.Errorf("promtext: histogram %s has no finite bucket", name)
		}
		if !f.countSeen {
			return fmt.Errorf("promtext: histogram %s has no _count sample", name)
		}
		if f.countValue != f.infValue {
			return fmt.Errorf("promtext: histogram %s _count %v != +Inf bucket %v", name, f.countValue, f.infValue)
		}
		return nil
	}

	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("promtext: line %d: malformed comment %q", line, text)
			}
			name := fields[2]
			if !validName(name) {
				return fmt.Errorf("promtext: line %d: invalid metric name %q", line, name)
			}
			switch fields[1] {
			case "HELP":
				if helped[name] {
					return fmt.Errorf("promtext: line %d: duplicate HELP for %s", line, name)
				}
				helped[name] = true
			case "TYPE":
				if !helped[name] {
					return fmt.Errorf("promtext: line %d: TYPE %s before its HELP", line, name)
				}
				if _, dup := families[name]; dup {
					return fmt.Errorf("promtext: line %d: duplicate TYPE for %s", line, name)
				}
				if len(fields) != 4 || !validTypes[fields[3]] {
					return fmt.Errorf("promtext: line %d: bad TYPE line %q", line, text)
				}
				if err := finish(current); err != nil {
					return err
				}
				families[name] = &lintFamily{typ: fields[3]}
				current = name
			}
			continue
		}

		name, labels, value, err := splitSample(text)
		if err != nil {
			return fmt.Errorf("promtext: line %d: %v", line, err)
		}
		base := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, s); ok && families[trimmed] != nil && families[trimmed].typ == "histogram" {
				base, suffix = trimmed, s
				break
			}
		}
		f := families[base]
		if f == nil {
			return fmt.Errorf("promtext: line %d: sample %s has no preceding # TYPE", line, name)
		}
		if base != current {
			return fmt.Errorf("promtext: line %d: sample %s outside its family block", line, name)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("promtext: line %d: bad value %q for %s", line, value, name)
		}
		f.samples++

		if f.typ == "histogram" {
			switch suffix {
			case "_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("promtext: line %d: bucket without le label: %q", line, text)
				}
				var bound float64
				if le == "+Inf" {
					bound = math.Inf(+1)
				} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("promtext: line %d: bad le %q", line, le)
				}
				if f.infSeen {
					return fmt.Errorf("promtext: line %d: bucket after +Inf", line)
				}
				if f.samples > 1 && f.lastLE >= bound {
					return fmt.Errorf("promtext: line %d: bucket bounds not increasing (%v after %v)", line, bound, f.lastLE)
				}
				if v < f.lastBucket {
					return fmt.Errorf("promtext: line %d: cumulative bucket counts decrease (%v after %v)", line, v, f.lastBucket)
				}
				f.lastLE, f.lastBucket = bound, v
				if math.IsInf(bound, +1) {
					f.infSeen, f.infValue = true, v
				} else {
					f.finite++
				}
			case "_count":
				if f.countSeen {
					return fmt.Errorf("promtext: line %d: duplicate _count for histogram %s", line, base)
				}
				f.countSeen, f.countValue = true, v
			case "_sum":
				if f.sumSeen {
					return fmt.Errorf("promtext: line %d: duplicate _sum for histogram %s", line, base)
				}
				f.sumSeen = true
			default:
				return fmt.Errorf("promtext: line %d: raw sample %s inside histogram %s", line, name, base)
			}
			continue
		}
		if suffix != "" {
			return fmt.Errorf("promtext: line %d: %s suffix on non-histogram %s", line, suffix, base)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return finish(current)
}

// splitSample splits "name{labels} value" (labels optional) into its
// parts.
func splitSample(text string) (name, labels, value string, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", text)
		}
		name, labels, rest = rest[:i], rest[i+1:j], strings.TrimSpace(rest[j+1:])
	} else {
		i := strings.IndexByte(rest, ' ')
		if i < 0 {
			return "", "", "", fmt.Errorf("sample without value: %q", text)
		}
		name, rest = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if !validName(name) {
		return "", "", "", fmt.Errorf("invalid sample name %q", name)
	}
	if rest == "" {
		return "", "", "", fmt.Errorf("sample without value: %q", text)
	}
	// A timestamp after the value is legal exposition; take field one.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	return name, labels, rest, nil
}

// labelValue extracts one label's unescaped value from a rendered label
// body (`le="0.5",job="x"`).
func labelValue(labels, key string) (string, bool) {
	for len(labels) > 0 {
		eq := strings.IndexByte(labels, '=')
		if eq < 0 || len(labels) < eq+2 || labels[eq+1] != '"' {
			return "", false
		}
		name := labels[:eq]
		rest := labels[eq+2:]
		var b strings.Builder
		i := 0
		for i < len(rest) {
			switch {
			case rest[i] == '\\' && i+1 < len(rest):
				switch rest[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i+1])
				}
				i += 2
			case rest[i] == '"':
				i++
				goto closed
			default:
				b.WriteByte(rest[i])
				i++
			}
		}
		return "", false
	closed:
		if name == key {
			return b.String(), true
		}
		labels = strings.TrimPrefix(rest[i:], ",")
	}
	return "", false
}
