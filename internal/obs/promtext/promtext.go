// Package promtext is the daemon-grade metrics core behind sweepd's
// GET /metrics: a stdlib-only registry of counters, gauges and
// fixed-bucket histograms rendered in Prometheus text exposition format
// 0.0.4. It exists because internal/obs.Recorder is an end-of-run
// snapshot (manifests), while a daemon that never exits needs a surface
// a scraper can poll continuously.
//
// Design contract, mirroring internal/obs:
//
//   - Observation-only. Nothing in this package may influence
//     simulation results; simulation packages are forbidden from even
//     importing it (the reprolint obsinert rule), so every value flows
//     in through the serving layer or an obs.Recorder bridge.
//   - Nil-safe instruments. Every instrument method is a no-op on a nil
//     receiver, so a daemon with metrics disabled threads nil handles
//     instead of guarding each call site.
//   - Concurrency-safe. Counters and histogram cells are atomics; a
//     scrape renders a point-in-time snapshot that is internally
//     consistent per family (histogram buckets are cumulative and
//     monotone within one exposition).
//
// The package name avoids internal/metrics, which is the paper's
// BIPS/IPC accounting and entirely unrelated.
package promtext

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ContentType is the exposition content type a scraper negotiates.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// sample is one rendered exposition line: an optional {label="value"}
// suffix on the family name, and the formatted value.
type sample struct {
	suffix string // appended to the family name verbatim ("" or "_sum"...)
	labels string // rendered label set, "" or `{le="0.5"}`
	value  string
}

// family is one metric family: its metadata and a collect function that
// snapshots the current samples at scrape time.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge" or "histogram"
	collect func() []sample
}

// Registry holds metric families and renders them sorted by name. The
// zero value is not usable; call NewRegistry. A nil *Registry is a
// valid "metrics disabled" registry: every constructor returns a nil
// instrument whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// validName is the Prometheus metric-name grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register adds one family, panicking on an invalid or duplicate name —
// both are programmer errors caught by the first scrape test.
func (r *Registry) register(name, help, typ string, collect func() []sample) {
	if !validName(name) {
		panic(fmt.Sprintf("promtext: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("promtext: duplicate metric name %q", name))
	}
	f := &family{name: name, help: help, typ: typ, collect: collect}
	r.families = append(r.families, f)
	r.byName[name] = f
}

// formatValue renders an exposition float: integral values print as
// integers (the common case — counters and byte gauges — stays
// grep-friendly), everything else in Go's shortest float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// WriteTo renders every family, sorted by name, in text exposition
// format 0.0.4: a # HELP and # TYPE line per family followed by its
// samples.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.collect() {
			fmt.Fprintf(&b, "%s%s%s %s\n", f.name, s.suffix, s.labels, s.value)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Handler serves the registry as an HTTP endpoint with the exposition
// content type. A nil registry serves 404 (metrics disabled).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		r.WriteTo(w)
	})
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// NewCounter registers a counter. Returns nil (a no-op instrument) on a
// nil registry.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, "counter", func() []sample {
		return []sample{{value: formatValue(float64(c.v.Load()))}}
	})
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter; negative deltas are ignored (counters are
// monotone by definition).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// CounterVec is a family of counters split by one label.
type CounterVec struct {
	label string

	mu    sync.Mutex
	cells map[string]*Counter
}

// NewCounterVec registers a one-label counter family. Cells materialize
// on first use and render sorted by label value.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	if !validName(label) || strings.Contains(label, ":") {
		panic(fmt.Sprintf("promtext: invalid label name %q", label))
	}
	v := &CounterVec{label: label, cells: map[string]*Counter{}}
	r.register(name, help, "counter", func() []sample {
		v.mu.Lock()
		vals := make([]string, 0, len(v.cells))
		for val := range v.cells { //reprolint:allow mapiter: label values are collected then sorted before rendering; scrape bytes stay order-stable
			vals = append(vals, val)
		}
		sort.Strings(vals)
		out := make([]sample, 0, len(vals))
		for _, val := range vals {
			out = append(out, sample{
				labels: fmt.Sprintf("{%s=\"%s\"}", v.label, escapeLabel(val)),
				value:  formatValue(float64(v.cells[val].Value())),
			})
		}
		v.mu.Unlock()
		return out
	})
	return v
}

// With returns the counter cell for one label value, creating it on
// first use. Nil-safe: a nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.cells[value]
	if !ok {
		c = &Counter{}
		v.cells[value] = c
	}
	return c
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge registers a gauge; nil-safe like NewCounter.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, "gauge", func() []sample {
		return []sample{{value: formatValue(g.Value())}}
	})
	return g
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge for totals that already live elsewhere (an
// obs.Recorder counter, a store.Stats field), so /metrics and /stats
// render the same source of truth instead of double-counting.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, "counter", func() []sample {
		return []sample{{value: formatValue(fn())}}
	})
}

// NewGaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", func() []sample {
		return []sample{{value: formatValue(fn())}}
	})
}

// NewInfo registers the conventional info pseudo-metric: a gauge fixed
// at 1 whose labels carry build metadata (build_info{version="..."} 1).
// Labels render sorted by name.
func (r *Registry) NewInfo(name, help string, labels map[string]string) {
	if r == nil {
		return
	}
	names := make([]string, 0, len(labels))
	for k := range labels { //reprolint:allow mapiter: label names are validated here then sorted before rendering; scrape bytes stay order-stable
		if !validName(k) || strings.Contains(k, ":") {
			panic(fmt.Sprintf("promtext: invalid label name %q", k))
		}
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(labels[k]))
	}
	b.WriteByte('}')
	rendered := b.String()
	r.register(name, help, "gauge", func() []sample {
		return []sample{{labels: rendered, value: "1"}}
	})
}

// Histogram is a fixed-bucket distribution: observation counts per
// upper bound plus a sum, rendered cumulatively the Prometheus way.
// Buckets are chosen at construction and never change, so concurrent
// Observe calls touch only atomics.
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1: one cell per bound plus the +Inf overflow
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// DefBuckets is the default latency bucket ladder, in seconds: wide
// enough for a multi-second simulation batch, fine enough to see a
// sub-millisecond cache hit.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// NewHistogram registers a histogram over the given bucket upper
// bounds, which must be strictly increasing; nil buckets means
// DefBuckets. Nil-safe like NewCounter.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("promtext: histogram %s buckets not strictly increasing at %v", name, buckets[i]))
		}
	}
	if len(buckets) > 0 && math.IsInf(buckets[len(buckets)-1], +1) {
		buckets = buckets[:len(buckets)-1] // +Inf is implicit
	}
	h := &Histogram{bounds: append([]float64(nil), buckets...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	r.register(name, help, "histogram", func() []sample { return h.snapshot() })
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf cell
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// snapshot renders the cumulative bucket lines, sum and count. The cell
// reads are a point-in-time snapshot: cumulative counts are computed
// from one pass, so within a single exposition buckets are monotone and
// _count equals the +Inf bucket by construction.
func (h *Histogram) snapshot() []sample {
	cells := make([]int64, len(h.counts))
	for i := range h.counts {
		cells[i] = h.counts[i].Load()
	}
	out := make([]sample, 0, len(cells)+2)
	var cum int64
	for i, b := range h.bounds {
		cum += cells[i]
		out = append(out, sample{
			suffix: "_bucket",
			labels: fmt.Sprintf("{le=%q}", formatValue(b)),
			value:  formatValue(float64(cum)),
		})
	}
	cum += cells[len(cells)-1]
	out = append(out, sample{suffix: "_bucket", labels: `{le="+Inf"}`, value: formatValue(float64(cum))})
	out = append(out, sample{suffix: "_sum", value: formatValue(math.Float64frombits(h.sum.Load()))})
	out = append(out, sample{suffix: "_count", value: formatValue(float64(cum))})
	return out
}

// Sum reads the accumulated observation sum (0 on nil), for tests.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Count reads the total observation count (0 on nil), for tests.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}
