package promtext

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestExpositionShape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("sweep_requests_total", "Total /sweep requests.")
	c.Add(3)
	g := r.NewGauge("sweep_inflight_points", "Points now simulating.")
	g.Set(2)
	v := r.NewCounterVec("sweep_rejects_total", "Rejected requests by reason.", "reason")
	v.With("queue_full").Add(4)
	v.With("bad_request").Inc()
	h := r.NewHistogram("sweep_request_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.NewInfo("build_info", "Build metadata.", map[string]string{
		"version": "pr7", "code_version": "cv1",
	})
	r.NewGaugeFunc("store_entries", "Store entries.", func() float64 { return 7 })

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got := b.String()

	want := strings.Join([]string{
		`# HELP build_info Build metadata.`,
		`# TYPE build_info gauge`,
		`build_info{code_version="cv1",version="pr7"} 1`,
		`# HELP store_entries Store entries.`,
		`# TYPE store_entries gauge`,
		`store_entries 7`,
		`# HELP sweep_inflight_points Points now simulating.`,
		`# TYPE sweep_inflight_points gauge`,
		`sweep_inflight_points 2`,
		`# HELP sweep_rejects_total Rejected requests by reason.`,
		`# TYPE sweep_rejects_total counter`,
		`sweep_rejects_total{reason="bad_request"} 1`,
		`sweep_rejects_total{reason="queue_full"} 4`,
		`# HELP sweep_request_seconds Request latency.`,
		`# TYPE sweep_request_seconds histogram`,
		`sweep_request_seconds_bucket{le="0.1"} 1`,
		`sweep_request_seconds_bucket{le="1"} 2`,
		`sweep_request_seconds_bucket{le="+Inf"} 3`,
		`sweep_request_seconds_sum 5.55`,
		`sweep_request_seconds_count 3`,
		`# HELP sweep_requests_total Total /sweep requests.`,
		`# TYPE sweep_requests_total counter`,
		`sweep_requests_total 3`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := Lint([]byte(got)); err != nil {
		t.Errorf("Lint rejected own exposition: %v", err)
	}
}

func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "h", []float64{1, 2})
	// Observations exactly on a bound land in that bound's bucket (le is
	// inclusive), and +Inf in the bounds slice collapses into the
	// implicit overflow cell.
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	s := h.snapshot()
	if s[0].value != "1" || s[1].value != "2" || s[2].value != "3" {
		t.Errorf("cumulative buckets = %v %v %v, want 1 2 3", s[0].value, s[1].value, s[2].value)
	}

	h2 := r.NewHistogram("h2", "h2", []float64{1, math.Inf(+1)})
	h2.Observe(5)
	if got := len(h2.bounds); got != 1 {
		t.Errorf("explicit +Inf bound kept: %d bounds, want 1", got)
	}
	if h2.Count() != 1 {
		t.Errorf("Count = %d, want 1", h2.Count())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "h", DefBuckets)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w*perWorker+i) / float64(workers*perWorker) * 40)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("Count = %d, want %d", got, workers*perWorker)
	}
	// The observation set is a permutation-invariant sum: every worker's
	// values are distinct, so the final sum is exact up to FP addition
	// order; compare with a tolerance.
	var want float64
	for i := 0; i < workers*perWorker; i++ {
		want += float64(i) / float64(workers*perWorker) * 40
	}
	if diff := math.Abs(h.Sum() - want); diff > 1e-6 {
		t.Errorf("Sum = %v, want %v (diff %v)", h.Sum(), want, diff)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if err := Lint([]byte(b.String())); err != nil {
		t.Errorf("Lint after concurrent observe: %v", err)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "c")
	c.Add(5)
	c.Add(-3)
	c.Add(0)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("g", "g")
	g.Set(10)
	g.Add(-4)
	g.Add(1.5)
	if g.Value() != 7.5 {
		t.Errorf("Value = %v, want 7.5", g.Value())
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.NewCounter("c", "c")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Errorf("nil counter Value = %d", c.Value())
	}
	g := r.NewGauge("g", "g")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Errorf("nil gauge Value = %v", g.Value())
	}
	h := r.NewHistogram("h", "h", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram recorded")
	}
	v := r.NewCounterVec("v", "v", "reason")
	v.With("x").Inc()
	r.NewCounterFunc("f", "f", func() float64 { t.Error("fn called on nil registry"); return 0 })
	r.NewGaugeFunc("f2", "f2", func() float64 { t.Error("fn called on nil registry"); return 0 })
	r.NewInfo("i", "i", map[string]string{"a": "b"})
	var b strings.Builder
	if n, err := r.WriteTo(&b); n != 0 || err != nil || b.Len() != 0 {
		t.Errorf("nil WriteTo = (%d, %v, %q)", n, err, b.String())
	}

	// Nil registry handler serves 404 — "metrics disabled" is visible to
	// a scraper, not an empty page.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 404 {
		t.Errorf("nil handler status = %d, want 404", rec.Code)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c", "c")
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q, want %q", got, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE c counter") {
		t.Errorf("body missing TYPE line:\n%s", rec.Body.String())
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"invalid name", func(r *Registry) { r.NewCounter("9bad", "x") }},
		{"empty name", func(r *Registry) { r.NewCounter("", "x") }},
		{"name with dash", func(r *Registry) { r.NewCounter("a-b", "x") }},
		{"duplicate", func(r *Registry) { r.NewCounter("dup", "x"); r.NewGauge("dup", "x") }},
		{"bad label", func(r *Registry) { r.NewCounterVec("v", "x", "le gal") }},
		{"colon label", func(r *Registry) { r.NewCounterVec("v", "x", "a:b") }},
		{"bad info label", func(r *Registry) { r.NewInfo("i", "x", map[string]string{"1x": "y"}) }},
		{"unsorted buckets", func(r *Registry) { r.NewHistogram("h", "x", []float64{1, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{3, "3"},
		{-2, "-2"},
		{0.25, "0.25"},
		{1e15, "1e+15"},
		{math.Inf(+1), "+Inf"},
	}
	for _, tc := range cases {
		got := formatValue(tc.in)
		if tc.in == math.Inf(+1) {
			// strconv renders +Inf; exposition buckets hardcode the
			// literal, so only sanity-check it is non-integral here.
			continue
		}
		if got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("c", "c", "reason")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WriteTo(&b)
	if !strings.Contains(b.String(), `c{reason="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
	if err := Lint([]byte(b.String())); err != nil {
		t.Errorf("Lint rejected escaped labels: %v", err)
	}
}

func TestLintRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		frag string // substring the error must contain
	}{
		{"sample without TYPE", "orphan 1\n", "no preceding # TYPE"},
		{"TYPE before HELP", "# TYPE c counter\nc 1\n", "before its HELP"},
		{"bad type", "# HELP c x\n# TYPE c widget\n", "bad TYPE line"},
		{"duplicate family", "# HELP c x\n# TYPE c counter\nc 1\n# TYPE c counter\n", "duplicate TYPE"},
		{"duplicate help", "# HELP c x\n# HELP c y\n", "duplicate HELP"},
		{"bad value", "# HELP c x\n# TYPE c counter\nc lots\n", "bad value"},
		{"bad name", "# HELP c x\n# TYPE c counter\n9c 1\n", "invalid sample name"},
		{"malformed comment", "# BOGUS c x\n", "malformed comment"},
		{
			"non-monotone buckets",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
			"decrease",
		},
		{
			"unordered bounds",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 2` + "\n" +
				`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n",
			"not increasing",
		},
		{
			"missing +Inf",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
			"no +Inf bucket",
		},
		{
			"count disagrees",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 3` + "\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 2\n",
			"_count 2 != +Inf bucket 3",
		},
		{
			"only +Inf bucket",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n",
			"no finite bucket",
		},
		{
			"duplicate _count",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 2` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
				"h_sum 1\nh_count 2\nh_count 3\n",
			"duplicate _count",
		},
		{
			"duplicate _sum",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 2` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
				"h_sum 1\nh_sum 2\nh_count 3\n",
			"duplicate _sum",
		},
		{
			"bucket without le",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{job="x"} 1` + "\n",
			"without le label",
		},
		{
			"interleaved families",
			"# HELP a x\n# TYPE a counter\n# HELP b x\n# TYPE b counter\na 1\n",
			"outside its family block",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Lint([]byte(tc.in))
			if err == nil {
				t.Fatalf("Lint accepted:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not contain %q", err, tc.frag)
			}
		})
	}
}

func TestLintAcceptsTimestamps(t *testing.T) {
	in := "# HELP c x\n# TYPE c counter\nc 1 1712345678000\n"
	if err := Lint([]byte(in)); err != nil {
		t.Errorf("Lint rejected timestamped sample: %v", err)
	}
}
