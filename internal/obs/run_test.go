package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestStartRejectsVerboseAndQuiet(t *testing.T) {
	if _, err := Start(StartOptions{Command: "x", Verbose: true, Quiet: true}); err == nil {
		t.Fatal("Start accepted -v with -quiet")
	} else if !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("error %q does not name the exclusivity", err)
	}
}

func TestStartRejectsUnwritableProfilePaths(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.pprof")
	if _, err := Start(StartOptions{Command: "x", CPUProfile: bad}); err == nil {
		t.Error("Start accepted an unwritable -cpuprofile path")
	}
	if _, err := Start(StartOptions{Command: "x", Trace: bad}); err == nil {
		t.Error("Start accepted an unwritable -trace path")
	}
}

func TestRunLifecycleWritesProfilesAndManifest(t *testing.T) {
	dir := t.TempDir()
	var logBuf bytes.Buffer
	run, err := Start(StartOptions{
		Command:    "testrun",
		Verbose:    true,
		Manifest:   filepath.Join(dir, "manifest.json"),
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
		LogWriter:  &logBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	run.SetConfig("seed", 7)
	rec := run.Recorder()
	end := rec.Study("demo")
	rec.TaskStart(0, 0, 0)
	rec.TaskDone(0, 0, time.Millisecond)
	rec.Add("trace_cache_hits", 3)
	end()
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}

	for _, f := range []string{"cpu.pprof", "mem.pprof", "trace.out", "manifest.json"} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("manifest invalid: %v", err)
	}
	if m.Command != "testrun" || m.Config["seed"] != float64(7) {
		t.Errorf("manifest command/config = %q/%v", m.Command, m.Config)
	}
	if m.Telemetry.Counters["trace_cache_hits"] != 3 {
		t.Errorf("manifest counters = %v", m.Telemetry.Counters)
	}
	if len(m.Telemetry.Studies) != 1 || m.Telemetry.Studies[0].Name != "demo" {
		t.Errorf("manifest studies = %+v", m.Telemetry.Studies)
	}
	if !strings.Contains(logBuf.String(), "study start") {
		t.Errorf("verbose log missing study progress: %q", logBuf.String())
	}
}

func TestManifestValidate(t *testing.T) {
	good := NewManifest("cmd", nil, time.Second, New(nil).Snapshot())
	if err := good.Validate(); err != nil {
		t.Errorf("fresh manifest invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"command", func(m *Manifest) { m.Command = "" }},
		{"go_version", func(m *Manifest) { m.GoVersion = "" }},
		{"gomaxprocs", func(m *Manifest) { m.GOMAXPROCS = 0 }},
		{"num_cpu", func(m *Manifest) { m.NumCPU = 0 }},
		{"config", func(m *Manifest) { m.Config = nil }},
		{"wall", func(m *Manifest) { m.WallMS = -1 }},
		{"counters", func(m *Manifest) { m.Telemetry.Counters = nil }},
		{"worker_tasks", func(m *Manifest) { m.Telemetry.WorkerTasks = nil }},
	}
	for _, c := range cases {
		m := good
		c.mutate(&m)
		if m.Validate() == nil {
			t.Errorf("Validate accepted manifest with broken %s", c.name)
		}
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	rec := New(nil)
	end := rec.Study("s")
	rec.TaskDone(2, 0, 5*time.Millisecond)
	rec.Add("simulations", 9)
	end()
	m := NewManifest("round", map[string]any{"n": 2000}, 123*time.Millisecond, rec.Snapshot())

	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Errorf("manifest does not round-trip:\n%s\n%s", raw, raw2)
	}
	if back.Telemetry.Counters["simulations"] != 9 || back.Telemetry.WorkerTasks["2"] != 1 {
		t.Errorf("round-tripped telemetry = %+v", back.Telemetry)
	}
}
