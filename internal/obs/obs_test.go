package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add("x", 1)
	r.Study("s")() // closer of a nil recorder's study must also be callable
	r.TaskStart(0, 0, time.Millisecond)
	r.TaskDone(0, 0, time.Millisecond)
	snap := r.Snapshot()
	if snap.Counters == nil || snap.WorkerTasks == nil {
		t.Error("nil recorder snapshot must have non-nil maps")
	}
	if snap.Tasks.Count != 0 || len(snap.Studies) != 0 {
		t.Errorf("nil recorder snapshot not empty: %+v", snap)
	}
}

func TestCounters(t *testing.T) {
	r := New(nil)
	r.Add("hits", 2)
	r.Add("hits", 3)
	r.Add("misses", 1)
	snap := r.Snapshot()
	if snap.Counters["hits"] != 5 || snap.Counters["misses"] != 1 {
		t.Errorf("counters = %v", snap.Counters)
	}
}

func TestTaskAttributionToInnermostStudy(t *testing.T) {
	r := New(nil)
	endOuter := r.Study("outer")
	r.TaskDone(0, 0, 10*time.Millisecond) // attributes to outer
	endInner := r.Study("inner")
	r.TaskDone(1, 1, 20*time.Millisecond) // attributes to inner
	r.TaskDone(1, 2, 30*time.Millisecond)
	endInner()
	r.TaskDone(0, 3, 40*time.Millisecond) // back to outer
	endOuter()

	snap := r.Snapshot()
	if len(snap.Studies) != 2 {
		t.Fatalf("studies = %d, want 2", len(snap.Studies))
	}
	byName := map[string]StudyStats{}
	for _, s := range snap.Studies {
		byName[s.Name] = s
	}
	if got := byName["outer"].Tasks.Count; got != 2 {
		t.Errorf("outer tasks = %d, want 2", got)
	}
	if got := byName["inner"].Tasks.Count; got != 2 {
		t.Errorf("inner tasks = %d, want 2", got)
	}
	if snap.Tasks.Count != 4 {
		t.Errorf("global tasks = %d, want 4", snap.Tasks.Count)
	}
	if snap.WorkerTasks["0"] != 2 || snap.WorkerTasks["1"] != 2 {
		t.Errorf("worker tasks = %v", snap.WorkerTasks)
	}
}

func TestDurationStats(t *testing.T) {
	r := New(nil)
	for i, d := range []time.Duration{
		30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
	} {
		r.TaskStart(0, i, time.Duration(i)*time.Millisecond)
		r.TaskDone(0, i, d)
	}
	snap := r.Snapshot()
	if snap.Tasks.Count != 3 || snap.Tasks.MinMS != 10 || snap.Tasks.P50MS != 20 ||
		snap.Tasks.MaxMS != 30 || math.Abs(snap.Tasks.TotalMS-60) > 1e-9 {
		t.Errorf("task stats = %+v", snap.Tasks)
	}
	if snap.QueueWait.Count != 3 || snap.QueueWait.MinMS != 0 || snap.QueueWait.MaxMS != 2 {
		t.Errorf("queue wait = %+v", snap.QueueWait)
	}
}

func TestStudyDoubleCloseKeepsFirstMeasurement(t *testing.T) {
	r := New(nil)
	end := r.Study("s")
	end()
	wall := r.Snapshot().Studies[0].WallMS
	time.Sleep(5 * time.Millisecond)
	end() // must not restate the wall time or touch the open stack
	if got := r.Snapshot().Studies[0].WallMS; got != wall {
		t.Errorf("wall changed on double close: %v -> %v", wall, got)
	}
}

func TestRecorderConcurrency(t *testing.T) {
	// Exercised under -race in CI: hooks fire from many goroutines while
	// spans open and close and snapshots are taken.
	r := New(nil)
	end := r.Study("grid")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.TaskStart(w, i, time.Microsecond)
				r.TaskDone(w, i, time.Microsecond)
				r.Add("n", 1)
			}
		}(w)
	}
	_ = r.Snapshot() // concurrent snapshot must be safe
	wg.Wait()
	end()
	snap := r.Snapshot()
	if snap.Tasks.Count != 800 || snap.Counters["n"] != 800 {
		t.Errorf("tasks=%d n=%d, want 800/800", snap.Tasks.Count, snap.Counters["n"])
	}
}

func TestLevelMapping(t *testing.T) {
	if !(Level(true, false) < Level(false, false)) {
		t.Error("-v must show more than the default")
	}
	if !(Level(false, true) > Level(false, false)) {
		t.Error("-quiet must show less than the default")
	}
}

func TestCounterAccessor(t *testing.T) {
	r := New(nil)
	r.Add("hits", 2)
	r.Add("hits", 3)
	if got := r.Counter("hits"); got != 5 {
		t.Errorf("Counter(hits) = %d, want 5", got)
	}
	if got := r.Counter("never-touched"); got != 0 {
		t.Errorf("Counter of an untouched name = %d, want 0", got)
	}
	var nilRec *Recorder
	if got := nilRec.Counter("hits"); got != 0 {
		t.Errorf("nil recorder Counter = %d, want 0", got)
	}
}
