// The e2e tests in this file drive every cmd/ binary through its real
// CLI. Goldens live under testdata/ and regenerate with
//
//	go test ./internal/clitest -run Golden -update
package clitest

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// binDir holds the freshly built binaries for the whole test run.
var binDir string

// commands is every binary under cmd/, kept in sync by TestMain, which
// fails if the build produces a different set.
var commands = []string{
	"benchdiff", "cactigen", "experiments", "latchsim", "manifestcheck",
	"pipesweep", "reprolint", "segwin", "structopt", "sweepd",
	"traceinfo", "wirestudy",
}

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "clitest-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "clitest:", err)
		os.Exit(1)
	}
	binDir = dir
	// One build for all binaries; go's build cache makes this cheap when
	// the tree hasn't changed.
	if err := BuildCmds("../..", binDir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.RemoveAll(binDir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

func TestEveryCommandBuilt(t *testing.T) {
	entries, err := os.ReadDir(binDir)
	if err != nil {
		t.Fatal(err)
	}
	var built []string
	for _, e := range entries {
		built = append(built, e.Name())
	}
	if got, want := fmt.Sprint(built), fmt.Sprint(commands); got != want {
		t.Fatalf("built binaries %v, harness expects %v — update the commands list", built, commands)
	}
}

// bin returns the path of one built binary.
func bin(name string) string {
	return filepath.Join(binDir, name)
}

// run executes one built binary from the package directory (so testdata/
// paths stay relative and deterministic) and returns stdout, stderr and
// the exit code.
func run(t *testing.T, name string, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(bin(name), args...)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", name, args, err)
	}
	return out.String(), errb.String(), exit
}

// checkGolden compares got against testdata/<name> (rewriting it under
// -update).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (re-run with -update after intentional changes):\n--- want\n%s\n--- got\n%s", path, want, got)
	}
}

// The golden runs pin the exact stdout of the study binaries on small,
// fast configurations. Simulation output is deterministic across worker
// counts, but the goldens pin -workers 1 anyway so a determinism
// regression shows up as a golden diff here and as a test failure in
// internal/exec, not as flakiness.

func TestGoldenPipesweepFigure5(t *testing.T) {
	stdout, _, exit := run(t, "pipesweep", "-fig", "5", "-n", "2000", "-workers", "1")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	checkGolden(t, "pipesweep_fig5.txt", stdout)
}

func TestGoldenPipesweepFigure4aJSON(t *testing.T) {
	stdout, _, exit := run(t, "pipesweep", "-fig", "4a", "-n", "2000", "-workers", "1", "-json")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	checkGolden(t, "pipesweep_fig4a.json", stdout)
}

func TestGoldenSegwin(t *testing.T) {
	stdout, _, exit := run(t, "segwin", "-n", "1000", "-workers", "1")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	checkGolden(t, "segwin.txt", stdout)
}

func TestGoldenLatchsim(t *testing.T) {
	stdout, _, exit := run(t, "latchsim")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	checkGolden(t, "latchsim.txt", stdout)
}

func TestGoldenTraceinfo(t *testing.T) {
	stdout, _, exit := run(t, "traceinfo", "-n", "5000", "-workers", "1")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	checkGolden(t, "traceinfo.txt", stdout)
}

func TestGoldenCactigen(t *testing.T) {
	stdout, _, exit := run(t, "cactigen")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	checkGolden(t, "cactigen.txt", stdout)
}

func TestGoldenBenchdiff(t *testing.T) {
	stdout, _, exit := run(t, "benchdiff", "testdata/bench_old.txt", "testdata/bench_new_ok.txt")
	if exit != 0 {
		t.Fatalf("clean comparison exit = %d, want 0", exit)
	}
	checkGolden(t, "benchdiff_ok.txt", stdout)

	stdout, _, exit = run(t, "benchdiff", "testdata/bench_old.txt", "testdata/bench_new_bad.txt")
	if exit != 1 {
		t.Fatalf("regression comparison exit = %d, want 1", exit)
	}
	checkGolden(t, "benchdiff_bad.txt", stdout)
}

func TestBenchdiffRecordRoundTrip(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	_, stderr, exit := run(t, "benchdiff", "-record", baseline, "testdata/bench_old.txt")
	if exit != 0 {
		t.Fatalf("-record exit = %d: %s", exit, stderr)
	}
	// A recorded baseline must compare clean against its own source.
	stdout, stderr, exit := run(t, "benchdiff", baseline, "testdata/bench_old.txt")
	if exit != 0 {
		t.Fatalf("self-comparison exit = %d: %s%s", exit, stdout, stderr)
	}
}

func TestManifestcheck(t *testing.T) {
	// The error path is deterministic: golden it.
	stdout, stderr, exit := run(t, "manifestcheck", "testdata/bad_manifest.json")
	if exit != 1 {
		t.Fatalf("bad manifest exit = %d, want 1 (stdout %q)", exit, stdout)
	}
	checkGolden(t, "manifestcheck_bad.txt", stderr)

	// The ok path carries environment-dependent fields (go version,
	// GOMAXPROCS, wall time), so pin its shape, not its bytes: record a
	// real manifest with pipesweep and validate it.
	manifest := filepath.Join(t.TempDir(), "run.json")
	if _, stderr, exit := run(t, "pipesweep", "-fig", "4a", "-n", "500", "-workers", "1", "-manifest", manifest); exit != 0 {
		t.Fatalf("pipesweep -manifest exit = %d: %s", exit, stderr)
	}
	stdout, stderr, exit = run(t, "manifestcheck", manifest)
	if exit != 0 {
		t.Fatalf("manifestcheck exit = %d: %s", exit, stderr)
	}
	if !strings.Contains(stdout, "ok: command=pipesweep") {
		t.Fatalf("manifestcheck stdout %q does not report the pipesweep run", stdout)
	}

	if _, _, exit := run(t, "manifestcheck"); exit != 2 {
		t.Errorf("no-args exit = %d, want 2", exit)
	}
}

// TestBadFlagExitsTwo pins the whole flag surface's error convention:
// an unknown flag is a usage error (exit 2) for every binary.
func TestBadFlagExitsTwo(t *testing.T) {
	for _, name := range commands {
		_, stderr, exit := run(t, name, "-definitely-not-a-flag")
		if exit != 2 {
			t.Errorf("%s: unknown-flag exit = %d, want 2 (stderr %q)", name, exit, stderr)
		}
	}
}

func TestBadSimFlagValuesExitTwo(t *testing.T) {
	cases := [][]string{
		{"pipesweep", "-n", "0"},
		{"pipesweep", "-fig", "99"},
		{"traceinfo", "-workers", "-1"},
		{"segwin", "-bench", "no-such-benchmark"},
		{"sweepd", "-queue", "0"},
		{"sweepd", "-addr", ""},
		{"sweepd", "-slow-request", "-1s"},
		{"sweepd", "-debug-addr", "not-a-hostport"},
		{"benchdiff", "onlyone.txt"},
	}
	for _, c := range cases {
		_, stderr, exit := run(t, c[0], c[1:]...)
		if exit != 2 {
			t.Errorf("%v: exit = %d, want 2 (stderr %q)", c, exit, stderr)
		}
	}
}
