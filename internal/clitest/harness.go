// Package clitest is the end-to-end harness for the cmd/ binaries and
// the shared machinery behind every out-of-process test suite in the
// repo: commands are built once per test run, then driven through their
// real CLIs — pinned flags, golden stdout, exit codes — exactly as CI
// and a user would run them.
//
// The non-test surface of this package (build-once, deadline-bounded
// polling, file-backed daemon lifecycle) is deliberately importable so
// sibling harnesses reuse it instead of growing their own timing
// heuristics; internal/chaos drives whole fault-injection runs through
// it. Everything here is polling against observable state with an
// explicit deadline — never a fixed sleep sized to a lucky machine —
// so the suites stay honest under CI load.
package clitest

import (
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

// DefaultWait bounds how long the harness polls for any readiness
// condition (a daemon's listening line, a gauge draining to zero)
// before giving up. Generous on purpose: a loaded CI runner can stall
// a freshly exec'd binary for seconds, and a bounded wait that fails
// honestly beats a short sleep that passes by luck.
const DefaultWait = 30 * time.Second

// PollInterval is the step between condition probes. Small enough that
// fast machines don't idle, large enough that a 30s worst case stays
// under ~15k probes.
const PollInterval = 2 * time.Millisecond

// WaitUntil polls cond every PollInterval until it returns true or
// timeout elapses, reporting whether the condition was met. cond runs
// on the calling goroutine, so it may capture testing state freely.
func WaitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(PollInterval)
	}
}

// WaitHealthy polls GET <baseURL>/healthz until it answers 200,
// returning an error when the deadline passes first. It is the HTTP
// readiness probe shared by the e2e and chaos suites.
func WaitHealthy(baseURL string, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	ok := WaitUntil(timeout, func() bool {
		resp, err := client.Get(baseURL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	if !ok {
		return fmt.Errorf("clitest: %s/healthz not healthy within %v", baseURL, timeout)
	}
	return nil
}

// BuildCmds builds the named package patterns (e.g. "./cmd/..." or
// "./cmd/sweepd") from moduleRoot into binDir, one binary per main
// package. Go's build cache makes repeated calls cheap, so every test
// binary that needs a real executable builds its own copy without
// coordinating with the others.
func BuildCmds(moduleRoot, binDir string, patterns ...string) error {
	if len(patterns) == 0 {
		patterns = []string{"./cmd/..."}
	}
	args := append([]string{"build", "-o", binDir + string(os.PathSeparator)}, patterns...)
	build := exec.Command("go", args...)
	build.Dir = moduleRoot
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("clitest: building %v: %v\n%s", patterns, err, out)
	}
	return nil
}

// Daemon is one out-of-process sweepd (or any binary with the same
// readiness convention): its stderr appends to a log file on disk, the
// harness polls that file for the readiness lines, and the process is
// driven through signals exactly as an operator or init system would.
//
// Writing the log to a file instead of a pipe is load-bearing twice
// over: the daemon can never block on a full pipe no matter how chatty
// it gets mid-test, and the complete log survives a SIGKILL for
// failure forensics (the chaos suite uploads it as a CI artifact).
type Daemon struct {
	Cmd      *exec.Cmd
	URL      string // base URL resolved from the readiness line
	DebugURL string // -debug-addr base URL, "" unless the flags asked for one
	LogPath  string // the stderr log file, shared across restarts

	logOffset int64 // file size when this incarnation started
}

// readinessMain and readinessDebug are the stderr lines the daemon
// prints once its listeners are bound; the resolved address follows
// the prefix.
const (
	readinessMain  = "sweepd: listening on "
	readinessDebug = "sweepd: debug listening on "
)

// StartDaemon launches bin with args, appending its stderr and stdout
// to logPath, and polls the log until the main readiness line appears
// (and the debug one, when args carry -debug-addr). The same logPath
// may be reused across restarts: each incarnation only scans the bytes
// it wrote itself. The process is killed and an error returned if it
// exits or stays silent past timeout.
func StartDaemon(bin, logPath string, timeout time.Duration, args ...string) (*Daemon, error) {
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("clitest: opening daemon log: %v", err)
	}
	defer logf.Close()
	offset, err := logf.Seek(0, 2)
	if err != nil {
		return nil, err
	}

	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("clitest: starting %s: %v", bin, err)
	}
	d := &Daemon{Cmd: cmd, LogPath: logPath, logOffset: offset}

	wantDebug := false
	for _, a := range args {
		if a == "-debug-addr" || strings.HasPrefix(a, "-debug-addr=") {
			wantDebug = true
		}
	}
	exited := false
	WaitUntil(timeout, func() bool {
		tail := d.logSince()
		if addr, ok := lineAfter(tail, readinessDebug); ok {
			d.DebugURL = "http://" + addr
		}
		if addr, ok := lineAfter(tail, readinessMain); ok {
			d.URL = "http://" + addr
			return true
		}
		if !processAlive(cmd.Process.Pid) {
			// Crashed before readiness (bad flags, bind failure): reap it
			// and fail fast instead of burning the whole deadline.
			cmd.Wait()
			exited = true
			return true
		}
		return false
	})
	if d.URL == "" {
		if !exited {
			cmd.Process.Kill()
			cmd.Wait()
		}
		return nil, fmt.Errorf("clitest: %s produced no readiness line within %v; log tail:\n%s",
			bin, timeout, LogTail(logPath, 2048))
	}
	if wantDebug && d.DebugURL == "" {
		// The debug line prints before the main one, so it must be
		// present by now.
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("clitest: -debug-addr set but no debug readiness line; log tail:\n%s",
			LogTail(logPath, 2048))
	}
	return d, nil
}

// processAlive reports whether pid is still running (not exited, not a
// zombie). It reads /proc on Linux; anywhere /proc is absent it falls
// back to the kill-0 probe, which errs toward "alive" for unreaped
// children — the readiness deadline still bounds the wait.
func processAlive(pid int) bool {
	stat, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err == nil {
		// Field 3 (after the parenthesized comm, which may itself hold
		// spaces) is the state letter; Z means exited-but-unreaped.
		if i := strings.LastIndexByte(string(stat), ')'); i >= 0 && i+2 < len(stat) {
			return stat[i+2] != 'Z' && stat[i+2] != 'X'
		}
	}
	return syscall.Kill(pid, syscall.Signal(0)) == nil
}

// logSince reads this incarnation's slice of the log file. Errors read
// as an empty log: the poller simply tries again.
func (d *Daemon) logSince() string {
	f, err := os.Open(d.LogPath)
	if err != nil {
		return ""
	}
	defer f.Close()
	if _, err := f.Seek(d.logOffset, 0); err != nil {
		return ""
	}
	buf := make([]byte, 64*1024)
	n, _ := f.Read(buf)
	return string(buf[:n])
}

// lineAfter finds the first complete log line starting with prefix and
// returns the trimmed remainder. Only complete lines count — the
// daemon may have been scheduled out mid-write.
func lineAfter(text, prefix string) (string, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// LogTail returns up to max bytes from the end of path, for failure
// messages and artifacts.
func LogTail(path string, max int64) string {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Sprintf("(no log: %v)", err)
	}
	defer f.Close()
	size, err := f.Seek(0, 2)
	if err != nil {
		return ""
	}
	start := size - max
	if start < 0 {
		start = 0
	}
	f.Seek(start, 0)
	buf := make([]byte, size-start)
	n, _ := f.Read(buf)
	return string(buf[:n])
}

// Signal forwards sig to the daemon process.
func (d *Daemon) Signal(sig os.Signal) error { return d.Cmd.Process.Signal(sig) }

// Kill SIGKILLs the daemon and reaps it: the crash path, no drain.
func (d *Daemon) Kill() {
	d.Cmd.Process.Kill()
	d.Cmd.Wait()
}

// Shutdown SIGTERMs the daemon and waits for it to exit, returning the
// exit code. The drain contract says this must be 0 no matter what was
// in flight.
func (d *Daemon) Shutdown() (int, error) {
	if err := d.Cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return -1, err
	}
	err := d.Cmd.Wait()
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), nil
	}
	if err != nil {
		return -1, err
	}
	return d.Cmd.ProcessState.ExitCode(), nil
}

// Running reports whether the process has not yet been reaped.
func (d *Daemon) Running() bool { return d.Cmd.ProcessState == nil }
