package clitest

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
)

// postSweepBody POSTs one sweep and returns the raw response body: the
// byte-identity oracle for the persistence contract.
func postSweepBody(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url+"/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d, want 200", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestSweepdWarmRestartAfterKill is the crash-recovery acceptance test:
// a daemon SIGKILLed mid-flight (with a garbage half-frame smeared on
// its active segment for good measure) restarts over the same -store
// directory and serves the exact bytes it computed before the crash,
// without simulating anything.
func TestSweepdWarmRestartAfterKill(t *testing.T) {
	dir := t.TempDir()
	body := `{"useful":[6,8],"benchmarks":["gcc"],"instructions":3000}`

	cmd1, url1 := startSweepd(t, "-store", dir)
	first := postSweepBody(t, url1, body)
	if strings.Count(first, "\n") != 3 { // 2 points + done trailer
		t.Fatalf("first sweep body = %q, want 3 lines", first)
	}

	// Crash hard: no drain, no final sync.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	// A torn half-record on the active segment's tail: what a crash mid-
	// append leaves behind. Replay must square it off, not refuse to boot.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files in %s (err %v): -store did not persist", dir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cmd2, url2 := startSweepd(t, "-store", dir)
	second := postSweepBody(t, url2, body)
	if second != first {
		t.Fatalf("post-restart sweep differs from the pre-crash bytes:\n%q\nvs\n%q", second, first)
	}

	resp, err := http.Get(url2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		UptimeSeconds *float64 `json:"uptime_seconds"`
		CacheHits     int64    `json:"cache_hits"`
		PointsDone    int64    `json:"points_done"`
		WarmHits      int64    `json:"warm_hits"`
		Segments      int      `json:"segments"`
		StoreBytes    int64    `json:"store_bytes"`
		Telemetry     struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"telemetry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.PointsDone != 0 || stats.Telemetry.Counters["points_done"] != 0 {
		t.Fatalf("restarted daemon simulated: %+v", stats)
	}
	if stats.WarmHits != 2 || stats.CacheHits != 2 {
		t.Fatalf("warm_hits = %d, cache_hits = %d; want 2, 2 (both points replayed)", stats.WarmHits, stats.CacheHits)
	}
	if stats.Segments < 1 || stats.StoreBytes <= 0 {
		t.Fatalf("store gauges = segments %d, bytes %d; want live segment data", stats.Segments, stats.StoreBytes)
	}
	if stats.UptimeSeconds == nil {
		t.Fatal("/stats has no uptime_seconds field")
	}

	// Delta sync sees both surviving records.
	resp, err = http.Get(url2 + "/results?since=0")
	if err != nil {
		t.Fatal(err)
	}
	deltaRaw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /results status = %d, want 200", resp.StatusCode)
	}
	var records, trailers int
	for _, line := range strings.Split(strings.TrimSpace(string(deltaRaw)), "\n") {
		var probe struct {
			Cursor uint64          `json:"cursor"`
			Result json.RawMessage `json:"result"`
			Done   bool            `json:"done"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("bad /results line %q: %v", line, err)
		}
		if probe.Done {
			trailers++
		} else {
			records++
		}
	}
	if records != 2 || trailers != 1 {
		t.Fatalf("/results streamed %d records, %d trailers; want 2, 1", records, trailers)
	}

	// And the restarted daemon still shuts down cleanly.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("sweepd did not exit cleanly on SIGTERM: %v", err)
	}
}
