package clitest

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"repro/internal/obs/promtext"
)

// startSweepd launches the daemon on an ephemeral port and returns its
// base URL. The readiness line on stderr carries the resolved address.
func startSweepd(t *testing.T, extra ...string) (*exec.Cmd, string) {
	cmd, url, _ := startSweepdDebug(t, extra...)
	return cmd, url
}

// startSweepdDebug is startSweepd plus the resolved -debug-addr base URL
// (empty unless the flags ask for a debug listener). Startup is the
// shared harness contract: stderr appends to a per-test log file and
// readiness is deadline-bounded polling of that file, so a wedged or
// crashed daemon fails the test with its log tail instead of hanging
// the suite.
func startSweepdDebug(t *testing.T, extra ...string) (*exec.Cmd, string, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, extra...)
	d, err := StartDaemon(bin("sweepd"), filepath.Join(t.TempDir(), "sweepd.log"), DefaultWait, args...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.Running() {
			d.Kill()
		}
	})
	return d.Cmd, d.URL, d.DebugURL
}

func TestSweepdEndToEnd(t *testing.T) {
	cmd, url := startSweepd(t)

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, health)
	}

	// One small sweep, twice: the second run must be served from cache.
	body := `{"useful":[6,8],"benchmarks":["gcc"],"instructions":3000}`
	for round := 0; round < 2; round++ {
		resp, err := http.Post(url+"/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("round %d: status %d", round, resp.StatusCode)
		}
		var points, done int
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var probe struct {
				Key  string  `json:"key"`
				IPC  float64 `json:"ipc"`
				Done bool    `json:"done"`
			}
			if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
				t.Fatalf("round %d: bad line %q: %v", round, sc.Text(), err)
			}
			if probe.Done {
				done++
				continue
			}
			if probe.Key == "" || probe.IPC <= 0 {
				t.Fatalf("round %d: implausible point line %q", round, sc.Text())
			}
			points++
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if points != 2 || done != 1 {
			t.Fatalf("round %d: %d points, %d done lines; want 2, 1", round, points, done)
		}
	}

	resp, err = http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
		PointsDone  int64 `json:"points_done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.CacheMisses != 2 || stats.CacheHits != 2 || stats.PointsDone != 2 {
		t.Fatalf("stats after repeat = %+v, want 2 misses, 2 hits, 2 points done", stats)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("sweepd did not exit cleanly on SIGTERM: %v", err)
	}
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("sweepd exit = %d, want 0", code)
	}
}

// sampleValue extracts one sample's value from a text exposition. The
// name must match the whole sample name, labels included.
func sampleValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 || line[:i] != name {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample %s has unparsable value %q", name, line[i+1:])
		}
		return v
	}
	t.Fatalf("sample %s not found in exposition", name)
	return 0
}

// TestSweepdMetricsEndToEnd exercises the whole observability surface
// through the real binary: a sweep with a caller-supplied request ID,
// a /metrics scrape that must be well-formed and agree with /stats,
// and a pprof fetch from the private -debug-addr listener.
func TestSweepdMetricsEndToEnd(t *testing.T) {
	cmd, url, debugURL := startSweepdDebug(t, "-debug-addr", "127.0.0.1:0")
	if debugURL == "" {
		t.Fatal("-debug-addr was set but no debug readiness line appeared")
	}

	req, err := http.NewRequest("POST", url+"/sweep",
		strings.NewReader(`{"useful":[6,8],"benchmarks":["gcc"],"instructions":3000}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "clitest-e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "clitest-e2e-1" {
		t.Errorf("X-Request-Id echoed as %q, want the inbound value", got)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Requests    int64 `json:"requests"`
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
		PointsDone  int64 `json:"points_done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The scrape happens after /stats, so every counter the sweep moved
	// is already settled; /stats itself is not metered as a sweep.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promtext.ContentType {
		t.Errorf("metrics Content-Type = %q, want %q", ct, promtext.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := promtext.Lint(raw); err != nil {
		t.Fatalf("exposition is malformed: %v", err)
	}
	exposition := string(raw)
	for _, pair := range []struct {
		sample string
		want   int64
	}{
		{"sweep_requests_total", stats.Requests},
		{"sweep_point_cache_hits_total", stats.CacheHits},
		{"sweep_point_cache_misses_total", stats.CacheMisses},
		{"sweep_points_done_total", stats.PointsDone},
	} {
		if got := sampleValue(t, exposition, pair.sample); got != float64(pair.want) {
			t.Errorf("%s = %v, /stats says %d", pair.sample, got, pair.want)
		}
	}
	if got := sampleValue(t, exposition, "sweep_requests_total"); got != 1 {
		t.Errorf("sweep_requests_total = %v after one sweep, want 1", got)
	}
	if got := sampleValue(t, exposition, "sweep_request_seconds_count"); got < 1 {
		t.Errorf("sweep_request_seconds_count = %v, want >= 1", got)
	}

	// The pprof surface answers only on the private listener.
	resp, err = http.Get(debugURL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	cmdline, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(cmdline), "sweepd") {
		t.Errorf("pprof cmdline %q does not name the binary", cmdline)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("sweepd did not exit cleanly on SIGTERM: %v", err)
	}
}

func TestSweepdRejectsOversizedRequests(t *testing.T) {
	cmd, url := startSweepd(t, "-max-points", "3")
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()
	resp, err := http.Post(url+"/sweep", "application/json",
		strings.NewReader(`{"useful":[2,4,6,8],"benchmarks":["gcc"],"instructions":3000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for a grid past -max-points", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "points") {
		t.Fatalf("error %q does not mention the point limit", e.Error)
	}
}
