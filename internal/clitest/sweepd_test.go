package clitest

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startSweepd launches the daemon on an ephemeral port and returns its
// base URL. The readiness line on stderr carries the resolved address.
func startSweepd(t *testing.T, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, extra...)
	cmd := exec.Command(bin("sweepd"), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The first stderr line is "sweepd: listening on <addr>"; a watchdog
	// kills the process if it never appears so the read cannot hang.
	watchdog := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	defer watchdog.Stop()
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "sweepd: listening on "); ok {
			// Keep draining stderr in the background so the daemon never
			// blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return cmd, "http://" + strings.TrimSpace(addr)
		}
	}
	t.Fatalf("sweepd exited before its readiness line (scan err: %v)", sc.Err())
	return nil, ""
}

func TestSweepdEndToEnd(t *testing.T) {
	cmd, url := startSweepd(t)

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, health)
	}

	// One small sweep, twice: the second run must be served from cache.
	body := `{"useful":[6,8],"benchmarks":["gcc"],"instructions":3000}`
	for round := 0; round < 2; round++ {
		resp, err := http.Post(url+"/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("round %d: status %d", round, resp.StatusCode)
		}
		var points, done int
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var probe struct {
				Key  string  `json:"key"`
				IPC  float64 `json:"ipc"`
				Done bool    `json:"done"`
			}
			if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
				t.Fatalf("round %d: bad line %q: %v", round, sc.Text(), err)
			}
			if probe.Done {
				done++
				continue
			}
			if probe.Key == "" || probe.IPC <= 0 {
				t.Fatalf("round %d: implausible point line %q", round, sc.Text())
			}
			points++
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if points != 2 || done != 1 {
			t.Fatalf("round %d: %d points, %d done lines; want 2, 1", round, points, done)
		}
	}

	resp, err = http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
		PointsDone  int64 `json:"points_done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.CacheMisses != 2 || stats.CacheHits != 2 || stats.PointsDone != 2 {
		t.Fatalf("stats after repeat = %+v, want 2 misses, 2 hits, 2 points done", stats)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("sweepd did not exit cleanly on SIGTERM: %v", err)
	}
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("sweepd exit = %d, want 0", code)
	}
}

func TestSweepdRejectsOversizedRequests(t *testing.T) {
	cmd, url := startSweepd(t, "-max-points", "3")
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()
	resp, err := http.Post(url+"/sweep", "application/json",
		strings.NewReader(`{"useful":[2,4,6,8],"benchmarks":["gcc"],"instructions":3000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for a grid past -max-points", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "points") {
		t.Fatalf("error %q does not mention the point limit", e.Error)
	}
}
