package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// rec builds a test record; cursor doubles as the content.
func testRecord(cursor uint64) Record {
	return Record{
		Cursor:  cursor,
		Key:     fmt.Sprintf("key-%03d", cursor),
		Version: "v-test",
		Line:    []byte(fmt.Sprintf(`{"cursor":%d}`+"\n", cursor)),
	}
}

// replayAll collects every record Replay yields.
func replayAll(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(_, _ int64, r Record) { out = append(out, r) }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestLogAppendReadReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	type at struct{ seq, off int64 }
	var locs []at
	for c := uint64(1); c <= 5; c++ {
		seq, off, err := l.Append(testRecord(c))
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, at{seq, off})
	}
	for i, loc := range locs {
		r, err := l.ReadAt(loc.seq, loc.off)
		if err != nil {
			t.Fatalf("ReadAt record %d: %v", i, err)
		}
		want := testRecord(uint64(i + 1))
		if r.Cursor != want.Cursor || r.Key != want.Key || r.Version != want.Version || !bytes.Equal(r.Line, want.Line) {
			t.Fatalf("record %d round-tripped as %+v", i, r)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay must yield the same five records in order.
	l2, err := OpenLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 5 {
		t.Fatalf("replayed %d records, want 5", len(got))
	}
	for i, r := range got {
		if r.Cursor != uint64(i+1) {
			t.Fatalf("replay out of order: record %d has cursor %d", i, r.Cursor)
		}
	}
}

func TestLogRotatesAtThreshold(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1) // any record fills a segment: rotate on every append after the first
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for c := uint64(1); c <= 4; c++ {
		if _, _, err := l.Append(testRecord(c)); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.SegmentCount(); n != 4 {
		t.Fatalf("segment count = %d, want 4 with a 1-byte threshold", n)
	}
	if sealed := l.SealedSeqs(); len(sealed) != l.SegmentCount()-1 {
		t.Fatalf("sealed = %d of %d segments; the active one must be excluded", len(sealed), l.SegmentCount())
	}
	if l.TotalBytes() <= 0 {
		t.Fatal("TotalBytes = 0 with data on disk")
	}
	if got := replayAll(t, l); len(got) != 4 {
		t.Fatalf("replayed %d records across segments, want 4", len(got))
	}
}

// TestLogTruncatedTailTolerated is the crash-mid-append contract: a
// record cut short by a crash is invisible on replay, the tail is
// squared off, and subsequent appends replay cleanly.
func TestLogTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := uint64(1); c <= 3; c++ {
		if _, _, err := l.Append(testRecord(c)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Cut the last record in half: a crash mid-write.
	path := onlySegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-int64(testRecord(3).frameSize()/2)); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2)
	if len(got) != 2 {
		t.Fatalf("replay after truncation = %d records, want 2", len(got))
	}
	if got[1].Cursor != 2 {
		t.Fatalf("last surviving cursor = %d, want 2", got[1].Cursor)
	}
	// The tail was squared off: a fresh append must land on a clean
	// boundary and replay alongside the survivors.
	if _, _, err := l2.Append(testRecord(4)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := OpenLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	got = replayAll(t, l3)
	if len(got) != 3 || got[2].Cursor != 4 {
		t.Fatalf("replay after post-crash append = %d records, want 3 ending at cursor 4", len(got))
	}
}

// TestLogTornRecordStopsSegment: a CRC mismatch mid-segment stops that
// segment's replay at the last trusted record.
func TestLogTornRecordStopsSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for c := uint64(1); c <= 3; c++ {
		_, off, err := l.Append(testRecord(c))
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	l.Close()

	// Flip one payload byte of the middle record.
	path := onlySegment(t, dir)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	pos := offs[1] + frameHeaderLen + 10
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, pos); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, pos); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 1 || got[0].Cursor != 1 {
		t.Fatalf("replay past a torn record: got %d records, want just cursor 1", len(got))
	}
}

// onlySegment returns the path of the single segment file in dir.
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (err %v)", segs, err)
	}
	return segs[0]
}
