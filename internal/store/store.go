// Package store is the result-store layer behind the serving path: the
// seam between "a simulation finished" and "its NDJSON line is
// retrievable by content address". Results are immutable — a point's
// line is a pure function of its SHA-256 key (core.PointOptions.Key
// folds the code version in) — so the storage problem reduces to an
// append-only, content-addressed log.
//
// Two implementations share the ResultStore interface:
//
//   - Memory: the bounded LRU the daemon always had — fast, process-
//     lifetime only. The zero-dependency default.
//   - Durable: Memory layered over an append-only segment Log with
//     write-through on Put, warm-start replay on Open, background
//     snapshot (fsync) and compaction coordinators, and a monotonic
//     per-record cursor that makes the whole store delta-syncable
//     ("every record since cursor X") for peer nodes and CLI clients.
package store

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// ResultStore is the serving path's result-cache seam: a content-
// addressed map from point key to the point's newline-terminated NDJSON
// result line. Implementations must be safe for concurrent use.
//
// Lines are shared, immutable byte slices: Get returns the stored slice
// without copying and callers must never mutate or append to it; Put
// takes ownership of the slice it is handed.
type ResultStore interface {
	// Get returns the stored line for key, if any. A hit refreshes the
	// key's recency in bounded implementations.
	Get(key string) ([]byte, bool)

	// Put stores the line under key. Re-putting a resident key is a
	// no-op (results are immutable, so the bytes are identical by
	// construction).
	Put(key string, line []byte)

	// Len is the number of lines resident in memory (the fast layer,
	// for a durable store — the disk index can be larger).
	Len() int

	// Bytes is the resident in-memory line bytes, for the cache-economy
	// gauges in /stats.
	Bytes() int64

	// Stats is the full observability snapshot; purely in-memory
	// implementations leave the disk fields zero.
	Stats() Stats
}

// Stats is a point-in-time snapshot of a ResultStore's economy. The
// memory fields describe the fast layer; the disk fields are zero for
// Memory and live for Durable.
type Stats struct {
	// MemEntries / MemBytes / Evictions describe the in-memory LRU.
	MemEntries int   `json:"mem_entries"`
	MemBytes   int64 `json:"mem_bytes"`
	Evictions  int64 `json:"evictions"`

	// WarmHits counts Gets served from lines loaded by warm-start
	// replay; DiskHits counts Gets that missed memory and were re-read
	// from a segment. Both are zero for a memory-only store.
	WarmHits int64 `json:"warm_hits"`
	DiskHits int64 `json:"disk_hits"`

	// DiskEntries / Segments / StoreBytes / Compactions / Replayed /
	// Cursor describe the segment log: distinct keys indexed on disk,
	// live segment files, their total size, segments rewritten by the
	// compaction coordinator, records accepted by the last warm-start
	// replay, and the last assigned delta-sync cursor.
	DiskEntries int    `json:"disk_entries"`
	Segments    int    `json:"segments"`
	StoreBytes  int64  `json:"store_bytes"`
	Compactions int64  `json:"compactions"`
	Replayed    int64  `json:"replayed"`
	Cursor      uint64 `json:"cursor"`

	// AppendErrors / ReadErrors count the durable store's degraded
	// operations: appends that failed (the result stayed memory-only)
	// and indexed records that could not be re-read (served as a miss).
	// Either being nonzero on a healthy disk is an operator alarm.
	AppendErrors int64 `json:"append_errors"`
	ReadErrors   int64 `json:"read_errors"`
}

// memEntry is one resident line in the LRU list; the element's Value is
// *memEntry. warm marks lines loaded by a durable store's warm-start
// replay, so hit accounting can attribute them.
type memEntry struct {
	key  string
	line []byte
	warm bool
}

// Memory is the bounded in-process LRU result store — the
// implementation extracted from the sweepd scheduler. Cache keys span
// an unbounded input space (any seed, any instruction count), so
// least-recently-used lines are evicted past the entry limit to keep a
// long-running daemon's memory flat.
type Memory struct {
	limit int // max entries; <= 0 means unbounded
	rec   *obs.Recorder

	mu      sync.Mutex
	entries map[string]*list.Element // resident lines by key, values *memEntry
	lru     *list.List               // front = most recently used
	bytes   int64

	evictions atomic.Int64
}

// NewMemory builds a Memory store evicting past limit entries (<= 0
// means unbounded). Evictions are mirrored to rec (nil-safe) as the
// cache_evictions counter so they land in run manifests.
func NewMemory(limit int, rec *obs.Recorder) *Memory {
	return &Memory{
		limit:   limit,
		rec:     rec,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// Get returns the resident line for key and refreshes its recency.
func (m *Memory) Get(key string) ([]byte, bool) {
	line, _, ok := m.get(key)
	return line, ok
}

// get is Get plus the warm flag, for the durable layer's hit
// attribution.
func (m *Memory) get(key string) (line []byte, warm, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		return nil, false, false
	}
	m.lru.MoveToFront(e)
	ent := e.Value.(*memEntry)
	return ent.line, ent.warm, true
}

// Put stores line under key and evicts least-recently-used entries past
// the bound. Eviction never touches a live stream: streams hold the
// line slice directly, so dropping the entry only means a future
// request misses here.
func (m *Memory) Put(key string, line []byte) { m.put(key, line, false) }

func (m *Memory) put(key string, line []byte, warm bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[key]; ok {
		// Results are immutable and singleflight keeps one job per key,
		// so a resident entry holds these exact bytes already; refresh
		// recency (and let live traffic clear the warm attribution)
		// rather than double-counting bytes.
		m.lru.MoveToFront(e)
		if !warm {
			e.Value.(*memEntry).warm = false
		}
		return
	}
	m.entries[key] = m.lru.PushFront(&memEntry{key: key, line: line, warm: warm})
	m.bytes += int64(len(line))
	for m.limit > 0 && m.lru.Len() > m.limit {
		oldest := m.lru.Back()
		ent := oldest.Value.(*memEntry)
		m.lru.Remove(oldest)
		delete(m.entries, ent.key)
		m.bytes -= int64(len(ent.line))
		m.evictions.Add(1)
		m.rec.Add("cache_evictions", 1)
	}
}

// Len is the resident entry count.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// Bytes is the resident line bytes.
func (m *Memory) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Stats snapshots the memory-layer economy; disk fields stay zero.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	entries, bytes := m.lru.Len(), m.bytes
	m.mu.Unlock()
	return Stats{
		MemEntries: entries,
		MemBytes:   bytes,
		Evictions:  m.evictions.Load(),
	}
}
