package store

// The append-only segment log: the durable half of the result store.
// Records are immutable, content-addressed results — (cursor, key,
// code version, NDJSON line) — framed with a length prefix and a CRC so
// a crash mid-append is detectable, and written to numbered segment
// files that rotate at a size threshold so compaction can retire dead
// regions wholesale instead of rewriting one giant file.
//
// On-disk layout (all integers big-endian):
//
//	segment file <seq, %016d.seg>:
//	  8-byte magic "RPROSEG1"
//	  frame*:
//	    u32 payload length
//	    u32 CRC-32C (Castagnoli) of the payload
//	    payload:
//	      u64 cursor      monotonic append cursor (delta-sync identity)
//	      u16 key length    + key bytes   (hex SHA-256 content address)
//	      u16 version length + version bytes (code version at append time)
//	      line bytes        (the newline-terminated NDJSON result)
//
// Crash tolerance: replay stops a segment at the first frame that is
// short (truncated tail) or fails its CRC (torn write); the active
// segment is truncated back to its last good frame so future appends
// start from a clean boundary. Records are only trusted whole.
//
// The Log itself is not goroutine-safe: the Durable store serializes
// every call under its own mutex (single-writer, coordinated readers).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// segMagic begins every segment file; a file without it is ignored.
const segMagic = "RPROSEG1"

// maxRecordBytes bounds one frame's payload so a corrupt length prefix
// cannot drive a giant allocation during replay.
const maxRecordBytes = 1 << 30

// frameHeaderLen is the length + CRC prefix of one frame.
const frameHeaderLen = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one appended result: the delta-sync cursor, the content
// address, the code version the result was produced by, and the
// newline-terminated NDJSON line itself.
type Record struct {
	Cursor  uint64
	Key     string
	Version string
	Line    []byte
}

// frameSize is the on-disk footprint of the record's frame.
func (r Record) frameSize() int64 {
	return int64(frameHeaderLen + 8 + 2 + len(r.Key) + 2 + len(r.Version) + len(r.Line))
}

// encode renders the record's frame (header + payload).
func (r Record) encode() []byte {
	payload := make([]byte, 0, r.frameSize()-frameHeaderLen)
	payload = binary.BigEndian.AppendUint64(payload, r.Cursor)
	payload = binary.BigEndian.AppendUint16(payload, uint16(len(r.Key)))
	payload = append(payload, r.Key...)
	payload = binary.BigEndian.AppendUint16(payload, uint16(len(r.Version)))
	payload = append(payload, r.Version...)
	payload = append(payload, r.Line...)

	frame := make([]byte, 0, frameHeaderLen+len(payload))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	return append(frame, payload...)
}

// decodePayload parses one CRC-verified payload back into a Record.
func decodePayload(payload []byte) (Record, error) {
	var r Record
	if len(payload) < 8+2 {
		return r, fmt.Errorf("payload too short: %d bytes", len(payload))
	}
	r.Cursor = binary.BigEndian.Uint64(payload)
	rest := payload[8:]
	klen := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < klen+2 {
		return r, fmt.Errorf("key length %d overruns payload", klen)
	}
	r.Key = string(rest[:klen])
	rest = rest[klen:]
	vlen := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < vlen {
		return r, fmt.Errorf("version length %d overruns payload", vlen)
	}
	r.Version = string(rest[:vlen])
	r.Line = rest[vlen:]
	return r, nil
}

// segment is one numbered log file.
type segment struct {
	seq  int64
	path string
	f    *os.File
	size int64
}

// Log is the set of segment files in one directory plus the active
// (highest-numbered) segment appends go to.
type Log struct {
	dir          string
	segmentBytes int64
	segs         map[int64]*segment
	active       *segment
	nextSeq      int64
}

// OpenLog opens (or creates) the segment log in dir, rotating the
// active segment once it reaches segmentBytes. Existing segments are
// opened but not scanned — call Replay before the first Append.
func OpenLog(dir string, segmentBytes int64) (*Log, error) {
	if segmentBytes <= 0 {
		segmentBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, segmentBytes: segmentBytes, segs: map[int64]*segment{}, nextSeq: 1}

	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, path := range names {
		var seq int64
		if _, err := fmt.Sscanf(filepath.Base(path), "%d.seg", &seq); err != nil || seq <= 0 {
			continue // not one of ours
		}
		if seq >= l.nextSeq {
			l.nextSeq = seq + 1 // never reuse a sequence number, even for files we skip
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			l.Close()
			return nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			l.Close()
			return nil, err
		}
		header := make([]byte, len(segMagic))
		if n, _ := f.ReadAt(header, 0); n < len(segMagic) {
			// Shorter than its header: a crash during segment creation.
			// Reinitialize it so the file is usable again.
			if err := f.Truncate(0); err != nil {
				f.Close()
				l.Close()
				return nil, err
			}
			if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
				f.Close()
				l.Close()
				return nil, err
			}
			l.segs[seq] = &segment{seq: seq, path: path, f: f, size: int64(len(segMagic))}
			continue
		}
		if string(header) != segMagic {
			f.Close() // foreign or hopelessly corrupt; leave it alone
			continue
		}
		l.segs[seq] = &segment{seq: seq, path: path, f: f, size: fi.Size()}
	}
	for _, s := range l.segs {
		if l.active == nil || s.seq > l.active.seq {
			l.active = s
		}
	}
	if l.active == nil {
		if err := l.rotate(); err != nil {
			l.Close()
			return nil, err
		}
	}
	return l, nil
}

// rotate seals the current active segment (fsync) and starts a new one.
func (l *Log) rotate() error {
	if l.active != nil {
		if err := l.active.f.Sync(); err != nil {
			return err
		}
	}
	seq := l.nextSeq
	path := filepath.Join(l.dir, fmt.Sprintf("%016d.seg", seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
		f.Close()
		return err
	}
	s := &segment{seq: seq, path: path, f: f, size: int64(len(segMagic))}
	l.segs[seq] = s
	l.active = s
	l.nextSeq = seq + 1
	return nil
}

// Append writes one record to the active segment (rotating first if the
// segment has reached its size threshold) and returns where it landed.
func (l *Log) Append(r Record) (seq, off int64, err error) {
	if l.active.size >= l.segmentBytes && l.active.size > int64(len(segMagic)) {
		if err := l.rotate(); err != nil {
			return 0, 0, err
		}
	}
	frame := r.encode()
	off = l.active.size
	if _, err := l.active.f.WriteAt(frame, off); err != nil {
		return 0, 0, err
	}
	l.active.size += int64(len(frame))
	return l.active.seq, off, nil
}

// ReadAt reads back the record whose frame starts at off in segment
// seq, verifying its CRC.
func (l *Log) ReadAt(seq, off int64) (Record, error) {
	s, ok := l.segs[seq]
	if !ok {
		return Record{}, fmt.Errorf("segment %d is gone", seq)
	}
	header := make([]byte, frameHeaderLen)
	if _, err := s.f.ReadAt(header, off); err != nil {
		return Record{}, fmt.Errorf("segment %d @%d: %w", seq, off, err)
	}
	n := binary.BigEndian.Uint32(header)
	if n > maxRecordBytes {
		return Record{}, fmt.Errorf("segment %d @%d: implausible record length %d", seq, off, n)
	}
	payload := make([]byte, n)
	if _, err := s.f.ReadAt(payload, off+frameHeaderLen); err != nil {
		return Record{}, fmt.Errorf("segment %d @%d: %w", seq, off, err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.BigEndian.Uint32(header[4:]); got != want {
		return Record{}, fmt.Errorf("segment %d @%d: CRC mismatch", seq, off)
	}
	return decodePayload(payload)
}

// Replay scans every segment in sequence order and calls fn for each
// intact record. A segment's scan stops at the first truncated or torn
// frame — records past a tear are unreachable by construction — and the
// active segment is additionally truncated back to its last good frame
// so the next Append starts from a clean boundary. Only I/O errors are
// returned; corruption is tolerated silently (the tolerant path IS the
// contract).
func (l *Log) Replay(fn func(seq, off int64, r Record)) error {
	for _, seq := range l.seqs() {
		s := l.segs[seq]
		good, err := l.scanSegment(s, fn)
		if err != nil {
			return err
		}
		if s == l.active && good < s.size {
			if err := s.f.Truncate(good); err != nil {
				return err
			}
			s.size = good
		}
	}
	return nil
}

// ScanSegment replays one segment's intact records (compaction uses it
// to collect a victim's survivors).
func (l *Log) ScanSegment(seq int64, fn func(seq, off int64, r Record)) error {
	s, ok := l.segs[seq]
	if !ok {
		return fmt.Errorf("segment %d is gone", seq)
	}
	_, err := l.scanSegment(s, fn)
	return err
}

// scanSegment walks s frame by frame, returning the offset just past
// the last intact record.
func (l *Log) scanSegment(s *segment, fn func(seq, off int64, r Record)) (good int64, err error) {
	good = int64(len(segMagic))
	for off := good; off < s.size; {
		header := make([]byte, frameHeaderLen)
		if _, err := s.f.ReadAt(header, off); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return good, nil // truncated tail: frame header cut short
			}
			return good, err
		}
		n := binary.BigEndian.Uint32(header)
		if n > maxRecordBytes || off+frameHeaderLen+int64(n) > s.size {
			return good, nil // truncated tail or corrupt length
		}
		payload := make([]byte, n)
		if _, err := s.f.ReadAt(payload, off+frameHeaderLen); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return good, nil
			}
			return good, err
		}
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(header[4:]) {
			return good, nil // torn record: stop trusting this segment
		}
		r, derr := decodePayload(payload)
		if derr != nil {
			return good, nil // intact CRC but malformed layout: treat as a tear
		}
		fn(s.seq, off, r)
		off += frameHeaderLen + int64(n)
		good = off
	}
	return good, nil
}

// RemoveSegment unlinks one sealed segment (compaction's final step).
// Removing the active segment is refused.
func (l *Log) RemoveSegment(seq int64) error {
	s, ok := l.segs[seq]
	if !ok {
		return fmt.Errorf("segment %d is gone", seq)
	}
	if s == l.active {
		return fmt.Errorf("segment %d is active", seq)
	}
	s.f.Close()
	delete(l.segs, seq)
	return os.Remove(s.path)
}

// SealedSeqs lists every non-active segment, oldest first.
func (l *Log) SealedSeqs() []int64 {
	out := make([]int64, 0, len(l.segs))
	for seq := range l.segs {
		if l.active == nil || seq != l.active.seq {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DataBytes is the record bytes (past the header) of one segment.
func (l *Log) DataBytes(seq int64) int64 {
	s, ok := l.segs[seq]
	if !ok {
		return 0
	}
	return s.size - int64(len(segMagic))
}

// SegmentCount is the number of live segment files.
func (l *Log) SegmentCount() int { return len(l.segs) }

// TotalBytes is the total size of all live segment files.
func (l *Log) TotalBytes() int64 {
	var n int64
	for _, s := range l.segs {
		n += s.size
	}
	return n
}

// Sync flushes the active segment to durable media — the snapshot
// coordinator's whole job.
func (l *Log) Sync() error {
	if l.active == nil {
		return nil
	}
	return l.active.f.Sync()
}

// Close syncs the active segment and closes every file.
func (l *Log) Close() error {
	err := l.Sync()
	for _, s := range l.segs {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
	}
	l.segs = map[int64]*segment{}
	l.active = nil
	return err
}

// seqs lists every segment in ascending order.
func (l *Log) seqs() []int64 {
	out := make([]int64, 0, len(l.segs))
	for seq := range l.segs {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
