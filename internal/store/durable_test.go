package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// openTest opens a Durable store in dir with coordinators disabled (the
// tests that want them enable them explicitly) and a test code version.
func openTest(t *testing.T, dir, version string, cacheLimit int, segmentBytes int64) *Durable {
	t.Helper()
	d, err := Open(Options{
		Dir:          dir,
		CodeVersion:  version,
		CacheLimit:   cacheLimit,
		SegmentBytes: segmentBytes,
		SyncInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDurableWarmStartServesEverything(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, "v1", 0, 0)
	want := map[string][]byte{}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("key-%d", i)
		l := line(fmt.Sprintf(`{"point":%d}`, i))
		d.Put(k, l)
		want[k] = l
	}
	if c := d.Cursor(); c != 5 {
		t.Fatalf("cursor = %d after 5 appends, want 5", c)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTest(t, dir, "v1", 0, 0)
	for k, l := range want {
		got, ok := d2.Get(k)
		if !ok || !bytes.Equal(got, l) {
			t.Fatalf("warm Get(%s) = %q, %v; want %q", k, got, ok, l)
		}
	}
	st := d2.Stats()
	if st.Replayed != 5 || st.DiskEntries != 5 || st.Cursor != 5 {
		t.Fatalf("stats after warm start = %+v, want replayed/disk/cursor = 5", st)
	}
	if st.WarmHits != 5 {
		t.Fatalf("warm hits = %d after 5 replayed Gets, want 5", st.WarmHits)
	}
	// The cursor sequence continues where the log left off.
	d2.Put("key-5", line(`{"point":5}`))
	if c := d2.Cursor(); c != 6 {
		t.Fatalf("cursor after post-restart put = %d, want 6", c)
	}
}

func TestDurableSkipsMismatchedCodeVersion(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, "v1", 0, 0)
	d.Put("old", line(`{"v":1}`))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A new build must not serve (or index) the old build's records.
	d2 := openTest(t, dir, "v2", 0, 0)
	if _, ok := d2.Get("old"); ok {
		t.Fatal("v2 store served a v1 record")
	}
	st := d2.Stats()
	if st.Replayed != 0 || st.DiskEntries != 0 {
		t.Fatalf("v2 replay indexed v1 records: %+v", st)
	}
	// But the cursor sequence still advances past the old records, so
	// delta-sync cursors never repeat across versions.
	d2.Put("new", line(`{"v":2}`))
	if c := d2.Cursor(); c != 2 {
		t.Fatalf("cursor = %d, want 2 (v1 record holds cursor 1)", c)
	}
}

func TestDurableDiskHitAfterMemoryEviction(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, "v1", 1, 0) // one-entry warm layer
	d.Put("a", line("a"))
	d.Put("b", line("b")) // evicts a from memory; disk still has it
	got, ok := d.Get("a")
	if !ok || !bytes.Equal(got, line("a")) {
		t.Fatalf("Get(a) after eviction = %q, %v", got, ok)
	}
	st := d.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.DiskHits)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded with a one-entry memory layer")
	}
}

func TestDurableCompactionRetiresDeadSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every append seals the previous record's segment.
	d := openTest(t, dir, "v1", 0, 1)
	d.Put("a", line("a"))
	d.Put("b", line("b"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A new code version makes both v1 records dead on disk.
	d2 := openTest(t, dir, "v2", 0, 1)
	d2.Put("c", line("c"))
	before := d2.Stats()
	retired := d2.CompactNow()
	if retired == 0 {
		t.Fatalf("compaction retired nothing; stats before = %+v", before)
	}
	after := d2.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("segments %d -> %d; compaction must shrink the set", before.Segments, after.Segments)
	}
	if after.StoreBytes >= before.StoreBytes {
		t.Fatalf("store bytes %d -> %d; compaction must reclaim space", before.StoreBytes, after.StoreBytes)
	}
	if after.Compactions != int64(retired) {
		t.Fatalf("compactions counter = %d, want %d", after.Compactions, retired)
	}
	// The live record survives compaction byte-identically, cursor intact.
	got, ok := d2.Get("c")
	if !ok || !bytes.Equal(got, line("c")) {
		t.Fatalf("Get(c) after compaction = %q, %v", got, ok)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3 := openTest(t, dir, "v2", 0, 1)
	got, ok = d3.Get("c")
	if !ok || !bytes.Equal(got, line("c")) {
		t.Fatalf("Get(c) after compaction + restart = %q, %v", got, ok)
	}
	if st := d3.Stats(); st.Cursor != 3 {
		t.Fatalf("cursor after compaction + restart = %d, want 3 (compaction preserves cursors)", st.Cursor)
	}
}

// TestDurableCompactionDedupesSupersededRecords: two records for one
// key (a crash between compaction's re-append and unlink can leave
// duplicates) collapse to the newest.
func TestDurableCompactionDedupesSupersededRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 1) // every append rotates: record 1 lands in a sealed segment
	if err != nil {
		t.Fatal(err)
	}
	for c := uint64(1); c <= 2; c++ {
		if _, _, err := l.Append(Record{Cursor: c, Key: "dup", Version: "v1", Line: line(fmt.Sprintf("copy-%d", c))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	d := openTest(t, dir, "v1", 0, 1)
	if st := d.Stats(); st.DiskEntries != 1 {
		t.Fatalf("disk entries = %d, want 1 (duplicates share a key)", st.DiskEntries)
	}
	got, ok := d.Get("dup")
	if !ok || !bytes.Equal(got, line("copy-2")) {
		t.Fatalf("Get(dup) = %q, %v; want the newest copy", got, ok)
	}
	segsBefore := d.Stats().Segments
	if d.CompactNow() == 0 {
		t.Fatal("compaction left the superseded copy in place")
	}
	if after := d.Stats(); after.Segments >= segsBefore {
		t.Fatalf("segments %d -> %d after dedupe", segsBefore, after.Segments)
	}
	if got, ok := d.Get("dup"); !ok || !bytes.Equal(got, line("copy-2")) {
		t.Fatalf("Get(dup) after dedupe = %q, %v", got, ok)
	}
}

func TestDurableSinceStreamsInCursorOrder(t *testing.T) {
	dir := t.TempDir()
	d := openTest(t, dir, "v1", 0, 0)
	for i := 1; i <= 4; i++ {
		d.Put(fmt.Sprintf("k%d", i), line(fmt.Sprintf("r%d", i)))
	}
	collect := func(since uint64) []Delta {
		var out []Delta
		if err := d.Since(since, func(dl Delta) error { out = append(out, dl); return nil }); err != nil {
			t.Fatalf("Since(%d): %v", since, err)
		}
		return out
	}

	all := collect(0)
	if len(all) != 4 {
		t.Fatalf("Since(0) = %d records, want 4", len(all))
	}
	for i, dl := range all {
		if dl.Cursor != uint64(i+1) {
			t.Fatalf("record %d has cursor %d; stream must be cursor-ordered", i, dl.Cursor)
		}
		if want := line(fmt.Sprintf("r%d", i+1)); !bytes.Equal(dl.Line, want) {
			t.Fatalf("record %d line = %q, want %q", i, dl.Line, want)
		}
	}
	if tail := collect(2); len(tail) != 2 || tail[0].Cursor != 3 {
		t.Fatalf("Since(2) = %+v, want cursors 3,4", tail)
	}
	// A cursor at or past the end is an empty stream, not an error.
	if past := collect(99); len(past) != 0 {
		t.Fatalf("Since(99) = %d records, want 0", len(past))
	}
}

// TestDurableConcurrentUseWithCoordinators exercises the full store —
// puts, gets, delta pulls — while both coordinators tick at a high
// rate. Run under -race with the rest of the suite, this is the
// store's data-race oracle.
func TestDurableConcurrentUseWithCoordinators(t *testing.T) {
	d, err := Open(Options{
		Dir:             t.TempDir(),
		CodeVersion:     "v1",
		CacheLimit:      8, // force disk refills under load
		SegmentBytes:    256,
		SyncInterval:    time.Millisecond,
		CompactInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				d.Put(k, line(k))
				if got, ok := d.Get(k); !ok || !bytes.Equal(got, line(k)) {
					t.Errorf("Get(%s) = %q, %v", k, got, ok)
					return
				}
				d.Since(0, func(Delta) error { return nil })
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTest(t, t.TempDir(), "v1", 0, 0)
	_ = d2 // fresh-dir open after a busy close must still work
	d3, err := Open(Options{Dir: dOptsDir(d), CodeVersion: "v1", SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if st := d3.Stats(); st.DiskEntries != writers*perWriter {
		t.Fatalf("disk entries after restart = %d, want %d", st.DiskEntries, writers*perWriter)
	}
}

// dOptsDir exposes the store's directory for reopening in tests.
func dOptsDir(d *Durable) string { return d.opts.Dir }
