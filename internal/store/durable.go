package store

// Durable layers the in-memory LRU over the append-only segment Log:
// write-through on Put, warm-start replay on Open, and two background
// coordinators in the engram internal/worker style — a snapshot
// coordinator that periodically fsyncs the active segment (batched
// durability instead of a per-record fsync tax) and a compaction
// coordinator that rewrites sealed segments whose records have been
// superseded or belong to another code version. Both stop cleanly on
// Close, after the serving layer has drained.

import (
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Options configures a Durable store. Dir and CodeVersion are required.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string

	// CacheLimit bounds the in-memory layer's entry count: 0 means
	// 16384, negative means unbounded (serve.Config.CacheLimit's
	// semantics).
	CacheLimit int

	// SegmentBytes is the rotation threshold for the active segment;
	// 0 means 8 MiB.
	SegmentBytes int64

	// SyncInterval paces the snapshot coordinator's fsync of the active
	// segment; 0 means 500ms, negative disables the coordinator (Close
	// still syncs).
	SyncInterval time.Duration

	// CompactInterval paces the compaction coordinator; 0 disables it
	// (CompactNow still works on demand).
	CompactInterval time.Duration

	// CodeVersion stamps every appended record; replay skips records
	// carrying any other version, since their keys can never be asked
	// for by this build (the key folds the version in).
	CodeVersion string

	// Rec receives the store's counters (warm/disk hits, compactions,
	// replay size) so they land in run manifests; nil-safe.
	Rec *obs.Recorder

	// Log receives coordinator events; nil means slog.Default.
	Log *slog.Logger
}

// ref locates one key's newest record in the segment log.
type ref struct {
	seq    int64
	off    int64
	cursor uint64
	size   int64 // frame bytes, for per-segment liveness accounting
}

// Delta is one record of a cursor-ordered delta stream: everything a
// peer needs to replicate the append ("give me everything since X").
type Delta struct {
	Cursor uint64
	Key    string
	Line   []byte // the newline-terminated stored NDJSON result line
}

// Durable is the persistent ResultStore: an LRU warm layer over the
// segment log. Safe for concurrent use.
type Durable struct {
	opts Options
	mem  *Memory
	rec  *obs.Recorder
	slog *slog.Logger

	mu       sync.Mutex
	log      *Log
	index    map[string]ref // newest record per key, current code version only
	cursor   uint64         // last assigned delta-sync cursor
	replayed int64
	closed   bool

	warmHits     atomic.Int64
	diskHits     atomic.Int64
	compactions  atomic.Int64
	appendErrors atomic.Int64
	readErrors   atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open opens (or creates) the store in opts.Dir and replays the segment
// log: every intact record carrying the current code version is indexed
// and its line loaded into the warm layer, so a restarted daemon serves
// its whole history without re-simulating. Truncated tails and torn
// records are tolerated (replay stops a segment at the tear); records
// from other code versions are skipped. The coordinators start before
// Open returns; callers must Close.
func Open(opts Options) (*Durable, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: Dir is required")
	}
	if opts.CodeVersion == "" {
		return nil, errors.New("store: CodeVersion is required")
	}
	if opts.CacheLimit == 0 {
		opts.CacheLimit = 16384
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = 500 * time.Millisecond
	}
	if opts.Log == nil {
		opts.Log = slog.Default()
	}

	l, err := OpenLog(opts.Dir, opts.SegmentBytes)
	if err != nil {
		return nil, err
	}
	d := &Durable{
		opts:  opts,
		mem:   NewMemory(opts.CacheLimit, opts.Rec),
		rec:   opts.Rec,
		slog:  opts.Log,
		log:   l,
		index: map[string]ref{},
		stop:  make(chan struct{}),
	}

	var skipped int64
	err = l.Replay(func(seq, off int64, r Record) {
		if r.Cursor > d.cursor {
			d.cursor = r.Cursor
		}
		if r.Version != opts.CodeVersion {
			skipped++ // another build's result; its key can never be requested here
			return
		}
		if old, ok := d.index[r.Key]; ok && old.cursor > r.Cursor {
			return
		}
		d.index[r.Key] = ref{seq: seq, off: off, cursor: r.Cursor, size: r.frameSize()}
	})
	if err != nil {
		l.Close()
		return nil, err
	}
	// Warm the memory layer from the settled index, in cursor order, so
	// the LRU's recency mirrors append recency and a duplicate key (a
	// crash between compaction's re-append and unlink) warms its newest
	// copy, not whichever the scan met first.
	if err := d.warmFromIndex(); err != nil {
		l.Close()
		return nil, err
	}
	d.replayed = int64(len(d.index))
	d.rec.Add("store_replayed", d.replayed)
	d.slog.Info("store: warm start",
		"dir", opts.Dir, "replayed", d.replayed, "skipped_version", skipped,
		"segments", l.SegmentCount(), "cursor", d.cursor)

	if opts.SyncInterval > 0 {
		d.wg.Add(1)
		// The snapshot coordinator owns durability pacing; it never
		// touches simulation state.
		go d.snapshotLoop() //reprolint:allow goroutinescope: the snapshot coordinator only fsyncs the segment log on a ticker; simulation parallelism stays behind the deterministic executor
	}
	if opts.CompactInterval > 0 {
		d.wg.Add(1)
		// The compaction coordinator retires superseded segments; it
		// never touches simulation state.
		go d.compactionLoop() //reprolint:allow goroutinescope: the compaction coordinator only rewrites sealed log segments on a ticker; simulation parallelism stays behind the deterministic executor
	}
	return d, nil
}

// warmFromIndex loads every indexed record's line into the memory
// layer, oldest cursor first, so the most recently appended results end
// up most recent in the LRU. Called from Open before the coordinators
// start, so no locking is needed.
func (d *Durable) warmFromIndex() error {
	pending := make([]struct {
		key    string
		cursor uint64
	}, 0, len(d.index))
	for k, rf := range d.index {
		pending = append(pending, struct {
			key    string
			cursor uint64
		}{k, rf.cursor})
	}
	sortByCursor(pending)
	for _, p := range pending {
		rf := d.index[p.key]
		r, err := d.log.ReadAt(rf.seq, rf.off)
		if err != nil {
			return err
		}
		d.mem.put(p.key, r.Line, true)
	}
	return nil
}

// Get serves key from the warm layer, falling back to the segment log
// (and re-warming the line) on a memory miss.
func (d *Durable) Get(key string) ([]byte, bool) {
	if line, warm, ok := d.mem.get(key); ok {
		if warm {
			d.warmHits.Add(1)
			d.rec.Add("store_warm_hits", 1)
		}
		return line, true
	}
	d.mu.Lock()
	rf, ok := d.index[key]
	if !ok {
		d.mu.Unlock()
		return nil, false
	}
	r, err := d.log.ReadAt(rf.seq, rf.off)
	d.mu.Unlock()
	if err != nil {
		// A should-never-happen read failure degrades to a cache miss:
		// the caller re-simulates and Put repairs the index.
		d.readErrors.Add(1)
		d.rec.Add("store_read_errors", 1)
		d.slog.Warn("store: indexed record unreadable", "key", key, "err", err)
		return nil, false
	}
	d.diskHits.Add(1)
	d.rec.Add("store_disk_hits", 1)
	d.mem.put(key, r.Line, false)
	return r.Line, true
}

// Put appends the line to the segment log (write-through, assigning the
// next delta-sync cursor) and stores it in the warm layer.
func (d *Durable) Put(key string, line []byte) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.cursor++
	r := Record{Cursor: d.cursor, Key: key, Version: d.opts.CodeVersion, Line: line}
	seq, off, err := d.log.Append(r)
	if err != nil {
		// Disk trouble must not take serving down: keep the result in
		// memory and let the operator see the failure.
		d.mu.Unlock()
		d.appendErrors.Add(1)
		d.rec.Add("store_append_errors", 1)
		d.slog.Error("store: append failed; result is memory-only", "key", key, "err", err)
		d.mem.put(key, line, false)
		return
	}
	d.index[key] = ref{seq: seq, off: off, cursor: r.Cursor, size: r.frameSize()}
	d.mu.Unlock()
	d.mem.put(key, line, false)
}

// Len is the warm layer's resident entry count (the disk index is
// DiskEntries in Stats).
func (d *Durable) Len() int { return d.mem.Len() }

// Bytes is the warm layer's resident line bytes.
func (d *Durable) Bytes() int64 { return d.mem.Bytes() }

// Cursor is the last assigned delta-sync cursor.
func (d *Durable) Cursor() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cursor
}

// Since streams every live record with cursor > since, in cursor order,
// to fn; it stops early on the first fn error and returns it. Records
// appended after the call's snapshot are not included — their cursors
// are higher than everything streamed, so a client resuming from the
// last streamed cursor picks them up next pull.
func (d *Durable) Since(since uint64, fn func(Delta) error) error {
	d.mu.Lock()
	pending := make([]struct {
		key    string
		cursor uint64
	}, 0, len(d.index))
	for k, rf := range d.index {
		if rf.cursor > since {
			pending = append(pending, struct {
				key    string
				cursor uint64
			}{k, rf.cursor})
		}
	}
	d.mu.Unlock()
	sortByCursor(pending)

	for _, p := range pending {
		// Re-resolve under the lock each iteration: compaction may have
		// moved the record since the snapshot (its cursor never changes).
		d.mu.Lock()
		rf, ok := d.index[p.key]
		if !ok {
			d.mu.Unlock()
			continue
		}
		r, err := d.log.ReadAt(rf.seq, rf.off)
		d.mu.Unlock()
		if err != nil {
			return err
		}
		if err := fn(Delta{Cursor: rf.cursor, Key: p.key, Line: r.Line}); err != nil {
			return err
		}
	}
	return nil
}

// sortByCursor orders a pending delta snapshot; cursors are unique, so
// the order is total.
func sortByCursor(p []struct {
	key    string
	cursor uint64
}) {
	for i := 1; i < len(p); i++ { // insertion sort keeps the anonymous-struct slice dependency-free
		for j := i; j > 0 && p[j].cursor < p[j-1].cursor; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

// Sync flushes the active segment to durable media.
func (d *Durable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	return d.log.Sync()
}

// CompactNow rewrites every sealed segment containing dead bytes —
// records superseded by a newer append or stamped with another code
// version — by re-appending its live records (cursors preserved) and
// unlinking the segment. Returns how many segments were retired.
// Result lines are small, so "any dead bytes" is a deliberately eager
// policy: it keeps the test oracle deterministic and the disk footprint
// tight without a tunable.
func (d *Durable) CompactNow() int {
	start := time.Now() //reprolint:allow nondeterminism: compaction duration is coordinator telemetry, observation-only by contract
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0
	}
	live := map[int64]int64{}
	for _, rf := range d.index {
		live[rf.seq] += rf.size
	}
	retired := 0
	for _, seq := range d.log.SealedSeqs() {
		if d.log.DataBytes(seq) == live[seq] {
			continue // every byte still live: nothing to reclaim
		}
		type survivor struct {
			r   Record
			off int64
		}
		var survivors []survivor
		if err := d.log.ScanSegment(seq, func(_, off int64, r Record) {
			if rf, ok := d.index[r.Key]; ok && rf.seq == seq && rf.off == off {
				survivors = append(survivors, survivor{r: r, off: off})
			}
		}); err != nil {
			d.slog.Warn("store: compaction scan failed", "segment", seq, "err", err)
			continue
		}
		ok := true
		for _, sv := range survivors {
			nseq, noff, err := d.log.Append(sv.r)
			if err != nil {
				d.slog.Error("store: compaction append failed", "segment", seq, "err", err)
				ok = false
				break
			}
			d.index[sv.r.Key] = ref{seq: nseq, off: noff, cursor: sv.r.Cursor, size: sv.r.frameSize()}
		}
		if !ok {
			break
		}
		// The survivors' new copies must be durable before the only
		// other copy is unlinked.
		if err := d.log.Sync(); err != nil {
			d.slog.Error("store: compaction sync failed", "segment", seq, "err", err)
			break
		}
		if err := d.log.RemoveSegment(seq); err != nil {
			d.slog.Warn("store: compaction remove failed", "segment", seq, "err", err)
			continue
		}
		retired++
		d.compactions.Add(1)
		d.rec.Add("store_compactions", 1)
	}
	d.mu.Unlock()
	if retired > 0 {
		d.slog.Debug("store: compacted",
			"segments", retired,
			"elapsed", time.Since(start)) //reprolint:allow nondeterminism: compaction duration is coordinator telemetry, observation-only by contract
	}
	return retired
}

// Stats snapshots the full store economy: the warm layer plus the
// segment log gauges.
func (d *Durable) Stats() Stats {
	st := d.mem.Stats()
	d.mu.Lock()
	st.DiskEntries = len(d.index)
	st.Segments = d.log.SegmentCount()
	st.StoreBytes = d.log.TotalBytes()
	st.Cursor = d.cursor
	st.Replayed = d.replayed
	d.mu.Unlock()
	st.WarmHits = d.warmHits.Load()
	st.DiskHits = d.diskHits.Load()
	st.Compactions = d.compactions.Load()
	st.AppendErrors = d.appendErrors.Load()
	st.ReadErrors = d.readErrors.Load()
	return st
}

// snapshotLoop is the snapshot coordinator: a periodic durability
// checkpoint (fsync of the active segment) so a machine crash loses at
// most one interval of appends, without paying a per-record fsync.
func (d *Durable) snapshotLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := d.Sync(); err != nil {
				d.slog.Error("store: snapshot sync failed", "err", err)
			}
		}
	}
}

// compactionLoop is the compaction coordinator: it periodically retires
// sealed segments whose records are superseded or version-mismatched.
func (d *Durable) compactionLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.CompactNow()
		}
	}
}

// Close stops both coordinators, waits for them to drain, syncs the
// active segment one last time and closes every file. Call after the
// serving layer has stopped issuing Puts.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	close(d.stop)
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return d.log.Close()
}
