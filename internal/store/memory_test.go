package store

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

func line(s string) []byte { return []byte(s + "\n") }

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory(0, nil)
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty store reported a hit")
	}
	m.Put("a", line(`{"k":"a"}`))
	got, ok := m.Get("a")
	if !ok || !bytes.Equal(got, line(`{"k":"a"}`)) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if m.Len() != 1 || m.Bytes() != int64(len(line(`{"k":"a"}`))) {
		t.Fatalf("Len=%d Bytes=%d after one put", m.Len(), m.Bytes())
	}
}

func TestMemoryEvictsLeastRecentlyUsed(t *testing.T) {
	rec := obs.New(nil)
	m := NewMemory(2, rec)
	m.Put("a", line("a"))
	m.Put("b", line("b"))
	if _, ok := m.Get("a"); !ok { // refresh a: b is now the eviction victim
		t.Fatal("a missing before eviction")
	}
	m.Put("c", line("c"))
	if _, ok := m.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if _, ok := m.Get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	st := m.Stats()
	if st.Evictions != 1 || st.MemEntries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	if rec.Counter("cache_evictions") != 1 {
		t.Fatalf("cache_evictions counter = %d, want 1", rec.Counter("cache_evictions"))
	}
}

func TestMemoryRePutKeepsOneCopy(t *testing.T) {
	m := NewMemory(0, nil)
	l := line("same")
	m.Put("k", l)
	m.Put("k", l)
	if m.Len() != 1 || m.Bytes() != int64(len(l)) {
		t.Fatalf("re-put double-counted: Len=%d Bytes=%d", m.Len(), m.Bytes())
	}
}
