// Package isa defines the minimal Alpha-like instruction vocabulary the
// simulators operate on: instruction classes with their Alpha 21264
// execution latencies, from which the paper derives the functional-unit
// latencies of Table 3 at every clock.
package isa

// Class is the execution class of an instruction.
type Class uint8

// Instruction classes. The paper's Table 3 distinguishes integer add and
// multiply, and floating-point add, multiply, divide and square root;
// loads, stores and branches complete the mix.
const (
	IntAlu Class = iota // add, logical, shift, compare; also branch resolution
	IntMult
	FPAdd
	FPMult
	FPDiv
	FPSqrt
	Load
	Store
	Branch
	NumClasses int = iota
)

var classNames = [NumClasses]string{
	"int-alu", "int-mult", "fp-add", "fp-mult", "fp-div", "fp-sqrt",
	"load", "store", "branch",
}

func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return "invalid"
}

// IsFP reports whether the class executes on the floating-point cluster.
func (c Class) IsFP() bool { return c >= FPAdd && c <= FPSqrt }

// IsMem reports whether the class accesses the data cache.
func (c Class) IsMem() bool { return c == Load || c == Store }

// Alpha21264Cycles returns the execution latency of the class on the Alpha
// 21264 (800 MHz, 180nm) in that machine's cycles — the last row of
// Table 3. Loads report address-generation only; the cache access is
// modeled separately. All units are fully pipelined.
func (c Class) Alpha21264Cycles() int {
	switch c {
	case IntAlu, Load, Store, Branch:
		return 1
	case IntMult:
		return 7
	case FPAdd, FPMult:
		return 4
	case FPDiv:
		return 12
	case FPSqrt:
		return 18
	default:
		panic("isa: invalid class")
	}
}
