package isa

import "testing"

func TestAlpha21264Latencies(t *testing.T) {
	// The last row of Table 3.
	want := map[Class]int{
		IntAlu: 1, IntMult: 7, FPAdd: 4, FPMult: 4, FPDiv: 12, FPSqrt: 18,
		Load: 1, Store: 1, Branch: 1,
	}
	for c, w := range want {
		if got := c.Alpha21264Cycles(); got != w {
			t.Errorf("%v: %d cycles, want %d", c, got, w)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	for c := 0; c < NumClasses; c++ {
		cl := Class(c)
		wantFP := cl == FPAdd || cl == FPMult || cl == FPDiv || cl == FPSqrt
		if cl.IsFP() != wantFP {
			t.Errorf("%v.IsFP() = %v", cl, cl.IsFP())
		}
		wantMem := cl == Load || cl == Store
		if cl.IsMem() != wantMem {
			t.Errorf("%v.IsMem() = %v", cl, cl.IsMem())
		}
	}
}

func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := 0; c < NumClasses; c++ {
		s := Class(c).String()
		if s == "" || s == "invalid" {
			t.Errorf("class %d has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate class name %q", s)
		}
		seen[s] = true
	}
	if Class(200).String() != "invalid" {
		t.Error("out-of-range class not invalid")
	}
}

func TestInvalidClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid class latency")
		}
	}()
	Class(99).Alpha21264Cycles()
}
