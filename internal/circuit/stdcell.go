package circuit

// Standard-cell construction helpers. Every cell takes the supply node
// (from VDDNode) explicitly so test benches can share one supply. Cell
// "size" multiplies all transistor widths; size 1 is the unit inverter
// (NMOS width 1, PMOS width 2 to balance the mobility difference).

// Inverter adds a CMOS inverter of the given size driving out from in.
func (c *Circuit) Inverter(vdd, in, out Node, size float64) {
	c.NMOS(in, out, Gnd, size)
	c.PMOS(in, out, vdd, 2*size)
}

// InverterChain adds n unit-size inverters in series from in, returning the
// final output node and the list of intermediate nodes (including the
// output). The paper's latch testbench buffers the clock and data inputs
// through a series of six inverters to model realistic on-chip edges.
func (c *Circuit) InverterChain(vdd, in Node, n int, size float64, name string) (Node, []Node) {
	cur := in
	nodes := make([]Node, 0, n)
	for i := 0; i < n; i++ {
		next := c.Node(name + "_" + string(rune('a'+i)))
		c.Inverter(vdd, cur, next, size)
		cur = next
		nodes = append(nodes, next)
	}
	return cur, nodes
}

// FanoutLoad attaches count unit-size inverter input loads to node n. The
// inverter outputs are left dangling on private nodes, exactly like the
// measurement fan-out in an FO4 test structure.
func (c *Circuit) FanoutLoad(vdd, n Node, count int, size float64) {
	for i := 0; i < count; i++ {
		dummy := c.Node("load")
		c.Inverter(vdd, n, dummy, size)
	}
}

// NAND adds an n-input NAND gate: a series NMOS stack to ground and
// parallel PMOS pull-ups. The series stack's transistors are widened by the
// number of inputs to keep the worst-case pull-down comparable to the unit
// inverter, the usual sizing discipline.
func (c *Circuit) NAND(vdd, out Node, ins []Node, size float64) {
	if len(ins) == 0 {
		panic("circuit: NAND needs at least one input")
	}
	// Series NMOS stack from out to ground through internal nodes. The
	// stack uses raw devices with explicit parasitics: in layout, adjacent
	// series transistors share a single diffusion region, so each internal
	// node carries one diffusion capacitance, not two.
	stackW := size * float64(len(ins))
	prev := out
	for i, in := range ins {
		var next Node
		if i == len(ins)-1 {
			next = Gnd
		} else {
			next = c.Node("nand_stack")
		}
		c.NMOSRaw(in, prev, next, stackW)
		c.C(in, Gnd, c.Params.CGate*stackW)
		if next != Gnd {
			c.C(next, Gnd, c.Params.CDiff*stackW)
		}
		prev = next
	}
	// Parallel PMOS pull-ups, drains merged pairwise on the output node.
	for _, in := range ins {
		c.PMOSRaw(in, out, vdd, 2*size)
		c.C(in, Gnd, c.Params.CGate*2*size)
	}
	pmosDrainPairs := float64((len(ins) + 1) / 2)
	c.C(out, Gnd, c.Params.CDiff*(stackW+2*size*pmosDrainPairs))
}

// TransmissionGate adds a CMOS pass gate between a and b, on when ctl is
// high (and ctlBar low).
func (c *Circuit) TransmissionGate(a, b, ctl, ctlBar Node, size float64) {
	c.NMOS(ctl, a, b, size)
	c.PMOS(ctlBar, a, b, 2*size)
}

// PulseLatch adds the paper's level-sensitive pulse latch (Figure 2a):
// a transmission gate from d to an internal storage node, an inverter to
// the output q, and a clocked feedback path (tri-state inverter from q back
// to the storage node, enabled while the clock is low) that holds the
// sampled value. Returns the internal storage node and the output q.
func (c *Circuit) PulseLatch(vdd, d, clk, clkBar Node, size float64) (store, q Node) {
	store = c.Node("latch_store")
	q = c.Node("latch_q")
	c.TransmissionGate(d, store, clk, clkBar, size)
	c.Inverter(vdd, store, q, size)
	// Feedback: inverting path from q to store, active while clk is low.
	// Implemented as a weak tri-state inverter (clocked series devices).
	fbw := size * 0.5
	mid1 := c.Node("latch_fb_n")
	mid2 := c.Node("latch_fb_p")
	c.NMOS(q, mid1, Gnd, fbw)
	c.NMOS(clkBar, store, mid1, fbw)
	c.PMOS(q, mid2, vdd, 2*fbw)
	c.PMOS(clk, store, mid2, 2*fbw)
	return store, q
}
