package circuit

import (
	"math"
	"testing"
)

func TestTransmissionGateConducts(t *testing.T) {
	// On: the output follows the driver through the pass gate.
	c := New(Params100nm)
	in := c.Node("in")
	out := c.Node("out")
	ctl := c.Node("ctl")
	ctlBar := c.Node("ctlbar")
	c.V(in, DC(1.0))
	c.V(ctl, DC(Params100nm.VDD))
	c.V(ctlBar, DC(0))
	c.TransmissionGate(in, out, ctl, ctlBar, 1)
	res := c.Simulate(500, 0.1)
	if got := res.FinalVoltage(out); math.Abs(got-1.0) > 0.05 {
		t.Errorf("on-gate output = %.3f V, want ~1.0", got)
	}
}

func TestTransmissionGateBlocks(t *testing.T) {
	// Off: the output keeps (approximately) its initial value.
	c := New(Params100nm)
	in := c.Node("in")
	out := c.Node("out")
	ctl := c.Node("ctl")
	ctlBar := c.Node("ctlbar")
	c.V(in, DC(1.2))
	c.V(ctl, DC(0))
	c.V(ctlBar, DC(1.2))
	c.TransmissionGate(in, out, ctl, ctlBar, 1)
	res := c.Simulate(500, 0.1)
	if got := res.FinalVoltage(out); got > 0.3 {
		t.Errorf("off-gate output = %.3f V, want near 0 (leakage only)", got)
	}
}

func TestNAND4WithTiedInputs(t *testing.T) {
	// A NAND4 with three inputs tied high inverts the fourth — the
	// Appendix A testbench's configuration.
	for _, inV := range []float64{0, Params100nm.VDD} {
		c := New(Params100nm)
		vdd := c.VDDNode()
		in := c.Node("in")
		out := c.Node("out")
		c.V(in, DC(inV))
		c.NAND(vdd, out, []Node{in, vdd, vdd, vdd}, 1)
		res := c.Simulate(600, 0.1)
		want := Params100nm.VDD
		if inV > 0.6 {
			want = 0
		}
		if got := res.FinalVoltage(out); math.Abs(got-want) > 0.1 {
			t.Errorf("NAND4(%g,1,1,1) = %.3f, want %.3f", inV, got, want)
		}
	}
}

func TestPulseLatchTransparentWhileClockHigh(t *testing.T) {
	// While the clock is held high the latch is transparent: Q tracks
	// NOT(D) after a propagation delay.
	c := New(Params100nm)
	vdd := c.VDDNode()
	d := c.Node("d")
	clk := c.Node("clk")
	clkBar := c.Node("clkbar")
	c.V(clk, DC(Params100nm.VDD))
	c.V(clkBar, DC(0))
	c.V(d, Step(0, Params100nm.VDD, 300, 15))
	_, q := c.PulseLatch(vdd, d, clk, clkBar, 1)
	res := c.SimulateSettled(800, 700, 0.1)
	if got := res.Voltage(q, 250); got < 0.9*Params100nm.VDD {
		t.Errorf("transparent latch Q before D rise = %.2f, want high", got)
	}
	if got := res.FinalVoltage(q); got > 0.1*Params100nm.VDD {
		t.Errorf("transparent latch Q after D rise = %.2f, want low", got)
	}
}

func TestSimulateSettledReachesDC(t *testing.T) {
	// After settling, a three-inverter ring... no — a chain's internal
	// nodes must be at their DC values at t=0 rather than 0 V.
	c := New(Params100nm)
	vdd := c.VDDNode()
	in := c.Node("in")
	c.V(in, DC(0))
	out, nodes := c.InverterChain(vdd, in, 3, 1, "ch")
	res := c.SimulateSettled(800, 100, 0.1)
	// in=0 → n1 high, n2 low, n3 high.
	if v := res.V[nodes[0]][0]; v < 1.0 {
		t.Errorf("first node starts at %.2f V, want settled high", v)
	}
	if v := res.V[nodes[1]][0]; v > 0.2 {
		t.Errorf("second node starts at %.2f V, want settled low", v)
	}
	if v := res.V[out][0]; v < 1.0 {
		t.Errorf("output starts at %.2f V, want settled high", v)
	}
}

func TestVoltageInterpolation(t *testing.T) {
	c := New(Params100nm)
	n := c.Node("n")
	c.V(n, PWL{{T: 0, V: 0}, {T: 100, V: 1}})
	res := c.Simulate(100, 1)
	mid := res.Voltage(n, 50)
	if math.Abs(mid-0.5) > 0.05 {
		t.Errorf("interpolated midpoint = %.3f, want ~0.5", mid)
	}
	if got := res.Voltage(n, -10); got != res.V[n][0] {
		t.Error("pre-start voltage not clamped")
	}
	if got := res.Voltage(n, 1e9); got != res.FinalVoltage(n) {
		t.Error("post-end voltage not clamped")
	}
}

func TestCrossTimeDirections(t *testing.T) {
	c := New(Params100nm)
	n := c.Node("n")
	c.V(n, PWL{{T: 0, V: 0}, {T: 50, V: 1.2}, {T: 100, V: 1.2}, {T: 150, V: 0}})
	res := c.Simulate(200, 0.5)
	up, ok := res.CrossTime(n, 0.6, true, 0)
	if !ok || math.Abs(up-25) > 2 {
		t.Errorf("rising crossing at %.1f, want ~25", up)
	}
	down, ok := res.CrossTime(n, 0.6, false, up)
	if !ok || math.Abs(down-125) > 2 {
		t.Errorf("falling crossing at %.1f, want ~125", down)
	}
	if _, ok := res.CrossTime(n, 0.6, true, down); ok {
		t.Error("found a second rising crossing that does not exist")
	}
}
