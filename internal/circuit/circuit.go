// Package circuit is a small transient circuit simulator in the spirit of
// SPICE, specialized for the switch-level CMOS timing experiments the paper
// performs: measuring an FO4 inverter delay, the overhead of a pulse latch
// (Figures 2 and 3), and the delay of a CMOS-equivalent Cray ECL gate
// (Appendix A).
//
// The simulator performs nodal analysis with backward-Euler integration on a
// netlist of resistors, capacitors, ideal (piecewise-linear) voltage sources
// and switch-level MOSFETs. MOSFETs are modeled as voltage-controlled
// conductances with explicit gate and diffusion capacitance; this is far
// simpler than a BSIM model but reproduces the paper's methodology, which
// depends on relative delays (everything is reported in FO4) rather than
// absolute sub-picosecond accuracy.
//
// Units: volts, picoseconds, kilo-ohms and femtofarads. Conveniently,
// 1 kΩ × 1 fF = 1 ps, so all time constants come out directly in
// picoseconds.
package circuit

import (
	"fmt"
	"math"
)

// Node identifies a circuit node. The ground node is always Node 0.
type Node int

// Gnd is the ground node, fixed at 0 V.
const Gnd Node = 0

// deviceKind enumerates the primitive devices the simulator understands.
type deviceKind uint8

const (
	kindResistor deviceKind = iota
	kindCapacitor
	kindNMOS
	kindPMOS
	kindVSource
)

type device struct {
	kind deviceKind
	a, b Node // resistor/capacitor terminals; MOS drain/source
	g    Node // MOS gate
	val  float64
	wave Waveform // voltage source waveform
}

// Params holds the technology parameters of the switch-level device model.
type Params struct {
	VDD   float64 // supply voltage, volts
	Vth   float64 // MOS threshold voltage, volts
	VthSm float64 // smoothing range over which the channel turns on, volts

	// RonN is the effective on-resistance of a unit-width NMOS channel in
	// kΩ; a device of width w has resistance RonN/w. PMOS mobility is lower,
	// so its unit resistance is RonP.
	RonN float64
	RonP float64

	// CGate is gate capacitance per unit width (fF); CDiff is source/drain
	// diffusion capacitance per unit width (fF).
	CGate float64
	CDiff float64

	// Goff is the off-state channel conductance (1/kΩ) per unit width,
	// a small leakage term that keeps the nodal matrix well-conditioned.
	Goff float64
}

// Params100nm is the device model calibrated so that a simulated FO4
// inverter delay is 36 ps, matching the paper's 100nm technology
// (360 ps × 0.1 µm). See latch.MeasureFO4 for the measurement.
var Params100nm = Params{
	VDD:   1.2,
	Vth:   0.30,
	VthSm: 0.20,
	RonN:  28.3,
	RonP:  56.6,
	CGate: 0.16,
	CDiff: 0.06,
	Goff:  1e-7,
}

// Circuit is a netlist under construction.
type Circuit struct {
	Params  Params
	names   []string
	devices []device
	pinned  []bool // node has an ideal voltage source attached

	// Scratch buffers reused by step to avoid per-timestep allocation.
	scratchA [][]float64
	scratchB []float64
	scratchX []float64
}

// New returns an empty circuit using the given device parameters. The
// ground node exists from the start.
func New(p Params) *Circuit {
	c := &Circuit{Params: p}
	c.names = append(c.names, "gnd")
	c.pinned = append(c.pinned, true)
	return c
}

// NumNodes returns the number of nodes, including ground.
func (c *Circuit) NumNodes() int { return len(c.names) }

// Node creates and returns a new named node.
func (c *Circuit) Node(name string) Node {
	c.names = append(c.names, name)
	c.pinned = append(c.pinned, false)
	return Node(len(c.names) - 1)
}

// NodeName returns the name given to n when it was created.
func (c *Circuit) NodeName(n Node) string { return c.names[n] }

// R adds a resistor of r kΩ between a and b.
func (c *Circuit) R(a, b Node, r float64) {
	if r <= 0 {
		panic("circuit: resistance must be positive")
	}
	c.devices = append(c.devices, device{kind: kindResistor, a: a, b: b, val: r})
}

// C adds a capacitor of f fF between a and b.
func (c *Circuit) C(a, b Node, f float64) {
	if f <= 0 {
		panic("circuit: capacitance must be positive")
	}
	c.devices = append(c.devices, device{kind: kindCapacitor, a: a, b: b, val: f})
}

// NMOS adds an n-channel MOSFET of the given width with gate g, conducting
// between d and s when the gate is high. Gate and diffusion capacitances are
// added automatically.
func (c *Circuit) NMOS(g, d, s Node, width float64) {
	c.addMOS(kindNMOS, g, d, s, width)
}

// PMOS adds a p-channel MOSFET of the given width with gate g, conducting
// between d and s when the gate is low.
func (c *Circuit) PMOS(g, d, s Node, width float64) {
	c.addMOS(kindPMOS, g, d, s, width)
}

func (c *Circuit) addMOS(kind deviceKind, g, d, s Node, width float64) {
	if width <= 0 {
		panic("circuit: MOS width must be positive")
	}
	c.devices = append(c.devices, device{kind: kind, g: g, a: d, b: s, val: width})
	// Parasitics: gate capacitance to ground, diffusion capacitance on the
	// drain and source terminals.
	c.C(g, Gnd, c.Params.CGate*width)
	c.C(d, Gnd, c.Params.CDiff*width)
	c.C(s, Gnd, c.Params.CDiff*width)
}

// NMOSRaw and PMOSRaw add a bare channel with no automatic parasitics.
// They are used by cells that model merged diffusion regions explicitly
// (series stacks in a laid-out NAND share one diffusion between adjacent
// transistors, roughly halving internal-node capacitance compared to the
// per-device default).

// NMOSRaw adds an n-channel device without implicit parasitics.
func (c *Circuit) NMOSRaw(g, d, s Node, width float64) {
	if width <= 0 {
		panic("circuit: MOS width must be positive")
	}
	c.devices = append(c.devices, device{kind: kindNMOS, g: g, a: d, b: s, val: width})
}

// PMOSRaw adds a p-channel device without implicit parasitics.
func (c *Circuit) PMOSRaw(g, d, s Node, width float64) {
	if width <= 0 {
		panic("circuit: MOS width must be positive")
	}
	c.devices = append(c.devices, device{kind: kindPMOS, g: g, a: d, b: s, val: width})
}

// V pins node n to an ideal voltage source following waveform w.
func (c *Circuit) V(n Node, w Waveform) {
	if n == Gnd {
		panic("circuit: cannot attach a source to ground")
	}
	c.devices = append(c.devices, device{kind: kindVSource, a: n, wave: w})
	c.pinned[n] = true
}

// VDDNode creates a node pinned to the supply voltage and returns it.
func (c *Circuit) VDDNode() Node {
	n := c.Node("vdd")
	c.V(n, DC(c.Params.VDD))
	return n
}

// mosConductance returns the channel conductance of a MOS device given the
// present node voltages, using a smoothed switch-level model: the channel
// turns on linearly over a VthSm-wide band above (below, for PMOS) the
// threshold.
func (c *Circuit) mosConductance(d device, v []float64) float64 {
	p := c.Params
	var drive float64
	switch d.kind {
	case kindNMOS:
		src := math.Min(v[d.a], v[d.b])
		drive = (v[d.g] - src - p.Vth) / p.VthSm
	case kindPMOS:
		src := math.Max(v[d.a], v[d.b])
		drive = (src - v[d.g] - p.Vth) / p.VthSm
	}
	on := clamp01(drive)
	var gon float64
	if d.kind == kindNMOS {
		gon = d.val / p.RonN
	} else {
		gon = d.val / p.RonP
	}
	return p.Goff*d.val + on*gon
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Result holds the sampled node voltages of a transient simulation.
type Result struct {
	Dt     float64     // timestep in ps
	Stop   float64     // simulation end time in ps
	V      [][]float64 // V[n][k] = voltage of node n at time k*Dt
	Params Params
}

// Simulate runs a transient analysis from t=0 to stop picoseconds with the
// given timestep. All unpinned nodes start at 0 V unless an initial
// condition has been established by the sources at t=0 (sources are applied
// from the first step). The returned Result records every node's waveform.
func (c *Circuit) Simulate(stop, dt float64) *Result {
	return c.simulate(stop, dt, 0)
}

// SimulateSettled first lets the circuit settle for the given number of
// picoseconds with every source held at its t=0 value (establishing the DC
// operating point), then runs the transient like Simulate. Timing
// testbenches use this so internal nodes start from their quiescent levels
// rather than from 0 V.
func (c *Circuit) SimulateSettled(settle, stop, dt float64) *Result {
	return c.simulate(stop, dt, settle)
}

func (c *Circuit) simulate(stop, dt, settle float64) *Result {
	if dt <= 0 || stop <= dt {
		panic("circuit: need 0 < dt < stop")
	}
	n := c.NumNodes()
	steps := int(stop/dt) + 1
	res := &Result{Dt: dt, Stop: stop, Params: c.Params}
	res.V = make([][]float64, n)
	for i := range res.V {
		res.V[i] = make([]float64, steps)
	}

	v := make([]float64, n) // current voltages
	// Initialize pinned nodes to their t=0 source values so the first step
	// does not see an artificial supply ramp.
	for _, d := range c.devices {
		if d.kind == kindVSource {
			v[d.a] = d.wave.At(0)
		}
	}
	if settle > 0 {
		// Pre-roll toward the DC operating point with a coarser step and
		// sources frozen at t=0; the pre-roll waveforms are discarded.
		settleDt := dt * 8
		for k := 0; float64(k)*settleDt < settle; k++ {
			c.step(v, 0, settleDt)
		}
	}
	for i := range res.V {
		res.V[i][0] = v[i]
	}

	for k := 1; k < steps; k++ {
		c.step(v, float64(k)*dt, dt)
		for i := range v {
			res.V[i][k] = v[i]
		}
	}
	return res
}

// step advances the node voltages v by one backward-Euler timestep ending
// at time t. Dense nodal matrices are rebuilt each step because MOS
// conductances depend on the evolving voltages; node 0 (ground) is kept in
// the system with a pinned row for simplicity — the matrices are tiny.
func (c *Circuit) step(v []float64, t, dt float64) {
	n := len(v)
	if c.scratchA == nil || len(c.scratchA) != n {
		c.scratchA = make([][]float64, n)
		for i := range c.scratchA {
			c.scratchA[i] = make([]float64, n)
		}
		c.scratchB = make([]float64, n)
		c.scratchX = make([]float64, n)
	}
	a, rhs, vNew := c.scratchA, c.scratchB, c.scratchX
	for i := range a {
		row := a[i]
		for j := range row {
			row[j] = 0
		}
		rhs[i] = 0
	}
	for _, d := range c.devices {
		switch d.kind {
		case kindResistor:
			stampG(a, d.a, d.b, 1/d.val)
		case kindCapacitor:
			g := d.val / dt
			stampG(a, d.a, d.b, g)
			i := g * (v[d.a] - v[d.b])
			rhs[d.a] += i
			rhs[d.b] -= i
		case kindNMOS, kindPMOS:
			stampG(a, d.a, d.b, c.mosConductance(d, v))
		case kindVSource:
			// handled below by pinning
		}
	}
	pin := func(node Node, val float64) {
		row := a[node]
		for j := range row {
			row[j] = 0
		}
		row[node] = 1
		rhs[node] = val
	}
	pin(Gnd, 0)
	for _, d := range c.devices {
		if d.kind == kindVSource {
			pin(d.a, d.wave.At(t))
		}
	}
	if err := solveInPlace(a, rhs, vNew); err != nil {
		panic(fmt.Sprintf("circuit: singular system at t=%.2fps: %v", t, err))
	}
	copy(v, vNew)
}

// stampG stamps a conductance g between nodes x and y into matrix a.
func stampG(a [][]float64, x, y Node, g float64) {
	a[x][x] += g
	a[y][y] += g
	a[x][y] -= g
	a[y][x] -= g
}

// solveInPlace solves a·x = b by Gaussian elimination with partial
// pivoting, destroying a and b. The solution is written to x.
func solveInPlace(a [][]float64, b, x []float64) error {
	n := len(b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r][col]); abs > best {
				best, piv = abs, r
			}
		}
		if best < 1e-14 {
			return fmt.Errorf("pivot %d too small (%g)", col, best)
		}
		if piv != col {
			a[col], a[piv] = a[piv], a[col]
			b[col], b[piv] = b[piv], b[col]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			arow, crow := a[r], a[col]
			for j := col; j < n; j++ {
				arow[j] -= f * crow[j]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for j := r + 1; j < n; j++ {
			sum -= a[r][j] * x[j]
		}
		x[r] = sum / a[r][r]
	}
	return nil
}

// Voltage returns the voltage of node n at time t (ps), interpolating
// linearly between samples.
func (r *Result) Voltage(n Node, t float64) float64 {
	w := r.V[n]
	if t <= 0 {
		return w[0]
	}
	k := t / r.Dt
	i := int(k)
	if i >= len(w)-1 {
		return w[len(w)-1]
	}
	frac := k - float64(i)
	return w[i] + frac*(w[i+1]-w[i])
}

// CrossTime returns the first time after 'after' (ps) at which node n's
// voltage crosses level in the given direction (rising if rising is true).
// The boolean result reports whether such a crossing exists.
func (r *Result) CrossTime(n Node, level float64, rising bool, after float64) (float64, bool) {
	w := r.V[n]
	start := int(after/r.Dt) + 1
	if start < 1 {
		start = 1
	}
	for k := start; k < len(w); k++ {
		prev, cur := w[k-1], w[k]
		if rising && prev < level && cur >= level ||
			!rising && prev > level && cur <= level {
			// Linear interpolation within the step.
			frac := (level - prev) / (cur - prev)
			return (float64(k-1) + frac) * r.Dt, true
		}
	}
	return 0, false
}

// FinalVoltage returns node n's voltage at the end of the simulation.
func (r *Result) FinalVoltage(n Node) float64 {
	w := r.V[n]
	return w[len(w)-1]
}
