package circuit

import "sort"

// Waveform describes a voltage as a function of time for ideal sources.
type Waveform interface {
	// At returns the source voltage at time t picoseconds.
	At(t float64) float64
}

// dcWave is a constant voltage.
type dcWave float64

func (w dcWave) At(float64) float64 { return float64(w) }

// DC returns a constant-voltage waveform.
func DC(v float64) Waveform { return dcWave(v) }

// PWLPoint is one (time, voltage) breakpoint of a piecewise-linear waveform.
type PWLPoint struct {
	T float64 // ps
	V float64 // volts
}

// PWL is a piecewise-linear waveform. Before the first point it holds the
// first voltage; after the last point it holds the last voltage.
type PWL []PWLPoint

// At returns the linearly interpolated voltage at time t.
func (w PWL) At(t float64) float64 {
	if len(w) == 0 {
		return 0
	}
	if t <= w[0].T {
		return w[0].V
	}
	last := w[len(w)-1]
	if t >= last.T {
		return last.V
	}
	i := sort.Search(len(w), func(i int) bool { return w[i].T > t })
	a, b := w[i-1], w[i]
	frac := (t - a.T) / (b.T - a.T)
	return a.V + frac*(b.V-a.V)
}

// Step returns a waveform that transitions from v0 to v1 starting at time
// t0, with the given rise/fall time (a finite edge keeps the integrator
// well-behaved and mimics a realistically buffered signal).
func Step(v0, v1, t0, edge float64) Waveform {
	return PWL{{0, v0}, {t0, v0}, {t0 + edge, v1}}
}

// ClockSpec describes a repetitive clock for pulse-latch experiments.
type ClockSpec struct {
	Period float64 // ps
	High   float64 // ps the clock spends high each period (pulse width)
	Edge   float64 // rise/fall time, ps
	VDD    float64 // swing, volts
	Start  float64 // time of the first rising edge, ps
}

// Clock builds a piecewise-linear clock waveform covering [0, stop]. The
// clock is low before Start.
func Clock(spec ClockSpec, stop float64) Waveform {
	w := PWL{{0, 0}}
	for t := spec.Start; t < stop; t += spec.Period {
		w = append(w,
			PWLPoint{t, 0},
			PWLPoint{t + spec.Edge, spec.VDD},
			PWLPoint{t + spec.High, spec.VDD},
			PWLPoint{t + spec.High + spec.Edge, 0},
		)
	}
	return w
}
